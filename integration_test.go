package psn_test

// Cross-module integration tests: the path enumerator and the
// trace-driven simulator are independent implementations of the same
// §4.1 semantics, so they must agree on optimal delivery up to the
// space-time discretization error.

import (
	"math/rand"
	"testing"
	"testing/quick"

	psn "repro"
	"repro/internal/forward"
)

// Epidemic forwarding finds the optimal path (the paper's
// T(σ,δ,t1) = T_Epidemic(σ,δ,t1)); the enumerator's T1 is measured on
// the Δ grid, so the two delays must agree within one step. The
// enumerator may additionally use contacts from the creation step that
// precede the creation instant (a known O(Δ) artifact the paper
// accepts), which can only make T1 smaller.
func TestEnumeratorMatchesEpidemicSimulation(t *testing.T) {
	f := func(seed int64) bool {
		tr := psn.DevTrace(seed)
		enum, err := psn.NewEnumerator(tr, psn.EnumOptions{K: 50})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 77))
		for trial := 0; trial < 6; trial++ {
			src := psn.NodeID(rng.Intn(tr.NumNodes))
			dst := psn.NodeID(rng.Intn(tr.NumNodes - 1))
			if dst >= src {
				dst++
			}
			start := rng.Float64() * tr.Horizon / 2
			res, err := enum.Enumerate(psn.PathMessage{Src: src, Dst: dst, Start: start})
			if err != nil {
				return false
			}
			sim, err := psn.Simulate(psn.SimConfig{
				Trace:     tr,
				Algorithm: forward.Epidemic{},
				Messages:  []psn.SimMessage{{Src: src, Dst: dst, Start: start}},
			})
			if err != nil {
				return false
			}
			t1, found := res.T1()
			o := sim.Outcomes[0]
			switch {
			case o.Delivered && !found:
				// Every continuous epidemic path is graph-feasible, so
				// the enumerator must find at least one path whenever
				// the simulator delivers.
				t.Logf("seed %d msg %d->%d@%.0f: simulator-only delivery delay=%.1f",
					seed, src, dst, start, o.Delay)
				return false
			case o.Delivered && found:
				// The sound one-sided bound: the continuous epidemic
				// delivery maps onto the space-time graph with at most
				// one step of quantization, so T1 <= delay + Δ. The
				// converse does not hold — the graph loses intra-step
				// contact ordering and admits creation-step contacts
				// that precede the creation instant (both artifacts of
				// the paper's own formulation), so T1 may be much
				// smaller than the continuous optimum.
				if t1 > o.Delay+psn.DefaultDelta+1e-9 {
					t.Logf("seed %d msg %d->%d@%.0f: T1 %.1f exceeds epidemic %.1f + Δ",
						seed, src, dst, start, t1, o.Delay)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// The simulator's per-pair-type structure must mirror the enumeration
// study's: in-in messages deliver faster than out-out under epidemic
// forwarding on a conference trace.
func TestPairTypeOrderingAcrossModules(t *testing.T) {
	tr := psn.DevTrace(11)
	cl := psn.NewClassifier(tr)
	msgs := psn.SimWorkload(tr, 0.3, tr.Horizon/2, 5)
	sim, err := psn.Simulate(psn.SimConfig{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs})
	if err != nil {
		t.Fatal(err)
	}
	parts := sim.ByPairType(cl)
	inin := parts[psn.InIn]
	outout := parts[psn.OutOut]
	if len(inin.Outcomes) == 0 || len(outout.Outcomes) == 0 {
		t.Skip("workload missed a pair type")
	}
	if inin.SuccessRate() < outout.SuccessRate() {
		t.Errorf("in-in success %.3f below out-out %.3f",
			inin.SuccessRate(), outout.SuccessRate())
	}
}
