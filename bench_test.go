package psn_test

// One benchmark per paper figure (F01-F15), per analytic experiment
// (A1, A2) and per ablation (AB1-AB4), each regenerating the figure's
// data end to end on reduced parameters, plus micro-benchmarks for the
// core substrates. The per-figure benchmarks exercise exactly the code
// the psn-figures binary runs at paper scale.
//
// The key hot-path benchmarks (graph index build, enumeration, the
// epidemic workload) are mirrored by cmd/psn-bench, which emits a
// machine-readable BENCH_<date>.json snapshot for the perf trajectory;
// CI additionally enforces an allocation budget on
// BenchmarkEnumerateDevTrace.

import (
	"io"
	"testing"

	psn "repro"
	"repro/internal/analytic"
	"repro/internal/benchsuite"
	"repro/internal/dtnsim"
	"repro/internal/figures"
	"repro/internal/forward"
	"repro/internal/pathenum"
	"repro/internal/tracegen"
)

// benchParams keeps per-figure benchmarks at tens-of-milliseconds to
// seconds each; psn-figures runs the same drivers at paper scale.
func benchParams() figures.Params {
	return figures.Params{
		Messages: 6,
		K:        100,
		SimRuns:  1,
		MsgRate:  0.05,
		Seed:     1,
		Datasets: []tracegen.Dataset{tracegen.Infocom0912, tracegen.Conext0912},
	}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	f, ok := figures.Lookup(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := figures.NewHarness(benchParams())
		if err := h.RenderOne(f, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure01ContactTimeSeries(b *testing.B)   { benchFigure(b, "F01") }
func BenchmarkFigure04aOptimalDurationCDF(b *testing.B) { benchFigure(b, "F04a") }
func BenchmarkFigure04bExplosionCDF(b *testing.B)       { benchFigure(b, "F04b") }
func BenchmarkFigure05ScatterT1TE(b *testing.B)         { benchFigure(b, "F05") }
func BenchmarkFigure06PathGrowth(b *testing.B)          { benchFigure(b, "F06") }
func BenchmarkFigure07ContactCountCDF(b *testing.B)     { benchFigure(b, "F07") }
func BenchmarkFigure08PairTypeScatter(b *testing.B)     { benchFigure(b, "F08") }
func BenchmarkFigure09DelayVsSuccess(b *testing.B)      { benchFigure(b, "F09") }
func BenchmarkFigure10DelayDistributions(b *testing.B)  { benchFigure(b, "F10") }
func BenchmarkFigure11ReceptionTimes(b *testing.B)      { benchFigure(b, "F11") }
func BenchmarkFigure12AlgorithmPaths(b *testing.B)      { benchFigure(b, "F12") }
func BenchmarkFigure13PairTypePerformance(b *testing.B) { benchFigure(b, "F13") }
func BenchmarkFigure14HopRates(b *testing.B)            { benchFigure(b, "F14") }
func BenchmarkFigure15RateRatios(b *testing.B)          { benchFigure(b, "F15") }

func BenchmarkAnalyticModelValidation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := figures.ComputeA1(figures.A1Params{
			N: 300, Lambda: 0.5, TMax: 6, MCRuns: 2, Samples: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsetExplosion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := figures.ComputeA2(48, 0.05, 600, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDeltaSensitivity(b *testing.B) { benchFigure(b, "AB1") }
func BenchmarkAblationKSensitivity(b *testing.B)     { benchFigure(b, "AB2") }
func BenchmarkAblationCopySemantics(b *testing.B)    { benchFigure(b, "AB3") }
func BenchmarkAblationHomogeneousTrace(b *testing.B) { benchFigure(b, "AB4") }

// Micro-benchmarks for the substrates.

func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tracegen.Generate(tracegen.Conext0912); err != nil {
			b.Fatal(err)
		}
	}
}

// The shared hot-path benchmark bodies live in internal/benchsuite so
// psn-bench's BENCH_<date>.json snapshots measure exactly these
// workloads.

func BenchmarkSpaceTimeGraphBuild(b *testing.B)        { benchsuite.SpaceTimeGraphBuild(b) }
func BenchmarkEnumerateDevTrace(b *testing.B)          { benchsuite.EnumerateDevTrace(b) }
func BenchmarkEnumerateConferenceMessage(b *testing.B) { benchsuite.EnumerateConferenceMessage(b) }

// City-scale counterparts (≥2,000 nodes, ≥1M contacts): the cold
// graph build, one wide-population enumeration, and a warm sweep
// replay of the full contact stream.
func BenchmarkSpaceTimeGraphBuildLarge(b *testing.B) { benchsuite.SpaceTimeGraphBuildLarge(b) }
func BenchmarkEnumerateCityMessage(b *testing.B)     { benchsuite.EnumerateCityMessage(b) }
func BenchmarkSimulateCitySweep(b *testing.B)        { benchsuite.SimulateCitySweep(b) }

// BenchmarkWarmStartLoad deserializes the city-scale graph from the
// on-disk artifact store (internal/artstore) — the warm-start path of
// psn-serve -artifacts. Compare against
// BenchmarkSpaceTimeGraphBuildLarge for the warm-start speedup.
func BenchmarkWarmStartLoad(b *testing.B) { benchsuite.WarmStartLoad(b) }

// BenchmarkEnumerateNarrowTable is the ablation AB2 configuration
// (TableWidth ≪ K): tables saturate early, so nearly all work runs
// through the per-step threshold index rather than path extension.
func BenchmarkEnumerateNarrowTable(b *testing.B) {
	benchsuite.EnumerateConference(b, pathenum.Options{K: 2000, TableWidth: 16})
}

func BenchmarkSimulateEpidemic(b *testing.B) { benchsuite.SimulateEpidemic(b) }

// BenchmarkSimulateSweep is the warm-sweep counterpart of
// BenchmarkSimulateEpidemic: per-run marginal cost with oracle tables
// and pooled simulation state amortized across runs.
func BenchmarkSimulateSweep(b *testing.B) { benchsuite.SimulateSweep(b) }

// BenchmarkServeEnumerateWarm is the serving layer's warm-cache
// request throughput (HTTP round trip included); 1e9 / ns_per_op is
// the single-connection requests/sec recorded in BENCH_<date>.json.
func BenchmarkServeEnumerateWarm(b *testing.B) { benchsuite.ServeEnumerateWarm(b) }

// BenchmarkServeEnumerateWarmRouted is the same warm request through
// the fleet router fronting two replicas; the delta against
// BenchmarkServeEnumerateWarm is the router hop's overhead.
func BenchmarkServeEnumerateWarmRouted(b *testing.B) { benchsuite.ServeEnumerateWarmRouted(b) }

// benchmarkRunWorkers is the paper's Poisson-workload simulation (the
// repo's hottest loop) at a fixed worker count; the Serial/Parallel
// pair tracks the engine's speedup in the perf trajectory.
func benchmarkRunWorkers(b *testing.B, workers int) {
	tr := tracegen.MustGenerate(tracegen.Conext0912)
	msgs := dtnsim.Workload(tr, 0.25, tr.Horizon*2/3, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dtnsim.Run(dtnsim.Config{
			Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs, Workers: workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSerial(b *testing.B)   { benchmarkRunWorkers(b, 1) }
func BenchmarkRunParallel(b *testing.B) { benchmarkRunWorkers(b, 0) } // GOMAXPROCS workers

func BenchmarkEnumerateAllSerial(b *testing.B)   { benchsuite.EnumerateAllWorkers(1)(b) }
func BenchmarkEnumerateAllParallel(b *testing.B) { benchsuite.EnumerateAllWorkers(0)(b) }

func BenchmarkEnumerateBatchSharedPrefix(b *testing.B) { benchsuite.EnumerateBatchSharedPrefix(b) }

// BenchmarkHarnessPrecompute runs the figure harness's parallel
// precompute stage end to end at reduced scale.
func BenchmarkHarnessPrecompute(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := figures.NewHarness(benchParams())
		if err := h.Precompute(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateMEED(b *testing.B) {
	tr := tracegen.MustGenerate(tracegen.Conext0912)
	msgs := dtnsim.Workload(tr, 0.25, tr.Horizon*2/3, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dtnsim.Run(dtnsim.Config{Trace: tr, Algorithm: forward.DynamicProgramming{}, Messages: msgs}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMEEDDistances pins the flattened Floyd-Warshall closure
// (shared with psn-bench snapshots via benchsuite).
func BenchmarkMEEDDistances(b *testing.B) { benchsuite.MEEDDistances(b) }

func BenchmarkODESolve(b *testing.B) {
	u0 := analytic.SourceInitial(1000, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analytic.SolveODE(u0, analytic.ODEConfig{
			Lambda: 0.5, K: 100, Step: 0.01, TMax: 10, Snapshots: 6,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJumpProcess(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analytic.SimulateJump(analytic.JumpConfig{
			N: 1000, Lambda: 0.5, TMax: 8, Snapshots: 4, MaxState: 1 << 20, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	tr := psn.DevTrace(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtnsim.Workload(tr, 0.25, tr.Horizon, int64(i))
	}
}
