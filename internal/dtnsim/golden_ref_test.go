package dtnsim

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/forward"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// This file vendors the pre-sweep simulator — the implementation that
// shipped before the forwarding hot path went allocation-free (nested
// [][]T contact views, a map-based live set, per-message hops/copies
// allocations, a fresh spread queue per propagation, reflective
// sort.SliceStable event ordering) — and proves the rewrite is a pure
// optimization: for every dataset, algorithm, copy mode and seed, the
// new simulator's Result (Outcome structs in order, transmission
// count) is identical to the reference's, for every worker count, and
// whether runs go through Run or through a reused Sweep.
//
// The reference is deliberately kept naive and close to the original
// source; it implements the serial path only (the pre-sweep parallel
// path was pinned serial-equivalent by parallel_test.go, which still
// runs against the new implementation).

// refView is the pre-flattening contact view: one heap row per node.
type refView struct {
	numNodes int
	lastEnc  [][]float64
	encCount [][]int
	soFar    []int
	totals   []int
	meedDist [][]float64
}

func refNewView(n int) *refView {
	v := &refView{
		numNodes: n,
		lastEnc:  make([][]float64, n),
		encCount: make([][]int, n),
		soFar:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		v.lastEnc[i] = make([]float64, n)
		for j := range v.lastEnc[i] {
			v.lastEnc[i][j] = math.Inf(-1)
		}
		v.encCount[i] = make([]int, n)
	}
	return v
}

func (v *refView) observe(a, b trace.NodeID, now float64) {
	v.lastEnc[a][b] = now
	v.lastEnc[b][a] = now
	v.encCount[a][b]++
	v.encCount[b][a]++
	v.soFar[a]++
	v.soFar[b]++
}

// refMEEDDistances is the pre-flattening MEED metric: nested rows and
// the identical Floyd-Warshall update order, so distances (and thus
// Dynamic Programming decisions) must agree bit for bit.
func refMEEDDistances(tr *trace.Trace) [][]float64 {
	n := tr.NumNodes
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = math.Inf(1)
			}
		}
	}
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	for _, c := range tr.Contacts() {
		counts[c.A][c.B]++
		counts[c.B][c.A]++
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && counts[i][j] > 0 {
				dist[i][j] = tr.Horizon / float64(counts[i][j]+1)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dik + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	return dist
}

// refAlgView adapts the refView to the forward.Algorithm interface via
// a forward.View carrying the same knowledge: algorithms only read the
// view through accessor methods, so the reference drives the real
// algorithm implementations with its own bookkeeping kept in lockstep.
// To stay truly independent of the rewritten View internals, the
// reference instead re-implements the six paper decision rules (plus
// the ablation set's stateless rules) directly against refView; the
// stateful algorithms (PRoPHET, Spray and Wait's budget, observers) are
// exercised through their own public interfaces exactly as the old
// simulator did.
type refEvent struct {
	time float64
	kind eventKind
	a, b trace.NodeID
	msg  int
}

func refSortEvents(events []refEvent) {
	sort.SliceStable(events, func(i, j int) bool { return refEventBefore(events[i], events[j]) })
}

func refEventBefore(a, b refEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.kind < b.kind
}

// refHolderSet is the reference simulator's own two-word holder
// bitset (the pre-refactor representation; reference traces stay
// under 128 nodes).
type refHolderSet [2]uint64

func (h refHolderSet) has(n trace.NodeID) bool { return h[n>>6]&(1<<(uint(n)&63)) != 0 }
func (h *refHolderSet) add(n trace.NodeID)     { h[n>>6] |= 1 << (uint(n) & 63) }
func (h *refHolderSet) remove(n trace.NodeID)  { h[n>>6] &^= 1 << (uint(n) & 63) }

type refMsgState struct {
	msg     Message
	holders refHolderSet
	// hops is int16 (not the pre-refactor int8): relay-mode hop
	// chains exceed 127, and the original counter silently wrapped.
	// The live simulator fixed the overflow, so the reference carries
	// the same fix — everything else is the pre-refactor algorithm.
	hops      []int16
	copies    []int16
	delivered bool
	created   bool
}

type refSim struct {
	alg      forward.Algorithm
	mode     CopyMode
	view     *refView
	obs      forward.ContactObserver
	sprayL   int
	open     [][]trace.NodeID
	msgs     []refMsgState
	live     map[int]bool
	outcomes []Outcome
	sent     int
}

// refForward evaluates the forwarding rule against the reference view.
// Stateless paper algorithms are re-implemented here from §6's
// definitions; algorithms with their own state (PRoPHET) are called
// directly — they never read the View.
func (s *refSim) refForward(holder, peer, dst trace.NodeID, now float64) bool {
	switch a := s.alg.(type) {
	case forward.Epidemic:
		return true
	case forward.FRESH:
		return s.view.lastEnc[peer][dst] > s.view.lastEnc[holder][dst]
	case forward.Greedy:
		return s.view.encCount[peer][dst] > s.view.encCount[holder][dst]
	case forward.GreedyTotal:
		return s.view.totals[peer] > s.view.totals[holder]
	case forward.GreedyOnline:
		return s.view.soFar[peer] > s.view.soFar[holder]
	case forward.DynamicProgramming:
		return s.view.meedDist[peer][dst] < s.view.meedDist[holder][dst]
	case forward.DirectDelivery:
		return false
	case forward.SprayAndWait:
		return true
	default:
		return a.Forward(nil, holder, peer, dst, now)
	}
}

// refRun is the pre-sweep serial Run: oracle tables derived per call,
// one fresh simulator, map-based live set, per-message allocations.
func refRun(tr *trace.Trace, alg forward.Algorithm, msgs []Message, mode CopyMode) *Result {
	totals := tr.ContactCounts()
	meed := refMEEDDistances(tr)

	events := make([]refEvent, 0, 2*tr.Len())
	for _, c := range tr.Contacts() {
		events = append(events,
			refEvent{time: c.Start, kind: evContactStart, a: c.A, b: c.B},
			refEvent{time: c.End, kind: evContactEnd, a: c.A, b: c.B},
		)
	}
	refSortEvents(events)

	n := tr.NumNodes
	s := &refSim{
		alg:  alg,
		mode: mode,
		view: refNewView(n),
		open: make([][]trace.NodeID, n),
		live: make(map[int]bool),
	}
	s.view.totals = totals
	s.view.meedDist = meed
	if st, ok := alg.(forward.Stateful); ok {
		st.Reset(n)
	}
	if o, ok := alg.(forward.ContactObserver); ok {
		s.obs = o
	}
	if cb, ok := alg.(forward.CopyBudget); ok {
		s.sprayL = cb.InitialCopies()
	}
	s.msgs = make([]refMsgState, len(msgs))
	s.outcomes = make([]Outcome, len(msgs))
	for i, m := range msgs {
		s.msgs[i].msg = m
		s.msgs[i].hops = make([]int16, n)
		if s.sprayL > 0 {
			s.msgs[i].copies = make([]int16, n)
		}
		s.outcomes[i] = Outcome{Msg: m}
	}

	creates := make([]refEvent, 0, len(s.msgs))
	for i := range s.msgs {
		creates = append(creates, refEvent{time: s.msgs[i].msg.Start, kind: evMsgCreate, msg: i})
	}
	refSortEvents(creates)
	i, j := 0, 0
	for i < len(events) || j < len(creates) {
		var ev refEvent
		if j >= len(creates) || (i < len(events) && refEventBefore(events[i], creates[j])) {
			ev = events[i]
			i++
		} else {
			ev = creates[j]
			j++
		}
		switch ev.kind {
		case evContactStart:
			s.refContactStart(ev.a, ev.b, ev.time)
		case evMsgCreate:
			s.refCreateMessage(ev.msg, ev.time)
		case evContactEnd:
			s.refContactEnd(ev.a, ev.b)
		}
	}
	return &Result{Algorithm: alg.Name(), Outcomes: s.outcomes, Transmissions: s.sent}
}

func (s *refSim) refContactStart(a, b trace.NodeID, now float64) {
	s.view.observe(a, b, now)
	if s.obs != nil {
		s.obs.OnContact(a, b, now)
	}
	s.open[a] = append(s.open[a], b)
	s.open[b] = append(s.open[b], a)
	for id := range s.live {
		s.refExchange(id, a, b, now)
		s.refExchange(id, b, a, now)
	}
}

func (s *refSim) refContactEnd(a, b trace.NodeID) {
	s.open[a] = refRemoveNode(s.open[a], b)
	s.open[b] = refRemoveNode(s.open[b], a)
}

func refRemoveNode(list []trace.NodeID, n trace.NodeID) []trace.NodeID {
	for i, x := range list {
		if x == n {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

func (s *refSim) refCreateMessage(id int, now float64) {
	m := &s.msgs[id]
	m.created = true
	m.holders.add(m.msg.Src)
	if s.sprayL > 0 {
		m.copies[m.msg.Src] = int16(s.sprayL)
	}
	s.live[id] = true
	var seen refHolderSet
	seen.add(m.msg.Src)
	s.refSpread(id, m.msg.Src, now, seen)
}

func (s *refSim) refExchange(id int, holder, peer trace.NodeID, now float64) {
	m := &s.msgs[id]
	if m.delivered || !m.created || !m.holders.has(holder) || m.holders.has(peer) {
		return
	}
	if peer == m.msg.Dst {
		s.refDeliver(id, holder, now)
		return
	}
	if !s.refShouldForward(id, holder, peer, now) {
		return
	}
	s.refTransfer(id, holder, peer)
	var seen refHolderSet
	seen.add(holder)
	seen.add(peer)
	s.refSpread(id, peer, now, seen)
}

func (s *refSim) refSpread(id int, from trace.NodeID, now float64, seen refHolderSet) {
	m := &s.msgs[id]
	if m.delivered {
		return
	}
	queue := []trace.NodeID{from}
	for len(queue) > 0 && !m.delivered {
		cur := queue[0]
		queue = queue[1:]
		if !m.holders.has(cur) {
			continue
		}
		for _, peer := range s.open[cur] {
			if m.delivered {
				return
			}
			if m.holders.has(peer) {
				continue
			}
			if peer == m.msg.Dst {
				s.refDeliver(id, cur, now)
				return
			}
			if seen.has(peer) || !s.refShouldForward(id, cur, peer, now) {
				continue
			}
			s.refTransfer(id, cur, peer)
			seen.add(peer)
			queue = append(queue, peer)
			if !m.holders.has(cur) {
				break
			}
		}
	}
}

func (s *refSim) refShouldForward(id int, holder, peer trace.NodeID, now float64) bool {
	m := &s.msgs[id]
	if s.sprayL > 0 && m.copies[holder] <= 1 {
		return false
	}
	return s.refForward(holder, peer, m.msg.Dst, now)
}

func (s *refSim) refTransfer(id int, holder, peer trace.NodeID) {
	s.sent++
	m := &s.msgs[id]
	m.holders.add(peer)
	m.hops[peer] = m.hops[holder] + 1
	if s.sprayL > 0 {
		half := m.copies[holder] / 2
		m.copies[peer] = half
		m.copies[holder] -= half
	}
	if s.mode == Relay {
		m.holders.remove(holder)
	}
}

func (s *refSim) refDeliver(id int, holder trace.NodeID, now float64) {
	s.sent++
	m := &s.msgs[id]
	m.delivered = true
	s.outcomes[id].Delivered = true
	s.outcomes[id].Delay = now - m.msg.Start
	s.outcomes[id].Hops = int(m.hops[holder]) + 1
	delete(s.live, id)
}

// --- the golden equivalence suite ---

// goldenCompare pins one configuration: the reference result against
// Run at worker counts 1 and 4 and against a (possibly reused) Sweep.
func goldenCompare(t *testing.T, label string, tr *trace.Trace, sw *Sweep, alg forward.Algorithm, msgs []Message, mode CopyMode) {
	t.Helper()
	want := refRun(tr, alg, msgs, mode)
	for _, workers := range []int{1, 4} {
		got, err := Run(Config{Trace: tr, Algorithm: alg, Messages: msgs, CopyMode: mode, Workers: workers})
		if err != nil {
			t.Fatalf("%s workers=%d: %v", label, workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s workers=%d: Run diverges from pre-sweep reference (tx %d vs %d)",
				label, workers, got.Transmissions, want.Transmissions)
		}
	}
	got, err := sw.Run(Config{Algorithm: alg, Messages: msgs, CopyMode: mode, Workers: 1})
	if err != nil {
		t.Fatalf("%s sweep: %v", label, err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: reused Sweep diverges from pre-sweep reference (tx %d vs %d)",
			label, got.Transmissions, want.Transmissions)
	}
}

// TestGoldenReferenceDevTrace sweeps the full algorithm × copy-mode ×
// seed matrix on the development trace (fast enough for -short runs).
func TestGoldenReferenceDevTrace(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		tr := tracegen.Dev(seed)
		sw, err := NewSweep(tr)
		if err != nil {
			t.Fatal(err)
		}
		msgs := Workload(tr, 0.2, tr.Horizon, seed+100)
		for _, alg := range forward.ExtendedSet() {
			for _, mode := range []CopyMode{Replicate, Relay} {
				label := tr.Name + "/" + alg.Name() + "/" + mode.String()
				goldenCompare(t, label, tr, sw, alg, msgs, mode)
			}
		}
	}
}

// TestGoldenReferencePaperDatasets runs the same matrix over all four
// conference datasets at reduced workload rate. One Sweep per dataset
// is reused across the whole matrix, so the suite also proves pooled
// state reset leaves no residue between configurations.
func TestGoldenReferencePaperDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden dataset sweep is slow")
	}
	for _, d := range tracegen.Datasets {
		tr := tracegen.MustGenerate(d)
		sw, err := NewSweep(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 2, 3} {
			msgs := Workload(tr, 0.01, tr.Horizon*2/3, seed)
			for _, alg := range forward.ExtendedSet() {
				for _, mode := range []CopyMode{Replicate, Relay} {
					label := tr.Name + "/" + alg.Name() + "/" + mode.String()
					goldenCompare(t, label, tr, sw, alg, msgs, mode)
				}
			}
		}
	}
}
