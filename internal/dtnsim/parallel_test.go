package dtnsim

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/forward"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// The parallel engine's core promise: for every algorithm, copy mode
// and worker count, Run produces the exact Result a serial run
// produces — identical Outcome structs in identical order and an
// identical transmission count.

func runOrDie(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunSerialParallelEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 17}
	for _, seed := range seeds {
		tr := tracegen.Dev(seed)
		msgs := Workload(tr, 0.2, tr.Horizon, seed+100)
		if len(msgs) == 0 {
			t.Fatalf("seed %d: empty workload", seed)
		}
		for _, alg := range forward.ExtendedSet() {
			for _, mode := range []CopyMode{Replicate, Relay} {
				serial := runOrDie(t, Config{Trace: tr, Algorithm: alg, Messages: msgs, CopyMode: mode, Workers: 1})
				for _, workers := range []int{2, 3, 8} {
					par := runOrDie(t, Config{Trace: tr, Algorithm: alg, Messages: msgs, CopyMode: mode, Workers: workers})
					if !reflect.DeepEqual(serial, par) {
						t.Errorf("seed %d %s/%s: workers=%d diverges from serial (tx %d vs %d)",
							seed, alg.Name(), mode, workers, par.Transmissions, serial.Transmissions)
					}
				}
			}
		}
	}
}

// The four paper datasets at reduced workload scale: the conference
// traces exercise overlapping contacts, presence churn and the
// afternoon-window dynamics that the Dev trace does not.
func TestRunEquivalenceOnPaperDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset sweep is slow")
	}
	for _, d := range tracegen.Datasets {
		tr := tracegen.MustGenerate(d)
		for _, seed := range []int64{1, 2, 3} {
			msgs := Workload(tr, 0.01, tr.Horizon*2/3, seed)
			for _, alg := range []forward.Algorithm{forward.Epidemic{}, forward.Greedy{}, forward.DynamicProgramming{}} {
				serial := runOrDie(t, Config{Trace: tr, Algorithm: alg, Messages: msgs, Workers: 1})
				par := runOrDie(t, Config{Trace: tr, Algorithm: alg, Messages: msgs, Workers: 8})
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("%v seed %d %s: parallel diverges from serial", d, seed, alg.Name())
				}
			}
		}
	}
}

// An observer algorithm that cannot clone must fall back to a serial
// run when Workers > 1 and still produce the serial result.
type nonCloningObserver struct {
	contacts int
}

func (o *nonCloningObserver) Name() string { return "non-cloning observer" }

func (o *nonCloningObserver) OnContact(a, b trace.NodeID, now float64) { o.contacts++ }

func (o *nonCloningObserver) Forward(*forward.View, trace.NodeID, trace.NodeID, trace.NodeID, float64) bool {
	return o.contacts%2 == 0
}

func TestRunStatefulNonClonerFallsBackToSerial(t *testing.T) {
	tr := tracegen.Dev(5)
	msgs := Workload(tr, 0.1, tr.Horizon, 5)
	serial := runOrDie(t, Config{Trace: tr, Algorithm: &nonCloningObserver{}, Messages: msgs, Workers: 1})
	par := runOrDie(t, Config{Trace: tr, Algorithm: &nonCloningObserver{}, Messages: msgs, Workers: 8})
	if !reflect.DeepEqual(serial, par) {
		t.Error("non-cloning observer parallel run diverges from serial fallback")
	}
}

// Relay mode moves a single copy: a holder that hands the copy off
// must stop forwarding immediately, even inside one zero-time spread
// over multiple open contacts. With contacts 0-1 and 0-2 both live at
// creation, an always-forward algorithm must make exactly one
// transfer, not duplicate the copy to both peers.
func TestRelaySingleCopyNotDuplicated(t *testing.T) {
	tr, err := trace.New("relay-dup", 4, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 50},
		{A: 0, B: 2, Start: 0, End: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Trace:     tr,
		Algorithm: forward.Epidemic{},
		Messages:  []Message{{Src: 0, Dst: 3, Start: 10}},
		CopyMode:  Relay,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Transmissions != 1 {
		t.Errorf("single relay copy made %d transmissions, want 1", r.Transmissions)
	}
	if r.Outcomes[0].Delivered {
		t.Error("message delivered with no path to destination")
	}
}

// Concurrent Run calls over one shared trace (and shared stateless
// algorithms) must be safe: the trace and oracle inputs are read-only.
func TestRunConcurrentCallers(t *testing.T) {
	tr := tracegen.Dev(9)
	msgs := Workload(tr, 0.1, tr.Horizon, 9)
	want := runOrDie(t, Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs, Workers: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := Run(Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs, Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(want, r) {
				t.Error("concurrent caller got divergent result")
			}
		}()
	}
	wg.Wait()
}
