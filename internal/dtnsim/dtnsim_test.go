package dtnsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/forward"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func mkTrace(t *testing.T, n int, horizon float64, cs []trace.Contact) *trace.Trace {
	t.Helper()
	tr, err := trace.New("sim", n, horizon, cs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunValidation(t *testing.T) {
	tr := mkTrace(t, 4, 100, nil)
	if _, err := Run(Config{Algorithm: forward.Epidemic{}}); err == nil {
		t.Errorf("nil trace accepted")
	}
	if _, err := Run(Config{Trace: tr}); err == nil {
		t.Errorf("nil algorithm accepted")
	}
	big, _ := trace.New("big", 200, 10, nil)
	if _, err := Run(Config{Trace: big, Algorithm: forward.Epidemic{}}); err != nil {
		t.Errorf("large population rejected: %v", err)
	}
	bad := []Message{
		{Src: 0, Dst: 0, Start: 0},
		{Src: 0, Dst: 9, Start: 0},
		{Src: -1, Dst: 1, Start: 0},
		{Src: 0, Dst: 1, Start: -1},
		{Src: 0, Dst: 1, Start: 100},
	}
	for _, m := range bad {
		if _, err := Run(Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: []Message{m}}); err == nil {
			t.Errorf("bad message %+v accepted", m)
		}
	}
}

func TestEpidemicDirectDelivery(t *testing.T) {
	tr := mkTrace(t, 3, 100, []trace.Contact{{A: 0, B: 1, Start: 10, End: 20}})
	r := run(t, Config{
		Trace:     tr,
		Algorithm: forward.Epidemic{},
		Messages:  []Message{{Src: 0, Dst: 1, Start: 0}},
	})
	o := r.Outcomes[0]
	if !o.Delivered || o.Delay != 10 || o.Hops != 1 {
		t.Errorf("outcome = %+v, want delivered at delay 10, 1 hop", o)
	}
}

func TestMessageCreatedDuringContact(t *testing.T) {
	tr := mkTrace(t, 3, 100, []trace.Contact{{A: 0, B: 1, Start: 10, End: 50}})
	r := run(t, Config{
		Trace:     tr,
		Algorithm: forward.Epidemic{},
		Messages:  []Message{{Src: 0, Dst: 1, Start: 30}},
	})
	o := r.Outcomes[0]
	if !o.Delivered || o.Delay != 0 {
		t.Errorf("message created mid-contact should deliver immediately, got %+v", o)
	}
}

func TestEpidemicMultiHopRelay(t *testing.T) {
	tr := mkTrace(t, 4, 200, []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 20},
		{A: 1, B: 2, Start: 50, End: 60},
		{A: 2, B: 3, Start: 90, End: 100},
	})
	r := run(t, Config{
		Trace:     tr,
		Algorithm: forward.Epidemic{},
		Messages:  []Message{{Src: 0, Dst: 3, Start: 0}},
	})
	o := r.Outcomes[0]
	if !o.Delivered || o.Delay != 90 || o.Hops != 3 {
		t.Errorf("outcome = %+v, want delay 90, hops 3", o)
	}
}

func TestTransitiveSpreadWithinComponent(t *testing.T) {
	// 0-1 and 1-2 are simultaneously open when 0-1 starts; epidemic
	// reaches 2 instantly through the live component.
	tr := mkTrace(t, 3, 100, []trace.Contact{
		{A: 1, B: 2, Start: 0, End: 100},
		{A: 0, B: 1, Start: 50, End: 60},
	})
	r := run(t, Config{
		Trace:     tr,
		Algorithm: forward.Epidemic{},
		Messages:  []Message{{Src: 0, Dst: 2, Start: 10}},
	})
	o := r.Outcomes[0]
	if !o.Delivered || o.Delay != 40 || o.Hops != 2 {
		t.Errorf("outcome = %+v, want delay 40 (deliver at 50), 2 hops", o)
	}
}

func TestUndeliveredMessage(t *testing.T) {
	tr := mkTrace(t, 3, 100, []trace.Contact{{A: 0, B: 1, Start: 10, End: 20}})
	r := run(t, Config{
		Trace:     tr,
		Algorithm: forward.Epidemic{},
		Messages:  []Message{{Src: 0, Dst: 2, Start: 0}},
	})
	if r.Outcomes[0].Delivered {
		t.Errorf("unreachable destination delivered")
	}
	if got := r.SuccessRate(); got != 0 {
		t.Errorf("SuccessRate = %g, want 0", got)
	}
	if !math.IsNaN(r.MeanDelay()) {
		t.Errorf("MeanDelay of undelivered set should be NaN")
	}
}

func TestDirectDeliveryWaitsForDestination(t *testing.T) {
	tr := mkTrace(t, 3, 200, []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 20},   // relay opportunity, unused
		{A: 1, B: 2, Start: 30, End: 40},   // would deliver if forwarded
		{A: 0, B: 2, Start: 100, End: 110}, // source meets destination
	})
	r := run(t, Config{
		Trace:     tr,
		Algorithm: forward.DirectDelivery{},
		Messages:  []Message{{Src: 0, Dst: 2, Start: 0}},
	})
	o := r.Outcomes[0]
	if !o.Delivered || o.Delay != 100 {
		t.Errorf("direct delivery outcome = %+v, want delay 100", o)
	}
}

func TestRelayModeMovesCopy(t *testing.T) {
	// Relay 0->1 at t=10; then 0 meets dst at t=30 but no longer holds
	// the message; 1 meets dst at t=50.
	tr := mkTrace(t, 4, 200, []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 15},
		{A: 0, B: 3, Start: 30, End: 35},
		{A: 1, B: 3, Start: 50, End: 55},
	})
	// GreedyTotal: node 1 has 2 total contacts, node 0 has 2... make 1
	// busier by adding one more contact for 1.
	tr = mkTrace(t, 4, 200, []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 15},
		{A: 1, B: 2, Start: 20, End: 25},
		{A: 0, B: 3, Start: 30, End: 35},
		{A: 1, B: 3, Start: 50, End: 55},
	})
	r := run(t, Config{
		Trace:     tr,
		Algorithm: forward.GreedyTotal{},
		Messages:  []Message{{Src: 0, Dst: 3, Start: 0}},
		CopyMode:  Relay,
	})
	o := r.Outcomes[0]
	if !o.Delivered {
		t.Fatalf("not delivered")
	}
	if o.Delay != 50 {
		t.Errorf("delay = %g, want 50 (copy moved to node 1)", o.Delay)
	}
}

func TestReplicateModeKeepsCopy(t *testing.T) {
	// Same topology, replicate mode: node 0 still holds the message at
	// t=30 and delivers first.
	tr := mkTrace(t, 4, 200, []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 15},
		{A: 1, B: 2, Start: 20, End: 25},
		{A: 0, B: 3, Start: 30, End: 35},
		{A: 1, B: 3, Start: 50, End: 55},
	})
	r := run(t, Config{
		Trace:     tr,
		Algorithm: forward.GreedyTotal{},
		Messages:  []Message{{Src: 0, Dst: 3, Start: 0}},
	})
	if o := r.Outcomes[0]; !o.Delivered || o.Delay != 30 {
		t.Errorf("outcome = %+v, want delay 30", o)
	}
}

func TestSprayAndWaitBudget(t *testing.T) {
	// L=2: source sprays one copy to the first peer, then both wait.
	// Node 2 (second peer) must not receive a copy.
	tr := mkTrace(t, 5, 300, []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 15},
		{A: 0, B: 2, Start: 30, End: 35},
		{A: 2, B: 4, Start: 50, End: 55},   // 2 would deliver if it had a copy
		{A: 1, B: 4, Start: 100, End: 105}, // holder 1 delivers
	})
	r := run(t, Config{
		Trace:     tr,
		Algorithm: forward.SprayAndWait{L: 2},
		Messages:  []Message{{Src: 0, Dst: 4, Start: 0}},
	})
	o := r.Outcomes[0]
	if !o.Delivered || o.Delay != 100 {
		t.Errorf("outcome = %+v, want delivery at 100 via node 1", o)
	}
}

func TestDuplicateContactStartIgnored(t *testing.T) {
	tr := mkTrace(t, 3, 100, []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 30},
		{A: 0, B: 1, Start: 10, End: 20},
	})
	r := run(t, Config{
		Trace:     tr,
		Algorithm: forward.Epidemic{},
		Messages:  []Message{{Src: 0, Dst: 1, Start: 0}},
	})
	if !r.Outcomes[0].Delivered {
		t.Errorf("not delivered")
	}
}

func TestByPairType(t *testing.T) {
	tr := tracegen.Dev(2)
	cl := trace.NewClassifier(tr)
	msgs := Workload(tr, 0.25, tr.Horizon/2, 7)
	r := run(t, Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs})
	parts := r.ByPairType(cl)
	total := 0
	for _, pt := range trace.PairTypes {
		total += len(parts[pt].Outcomes)
	}
	if total != len(msgs) {
		t.Errorf("pair-type partition lost messages: %d vs %d", total, len(msgs))
	}
}

func TestMergeResults(t *testing.T) {
	a := &Result{Algorithm: "x", Outcomes: []Outcome{{Delivered: true, Delay: 10}}}
	b := &Result{Algorithm: "x", Outcomes: []Outcome{{Delivered: false}}}
	m := Merge(a, b)
	if len(m.Outcomes) != 2 || m.Algorithm != "x" {
		t.Errorf("merge = %+v", m)
	}
	if got := m.SuccessRate(); got != 0.5 {
		t.Errorf("merged success = %g", got)
	}
	if empty := Merge(); len(empty.Outcomes) != 0 {
		t.Errorf("empty merge = %+v", empty)
	}
}

func TestWorkload(t *testing.T) {
	tr := tracegen.Dev(3)
	msgs := Workload(tr, 0.25, 900, 11)
	if len(msgs) < 150 || len(msgs) > 320 {
		t.Errorf("workload size = %d, want ≈225", len(msgs))
	}
	for _, m := range msgs {
		if m.Src == m.Dst {
			t.Fatalf("self-addressed message")
		}
		if m.Start < 0 || m.Start >= 900 {
			t.Fatalf("message start %g outside generation window", m.Start)
		}
	}
	// Deterministic per seed.
	again := Workload(tr, 0.25, 900, 11)
	if len(again) != len(msgs) || again[0] != msgs[0] {
		t.Errorf("workload not deterministic")
	}
	if got := Workload(tr, 0, 900, 1); len(got) != 0 {
		t.Errorf("zero rate produced messages")
	}
}

func TestSuccessRateEmptyResult(t *testing.T) {
	r := &Result{}
	if !math.IsNaN(r.SuccessRate()) {
		t.Errorf("empty success rate should be NaN")
	}
}

// Property: epidemic forwarding dominates every other algorithm on
// both success rate and per-message delay (it finds optimal paths).
func TestEpidemicDominatesProperty(t *testing.T) {
	algos := []forward.Algorithm{
		forward.FRESH{}, forward.Greedy{}, forward.GreedyTotal{},
		forward.GreedyOnline{}, forward.DynamicProgramming{},
		forward.DirectDelivery{}, forward.SprayAndWait{}, &forward.PRoPHET{},
	}
	f := func(seed int64) bool {
		tr := tracegen.Dev(seed)
		msgs := Workload(tr, 0.1, 900, seed+1)
		if len(msgs) == 0 {
			return true
		}
		epi, err := Run(Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs})
		if err != nil {
			return false
		}
		for _, a := range algos {
			r, err := Run(Config{Trace: tr, Algorithm: a, Messages: msgs})
			if err != nil {
				return false
			}
			for i := range msgs {
				eo, ao := epi.Outcomes[i], r.Outcomes[i]
				if ao.Delivered && !eo.Delivered {
					t.Logf("%s delivered msg %d but epidemic did not", a.Name(), i)
					return false
				}
				if ao.Delivered && eo.Delivered && eo.Delay > ao.Delay+1e-9 {
					t.Logf("%s beat epidemic delay on msg %d: %g < %g", a.Name(), i, ao.Delay, eo.Delay)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// Property: delays are nonnegative and only delivered outcomes carry
// them; hop counts of delivered messages are >= 1.
func TestOutcomeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := tracegen.Dev(seed)
		msgs := Workload(tr, 0.2, 900, seed)
		r, err := Run(Config{Trace: tr, Algorithm: forward.Greedy{}, Messages: msgs})
		if err != nil {
			return false
		}
		for _, o := range r.Outcomes {
			if o.Delivered && (o.Delay < 0 || o.Hops < 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// The simulator must be deterministic: identical configs, identical
// outcomes.
func TestRunDeterministic(t *testing.T) {
	tr := tracegen.Dev(5)
	msgs := Workload(tr, 0.25, 900, 5)
	r1 := run(t, Config{Trace: tr, Algorithm: forward.FRESH{}, Messages: msgs})
	r2 := run(t, Config{Trace: tr, Algorithm: forward.FRESH{}, Messages: msgs})
	for i := range r1.Outcomes {
		if r1.Outcomes[i] != r2.Outcomes[i] {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, r1.Outcomes[i], r2.Outcomes[i])
		}
	}
}

var _ = rand.Int // keep math/rand import if property tests change

func TestTransmissionsCounted(t *testing.T) {
	tr := tracegen.Dev(6)
	msgs := Workload(tr, 0.1, 900, 6)
	epi := run(t, Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs})
	direct := run(t, Config{Trace: tr, Algorithm: forward.DirectDelivery{}, Messages: msgs})
	if epi.Transmissions == 0 {
		t.Fatalf("epidemic made no transmissions")
	}
	// Epidemic floods: it must cost at least as much as never
	// forwarding, and strictly more on any trace with relays.
	if epi.Transmissions <= direct.Transmissions {
		t.Errorf("epidemic txs %d not above direct delivery %d",
			epi.Transmissions, direct.Transmissions)
	}
	// Direct delivery transmits exactly once per delivered message.
	delivered := 0
	for _, o := range direct.Outcomes {
		if o.Delivered {
			delivered++
		}
	}
	if direct.Transmissions != delivered {
		t.Errorf("direct delivery txs %d, want %d (one per delivery)",
			direct.Transmissions, delivered)
	}
}

func TestMergeSumsTransmissions(t *testing.T) {
	a := &Result{Algorithm: "x", Transmissions: 3}
	b := &Result{Algorithm: "x", Transmissions: 4}
	if got := Merge(a, b).Transmissions; got != 7 {
		t.Errorf("merged transmissions = %d, want 7", got)
	}
}

// Relay-mode hop chains can exceed 127 (the single copy keeps moving
// for the whole trace); the per-node hop counters must not wrap the
// way the pre-refactor int8 slab silently did. A long ping-pong chain
// pins the exact count.
func TestRelayHopCountsDoNotOverflow(t *testing.T) {
	// Nodes 0 and 1 meet repeatedly; under relay both directions of a
	// contact run, so each meeting hands the single copy over and
	// straight back — two hops per meeting (the anti-revisit guard
	// only applies within one instantaneous propagation). The copy
	// ends at node 0 with 2·meetings hops, then meets the destination.
	var cs []trace.Contact
	tm := 0.0
	const meetings = 400
	for i := 0; i < meetings; i++ {
		cs = append(cs, trace.Contact{A: 0, B: 1, Start: tm, End: tm + 1})
		tm += 2
	}
	cs = append(cs, trace.Contact{A: 0, B: 2, Start: tm, End: tm + 1})
	tr := mkTrace(t, 3, tm+10, cs)
	res := run(t, Config{
		Trace:     tr,
		Algorithm: forward.Epidemic{},
		CopyMode:  Relay,
		Messages:  []Message{{Src: 0, Dst: 2, Start: 0}},
	})
	o := res.Outcomes[0]
	if !o.Delivered {
		t.Fatal("message not delivered")
	}
	if o.Hops <= 127 {
		t.Fatalf("test did not exercise >127 hops (got %d)", o.Hops)
	}
	if want := 2*meetings - 1; o.Hops != want {
		t.Errorf("Hops = %d, want %d (int8 wraparound would corrupt this)", o.Hops, want)
	}
}

// meedProbe is a user-defined algorithm (no marker interfaces) whose
// decisions read oracle distances. The lazily installed oracle must
// resolve the real MEED matrix on the first read — never hand such an
// algorithm +Inf placeholders.
type meedProbe struct{ finiteReads int }

func (m *meedProbe) Name() string { return "meed-probe" }

func (m *meedProbe) Forward(v *forward.View, holder, peer, dst trace.NodeID, _ float64) bool {
	if !math.IsInf(v.MEEDDistance(holder, dst), 1) {
		m.finiteReads++
	}
	return false
}

func TestLazyOracleServesUnmarkedDistanceReaders(t *testing.T) {
	tr := mkTrace(t, 3, 100, []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 20},
		{A: 1, B: 2, Start: 30, End: 40},
	})
	probe := &meedProbe{}
	if _, err := Run(Config{
		Trace:     tr,
		Algorithm: probe,
		Workers:   1,
		Messages:  []Message{{Src: 0, Dst: 2, Start: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	if probe.finiteReads == 0 {
		t.Error("algorithm reading MEEDDistance saw only +Inf: lazy oracle never resolved")
	}
}
