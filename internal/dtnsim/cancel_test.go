package dtnsim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/forward"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func cancelTestMessages(tr *trace.Trace, n int, seed int64) []Message {
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]Message, n)
	for i := range msgs {
		src := trace.NodeID(rng.Intn(tr.NumNodes))
		dst := trace.NodeID(rng.Intn(tr.NumNodes - 1))
		if dst >= src {
			dst++
		}
		msgs[i] = Message{Src: src, Dst: dst, Start: rng.Float64() * tr.Horizon / 2}
	}
	return msgs
}

// TestRunCancelEquivalence: a never-firing token leaves the Result
// byte-identical to a run without one, serial and parallel.
func TestRunCancelEquivalence(t *testing.T) {
	tr := tracegen.Dev(5)
	msgs := cancelTestMessages(tr, 40, 5)
	inert := engine.NewCancel(context.Background(), time.Hour)

	for _, workers := range []int{1, 4} {
		base := Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs, Workers: workers}
		plain, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		withToken := base
		withToken.Cancel = &inert
		tokenRes, err := Run(withToken)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, tokenRes) {
			t.Fatalf("workers=%d: Result differs under a never-firing token", workers)
		}
	}
}

// TestRunCancelAbandons: a fired token abandons the replay with a
// *engine.CanceledError and no Result.
func TestRunCancelAbandons(t *testing.T) {
	tr := tracegen.Dev(5)
	msgs := cancelTestMessages(tr, 40, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := engine.NewCancel(ctx, 0)

	for _, workers := range []int{1, 4} {
		r, err := Run(Config{
			Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs,
			Workers: workers, Cancel: &cc,
		})
		if !engine.IsCanceled(err) {
			t.Fatalf("workers=%d: err = %v, want CanceledError", workers, err)
		}
		if r != nil {
			t.Fatalf("workers=%d: Run returned a Result alongside cancellation", workers)
		}
	}
}

// TestSweepCancelEquivalence covers the pooled path the serving layer
// actually uses: Sweep.Run with and without an inert token agree, and
// a fired token abandons without poisoning the pooled sim state (the
// next uncancelled run over the same Sweep still matches).
func TestSweepCancelEquivalence(t *testing.T) {
	tr := tracegen.Dev(5)
	msgs := cancelTestMessages(tr, 40, 5)
	sw, err := NewSweep(tr)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs}
	plain, err := sw.Run(base)
	if err != nil {
		t.Fatal(err)
	}

	inert := engine.NewCancel(context.Background(), time.Hour)
	cfg := base
	cfg.Cancel = &inert
	tokenRes, err := sw.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, tokenRes) {
		t.Fatal("Sweep.Run differs under a never-firing token")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fired := engine.NewCancel(ctx, 0)
	cfg.Cancel = &fired
	if r, err := sw.Run(cfg); !engine.IsCanceled(err) || r != nil {
		t.Fatalf("fired token: r=%v err=%v, want nil result + CanceledError", r, err)
	}

	again, err := sw.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, again) {
		t.Fatal("Result after an abandoned run differs — pooled state poisoned")
	}
}
