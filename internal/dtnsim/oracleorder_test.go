package dtnsim

import (
	"reflect"
	"testing"

	"repro/internal/forward"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestEventOrderRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 5, 11} {
		tr := tracegen.Dev(seed)
		fresh := NewOracle(tr)
		restored, err := NewOracleFromOrder(tr, fresh.EventOrder())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(fresh.events, restored.events) {
			t.Fatalf("seed %d: restored event stream differs", seed)
		}
		if !reflect.DeepEqual(fresh.totals, restored.totals) {
			t.Fatalf("seed %d: restored totals differ", seed)
		}

		// A run through a sweep around the restored oracle must be
		// byte-identical to a plain run.
		msgs := Workload(tr, 0.25, tr.Horizon/2, seed)
		want, err := Run(Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		sw, err := NewSweepFromOracle(restored)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sw.Run(Config{Algorithm: forward.Epidemic{}, Messages: msgs, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: restored-oracle run differs from fresh run", seed)
		}
	}
}

func TestNewOracleFromOrderRejectsCorruption(t *testing.T) {
	tr := tracegen.Dev(3)
	good := NewOracle(tr).EventOrder()
	cases := []struct {
		name   string
		mutate func([]int32) []int32
	}{
		{"truncated", func(o []int32) []int32 { return o[:len(o)-1] }},
		{"out of range", func(o []int32) []int32 { o[0] = int32(len(o)); return o }},
		{"negative", func(o []int32) []int32 { o[0] = -1; return o }},
		{"duplicate", func(o []int32) []int32 { o[1] = o[0]; return o }},
		{"swapped pair", func(o []int32) []int32 { o[0], o[len(o)-1] = o[len(o)-1], o[0]; return o }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			order := tc.mutate(append([]int32(nil), good...))
			if _, err := NewOracleFromOrder(tr, order); err == nil {
				t.Fatal("corrupted event order accepted")
			}
		})
	}
	if _, err := NewOracleFromOrder(nil, good); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := NewOracleFromOrder(trace.MustNew("other", tr.NumNodes, tr.Horizon, nil), good); err == nil {
		t.Fatal("order for a different trace accepted")
	}
}
