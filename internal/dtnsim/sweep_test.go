package dtnsim

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/forward"
	"repro/internal/tracegen"
)

// --- liveSet: the dense live-message index ---

// TestLiveSetMatchesMapModel drives the dense live set and a map-based
// model through seeded random schedules of add/remove events —
// mimicking the create/deliver churn of a simulation run — and checks
// membership, count and iteration agree after every step.
func TestLiveSetMatchesMapModel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		var l liveSet
		l.reset(n)
		model := make(map[int]bool)
		for step := 0; step < 2000; step++ {
			id := rng.Intn(n)
			switch {
			case rng.Intn(2) == 0:
				l.add(id)
				model[id] = true
			default:
				l.remove(id)
				delete(model, id)
			}
			if got, want := l.has(id), model[id]; got != want {
				t.Fatalf("seed %d step %d: has(%d) = %v, model %v", seed, step, id, got, want)
			}
			if got, want := l.count(), len(model); got != want {
				t.Fatalf("seed %d step %d: count = %d, model %d", seed, step, got, want)
			}
		}
		// Iteration yields exactly the model's members, each once, in
		// ascending order.
		var seen []int
		l.Each(func(id int) { seen = append(seen, id) })
		if len(seen) != len(model) {
			t.Fatalf("seed %d: Each yielded %d ids, model has %d", seed, len(seen), len(model))
		}
		for i, id := range seen {
			if !model[id] {
				t.Fatalf("seed %d: Each yielded non-member %d", seed, id)
			}
			if i > 0 && seen[i-1] >= id {
				t.Fatalf("seed %d: Each order not ascending: %d before %d", seed, seen[i-1], id)
			}
		}
	}
}

// TestLiveSetRemoveDuringEach pins the one mutation Each permits:
// removing the id currently being visited must not skip or double-
// visit any other member (the simulator's deliver does exactly this).
func TestLiveSetRemoveDuringEach(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		var l liveSet
		l.reset(n)
		want := make(map[int]bool)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				l.add(i)
				want[i] = true
			}
		}
		visited := make(map[int]int)
		l.Each(func(id int) {
			visited[id]++
			if rng.Intn(2) == 0 {
				l.remove(id)
			}
		})
		if len(visited) != len(want) {
			t.Fatalf("seed %d: visited %d ids, want %d", seed, len(visited), len(want))
		}
		for id, c := range visited {
			if !want[id] || c != 1 {
				t.Fatalf("seed %d: id %d visited %d times (member: %v)", seed, id, c, want[id])
			}
		}
	}
}

// --- Sweep: pooled-state reset equivalence ---

// TestSweepResetIndistinguishableFromFresh runs a varied configuration
// sequence twice over one Sweep — so the second pass runs entirely on
// pooled, reset state — and checks every result equals both the first
// pass's and a fresh Run's. This pins the reset contract: a pooled sim
// is indistinguishable from a freshly constructed one even after runs
// with different algorithms, copy modes, message counts and worker
// counts have dirtied it.
func TestSweepResetIndistinguishableFromFresh(t *testing.T) {
	tr := tracegen.Dev(11)
	sw, err := NewSweep(tr)
	if err != nil {
		t.Fatal(err)
	}
	msgsA := Workload(tr, 0.2, tr.Horizon, 7)
	msgsB := Workload(tr, 0.05, tr.Horizon/2, 8) // different count and window
	matrix := []Config{
		{Algorithm: forward.Epidemic{}, Messages: msgsA, Workers: 1},
		{Algorithm: forward.SprayAndWait{L: 4}, Messages: msgsB, Workers: 1},
		{Algorithm: &forward.PRoPHET{}, Messages: msgsA, CopyMode: Relay, Workers: 1},
		{Algorithm: forward.DynamicProgramming{}, Messages: msgsB, Workers: 3},
		{Algorithm: forward.Greedy{}, Messages: msgsA, CopyMode: Relay, Workers: 2},
		{Algorithm: forward.Epidemic{}, Messages: msgsB, Workers: 4},
	}
	first := make([]*Result, len(matrix))
	for i, cfg := range matrix {
		if first[i], err = sw.Run(cfg); err != nil {
			t.Fatalf("pass 1 cfg %d: %v", i, err)
		}
	}
	for i, cfg := range matrix {
		again, err := sw.Run(cfg)
		if err != nil {
			t.Fatalf("pass 2 cfg %d: %v", i, err)
		}
		if !reflect.DeepEqual(first[i], again) {
			t.Errorf("cfg %d: pooled rerun diverges from first run", i)
		}
		cfg.Trace = tr
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatalf("fresh cfg %d: %v", i, err)
		}
		if !reflect.DeepEqual(first[i], fresh) {
			t.Errorf("cfg %d: sweep run diverges from fresh Run", i)
		}
	}
}

// TestSweepValidation exercises the Sweep-specific error paths.
func TestSweepValidation(t *testing.T) {
	if _, err := NewSweep(nil); err == nil {
		t.Error("nil trace accepted")
	}
	tr := tracegen.Dev(1)
	other := tracegen.Dev(2)
	sw, err := NewSweep(tr)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Trace() != tr {
		t.Error("Trace() does not return the sweep trace")
	}
	if sw.Oracle() == nil || sw.Oracle().Trace() != tr {
		t.Error("Oracle() not built from the sweep trace")
	}
	if _, err := sw.Run(Config{Algorithm: forward.Epidemic{}, Trace: other}); err == nil {
		t.Error("different trace accepted")
	}
	if _, err := sw.Run(Config{Algorithm: forward.Epidemic{}, Oracle: NewOracle(tr)}); err == nil {
		t.Error("foreign oracle accepted")
	}
	if _, err := sw.Run(Config{}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := sw.Run(Config{Algorithm: forward.Epidemic{}, Messages: []Message{{Src: 0, Dst: 0}}}); err == nil {
		t.Error("invalid message accepted")
	}
	// The sweep's own oracle and trace are accepted explicitly.
	if _, err := sw.Run(Config{Algorithm: forward.Epidemic{}, Trace: tr, Oracle: sw.Oracle()}); err != nil {
		t.Errorf("sweep's own trace+oracle rejected: %v", err)
	}
}

// TestSweepConcurrentRuns hammers one Sweep from many goroutines (the
// serving layer's usage) and checks every result matches a fresh
// serial Run; `go test -race` guards the pool handoff.
func TestSweepConcurrentRuns(t *testing.T) {
	tr := tracegen.Dev(3)
	sw, err := NewSweep(tr)
	if err != nil {
		t.Fatal(err)
	}
	msgs := Workload(tr, 0.15, tr.Horizon, 3)
	want, err := Run(Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				r, err := sw.Run(Config{Algorithm: forward.Epidemic{}, Messages: msgs, Workers: 1 + g%3})
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(want, r) {
					t.Error("concurrent sweep run diverges")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSweepZeroAndTinyRuns covers the degenerate shard shapes: no
// messages, fewer messages than workers.
func TestSweepZeroAndTinyRuns(t *testing.T) {
	tr := tracegen.Dev(4)
	sw, err := NewSweep(tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sw.Run(Config{Algorithm: forward.Epidemic{}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes) != 0 || r.Transmissions != 0 {
		t.Errorf("empty run produced %+v", r)
	}
	one := []Message{{Src: 0, Dst: 1, Start: 10}}
	r1, err := sw.Run(Config{Algorithm: forward.Epidemic{}, Messages: one, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: one, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, fresh) {
		t.Error("single-message sweep run diverges from fresh Run")
	}
}
