// Package dtnsim is the trace-driven DTN simulator of the paper's §6:
// it replays a contact trace, injects a Poisson message workload
// (one message per 4 seconds over the first two hours, endpoints
// uniform at random), runs a forwarding algorithm with infinite
// buffers and zero transmission time, and reports success rate S and
// average delay D — overall and split by in/out pair type.
//
// Semantics follow §4.1: minimal progress (any holder meeting the
// destination delivers immediately), store-and-forward with instant
// in-component propagation (a message received mid-contact can
// immediately traverse the holder's other live contacts), and
// replication by default (a forwarding node keeps its copy; the paper
// models nodes that never discard messages).
package dtnsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/forward"
	"repro/internal/trace"
)

// Message is one unicast message to be delivered.
type Message struct {
	Src, Dst trace.NodeID
	Start    float64
}

// CopyMode selects what happens to the holder's copy on a forward.
type CopyMode int

const (
	// Replicate keeps the holder's copy (the paper's model: nodes hold
	// every message until the end of the simulation).
	Replicate CopyMode = iota
	// Relay hands the single copy over (single-copy ablation AB3).
	Relay
)

func (m CopyMode) String() string {
	if m == Relay {
		return "relay"
	}
	return "replicate"
}

// Config parametrizes one simulation run.
type Config struct {
	Trace     *trace.Trace
	Algorithm forward.Algorithm
	Messages  []Message
	CopyMode  CopyMode

	// Workers caps the number of goroutines evaluating messages
	// concurrently. Zero means runtime.GOMAXPROCS(0); 1 forces a
	// serial run. Messages are independent (infinite buffers, zero
	// transmission time), so the per-message outcomes — and the
	// aggregate Result — are byte-identical for every worker count.
	// Algorithms with mutable state parallelize only if they implement
	// forward.Cloner (each worker replays the full contact stream into
	// its own clone); otherwise the run falls back to serial.
	Workers int

	// Oracle optionally supplies the precomputed read-only tables for
	// Trace (see NewOracle). Nil means Run derives them itself; a
	// non-nil Oracle must have been built from the same Trace. Runs
	// with and without an Oracle are byte-identical: the tables are
	// pure functions of the trace.
	Oracle *Oracle
}

// Oracle bundles the read-only per-trace tables a simulation replays:
// whole-trace contact totals, the O(n³) MEED distance metric, and the
// sorted contact event stream. Run derives them on every call; callers
// simulating one trace many times (parameter sweeps, a serving layer)
// build the Oracle once and share it — it is immutable and safe for
// concurrent use across simulations.
type Oracle struct {
	tr     *trace.Trace
	totals []int
	meed   [][]float64
	events []event
}

// NewOracle precomputes the simulation tables for tr.
func NewOracle(tr *trace.Trace) *Oracle {
	return &Oracle{
		tr:     tr,
		totals: tr.ContactCounts(),
		meed:   forward.MEEDDistances(tr),
		events: contactEventList(tr),
	}
}

// Outcome records the fate of one message.
type Outcome struct {
	Msg       Message
	Delivered bool
	Delay     float64 // first-delivery latency (valid when Delivered)
	Hops      int     // transmissions on the delivering copy's path
}

// Result aggregates a run.
type Result struct {
	Algorithm string
	Outcomes  []Outcome

	// Transmissions counts every message copy handed between nodes
	// (including final deliveries). The paper leaves forwarding cost
	// as future work (§7); this is the natural cost metric for
	// comparing algorithms that achieve similar delay and success.
	Transmissions int
}

// maxSimNodes bounds the population (holder sets are two-word bitsets).
const maxSimNodes = 128

// Run simulates cfg and returns per-message outcomes.
func Run(cfg Config) (*Result, error) {
	tr := cfg.Trace
	if tr == nil {
		return nil, fmt.Errorf("dtnsim: nil trace")
	}
	if cfg.Algorithm == nil {
		return nil, fmt.Errorf("dtnsim: nil algorithm")
	}
	if tr.NumNodes > maxSimNodes {
		return nil, fmt.Errorf("dtnsim: trace has %d nodes, max %d", tr.NumNodes, maxSimNodes)
	}
	for i, m := range cfg.Messages {
		if m.Src < 0 || int(m.Src) >= tr.NumNodes || m.Dst < 0 || int(m.Dst) >= tr.NumNodes {
			return nil, fmt.Errorf("dtnsim: message %d endpoints out of range", i)
		}
		if m.Src == m.Dst {
			return nil, fmt.Errorf("dtnsim: message %d has equal endpoints", i)
		}
		if m.Start < 0 || m.Start >= tr.Horizon {
			return nil, fmt.Errorf("dtnsim: message %d start %g outside trace", i, m.Start)
		}
	}

	// The oracle tables (whole-trace totals and the O(n³) MEED metric)
	// are read-only during simulation: compute them once — or accept
	// them precomputed — and share them across every shard.
	oracle := cfg.Oracle
	if oracle == nil {
		oracle = NewOracle(tr)
	} else if oracle.tr != tr {
		return nil, fmt.Errorf("dtnsim: oracle was built from a different trace")
	}
	totals, meed, contactEvents := oracle.totals, oracle.meed, oracle.events

	workers := engine.Workers(cfg.Workers)
	if workers > len(cfg.Messages) {
		workers = len(cfg.Messages)
	}
	algs, parallelizable := forward.ParallelInstances(cfg.Algorithm, max(workers, 1))
	if workers <= 1 || !parallelizable {
		s := newSim(cfg, cfg.Messages, totals, meed)
		s.run(contactEvents)
		return &Result{Algorithm: cfg.Algorithm.Name(), Outcomes: s.outcomes, Transmissions: s.sent}, nil
	}

	// Fan the messages out in strided shards: worker w owns messages
	// w, w+workers, … Each shard replays the full contact stream into
	// its own View (and algorithm clone), so every message sees
	// exactly the state it would have seen in a serial run; outcomes
	// land at their global index and transmission counts add up.
	outcomes := make([]Outcome, len(cfg.Messages))
	sent := make([]int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var msgs []Message
			var idx []int
			for i := w; i < len(cfg.Messages); i += workers {
				msgs = append(msgs, cfg.Messages[i])
				idx = append(idx, i)
			}
			shard := cfg
			shard.Algorithm = algs[w]
			s := newSim(shard, msgs, totals, meed)
			s.run(contactEvents)
			for j, o := range s.outcomes {
				outcomes[idx[j]] = o
			}
			sent[w] = s.sent
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range sent {
		total += n
	}
	return &Result{Algorithm: cfg.Algorithm.Name(), Outcomes: outcomes, Transmissions: total}, nil
}

// contactEventList builds the trace's contact start/end events, sorted
// once and shared read-only by every shard.
func contactEventList(tr *trace.Trace) []event {
	events := make([]event, 0, 2*tr.Len())
	for _, c := range tr.Contacts() {
		events = append(events,
			event{time: c.Start, kind: evContactStart, a: c.A, b: c.B},
			event{time: c.End, kind: evContactEnd, a: c.A, b: c.B},
		)
	}
	sortEvents(events)
	return events
}

func sortEvents(events []event) {
	sort.SliceStable(events, func(i, j int) bool { return eventBefore(events[i], events[j]) })
}

// event kinds, processed in time order; at equal times contact starts
// precede message creations (a message created at the instant a
// contact begins may use it), and ends come last.
type eventKind int

const (
	evContactStart eventKind = iota
	evMsgCreate
	evContactEnd
)

type event struct {
	time float64
	kind eventKind
	a, b trace.NodeID // contact endpoints
	msg  int          // message index
}

type holderSet [2]uint64

func (h holderSet) has(n trace.NodeID) bool { return h[n>>6]&(1<<(uint(n)&63)) != 0 }
func (h *holderSet) add(n trace.NodeID)     { h[n>>6] |= 1 << (uint(n) & 63) }
func (h *holderSet) remove(n trace.NodeID)  { h[n>>6] &^= 1 << (uint(n) & 63) }

type msgState struct {
	msg       Message
	holders   holderSet
	hops      []int8 // per-node hop count of its copy
	copies    []int16
	delivered bool
	created   bool
}

type sim struct {
	cfg      Config // shard configuration; cfg.Messages is superseded by msgs
	view     *forward.View
	obs      forward.ContactObserver
	sprayL   int // 0 when the algorithm has no copy budget
	open     [][]trace.NodeID
	msgs     []msgState
	live     map[int]bool
	outcomes []Outcome
	sent     int // total copy transfers, including deliveries
}

// newSim prepares a simulation of the given message shard; totals and
// meed are the shared read-only oracle tables.
func newSim(cfg Config, msgs []Message, totals []int, meed [][]float64) *sim {
	n := cfg.Trace.NumNodes
	s := &sim{
		cfg:  cfg,
		view: forward.NewView(n),
		open: make([][]trace.NodeID, n),
		live: make(map[int]bool),
	}
	s.view.InstallOracle(totals, meed)
	if st, ok := cfg.Algorithm.(forward.Stateful); ok {
		st.Reset(n)
	}
	if o, ok := cfg.Algorithm.(forward.ContactObserver); ok {
		s.obs = o
	}
	if cb, ok := cfg.Algorithm.(forward.CopyBudget); ok {
		s.sprayL = cb.InitialCopies()
	}
	s.msgs = make([]msgState, len(msgs))
	s.outcomes = make([]Outcome, len(msgs))
	for i, m := range msgs {
		s.msgs[i].msg = m
		s.msgs[i].hops = make([]int8, n)
		if s.sprayL > 0 {
			s.msgs[i].copies = make([]int16, n)
		}
		s.outcomes[i] = Outcome{Msg: m}
	}
	return s
}

// run replays the shared contact events interleaved with this shard's
// message creations. Only the shard's (few) creation events need
// sorting; they are then merged into the pre-sorted contact stream in
// linear time, in exactly the (time, kind) order sortEvents produces.
func (s *sim) run(contactEvents []event) {
	creates := make([]event, 0, len(s.msgs))
	for i := range s.msgs {
		creates = append(creates, event{time: s.msgs[i].msg.Start, kind: evMsgCreate, msg: i})
	}
	sortEvents(creates)
	i, j := 0, 0
	for i < len(contactEvents) || j < len(creates) {
		var ev event
		if j >= len(creates) || (i < len(contactEvents) && eventBefore(contactEvents[i], creates[j])) {
			ev = contactEvents[i]
			i++
		} else {
			ev = creates[j]
			j++
		}
		switch ev.kind {
		case evContactStart:
			s.contactStart(ev.a, ev.b, ev.time)
		case evMsgCreate:
			s.createMessage(ev.msg, ev.time)
		case evContactEnd:
			s.contactEnd(ev.a, ev.b)
		}
	}
}

// eventBefore is the sortEvents order: time, then kind (starts before
// creations before ends). Cross-list ties never share a kind, so the
// merge is stable.
func eventBefore(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.kind < b.kind
}

func (s *sim) contactStart(a, b trace.NodeID, now float64) {
	// Overlapping records of the same pair are kept as a multiset: each
	// record contributes one open entry and one end-time removal, so a
	// longer overlapping record keeps the pair connected. Each record
	// also counts as one observed contact, matching trace.ContactCounts.
	s.view.Observe(a, b, now)
	if s.obs != nil {
		s.obs.OnContact(a, b, now)
	}
	s.open[a] = append(s.open[a], b)
	s.open[b] = append(s.open[b], a)
	for id := range s.live {
		s.exchange(id, a, b, now)
		s.exchange(id, b, a, now)
	}
}

func (s *sim) contactEnd(a, b trace.NodeID) {
	s.open[a] = removeNode(s.open[a], b)
	s.open[b] = removeNode(s.open[b], a)
}

func removeNode(list []trace.NodeID, n trace.NodeID) []trace.NodeID {
	for i, x := range list {
		if x == n {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

func (s *sim) createMessage(id int, now float64) {
	m := &s.msgs[id]
	m.created = true
	m.holders.add(m.msg.Src)
	if s.sprayL > 0 {
		m.copies[m.msg.Src] = int16(s.sprayL)
	}
	s.live[id] = true
	// The source may already be inside a live contact component;
	// spread (or deliver, which removes the message from the live set)
	// immediately.
	var seen holderSet
	seen.add(m.msg.Src)
	s.spread(id, m.msg.Src, now, seen)
}

// exchange considers handing message id from holder to peer at a
// contact event, then lets the message spread onward from the peer.
func (s *sim) exchange(id int, holder, peer trace.NodeID, now float64) {
	m := &s.msgs[id]
	if m.delivered || !m.created || !m.holders.has(holder) || m.holders.has(peer) {
		return
	}
	if peer == m.msg.Dst {
		s.deliver(id, holder, now)
		return
	}
	if !s.shouldForward(id, holder, peer, now) {
		return
	}
	s.transfer(id, holder, peer)
	var seen holderSet
	seen.add(holder)
	seen.add(peer)
	s.spread(id, peer, now, seen)
}

// spread propagates message id from node through the live contact
// component (zero transmission time), respecting the forwarding rule
// at each hop. seen holds the nodes that have already held the
// message during this instantaneous propagation (including from):
// re-transferring to them cannot reach anything new and, in relay
// mode with an always-forward algorithm, would ping-pong the single
// copy between two nodes forever. A node may still re-receive the
// message at a later contact event. In replicate mode holders only
// grow, so seen ⊆ holders and the guard changes nothing.
func (s *sim) spread(id int, from trace.NodeID, now float64, seen holderSet) {
	m := &s.msgs[id]
	if m.delivered {
		return
	}
	queue := []trace.NodeID{from}
	for len(queue) > 0 && !m.delivered {
		cur := queue[0]
		queue = queue[1:]
		if !m.holders.has(cur) {
			continue // copy moved on (relay mode)
		}
		for _, peer := range s.open[cur] {
			if m.delivered {
				return
			}
			if m.holders.has(peer) {
				continue
			}
			if peer == m.msg.Dst {
				s.deliver(id, cur, now)
				return
			}
			if seen.has(peer) || !s.shouldForward(id, cur, peer, now) {
				continue
			}
			s.transfer(id, cur, peer)
			seen.add(peer)
			queue = append(queue, peer)
			if !m.holders.has(cur) {
				// Relay mode: cur handed its single copy to peer and
				// has nothing left to forward or deliver from —
				// continuing the loop would duplicate the copy.
				break
			}
		}
	}
}

func (s *sim) shouldForward(id int, holder, peer trace.NodeID, now float64) bool {
	m := &s.msgs[id]
	if s.sprayL > 0 && m.copies[holder] <= 1 {
		return false // wait phase: only direct delivery
	}
	return s.cfg.Algorithm.Forward(s.view, holder, peer, m.msg.Dst, now)
}

func (s *sim) transfer(id int, holder, peer trace.NodeID) {
	s.sent++
	m := &s.msgs[id]
	m.holders.add(peer)
	m.hops[peer] = m.hops[holder] + 1
	if s.sprayL > 0 {
		half := m.copies[holder] / 2
		m.copies[peer] = half
		m.copies[holder] -= half
	}
	if s.cfg.CopyMode == Relay {
		m.holders.remove(holder)
	}
}

func (s *sim) deliver(id int, holder trace.NodeID, now float64) {
	s.sent++
	m := &s.msgs[id]
	m.delivered = true
	s.outcomes[id].Delivered = true
	s.outcomes[id].Delay = now - m.msg.Start
	s.outcomes[id].Hops = int(m.hops[holder]) + 1
	delete(s.live, id)
}

// SuccessRate returns the fraction of messages delivered.
func (r *Result) SuccessRate() float64 {
	if len(r.Outcomes) == 0 {
		return math.NaN()
	}
	n := 0
	for _, o := range r.Outcomes {
		if o.Delivered {
			n++
		}
	}
	return float64(n) / float64(len(r.Outcomes))
}

// MeanDelay returns the average delay over delivered messages, or NaN
// if none were delivered (the paper's D = E[T | delivered]).
func (r *Result) MeanDelay() float64 {
	sum, n := 0.0, 0
	for _, o := range r.Outcomes {
		if o.Delivered {
			sum += o.Delay
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Delays returns the delays of all delivered messages.
func (r *Result) Delays() []float64 {
	var out []float64
	for _, o := range r.Outcomes {
		if o.Delivered {
			out = append(out, o.Delay)
		}
	}
	return out
}

// ByPairType partitions outcomes by the in/out class of their
// endpoints (§5.2) under cl.
func (r *Result) ByPairType(cl *trace.Classifier) map[trace.PairType]*Result {
	out := make(map[trace.PairType]*Result, 4)
	for _, pt := range trace.PairTypes {
		out[pt] = &Result{Algorithm: r.Algorithm}
	}
	for _, o := range r.Outcomes {
		pt := cl.Classify(o.Msg.Src, o.Msg.Dst)
		out[pt].Outcomes = append(out[pt].Outcomes, o)
	}
	return out
}

// Merge combines results from multiple runs of the same algorithm.
func Merge(rs ...*Result) *Result {
	if len(rs) == 0 {
		return &Result{}
	}
	m := &Result{Algorithm: rs[0].Algorithm}
	for _, r := range rs {
		m.Outcomes = append(m.Outcomes, r.Outcomes...)
		m.Transmissions += r.Transmissions
	}
	return m
}

// Workload draws the paper's message workload: a Poisson process with
// the given rate (the paper uses one message per 4 s) over
// [0, genHorizon), with endpoints uniform at random among distinct
// node pairs.
func Workload(tr *trace.Trace, rate, genHorizon float64, seed int64) []Message {
	rng := rand.New(rand.NewSource(seed))
	var out []Message
	if rate <= 0 || genHorizon <= 0 {
		return out
	}
	for t := rng.ExpFloat64() / rate; t < genHorizon && t < tr.Horizon; t += rng.ExpFloat64() / rate {
		src := trace.NodeID(rng.Intn(tr.NumNodes))
		dst := trace.NodeID(rng.Intn(tr.NumNodes - 1))
		if dst >= src {
			dst++
		}
		out = append(out, Message{Src: src, Dst: dst, Start: t})
	}
	return out
}
