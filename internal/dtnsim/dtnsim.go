// Package dtnsim is the trace-driven DTN simulator of the paper's §6:
// it replays a contact trace, injects a Poisson message workload
// (one message per 4 seconds over the first two hours, endpoints
// uniform at random), runs a forwarding algorithm with infinite
// buffers and zero transmission time, and reports success rate S and
// average delay D — overall and split by in/out pair type.
//
// Semantics follow §4.1: minimal progress (any holder meeting the
// destination delivers immediately), store-and-forward with instant
// in-component propagation (a message received mid-contact can
// immediately traverse the holder's other live contacts), and
// replication by default (a forwarding node keeps its copy; the paper
// models nodes that never discard messages).
//
// The hot path is allocation-free in steady state: per-worker
// simulation state (the contact View, per-message hop/copy slabs, the
// live-message index, spread queues, event buffers) lives in pooled
// scratch that a Sweep resets and reuses across runs, so a multi-run
// parameter sweep pays the oracle tables and the event-sort once and
// each additional run costs only the replay itself plus one Outcome
// slice for its results.
//
// The replay itself is bitset-indexed: each node carries a dense
// bitset of the messages it holds, so the per-contact search for
// messages that can act is one XOR-and-mask sweep over a few machine
// words — a message held by both endpoints, by neither, or already
// delivered costs nothing — instead of a per-message scan.
package dtnsim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"slices"
	"sync"

	"repro/internal/engine"
	"repro/internal/forward"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Message is one unicast message to be delivered.
type Message struct {
	Src, Dst trace.NodeID
	Start    float64
}

// CopyMode selects what happens to the holder's copy on a forward.
type CopyMode int

const (
	// Replicate keeps the holder's copy (the paper's model: nodes hold
	// every message until the end of the simulation).
	Replicate CopyMode = iota
	// Relay hands the single copy over (single-copy ablation AB3).
	Relay
)

func (m CopyMode) String() string {
	if m == Relay {
		return "relay"
	}
	return "replicate"
}

// Config parametrizes one simulation run.
type Config struct {
	Trace     *trace.Trace
	Algorithm forward.Algorithm
	Messages  []Message
	CopyMode  CopyMode

	// Workers caps the number of goroutines evaluating messages
	// concurrently. Zero means runtime.GOMAXPROCS(0); 1 forces a
	// serial run. Messages are independent (infinite buffers, zero
	// transmission time), so the per-message outcomes — and the
	// aggregate Result — are byte-identical for every worker count.
	// Algorithms with mutable state parallelize only if they implement
	// forward.Cloner (each worker replays the full contact stream into
	// its own clone); otherwise the run falls back to serial.
	Workers int

	// Oracle optionally supplies the precomputed read-only tables for
	// Trace (see NewOracle). Nil means Run derives them itself; a
	// non-nil Oracle must have been built from the same Trace. Runs
	// with and without an Oracle are byte-identical: the tables are
	// pure functions of the trace.
	Oracle *Oracle

	// Cancel optionally threads a cooperative cancellation token
	// through the replay: every shard polls it a few thousand events
	// apart and, once it fires, the run abandons with a
	// *engine.CanceledError and no Result. Nil is inert, and a token
	// that never fires leaves the Result byte-identical.
	Cancel *engine.Cancel
}

// Oracle bundles the read-only per-trace tables a simulation replays:
// whole-trace contact totals, the O(n³) MEED distance metric, and the
// sorted contact event stream. Run derives them on every call; callers
// simulating one trace many times (parameter sweeps, a serving layer)
// build the Oracle once — or better, a Sweep, which also pools the
// mutable per-run state — and share it: it is immutable once built and
// safe for concurrent use across simulations.
//
// The MEED matrix is computed lazily, once, on the first MEEDDistance
// read of any run (views install the oracle with a resolver): the
// Floyd-Warshall closure is cubic in the population, which city-scale
// traces cannot afford to pay for algorithms — epidemic floods,
// encounter gradients — that never look at it. Runs are byte-identical
// either way; the table is a pure function of the trace.
type Oracle struct {
	tr     *trace.Trace
	totals []int
	events []event

	meedOnce sync.Once
	meed     *forward.DistMatrix
}

// NewOracle precomputes the simulation tables for tr.
func NewOracle(tr *trace.Trace) *Oracle {
	return &Oracle{
		tr:     tr,
		totals: tr.ContactCounts(),
		events: contactEventList(tr),
	}
}

// MEED returns the oracle's expected-delay distance matrix, computing
// it on first use. Safe for concurrent callers.
func (o *Oracle) MEED() *forward.DistMatrix {
	o.meedOnce.Do(func() { o.meed = forward.MEEDDistances(o.tr) })
	return o.meed
}

// Trace returns the trace the oracle was built from.
func (o *Oracle) Trace() *trace.Trace { return o.tr }

// Outcome records the fate of one message.
type Outcome struct {
	Msg       Message
	Delivered bool
	Delay     float64 // first-delivery latency (valid when Delivered)
	Hops      int     // transmissions on the delivering copy's path
}

// Result aggregates a run.
type Result struct {
	Algorithm string
	Outcomes  []Outcome

	// Transmissions counts every message copy handed between nodes
	// (including final deliveries). The paper leaves forwarding cost
	// as future work (§7); this is the natural cost metric for
	// comparing algorithms that achieve similar delay and success.
	Transmissions int
}

// Run simulates cfg and returns per-message outcomes. Every call
// derives (or accepts via cfg.Oracle) the read-only trace tables; use
// a Sweep to amortize them — and the pooled per-worker state — across
// many runs of one trace.
func Run(cfg Config) (*Result, error) {
	tr := cfg.Trace
	if tr == nil {
		return nil, fmt.Errorf("dtnsim: nil trace")
	}
	if cfg.Algorithm == nil {
		return nil, fmt.Errorf("dtnsim: nil algorithm")
	}
	oracle := cfg.Oracle
	if oracle == nil {
		oracle = NewOracle(tr)
	} else if oracle.tr != tr {
		return nil, fmt.Errorf("dtnsim: oracle was built from a different trace")
	}
	sw := &Sweep{tr: tr, oracle: oracle} // transient: nothing pooled survives
	return sw.run(cfg)
}

// Sweep amortizes shared work across many simulation runs over one
// trace: the oracle tables (whole-trace contact totals, the O(n³)
// MEED metric, the time-sorted contact event stream) are built once,
// and the mutable per-worker simulation state is pooled and reset
// between runs instead of reallocated. A Sweep is safe for concurrent
// use; runs through a Sweep are byte-identical to plain Run calls.
type Sweep struct {
	tr     *trace.Trace
	oracle *Oracle

	mu      sync.Mutex
	pool    []*sim
	poolCap int
}

// NewSweep prepares a sweep over tr, precomputing the oracle tables.
func NewSweep(tr *trace.Trace) (*Sweep, error) {
	if tr == nil {
		return nil, fmt.Errorf("dtnsim: nil trace")
	}
	return &Sweep{
		tr:      tr,
		oracle:  NewOracle(tr),
		poolCap: max(4, runtime.GOMAXPROCS(0)),
	}, nil
}

// Trace returns the sweep's trace.
func (sw *Sweep) Trace() *trace.Trace { return sw.tr }

// Oracle returns the sweep's precomputed tables, shareable with plain
// Run calls via Config.Oracle.
func (sw *Sweep) Oracle() *Oracle { return sw.oracle }

// RunObs is Run with the warm replay timed under obs.StageSimRun into
// ot — the marginal per-run cost a sweep's caller pays after the
// oracle tables are built (those are timed by whoever builds the
// sweep, under obs.StageOracleBuild). A nil ot costs a pointer check.
func (sw *Sweep) RunObs(cfg Config, ot *obs.Trace) (*Result, error) {
	sp := ot.Start(obs.StageSimRun)
	res, err := sw.Run(cfg)
	sp.End()
	return res, err
}

// Run simulates one configuration of the sweep's trace. cfg.Trace and
// cfg.Oracle may be left nil (they default to the sweep's); when set
// they must match the sweep. All other Config semantics are exactly
// those of the package-level Run.
func (sw *Sweep) Run(cfg Config) (*Result, error) {
	if cfg.Trace != nil && cfg.Trace != sw.tr {
		return nil, fmt.Errorf("dtnsim: sweep run with a different trace")
	}
	if cfg.Oracle != nil && cfg.Oracle != sw.oracle {
		return nil, fmt.Errorf("dtnsim: sweep run with a different oracle")
	}
	if cfg.Algorithm == nil {
		return nil, fmt.Errorf("dtnsim: nil algorithm")
	}
	return sw.run(cfg)
}

// run executes one validated-trace run, sharding messages across
// workers with pooled per-worker simulation state.
func (sw *Sweep) run(cfg Config) (*Result, error) {
	tr := sw.tr
	for i, m := range cfg.Messages {
		if m.Src < 0 || int(m.Src) >= tr.NumNodes || m.Dst < 0 || int(m.Dst) >= tr.NumNodes {
			return nil, fmt.Errorf("dtnsim: message %d endpoints out of range", i)
		}
		if m.Src == m.Dst {
			return nil, fmt.Errorf("dtnsim: message %d has equal endpoints", i)
		}
		if m.Start < 0 || m.Start >= tr.Horizon {
			return nil, fmt.Errorf("dtnsim: message %d start %g outside trace", i, m.Start)
		}
	}

	workers := engine.Workers(cfg.Workers)
	if workers > len(cfg.Messages) {
		workers = len(cfg.Messages)
	}
	algs, parallelizable := forward.ParallelInstances(cfg.Algorithm, max(workers, 1))
	outcomes := make([]Outcome, len(cfg.Messages))
	if workers <= 1 || !parallelizable {
		s := sw.acquire(1)[0]
		s.reset(cfg.Algorithm, cfg.CopyMode, sw.oracle, cfg.Messages, 0, 1, outcomes)
		s.cancel = cfg.Cancel
		s.run(sw.oracle.events)
		sent, canceled := s.sent, s.canceled
		sw.release(s)
		if canceled {
			return nil, cfg.Cancel.FiredErr()
		}
		return &Result{Algorithm: cfg.Algorithm.Name(), Outcomes: outcomes, Transmissions: sent}, nil
	}

	// Fan the messages out in strided shards: worker w owns messages
	// w, w+workers, … Each shard replays the full contact stream into
	// its own View (and algorithm clone), so every message sees
	// exactly the state it would have seen in a serial run; outcomes
	// land at their global index and transmission counts add up.
	// engine.Map supplies the fan-out so a shard panic is captured and
	// re-raised on this goroutine instead of killing the process.
	sims := sw.acquire(workers)
	engine.Map(workers, workers, func(w int) {
		s := sims[w]
		s.reset(algs[w], cfg.CopyMode, sw.oracle, cfg.Messages, w, workers, outcomes)
		s.cancel = cfg.Cancel
		s.run(sw.oracle.events)
	})
	total, canceled := 0, false
	for _, s := range sims {
		total += s.sent
		canceled = canceled || s.canceled
	}
	sw.release(sims...)
	if canceled {
		return nil, cfg.Cancel.FiredErr()
	}
	return &Result{Algorithm: cfg.Algorithm.Name(), Outcomes: outcomes, Transmissions: total}, nil
}

// acquire takes n pooled sims, allocating the shortfall.
func (sw *Sweep) acquire(n int) []*sim {
	out := make([]*sim, n)
	sw.mu.Lock()
	for i := 0; i < n && len(sw.pool) > 0; i++ {
		out[i] = sw.pool[len(sw.pool)-1]
		sw.pool = sw.pool[:len(sw.pool)-1]
	}
	sw.mu.Unlock()
	for i := range out {
		if out[i] == nil {
			out[i] = &sim{}
		}
	}
	return out
}

// release returns sims to the pool, dropping any beyond the retention
// cap (their scratch is rebuilt on a later acquire if ever needed).
// Caller-owned references — the run's message and outcome slices and
// its algorithm instance — are dropped so a long-lived pooled sim
// (e.g. in a server's cached Sweep) cannot pin them between runs.
func (sw *Sweep) release(sims ...*sim) {
	sw.mu.Lock()
	for _, s := range sims {
		s.alg, s.obs = nil, nil
		s.cancel = nil
		s.messages, s.outcomes = nil, nil
		if len(sw.pool) < sw.poolCap {
			sw.pool = append(sw.pool, s)
		}
	}
	sw.mu.Unlock()
}

// contactEventList builds the trace's contact start/end events, sorted
// once and shared read-only by every shard. Contacts are stored sorted
// by start time (a trace.New invariant), so the start events are
// already in order and only the end events need sorting; a linear merge
// then produces exactly the (time, kind, seq) order sortEvents defines,
// at roughly half the comparison cost of sorting the full stream.
func contactEventList(tr *trace.Trace) []event {
	cs := tr.Contacts()
	buf := make([]event, 2*len(cs))
	starts, ends := buf[:len(cs)], buf[len(cs):]
	for i, c := range cs {
		starts[i] = event{time: c.Start, kind: evContactStart, a: int16(c.A), b: int16(c.B), seq: int32(2 * i)}
		ends[i] = event{time: c.End, kind: evContactEnd, a: int16(c.A), b: int16(c.B), seq: int32(2*i + 1)}
	}
	slices.SortFunc(ends, func(a, b event) int {
		switch {
		case a.time != b.time:
			if a.time < b.time {
				return -1
			}
			return 1
		default:
			return int(a.seq) - int(b.seq)
		}
	})
	events := make([]event, 0, 2*len(cs))
	i, j := 0, 0
	for i < len(starts) || j < len(ends) {
		// At equal times starts precede ends (kind order); within one
		// list the seq tiebreak is already established.
		if j >= len(ends) || (i < len(starts) && starts[i].time <= ends[j].time) {
			events = append(events, starts[i])
			i++
		} else {
			events = append(events, ends[j])
			j++
		}
	}
	return events
}

// sortEvents orders events by (time, kind, seq). The seq tiebreak —
// position in the pre-sort build order — makes the comparison a total
// order, so a fast unstable sort reproduces exactly what a stable
// (time, kind) sort produces.
func sortEvents(events []event) {
	slices.SortFunc(events, func(a, b event) int {
		switch {
		case a.time != b.time:
			if a.time < b.time {
				return -1
			}
			return 1
		case a.kind != b.kind:
			return int(a.kind) - int(b.kind)
		default:
			return int(a.seq) - int(b.seq)
		}
	})
}

// event kinds, processed in time order; at equal times contact starts
// precede message creations (a message created at the instant a
// contact begins may use it), and ends come last.
type eventKind int8

const (
	evContactStart eventKind = iota
	evMsgCreate
	evContactEnd
)

// event is one point of the replay timeline, packed to keep the shared
// stream cache-resident (24 bytes; node ids fit int16 under the
// 128-node population bound).
type event struct {
	time float64
	kind eventKind
	a, b int16 // contact endpoints
	msg  int32 // shard-local message index
	seq  int32 // position in the pre-sort build order (sort tiebreak)
}

// eventBefore is the sortEvents order. The merge in sim.run compares
// only across event lists whose ties never share a kind, so the seq
// tiebreak is never consulted there and the merge stays stable.
func eventBefore(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// Holder sets are rows of a dense strided slab, ceil(n/64) words per
// message, so any population size works with the same word operations.
func rowHas(row []uint64, n trace.NodeID) bool { return row[n>>6]&(1<<(uint(n)&63)) != 0 }
func rowAdd(row []uint64, n trace.NodeID)      { row[n>>6] |= 1 << (uint(n) & 63) }
func rowRemove(row []uint64, n trace.NodeID)   { row[n>>6] &^= 1 << (uint(n) & 63) }

// msgState is one message's mutable state; its holder bitset lives in
// the sim's dense holders slab, and its per-node hop and copy counters
// live in the shared hop/copy slabs (rows of n entries) — no
// per-message heap allocations anywhere.
type msgState struct {
	msg       Message
	global    int32 // index into the run's outcomes slice
	delivered bool
	created   bool
}

// liveSet is a dense bitset over shard-local message ids — the set of
// live (created, undelivered) messages. Iteration (word-and-mask
// sweeps in the simulator, Each here) runs in ascending id order,
// deterministic and allocation-free; add, remove and has are O(1) bit
// operations.
type liveSet struct {
	words []uint64
}

// reset sizes the set for n message ids, none live.
func (l *liveSet) reset(n int) {
	l.words = growWiped(l.words, (n+63)/64)
}

func (l *liveSet) add(id int)      { l.words[id>>6] |= 1 << (uint(id) & 63) }
func (l *liveSet) remove(id int)   { l.words[id>>6] &^= 1 << (uint(id) & 63) }
func (l *liveSet) has(id int) bool { return l.words[id>>6]&(1<<(uint(id)&63)) != 0 }

// count returns the number of live messages.
func (l *liveSet) count() int {
	n := 0
	for _, w := range l.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Each calls fn for every live id in ascending order. fn may remove
// the id it is passed (but no other).
func (l *liveSet) Each(fn func(id int)) {
	for w, word := range l.words {
		for word != 0 {
			fn(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// sim is one worker's reusable simulation state: everything sized by
// the population or the message shard lives in buffers that reset
// reslices and wipes instead of reallocating.
type sim struct {
	alg      forward.Algorithm
	mode     CopyMode
	view     *forward.View
	idleView *forward.View // parked view while a flooding run needs none
	obs      forward.ContactObserver
	sprayL   int  // 0 when the algorithm has no copy budget
	floods   bool // algorithm always consents (forward.Flooder)
	fwdAll   bool // floods and no copy budget: every forward check passes
	n        int

	open    [][]trace.NodeID // per-node open contacts (multiset)
	msgs    []msgState       // shard-local message states
	holders []uint64         // per-message holder bitsets (strided, wpn words each)
	wpn     int              // words per holder row: ceil(n/64)
	heldBy  []uint64         // per-node message bitsets: node x holds id ⟺ row(x) bit id
	wpm     int              // words per heldBy row: ceil(len(msgs)/64)
	live    liveSet          // created, undelivered messages
	hops    []int16          // shard×n slab; row i is message i's per-node hop counts
	copies  []int16          // shard×n slab (copy budgets); empty unless sprayL > 0
	seen    []uint64         // spread anti-revisit scratch (wpn words)
	queue   []trace.NodeID   // spread BFS queue (head-indexed, reused)
	creates []event          // this shard's creation events

	messages []Message // the run's full message list (read-only)
	outcomes []Outcome // the run's full outcome slice (strided writes)
	base     int       // first global message index of this shard
	stride   int       // worker count of the run
	sent     int       // total copy transfers, including deliveries

	cancel   *engine.Cancel // the run's cancellation token (nil: inert)
	canceled bool           // a replay checkpoint saw it fire
}

// reset prepares the sim for one run: shard [base::stride] of messages
// under alg/mode, writing outcomes at their global indices. All
// buffers are resliced from retained capacity and wiped, so a reset
// sim is indistinguishable from a freshly constructed one.
func (s *sim) reset(alg forward.Algorithm, mode CopyMode, oracle *Oracle, messages []Message, base, stride int, outcomes []Outcome) {
	n := oracle.tr.NumNodes
	s.alg, s.mode, s.n = alg, mode, n
	s.messages, s.outcomes = messages, outcomes
	s.base, s.stride = base, stride
	s.sent = 0
	s.canceled = false

	s.obs = nil
	if st, ok := alg.(forward.Stateful); ok {
		st.Reset(n)
	}
	if o, ok := alg.(forward.ContactObserver); ok {
		s.obs = o
	}
	s.sprayL = 0
	if cb, ok := alg.(forward.CopyBudget); ok {
		s.sprayL = cb.InitialCopies()
	}
	s.floods = false
	if f, ok := alg.(forward.Flooder); ok {
		s.floods = f.AlwaysForwards()
	}
	s.fwdAll = s.floods && s.sprayL == 0

	// The contact view exists for forwarding decisions, and an
	// unconditional flooder never makes one: shouldForward is only
	// reached when !fwdAll, so such runs skip the view entirely —
	// at city scale its history tables are O(n²) per worker, the
	// dominant memory of an epidemic run that never reads them.
	// (ContactObservers keep their own state via OnContact.)
	if s.fwdAll {
		if s.view != nil {
			s.idleView = s.view // keep for a later non-flooding run
			s.view = nil
		}
	} else {
		if s.view == nil {
			s.view, s.idleView = s.idleView, nil
		}
		if s.view == nil || s.view.NumNodes() != n {
			s.view = forward.NewView(n)
		} else {
			s.view.Reset()
		}
		s.view.InstallOracleLazy(oracle.totals, oracle.MEED)
	}

	if len(s.open) != n {
		s.open = make([][]trace.NodeID, n)
	} else {
		for i := range s.open {
			s.open[i] = s.open[i][:0]
		}
	}

	count := 0
	if base < len(messages) {
		count = (len(messages) - base + stride - 1) / stride
	}
	s.msgs = growSlice(s.msgs, count)
	s.wpn = (n + 63) / 64
	s.holders = growWiped(s.holders, count*s.wpn)
	s.seen = growWiped(s.seen, s.wpn)
	s.wpm = (count + 63) / 64
	s.heldBy = growWiped(s.heldBy, n*s.wpm)
	s.live.reset(count)
	s.hops = growWiped(s.hops, count*n)
	if s.sprayL > 0 {
		s.copies = growWiped(s.copies, count*n)
	}
	for j := 0; j < count; j++ {
		gi := base + j*stride
		s.msgs[j] = msgState{msg: messages[gi], global: int32(gi)}
		s.outcomes[gi] = Outcome{Msg: messages[gi]}
	}
}

// growSlice reslices buf to size, reusing capacity; contents are
// overwritten by the caller.
func growSlice[T any](buf []T, size int) []T {
	if cap(buf) < size {
		return make([]T, size)
	}
	return buf[:size]
}

// growWiped reslices buf to size, reusing capacity, and zeroes it.
func growWiped[T int16 | uint64](buf []T, size int) []T {
	if cap(buf) < size {
		return make([]T, size) // fresh memory is already zero
	}
	buf = buf[:size]
	clear(buf)
	return buf
}

// heldRow returns node x's held-message bitset words.
func (s *sim) heldRow(x trace.NodeID) []uint64 {
	return s.heldBy[int(x)*s.wpm : (int(x)+1)*s.wpm]
}

// holderRow returns message id's holder bitset words.
func (s *sim) holderRow(id int) []uint64 {
	return s.holders[id*s.wpn : (id+1)*s.wpn]
}

// hopsRow returns message id's per-node hop counters.
func (s *sim) hopsRow(id int) []int16 { return s.hops[id*s.n : (id+1)*s.n] }

// copiesRow returns message id's per-node copy budgets.
func (s *sim) copiesRow(id int) []int16 { return s.copies[id*s.n : (id+1)*s.n] }

// run replays the shared contact events interleaved with this shard's
// message creations. Only the shard's (few) creation events need
// sorting; they are then merged into the pre-sorted contact stream in
// linear time, in exactly the (time, kind) order sortEvents produces.
func (s *sim) run(contactEvents []event) {
	// Entry checkpoint: a token that fired before the replay started
	// (request already timed out while queued) abandons immediately,
	// even on traces smaller than the amortized poll interval below.
	if s.cancel.Stopped() {
		s.canceled = true
		return
	}
	s.creates = s.creates[:0]
	for i := range s.msgs {
		s.creates = append(s.creates, event{time: s.msgs[i].msg.Start, kind: evMsgCreate, msg: int32(i), seq: int32(i)})
	}
	sortEvents(s.creates)
	i, j := 0, 0
	for n := 0; i < len(contactEvents) || j < len(s.creates); n++ {
		// Amortized cancellation checkpoint: a few thousand events cost
		// well under a millisecond, so a fired token stops the replay
		// promptly without a per-event poll. The abandoned shard's
		// partial outcomes are discarded by the caller.
		if n&4095 == 4095 && s.cancel.Stopped() {
			s.canceled = true
			return
		}
		var ev event
		if j >= len(s.creates) || (i < len(contactEvents) && eventBefore(contactEvents[i], s.creates[j])) {
			ev = contactEvents[i]
			i++
		} else {
			ev = s.creates[j]
			j++
		}
		switch ev.kind {
		case evContactStart:
			s.contactStart(trace.NodeID(ev.a), trace.NodeID(ev.b), ev.time)
		case evMsgCreate:
			s.createMessage(int(ev.msg), ev.time)
		case evContactEnd:
			s.contactEnd(trace.NodeID(ev.a), trace.NodeID(ev.b))
		}
	}
}

func (s *sim) contactStart(a, b trace.NodeID, now float64) {
	// Overlapping records of the same pair are kept as a multiset: each
	// record contributes one open entry and one end-time removal, so a
	// longer overlapping record keeps the pair connected. Each record
	// also counts as one observed contact, matching trace.ContactCounts
	// (pure flooding runs carry no view: nothing reads it).
	if s.view != nil {
		s.view.Observe(a, b, now)
	}
	if s.obs != nil {
		s.obs.OnContact(a, b, now)
	}
	s.open[a] = append(s.open[a], b)
	s.open[b] = append(s.open[b], a)
	// The messages that can act at this contact are exactly the live
	// ones held by one endpoint and not the other: a XOR over the two
	// nodes' held-message bitsets, masked by the live set, finds them
	// in a few words per contact regardless of how many messages are
	// in flight. Each word is snapshotted before its ids are processed;
	// an exchange mutates only the bits of the id being processed, so
	// the snapshot stays exact for the ids that follow.
	replicate := s.mode == Replicate
	ra, rb := s.heldRow(a), s.heldRow(b)
	for w, lw := range s.live.words {
		x := (ra[w] ^ rb[w]) & lw
		for x != 0 {
			id := w<<6 + bits.TrailingZeros64(x)
			x &= x - 1
			if replicate {
				// Holder sets only grow, so only the holding side's
				// direction can act.
				if rowHas(s.holderRow(id), a) {
					s.exchange(id, a, b, now)
				} else {
					s.exchange(id, b, a, now)
				}
			} else {
				// Relay mode: the first hand-off can reverse the
				// roles, so both directions run.
				s.exchange(id, a, b, now)
				s.exchange(id, b, a, now)
			}
		}
	}
}

func (s *sim) contactEnd(a, b trace.NodeID) {
	s.open[a] = removeNode(s.open[a], b)
	s.open[b] = removeNode(s.open[b], a)
}

func removeNode(list []trace.NodeID, n trace.NodeID) []trace.NodeID {
	for i, x := range list {
		if x == n {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

func (s *sim) createMessage(id int, now float64) {
	m := &s.msgs[id]
	m.created = true
	s.setHolder(id, m.msg.Src)
	if s.sprayL > 0 {
		s.copiesRow(id)[m.msg.Src] = int16(s.sprayL)
	}
	s.live.add(id)
	// The source may already be inside a live contact component;
	// spread (or deliver, which removes the message from the live set)
	// immediately.
	clear(s.seen)
	rowAdd(s.seen, m.msg.Src)
	s.spread(id, m.msg.Src, now)
}

// setHolder marks node x a holder of message id in both directions of
// the index (message→nodes bitset and node→messages bitset).
func (s *sim) setHolder(id int, x trace.NodeID) {
	rowAdd(s.holderRow(id), x)
	s.heldRow(x)[id>>6] |= 1 << (uint(id) & 63)
}

// clearHolder removes node x from message id's holders (relay mode).
func (s *sim) clearHolder(id int, x trace.NodeID) {
	rowRemove(s.holderRow(id), x)
	s.heldRow(x)[id>>6] &^= 1 << (uint(id) & 63)
}

// exchange considers handing message id from holder to peer at a
// contact event, then lets the message spread onward from the peer.
func (s *sim) exchange(id int, holder, peer trace.NodeID, now float64) {
	m := &s.msgs[id]
	h := s.holderRow(id)
	if m.delivered || !m.created || !rowHas(h, holder) || rowHas(h, peer) {
		return
	}
	if peer == m.msg.Dst {
		s.deliver(id, holder, now)
		return
	}
	if !(s.fwdAll || s.shouldForward(id, holder, peer, now)) {
		return
	}
	s.transfer(id, holder, peer)
	clear(s.seen)
	rowAdd(s.seen, holder)
	rowAdd(s.seen, peer)
	s.spread(id, peer, now)
}

// spread propagates message id from node through the live contact
// component (zero transmission time), respecting the forwarding rule
// at each hop. The caller seeds s.seen with the nodes that have
// already held the message during this instantaneous propagation
// (including from): re-transferring to them cannot reach anything new
// and, in relay mode with an always-forward algorithm, would
// ping-pong the single copy between two nodes forever. A node may
// still re-receive the message at a later contact event. In replicate
// mode holders only grow, so seen ⊆ holders and the guard changes
// nothing.
func (s *sim) spread(id int, from trace.NodeID, now float64) {
	m := &s.msgs[id]
	h := s.holderRow(id)
	if m.delivered {
		return
	}
	dst := m.msg.Dst
	q := append(s.queue[:0], from)
	for head := 0; head < len(q) && !m.delivered; head++ {
		cur := q[head]
		if !rowHas(h, cur) {
			continue // copy moved on (relay mode)
		}
		for _, peer := range s.open[cur] {
			if m.delivered {
				break
			}
			if rowHas(h, peer) {
				continue
			}
			if peer == dst {
				s.deliver(id, cur, now)
				break
			}
			if rowHas(s.seen, peer) || !(s.fwdAll || s.shouldForward(id, cur, peer, now)) {
				continue
			}
			s.transfer(id, cur, peer)
			rowAdd(s.seen, peer)
			q = append(q, peer)
			if !rowHas(h, cur) {
				// Relay mode: cur handed its single copy to peer and
				// has nothing left to forward or deliver from —
				// continuing the loop would duplicate the copy.
				break
			}
		}
	}
	s.queue = q[:0] // retain any growth for the next propagation
}

func (s *sim) shouldForward(id int, holder, peer trace.NodeID, now float64) bool {
	if s.sprayL > 0 && s.copiesRow(id)[holder] <= 1 {
		return false // wait phase: only direct delivery
	}
	if s.floods {
		return true // flooding algorithm: skip the indirect call
	}
	return s.alg.Forward(s.view, holder, peer, s.msgs[id].msg.Dst, now)
}

func (s *sim) transfer(id int, holder, peer trace.NodeID) {
	s.sent++
	s.setHolder(id, peer)
	hops := s.hopsRow(id)
	hops[peer] = hops[holder] + 1
	if s.sprayL > 0 {
		copies := s.copiesRow(id)
		half := copies[holder] / 2
		copies[peer] = half
		copies[holder] -= half
	}
	if s.mode == Relay {
		s.clearHolder(id, holder)
	}
}

func (s *sim) deliver(id int, holder trace.NodeID, now float64) {
	s.sent++
	m := &s.msgs[id]
	m.delivered = true
	out := &s.outcomes[m.global]
	out.Delivered = true
	out.Delay = now - m.msg.Start
	out.Hops = int(s.hopsRow(id)[holder]) + 1
	s.live.remove(id)
}

// SuccessRate returns the fraction of messages delivered.
func (r *Result) SuccessRate() float64 {
	if len(r.Outcomes) == 0 {
		return math.NaN()
	}
	n := 0
	for _, o := range r.Outcomes {
		if o.Delivered {
			n++
		}
	}
	return float64(n) / float64(len(r.Outcomes))
}

// MeanDelay returns the average delay over delivered messages, or NaN
// if none were delivered (the paper's D = E[T | delivered]).
func (r *Result) MeanDelay() float64 {
	sum, n := 0.0, 0
	for _, o := range r.Outcomes {
		if o.Delivered {
			sum += o.Delay
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Delays returns the delays of all delivered messages.
func (r *Result) Delays() []float64 {
	var out []float64
	for _, o := range r.Outcomes {
		if o.Delivered {
			out = append(out, o.Delay)
		}
	}
	return out
}

// ByPairType partitions outcomes by the in/out class of their
// endpoints (§5.2) under cl. Each partition's outcome slice is
// preallocated at its exact size from a counting pass.
func (r *Result) ByPairType(cl *trace.Classifier) map[trace.PairType]*Result {
	var counts [len(trace.PairTypes)]int
	for _, o := range r.Outcomes {
		counts[cl.Classify(o.Msg.Src, o.Msg.Dst)]++
	}
	out := make(map[trace.PairType]*Result, len(trace.PairTypes))
	for _, pt := range trace.PairTypes {
		out[pt] = &Result{Algorithm: r.Algorithm, Outcomes: make([]Outcome, 0, counts[pt])}
	}
	for _, o := range r.Outcomes {
		pt := cl.Classify(o.Msg.Src, o.Msg.Dst)
		out[pt].Outcomes = append(out[pt].Outcomes, o)
	}
	return out
}

// Merge combines results from multiple runs of the same algorithm into
// one preallocated outcome slice.
func Merge(rs ...*Result) *Result {
	if len(rs) == 0 {
		return &Result{}
	}
	total := 0
	for _, r := range rs {
		total += len(r.Outcomes)
	}
	m := &Result{Algorithm: rs[0].Algorithm}
	if total > 0 {
		m.Outcomes = make([]Outcome, 0, total)
	}
	for _, r := range rs {
		m.Outcomes = append(m.Outcomes, r.Outcomes...)
		m.Transmissions += r.Transmissions
	}
	return m
}

// Workload draws the paper's message workload: a Poisson process with
// the given rate (the paper uses one message per 4 s) over
// [0, genHorizon), with endpoints uniform at random among distinct
// node pairs.
func Workload(tr *trace.Trace, rate, genHorizon float64, seed int64) []Message {
	rng := rand.New(rand.NewSource(seed))
	var out []Message
	if rate <= 0 || genHorizon <= 0 {
		return out
	}
	for t := rng.ExpFloat64() / rate; t < genHorizon && t < tr.Horizon; t += rng.ExpFloat64() / rate {
		src := trace.NodeID(rng.Intn(tr.NumNodes))
		dst := trace.NodeID(rng.Intn(tr.NumNodes - 1))
		if dst >= src {
			dst++
		}
		out = append(out, Message{Src: src, Dst: dst, Start: t})
	}
	return out
}
