package dtnsim

import (
	"fmt"
	"runtime"

	"repro/internal/trace"
)

// EventOrder returns the oracle's sorted contact event stream as a
// permutation over event codes: code 2i is contact i's start, code
// 2i+1 its end (i indexing the trace's sorted contact slice). Together
// with the trace it fully determines the oracle — times, endpoints and
// kinds are all recoverable from the contact records — so this is the
// oracle's serialization form: a persisted artifact stores only the
// permutation and NewOracleFromOrder rebuilds identical tables without
// re-running the event sort.
func (o *Oracle) EventOrder() []int32 {
	out := make([]int32, len(o.events))
	for i, ev := range o.events {
		out[i] = ev.seq
	}
	return out
}

// NewOracleFromOrder rebuilds an Oracle for tr from an EventOrder
// permutation. The order is validated completely: it must be a
// permutation of the 2·Len() event codes whose decoded events are
// strictly increasing under the package's (time, kind, seq) total
// order. Since that order has exactly one sorted arrangement, a
// validated order proves the rebuilt event stream is byte-identical to
// what NewOracle computes — a corrupted or mismatched artifact cannot
// produce a subtly different replay, only an error here.
func NewOracleFromOrder(tr *trace.Trace, order []int32) (*Oracle, error) {
	if tr == nil {
		return nil, fmt.Errorf("dtnsim: nil trace")
	}
	cs := tr.Contacts()
	if len(order) != 2*len(cs) {
		return nil, fmt.Errorf("dtnsim: event order has %d entries for %d contacts", len(order), len(cs))
	}
	seen := make([]uint64, (len(order)+63)/64)
	events := make([]event, len(order))
	for k, code := range order {
		if code < 0 || int(code) >= len(order) {
			return nil, fmt.Errorf("dtnsim: event order entry %d: code %d out of range", k, code)
		}
		if seen[code>>6]&(1<<(uint(code)&63)) != 0 {
			return nil, fmt.Errorf("dtnsim: event order entry %d: duplicate code %d", k, code)
		}
		seen[code>>6] |= 1 << (uint(code) & 63)
		c := cs[code/2]
		if code%2 == 0 {
			events[k] = event{time: c.Start, kind: evContactStart, a: int16(c.A), b: int16(c.B), seq: code}
		} else {
			events[k] = event{time: c.End, kind: evContactEnd, a: int16(c.A), b: int16(c.B), seq: code}
		}
		if k > 0 && !eventBefore(events[k-1], events[k]) {
			return nil, fmt.Errorf("dtnsim: event order entry %d: code %d out of sort order", k, code)
		}
	}
	return &Oracle{
		tr:     tr,
		totals: tr.ContactCounts(),
		events: events,
	}, nil
}

// NewSweepFromOracle prepares a sweep around a prebuilt oracle (for
// example one restored by NewOracleFromOrder), skipping the event-list
// construction NewSweep performs. Runs through the returned sweep are
// byte-identical to runs through NewSweep(o.Trace()).
func NewSweepFromOracle(o *Oracle) (*Sweep, error) {
	if o == nil {
		return nil, fmt.Errorf("dtnsim: nil oracle")
	}
	return &Sweep{
		tr:      o.tr,
		oracle:  o,
		poolCap: max(4, runtime.GOMAXPROCS(0)),
	}, nil
}
