// Package forward implements the forwarding algorithms evaluated in
// the paper's §6 — Epidemic, FRESH, Greedy, Greedy Total, Greedy
// Online, and Dynamic Programming (MEED) — plus several well-known
// extensions used for ablations (Direct Delivery, Spray and Wait,
// PRoPHET).
//
// Algorithms are pure decision rules over a View: the contact
// knowledge a node could hold at a point in simulated time, plus the
// two oracle tables (whole-trace contact totals and MEED distances)
// used by the future-knowledge algorithms. The trace-driven simulator
// in package dtnsim owns and updates the View.
package forward

import (
	"math"

	"repro/internal/trace"
)

// View is the contact knowledge shared by all nodes at one instant of
// a simulation. The paper's algorithms assume nodes can learn each
// other's contact history on encounter; exposing one global view is
// the standard simplification (information is only ever *used* at
// encounters).
type View struct {
	numNodes int

	// lastEnc[a][b] is the most recent time a and b were in contact,
	// or -Inf if they have not met yet.
	lastEnc [][]float64
	// encCount[a][b] is the number of contacts between a and b so far.
	encCount [][]int
	// soFar[a] is a's total number of contacts so far.
	soFar []int

	// totals[a] is a's total contacts over the whole trace (oracle).
	totals []int
	// meedDist[a][b] is the expected-delay distance from a to b under
	// the MEED metric computed over the whole trace (oracle); +Inf if
	// unreachable.
	meedDist [][]float64
}

// NewView allocates a View for n nodes with empty history and no
// oracle tables (install them with SetOracle).
func NewView(n int) *View {
	v := &View{
		numNodes: n,
		lastEnc:  make([][]float64, n),
		encCount: make([][]int, n),
		soFar:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		v.lastEnc[i] = make([]float64, n)
		for j := range v.lastEnc[i] {
			v.lastEnc[i][j] = math.Inf(-1)
		}
		v.encCount[i] = make([]int, n)
	}
	return v
}

// NumNodes returns the population size.
func (v *View) NumNodes() int { return v.numNodes }

// Observe records a contact between a and b at time now. The
// simulator calls this at every contact start, before forwarding
// decisions for that contact are made.
func (v *View) Observe(a, b trace.NodeID, now float64) {
	v.lastEnc[a][b] = now
	v.lastEnc[b][a] = now
	v.encCount[a][b]++
	v.encCount[b][a]++
	v.soFar[a]++
	v.soFar[b]++
}

// LastEncounter returns the most recent contact time between a and b,
// or -Inf if they have not met.
func (v *View) LastEncounter(a, b trace.NodeID) float64 { return v.lastEnc[a][b] }

// EncounterCount returns the number of contacts between a and b so far.
func (v *View) EncounterCount(a, b trace.NodeID) int { return v.encCount[a][b] }

// ContactsSoFar returns a's total number of contacts so far.
func (v *View) ContactsSoFar(a trace.NodeID) int { return v.soFar[a] }

// TotalContacts returns a's whole-trace contact total (oracle); zero
// before SetOracle.
func (v *View) TotalContacts(a trace.NodeID) int {
	if v.totals == nil {
		return 0
	}
	return v.totals[a]
}

// MEEDDistance returns the oracle expected-delay distance from a to b,
// or +Inf when unreachable or before SetOracle.
func (v *View) MEEDDistance(a, b trace.NodeID) float64 {
	if v.meedDist == nil {
		return math.Inf(1)
	}
	return v.meedDist[a][b]
}

// SetOracle installs the future-knowledge tables used by Greedy Total
// and Dynamic Programming, computed from the whole trace.
func (v *View) SetOracle(tr *trace.Trace) {
	v.InstallOracle(tr.ContactCounts(), MEEDDistances(tr))
}

// InstallOracle installs precomputed oracle tables. The tables are
// read-only once installed, so parallel simulation shards can share
// one computation of the O(n³) MEED metric across their views.
func (v *View) InstallOracle(totals []int, meedDist [][]float64) {
	v.totals = totals
	v.meedDist = meedDist
}

// MEEDDistances computes the Minimum Estimated Expected Delay metric
// of Jones et al. over a whole trace: the expected waiting time for
// the next i-j contact from a uniformly random instant is estimated as
// horizon/(n_ij+1) for a pair with n_ij contacts (the mean gap between
// renewals of a Poisson-like process), and all-pairs expected-delay
// distances follow by Floyd-Warshall. Pairs that never meet have
// infinite direct delay.
func MEEDDistances(tr *trace.Trace) [][]float64 {
	n := tr.NumNodes
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = math.Inf(1)
			}
		}
	}
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	for _, c := range tr.Contacts() {
		counts[c.A][c.B]++
		counts[c.B][c.A]++
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && counts[i][j] > 0 {
				dist[i][j] = tr.Horizon / float64(counts[i][j]+1)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dik + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	return dist
}
