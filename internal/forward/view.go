// Package forward implements the forwarding algorithms evaluated in
// the paper's §6 — Epidemic, FRESH, Greedy, Greedy Total, Greedy
// Online, and Dynamic Programming (MEED) — plus several well-known
// extensions used for ablations (Direct Delivery, Spray and Wait,
// PRoPHET).
//
// Algorithms are pure decision rules over a View: the contact
// knowledge a node could hold at a point in simulated time, plus the
// two oracle tables (whole-trace contact totals and MEED distances)
// used by the future-knowledge algorithms. The trace-driven simulator
// in package dtnsim owns and updates the View.
package forward

import (
	"math"

	"repro/internal/trace"
)

// DistMatrix is a dense n×n distance matrix stored row-major in one
// backing slice, so a whole row — the unit both the Floyd-Warshall
// closure and the simulator's per-destination lookups walk — is
// contiguous in memory. It is immutable once built and safe for
// concurrent readers.
type DistMatrix struct {
	n int
	d []float64
}

// NewDistMatrix returns an n×n matrix of +Inf with a zero diagonal
// (the standard shortest-path initial state).
func NewDistMatrix(n int) *DistMatrix {
	m := &DistMatrix{n: n, d: make([]float64, n*n)}
	for i := range m.d {
		m.d[i] = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		m.d[i*n+i] = 0
	}
	return m
}

// Size returns the matrix dimension.
func (m *DistMatrix) Size() int { return m.n }

// At returns the distance from a to b.
func (m *DistMatrix) At(a, b trace.NodeID) float64 { return m.d[int(a)*m.n+int(b)] }

// Row returns the distances from a to every node. The returned slice
// aliases the matrix; callers must not modify it.
func (m *DistMatrix) Row(a trace.NodeID) []float64 {
	return m.d[int(a)*m.n : (int(a)+1)*m.n]
}

// set writes the distance from a to b (build-time only).
func (m *DistMatrix) set(a, b trace.NodeID, v float64) { m.d[int(a)*m.n+int(b)] = v }

// View is the contact knowledge shared by all nodes at one instant of
// a simulation. The paper's algorithms assume nodes can learn each
// other's contact history on encounter; exposing one global view is
// the standard simplification (information is only ever *used* at
// encounters).
//
// The pairwise tables are flat row-major slices (index a*n+b) rather
// than per-node heap rows: one allocation each, contiguous in memory,
// and cheap to wipe when a pooled simulation resets the view between
// runs.
type View struct {
	numNodes int

	// lastEnc[a*n+b] is the most recent time a and b were in contact,
	// or -Inf if they have not met yet.
	lastEnc []float64
	// encCount[a*n+b] is the number of contacts between a and b so far.
	encCount []int32
	// soFar[a] is a's total number of contacts so far.
	soFar []int32

	// totals[a] is a's total contacts over the whole trace (oracle).
	totals []int
	// meed holds the expected-delay distances under the MEED metric
	// computed over the whole trace (oracle); +Inf if unreachable.
	// When nil, meedFn (if installed) resolves the matrix on first
	// read: the Floyd-Warshall closure is cubic in the population, so
	// the simulator defers it until an algorithm actually compares
	// oracle distances — most never do.
	meed   *DistMatrix
	meedFn func() *DistMatrix
}

// NewView allocates a View for n nodes with empty history and no
// oracle tables (install them with SetOracle).
func NewView(n int) *View {
	v := &View{
		numNodes: n,
		lastEnc:  make([]float64, n*n),
		encCount: make([]int32, n*n),
		soFar:    make([]int32, n),
	}
	for i := range v.lastEnc {
		v.lastEnc[i] = math.Inf(-1)
	}
	return v
}

// Reset wipes the observed contact history, returning the view to its
// freshly-constructed state. Installed oracle tables are kept: they
// are pure functions of the trace, so a pooled simulation reusing the
// view across runs of one trace keeps them in place.
func (v *View) Reset() {
	for i := range v.lastEnc {
		v.lastEnc[i] = math.Inf(-1)
	}
	clear(v.encCount)
	clear(v.soFar)
}

// NumNodes returns the population size.
func (v *View) NumNodes() int { return v.numNodes }

// Observe records a contact between a and b at time now. The
// simulator calls this at every contact start, before forwarding
// decisions for that contact are made.
func (v *View) Observe(a, b trace.NodeID, now float64) {
	ab := int(a)*v.numNodes + int(b)
	ba := int(b)*v.numNodes + int(a)
	v.lastEnc[ab] = now
	v.lastEnc[ba] = now
	v.encCount[ab]++
	v.encCount[ba]++
	v.soFar[a]++
	v.soFar[b]++
}

// LastEncounter returns the most recent contact time between a and b,
// or -Inf if they have not met.
func (v *View) LastEncounter(a, b trace.NodeID) float64 {
	return v.lastEnc[int(a)*v.numNodes+int(b)]
}

// EncounterCount returns the number of contacts between a and b so far.
func (v *View) EncounterCount(a, b trace.NodeID) int {
	return int(v.encCount[int(a)*v.numNodes+int(b)])
}

// ContactsSoFar returns a's total number of contacts so far.
func (v *View) ContactsSoFar(a trace.NodeID) int { return int(v.soFar[a]) }

// TotalContacts returns a's whole-trace contact total (oracle); zero
// before SetOracle.
func (v *View) TotalContacts(a trace.NodeID) int {
	if v.totals == nil {
		return 0
	}
	return v.totals[a]
}

// MEEDDistance returns the oracle expected-delay distance from a to b,
// or +Inf when unreachable or before SetOracle. With a lazily
// installed oracle (InstallOracleLazy) the first call resolves the
// distance matrix.
func (v *View) MEEDDistance(a, b trace.NodeID) float64 {
	if v.meed == nil {
		if v.meedFn == nil {
			return math.Inf(1)
		}
		v.meed = v.meedFn()
	}
	return v.meed.At(a, b)
}

// SetOracle installs the future-knowledge tables used by Greedy Total
// and Dynamic Programming, computed from the whole trace.
func (v *View) SetOracle(tr *trace.Trace) {
	v.InstallOracle(tr.ContactCounts(), MEEDDistances(tr))
}

// InstallOracle installs precomputed oracle tables. The tables are
// read-only once installed, so parallel simulation shards can share
// one computation of the O(n³) MEED metric across their views.
func (v *View) InstallOracle(totals []int, meed *DistMatrix) {
	v.totals = totals
	v.meed = meed
	v.meedFn = nil
}

// InstallOracleLazy installs the contact-total table eagerly and a
// resolver for the MEED matrix, called at most once per view on the
// first MEEDDistance read. The resolver must be safe for concurrent
// callers (parallel shards each hold their own view but share the
// underlying oracle; dtnsim guards the computation with a sync.Once),
// and must always return the same immutable matrix.
func (v *View) InstallOracleLazy(totals []int, meed func() *DistMatrix) {
	v.totals = totals
	v.meed = nil
	v.meedFn = meed
}

// MEEDDistances computes the Minimum Estimated Expected Delay metric
// of Jones et al. over a whole trace: the expected waiting time for
// the next i-j contact from a uniformly random instant is estimated as
// horizon/(n_ij+1) for a pair with n_ij contacts (the mean gap between
// renewals of a Poisson-like process), and all-pairs expected-delay
// distances follow by Floyd-Warshall. Pairs that never meet have
// infinite direct delay.
//
// The closure runs over the flat row-major backing: row k and row i
// are each walked contiguously, so the O(n³) inner loop is limited by
// arithmetic rather than pointer-chasing per-node heap rows.
func MEEDDistances(tr *trace.Trace) *DistMatrix {
	n := tr.NumNodes
	dist := NewDistMatrix(n)
	counts := make([]int32, n*n)
	for _, c := range tr.Contacts() {
		counts[int(c.A)*n+int(c.B)]++
		counts[int(c.B)*n+int(c.A)]++
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && counts[i*n+j] > 0 {
				dist.set(trace.NodeID(i), trace.NodeID(j), tr.Horizon/float64(counts[i*n+j]+1))
			}
		}
	}
	d := dist.d
	for k := 0; k < n; k++ {
		rowK := d[k*n : (k+1)*n : (k+1)*n]
		for i := 0; i < n; i++ {
			dik := d[i*n+k]
			if math.IsInf(dik, 1) {
				continue
			}
			rowI := d[i*n : (i+1)*n : (i+1)*n]
			for j, dkj := range rowK {
				if v := dik + dkj; v < rowI[j] {
					rowI[j] = v
				}
			}
		}
	}
	return dist
}
