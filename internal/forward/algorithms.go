package forward

import (
	"math"

	"repro/internal/trace"
)

// Algorithm is a forwarding decision rule. Forward reports whether a
// node holding a message for dst should hand a copy to peer when they
// meet at time now. Delivery to the destination itself is not the
// algorithm's concern: the simulator enforces minimal progress (§4.1)
// and always delivers on an encounter with the destination.
type Algorithm interface {
	Name() string
	Forward(v *View, holder, peer, dst trace.NodeID, now float64) bool
}

// ContactObserver is an optional interface for algorithms that keep
// their own per-encounter state (e.g. PRoPHET's delivery
// predictabilities). The simulator invokes OnContact at every contact
// start, after updating the View.
type ContactObserver interface {
	OnContact(a, b trace.NodeID, now float64)
}

// Stateful is an optional interface for algorithms that must be reset
// between simulation runs.
type Stateful interface {
	Reset(numNodes int)
}

// Cloner is an optional interface for algorithms with internal
// mutable state that can produce fresh, independent instances. The
// parallel simulator gives each worker its own clone, so every clone
// observes the full contact stream and reaches the same state the
// original would have in a serial run.
type Cloner interface {
	Clone() Algorithm
}

// ParallelInstances returns n instances of a that can run in
// concurrent simulation shards, and whether that is possible. A
// Cloner yields n fresh clones. Algorithms with mutable state
// (Stateful or ContactObserver) that cannot clone themselves are
// rejected — the caller must fall back to a serial run. Everything
// else is a stateless decision rule whose Forward only reads the
// per-shard View, so the same value is shared by every shard.
func ParallelInstances(a Algorithm, n int) ([]Algorithm, bool) {
	out := make([]Algorithm, n)
	if c, ok := a.(Cloner); ok {
		for i := range out {
			out[i] = c.Clone()
		}
		return out, true
	}
	if _, ok := a.(Stateful); ok {
		return nil, false
	}
	if _, ok := a.(ContactObserver); ok {
		return nil, false
	}
	for i := range out {
		out[i] = a
	}
	return out, true
}

// Flooder is an optional marker interface for algorithms whose Forward
// always consents (flooding). The simulator's hot path skips the
// indirect per-candidate decision call for such algorithms; any other
// gating (e.g. a copy budget's wait phase) still applies.
type Flooder interface {
	// AlwaysForwards reports that Forward returns true for every input.
	AlwaysForwards() bool
}

// CopyBudget is an optional interface marking binary-spray semantics:
// each message starts with InitialCopies logical copies at the source;
// a transfer hands the recipient half of the holder's copies; holders
// with one copy wait for the destination.
type CopyBudget interface {
	InitialCopies() int
}

// Epidemic floods: every encounter transfers every missing message
// (Vahdat & Becker). It attains the optimal delay and success rate and
// upper-bounds every other algorithm.
type Epidemic struct{}

func (Epidemic) Name() string { return "Epidemic" }

func (Epidemic) Forward(*View, trace.NodeID, trace.NodeID, trace.NodeID, float64) bool {
	return true
}

// AlwaysForwards implements Flooder.
func (Epidemic) AlwaysForwards() bool { return true }

// FRESH forwards to nodes that met the destination more recently
// (Dubois-Ferriere, Grossglauser & Vetterli's encounter-age routing):
// single-hop, destination-aware, recent history only.
type FRESH struct{}

func (FRESH) Name() string { return "FRESH" }

func (FRESH) Forward(v *View, holder, peer, dst trace.NodeID, _ float64) bool {
	return v.LastEncounter(peer, dst) > v.LastEncounter(holder, dst)
}

// Greedy forwards to nodes that met the destination more often since
// the start of the simulation: destination-aware, complete past
// history.
type Greedy struct{}

func (Greedy) Name() string { return "Greedy" }

func (Greedy) Forward(v *View, holder, peer, dst trace.NodeID, _ float64) bool {
	return v.EncounterCount(peer, dst) > v.EncounterCount(holder, dst)
}

// GreedyTotal forwards to nodes with more total contacts over the
// whole trace: destination-unaware, past and future knowledge
// (an oracle).
type GreedyTotal struct{}

func (GreedyTotal) Name() string { return "Greedy Total" }

func (GreedyTotal) Forward(v *View, holder, peer, _ trace.NodeID, _ float64) bool {
	return v.TotalContacts(peer) > v.TotalContacts(holder)
}

// GreedyOnline forwards to nodes with more contacts so far:
// destination-unaware, past knowledge only.
type GreedyOnline struct{}

func (GreedyOnline) Name() string { return "Greedy Online" }

func (GreedyOnline) Forward(v *View, holder, peer, _ trace.NodeID, _ float64) bool {
	return v.ContactsSoFar(peer) > v.ContactsSoFar(holder)
}

// DynamicProgramming forwards along the MEED expected-delay metric
// (Jain/Fall/Patra's Minimum Expected Delay, computed as in Jones et
// al.): the message moves to nodes strictly closer to the destination
// in expected delay. Past and future knowledge (an oracle).
type DynamicProgramming struct{}

func (DynamicProgramming) Name() string { return "Dynamic Programming" }

func (DynamicProgramming) Forward(v *View, holder, peer, dst trace.NodeID, _ float64) bool {
	return v.MEEDDistance(peer, dst) < v.MEEDDistance(holder, dst)
}

// DirectDelivery never forwards: the source waits to meet the
// destination itself. The classical single-copy lower bound.
type DirectDelivery struct{}

func (DirectDelivery) Name() string { return "Direct Delivery" }

func (DirectDelivery) Forward(*View, trace.NodeID, trace.NodeID, trace.NodeID, float64) bool {
	return false
}

// SprayAndWait implements binary Spray and Wait (Spyropoulos et al.):
// L logical copies spread epidemically by halving; single-copy holders
// wait for the destination.
type SprayAndWait struct {
	// L is the initial number of logical copies (default 8).
	L int
}

func (s SprayAndWait) Name() string { return "Spray and Wait" }

// InitialCopies implements CopyBudget.
func (s SprayAndWait) InitialCopies() int {
	if s.L <= 0 {
		return 8
	}
	return s.L
}

// Forward always consents; the simulator's copy accounting decides
// whether the holder still has copies to spray.
func (SprayAndWait) Forward(*View, trace.NodeID, trace.NodeID, trace.NodeID, float64) bool {
	return true
}

// AlwaysForwards implements Flooder.
func (SprayAndWait) AlwaysForwards() bool { return true }

// PRoPHET forwards on higher delivery predictability (Lindgren, Doria
// & Schelen): P(a,b) grows on encounters, ages over time, and picks up
// transitive contributions.
type PRoPHET struct {
	// PInit, Beta and Gamma are the protocol constants; zero values
	// select the RFC 6693 defaults (0.75, 0.25, 0.98 per second unit).
	PInit, Beta, Gamma float64

	// p is the flat row-major n×n predictability table: p[a*n+b] is
	// P(a,b). One allocation, and aging walks a contiguous row.
	p        []float64
	lastAged []float64
	n        int
}

// row returns node a's predictability row p[a][·].
func (p *PRoPHET) row(a trace.NodeID) []float64 {
	return p.p[int(a)*p.n : (int(a)+1)*p.n]
}

func (p *PRoPHET) Name() string { return "PRoPHET" }

func (p *PRoPHET) params() (pinit, beta, gamma float64) {
	pinit, beta, gamma = p.PInit, p.Beta, p.Gamma
	if pinit == 0 {
		pinit = 0.75
	}
	if beta == 0 {
		beta = 0.25
	}
	if gamma == 0 {
		gamma = 0.98
	}
	return pinit, beta, gamma
}

// Clone implements Cloner: a fresh predictability table with the same
// protocol constants.
func (p *PRoPHET) Clone() Algorithm {
	return &PRoPHET{PInit: p.PInit, Beta: p.Beta, Gamma: p.Gamma}
}

// Reset implements Stateful.
func (p *PRoPHET) Reset(numNodes int) {
	p.n = numNodes
	if cap(p.p) >= numNodes*numNodes && cap(p.lastAged) >= numNodes {
		p.p = p.p[:numNodes*numNodes]
		clear(p.p)
		p.lastAged = p.lastAged[:numNodes]
		clear(p.lastAged)
		return
	}
	p.p = make([]float64, numNodes*numNodes)
	p.lastAged = make([]float64, numNodes)
}

// age applies the exponential aging factor to node a's table. Time is
// measured in units of 100 s so gamma^t does not underflow over
// multi-hour traces.
func (p *PRoPHET) age(a trace.NodeID, now float64) {
	_, _, gamma := p.params()
	dt := (now - p.lastAged[a]) / 100
	if dt <= 0 {
		return
	}
	f := math.Pow(gamma, dt)
	row := p.row(a)
	for j := range row {
		row[j] *= f
	}
	p.lastAged[a] = now
}

// OnContact implements ContactObserver: direct update plus the
// transitive rule.
func (p *PRoPHET) OnContact(a, b trace.NodeID, now float64) {
	if p.p == nil {
		return
	}
	pinit, beta, _ := p.params()
	p.age(a, now)
	p.age(b, now)
	rowA, rowB := p.row(a), p.row(b)
	rowA[b] += (1 - rowA[b]) * pinit
	rowB[a] += (1 - rowB[a]) * pinit
	for c := 0; c < p.n; c++ {
		if trace.NodeID(c) == a || trace.NodeID(c) == b {
			continue
		}
		rowA[c] += (1 - rowA[c]) * rowA[b] * rowB[c] * beta
		rowB[c] += (1 - rowB[c]) * rowB[a] * rowA[c] * beta
	}
}

// Forward hands a copy to peers with strictly higher delivery
// predictability for the destination.
func (p *PRoPHET) Forward(_ *View, holder, peer, dst trace.NodeID, _ float64) bool {
	if p.p == nil {
		return false
	}
	return p.p[int(peer)*p.n+int(dst)] > p.p[int(holder)*p.n+int(dst)]
}

// PaperSet returns the six algorithms the paper compares in §6, in
// presentation order.
func PaperSet() []Algorithm {
	return []Algorithm{
		Epidemic{},
		FRESH{},
		Greedy{},
		GreedyTotal{},
		GreedyOnline{},
		DynamicProgramming{},
	}
}

// ExtendedSet returns PaperSet plus the ablation algorithms.
func ExtendedSet() []Algorithm {
	return append(PaperSet(),
		DirectDelivery{},
		SprayAndWait{},
		&PRoPHET{},
	)
}
