package forward

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestViewObserve(t *testing.T) {
	v := NewView(4)
	if !math.IsInf(v.LastEncounter(0, 1), -1) {
		t.Errorf("initial last encounter should be -Inf")
	}
	v.Observe(0, 1, 100)
	v.Observe(0, 1, 200)
	v.Observe(0, 2, 150)
	if got := v.LastEncounter(0, 1); got != 200 {
		t.Errorf("LastEncounter = %g, want 200", got)
	}
	if got := v.LastEncounter(1, 0); got != 200 {
		t.Errorf("symmetric LastEncounter = %g, want 200", got)
	}
	if got := v.EncounterCount(0, 1); got != 2 {
		t.Errorf("EncounterCount = %d, want 2", got)
	}
	if got := v.ContactsSoFar(0); got != 3 {
		t.Errorf("ContactsSoFar(0) = %d, want 3", got)
	}
	if got := v.ContactsSoFar(3); got != 0 {
		t.Errorf("ContactsSoFar(3) = %d, want 0", got)
	}
	if v.NumNodes() != 4 {
		t.Errorf("NumNodes = %d", v.NumNodes())
	}
}

func TestViewOracleDefaults(t *testing.T) {
	v := NewView(3)
	if v.TotalContacts(0) != 0 {
		t.Errorf("TotalContacts before oracle should be 0")
	}
	if !math.IsInf(v.MEEDDistance(0, 1), 1) {
		t.Errorf("MEEDDistance before oracle should be +Inf")
	}
}

func TestMEEDDistances(t *testing.T) {
	// 0 meets 1 often (4 contacts), 1 meets 2 once, 0 never meets 2.
	tr, err := trace.New("meed", 4, 1000, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 1},
		{A: 0, B: 1, Start: 100, End: 101},
		{A: 0, B: 1, Start: 200, End: 201},
		{A: 0, B: 1, Start: 300, End: 301},
		{A: 1, B: 2, Start: 400, End: 401},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := MEEDDistances(tr)
	if got, want := d.At(0, 1), 1000.0/5; got != want {
		t.Errorf("d(0,1) = %g, want %g", got, want)
	}
	if got, want := d.At(1, 2), 1000.0/2; got != want {
		t.Errorf("d(1,2) = %g, want %g", got, want)
	}
	// 0->2 goes through 1: 200 + 500.
	if got, want := d.At(0, 2), 700.0; got != want {
		t.Errorf("d(0,2) = %g, want %g", got, want)
	}
	if !math.IsInf(d.At(0, 3), 1) {
		t.Errorf("d(0,3) should be +Inf (node 3 isolated)")
	}
	if d.At(0, 0) != 0 {
		t.Errorf("d(0,0) = %g, want 0", d.At(0, 0))
	}
	if d.Size() != 4 {
		t.Errorf("Size = %d, want 4", d.Size())
	}
	if row := d.Row(0); len(row) != 4 || row[1] != d.At(0, 1) {
		t.Errorf("Row(0) = %v, want len 4 aliasing At(0,·)", row)
	}
}

func TestEpidemicAlwaysForwards(t *testing.T) {
	v := NewView(3)
	if !(Epidemic{}).Forward(v, 0, 1, 2, 0) {
		t.Errorf("epidemic refused to forward")
	}
}

func TestFRESH(t *testing.T) {
	v := NewView(4)
	v.Observe(1, 3, 100) // peer 1 met dst 3 at 100
	v.Observe(0, 3, 50)  // holder 0 met dst 3 at 50
	f := FRESH{}
	if !f.Forward(v, 0, 1, 3, 200) {
		t.Errorf("FRESH should forward to fresher node")
	}
	if f.Forward(v, 1, 0, 3, 200) {
		t.Errorf("FRESH should not forward to staler node")
	}
	if f.Forward(v, 0, 2, 3, 200) {
		t.Errorf("FRESH should not forward to node that never met dst")
	}
}

func TestGreedy(t *testing.T) {
	v := NewView(4)
	v.Observe(1, 3, 10)
	v.Observe(1, 3, 20)
	v.Observe(0, 3, 30)
	g := Greedy{}
	if !g.Forward(v, 0, 1, 3, 100) {
		t.Errorf("Greedy should forward to higher-count node")
	}
	if g.Forward(v, 1, 0, 3, 100) {
		t.Errorf("Greedy should not forward to lower-count node")
	}
	if g.Forward(v, 0, 2, 3, 100) {
		t.Errorf("Greedy forwarded to zero-count node")
	}
}

func TestGreedyOnline(t *testing.T) {
	v := NewView(4)
	v.Observe(1, 2, 10)
	v.Observe(1, 3, 20)
	v.Observe(0, 2, 30)
	g := GreedyOnline{}
	if !g.Forward(v, 0, 1, 3, 100) {
		t.Errorf("GreedyOnline should forward to busier node")
	}
	if g.Forward(v, 1, 0, 3, 100) {
		t.Errorf("GreedyOnline should not forward to quieter node")
	}
}

func oracleView(t *testing.T) *View {
	t.Helper()
	tr, err := trace.New("o", 4, 1000, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 1},
		{A: 1, B: 2, Start: 10, End: 11},
		{A: 1, B: 2, Start: 20, End: 21},
		{A: 2, B: 3, Start: 30, End: 31},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := NewView(4)
	v.SetOracle(tr)
	return v
}

func TestGreedyTotal(t *testing.T) {
	v := oracleView(t)
	// totals: 0:1, 1:3, 2:3, 3:1
	g := GreedyTotal{}
	if !g.Forward(v, 0, 1, 3, 0) {
		t.Errorf("GreedyTotal should forward 0->1")
	}
	if g.Forward(v, 1, 0, 3, 0) {
		t.Errorf("GreedyTotal should not forward 1->0")
	}
	if g.Forward(v, 1, 2, 3, 0) {
		t.Errorf("GreedyTotal should not forward on equal totals")
	}
}

func TestDynamicProgramming(t *testing.T) {
	v := oracleView(t)
	dp := DynamicProgramming{}
	// d(1,3) < d(0,3): forwarding 0->1 helps toward 3.
	if !dp.Forward(v, 0, 1, 3, 0) {
		t.Errorf("DP should forward closer to destination")
	}
	if dp.Forward(v, 1, 0, 3, 0) {
		t.Errorf("DP should not forward away from destination")
	}
}

func TestDirectDelivery(t *testing.T) {
	v := NewView(3)
	if (DirectDelivery{}).Forward(v, 0, 1, 2, 0) {
		t.Errorf("direct delivery forwarded")
	}
}

func TestSprayAndWaitDefaults(t *testing.T) {
	s := SprayAndWait{}
	if s.InitialCopies() != 8 {
		t.Errorf("default copies = %d, want 8", s.InitialCopies())
	}
	if (SprayAndWait{L: 4}).InitialCopies() != 4 {
		t.Errorf("explicit copies not honored")
	}
	if !s.Forward(nil, 0, 1, 2, 0) {
		t.Errorf("spray consent should be true")
	}
}

func TestPRoPHET(t *testing.T) {
	p := &PRoPHET{}
	p.Reset(4)
	// Before any contact, nobody forwards.
	if p.Forward(nil, 0, 1, 3, 0) {
		t.Errorf("PRoPHET forwarded with empty tables")
	}
	p.OnContact(1, 3, 10) // peer 1 has met dst 3
	if !p.Forward(nil, 0, 1, 3, 20) {
		t.Errorf("PRoPHET should forward to node with predictability")
	}
	if p.Forward(nil, 1, 0, 3, 20) {
		t.Errorf("PRoPHET should not forward to zero-predictability node")
	}
}

func TestPRoPHETAging(t *testing.T) {
	p := &PRoPHET{}
	p.Reset(3)
	p.OnContact(0, 2, 0)
	before := p.row(0)[2]
	// A later unrelated contact triggers aging of node 0's table.
	p.OnContact(0, 1, 10000)
	if after := p.row(0)[2]; after >= before {
		t.Errorf("predictability did not age: %g -> %g", before, after)
	}
}

func TestPRoPHETTransitive(t *testing.T) {
	p := &PRoPHET{}
	p.Reset(4)
	p.OnContact(1, 3, 0) // 1 knows 3
	p.OnContact(0, 1, 1) // 0 meets 1: picks up transitive P(0,3)
	if p.row(0)[3] <= 0 {
		t.Errorf("transitive predictability not propagated")
	}
}

func TestPRoPHETUnresetSafe(t *testing.T) {
	p := &PRoPHET{}
	p.OnContact(0, 1, 0) // must not panic
	if p.Forward(nil, 0, 1, 2, 0) {
		t.Errorf("unreset PRoPHET forwarded")
	}
}

func TestAlgorithmSets(t *testing.T) {
	ps := PaperSet()
	if len(ps) != 6 {
		t.Fatalf("PaperSet size = %d, want 6", len(ps))
	}
	names := map[string]bool{}
	for _, a := range ExtendedSet() {
		if a.Name() == "" {
			t.Errorf("empty algorithm name")
		}
		if names[a.Name()] {
			t.Errorf("duplicate algorithm name %q", a.Name())
		}
		names[a.Name()] = true
	}
	if len(names) != 9 {
		t.Errorf("ExtendedSet size = %d, want 9", len(names))
	}
}
