package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead fuzzes the text-format parser with two invariants:
//
//  1. Read never panics — any input either parses into a valid trace
//     or returns an error.
//  2. Read∘Write round-trips: a trace Read accepts serializes with
//     Write into bytes that Read parses back to an identical trace
//     (header and every contact), and re-serializing reproduces the
//     bytes exactly (the format is canonical for sorted traces).
//
// The corpus seeds every malformed-input case from TestReadErrors plus
// representative valid traces, so the fuzzer starts at the known edges
// of the grammar.
func FuzzRead(f *testing.F) {
	for _, seed := range []string{
		// Valid inputs.
		"trace t 5 100\n0 1 0 1\n",
		"trace dev 3 50.5\n# comment\n0 1 0 5\n\n1 2 6 10\n",
		"trace t 2 100\n0 1 10.5 20.25\n0 1 30 30\n",
		"trace big 128 1e6\n0 127 0 1e6\n",
		// The malformed cases of TestReadErrors.
		"",
		"# nothing here\n\n# still nothing\n",
		"0 1 0 1\n",
		"trace\n",
		"trace t 5\n",
		"trace t 5 100 extra\n",
		"trace t five 100\n",
		"trace t -3 100\n",
		"trace t 0 100\n",
		"trace t 5 x\n",
		"trace t 5 -100\n",
		"trace t 5 100\ntrace t 5 100\n",
		"trace t 5 100\n0 1 2\n",
		"trace t 5 100\n0 1 2 3 4\n",
		"trace t 5 100\nx 1 0 1\n",
		"trace t 5 100\n0 x 0 1\n",
		"trace t 5 100\n0 1 x 1\n",
		"trace t 5 100\n0 1 0 x\n",
		"trace t 5 100\n0 1 50 40\n",
		"trace t 5 100\n0 1 -5 40\n",
		"trace t 5 100\n0 1 50 150\n",
		"trace t 5 100\n0 7 0 1\n",
		"trace t 5 100\n-1 1 0 1\n",
		"trace t 5 100\n2 2 0 1\n",
		"trace t 5 100\n0 1 0 5\n2 3 6",
		// Numeric edges the table tests do not cover.
		"trace t 5 NaN\n",
		"trace t 5 +Inf\n",
		"trace t 5 100\n0 1 NaN 50\n",
		"trace t 5 100\n0 1 0 NaN\n",
		"trace t 99999999999999999999 100\n",
		"trace t 5 1e309\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly; nothing more to check
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write failed on a trace Read accepted: %v", err)
		}
		first := buf.String()
		got, err := Read(strings.NewReader(first))
		if err != nil {
			t.Fatalf("Read rejected Write's own output: %v\n%s", err, first)
		}
		if got.Name != headerName(tr.Name) || got.NumNodes != tr.NumNodes || got.Horizon != tr.Horizon {
			t.Fatalf("header changed over round trip: %q/%d/%v vs %q/%d/%v",
				got.Name, got.NumNodes, got.Horizon, tr.Name, tr.NumNodes, tr.Horizon)
		}
		if got.Len() != tr.Len() {
			t.Fatalf("contact count changed over round trip: %d vs %d", got.Len(), tr.Len())
		}
		for i := range got.Contacts() {
			if got.Contacts()[i] != tr.Contacts()[i] {
				t.Fatalf("contact %d changed over round trip: %+v vs %+v",
					i, got.Contacts()[i], tr.Contacts()[i])
			}
		}
		buf.Reset()
		if err := Write(&buf, got); err != nil {
			t.Fatal(err)
		}
		if buf.String() != first {
			t.Fatalf("serialization not canonical:\n%s\nvs\n%s", buf.String(), first)
		}
	})
}
