package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text serialization is a line-oriented format in the spirit of
// published iMote contact logs:
//
//	# comment lines start with '#'
//	trace <name> <numNodes> <horizonSeconds>
//	<nodeA> <nodeB> <start> <end>
//	...
//
// Fields are whitespace-separated; times are decimal seconds.

// Write serializes the trace to w in the text format above.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# pocket switched network contact trace\n")
	fmt.Fprintf(bw, "trace %s %d %g\n", headerName(t.Name), t.NumNodes, t.Horizon)
	for _, c := range t.contacts {
		fmt.Fprintf(bw, "%d %d %g %g\n", c.A, c.B, c.Start, c.End)
	}
	return bw.Flush()
}

// headerName makes a trace name safe for the single-token header field.
func headerName(name string) string {
	if name == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(name, " ", "_")
}

// Read parses a trace in the text format produced by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	var (
		name     string
		numNodes int
		horizon  float64
		seen     bool
		contacts []Contact
		lineno   int
	)
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "trace" {
			if seen {
				return nil, fmt.Errorf("trace: line %d: duplicate header", lineno)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: header needs 4 fields, got %d", lineno, len(fields))
			}
			name = fields[1]
			var err error
			numNodes, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad node count %q: %v", lineno, fields[2], err)
			}
			horizon, err = strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad horizon %q: %v", lineno, fields[3], err)
			}
			seen = true
			continue
		}
		if !seen {
			return nil, fmt.Errorf("trace: line %d: contact record before header", lineno)
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: contact needs 4 fields, got %d", lineno, len(fields))
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad node %q: %v", lineno, fields[0], err)
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad node %q: %v", lineno, fields[1], err)
		}
		start, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad start %q: %v", lineno, fields[2], err)
		}
		end, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad end %q: %v", lineno, fields[3], err)
		}
		contacts = append(contacts, Contact{A: NodeID(a), B: NodeID(b), Start: start, End: end})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if !seen {
		return nil, fmt.Errorf("trace: missing header line")
	}
	return New(name, numNodes, horizon, contacts)
}
