// Package trace models contact traces collected from short-range radio
// devices (the paper's Bluetooth iMotes). A trace is a set of contact
// records between pairs of nodes over a bounded time window, with all
// times expressed in seconds from the trace origin.
//
// The package provides the measurement primitives every analysis in the
// paper rests on: per-node contact counts and rates, the in/out
// (above/below-median rate) node classification of §5.2, the 1-minute
// contact binning of Fig 1, and time-window restriction used to carve
// the four 3-hour datasets out of longer collections.
package trace

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
)

// NodeID identifies a device in a trace. IDs are dense small integers
// in [0, NumNodes).
type NodeID int

// Contact is a single contact record: nodes A and B were within radio
// range from Start to End (seconds from trace origin). Contacts are
// symmetric: data can flow both ways while the contact lasts
// (the paper ignores asymmetry; see §3).
type Contact struct {
	A, B       NodeID
	Start, End float64
}

// Duration returns the length of the contact in seconds.
func (c Contact) Duration() float64 { return c.End - c.Start }

// Involves reports whether node n is one of the contact's endpoints.
func (c Contact) Involves(n NodeID) bool { return c.A == n || c.B == n }

// Peer returns the other endpoint of the contact, given one endpoint.
// It panics if n is not an endpoint.
func (c Contact) Peer(n NodeID) NodeID {
	switch n {
	case c.A:
		return c.B
	case c.B:
		return c.A
	}
	panic(fmt.Sprintf("trace: node %d not part of contact %v", n, c))
}

// Overlaps reports whether the contact is active at any point during
// [from, to).
func (c Contact) Overlaps(from, to float64) bool {
	return c.Start < to && c.End > from
}

// Trace is an immutable set of contacts between NumNodes nodes over
// [0, Horizon) seconds. Contacts are stored sorted by start time.
type Trace struct {
	Name     string
	NumNodes int
	Horizon  float64 // exclusive upper bound on contact times
	contacts []Contact
}

// ErrInvalid is wrapped by all validation errors returned from New.
var ErrInvalid = errors.New("invalid trace")

// New builds a Trace from a contact set, validating and sorting it.
// The contact slice is copied; the caller keeps ownership of its slice.
//
// Validation rules:
//   - numNodes > 0 and horizon > 0 and finite
//   - endpoints in range and distinct (no self-contacts)
//   - 0 <= Start <= End <= horizon for every contact, all finite
//     (a NaN time would make even the sort order undefined)
func New(name string, numNodes int, horizon float64, contacts []Contact) (*Trace, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("%w: numNodes %d", ErrInvalid, numNodes)
	}
	if !(horizon > 0) || math.IsInf(horizon, 1) {
		return nil, fmt.Errorf("%w: horizon %g", ErrInvalid, horizon)
	}
	cs := make([]Contact, len(contacts))
	copy(cs, contacts)
	for i, c := range cs {
		if c.A < 0 || int(c.A) >= numNodes || c.B < 0 || int(c.B) >= numNodes {
			return nil, fmt.Errorf("%w: contact %d endpoints (%d,%d) out of range [0,%d)",
				ErrInvalid, i, c.A, c.B, numNodes)
		}
		if c.A == c.B {
			return nil, fmt.Errorf("%w: contact %d is a self-contact on node %d", ErrInvalid, i, c.A)
		}
		if !(c.Start >= 0) || !(c.End >= c.Start) || !(c.End <= horizon) {
			return nil, fmt.Errorf("%w: contact %d times [%g,%g] outside [0,%g]",
				ErrInvalid, i, c.Start, c.End, horizon)
		}
	}
	// slices.SortStableFunc: same stable (Start, End) order as the
	// reflection-based sort.SliceStable it replaced, at a fraction of
	// the cost — city-scale generation sorts ≥1M contacts.
	slices.SortStableFunc(cs, func(a, b Contact) int {
		if a.Start != b.Start {
			if a.Start < b.Start {
				return -1
			}
			return 1
		}
		if a.End != b.End {
			if a.End < b.End {
				return -1
			}
			return 1
		}
		return 0
	})
	return &Trace{Name: name, NumNodes: numNodes, Horizon: horizon, contacts: cs}, nil
}

// MustNew is like New but panics on error. Intended for tests and
// generators whose inputs are valid by construction.
func MustNew(name string, numNodes int, horizon float64, contacts []Contact) *Trace {
	t, err := New(name, numNodes, horizon, contacts)
	if err != nil {
		panic(err)
	}
	return t
}

// Contacts returns the trace's contacts sorted by start time. The
// returned slice is shared and must not be modified.
func (t *Trace) Contacts() []Contact { return t.contacts }

// Len returns the number of contact records.
func (t *Trace) Len() int { return len(t.contacts) }

// Window returns a new trace restricted to contacts overlapping
// [from, to), with times shifted so the window starts at 0 and
// clipped to the window. This is how the paper carves stable 3-hour
// periods out of multi-day collections (§3).
func (t *Trace) Window(name string, from, to float64) (*Trace, error) {
	if from < 0 || to <= from {
		return nil, fmt.Errorf("%w: window [%g,%g)", ErrInvalid, from, to)
	}
	var out []Contact
	for _, c := range t.contacts {
		if !c.Overlaps(from, to) {
			continue
		}
		s, e := c.Start, c.End
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		out = append(out, Contact{A: c.A, B: c.B, Start: s - from, End: e - from})
	}
	return New(name, t.NumNodes, to-from, out)
}

// ContactCounts returns, for each node, the number of contact records
// it participates in. This is the quantity plotted in the paper's
// Fig 7 CDFs.
func (t *Trace) ContactCounts() []int {
	counts := make([]int, t.NumNodes)
	for _, c := range t.contacts {
		counts[c.A]++
		counts[c.B]++
	}
	return counts
}

// Rates returns each node's contact rate λᵢ in contacts per second:
// the node's contact count divided by the trace horizon.
func (t *Trace) Rates() []float64 {
	counts := t.ContactCounts()
	rates := make([]float64, len(counts))
	for i, n := range counts {
		rates[i] = float64(n) / t.Horizon
	}
	return rates
}

// TotalContactsPerBin returns the total number of contacts across all
// nodes in consecutive bins of binSize seconds — the paper's Fig 1
// time series (1-minute bins). A contact is counted in every bin it
// overlaps, reflecting the iMote logs where an ongoing contact keeps
// answering inquiry scans.
func (t *Trace) TotalContactsPerBin(binSize float64) []int {
	if binSize <= 0 {
		return nil
	}
	nbins := int(t.Horizon / binSize)
	if float64(nbins)*binSize < t.Horizon {
		nbins++
	}
	bins := make([]int, nbins)
	for _, c := range t.contacts {
		first := int(c.Start / binSize)
		last := int(c.End / binSize)
		if c.End == c.Start {
			last = first
		} else if float64(last)*binSize == c.End {
			last-- // end falls exactly on a bin boundary: exclusive
		}
		if last >= nbins {
			last = nbins - 1
		}
		for b := first; b <= last; b++ {
			bins[b]++
		}
	}
	return bins
}

// PairType classifies a (source, destination) pair by the contact-rate
// class of its endpoints (§5.2): in = rate above the median, out =
// rate at or below the median.
type PairType int

// Pair types, in the order the paper presents them (Fig 8, Fig 13).
const (
	InIn PairType = iota
	InOut
	OutIn
	OutOut
)

// PairTypes lists all four pair types in presentation order.
var PairTypes = [...]PairType{InIn, InOut, OutIn, OutOut}

func (p PairType) String() string {
	switch p {
	case InIn:
		return "in-in"
	case InOut:
		return "in-out"
	case OutIn:
		return "out-in"
	case OutOut:
		return "out-out"
	}
	return fmt.Sprintf("PairType(%d)", int(p))
}

// Classifier assigns nodes to the in (high contact rate) or out (low
// contact rate) set by comparing each node's rate to the population
// median, as in §5.2.
type Classifier struct {
	rates  []float64
	median float64
}

// NewClassifier builds a Classifier from the trace's contact rates.
func NewClassifier(t *Trace) *Classifier {
	rates := t.Rates()
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	var median float64
	n := len(sorted)
	if n > 0 {
		if n%2 == 1 {
			median = sorted[n/2]
		} else {
			median = (sorted[n/2-1] + sorted[n/2]) / 2
		}
	}
	return &Classifier{rates: rates, median: median}
}

// Median returns the median contact rate.
func (cl *Classifier) Median() float64 { return cl.median }

// Rate returns node n's contact rate.
func (cl *Classifier) Rate(n NodeID) float64 { return cl.rates[n] }

// IsIn reports whether node n belongs to the high-rate ("in") set.
func (cl *Classifier) IsIn(n NodeID) bool { return cl.rates[n] > cl.median }

// Classify returns the pair type for a (source, destination) pair.
func (cl *Classifier) Classify(src, dst NodeID) PairType {
	switch {
	case cl.IsIn(src) && cl.IsIn(dst):
		return InIn
	case cl.IsIn(src):
		return InOut
	case cl.IsIn(dst):
		return OutIn
	default:
		return OutOut
	}
}

// InNodes returns the IDs of all high-rate nodes.
func (cl *Classifier) InNodes() []NodeID {
	var out []NodeID
	for i := range cl.rates {
		if cl.IsIn(NodeID(i)) {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// OutNodes returns the IDs of all low-rate nodes.
func (cl *Classifier) OutNodes() []NodeID {
	var out []NodeID
	for i := range cl.rates {
		if !cl.IsIn(NodeID(i)) {
			out = append(out, NodeID(i))
		}
	}
	return out
}
