package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkTrace(t *testing.T, contacts []Contact) *Trace {
	t.Helper()
	tr, err := New("test", 10, 1000, contacts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestContactDuration(t *testing.T) {
	c := Contact{A: 0, B: 1, Start: 10, End: 25}
	if got := c.Duration(); got != 15 {
		t.Errorf("Duration = %g, want 15", got)
	}
}

func TestContactPeer(t *testing.T) {
	c := Contact{A: 3, B: 7}
	if got := c.Peer(3); got != 7 {
		t.Errorf("Peer(3) = %d, want 7", got)
	}
	if got := c.Peer(7); got != 3 {
		t.Errorf("Peer(7) = %d, want 3", got)
	}
}

func TestContactPeerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Peer on non-member did not panic")
		}
	}()
	Contact{A: 3, B: 7}.Peer(5)
}

func TestContactInvolves(t *testing.T) {
	c := Contact{A: 1, B: 2}
	for _, tc := range []struct {
		n    NodeID
		want bool
	}{{1, true}, {2, true}, {3, false}} {
		if got := c.Involves(tc.n); got != tc.want {
			t.Errorf("Involves(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestContactOverlaps(t *testing.T) {
	c := Contact{A: 0, B: 1, Start: 10, End: 20}
	for _, tc := range []struct {
		from, to float64
		want     bool
	}{
		{0, 5, false},
		{0, 10, false}, // half-open: ends exactly at contact start
		{0, 11, true},
		{15, 16, true},
		{20, 30, false}, // contact ends exactly at window start
		{19, 30, true},
		{5, 25, true},
	} {
		if got := c.Overlaps(tc.from, tc.to); got != tc.want {
			t.Errorf("Overlaps(%g,%g) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	valid := []Contact{{A: 0, B: 1, Start: 0, End: 10}}
	for _, tc := range []struct {
		name     string
		numNodes int
		horizon  float64
		contacts []Contact
		wantErr  bool
	}{
		{"ok", 10, 100, valid, false},
		{"empty contacts ok", 10, 100, nil, false},
		{"zero nodes", 0, 100, nil, true},
		{"negative horizon", 10, -1, nil, true},
		{"node out of range", 2, 100, []Contact{{A: 0, B: 5, End: 1}}, true},
		{"negative node", 2, 100, []Contact{{A: -1, B: 1, End: 1}}, true},
		{"self contact", 10, 100, []Contact{{A: 3, B: 3, End: 1}}, true},
		{"negative start", 10, 100, []Contact{{A: 0, B: 1, Start: -1, End: 1}}, true},
		{"end before start", 10, 100, []Contact{{A: 0, B: 1, Start: 5, End: 4}}, true},
		{"end beyond horizon", 10, 100, []Contact{{A: 0, B: 1, Start: 5, End: 101}}, true},
	} {
		_, err := New(tc.name, tc.numNodes, tc.horizon, tc.contacts)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestNewSortsContacts(t *testing.T) {
	tr := mkTrace(t, []Contact{
		{A: 0, B: 1, Start: 50, End: 60},
		{A: 1, B: 2, Start: 10, End: 20},
		{A: 2, B: 3, Start: 30, End: 40},
	})
	cs := tr.Contacts()
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Start > cs[i].Start {
			t.Fatalf("contacts not sorted at %d: %v > %v", i, cs[i-1].Start, cs[i].Start)
		}
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []Contact{{A: 0, B: 1, Start: 1, End: 2}}
	tr := mkTrace(t, in)
	in[0].A = 5
	if tr.Contacts()[0].A != 0 {
		t.Errorf("trace aliases caller slice")
	}
}

func TestWindow(t *testing.T) {
	tr := mkTrace(t, []Contact{
		{A: 0, B: 1, Start: 10, End: 20},
		{A: 1, B: 2, Start: 90, End: 110},  // clipped at window end
		{A: 2, B: 3, Start: 40, End: 60},   // clipped at window start
		{A: 3, B: 4, Start: 200, End: 210}, // outside
	})
	w, err := tr.Window("w", 50, 100)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if w.Horizon != 50 {
		t.Errorf("Horizon = %g, want 50", w.Horizon)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
	// Contact 2 (clipped start): [50,60) -> [0,10)
	if c := w.Contacts()[0]; c.Start != 0 || c.End != 10 {
		t.Errorf("first windowed contact = %+v, want [0,10)", c)
	}
	// Contact 1 (clipped end): [90,110) -> [40,50)
	if c := w.Contacts()[1]; c.Start != 40 || c.End != 50 {
		t.Errorf("second windowed contact = %+v, want [40,50)", c)
	}
}

func TestWindowBadRange(t *testing.T) {
	tr := mkTrace(t, nil)
	if _, err := tr.Window("w", -1, 10); err == nil {
		t.Errorf("negative from accepted")
	}
	if _, err := tr.Window("w", 10, 10); err == nil {
		t.Errorf("empty window accepted")
	}
}

func TestContactCounts(t *testing.T) {
	tr := mkTrace(t, []Contact{
		{A: 0, B: 1, Start: 0, End: 1},
		{A: 0, B: 2, Start: 1, End: 2},
		{A: 1, B: 2, Start: 2, End: 3},
	})
	counts := tr.ContactCounts()
	want := []int{2, 2, 2, 0, 0, 0, 0, 0, 0, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestRates(t *testing.T) {
	tr := mkTrace(t, []Contact{{A: 0, B: 1, Start: 0, End: 1}})
	rates := tr.Rates()
	if want := 1.0 / 1000; rates[0] != want {
		t.Errorf("rate[0] = %g, want %g", rates[0], want)
	}
	if rates[5] != 0 {
		t.Errorf("rate[5] = %g, want 0", rates[5])
	}
}

func TestTotalContactsPerBin(t *testing.T) {
	tr := mkTrace(t, []Contact{
		{A: 0, B: 1, Start: 0, End: 30},    // bin 0 only (ends mid-bin 0 at 30 < 60)
		{A: 1, B: 2, Start: 50, End: 130},  // bins 0,1,2
		{A: 2, B: 3, Start: 60, End: 120},  // bins 1 only? [60,120) -> bin 1 (120 on boundary)
		{A: 3, B: 4, Start: 600, End: 600}, // instantaneous, bin 10
	})
	bins := tr.TotalContactsPerBin(60)
	if len(bins) < 11 {
		t.Fatalf("len(bins) = %d, want >= 11", len(bins))
	}
	if bins[0] != 2 {
		t.Errorf("bin 0 = %d, want 2", bins[0])
	}
	if bins[1] != 2 {
		t.Errorf("bin 1 = %d, want 2", bins[1])
	}
	if bins[2] != 1 {
		t.Errorf("bin 2 = %d, want 1", bins[2])
	}
	if bins[10] != 1 {
		t.Errorf("bin 10 = %d, want 1", bins[10])
	}
}

func TestTotalContactsPerBinBadSize(t *testing.T) {
	tr := mkTrace(t, nil)
	if got := tr.TotalContactsPerBin(0); got != nil {
		t.Errorf("bin size 0 returned %v, want nil", got)
	}
}

func TestPairTypeString(t *testing.T) {
	for _, tc := range []struct {
		p    PairType
		want string
	}{
		{InIn, "in-in"}, {InOut, "in-out"}, {OutIn, "out-in"}, {OutOut, "out-out"},
		{PairType(9), "PairType(9)"},
	} {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", int(tc.p), got, tc.want)
		}
	}
}

// classifierTrace: node 0 has 3 contacts, node 1 has 2, node 2 has 2,
// node 3 has 1, and we use only 4 nodes so the median is clear.
func classifierTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := New("cl", 4, 100, []Contact{
		{A: 0, B: 1, Start: 0, End: 1},
		{A: 0, B: 2, Start: 1, End: 2},
		{A: 0, B: 3, Start: 2, End: 3},
		{A: 1, B: 2, Start: 3, End: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestClassifier(t *testing.T) {
	cl := NewClassifier(classifierTrace(t))
	// counts: 0->3, 1->2, 2->2, 3->1; rates /100; median = 2/100.
	if want := 0.02; math.Abs(cl.Median()-want) > 1e-12 {
		t.Errorf("Median = %g, want %g", cl.Median(), want)
	}
	if !cl.IsIn(0) {
		t.Errorf("node 0 should be in")
	}
	if cl.IsIn(1) || cl.IsIn(2) {
		t.Errorf("median-rate nodes should be out")
	}
	if cl.IsIn(3) {
		t.Errorf("node 3 should be out")
	}
	if got := cl.Classify(0, 0); got != InIn {
		t.Errorf("Classify(0,0) = %v", got)
	}
	if got := cl.Classify(0, 3); got != InOut {
		t.Errorf("Classify(0,3) = %v", got)
	}
	if got := cl.Classify(3, 0); got != OutIn {
		t.Errorf("Classify(3,0) = %v", got)
	}
	if got := cl.Classify(1, 3); got != OutOut {
		t.Errorf("Classify(1,3) = %v", got)
	}
}

func TestClassifierSets(t *testing.T) {
	cl := NewClassifier(classifierTrace(t))
	in, out := cl.InNodes(), cl.OutNodes()
	if len(in)+len(out) != 4 {
		t.Fatalf("in+out = %d+%d, want 4 total", len(in), len(out))
	}
	seen := map[NodeID]bool{}
	for _, n := range append(append([]NodeID{}, in...), out...) {
		if seen[n] {
			t.Errorf("node %d in both sets", n)
		}
		seen[n] = true
	}
}

// Property: windowing preserves contact count ordering and all windowed
// contacts lie within [0, windowLen].
func TestWindowPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var cs []Contact
		for i := 0; i < 50; i++ {
			s := rng.Float64() * 900
			e := s + rng.Float64()*100
			if e > 1000 {
				e = 1000
			}
			a := NodeID(rng.Intn(10))
			b := NodeID(rng.Intn(10))
			if a == b {
				b = (b + 1) % 10
			}
			cs = append(cs, Contact{A: a, B: b, Start: s, End: e})
		}
		tr, err := New("q", 10, 1000, cs)
		if err != nil {
			return false
		}
		from := rng.Float64() * 500
		to := from + 100 + rng.Float64()*400
		w, err := tr.Window("w", from, to)
		if err != nil {
			return false
		}
		for _, c := range w.Contacts() {
			if c.Start < 0 || c.End > w.Horizon || c.End < c.Start {
				return false
			}
		}
		return w.Len() <= tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: sum of per-node contact counts is exactly twice the number
// of contact records (each contact has two endpoints).
func TestContactCountsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var cs []Contact
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			a := NodeID(rng.Intn(20))
			b := NodeID(rng.Intn(20))
			if a == b {
				b = (b + 1) % 20
			}
			s := rng.Float64() * 99
			cs = append(cs, Contact{A: a, B: b, Start: s, End: s + rng.Float64()})
		}
		tr, err := New("q", 20, 101, cs)
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range tr.ContactCounts() {
			sum += c
		}
		return sum == 2*tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
