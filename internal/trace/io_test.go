package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := mkTrace(t, []Contact{
		{A: 0, B: 1, Start: 10.5, End: 20.25},
		{A: 3, B: 4, Start: 100, End: 101},
	})
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != orig.Name || got.NumNodes != orig.NumNodes || got.Horizon != orig.Horizon {
		t.Errorf("header mismatch: got %q/%d/%g", got.Name, got.NumNodes, got.Horizon)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), orig.Len())
	}
	for i := range got.Contacts() {
		if got.Contacts()[i] != orig.Contacts()[i] {
			t.Errorf("contact %d = %+v, want %+v", i, got.Contacts()[i], orig.Contacts()[i])
		}
	}
}

func TestWriteEscapesName(t *testing.T) {
	tr := MustNew("two words", 2, 10, nil)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != "two_words" {
		t.Errorf("Name = %q, want two_words", got.Name)
	}
}

func TestReadErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in string
	}{
		{"empty", ""},
		{"no header", "0 1 0 1\n"},
		{"short header", "trace t 5\n"},
		{"bad node count", "trace t five 100\n"},
		{"bad horizon", "trace t 5 x\n"},
		{"duplicate header", "trace t 5 100\ntrace t 5 100\n"},
		{"short contact", "trace t 5 100\n0 1 2\n"},
		{"bad contact node", "trace t 5 100\nx 1 0 1\n"},
		{"bad contact node b", "trace t 5 100\n0 x 0 1\n"},
		{"bad contact start", "trace t 5 100\n0 1 x 1\n"},
		{"bad contact end", "trace t 5 100\n0 1 0 x\n"},
		{"invalid contact", "trace t 5 100\n0 1 50 40\n"},
		{"self contact", "trace t 5 100\n2 2 0 1\n"},
	} {
		if _, err := Read(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\ntrace t 3 50\n# another\n0 1 0 5\n\n1 2 6 10\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}
