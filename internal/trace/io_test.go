package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := mkTrace(t, []Contact{
		{A: 0, B: 1, Start: 10.5, End: 20.25},
		{A: 3, B: 4, Start: 100, End: 101},
	})
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != orig.Name || got.NumNodes != orig.NumNodes || got.Horizon != orig.Horizon {
		t.Errorf("header mismatch: got %q/%d/%g", got.Name, got.NumNodes, got.Horizon)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), orig.Len())
	}
	for i := range got.Contacts() {
		if got.Contacts()[i] != orig.Contacts()[i] {
			t.Errorf("contact %d = %+v, want %+v", i, got.Contacts()[i], orig.Contacts()[i])
		}
	}
}

func TestWriteEscapesName(t *testing.T) {
	tr := MustNew("two words", 2, 10, nil)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != "two_words" {
		t.Errorf("Name = %q, want two_words", got.Name)
	}
}

func TestReadErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in string
	}{
		{"empty", ""},
		{"comments only", "# nothing here\n\n# still nothing\n"},
		{"no header", "0 1 0 1\n"},
		{"truncated header keyword", "trace\n"},
		{"short header", "trace t 5\n"},
		{"long header", "trace t 5 100 extra\n"},
		{"bad node count", "trace t five 100\n"},
		{"negative node count", "trace t -3 100\n"},
		{"zero node count", "trace t 0 100\n"},
		{"bad horizon", "trace t 5 x\n"},
		{"negative horizon", "trace t 5 -100\n"},
		{"duplicate header", "trace t 5 100\ntrace t 5 100\n"},
		{"short contact", "trace t 5 100\n0 1 2\n"},
		{"long contact", "trace t 5 100\n0 1 2 3 4\n"},
		{"bad contact node", "trace t 5 100\nx 1 0 1\n"},
		{"bad contact node b", "trace t 5 100\n0 x 0 1\n"},
		{"bad contact start", "trace t 5 100\n0 1 x 1\n"},
		{"bad contact end", "trace t 5 100\n0 1 0 x\n"},
		{"end before start", "trace t 5 100\n0 1 50 40\n"},
		{"negative start", "trace t 5 100\n0 1 -5 40\n"},
		{"end past horizon", "trace t 5 100\n0 1 50 150\n"},
		{"node out of range", "trace t 5 100\n0 7 0 1\n"},
		{"negative node", "trace t 5 100\n-1 1 0 1\n"},
		{"self contact", "trace t 5 100\n2 2 0 1\n"},
		{"truncated final line", "trace t 5 100\n0 1 0 5\n2 3 6"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Malformed input must produce a clean error — never a
			// panic, never a silently truncated trace.
			tr, err := Read(strings.NewReader(tc.in))
			if err == nil {
				t.Errorf("expected error, got trace %+v", tr)
			}
		})
	}
}

// TestReadWriteRoundTripProperty generates random valid traces and
// asserts the full round trip: Write → Read preserves every field, and
// a second Write reproduces the first byte-for-byte (the format is
// canonical for a sorted trace).
func TestReadWriteRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	for trial := 0; trial < 60; trial++ {
		numNodes := 2 + rng.Intn(20)
		horizon := 10 + rng.Float64()*10000
		contacts := make([]Contact, rng.Intn(40))
		for i := range contacts {
			a := NodeID(rng.Intn(numNodes))
			b := NodeID(rng.Intn(numNodes - 1))
			if b >= a {
				b++
			}
			start := rng.Float64() * horizon
			end := start + rng.Float64()*(horizon-start)
			contacts[i] = Contact{A: a, B: b, Start: start, End: end}
		}
		orig, err := New(fmt.Sprintf("prop-%d", trial), numNodes, horizon, contacts)
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}

		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Fatalf("trial %d: Write: %v", trial, err)
		}
		first := buf.String()

		got, err := Read(strings.NewReader(first))
		if err != nil {
			t.Fatalf("trial %d: Read: %v", trial, err)
		}
		if got.Name != orig.Name || got.NumNodes != orig.NumNodes || got.Horizon != orig.Horizon {
			t.Fatalf("trial %d: header %q/%d/%g, want %q/%d/%g",
				trial, got.Name, got.NumNodes, got.Horizon, orig.Name, orig.NumNodes, orig.Horizon)
		}
		if got.Len() != orig.Len() {
			t.Fatalf("trial %d: Len %d, want %d", trial, got.Len(), orig.Len())
		}
		for i := range got.Contacts() {
			if got.Contacts()[i] != orig.Contacts()[i] {
				t.Fatalf("trial %d: contact %d = %+v, want %+v",
					trial, i, got.Contacts()[i], orig.Contacts()[i])
			}
		}

		buf.Reset()
		if err := Write(&buf, got); err != nil {
			t.Fatalf("trial %d: re-Write: %v", trial, err)
		}
		if buf.String() != first {
			t.Fatalf("trial %d: Write∘Read not canonical:\n%s\nvs\n%s", trial, buf.String(), first)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\ntrace t 3 50\n# another\n0 1 0 5\n\n1 2 6 10\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}
