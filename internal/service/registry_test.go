package service

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestRegistryBuiltinNames(t *testing.T) {
	reg := NewRegistry()
	want := []string{"city-2k", "city-4k", "conext-3-6", "conext-9-12", "dev", "infocom-3-6", "infocom-9-12"}
	if got := reg.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
	for _, info := range reg.List() {
		if info.Kind != KindSynthetic {
			t.Errorf("%s: kind %q, want synthetic", info.Name, info.Kind)
		}
	}
}

func TestRegistryBuiltinTracesMatchGenerators(t *testing.T) {
	reg := NewRegistry()
	tr, err := reg.Trace("dev")
	if err != nil {
		t.Fatal(err)
	}
	want := tracegen.Dev(1)
	if tr.Name != want.Name || tr.Len() != want.Len() || tr.NumNodes != want.NumNodes {
		t.Errorf("dev trace differs from tracegen.Dev(1): %q/%d/%d vs %q/%d/%d",
			tr.Name, tr.NumNodes, tr.Len(), want.Name, want.NumNodes, want.Len())
	}
	// The same entry is returned, not regenerated.
	again, err := reg.Trace("dev")
	if err != nil {
		t.Fatal(err)
	}
	if tr != again {
		t.Error("second Trace call returned a different instance")
	}
}

func TestRegistryUnknownDatasetListsNames(t *testing.T) {
	reg := NewRegistry()
	_, err := reg.Trace("nope")
	if err == nil {
		t.Fatal("expected error")
	}
	var unknown *UnknownDatasetError
	if !asUnknown(err, &unknown) {
		t.Fatalf("error type %T, want *UnknownDatasetError", err)
	}
	msg := err.Error()
	for _, name := range reg.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list %q", msg, name)
		}
	}
}

func asUnknown(err error, target **UnknownDatasetError) bool {
	u, ok := err.(*UnknownDatasetError)
	if ok {
		*target = u
	}
	return ok
}

func TestRegistryRegisterDuplicate(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("dev", KindSynthetic, nil); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if err := reg.Register("", KindSynthetic, nil); err == nil {
		t.Error("empty-name Register succeeded")
	}
}

func TestRegistryRegisterFile(t *testing.T) {
	orig := tracegen.Dev(7)
	path := filepath.Join(t.TempDir(), "dev7.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, orig); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := NewRegistry()
	if err := reg.RegisterFile("office", path); err != nil {
		t.Fatal(err)
	}
	tr, err := reg.Trace("office")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != orig.Len() || tr.NumNodes != orig.NumNodes || tr.Horizon != orig.Horizon {
		t.Errorf("loaded trace %d/%d/%g differs from written %d/%d/%g",
			tr.NumNodes, tr.Len(), tr.Horizon, orig.NumNodes, orig.Len(), orig.Horizon)
	}
	found := false
	for _, info := range reg.List() {
		if info.Name == "office" {
			found = true
			if info.Kind != KindFile {
				t.Errorf("office kind = %q, want file", info.Kind)
			}
		}
	}
	if !found {
		t.Error("office missing from List")
	}

	if err := reg.RegisterFile("broken", filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("RegisterFile with missing path succeeded")
	}
	if err := reg.RegisterFile("dir", t.TempDir()); err == nil {
		t.Error("RegisterFile with a directory succeeded")
	}
}

// File traces load lazily behind the singleflight: registration only
// checks the path, parsing happens on first use, and a failed load is
// retried on the next request rather than memoized — a transient file
// error must not poison the dataset until restart.
func TestRegisterFileLoadsLazily(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flaky.txt")
	if err := os.WriteFile(path, []byte("trace t 5 100\nnot a contact line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	// A malformed file must register fine (only the path is checked)…
	if err := reg.RegisterFile("lazy", path); err != nil {
		t.Fatalf("RegisterFile rejected a readable path eagerly: %v", err)
	}
	// …and fail on first use, even if the file is deleted in between
	// (proving nothing was parsed at registration time).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Trace("lazy"); err == nil {
		t.Fatal("malformed trace loaded without error")
	}
	// The failure is not memoized: once the file reappears with valid
	// contents, the same dataset loads.
	orig7 := tracegen.Dev(7)
	writeTraceFile(t, path, orig7)
	tr, err := reg.Trace("lazy")
	if err != nil {
		t.Fatalf("file error was memoized; retry after repair failed: %v", err)
	}
	if tr.Len() != orig7.Len() || tr.NumNodes != orig7.NumNodes {
		t.Errorf("retried load %d/%d differs from written %d/%d",
			tr.NumNodes, tr.Len(), orig7.NumNodes, orig7.Len())
	}
	// The successful load IS memoized: deleting the file no longer
	// matters.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	again, err := reg.Trace("lazy")
	if err != nil || again != tr {
		t.Errorf("successful load not memoized: %v, %p vs %p", err, again, tr)
	}

	// A well-formed file loads on first use with the same contents.
	good := filepath.Join(t.TempDir(), "good.txt")
	orig := tracegen.Dev(3)
	writeTraceFile(t, good, orig)
	if err := reg.RegisterFile("good", good); err != nil {
		t.Fatal(err)
	}
	tr2, err := reg.Trace("good")
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != orig.Len() || tr2.NumNodes != orig.NumNodes {
		t.Errorf("lazily loaded trace %d/%d differs from written %d/%d",
			tr2.NumNodes, tr2.Len(), orig.NumNodes, orig.Len())
	}
	again2, err := reg.Trace("good")
	if err != nil {
		t.Fatal(err)
	}
	if tr2 != again2 {
		t.Error("second Trace call re-parsed the file")
	}
}

func writeTraceFile(t *testing.T, path string, tr *trace.Trace) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// Synthetic builders are deterministic: their failures cannot succeed
// on retry, so they ARE memoized — the build runs exactly once.
func TestRegistrySyntheticErrorMemoized(t *testing.T) {
	reg := NewRegistry()
	calls := 0
	if err := reg.Register("doomed", KindSynthetic, func() (*trace.Trace, error) {
		calls++
		return nil, fmt.Errorf("deterministic failure %d", calls)
	}); err != nil {
		t.Fatal(err)
	}
	_, err1 := reg.Trace("doomed")
	_, err2 := reg.Trace("doomed")
	if err1 == nil || err1 != err2 {
		t.Errorf("synthetic build error not memoized: %v vs %v", err1, err2)
	}
	if calls != 1 {
		t.Errorf("synthetic builder ran %d times, want 1", calls)
	}
}

func TestRegistryConcurrentTraceSingleflight(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	traces := make([]*trace.Trace, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			tr, err := reg.Trace("dev")
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if traces[i] != traces[0] {
			t.Fatalf("goroutine %d got a different trace instance", i)
		}
	}
}
