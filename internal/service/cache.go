package service

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/engine"
)

// runFill executes a leader's cache fill, guaranteeing done closes
// even if the fill panics: the panic is recorded as the entry's error
// — so waiters fail cleanly instead of hanging on a channel nobody
// will ever close — and then re-raised for the leader's own recovery
// middleware. The errored entry self-heals: the next caller observes
// the error and unpins the slot.
func runFill(fill func(), errp *error, done chan struct{}) {
	defer func() {
		if r := recover(); r != nil {
			*errp = fmt.Errorf("service: panic during cache fill: %v", r)
			close(done)
			panic(r)
		}
		close(done)
	}()
	fill()
}

// memoMap is a size-bounded singleflight cache for the per-dataset
// artifacts. Several key dimensions (delta, enumeration budgets,
// harness scale) come straight from request parameters, so the map
// must not grow with the set of distinct values clients send: beyond
// max entries the least recently used artifact is evicted and rebuilt
// on its next request (in-flight users keep their reference; the GC
// reclaims it when the last one drops). The mutex guards only the
// lookup and recency bookkeeping; computations for distinct keys run
// in parallel, and an entry evicted mid-computation simply finishes
// for its waiters.
//
// Singleflight is a done channel rather than a sync.Once so waiters
// can respect their own cancellation token: the entry's creator (the
// leader) computes synchronously and closes done; every other caller
// for the same key waits via cc.Wait, abandoning the wait — but never
// the leader's computation, which finishes for whoever remains — when
// its request deadline fires or its client disconnects.
type memoMap[K comparable, V any] struct {
	mu    sync.Mutex
	max   int        // entry bound; <= 0 means unbounded
	order *list.List // front = most recently used; values are *memoEntry[K, V]
	byKey map[K]*list.Element
}

type memoEntry[K comparable, V any] struct {
	key  K
	done chan struct{} // closed once val/err are set
	val  V
	err  error
}

func newMemoMap[K comparable, V any](max int) *memoMap[K, V] {
	return &memoMap[K, V]{max: max, order: list.New(), byKey: make(map[K]*list.Element)}
}

// get returns the value for k, computing it at most once while cached.
// The first caller for an uncached key computes f with its own token
// live inside; later callers block on that computation via cc.Wait and
// return their own *engine.CanceledError if cc fires first. Errors are
// not pinned: a failed slot is dropped so the next request retries.
func (c *memoMap[K, V]) get(cc *engine.Cancel, k K, f func() (V, error)) (V, error) {
	c.mu.Lock()
	var e *memoEntry[K, V]
	leader := false
	if el, ok := c.byKey[k]; ok {
		c.order.MoveToFront(el)
		e = el.Value.(*memoEntry[K, V])
	} else {
		e = &memoEntry[K, V]{key: k, done: make(chan struct{})}
		c.byKey[k] = c.order.PushFront(e)
		leader = true
		for c.max > 0 && c.order.Len() > c.max {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.byKey, back.Value.(*memoEntry[K, V]).key)
		}
	}
	c.mu.Unlock()

	if leader {
		runFill(func() { e.val, e.err = f() }, &e.err, e.done)
	} else if err := cc.Wait(e.done); err != nil {
		var zero V
		return zero, err
	}
	if e.err != nil {
		// Don't pin failures: a later call may succeed (e.g. a
		// transient build error, or a build the leader abandoned at a
		// cancellation checkpoint), and errored slots would otherwise
		// occupy the map until evicted.
		c.mu.Lock()
		if cur, ok := c.byKey[k]; ok && cur.Value.(*memoEntry[K, V]) == e {
			c.order.Remove(cur)
			delete(c.byKey, k)
		}
		c.mu.Unlock()
	}
	return e.val, e.err
}

// lruCache is a size-bounded LRU with singleflight semantics: Get
// returns the cached value for key, or computes it exactly once even
// under concurrent requests for the same key. Values must be immutable
// once returned (the serving layer stores marshaled response bytes).
// Entries evicted while still being computed simply finish for their
// waiters and are recomputed on the next request. Waiters joining an
// in-progress computation respect their own cancellation token, same
// discipline as memoMap.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *lruEntry
	byKey map[string]*list.Element

	hits, misses int64
}

type lruEntry struct {
	key  string
	done chan struct{} // closed once val/err are set
	val  []byte
	err  error
}

// newLRUCache returns an LRU holding at most max entries; max <= 0
// disables caching (every Get computes).
func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the value for key, computing it via f on a miss. The
// computation runs outside the cache lock; concurrent callers for the
// same key share one computation, each waiting under its own token.
// Errors are not cached.
func (c *lruCache) Get(cc *engine.Cancel, key string, f func() ([]byte, error)) ([]byte, error) {
	if c.max <= 0 {
		return f()
	}
	c.mu.Lock()
	var e *lruEntry
	leader := false
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		e = el.Value.(*lruEntry)
	} else {
		c.misses++
		e = &lruEntry{key: key, done: make(chan struct{})}
		c.byKey[key] = c.order.PushFront(e)
		leader = true
		for c.order.Len() > c.max {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.byKey, back.Value.(*lruEntry).key)
		}
	}
	c.mu.Unlock()

	if leader {
		runFill(func() { e.val, e.err = f() }, &e.err, e.done)
	} else if err := cc.Wait(e.done); err != nil {
		return nil, err
	}
	if e.err != nil {
		c.mu.Lock()
		if cur, ok := c.byKey[key]; ok && cur.Value.(*lruEntry) == e {
			c.order.Remove(cur)
			delete(c.byKey, key)
		}
		c.mu.Unlock()
	}
	return e.val, e.err
}

// Stats returns the hit/miss counters and current entry count.
func (c *lruCache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
