package service

import (
	"container/list"
	"sync"
)

// memo is a single-flight cache slot: the first caller computes, every
// other caller for the same key blocks on that computation and shares
// the result (the same discipline as the figure harness caches).
type memo[V any] struct {
	once sync.Once
	val  V
	err  error
}

// memoMap is a size-bounded singleflight cache for the per-dataset
// artifacts. Several key dimensions (delta, enumeration budgets,
// harness scale) come straight from request parameters, so the map
// must not grow with the set of distinct values clients send: beyond
// max entries the least recently used artifact is evicted and rebuilt
// on its next request (in-flight users keep their reference; the GC
// reclaims it when the last one drops). The mutex guards only the
// lookup and recency bookkeeping; computations for distinct keys run
// in parallel, and an entry evicted mid-computation simply finishes
// for its waiters.
type memoMap[K comparable, V any] struct {
	mu    sync.Mutex
	max   int        // entry bound; <= 0 means unbounded
	order *list.List // front = most recently used; values are *memoEntry[K, V]
	byKey map[K]*list.Element
}

type memoEntry[K comparable, V any] struct {
	key K
	memo[V]
}

func newMemoMap[K comparable, V any](max int) *memoMap[K, V] {
	return &memoMap[K, V]{max: max, order: list.New(), byKey: make(map[K]*list.Element)}
}

// get returns the value for k, computing it at most once while cached.
func (c *memoMap[K, V]) get(k K, f func() (V, error)) (V, error) {
	c.mu.Lock()
	el, ok := c.byKey[k]
	if ok {
		c.order.MoveToFront(el)
	} else {
		el = c.order.PushFront(&memoEntry[K, V]{key: k})
		c.byKey[k] = el
		for c.max > 0 && c.order.Len() > c.max {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.byKey, back.Value.(*memoEntry[K, V]).key)
		}
	}
	e := el.Value.(*memoEntry[K, V])
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = f() })
	if e.err != nil {
		// Don't pin failures: a later call may succeed (e.g. a
		// transient build error), and errored slots would otherwise
		// occupy the map until evicted.
		c.mu.Lock()
		if cur, ok := c.byKey[k]; ok && cur.Value.(*memoEntry[K, V]) == e {
			c.order.Remove(cur)
			delete(c.byKey, k)
		}
		c.mu.Unlock()
	}
	return e.val, e.err
}

// lruCache is a size-bounded LRU with singleflight semantics: Get
// returns the cached value for key, or computes it exactly once even
// under concurrent requests for the same key. Values must be immutable
// once returned (the serving layer stores marshaled response bytes).
// Entries evicted while still being computed simply finish for their
// waiters and are recomputed on the next request.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *lruEntry
	byKey map[string]*list.Element

	hits, misses int64
}

type lruEntry struct {
	key  string
	memo memo[[]byte]
}

// newLRUCache returns an LRU holding at most max entries; max <= 0
// disables caching (every Get computes).
func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the value for key, computing it via f on a miss. The
// computation runs outside the cache lock; concurrent callers for the
// same key share one computation. Errors are not cached.
func (c *lruCache) Get(key string, f func() ([]byte, error)) ([]byte, error) {
	if c.max <= 0 {
		return f()
	}
	c.mu.Lock()
	el, ok := c.byKey[key]
	if ok {
		c.order.MoveToFront(el)
		c.hits++
	} else {
		c.misses++
		el = c.order.PushFront(&lruEntry{key: key})
		c.byKey[key] = el
		for c.order.Len() > c.max {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.byKey, back.Value.(*lruEntry).key)
		}
	}
	e := el.Value.(*lruEntry)
	c.mu.Unlock()

	e.memo.once.Do(func() { e.memo.val, e.memo.err = f() })
	if e.memo.err != nil {
		c.mu.Lock()
		if cur, ok := c.byKey[key]; ok && cur.Value.(*lruEntry) == e {
			c.order.Remove(cur)
			delete(c.byKey, key)
		}
		c.mu.Unlock()
	}
	return e.memo.val, e.memo.err
}

// Stats returns the hit/miss counters and current entry count.
func (c *lruCache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
