package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/artstore"
	"repro/internal/dtnsim"
	"repro/internal/faultinject"
	"repro/internal/stgraph"
)

const enumBody = `{"dataset":"dev","src":0,"dst":17,"start":0,"k":50}`

// metricValue scrapes one counter/gauge value (with its label set
// spelled exactly as exposed) from the server's /metrics.
func metricValue(t *testing.T, ts *httptest.Server, metric string) int64 {
	t.Helper()
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(metric) + ` (\d+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in /metrics", metric)
	}
	n, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRequestDeadlineSheds: a request whose compute outlives
// RequestTimeout is abandoned at a cancellation checkpoint and
// answered 503 with a Retry-After hint, counted under
// psn_cancelled_total{reason="deadline"}.
func TestRequestDeadlineSheds(t *testing.T) {
	faults := faultinject.New()
	faults.Set("enumerate", faultinject.Fault{Delay: 10 * time.Second, Count: 1})
	_, ts := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond, Faults: faults})

	start := time.Now()
	resp, err := http.Post(ts.URL+"/enumerate", "application/json", strings.NewReader(enumBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 deadline response missing Retry-After")
	}
	// The injected stage would run 10s; the deadline must cut it off
	// orders of magnitude sooner.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadlined request took %v", d)
	}
	if got := metricValue(t, ts, `psn_cancelled_total{reason="deadline"}`); got != 1 {
		t.Errorf(`psn_cancelled_total{reason="deadline"} = %d, want 1`, got)
	}
	if got := metricValue(t, ts, `psn_cancelled_total{reason="client"}`); got != 0 {
		t.Errorf(`psn_cancelled_total{reason="client"} = %d, want 0`, got)
	}

	// The fault is spent (*1): the same request now completes.
	code, _ := post(t, ts.URL+"/enumerate", enumBody)
	if code != http.StatusOK {
		t.Fatalf("request after deadline shed: status %d, want 200", code)
	}
}

// TestClientDisconnectCancels: a request whose client has gone away is
// abandoned and accounted 499 under reason="client". Driven through
// ServeHTTP directly — a real disconnected socket can't carry the
// response back for inspection.
func TestClientDisconnectCancels(t *testing.T) {
	faults := faultinject.New()
	faults.Set("enumerate", faultinject.Fault{Delay: 10 * time.Second, Count: 1})
	s, ts := newTestServer(t, Config{Faults: faults})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest("POST", "/enumerate", strings.NewReader(enumBody)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if got := metricValue(t, ts, `psn_cancelled_total{reason="client"}`); got != 1 {
		t.Errorf(`psn_cancelled_total{reason="client"} = %d, want 1`, got)
	}
}

// TestPanicRecoveryMiddleware: a panicking handler is contained to its
// request — 500 carrying the request ID, psn_panics_total incremented,
// and the server keeps serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	faults := faultinject.New()
	faults.Set("handler", faultinject.Fault{Panic: "chaos", Count: 1})
	_, ts := newTestServer(t, Config{Faults: faults})

	resp, err := http.Post(ts.URL+"/enumerate", "application/json", strings.NewReader(enumBody))
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	code := resp.StatusCode
	id := resp.Header.Get("X-Psn-Request")
	if err := readJSON(resp, &body); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", code)
	}
	if id == "" || !strings.Contains(body.Error, id) {
		t.Errorf("500 body %q does not echo the request ID %q", body.Error, id)
	}
	if got := metricValue(t, ts, "psn_panics_total"); got != 1 {
		t.Errorf("psn_panics_total = %d, want 1", got)
	}

	// The process survived and the next request works.
	if code, _ := post(t, ts.URL+"/enumerate", enumBody); code != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200", code)
	}
}

func readJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// discardLogger silences the chaos suite's expected panic/quarantine
// log spam without losing real test failures.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestDegradedMode: repeated build failures trip the dataset into a
// backoff window answering 503 + Retry-After, visible on /healthz and
// /metrics; a healthy probe build after the window restores service.
func TestDegradedMode(t *testing.T) {
	faults := faultinject.New()
	faults.Set("graph-build", faultinject.Fault{Err: faultinject.ErrInjected, Count: degradeThreshold})
	s, ts := newTestServer(t, Config{Faults: faults})

	for i := 0; i < degradeThreshold; i++ {
		if code, body := post(t, ts.URL+"/enumerate", enumBody); code != http.StatusInternalServerError {
			t.Fatalf("failing build %d: status %d (%s), want 500", i, code, body)
		}
	}

	resp, err := http.Post(ts.URL+"/enumerate", "application/json", strings.NewReader(enumBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded dataset: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("degraded 503 missing Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", ra)
	}
	if got := metricValue(t, ts, "psn_degraded_datasets"); got != 1 {
		t.Errorf("psn_degraded_datasets = %d, want 1", got)
	}
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz while degraded: status %d, want 200 (cached data still serves)", code)
	}
	if !strings.Contains(string(body), `"status":"degraded"`) || !strings.Contains(string(body), `"dev"`) {
		t.Errorf("/healthz does not report the degraded dataset: %s", body)
	}

	// Recovery: the fault is exhausted; expire the backoff window so
	// the next request probes a build through — it succeeds and clears
	// the degraded state.
	s.art.deg.mu.Lock()
	s.art.deg.state["dev"].until = time.Now().Add(-time.Second)
	s.art.deg.mu.Unlock()
	if code, body := post(t, ts.URL+"/enumerate", enumBody); code != http.StatusOK {
		t.Fatalf("probe build after recovery: status %d (%s), want 200", code, body)
	}
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Errorf("/healthz after recovery: status %d body %s, want ok", code, body)
	}
	if got := metricValue(t, ts, "psn_degraded_datasets"); got != 0 {
		t.Errorf("psn_degraded_datasets after recovery = %d, want 0", got)
	}
}

// resilienceStore builds a valid artifact store for the dev dataset (graph +
// oracle) and returns its directory and file paths.
func resilienceStore(t *testing.T) (dir, graphPath, oraclePath string) {
	t.Helper()
	reg := NewRegistry()
	tr, err := reg.Trace("dev")
	if err != nil {
		t.Fatal(err)
	}
	g, err := stgraph.New(tr, stgraph.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	st := &artstore.Store{Dir: t.TempDir()}
	digest := artstore.TraceDigest(tr)
	graphPath, err = st.SaveGraph("dev", digest, g)
	if err != nil {
		t.Fatal(err)
	}
	oraclePath, err = st.SaveOracle("dev", digest, dtnsim.NewOracle(tr))
	if err != nil {
		t.Fatal(err)
	}
	return st.Dir, graphPath, oraclePath
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineAndFallback: a corrupt on-disk artifact is renamed
// aside, the request is served from a live build with a byte-identical
// response, /healthz and /metrics report the quarantine, and a second
// boot over the same directory misses cleanly without re-quarantining.
func TestQuarantineAndFallback(t *testing.T) {
	dir, graphPath, _ := resilienceStore(t)
	corruptFile(t, graphPath)

	// Reference answer from a storeless server.
	_, plain := newTestServer(t, Config{})
	_, want := post(t, plain.URL+"/enumerate", enumBody)

	_, ts := newTestServer(t, Config{ArtifactDir: dir})
	code, got := post(t, ts.URL+"/enumerate", enumBody)
	if code != http.StatusOK {
		t.Fatalf("enumerate over corrupt store: status %d (%s), want 200 via live build", code, got)
	}
	if string(got) != string(want) {
		t.Error("fallback response differs from the storeless answer")
	}
	if _, err := os.Stat(graphPath); !os.IsNotExist(err) {
		t.Errorf("corrupt artifact still at %s (stat err %v), want renamed aside", graphPath, err)
	}
	if _, err := os.Stat(graphPath + ".quarantined"); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	if got := metricValue(t, ts, "psn_artifact_quarantines_total"); got != 1 {
		t.Errorf("psn_artifact_quarantines_total = %d, want 1", got)
	}
	if _, body := get(t, ts.URL+"/healthz"); !strings.Contains(string(body), ".quarantined") {
		t.Errorf("/healthz does not list the quarantined file: %s", body)
	}

	// Second boot: the bad file is out of the load path, so the server
	// just misses and builds — no repeated quarantine, nothing to log.
	_, ts2 := newTestServer(t, Config{ArtifactDir: dir})
	if code, _ := post(t, ts2.URL+"/enumerate", enumBody); code != http.StatusOK {
		t.Fatalf("second boot enumerate: status %d, want 200", code)
	}
	if got := metricValue(t, ts2, "psn_artifact_quarantines_total"); got != 0 {
		t.Errorf("second boot psn_artifact_quarantines_total = %d, want 0", got)
	}
}

// TestOracleQuarantine covers the oracle artifact through /simulate.
func TestOracleQuarantine(t *testing.T) {
	dir, _, oraclePath := resilienceStore(t)
	corruptFile(t, oraclePath)

	_, ts := newTestServer(t, Config{ArtifactDir: dir})
	body := `{"dataset":"dev","algorithm":"epidemic","runs":1}`
	if code, out := post(t, ts.URL+"/simulate", body); code != http.StatusOK {
		t.Fatalf("simulate over corrupt oracle: status %d (%s), want 200", code, out)
	}
	if _, err := os.Stat(oraclePath + ".quarantined"); err != nil {
		t.Errorf("quarantined oracle missing: %v", err)
	}
	if got := metricValue(t, ts, "psn_artifact_quarantines_total"); got != 1 {
		t.Errorf("psn_artifact_quarantines_total = %d, want 1", got)
	}
}

// TestDrainFlipsHealthz: drain mode turns /healthz into 503/"draining"
// while an in-flight slow request still completes — the regression
// shape of graceful shutdown (probes fail first, work finishes).
func TestDrainFlipsHealthz(t *testing.T) {
	faults := faultinject.New()
	faults.Set("enumerate", faultinject.Fault{Delay: 300 * time.Millisecond, Count: 1})
	s, ts := newTestServer(t, Config{Faults: faults})

	type result struct {
		code int
		body string
	}
	inflight := make(chan result, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		resp, err := http.Post(ts.URL+"/enumerate", "application/json", strings.NewReader(enumBody))
		if err != nil {
			inflight <- result{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		inflight <- result{resp.StatusCode, ""}
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // the slow request is inside the handler now
	s.SetDraining(true)

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining: status %d, want 503", code)
	}
	if !strings.Contains(string(body), `"status":"draining"`) {
		t.Errorf("/healthz body %s, want status draining", body)
	}

	r := <-inflight
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d %s, want 200", r.code, r.body)
	}

	s.SetDraining(false)
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after drain cleared: status %d, want 200", code)
	}
}

// TestDeadlineEquivalence pins cancellation's non-interference: the
// response of a server with an armed (but never firing) deadline is
// byte-identical to one with deadlines disabled.
func TestDeadlineEquivalence(t *testing.T) {
	_, withDeadline := newTestServer(t, Config{RequestTimeout: time.Hour})
	_, noDeadline := newTestServer(t, Config{RequestTimeout: -1})

	for _, body := range []string{
		enumBody,
		`{"dataset":"dev","messages":[{"src":0,"dst":17,"start":0},{"src":3,"dst":9,"start":100}],"k":80}`,
		`{"dataset":"dev","algorithm":"epidemic","runs":2}`,
	} {
		endpoint := "/enumerate"
		if strings.Contains(body, "algorithm") {
			endpoint = "/simulate"
		}
		codeA, respA := post(t, withDeadline.URL+endpoint, body)
		codeB, respB := post(t, noDeadline.URL+endpoint, body)
		if codeA != http.StatusOK || codeB != http.StatusOK {
			t.Fatalf("%s: statuses %d/%d (%s)", endpoint, codeA, codeB, respA)
		}
		if string(respA) != string(respB) {
			t.Errorf("%s %s: deadline-armed response differs from deadline-free", endpoint, body)
		}
	}
}

// TestChaosSuite floods a fault-riddled server with concurrent mixed
// traffic and asserts the availability contract: every response is a
// well-formed HTTP answer from the expected set, /healthz keeps
// answering, nothing crashes, and no goroutines leak.
func TestChaosSuite(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	faults := faultinject.New()
	faults.Set("enumerate", faultinject.Fault{Err: faultinject.ErrInjected, Count: 5})
	faults.Set("simulate", faultinject.Fault{Delay: 20 * time.Millisecond, Count: 5})
	faults.Set("handler", faultinject.Fault{Panic: "chaos", Count: 3})
	faults.Set("graph-load", faultinject.Fault{Err: faultinject.ErrCorrupt, Count: 2})
	logger := discardLogger()
	s, ts := newTestServer(t, Config{
		RequestTimeout: 250 * time.Millisecond,
		Faults:         faults,
		Logger:         logger,
	})
	client := &http.Client{Timeout: 10 * time.Second}

	const (
		workers  = 8
		requests = 12
	)
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusInternalServerError: true, // injected errors, contained panics
		http.StatusServiceUnavailable:  true, // deadline sheds, inflight sheds, degraded
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers*requests)
	bodies := []struct{ path, body string }{
		{"/enumerate", enumBody},
		{"/simulate", `{"dataset":"dev","algorithm":"epidemic","runs":1}`},
		{"/enumerate", `{"dataset":"dev","messages":[{"src":1,"dst":5,"start":10}],"k":40}`},
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				req := bodies[(w+i)%len(bodies)]
				resp, err := client.Post(ts.URL+req.path, "application/json", strings.NewReader(req.body))
				if err != nil {
					errc <- fmt.Errorf("worker %d request %d: %v", w, i, err)
					return
				}
				resp.Body.Close()
				if !allowed[resp.StatusCode] {
					errc <- fmt.Errorf("worker %d request %d: unexpected status %d", w, i, resp.StatusCode)
				}
				if i%4 == 0 {
					hr, err := client.Get(ts.URL + "/healthz")
					if err != nil {
						errc <- fmt.Errorf("worker %d healthz: %v", w, err)
						return
					}
					hr.Body.Close()
					if hr.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("worker %d: /healthz status %d under chaos", w, hr.StatusCode)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// With the faults spent, the server answers normally again.
	if code, body := post(t, ts.URL+"/enumerate", enumBody); code != http.StatusOK {
		t.Fatalf("post-chaos enumerate: status %d (%s)", code, body)
	}
	if s.metrics.panics.Load() == 0 {
		t.Error("chaos run never exercised the panic recovery path")
	}

	// No goroutine leaks: after closing idle connections the count
	// returns to (near) the pre-test level. Poll briefly — conn
	// teardown and pool reaping are asynchronous.
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= goroutinesBefore+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before chaos, %d after", goroutinesBefore, now)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
