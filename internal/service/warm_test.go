package service

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"repro/internal/artstore"
	"repro/internal/dtnsim"
	"repro/internal/stgraph"
)

// warmStore precomputes the named dataset's graph (at delta) and
// oracle into a fresh store directory, exactly as cmd/psn-warm does.
func warmStore(t *testing.T, dataset string, delta float64) string {
	t.Helper()
	tr, err := NewRegistry().Trace(dataset)
	if err != nil {
		t.Fatal(err)
	}
	digest := artstore.TraceDigest(tr)
	st := &artstore.Store{Dir: t.TempDir()}
	g, err := stgraph.New(tr, delta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveGraph(dataset, digest, g); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveOracle(dataset, digest, dtnsim.NewOracle(tr)); err != nil {
		t.Fatal(err)
	}
	return st.Dir
}

// TestWarmStartServesFromStore pins the warm path end-to-end: a server
// pointed at a warmed store answers /enumerate and /simulate without
// ever building a graph or oracle, with responses byte-identical to a
// cold server's.
func TestWarmStartServesFromStore(t *testing.T) {
	dir := warmStore(t, "dev", stgraph.DefaultDelta)
	warm, warmTS := newTestServer(t, Config{ArtifactDir: dir})
	cold, coldTS := newTestServer(t, Config{})
	_ = cold

	enumerate := `{"dataset":"dev","src":0,"dst":17,"start":0,"k":20}`
	simulate := `{"dataset":"dev","algorithm":"epidemic","runs":1,"seed":7}`
	for _, req := range []struct{ path, body string }{
		{"/enumerate", enumerate},
		{"/simulate", simulate},
	} {
		code, got := post(t, warmTS.URL+req.path, req.body)
		if code != http.StatusOK {
			t.Fatalf("warm %s: status %d: %s", req.path, code, got)
		}
		coldCode, want := post(t, coldTS.URL+req.path, req.body)
		if coldCode != http.StatusOK {
			t.Fatalf("cold %s: status %d: %s", req.path, coldCode, want)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: warm response differs from cold build", req.path)
		}
	}

	if loads, builds := warm.art.graphLoads.Load(), warm.art.graphBuilds.Load(); loads != 1 || builds != 0 {
		t.Fatalf("graph loads/builds = %d/%d, want 1/0", loads, builds)
	}
	if loads, builds := warm.art.oracleLoads.Load(), warm.art.oracleBuilds.Load(); loads != 1 || builds != 0 {
		t.Fatalf("oracle loads/builds = %d/%d, want 1/0", loads, builds)
	}

	code, body := get(t, warmTS.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		`psn_artifact_loads_total{kind="graph"} 1`,
		`psn_artifact_loads_total{kind="oracle"} 1`,
		`psn_artifact_builds_total{kind="graph"} 0`,
		`psn_artifact_builds_total{kind="oracle"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestWarmStartFallsBackOnMismatch: a store warmed from different
// trace data (wrong digest) is treated as a miss — the server builds
// live and still answers correctly.
func TestWarmStartFallsBackOnMismatch(t *testing.T) {
	// Warm with the dev trace but store it under a different dataset's
	// digest by saving the artifacts keyed to a wrong digest value.
	tr, err := NewRegistry().Trace("dev")
	if err != nil {
		t.Fatal(err)
	}
	st := &artstore.Store{Dir: t.TempDir()}
	g, err := stgraph.New(tr, stgraph.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	wrong := artstore.TraceDigest(tr) + 1
	if _, err := st.SaveGraph("dev", wrong, g); err != nil {
		t.Fatal(err)
	}

	warm, warmTS := newTestServer(t, Config{ArtifactDir: st.Dir})
	cold, coldTS := newTestServer(t, Config{})
	_ = cold
	req := `{"dataset":"dev","src":0,"dst":17,"start":0,"k":20}`
	code, got := post(t, warmTS.URL+"/enumerate", req)
	if code != http.StatusOK {
		t.Fatalf("/enumerate: status %d: %s", code, got)
	}
	_, want := post(t, coldTS.URL+"/enumerate", req)
	if !bytes.Equal(got, want) {
		t.Fatal("fallback response differs from cold build")
	}
	if loads, builds := warm.art.graphLoads.Load(), warm.art.graphBuilds.Load(); loads != 0 || builds != 1 {
		t.Fatalf("graph loads/builds = %d/%d, want 0/1 (digest mismatch must fall back)", loads, builds)
	}
}

// TestWarmStartCityNoBuild is the PR's acceptance criterion: a replica
// started against a warmed store serves its first city-2k request
// without invoking stgraph.New (the service's only build path, counted
// by graphBuilds).
func TestWarmStartCityNoBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale build in -short mode")
	}
	dir := warmStore(t, "city-2k", stgraph.DefaultDelta)
	warm, warmTS := newTestServer(t, Config{ArtifactDir: dir})

	req := `{"dataset":"city-2k","src":0,"dst":1700,"start":0,"k":4}`
	code, body := post(t, warmTS.URL+"/enumerate", req)
	if code != http.StatusOK {
		t.Fatalf("/enumerate: status %d: %s", code, body)
	}
	if builds := warm.art.graphBuilds.Load(); builds != 0 {
		t.Fatalf("first city-2k request built %d graphs, want 0 (warm load)", builds)
	}
	if loads := warm.art.graphLoads.Load(); loads != 1 {
		t.Fatalf("graph loads = %d, want 1", loads)
	}
}
