package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/dtnsim"
	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/forward"
	"repro/internal/pathenum"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// respBytes is the canonical wire encoding of a response value — what
// a handler sends for it.
func respBytes(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestServedEnumerateEquivalence pins the determinism contract
// end-to-end: the HTTP /enumerate response is byte-identical to the
// answer computed directly with the library (its own enumerator, no
// service caches), across two datasets and both request forms.
func TestServedEnumerateEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reg := NewRegistry()

	for _, tc := range []struct {
		dataset string
		msgs    []pathenum.Message
		opt     pathenum.Options
		body    string
	}{
		{
			dataset: "dev",
			msgs:    []pathenum.Message{{Src: 0, Dst: 17, Start: 0}},
			opt:     pathenum.Options{K: 50},
			body:    `{"dataset":"dev","src":0,"dst":17,"start":0,"k":50}`,
		},
		{
			dataset: "dev",
			msgs: []pathenum.Message{
				{Src: 1, Dst: 9, Start: 120},
				{Src: 5, Dst: 2, Start: 300.5},
				{Src: 20, Dst: 3, Start: 0},
			},
			opt: pathenum.Options{K: 40, TableWidth: 8},
			body: `{"dataset":"dev","messages":[{"src":1,"dst":9,"start":120},{"src":5,"dst":2,"start":300.5},{"src":20,"dst":3,"start":0}],` +
				`"k":40,"tableWidth":8,"workers":2}`,
		},
		{
			dataset: "infocom-3-6",
			msgs: []pathenum.Message{
				{Src: 25, Dst: 60, Start: 600},
				{Src: 3, Dst: 90, Start: 1200},
			},
			opt:  pathenum.Options{K: 30, Delta: 20},
			body: `{"dataset":"infocom-3-6","messages":[{"src":25,"dst":60,"start":600},{"src":3,"dst":90,"start":1200}],"k":30,"delta":20}`,
		},
	} {
		t.Run(tc.dataset, func(t *testing.T) {
			status, served := post(t, ts.URL+"/enumerate", tc.body)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, served)
			}

			// Direct library call: fresh trace, fresh serial enumerator,
			// no service code beyond the response shaping.
			tr, err := reg.Trace(tc.dataset)
			if err != nil {
				t.Fatal(err)
			}
			opt := tc.opt
			opt.Workers = 1
			enum, err := pathenum.NewEnumerator(tr, opt)
			if err != nil {
				t.Fatal(err)
			}
			results, err := enum.EnumerateAll(tc.msgs)
			if err != nil {
				t.Fatal(err)
			}
			k := opt.K
			want := &EnumerateResponse{
				Dataset: tc.dataset,
				Delta:   enum.Graph().Delta,
				K:       k,
				Results: make([]EnumerateResult, len(results)),
			}
			for i, r := range results {
				want.Results[i] = enumerateResult(r, k)
			}
			if !bytes.Equal(served, respBytes(t, want)) {
				t.Errorf("served response differs from direct library call\nserved: %.200s\ndirect: %.200s",
					served, respBytes(t, want))
			}

			// Repeat request: the cached response must be byte-identical.
			_, again := post(t, ts.URL+"/enumerate", tc.body)
			if !bytes.Equal(served, again) {
				t.Error("repeat request returned different bytes")
			}
		})
	}
}

// TestServedSimulateEquivalence compares /simulate responses with a
// direct library run (serial, no shared caches) across two datasets,
// two seeds, both copy modes and a stateful algorithm.
func TestServedSimulateEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reg := NewRegistry()

	cases := []SimulateRequest{
		{Dataset: "dev", Algorithm: "Epidemic", Rate: 0.1, Runs: 2, Seed: 1},
		{Dataset: "dev", Algorithm: "greedy-total", Rate: 0.1, Runs: 2, Seed: 7},
		{Dataset: "dev", Algorithm: "FRESH", CopyMode: "relay", Rate: 0.1, Runs: 1, Seed: 7},
		{Dataset: "dev", Algorithm: "prophet", Rate: 0.1, Runs: 2, Seed: 3},
		{Dataset: "infocom-3-6", Algorithm: "Epidemic", Rate: 0.05, Runs: 2, Seed: 2},
	}
	for _, req := range cases {
		name := fmt.Sprintf("%s_%s_s%d", req.Dataset, req.Algorithm, req.Seed)
		t.Run(name, func(t *testing.T) {
			body, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			status, served := post(t, ts.URL+"/simulate", string(body))
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, served)
			}

			// Direct library run: serial workers, fresh algorithm, no
			// precomputed oracle.
			want := directSimulate(t, reg, req)
			if !bytes.Equal(served, respBytes(t, want)) {
				t.Errorf("served response differs from direct library call\nserved: %s\ndirect: %s",
					served, respBytes(t, want))
			}

			_, again := post(t, ts.URL+"/simulate", string(body))
			if !bytes.Equal(served, again) {
				t.Error("repeat request returned different bytes")
			}
		})
	}
}

// directSimulate reproduces the /simulate computation with plain
// library calls (Workers: 1, no shared artifacts) and shapes the
// response exactly as the handler documents it.
func directSimulate(t *testing.T, reg *Registry, req SimulateRequest) *SimulateResponse {
	t.Helper()
	req.withDefaults()
	srv := New(Config{Registry: reg, Workers: 1, CacheSize: -1})
	req.Workers = 1
	resp, err := srv.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServedSimulateMatchesRawRuns recomputes a served /simulate
// response from first principles — plain dtnsim.Run calls (fresh
// oracle, serial, no sweep engine, no service artifacts) merged in run
// order — and compares the delivery statistics field by field. dtnsim's
// own golden-reference suite pins Run against the vendored pre-sweep
// simulator, so this closes the chain: served /simulate ≡ sweep engine
// ≡ raw Run ≡ the pre-refactor implementation.
func TestServedSimulateMatchesRawRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const runs = 3
	req := SimulateRequest{Dataset: "dev", Algorithm: "Greedy", CopyMode: "relay", Rate: 0.1, Runs: runs, Seed: 5}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	status, served := post(t, ts.URL+"/simulate", string(body))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, served)
	}
	var got SimulateResponse
	if err := json.Unmarshal(served, &got); err != nil {
		t.Fatal(err)
	}

	tr := tracegen.Dev(1)
	all := make([]*dtnsim.Result, runs)
	for i := range all {
		msgs := dtnsim.Workload(tr, req.Rate, tr.Horizon*2/3, engine.DeriveSeed(req.Seed, i))
		all[i], err = dtnsim.Run(dtnsim.Config{
			Trace: tr, Algorithm: forward.Greedy{}, Messages: msgs, CopyMode: dtnsim.Relay, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	merged := dtnsim.Merge(all...)
	if got.Messages != len(merged.Outcomes) || got.Transmissions != merged.Transmissions {
		t.Errorf("served messages/transmissions = %d/%d, raw %d/%d",
			got.Messages, got.Transmissions, len(merged.Outcomes), merged.Transmissions)
	}
	if got.SuccessRate == nil || *got.SuccessRate != merged.SuccessRate() {
		t.Errorf("served success rate %v, raw %v", got.SuccessRate, merged.SuccessRate())
	}
	delivered := 0
	for _, o := range merged.Outcomes {
		if o.Delivered {
			delivered++
		}
	}
	if got.Delivered != delivered {
		t.Errorf("served delivered = %d, raw %d", got.Delivered, delivered)
	}
	if delivered > 0 && (got.MeanDelay == nil || *got.MeanDelay != merged.MeanDelay()) {
		t.Errorf("served mean delay %v, raw %v", got.MeanDelay, merged.MeanDelay())
	}
}

// TestServedSimulateWorkerEquivalence: the same request served by a
// parallel server and a serial server yields identical bytes.
func TestServedSimulateWorkerEquivalence(t *testing.T) {
	_, parallel := newTestServer(t, Config{Workers: 4})
	_, serial := newTestServer(t, Config{Workers: 1})
	body := `{"dataset":"dev","algorithm":"Epidemic","rate":0.2,"runs":2,"seed":5}`
	_, a := post(t, parallel.URL+"/simulate", body)
	_, b := post(t, serial.URL+"/simulate", body)
	if !bytes.Equal(a, b) {
		t.Errorf("workers=4 and workers=1 servers differ:\n%s\n%s", a, b)
	}
}

func TestServedDatasetsAndFiguresLists(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	status, body := get(t, ts.URL+"/datasets")
	if status != http.StatusOK {
		t.Fatalf("/datasets: status %d", status)
	}
	if want := respBytes(t, DatasetsResponse{Datasets: s.Registry().List()}); !bytes.Equal(body, want) {
		t.Errorf("/datasets = %s, want %s", body, want)
	}

	status, body = get(t, ts.URL+"/figures")
	if status != http.StatusOK {
		t.Fatalf("/figures: status %d", status)
	}
	all := figures.All()
	want := FiguresResponse{Figures: make([]FigureInfo, len(all))}
	for i, f := range all {
		want.Figures[i] = FigureInfo{ID: f.ID, Title: f.Title}
	}
	if wantB := respBytes(t, want); !bytes.Equal(body, wantB) {
		t.Errorf("/figures = %s, want %s", body, wantB)
	}
}

// TestServedFigureDataEquivalence renders a cheap figure (F01 needs
// only the generated traces) over HTTP and directly.
func TestServedFigureDataEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("renders all four datasets")
	}
	_, ts := newTestServer(t, Config{})

	url := ts.URL + "/figures/F01/data?messages=2&k=40&runs=1&seed=3"
	status, served := get(t, url)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, served)
	}

	f, _ := figures.Lookup("F01")
	h := figures.NewHarness(figures.Params{Messages: 2, K: 40, SimRuns: 1, Seed: 3, Workers: 1})
	var buf bytes.Buffer
	if err := h.RenderOne(f, &buf); err != nil {
		t.Fatal(err)
	}
	want := respBytes(t, &FigureDataResponse{
		ID: f.ID, Title: f.Title,
		Params: FigureParamsJSON{Messages: 2, K: 40, SimRuns: 1, Seed: 3},
		Data:   buf.String(),
	})
	if !bytes.Equal(served, want) {
		t.Errorf("served figure data differs from direct render\nserved: %.300s\ndirect: %.300s", served, want)
	}

	_, again := get(t, url)
	if !bytes.Equal(served, again) {
		t.Error("repeat request returned different bytes")
	}
}

func TestServedHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	want := respBytes(t, HealthResponse{Status: "ok", Datasets: len(s.Registry().Names())})
	if !bytes.Equal(body, want) {
		t.Errorf("/healthz = %s, want %s", body, want)
	}
}

func TestServedErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, method, path, body string
		wantStatus               int
		wantMention              string
	}{
		{"unknown dataset", "POST", "/enumerate", `{"dataset":"nope","src":0,"dst":1}`, http.StatusNotFound, "available"},
		{"bad body", "POST", "/enumerate", `{"dataset":`, http.StatusBadRequest, "bad request body"},
		{"trailing value", "POST", "/enumerate", `{"dataset":"dev","src":0,"dst":1}{"junk":1}`, http.StatusBadRequest, "after JSON value"},
		{"trailing garbage", "POST", "/enumerate", `{"dataset":"dev","src":0,"dst":1} trailing`, http.StatusBadRequest, "after JSON value"},
		{"trailing on simulate", "POST", "/simulate", `{"dataset":"dev","algorithm":"Epidemic"}[]`, http.StatusBadRequest, "after JSON value"},
		{"unknown field", "POST", "/enumerate", `{"dataset":"dev","src":0,"dst":1,"bogus":1}`, http.StatusBadRequest, "bogus"},
		{"missing endpoints", "POST", "/enumerate", `{"dataset":"dev"}`, http.StatusBadRequest, "missing src/dst"},
		{"src only", "POST", "/enumerate", `{"dataset":"dev","src":3}`, http.StatusBadRequest, "both"},
		{"equal endpoints", "POST", "/enumerate", `{"dataset":"dev","src":3,"dst":3}`, http.StatusBadRequest, "source equals destination"},
		{"both forms", "POST", "/enumerate", `{"dataset":"dev","src":0,"dst":1,"messages":[{"src":0,"dst":1}]}`, http.StatusBadRequest, "mutually exclusive"},
		{"negative k", "POST", "/enumerate", `{"dataset":"dev","src":0,"dst":1,"k":-5}`, http.StatusBadRequest, "negative"},
		{"negative delta", "POST", "/enumerate", `{"dataset":"dev","src":0,"dst":1,"delta":-1}`, http.StatusBadRequest, "delta"},
		{"negative rate", "POST", "/simulate", `{"dataset":"dev","algorithm":"Epidemic","rate":-1}`, http.StatusBadRequest, "negative"},
		{"unknown algorithm", "POST", "/simulate", `{"dataset":"dev","algorithm":"teleport"}`, http.StatusBadRequest, "Epidemic"},
		{"unknown copy mode", "POST", "/simulate", `{"dataset":"dev","algorithm":"Epidemic","copyMode":"beam"}`, http.StatusBadRequest, "replicate or relay"},
		{"unknown figure", "GET", "/figures/F99/data", "", http.StatusNotFound, "unknown figure"},
		{"bad figure param", "GET", "/figures/F01/data?messages=x", "", http.StatusBadRequest, "messages"},
		{"wrong method", "GET", "/enumerate", "", http.StatusMethodNotAllowed, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var body []byte
			if tc.method == "POST" {
				status, body = post(t, ts.URL+tc.path, tc.body)
			} else {
				status, body = get(t, ts.URL+tc.path)
			}
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (%s)", status, tc.wantStatus, body)
			}
			if tc.wantMention == "" {
				return
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body not JSON: %s", body)
			}
			if !strings.Contains(eb.Error, tc.wantMention) {
				t.Errorf("error %q does not mention %q", eb.Error, tc.wantMention)
			}
		})
	}
}

// countingWriter must stay transparent to http.ResponseController:
// Unwrap routes the controller to the underlying writer's optional
// interfaces, which embedding alone hides behind the wrapper's static
// type. httptest.ResponseRecorder implements http.Flusher, so a Flush
// through the wrapper must reach it rather than fail ErrNotSupported.
func TestCountingWriterUnwrapFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	cw := &countingWriter{ResponseWriter: rec}
	if err := http.NewResponseController(cw).Flush(); err != nil {
		t.Fatalf("Flush through countingWriter: %v", err)
	}
	if !rec.Flushed {
		t.Error("flush did not reach the underlying ResponseRecorder")
	}
}

// TestServedRequestLimits pins the request-size guards: bodies beyond
// maxBodyBytes are rejected with 413 before being decoded, and batches
// beyond maxBatchMessages with 400 before being enumerated.
func TestServedRequestLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var big bytes.Buffer
	big.WriteString(`{"dataset":"dev","messages":[`)
	for big.Len() < maxBodyBytes+1024 {
		big.WriteString(`{"src":0,"dst":1},`)
	}
	big.WriteString(`{"src":0,"dst":1}]}`)
	status, body := post(t, ts.URL+"/enumerate", big.String())
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413 (%s)", status, body)
	}

	var batch bytes.Buffer
	batch.WriteString(`{"dataset":"dev","messages":[`)
	for i := 0; i <= maxBatchMessages; i++ {
		if i > 0 {
			batch.WriteByte(',')
		}
		batch.WriteString(`{"src":0,"dst":1}`)
	}
	batch.WriteString(`]}`)
	status, body = post(t, ts.URL+"/enumerate", batch.String())
	if status != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400 (%s)", status, body)
	}
	if !bytes.Contains(body, []byte("message limit")) {
		t.Errorf("oversized batch error does not mention the limit: %s", body)
	}
}

// TestServedBackpressure503 exercises the shed path end-to-end on a
// saturated server: with one in-flight slot held by a request stuck in
// a dataset build, the next experiment request is rejected immediately
// with 503 and a Retry-After hint, the rejection is counted, the probe
// endpoints still answer, and the stuck request completes normally once
// the build unblocks.
func TestServedBackpressure503(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	reg := NewRegistry()
	if err := reg.Register("slow", KindSynthetic, func() (*trace.Trace, error) {
		close(entered)
		<-release
		return tracegen.Dev(1), nil
	}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Registry: reg, MaxInflight: 1})

	const body = `{"dataset":"slow","src":0,"dst":17,"start":0,"k":5}`
	type result struct {
		status int
		body   []byte
		err    error
	}
	first := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/enumerate", "application/json", strings.NewReader(body))
		if err != nil {
			first <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		first <- result{resp.StatusCode, b, err}
	}()
	// Only proceed once the single slot is provably held: the first
	// request is inside the blocked dataset build.
	<-entered

	resp, err := http.Post(ts.URL+"/enumerate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	shedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request: status %d, want 503 (%s)", resp.StatusCode, shedBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 503 is missing the Retry-After header")
	}
	if !bytes.Contains(shedBody, []byte("capacity")) {
		t.Errorf("shed 503 body does not mention capacity: %s", shedBody)
	}

	// Probes bypass the semaphore and must answer while saturated.
	if status, b := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Errorf("/healthz while saturated: status %d (%s)", status, b)
	}
	status, metricsBody := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics while saturated: status %d", status)
	}
	for _, want := range []string{
		"psn_rejected_total 1",
		"psn_inflight_requests 1",
		`psn_responses_total{code="503"} 1`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metricsBody)
		}
	}

	close(release)
	r := <-first
	if r.err != nil {
		t.Fatalf("blocked request failed: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("blocked request: status %d after release, want 200 (%s)", r.status, r.body)
	}
	var out EnumerateResponse
	if err := json.Unmarshal(r.body, &out); err != nil {
		t.Fatalf("released response is not valid JSON: %v\n%s", err, r.body)
	}
}

// TestServedConcurrentStress hammers one server from many goroutines
// with a mix of cache-hitting and distinct requests; every response
// must equal the precomputed expected bytes. Run under -race this also
// exercises the artifact singleflight, the LRU, and the shared
// enumerators.
func TestServedConcurrentStress(t *testing.T) {
	// MaxInflight is raised above the goroutine count: the default cap
	// (4×GOMAXPROCS) can legitimately shed on small CI machines, and
	// this test measures response equality under concurrency, not
	// backpressure (TestBackpressure covers that).
	_, ts := newTestServer(t, Config{Workers: 2, CacheSize: 4, MaxInflight: 16})

	type reqCase struct {
		path, body string
		want       []byte
	}
	var cases []reqCase
	for seed := 1; seed <= 2; seed++ {
		body := fmt.Sprintf(`{"dataset":"dev","algorithm":"Epidemic","rate":0.1,"runs":1,"seed":%d}`, seed)
		status, want := post(t, ts.URL+"/simulate", body)
		if status != http.StatusOK {
			t.Fatalf("simulate seed %d: %d %s", seed, status, want)
		}
		cases = append(cases, reqCase{"/simulate", body, want})
	}
	for _, msg := range []string{
		`{"dataset":"dev","src":0,"dst":17,"start":0,"k":30}`,
		`{"dataset":"dev","src":4,"dst":11,"start":200,"k":30}`,
		`{"dataset":"dev","src":9,"dst":1,"start":500,"k":25,"tableWidth":5}`,
	} {
		status, want := post(t, ts.URL+"/enumerate", msg)
		if status != http.StatusOK {
			t.Fatalf("enumerate: %d %s", status, want)
		}
		cases = append(cases, reqCase{"/enumerate", msg, want})
	}

	const goroutines = 8
	const rounds = 6
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				c := cases[(g+r)%len(cases)]
				resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
				if err != nil {
					t.Error(err)
					return
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d round %d: status %d", g, r, resp.StatusCode)
					return
				}
				if !bytes.Equal(got, c.want) {
					t.Errorf("goroutine %d round %d: response differs under concurrency", g, r)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBackpressure verifies the bounded in-flight semaphore: with
// MaxInflight 1 and one request parked inside a handler, the next is
// shed with 503 and a Retry-After hint, and the probe endpoints stay
// available.
func TestBackpressure(t *testing.T) {
	s := New(Config{MaxInflight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var enterOnce sync.Once
	blocked := s.limited("test", func(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
		enterOnce.Do(func() { close(entered) })
		<-release
		w.WriteHeader(http.StatusOK)
	})

	first := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		blocked(first, httptest.NewRequest("POST", "/test", nil))
	}()
	<-entered

	second := httptest.NewRecorder()
	blocked(second, httptest.NewRequest("POST", "/test", nil))
	if second.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request: status %d, want 503", second.Code)
	}
	if second.Result().Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	if n := s.metrics.rejected.Load(); n != 1 {
		t.Errorf("rejected counter = %d, want 1", n)
	}

	// Probes bypass the semaphore.
	probe := httptest.NewRecorder()
	s.ServeHTTP(probe, httptest.NewRequest("GET", "/healthz", nil))
	if probe.Code != http.StatusOK {
		t.Errorf("/healthz under saturation: status %d", probe.Code)
	}

	close(release)
	<-done
	if first.Code != http.StatusOK {
		t.Errorf("first request: status %d", first.Code)
	}

	// The slot is free again (release stays closed, so the handler
	// passes straight through).
	third := httptest.NewRecorder()
	blocked(third, httptest.NewRequest("POST", "/test", nil))
	if third.Code != http.StatusOK {
		t.Errorf("third request after release: status %d", third.Code)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get(t, ts.URL+"/healthz")
	post(t, ts.URL+"/enumerate", `{"dataset":"dev","src":0,"dst":17,"k":20}`)
	post(t, ts.URL+"/enumerate", `{"dataset":"dev","src":0,"dst":17,"k":20}`) // cache hit

	status, body := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	text := string(body)
	for _, want := range []string{
		`psn_requests_total{endpoint="healthz"} 1`,
		`psn_requests_total{endpoint="enumerate"} 2`,
		`psn_responses_total{code="200"}`,
		"psn_inflight_requests 0",
		"psn_result_cache_hits_total 1",
		"psn_result_cache_misses_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestEnumeratorGraphSharing pins the artifact-cache contract: two
// enumerators differing only in budget share one graph index.
func TestEnumeratorGraphSharing(t *testing.T) {
	s := New(Config{})
	a, err := s.art.enumerator("dev", pathenum.Options{K: 10}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.art.enumerator("dev", pathenum.Options{K: 99}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different budgets returned the same enumerator")
	}
	if a.Graph() != b.Graph() {
		t.Error("enumerators with different budgets do not share the graph index")
	}
	c, err := s.art.enumerator("dev", pathenum.Options{K: 10}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Error("same budget did not return the cached enumerator")
	}
}
