package service

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/dtnsim"
	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/forward"
	"repro/internal/obs"
	"repro/internal/pathenum"
	"repro/internal/stgraph"
	"repro/internal/trace"
)

// --- GET /healthz ---

// ArtifactsStatus reports the on-disk artifact store's state inside
// /healthz, so a load generator or orchestrator can tell a warm replica
// (artifacts on disk, sub-second first request) from a cold one (first
// request pays seconds of live builds) before sending traffic.
type ArtifactsStatus struct {
	Dir string `json:"dir"`

	// Warm lists the registered datasets with both a space-time graph
	// (at the default delta) and an oracle table present on disk.
	Warm []string `json:"warm"`

	// Load/build counters since process start, mirroring /metrics:
	// loads are store hits, builds are live fallbacks.
	GraphLoads   int64 `json:"graphLoads"`
	GraphBuilds  int64 `json:"graphBuilds"`
	OracleLoads  int64 `json:"oracleLoads"`
	OracleBuilds int64 `json:"oracleBuilds"`

	// Quarantined lists artifact files found corrupt and renamed aside
	// (now carrying a .quarantined suffix); each cost one live rebuild
	// and deserves operator attention, but never wrong answers.
	Quarantined []string `json:"quarantined,omitempty"`
}

// HealthResponse is the /healthz body. Artifacts is present only when
// the server was configured with an artifact store. Status is "ok"
// normally, "degraded" while any dataset is in a build-failure backoff
// window (still HTTP 200 — cached artifacts keep serving), and
// "draining" during shutdown (HTTP 503, so load balancers stop
// routing here while in-flight requests finish).
type HealthResponse struct {
	Status    string           `json:"status"`
	Datasets  int              `json:"datasets"`
	Degraded  []string         `json:"degraded,omitempty"`
	Artifacts *ArtifactsStatus `json:"artifacts,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	resp := HealthResponse{Status: "ok", Datasets: len(s.cfg.Registry.Names())}
	if deg := s.art.deg.degraded(); len(deg) > 0 {
		resp.Status = "degraded"
		resp.Degraded = deg
	}
	if s.art.store != nil {
		as := &ArtifactsStatus{
			Dir:          s.art.store.Dir,
			Warm:         []string{},
			GraphLoads:   s.art.graphLoads.Load(),
			GraphBuilds:  s.art.graphBuilds.Load(),
			OracleLoads:  s.art.oracleLoads.Load(),
			OracleBuilds: s.art.oracleBuilds.Load(),
			Quarantined:  s.art.quarantinedPaths(),
		}
		for _, name := range s.cfg.Registry.Names() {
			if s.art.store.HasGraph(name, stgraph.DefaultDelta) && s.art.store.HasOracle(name) {
				as.Warm = append(as.Warm, name)
			}
		}
		resp.Artifacts = as
	}
	if s.draining.Load() {
		resp.Status = "draining"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, resp)
}

// --- GET /metrics ---

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s.results, s.art)
}

// --- GET /datasets ---

// DatasetsResponse is the /datasets body.
type DatasetsResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	writeJSON(w, DatasetsResponse{Datasets: s.cfg.Registry.List()})
}

// --- POST /enumerate ---

// MessageJSON is one (src, dst, start) forwarding problem.
type MessageJSON struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Start float64 `json:"start"`
}

// EnumerateRequest asks for the valid-path enumeration of one message
// (Src/Dst/Start) or a batch (Messages). Zero-valued options take the
// paper defaults (Δ = 10 s, K = 2000).
type EnumerateRequest struct {
	Dataset string `json:"dataset"`

	// Single-message form.
	Src   *int     `json:"src,omitempty"`
	Dst   *int     `json:"dst,omitempty"`
	Start *float64 `json:"start,omitempty"`

	// Batch form (mutually exclusive with Src/Dst/Start).
	Messages []MessageJSON `json:"messages,omitempty"`

	Delta       float64 `json:"delta,omitempty"`
	K           int     `json:"k,omitempty"`
	TableWidth  int     `json:"tableWidth,omitempty"`
	MaxArrivals int     `json:"maxArrivals,omitempty"`
	// Workers caps the engine goroutines for batch enumeration; zero
	// means the server's default. Results are byte-identical for every
	// value.
	Workers int `json:"workers,omitempty"`
}

// PathJSON is one valid space-time path: the node sequence from source
// to destination and the step at which each node was reached.
type PathJSON struct {
	Nodes []int `json:"nodes"`
	Steps []int `json:"steps"`
}

// EnumerateResult is the explosion summary and arrival set of one
// message.
type EnumerateResult struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Start float64 `json:"start"`

	Found    bool     `json:"found"`
	T1       *float64 `json:"t1,omitempty"` // optimal path duration (when Found)
	Exploded bool     `json:"exploded"`
	TE       *float64 `json:"te,omitempty"` // time to explosion (when Exploded)

	Paths     int        `json:"paths"` // total delivered paths observed
	Exhausted bool       `json:"exhausted"`
	Arrivals  []PathJSON `json:"arrivals"`
}

// EnumerateResponse is the /enumerate body: one result per requested
// message, in request order.
type EnumerateResponse struct {
	Dataset string            `json:"dataset"`
	Delta   float64           `json:"delta"`
	K       int               `json:"k"`
	Results []EnumerateResult `json:"results"`
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	var req EnumerateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	ri.dataset = req.Dataset
	msgs, err := enumerateMessages(req)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	opt, err := pathenum.Options{
		Delta:       req.Delta,
		K:           req.K,
		TableWidth:  req.TableWidth,
		MaxArrivals: req.MaxArrivals,
		Workers:     s.workers(req.Workers),
	}.Normalized()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := enumerateKey(req.Dataset, msgs, opt)
	data, err := s.results.Get(&ri.cancel, key, func() ([]byte, error) {
		resp, err := s.enumerate(req.Dataset, msgs, opt, &ri.obs, &ri.cancel)
		if err != nil {
			return nil, err
		}
		return marshalResponse(resp)
	})
	if err != nil {
		s.writeHandlerError(w, ri, err)
		return
	}
	writeRaw(w, data)
}

// maxBatchMessages caps one /enumerate batch: enough for any figure-
// scale workload, small enough that a single request cannot occupy
// the engine pool indefinitely (larger studies split into batches).
const maxBatchMessages = 4096

// enumerateMessages resolves the single/batch request forms.
func enumerateMessages(req EnumerateRequest) ([]pathenum.Message, error) {
	single := req.Src != nil || req.Dst != nil || req.Start != nil
	switch {
	case single && len(req.Messages) > 0:
		return nil, badRequest("src/dst/start and messages are mutually exclusive")
	case len(req.Messages) > maxBatchMessages:
		return nil, badRequest("batch of %d messages exceeds the %d-message limit", len(req.Messages), maxBatchMessages)
	case single:
		if req.Src == nil || req.Dst == nil {
			return nil, badRequest("src and dst must both be set")
		}
		start := 0.0
		if req.Start != nil {
			start = *req.Start
		}
		return []pathenum.Message{{Src: trace.NodeID(*req.Src), Dst: trace.NodeID(*req.Dst), Start: start}}, nil
	case len(req.Messages) > 0:
		msgs := make([]pathenum.Message, len(req.Messages))
		for i, m := range req.Messages {
			msgs[i] = pathenum.Message{Src: trace.NodeID(m.Src), Dst: trace.NodeID(m.Dst), Start: m.Start}
		}
		return msgs, nil
	default:
		return nil, badRequest("missing src/dst (or messages)")
	}
}

// enumerateKey canonicalizes an enumeration request for the result
// cache. opt must already be normalized (Options.Normalized), so
// requests spelling the same work differently share one entry without
// this function re-deriving the library defaults. Workers is excluded
// — results are byte-identical for every worker count.
func enumerateKey(dataset string, msgs []pathenum.Message, opt pathenum.Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "enumerate|%s|d=%g|k=%d|tw=%d|ma=%d", dataset, opt.Delta, opt.K, opt.TableWidth, opt.MaxArrivals)
	for _, m := range msgs {
		fmt.Fprintf(&b, "|%d,%d,%g", m.Src, m.Dst, m.Start)
	}
	return b.String()
}

// Enumerate runs the library path enumeration for msgs on a registered
// dataset and shapes the response. It is the exact computation behind
// POST /enumerate, exported so clients and the served-equivalence
// suite can compare byte-for-byte.
func (s *Server) Enumerate(dataset string, msgs []pathenum.Message, opt pathenum.Options) (*EnumerateResponse, error) {
	return s.enumerate(dataset, msgs, opt, nil, nil)
}

// enumerate is Enumerate with stage spans recorded into ot and the
// request's cancellation token threaded through the artifact pipeline
// and the enumeration dynamic program (both nil-safe).
func (s *Server) enumerate(dataset string, msgs []pathenum.Message, opt pathenum.Options, ot *obs.Trace, cc *engine.Cancel) (*EnumerateResponse, error) {
	opt, err := opt.Normalized()
	if err != nil {
		return nil, &badRequestError{err: err}
	}
	enum, err := s.art.enumerator(dataset, opt, ot, cc)
	if err != nil {
		return nil, err
	}
	if err := s.art.faults.FireCancel("enumerate", cc); err != nil {
		return nil, err
	}
	results, err := enum.EnumerateAllCancel(msgs, ot, cc)
	if err != nil {
		if engine.IsCanceled(err) {
			return nil, err
		}
		return nil, &badRequestError{err: err}
	}
	resp := &EnumerateResponse{
		Dataset: dataset,
		Delta:   enum.Graph().Delta,
		K:       opt.K,
		Results: make([]EnumerateResult, len(results)),
	}
	for i, res := range results {
		resp.Results[i] = enumerateResult(res, opt.K)
	}
	return resp, nil
}

func enumerateResult(res *pathenum.Result, k int) EnumerateResult {
	sum := res.ExplosionSummary(k)
	out := EnumerateResult{
		Src:       int(res.Msg.Src),
		Dst:       int(res.Msg.Dst),
		Start:     res.Msg.Start,
		Found:     sum.Found,
		Exploded:  sum.Exploded,
		Paths:     sum.Paths,
		Exhausted: res.Exhausted,
		Arrivals:  make([]PathJSON, len(res.Arrivals)),
	}
	if sum.Found {
		t1 := sum.T1
		out.T1 = &t1
	}
	if sum.Exploded {
		te := sum.TE
		out.TE = &te
	}
	for i, p := range res.Arrivals {
		nodes := p.Nodes()
		steps := p.Steps()
		pj := PathJSON{Nodes: make([]int, len(nodes)), Steps: steps}
		for j, n := range nodes {
			pj.Nodes[j] = int(n)
		}
		out.Arrivals[i] = pj
	}
	return out
}

// --- POST /simulate ---

// SimulateRequest asks for a multi-run forwarding simulation: Runs
// independent Poisson workloads (seeds split from Seed per run index)
// under one algorithm and copy mode, merged as the paper does.
type SimulateRequest struct {
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`          // e.g. "Epidemic", "greedy-total"
	CopyMode  string `json:"copyMode,omitempty"` // "replicate" (default) or "relay"

	Rate        float64 `json:"rate,omitempty"`        // messages/s; default 0.25
	GenFraction float64 `json:"genFraction,omitempty"` // workload window fraction; default 2/3
	Runs        int     `json:"runs,omitempty"`        // default 1
	Seed        int64   `json:"seed,omitempty"`        // default 1
	Workers     int     `json:"workers,omitempty"`     // 0 = server default
}

// SimulateResponse is the /simulate body: the paper's delivery
// statistics merged over all runs. SuccessRate is omitted when no
// messages were generated and MeanDelay when nothing was delivered
// (both would be NaN).
type SimulateResponse struct {
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	CopyMode  string `json:"copyMode"`

	Rate        float64 `json:"rate"`
	GenFraction float64 `json:"genFraction"`
	Runs        int     `json:"runs"`
	Seed        int64   `json:"seed"`

	Messages      int      `json:"messages"`
	Delivered     int      `json:"delivered"`
	SuccessRate   *float64 `json:"successRate,omitempty"`
	MeanDelay     *float64 `json:"meanDelay,omitempty"`
	Transmissions int      `json:"transmissions"`
	TxPerMessage  *float64 `json:"txPerMessage,omitempty"`
}

func (req *SimulateRequest) withDefaults() {
	if req.CopyMode == "" {
		req.CopyMode = "replicate"
	}
	if req.Rate == 0 {
		req.Rate = 0.25
	}
	if req.GenFraction == 0 {
		req.GenFraction = 2.0 / 3.0
	}
	if req.Runs == 0 {
		req.Runs = 1
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	var req SimulateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	ri.dataset = req.Dataset
	req.withDefaults()
	req.Workers = s.workers(req.Workers)
	key := simulateKey(req)
	data, err := s.results.Get(&ri.cancel, key, func() ([]byte, error) {
		resp, err := s.simulate(req, &ri.obs, &ri.cancel)
		if err != nil {
			return nil, err
		}
		return marshalResponse(resp)
	})
	if err != nil {
		s.writeHandlerError(w, ri, err)
		return
	}
	writeRaw(w, data)
}

// simulateKey canonicalizes a simulation request (defaults already
// applied). Workers is excluded: results are byte-identical for every
// worker count.
func simulateKey(req SimulateRequest) string {
	alg, ok := AlgorithmByName(req.Algorithm)
	name := req.Algorithm
	if ok {
		name = alg.Name()
	}
	return fmt.Sprintf("simulate|%s|%s|%s|r=%g|g=%g|n=%d|s=%d",
		req.Dataset, name, req.CopyMode, req.Rate, req.GenFraction, req.Runs, req.Seed)
}

// Simulate runs the library forwarding simulation behind POST
// /simulate: Runs workloads with per-run seeds split from Seed, merged
// in run order. Exported for clients and the served-equivalence suite.
func (s *Server) Simulate(req SimulateRequest) (*SimulateResponse, error) {
	return s.simulate(req, nil, nil)
}

// simulate is Simulate with stage spans recorded into ot and the
// request's cancellation token threaded through the oracle pipeline
// and each run's event replay (both nil-safe).
func (s *Server) simulate(req SimulateRequest, ot *obs.Trace, cc *engine.Cancel) (*SimulateResponse, error) {
	req.withDefaults()
	alg, ok := AlgorithmByName(req.Algorithm)
	if !ok {
		return nil, badRequest("unknown algorithm %q (available: %s)",
			req.Algorithm, strings.Join(AlgorithmNames(), ", "))
	}
	var mode dtnsim.CopyMode
	switch req.CopyMode {
	case "replicate":
		mode = dtnsim.Replicate
	case "relay":
		mode = dtnsim.Relay
	default:
		return nil, badRequest("unknown copy mode %q (replicate or relay)", req.CopyMode)
	}
	if req.Rate < 0 || req.GenFraction < 0 || req.GenFraction > 1 || req.Runs < 0 {
		return nil, badRequest("negative rate/runs or genFraction outside [0,1]")
	}
	sweep, tr, err := s.art.sweep(req.Dataset, ot, cc)
	if err != nil {
		return nil, err
	}
	if err := s.art.faults.FireCancel("simulate", cc); err != nil {
		return nil, err
	}
	runs := make([]*dtnsim.Result, req.Runs)
	for i := range runs {
		msgs := dtnsim.Workload(tr, req.Rate, tr.Horizon*req.GenFraction, engine.DeriveSeed(req.Seed, i))
		res, err := sweep.RunObs(dtnsim.Config{
			Algorithm: alg,
			Messages:  msgs,
			CopyMode:  mode,
			Workers:   req.Workers,
			Cancel:    cc,
		}, ot)
		if err != nil {
			if engine.IsCanceled(err) {
				return nil, err
			}
			return nil, fmt.Errorf("simulate %s/%s: %w", req.Dataset, alg.Name(), err)
		}
		runs[i] = res
	}
	merged := dtnsim.Merge(runs...)
	resp := &SimulateResponse{
		Dataset:     req.Dataset,
		Algorithm:   alg.Name(),
		CopyMode:    mode.String(),
		Rate:        req.Rate,
		GenFraction: req.GenFraction,
		Runs:        req.Runs,
		Seed:        req.Seed,
		Messages:    len(merged.Outcomes),
		Delivered:   countDelivered(merged),
	}
	resp.Transmissions = merged.Transmissions
	if resp.Messages > 0 {
		sr := merged.SuccessRate()
		resp.SuccessRate = &sr
		tx := float64(merged.Transmissions) / float64(resp.Messages)
		resp.TxPerMessage = &tx
	}
	if resp.Delivered > 0 {
		md := merged.MeanDelay()
		resp.MeanDelay = &md
	}
	return resp, nil
}

func countDelivered(r *dtnsim.Result) int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Delivered {
			n++
		}
	}
	return n
}

// AlgorithmNames lists the servable forwarding algorithms (the
// extended set) in presentation order.
func AlgorithmNames() []string {
	set := forward.ExtendedSet()
	out := make([]string, len(set))
	for i, a := range set {
		out[i] = a.Name()
	}
	return out
}

// AlgorithmByName resolves a forwarding algorithm case-insensitively,
// accepting hyphens for spaces ("greedy-total"). It returns a fresh
// instance on every call: stateful algorithms (PRoPHET) must never be
// shared across concurrent simulations.
func AlgorithmByName(name string) (forward.Algorithm, bool) {
	want := strings.ToLower(strings.ReplaceAll(name, "-", " "))
	for _, a := range forward.ExtendedSet() {
		if strings.ToLower(a.Name()) == want {
			return a, true
		}
	}
	return nil, false
}

// --- GET /figures, GET /figures/{id}/data ---

// FigureInfo describes one renderable figure.
type FigureInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// FiguresResponse is the /figures body.
type FiguresResponse struct {
	Figures []FigureInfo `json:"figures"`
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	all := figures.All()
	resp := FiguresResponse{Figures: make([]FigureInfo, len(all))}
	for i, f := range all {
		resp.Figures[i] = FigureInfo{ID: f.ID, Title: f.Title}
	}
	writeJSON(w, resp)
}

// FigureParamsJSON is the harness scale reachable over HTTP (query
// parameters messages, k, runs, seed). Zero values mean the harness's
// paper-scale defaults.
type FigureParamsJSON struct {
	Messages int   `json:"messages"`
	K        int   `json:"k"`
	SimRuns  int   `json:"simRuns"`
	Seed     int64 `json:"seed"`
}

// FigureDataResponse is the /figures/{id}/data body: the figure's
// rendered rows/series as text, exactly as psn-figures prints them.
type FigureDataResponse struct {
	ID     string           `json:"id"`
	Title  string           `json:"title"`
	Params FigureParamsJSON `json:"params"`
	Data   string           `json:"data"`
}

func (s *Server) handleFigureData(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	id := r.PathValue("id")
	f, ok := figures.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown figure %q", id))
		return
	}
	var p FigureParamsJSON
	var err error
	if p.Messages, err = queryInt(r, "messages"); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if p.K, err = queryInt(r, "k"); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if p.SimRuns, err = queryInt(r, "runs"); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	seed, err := queryInt(r, "seed")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p.Seed = int64(seed)

	key := fmt.Sprintf("figure|%s|m=%d|k=%d|r=%d|s=%d", f.ID, p.Messages, p.K, p.SimRuns, p.Seed)
	data, err := s.results.Get(&ri.cancel, key, func() ([]byte, error) {
		resp, err := s.figureData(f.ID, p, &ri.cancel)
		if err != nil {
			return nil, err
		}
		return marshalResponse(resp)
	})
	if err != nil {
		s.writeHandlerError(w, ri, err)
		return
	}
	writeRaw(w, data)
}

// FigureData renders one figure at the given scale — the computation
// behind GET /figures/{id}/data. Harnesses are cached per parameter
// set, so figures sharing parameters share studies and simulation
// sweeps.
func (s *Server) FigureData(id string, p FigureParamsJSON) (*FigureDataResponse, error) {
	return s.figureData(id, p, nil)
}

// figureData is FigureData with the request's cancellation token
// honored while joining another request's in-flight harness build.
// The figure harness itself memoizes whole studies and runs them to
// completion — its results are shared across every figure and request
// for the parameter set, so one request's deadline must not abandon
// them — which makes the token a wait-side courtesy here rather than
// a compute-side one.
func (s *Server) figureData(id string, p FigureParamsJSON, cc *engine.Cancel) (*FigureDataResponse, error) {
	f, ok := figures.Lookup(id)
	if !ok {
		return nil, badRequest("unknown figure %q", id)
	}
	if p.Messages < 0 || p.K < 0 || p.SimRuns < 0 {
		return nil, badRequest("negative figure parameters")
	}
	h := s.art.harness(figures.Params{
		Messages: p.Messages,
		K:        p.K,
		SimRuns:  p.SimRuns,
		Seed:     p.Seed,
		Workers:  s.cfg.Workers,
	}, cc)
	var buf bytes.Buffer
	if err := h.RenderOne(f, &buf); err != nil {
		return nil, err
	}
	return &FigureDataResponse{ID: f.ID, Title: f.Title, Params: p, Data: buf.String()}, nil
}

// workers resolves a request-level workers override against the
// server default.
func (s *Server) workers(reqWorkers int) int {
	if reqWorkers != 0 {
		return reqWorkers
	}
	return s.cfg.Workers
}

func queryInt(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("bad query parameter %s=%q", name, v)
	}
	return n, nil
}
