package service

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// metrics holds the server's operational state exposed in Prometheus
// text format on /metrics: monotonic counters (requests, status codes,
// shed, cache, artifacts), an in-flight gauge, per-endpoint request
// latency histograms, per-stage span histograms, and runtime gauges.
// Histograms are lock-free (see internal/obs); recording a request
// costs a handful of atomic adds and no allocation.
type metrics struct {
	inflight atomic.Int64
	rejected atomic.Int64 // requests shed by the in-flight limit
	panics   atomic.Int64 // handler panics contained by the recovery middleware

	// Requests abandoned at a cooperative cancellation checkpoint, by
	// reason (indexed by the reason* constants). Sheds of waiters whose
	// singleflight leader was canceled count as neither — their own
	// token never fired.
	cancelledBy [numCancelReasons]atomic.Int64

	mu       sync.Mutex
	requests map[string]*int64 // per-endpoint request counter
	statuses map[int]*int64    // per-status-code response counter

	// latency[endpoint] is the endpoint's request-duration histogram.
	// The map is fully populated while the mux is wired (before any
	// request) and read-only afterwards, so lookups are lock-free.
	latency map[string]*obs.Histogram

	// stages[s] aggregates obs.Stage s across all requests: each
	// request's accumulated stage time is folded in once at completion,
	// so the histogram's count is "requests that exercised this stage"
	// and its distribution is per-request stage cost.
	stages [obs.NumStages]*obs.Histogram
}

// Cancellation reasons for psn_cancelled_total.
const (
	reasonDeadline = iota // the request's deadline passed
	reasonClient          // the client disconnected first
	numCancelReasons
)

var cancelReasonNames = [numCancelReasons]string{"deadline", "client"}

// cancelled counts one abandoned request under its reason label.
func (m *metrics) cancelled(reason int) {
	m.cancelledBy[reason].Add(1)
}

func newMetrics() *metrics {
	m := &metrics{
		requests: make(map[string]*int64),
		statuses: make(map[int]*int64),
		latency:  make(map[string]*obs.Histogram),
	}
	for i := range m.stages {
		m.stages[i] = &obs.Histogram{}
	}
	return m
}

// histFor returns (creating on first use) the latency histogram of an
// endpoint. Only called during mux wiring — single-goroutine — so the
// map needs no lock; requests hit the prebuilt histograms directly.
func (m *metrics) histFor(endpoint string) *obs.Histogram {
	h, ok := m.latency[endpoint]
	if !ok {
		h = &obs.Histogram{}
		m.latency[endpoint] = h
	}
	return h
}

// recordStages folds one finished request's per-stage span times into
// the global stage histograms.
func (m *metrics) recordStages(t *obs.Trace) {
	for i := range m.stages {
		if ns := t.StageNs(obs.Stage(i)); ns > 0 {
			m.stages[i].RecordNs(ns)
		}
	}
}

func (m *metrics) countRequest(endpoint string) {
	m.mu.Lock()
	c, ok := m.requests[endpoint]
	if !ok {
		c = new(int64)
		m.requests[endpoint] = c
	}
	m.mu.Unlock()
	atomic.AddInt64(c, 1)
}

func (m *metrics) countStatus(code int) {
	m.mu.Lock()
	c, ok := m.statuses[code]
	if !ok {
		c = new(int64)
		m.statuses[code] = c
	}
	m.mu.Unlock()
	atomic.AddInt64(c, 1)
}

// write emits the Prometheus text exposition. cache supplies the
// result-cache counters, art the artifact load/build counters.
func (m *metrics) write(w io.Writer, cache *lruCache, art *artifacts) {
	fmt.Fprintf(w, "# HELP psn_requests_total Requests received, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE psn_requests_total counter\n")
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.requests))
	for e := range m.requests {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		fmt.Fprintf(w, "psn_requests_total{endpoint=%q} %d\n", e, atomic.LoadInt64(m.requests[e]))
	}
	codes := make([]int, 0, len(m.statuses))
	for c := range m.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP psn_responses_total Responses sent, by HTTP status code.\n")
	fmt.Fprintf(w, "# TYPE psn_responses_total counter\n")
	for _, c := range codes {
		m.mu.Lock()
		v := atomic.LoadInt64(m.statuses[c])
		m.mu.Unlock()
		fmt.Fprintf(w, "psn_responses_total{code=\"%d\"} %d\n", c, v)
	}

	fmt.Fprintf(w, "# HELP psn_inflight_requests Experiment requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE psn_inflight_requests gauge\n")
	fmt.Fprintf(w, "psn_inflight_requests %d\n", m.inflight.Load())

	fmt.Fprintf(w, "# HELP psn_rejected_total Requests shed by the in-flight limit.\n")
	fmt.Fprintf(w, "# TYPE psn_rejected_total counter\n")
	fmt.Fprintf(w, "psn_rejected_total %d\n", m.rejected.Load())

	fmt.Fprintf(w, "# HELP psn_panics_total Handler panics contained by the recovery middleware.\n")
	fmt.Fprintf(w, "# TYPE psn_panics_total counter\n")
	fmt.Fprintf(w, "psn_panics_total %d\n", m.panics.Load())

	fmt.Fprintf(w, "# HELP psn_cancelled_total Requests abandoned at a cancellation checkpoint, by reason.\n")
	fmt.Fprintf(w, "# TYPE psn_cancelled_total counter\n")
	for i, name := range cancelReasonNames {
		fmt.Fprintf(w, "psn_cancelled_total{reason=%q} %d\n", name, m.cancelledBy[i].Load())
	}

	hits, misses, entries := cache.Stats()
	fmt.Fprintf(w, "# HELP psn_result_cache_hits_total Result-cache hits.\n")
	fmt.Fprintf(w, "# TYPE psn_result_cache_hits_total counter\n")
	fmt.Fprintf(w, "psn_result_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP psn_result_cache_misses_total Result-cache misses.\n")
	fmt.Fprintf(w, "# TYPE psn_result_cache_misses_total counter\n")
	fmt.Fprintf(w, "psn_result_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP psn_result_cache_entries Result-cache resident entries.\n")
	fmt.Fprintf(w, "# TYPE psn_result_cache_entries gauge\n")
	fmt.Fprintf(w, "psn_result_cache_entries %d\n", entries)

	fmt.Fprintf(w, "# HELP psn_artifact_loads_total Artifacts loaded from the on-disk store, by kind.\n")
	fmt.Fprintf(w, "# TYPE psn_artifact_loads_total counter\n")
	fmt.Fprintf(w, "psn_artifact_loads_total{kind=\"graph\"} %d\n", art.graphLoads.Load())
	fmt.Fprintf(w, "psn_artifact_loads_total{kind=\"oracle\"} %d\n", art.oracleLoads.Load())

	fmt.Fprintf(w, "# HELP psn_artifact_builds_total Artifacts built live (store miss or no store), by kind.\n")
	fmt.Fprintf(w, "# TYPE psn_artifact_builds_total counter\n")
	fmt.Fprintf(w, "psn_artifact_builds_total{kind=\"graph\"} %d\n", art.graphBuilds.Load())
	fmt.Fprintf(w, "psn_artifact_builds_total{kind=\"oracle\"} %d\n", art.oracleBuilds.Load())

	fmt.Fprintf(w, "# HELP psn_artifact_quarantines_total Corrupt on-disk artifacts renamed aside.\n")
	fmt.Fprintf(w, "# TYPE psn_artifact_quarantines_total counter\n")
	fmt.Fprintf(w, "psn_artifact_quarantines_total %d\n", art.quarantines.Load())

	fmt.Fprintf(w, "# HELP psn_degraded_datasets Datasets currently in a build-failure backoff window.\n")
	fmt.Fprintf(w, "# TYPE psn_degraded_datasets gauge\n")
	fmt.Fprintf(w, "psn_degraded_datasets %d\n", len(art.deg.degraded()))

	// Request latency histograms, one labeled series set per endpoint
	// that has served at least one request (the exposition stays
	// proportional to actual traffic; all-zero histograms add nothing).
	fmt.Fprintf(w, "# HELP psn_request_duration_seconds Request latency by endpoint (wall time inside the handler wrapper).\n")
	fmt.Fprintf(w, "# TYPE psn_request_duration_seconds histogram\n")
	for _, e := range endpoints {
		h, ok := m.latency[e]
		if !ok {
			continue
		}
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		s.WritePrometheus(w, "psn_request_duration_seconds", fmt.Sprintf("endpoint=%q", e))
	}

	// Stage span histograms: per-request accumulated time in each
	// instrumented internal phase (see internal/obs stage docs).
	fmt.Fprintf(w, "# HELP psn_stage_duration_seconds Per-request time in instrumented internal stages.\n")
	fmt.Fprintf(w, "# TYPE psn_stage_duration_seconds histogram\n")
	names := obs.StageNames()
	for i := range m.stages {
		s := m.stages[i].Snapshot()
		if s.Count == 0 {
			continue
		}
		s.WritePrometheus(w, "psn_stage_duration_seconds", fmt.Sprintf("stage=%q", names[i]))
	}

	writeRuntimeGauges(w)
}

// writeRuntimeGauges emits process runtime gauges: goroutines, heap,
// cumulative GC pause time, GC cycles and GOMAXPROCS. ReadMemStats
// briefly stops the world, which is acceptable at metrics-scrape
// frequency and keeps the probe dependency-free.
func writeRuntimeGauges(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	fmt.Fprintf(w, "# HELP psn_goroutines Current goroutine count.\n")
	fmt.Fprintf(w, "# TYPE psn_goroutines gauge\n")
	fmt.Fprintf(w, "psn_goroutines %d\n", runtime.NumGoroutine())

	fmt.Fprintf(w, "# HELP psn_gomaxprocs GOMAXPROCS setting.\n")
	fmt.Fprintf(w, "# TYPE psn_gomaxprocs gauge\n")
	fmt.Fprintf(w, "psn_gomaxprocs %d\n", runtime.GOMAXPROCS(0))

	fmt.Fprintf(w, "# HELP psn_heap_alloc_bytes Bytes of allocated heap objects.\n")
	fmt.Fprintf(w, "# TYPE psn_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "psn_heap_alloc_bytes %d\n", ms.HeapAlloc)

	fmt.Fprintf(w, "# HELP psn_heap_sys_bytes Bytes of heap obtained from the OS.\n")
	fmt.Fprintf(w, "# TYPE psn_heap_sys_bytes gauge\n")
	fmt.Fprintf(w, "psn_heap_sys_bytes %d\n", ms.HeapSys)

	fmt.Fprintf(w, "# HELP psn_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	fmt.Fprintf(w, "# TYPE psn_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "psn_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)

	fmt.Fprintf(w, "# HELP psn_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE psn_gc_cycles_total counter\n")
	fmt.Fprintf(w, "psn_gc_cycles_total %d\n", ms.NumGC)
}
