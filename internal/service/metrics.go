package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// metrics holds the server's operational counters, exposed in
// Prometheus text format on /metrics. Counters are monotonic atomics;
// the in-flight gauge tracks the backpressure semaphore.
type metrics struct {
	inflight atomic.Int64
	rejected atomic.Int64 // requests shed by the in-flight limit

	mu       sync.Mutex
	requests map[string]*int64 // per-endpoint request counter
	statuses map[int]*int64    // per-status-code response counter
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]*int64),
		statuses: make(map[int]*int64),
	}
}

func (m *metrics) countRequest(endpoint string) {
	m.mu.Lock()
	c, ok := m.requests[endpoint]
	if !ok {
		c = new(int64)
		m.requests[endpoint] = c
	}
	m.mu.Unlock()
	atomic.AddInt64(c, 1)
}

func (m *metrics) countStatus(code int) {
	m.mu.Lock()
	c, ok := m.statuses[code]
	if !ok {
		c = new(int64)
		m.statuses[code] = c
	}
	m.mu.Unlock()
	atomic.AddInt64(c, 1)
}

// write emits the Prometheus text exposition. cache supplies the
// result-cache counters, art the artifact load/build counters.
func (m *metrics) write(w io.Writer, cache *lruCache, art *artifacts) {
	fmt.Fprintf(w, "# HELP psn_requests_total Requests received, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE psn_requests_total counter\n")
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.requests))
	for e := range m.requests {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		fmt.Fprintf(w, "psn_requests_total{endpoint=%q} %d\n", e, atomic.LoadInt64(m.requests[e]))
	}
	codes := make([]int, 0, len(m.statuses))
	for c := range m.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP psn_responses_total Responses sent, by HTTP status code.\n")
	fmt.Fprintf(w, "# TYPE psn_responses_total counter\n")
	for _, c := range codes {
		m.mu.Lock()
		v := atomic.LoadInt64(m.statuses[c])
		m.mu.Unlock()
		fmt.Fprintf(w, "psn_responses_total{code=\"%d\"} %d\n", c, v)
	}

	fmt.Fprintf(w, "# HELP psn_inflight_requests Experiment requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE psn_inflight_requests gauge\n")
	fmt.Fprintf(w, "psn_inflight_requests %d\n", m.inflight.Load())

	fmt.Fprintf(w, "# HELP psn_rejected_total Requests shed by the in-flight limit.\n")
	fmt.Fprintf(w, "# TYPE psn_rejected_total counter\n")
	fmt.Fprintf(w, "psn_rejected_total %d\n", m.rejected.Load())

	hits, misses, entries := cache.Stats()
	fmt.Fprintf(w, "# HELP psn_result_cache_hits_total Result-cache hits.\n")
	fmt.Fprintf(w, "# TYPE psn_result_cache_hits_total counter\n")
	fmt.Fprintf(w, "psn_result_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP psn_result_cache_misses_total Result-cache misses.\n")
	fmt.Fprintf(w, "# TYPE psn_result_cache_misses_total counter\n")
	fmt.Fprintf(w, "psn_result_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP psn_result_cache_entries Result-cache resident entries.\n")
	fmt.Fprintf(w, "# TYPE psn_result_cache_entries gauge\n")
	fmt.Fprintf(w, "psn_result_cache_entries %d\n", entries)

	fmt.Fprintf(w, "# HELP psn_artifact_loads_total Artifacts loaded from the on-disk store, by kind.\n")
	fmt.Fprintf(w, "# TYPE psn_artifact_loads_total counter\n")
	fmt.Fprintf(w, "psn_artifact_loads_total{kind=\"graph\"} %d\n", art.graphLoads.Load())
	fmt.Fprintf(w, "psn_artifact_loads_total{kind=\"oracle\"} %d\n", art.oracleLoads.Load())

	fmt.Fprintf(w, "# HELP psn_artifact_builds_total Artifacts built live (store miss or no store), by kind.\n")
	fmt.Fprintf(w, "# TYPE psn_artifact_builds_total counter\n")
	fmt.Fprintf(w, "psn_artifact_builds_total{kind=\"graph\"} %d\n", art.graphBuilds.Load())
	fmt.Fprintf(w, "psn_artifact_builds_total{kind=\"oracle\"} %d\n", art.oracleBuilds.Load())
}
