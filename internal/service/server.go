package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	mathrand "math/rand/v2"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artstore"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Config parametrizes a Server.
type Config struct {
	// Registry supplies the served datasets. Nil means NewRegistry()
	// (the built-in synthetic datasets).
	Registry *Registry

	// Workers is the default engine worker count for experiment
	// requests (a request may override it downward or upward; results
	// are byte-identical either way). Zero means runtime.GOMAXPROCS(0).
	Workers int

	// MaxInflight bounds the experiment requests executing
	// concurrently; excess requests are shed with 503 Service
	// Unavailable and a Retry-After hint, so load beyond the machine's
	// capacity degrades by fast rejection instead of queue collapse.
	// The bound feeds the internal/engine pool: at most MaxInflight
	// requests compete for its goroutines. Zero means
	// 4×GOMAXPROCS; negative means unlimited.
	MaxInflight int

	// CacheSize bounds the memoized-result LRU (marshaled response
	// bytes keyed by canonical request). Zero means 256 entries;
	// negative disables response caching.
	CacheSize int

	// ArtifactDir, when set, names an on-disk artifact store (see
	// internal/artstore and cmd/psn-warm): per-dataset space-time graphs
	// and oracle tables are loaded from it instead of built, with a live
	// build as fallback on any miss or mismatch. Empty disables the
	// store.
	ArtifactDir string

	// EnablePprof mounts net/http/pprof under GET /debug/pprof/. The
	// profiling endpoints bypass the in-flight limit — like the other
	// probe endpoints they must answer while the server is saturated,
	// which is exactly when a profile is wanted.
	EnablePprof bool

	// TraceSlow, when positive, emits one structured log line (request
	// ID, endpoint, dataset, status, total latency, per-stage breakdown)
	// for every request at least this slow. Zero disables slow-request
	// tracing.
	TraceSlow time.Duration

	// RequestTimeout bounds one experiment request's compute: the
	// request's cancellation token (also fed by the client connection)
	// fires at the deadline, the engine layers abandon at their next
	// checkpoint, and the client gets 503 with a Retry-After hint.
	// Probe endpoints are exempt. Zero means 30 s; negative disables
	// the deadline (client disconnects still cancel).
	RequestTimeout time.Duration

	// Faults, when non-nil, arms the fault-injection points along the
	// request path — artifact loads and builds, the enumerate/simulate
	// compute stages, the handler envelope (see internal/faultinject
	// and the psn-serve -inject flag). Nil, the production value, makes
	// every injection point one pointer check.
	Faults *faultinject.Injector

	// AccessLog emits one structured log line per request (method, path,
	// dataset, status, latency, request ID). Default off: the experiment
	// endpoints are hot enough that per-request logging is opt-in.
	AccessLog bool

	// Logger receives access-log and slow-trace lines. Nil means
	// slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = NewRegistry()
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Server serves the repository's experiments over HTTP. Create one
// with New, mount it via Handler, and run it under any http.Server
// (cmd/psn-serve adds flags and graceful shutdown).
type Server struct {
	cfg     Config
	art     *artifacts
	results *lruCache
	metrics *metrics
	sem     chan struct{} // in-flight experiment semaphore; nil = unlimited
	mux     *http.ServeMux

	// draining flips /healthz to 503 while the process shuts down, so
	// load balancers stop routing new traffic ahead of the listener
	// actually closing (see SetDraining and cmd/psn-serve).
	draining atomic.Bool

	// Request-ID scheme: a random per-instance tag in the high 32 bits,
	// a monotone counter in the low 32. IDs are unique per instance,
	// cheap (one atomic add), and the tag distinguishes replicas in
	// merged logs. reqPool recycles the per-request trace carrier so the
	// observability layer adds no steady-state allocation.
	idTag   uint64
	idSeq   atomic.Uint64
	reqPool sync.Pool
}

// reqInfo carries one request's observability and cancellation state:
// the stage-span trace (embedded by value so pooling recycles it
// wholesale), the cancellation token experiment handlers thread into
// the compute layers (also by value — no watcher goroutine, no timer,
// no allocation), the formatted request ID echoed in X-Psn-Request,
// and the dataset the handler resolved (for log lines; empty for
// non-dataset endpoints).
type reqInfo struct {
	obs     obs.Trace
	cancel  engine.Cancel
	idStr   string
	dataset string
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var store *artstore.Store
	if cfg.ArtifactDir != "" {
		store = &artstore.Store{Dir: cfg.ArtifactDir}
	}
	s := &Server{
		cfg:     cfg,
		art:     newArtifacts(cfg.Registry, store, cfg.Faults, cfg.Logger),
		results: newLRUCache(cfg.CacheSize),
		metrics: newMetrics(),
		idTag:   mathrand.Uint64() << 32,
	}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	s.mux = http.NewServeMux()
	// Probe endpoints bypass the experiment semaphore: they must stay
	// responsive when the server is saturated.
	s.mux.HandleFunc("GET /healthz", s.count("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.count("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /datasets", s.count("datasets", s.handleDatasets))
	s.mux.HandleFunc("GET /figures", s.count("figures", s.handleFigures))
	// Experiment endpoints run under the in-flight limit.
	s.mux.HandleFunc("POST /enumerate", s.limited("enumerate", s.handleEnumerate))
	s.mux.HandleFunc("POST /simulate", s.limited("simulate", s.handleSimulate))
	s.mux.HandleFunc("GET /figures/{id}/data", s.limited("figure_data", s.handleFigureData))
	if cfg.EnablePprof {
		// pprof rides outside count()/limited(): no accounting, no
		// shedding — a profile request must not perturb the metrics it
		// is there to explain.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Registry returns the server's dataset registry.
func (s *Server) Registry() *Registry { return s.cfg.Registry }

// count wraps a handler with panic isolation, request/response
// accounting and the observability envelope: a pooled reqInfo (stage
// trace + request ID, the ID echoed in X-Psn-Request before the
// handler runs), the endpoint's latency histogram (resolved once, at
// wiring time), stage folding into the global stage histograms, and
// the optional access-log and slow-trace log lines. A panicking
// handler is contained to its request: the panic is logged with the
// request ID and stack, counted in psn_panics_total, and answered 500
// (when nothing was written yet); accounting runs in the same deferred
// path, so panicked requests still land in every metric. The
// non-panicking envelope costs two small allocations per request (the
// ID string and the header value slice).
func (s *Server) count(endpoint string, h func(http.ResponseWriter, *http.Request, *reqInfo)) http.HandlerFunc {
	hist := s.metrics.histFor(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.countRequest(endpoint)
		ri := s.getReqInfo(r)
		w.Header().Set("X-Psn-Request", ri.idStr)
		cw := &countingWriter{ResponseWriter: w}
		t0 := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.panics.Add(1)
				s.cfg.Logger.LogAttrs(context.Background(), slog.LevelError, "panic in handler",
					slog.String("id", ri.idStr),
					slog.String("endpoint", endpoint),
					slog.String("dataset", ri.dataset),
					slog.Any("panic", rec),
					slog.String("stack", string(debug.Stack())),
				)
				if cw.code == 0 {
					writeError(cw, http.StatusInternalServerError,
						fmt.Errorf("internal error (request %s)", ri.idStr))
				}
			}
			d := time.Since(t0)
			status := cw.status()
			s.metrics.countStatus(status)
			hist.Record(d)
			s.metrics.recordStages(&ri.obs)
			s.logRequest(endpoint, r, ri, status, d)
			s.reqPool.Put(ri)
		}()
		h(cw, r, ri)
	}
}

// limited wraps an experiment handler with accounting and the bounded
// in-flight semaphore. When the semaphore is full the request is shed
// immediately with 503 — callers retry against a server that is
// already making progress on earlier requests. Admitted requests get
// their cancellation token armed (client connection + RequestTimeout)
// and pass through the "handler" fault-injection point.
func (s *Server) limited(endpoint string, h func(http.ResponseWriter, *http.Request, *reqInfo)) http.HandlerFunc {
	return s.count(endpoint, func(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.metrics.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				// The shed-attribution marker: a router in front tags its
				// own backpressure sheds "router", so load reports can tell
				// which tier is saturated.
				w.Header().Set("X-Psn-Shed", "replica")
				writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server at capacity (%d requests in flight)", cap(s.sem)))
				return
			}
		}
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		ri.cancel = engine.NewCancel(r.Context(), s.effectiveTimeout(r))
		if err := s.cfg.Faults.FireCancel("handler", &ri.cancel); err != nil {
			s.writeHandlerError(w, ri, err)
			return
		}
		h(w, r, ri)
	})
}

// SetDraining flips the server into (or out of) drain mode: /healthz
// answers 503 so load balancers and probes stop routing new traffic
// while in-flight requests finish under http.Server.Shutdown. All
// other endpoints keep serving — requests already admitted, and any
// stragglers racing the listener close, complete normally.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// effectiveTimeout resolves one request's compute deadline: the
// server's own RequestTimeout, tightened by an X-Psn-Deadline-Ms
// header when a router tier propagated the client's remaining budget —
// so replica-side cooperative cancellation fires before the router
// gives up on the socket, and the abandoned work is reclaimed instead
// of computing for a caller that already left.
func (s *Server) effectiveTimeout(r *http.Request) time.Duration {
	t := s.cfg.RequestTimeout
	if v := r.Header.Get("X-Psn-Deadline-Ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; t <= 0 || d < t {
				t = d
			}
		}
	}
	return t
}

// getReqInfo takes a recycled reqInfo from the pool, resets its trace,
// and stamps the request ID: a well-formed inbound X-Psn-Request (16
// lowercase hex digits — what the router tier mints) is trusted and
// reused, so one ID traces a request across tiers; anything else gets
// a fresh local ID.
func (s *Server) getReqInfo(r *http.Request) *reqInfo {
	ri, _ := s.reqPool.Get().(*reqInfo)
	if ri == nil {
		ri = new(reqInfo)
	}
	ri.obs.Reset()
	id, idStr, ok := inboundRequestID(r)
	if !ok {
		id = s.idTag | s.idSeq.Add(1)&0xffffffff
		idStr = formatRequestID(id)
	}
	ri.obs.ID = id
	ri.idStr = idStr
	ri.dataset = ""
	ri.cancel = engine.Cancel{}
	return ri
}

// inboundRequestID parses a propagated X-Psn-Request header, accepting
// exactly the format formatRequestID emits.
func inboundRequestID(r *http.Request) (uint64, string, bool) {
	v := r.Header.Get("X-Psn-Request")
	if len(v) != 16 {
		return 0, "", false
	}
	var id uint64
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= '0' && c <= '9':
			id = id<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			id = id<<4 | uint64(c-'a'+10)
		default:
			return 0, "", false
		}
	}
	return id, v, true
}

// formatRequestID renders an ID as fixed-width lowercase hex — the
// X-Psn-Request header value and the "id" field of log lines.
func formatRequestID(id uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = digits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// logRequest emits the access-log line (when enabled) and, for requests
// at or past the TraceSlow threshold, one structured line with the
// request's per-stage time breakdown. Both carry the request ID, so a
// client holding an X-Psn-Request header can be matched to its server-
// side trace.
func (s *Server) logRequest(endpoint string, r *http.Request, ri *reqInfo, status int, d time.Duration) {
	slow := s.cfg.TraceSlow > 0 && d >= s.cfg.TraceSlow
	if !slow && !s.cfg.AccessLog {
		return
	}
	ctx := r.Context()
	if s.cfg.AccessLog {
		s.cfg.Logger.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("id", ri.idStr),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("dataset", ri.dataset),
			slog.Int("status", status),
			slog.Duration("latency", d),
		)
	}
	if slow {
		attrs := make([]slog.Attr, 0, 7+obs.NumStages)
		attrs = append(attrs,
			slog.String("id", ri.idStr),
			slog.String("endpoint", endpoint),
			slog.String("dataset", ri.dataset),
			slog.Int("status", status),
			slog.Duration("latency", d),
		)
		if ri.obs.Truncated() {
			// A canceled request's stage times cover only the work done
			// before the abandon checkpoint.
			attrs = append(attrs, slog.Bool("truncated", true))
		}
		names := obs.StageNames()
		for i := 0; i < obs.NumStages; i++ {
			if ns := ri.obs.StageNs(obs.Stage(i)); ns > 0 {
				attrs = append(attrs, slog.Duration("stage."+names[i], time.Duration(ns)))
			}
		}
		s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "slow request", attrs...)
	}
}

// countingWriter records the status code written to a ResponseWriter.
type countingWriter struct {
	http.ResponseWriter
	code int
}

func (cw *countingWriter) WriteHeader(code int) {
	if cw.code == 0 {
		cw.code = code
	}
	cw.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach its optional interfaces (http.Flusher, io.ReaderFrom, …) —
// embedding alone hides them behind the wrapper's static type.
func (cw *countingWriter) Unwrap() http.ResponseWriter { return cw.ResponseWriter }

func (cw *countingWriter) status() int {
	if cw.code == 0 {
		return http.StatusOK
	}
	return cw.code
}

// statusClientClosedRequest is the nginx-convention 499 recorded when
// the client went away before the response: nothing useful can be
// written to it, but the status still lands in the metrics and logs.
const statusClientClosedRequest = 499

// writeHandlerError maps an experiment-handler failure onto the wire.
// Cancellation is decided by the request's OWN token, not by the error
// alone: a *engine.CanceledError whose own token fired is this request
// hitting its deadline (503 + Retry-After, psn_cancelled_total
// reason="deadline") or its client disconnecting (499,
// reason="client"); one inherited from a singleflight leader while the
// request's own token is still live means the shared computation this
// request was waiting on got abandoned — answered 503 + Retry-After as
// a shed (a retry relaunches the build) without touching the
// cancellation counters. Either way the request's stage trace is
// marked truncated. *DegradedError carries its own backoff window as
// the Retry-After hint. Everything else falls through to statusOf.
func (s *Server) writeHandlerError(w http.ResponseWriter, ri *reqInfo, err error) {
	if engine.IsCanceled(err) {
		ri.obs.MarkTruncated()
		switch own := ri.cancel.Err(); {
		case own == nil:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("shared computation canceled, retry: %v", err))
		case errors.Is(own, context.Canceled):
			s.metrics.cancelled(reasonClient)
			writeError(w, statusClientClosedRequest, fmt.Errorf("client closed request: %v", err))
		default:
			s.metrics.cancelled(reasonDeadline)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("request deadline exceeded: %v", err))
		}
		return
	}
	var deg *DegradedError
	if errors.As(err, &deg) {
		w.Header().Set("Retry-After", retryAfterSeconds(deg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, statusOf(err), err)
}

// retryAfterSeconds renders a backoff window as a Retry-After header
// value: whole seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// errorBody is the JSON shape of every error response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// writeJSON marshals v exactly as the cached path does (json.Marshal
// plus a trailing newline), so cached and freshly computed responses
// are byte-identical.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeRaw(w, data)
}

func writeRaw(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
	w.Write([]byte{'\n'})
}

// marshalResponse is the single encoding used for cacheable responses.
func marshalResponse(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("encode response: %w", err)
	}
	return data, nil
}

// maxBodyBytes caps experiment request bodies. Requests are small
// parameter tuples (the largest legitimate body is a message batch);
// without a cap a single oversized body would be decoded fully into
// memory while holding only one in-flight slot, bypassing the
// backpressure design.
const maxBodyBytes = 1 << 20

// decodeBody strictly decodes a size-limited JSON request body into v.
// The body must be exactly one JSON value: trailing data after it
// (`{"dataset":"dev"}{"junk":1}`) is a client error, not silently
// ignored — a cache key computed from v would otherwise not cover what
// the client actually sent.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("request body exceeds %d bytes: %w", int64(maxBodyBytes), err)
		}
		return badRequest("bad request body: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return badRequest("bad request body: unexpected data after JSON value")
	}
	return nil
}

// statusOf maps handler errors to HTTP status codes: unknown datasets
// and bad parameters are client errors, oversized bodies are 413,
// everything else is a 500.
func statusOf(err error) int {
	var unknown *UnknownDatasetError
	if errors.As(err, &unknown) {
		return http.StatusNotFound
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	var badReq *badRequestError
	if errors.As(err, &badReq) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// badRequestError marks a client-side parameter problem.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return &badRequestError{err: fmt.Errorf(format, args...)}
}
