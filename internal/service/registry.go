// Package service is the HTTP serving layer of the reproduction: it
// exposes the repository's experiments — path enumeration, forwarding
// simulation, figure regeneration — as JSON endpoints over a dataset
// registry and a cache of per-dataset artifacts.
//
// The paper's experiments are pure queries over immutable per-dataset
// inputs (the contact trace, the indexed space-time graph, the
// simulator's oracle tables), which makes them ideal to serve rather
// than re-run per invocation: the expensive artifacts are built once
// behind singleflight and shared by every request, memoized results
// live behind a size-bounded LRU, and the worker-pool engine underneath
// multiplexes many small queries onto the machine.
//
// # Determinism contract, served
//
// A served response decodes to results byte-identical to the
// equivalent direct library call, for any worker count and request
// concurrency: handlers call exactly the library entry points a
// command-line run would, caches store either immutable artifacts or
// the marshaled response bytes of the first computation, and nothing
// about scheduling leaks into a response body.
package service

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Dataset kinds reported by Registry.List.
const (
	// KindSynthetic marks a generated dataset (deterministic seed).
	KindSynthetic = "synthetic"
	// KindFile marks a trace backed by a file: the path is checked at
	// registration, the file parsed lazily on first use.
	KindFile = "file"
)

// DatasetInfo describes one registry entry.
type DatasetInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// Registry maps dataset names to immutable contact traces: the four
// named conference datasets, the city-scale family, the small "dev"
// trace, and any traces registered from files or custom generators.
// Every dataset — synthetic and file-backed alike — is built lazily
// on first use, exactly once, behind singleflight; every caller then
// shares the same *trace.Trace. Lazy file loading matters for server
// boot: a multi-gigabyte trace file registered with -trace must not
// stall startup, and is only parsed when a request first names it. A
// Registry is safe for concurrent use after registration is complete.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
}

type regEntry struct {
	kind  string
	build func() (*trace.Trace, error)

	mu     sync.Mutex
	tr     *trace.Trace // memoized successful build
	err    error        // memoized permanent failure (synthetic builders)
	flight *regFlight   // in-progress build, joined by concurrent callers
}

// regFlight is one in-progress build: concurrent callers wait on done
// and share its result, so the build runs at most once at a time.
type regFlight struct {
	done chan struct{}
	tr   *trace.Trace
	err  error
}

// NewRegistry returns a registry pre-populated with the four paper
// datasets under their CLI names (infocom-9-12, infocom-3-6,
// conext-9-12, conext-3-6), the small deterministic "dev" trace, and
// the city-scale family (city-2k, city-4k — thousands of nodes,
// millions of contacts; generated on first use, which takes seconds
// and hundreds of megabytes, so merely listing them is free).
func NewRegistry() *Registry {
	r := &Registry{entries: make(map[string]*regEntry)}
	for _, d := range tracegen.Datasets {
		d := d
		r.mustRegister(builtinName(d), KindSynthetic, func() (*trace.Trace, error) {
			return tracegen.Generate(d)
		})
	}
	r.mustRegister("dev", KindSynthetic, func() (*trace.Trace, error) {
		return tracegen.Dev(1), nil
	})
	for _, nodes := range []int{2000, 4000} {
		nodes := nodes
		r.mustRegister(fmt.Sprintf("city-%dk", nodes/1000), KindSynthetic, func() (*trace.Trace, error) {
			return tracegen.City(nodes, 1)
		})
	}
	return r
}

// builtinName is the CLI/HTTP name of a named synthetic dataset
// ("Infocom06 9-12" → "infocom-9-12").
func builtinName(d tracegen.Dataset) string {
	s := strings.ToLower(d.String())
	s = strings.TrimPrefix(s, "infocom06 ")
	s = strings.TrimPrefix(s, "conext06 ")
	switch d {
	case tracegen.Infocom0912, tracegen.Infocom0336:
		return "infocom-" + s
	default:
		return "conext-" + s
	}
}

// Register adds a named dataset with a build function, called at most
// once on first use. The name must be unused.
func (r *Registry) Register(name, kind string, build func() (*trace.Trace, error)) error {
	if name == "" {
		return fmt.Errorf("service: empty dataset name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("service: dataset %q already registered", name)
	}
	r.entries[name] = &regEntry{kind: kind, build: build}
	return nil
}

func (r *Registry) mustRegister(name, kind string, build func() (*trace.Trace, error)) {
	if err := r.Register(name, kind, build); err != nil {
		panic(err)
	}
}

// RegisterFile registers a trace file (trace.Read format) under name.
// The path is checked eagerly — a missing or unreadable file still
// fails at startup — but the file is parsed lazily behind the
// registry's singleflight on first use, so registering large traces
// does not stall server boot. A parse or read failure surfaces on the
// request naming the dataset and is retried on the next one (see
// Trace), so a transient file error never permanently poisons the
// dataset.
func (r *Registry) RegisterFile(name, path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("service: dataset %q: %w", name, err)
	}
	if !info.Mode().IsRegular() {
		return fmt.Errorf("service: dataset %q: %s is not a regular file", name, path)
	}
	return r.Register(name, KindFile, func() (*trace.Trace, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("service: dataset %q: %w", name, err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return nil, fmt.Errorf("service: dataset %q: %w", name, err)
		}
		return tr, nil
	})
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// List returns name and kind of every registered dataset, sorted by
// name.
func (r *Registry) List() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.entries))
	for name, e := range r.entries {
		out = append(out, DatasetInfo{Name: name, Kind: e.kind})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// UnknownDatasetError is returned by Trace for names not in the
// registry; its message lists the available names.
type UnknownDatasetError struct {
	Name      string
	Available []string
}

func (e *UnknownDatasetError) Error() string {
	return fmt.Sprintf("unknown dataset %q (available: %s)", e.Name, strings.Join(e.Available, ", "))
}

// Trace returns the named dataset, building it on first use. Every
// call for the same name returns the same immutable trace; concurrent
// first calls block on a single build. Only successful builds are
// memoized forever — plus failures of synthetic builders, which are
// deterministic and cannot succeed on retry. A failed file-backed
// build (a transient open or read error on a KindFile dataset) is NOT
// memoized: the next request retries the file instead of the error
// permanently poisoning the dataset until restart.
func (r *Registry) Trace(name string) (*trace.Trace, error) {
	return r.TraceCancel(name, nil)
}

// TraceCancel is Trace with a cancellation token honored while waiting
// on another caller's in-progress build: a waiter whose token fires
// abandons the wait with a *engine.CanceledError while the build keeps
// running for everyone else. The builder itself runs to completion —
// dataset builds are shared state, and a half-built trace helps
// nobody — so a request that starts a build pays for it even if its
// own deadline passes meanwhile.
func (r *Registry) TraceCancel(name string, cc *engine.Cancel) (*trace.Trace, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return nil, &UnknownDatasetError{Name: name, Available: r.Names()}
	}
	return e.trace(cc)
}

func (e *regEntry) trace(cc *engine.Cancel) (*trace.Trace, error) {
	e.mu.Lock()
	if e.tr != nil || e.err != nil {
		tr, err := e.tr, e.err
		e.mu.Unlock()
		return tr, err
	}
	if f := e.flight; f != nil {
		e.mu.Unlock()
		if err := cc.Wait(f.done); err != nil {
			return nil, err
		}
		return f.tr, f.err
	}
	f := &regFlight{done: make(chan struct{})}
	e.flight = f
	e.mu.Unlock()

	// The flight must settle even if the builder panics (a hung done
	// channel would deadlock every future request for the dataset):
	// record the panic as the flight's error, publish, and re-raise.
	done := false
	defer func() {
		if !done {
			f.err = fmt.Errorf("service: dataset build panicked")
		}
		e.mu.Lock()
		e.flight = nil
		if f.err == nil {
			e.tr = f.tr
		} else if e.kind != KindFile && done {
			// Panics are not memoized: they may be injected faults or
			// other transients a retry can clear.
			e.err = f.err
		}
		e.mu.Unlock()
		close(f.done)
	}()
	f.tr, f.err = e.build()
	done = true
	return f.tr, f.err
}
