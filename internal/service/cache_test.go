package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUCachesAndEvicts(t *testing.T) {
	c := newLRUCache(2)
	var builds atomic.Int64
	get := func(key string) []byte {
		t.Helper()
		v, err := c.Get(nil, key, func() ([]byte, error) {
			builds.Add(1)
			return []byte(key), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	get("a")
	get("b")
	get("a") // hit; refreshes a
	if n := builds.Load(); n != 2 {
		t.Fatalf("builds = %d, want 2", n)
	}
	get("c") // evicts b (LRU)
	get("a") // still cached
	if n := builds.Load(); n != 3 {
		t.Fatalf("builds = %d, want 3", n)
	}
	get("b") // rebuilt
	if n := builds.Load(); n != 4 {
		t.Fatalf("builds = %d, want 4", n)
	}
	hits, misses, entries := c.Stats()
	if entries != 2 {
		t.Errorf("entries = %d, want 2", entries)
	}
	if hits != 2 || misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 2/4", hits, misses)
	}
}

func TestLRUSingleflight(t *testing.T) {
	c := newLRUCache(8)
	var builds atomic.Int64
	release := make(chan struct{})
	const goroutines = 12
	var wg sync.WaitGroup
	wg.Add(goroutines)
	results := make([][]byte, goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			v, err := c.Get(nil, "key", func() ([]byte, error) {
				builds.Add(1)
				<-release
				return []byte("value"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("builds = %d, want 1 (singleflight)", n)
	}
	for i, v := range results {
		if string(v) != "value" {
			t.Errorf("goroutine %d got %q", i, v)
		}
	}
}

func TestLRUErrorsNotCached(t *testing.T) {
	c := newLRUCache(8)
	calls := 0
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := c.Get(nil, "key", func() ([]byte, error) {
			calls++
			if calls < 3 {
				return nil, boom
			}
			return []byte("ok"), nil
		})
		if i < 2 && !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
		if i == 2 && err != nil {
			t.Fatalf("call 2: %v", err)
		}
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (errors retried)", calls)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(-1)
	calls := 0
	for i := 0; i < 3; i++ {
		if _, err := c.Get(nil, "k", func() ([]byte, error) { calls++; return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (cache disabled)", calls)
	}
}

func TestMemoMapSingleflightAndErrorRetry(t *testing.T) {
	m := newMemoMap[int, string](8)
	var builds atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.get(nil, 1, func() (string, error) {
				builds.Add(1)
				return "one", nil
			})
			if err != nil || v != "one" {
				t.Errorf("got %q/%v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("builds = %d, want 1", n)
	}

	fails := 0
	if _, err := m.get(nil, 2, func() (string, error) { fails++; return "", fmt.Errorf("nope") }); err == nil {
		t.Fatal("expected error")
	}
	if v, err := m.get(nil, 2, func() (string, error) { fails++; return "two", nil }); err != nil || v != "two" {
		t.Errorf("retry got %q/%v", v, err)
	}
	if fails != 2 {
		t.Errorf("fails = %d, want 2 (error slot released)", fails)
	}
}

func TestMemoMapBounded(t *testing.T) {
	m := newMemoMap[int, int](2)
	builds := 0
	get := func(k int) {
		t.Helper()
		v, err := m.get(nil, k, func() (int, error) { builds++; return k, nil })
		if err != nil || v != k {
			t.Fatalf("get(%d) = %d/%v", k, v, err)
		}
	}
	get(1)
	get(2)
	get(1) // hit; refreshes 1
	if builds != 2 {
		t.Fatalf("builds = %d, want 2", builds)
	}
	get(3) // evicts 2 (LRU)
	get(1) // still cached
	if builds != 3 {
		t.Fatalf("builds = %d, want 3", builds)
	}
	get(2) // rebuilt after eviction
	if builds != 4 {
		t.Fatalf("builds = %d, want 4 (2 was evicted)", builds)
	}
	if n := m.order.Len(); n != 2 {
		t.Errorf("entries = %d, want 2 (bound held)", n)
	}
}
