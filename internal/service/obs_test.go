package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/artstore"
	"repro/internal/dtnsim"
	"repro/internal/stgraph"
)

// do runs one request through the server and returns the recorder.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func enumerateOnce(t *testing.T, s *Server) {
	t.Helper()
	w := do(t, s, "POST", "/enumerate", `{"dataset":"dev","src":0,"dst":17,"start":0,"k":25}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/enumerate: status %d: %s", w.Code, w.Body.String())
	}
}

// --- strict Prometheus text-exposition checking (satellite: /metrics
// format tests) ---

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+]Inf|NaN)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

type promSample struct {
	name   string
	labels string // raw {...} including braces, "" when unlabeled
	value  float64
	line   int
}

// parsePromText strictly checks the exposition line format: every line
// is a HELP comment, a TYPE comment, or a well-formed sample; TYPE
// precedes every family's samples; label strings parse as
// comma-separated name="value" pairs.
func parsePromText(t *testing.T, text string) (samples []promSample, types map[string]string) {
	t.Helper()
	types = make(map[string]string)
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[2] == "" {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", i+1, parts[3])
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", i+1, parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", i+1, line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", i+1, line)
		}
		name, labels, valueStr := m[1], m[2], m[3]
		if labels != "" {
			inner := labels[1 : len(labels)-1]
			for _, pair := range splitLabelPairs(inner) {
				if !labelRe.MatchString(pair) {
					t.Fatalf("line %d: malformed label pair %q in %q", i+1, pair, line)
				}
			}
		}
		var value float64
		switch valueStr {
		case "+Inf":
			value = math.Inf(1)
		case "NaN":
			value = math.NaN()
		default:
			var err error
			if value, err = strconv.ParseFloat(valueStr, 64); err != nil {
				t.Fatalf("line %d: bad value %q", i+1, valueStr)
			}
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("line %d: sample %q has no preceding TYPE", i+1, name)
		}
		samples = append(samples, promSample{name: name, labels: labels, value: value, line: i + 1})
	}
	return samples, types
}

// splitLabelPairs splits the inside of a label block on commas not
// inside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// checkHistograms verifies every histogram family in the exposition:
// for each label set, bucket counts are cumulative (non-decreasing in
// exposition order), the last bucket is le="+Inf", and its count
// equals the family's _count sample for the same label set.
func checkHistograms(t *testing.T, samples []promSample, types map[string]string) {
	t.Helper()
	leRe := regexp.MustCompile(`le="([^"]*)"`)
	type key struct{ family, rest string }
	lastBucket := make(map[key]promSample)
	prevCount := make(map[key]float64)
	sawInf := make(map[key]bool)
	counts := make(map[key]float64)
	for _, s := range samples {
		if base := strings.TrimSuffix(s.name, "_bucket"); base != s.name && types[base] == "histogram" {
			le := leRe.FindStringSubmatch(s.labels)
			if le == nil {
				t.Fatalf("line %d: histogram bucket without le label: %q", s.line, s.labels)
			}
			rest := strings.Replace(s.labels, le[0], "", 1)
			k := key{base, rest}
			if s.value < prevCount[k] {
				t.Errorf("line %d: %s%s bucket counts not cumulative (%g < %g)", s.line, s.name, s.labels, s.value, prevCount[k])
			}
			prevCount[k] = s.value
			lastBucket[k] = s
			sawInf[k] = le[1] == "+Inf"
		}
		if base := strings.TrimSuffix(s.name, "_count"); base != s.name && types[base] == "histogram" {
			counts[key{base, s.labels}] = s.value
		}
	}
	for k, last := range lastBucket {
		if !sawInf[k] {
			t.Errorf("histogram %s%s: last bucket is not le=\"+Inf\"", k.family, k.rest)
		}
		// The +Inf bucket must equal _count. Label sets differ only by
		// the removed le pair; normalize empty-vs-comma leftovers.
		want, ok := counts[key{k.family, normalizeLabels(k.rest)}]
		if !ok {
			t.Errorf("histogram %s%s: no _count sample", k.family, k.rest)
			continue
		}
		if last.value != want {
			t.Errorf("histogram %s%s: +Inf bucket %g != _count %g", k.family, k.rest, last.value, want)
		}
	}
}

// normalizeLabels cleans the leftover label block after removing the
// le pair: "{,endpoint=...}" → "{endpoint=...}", "{}" → "".
func normalizeLabels(l string) string {
	if l == "" || l == "{}" || l == "{,}" {
		return ""
	}
	inner := strings.Trim(l[1:len(l)-1], ",")
	inner = strings.ReplaceAll(inner, ",,", ",")
	if inner == "" {
		return ""
	}
	return "{" + inner + "}"
}

func fetchMetrics(t *testing.T, s *Server) string {
	t.Helper()
	w := do(t, s, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", w.Code)
	}
	return w.Body.String()
}

// TestMetricsExpositionStrict runs a representative request mix and
// then strictly validates the whole /metrics output: line format, TYPE
// coverage, label well-formedness, and histogram bucket invariants.
func TestMetricsExpositionStrict(t *testing.T) {
	s := New(Config{})
	enumerateOnce(t, s)
	if w := do(t, s, "POST", "/simulate", `{"dataset":"dev","algorithm":"epidemic"}`); w.Code != http.StatusOK {
		t.Fatalf("/simulate: status %d: %s", w.Code, w.Body.String())
	}
	do(t, s, "GET", "/healthz", "")
	do(t, s, "POST", "/enumerate", `{"dataset":"nope"}`) // a 404, so a non-200 code series exists

	text := fetchMetrics(t, s)
	samples, types := parsePromText(t, text)
	if len(samples) == 0 {
		t.Fatal("no samples in /metrics")
	}
	checkHistograms(t, samples, types)

	for _, want := range []string{
		`psn_request_duration_seconds_count{endpoint="enumerate"}`,
		`psn_request_duration_seconds_count{endpoint="simulate"}`,
		`psn_stage_duration_seconds_count{stage="enum_fork"}`,
		`psn_stage_duration_seconds_count{stage="graph_sweep"}`,
		`psn_stage_duration_seconds_count{stage="oracle_build"}`,
		`psn_stage_duration_seconds_count{stage="sim_run"}`,
		"psn_goroutines ",
		"psn_gomaxprocs ",
		"psn_heap_alloc_bytes ",
		"psn_gc_pause_seconds_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestMetricsHistogramCountsMatchRequests pins the acceptance
// criterion that the endpoint histogram's count equals the number of
// requests actually sent.
func TestMetricsHistogramCountsMatchRequests(t *testing.T) {
	s := New(Config{})
	const n = 7
	for i := 0; i < n; i++ {
		enumerateOnce(t, s)
	}
	text := fetchMetrics(t, s)
	for _, line := range []string{
		fmt.Sprintf(`psn_requests_total{endpoint="enumerate"} %d`, n),
		fmt.Sprintf(`psn_request_duration_seconds_count{endpoint="enumerate"} %d`, n),
	} {
		if !strings.Contains(text, line) {
			t.Errorf("metrics missing %q in:\n%s", line, text)
		}
	}
}

// TestRequestIDHeader checks every response carries a fixed-width hex
// request ID, unique across requests.
func TestRequestIDHeader(t *testing.T) {
	s := New(Config{})
	idRe := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 3; i++ {
		w := do(t, s, "GET", "/healthz", "")
		id := w.Header().Get("X-Psn-Request")
		if !idRe.MatchString(id) {
			t.Fatalf("X-Psn-Request %q is not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("request ID %q repeated", id)
		}
		seen[id] = true
	}
}

// TestHealthzArtifacts checks the store-aware health body: without a
// store the artifacts key is absent (byte-compatible with the old
// shape); with a warmed store the dataset shows up in warm.
func TestHealthzArtifacts(t *testing.T) {
	s := New(Config{})
	w := do(t, s, "GET", "/healthz", "")
	if strings.Contains(w.Body.String(), "artifacts") {
		t.Fatalf("no-store /healthz mentions artifacts: %s", w.Body.String())
	}

	dir := t.TempDir()
	store := &artstore.Store{Dir: dir}
	tr, err := NewRegistry().Trace("dev")
	if err != nil {
		t.Fatal(err)
	}
	g, err := stgraph.New(tr, stgraph.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	digest := artstore.TraceDigest(tr)
	if _, err := store.SaveGraph("dev", digest, g); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveOracle("dev", digest, dtnsim.NewOracle(tr)); err != nil {
		t.Fatal(err)
	}

	s = New(Config{ArtifactDir: dir})
	w = do(t, s, "GET", "/healthz", "")
	var health HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if health.Artifacts == nil {
		t.Fatal("healthz with store: artifacts absent")
	}
	if health.Artifacts.Dir != dir {
		t.Errorf("artifacts dir %q, want %q", health.Artifacts.Dir, dir)
	}
	warm := strings.Join(health.Artifacts.Warm, ",")
	if !strings.Contains(warm, "dev") {
		t.Errorf("warm datasets %q do not include dev", warm)
	}
	for _, name := range health.Artifacts.Warm {
		if name == "dev" {
			continue
		}
		if store.HasGraph(name, stgraph.DefaultDelta) && store.HasOracle(name) {
			continue
		}
		t.Errorf("dataset %q reported warm without artifacts on disk", name)
	}

	// After serving an enumerate, the load counter moves (graph loaded
	// from the store, not rebuilt).
	enumerateOnce(t, s)
	w = do(t, s, "GET", "/healthz", "")
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Artifacts.GraphLoads != 1 || health.Artifacts.GraphBuilds != 0 {
		t.Errorf("after warm enumerate: graphLoads %d graphBuilds %d, want 1/0",
			health.Artifacts.GraphLoads, health.Artifacts.GraphBuilds)
	}
}

// TestAccessLog checks the opt-in per-request log line.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))

	s := New(Config{Logger: logger}) // default: off
	do(t, s, "GET", "/healthz", "")
	if buf.Len() != 0 {
		t.Fatalf("access log written while disabled: %s", buf.String())
	}

	s = New(Config{AccessLog: true, Logger: logger})
	w := do(t, s, "GET", "/healthz", "")
	line := buf.String()
	for _, want := range []string{
		"msg=request",
		"method=GET",
		"path=/healthz",
		"status=200",
		"id=" + w.Header().Get("X-Psn-Request"),
		"latency=",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line missing %q: %s", want, line)
		}
	}
}

// TestTraceSlow checks the slow-request line: with a 1ns threshold
// every request is slow, and an enumerate on a cold server carries
// stage breakdown attributes.
func TestTraceSlow(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{
		TraceSlow: time.Nanosecond,
		Logger:    slog.New(slog.NewTextHandler(&buf, nil)),
	})
	enumerateOnce(t, s)
	line := buf.String()
	for _, want := range []string{
		`msg="slow request"`,
		"endpoint=enumerate",
		"dataset=dev",
		"status=200",
		"stage.enum_fork=",
		"stage.graph_sweep=", // cold server: the request paid the live graph build
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-trace line missing %q: %s", want, line)
		}
	}
}

// TestPprofGating checks /debug/pprof/ is absent by default and served
// when enabled.
func TestPprofGating(t *testing.T) {
	s := New(Config{})
	if w := do(t, s, "GET", "/debug/pprof/", ""); w.Code != http.StatusNotFound {
		t.Fatalf("pprof disabled: status %d, want 404", w.Code)
	}
	s = New(Config{EnablePprof: true})
	w := do(t, s, "GET", "/debug/pprof/", "")
	if w.Code != http.StatusOK {
		t.Fatalf("pprof enabled: status %d, want 200", w.Code)
	}
	if !strings.Contains(w.Body.String(), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
	if w := do(t, s, "GET", "/debug/pprof/cmdline", ""); w.Code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", w.Code)
	}
}
