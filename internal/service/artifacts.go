package service

import (
	"sync/atomic"

	"repro/internal/artstore"
	"repro/internal/dtnsim"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/pathenum"
	"repro/internal/stgraph"
	"repro/internal/trace"
)

// artifacts caches the expensive immutable per-dataset structures
// every request path needs: the indexed space-time graph (per dataset
// and discretization step), enumerators over it (per enumeration
// budget), the simulator's sweep engine (per dataset — oracle tables
// plus pooled per-run state, so warm repeated /simulate requests pay
// only the replay), and figure harnesses (per parameter set). Each is
// built once behind singleflight and shared by all concurrent
// requests; all of them are documented safe for concurrent use by
// their packages. The caches are size-bounded LRUs because several
// key dimensions (delta, enumeration budgets, harness scale) are
// client-controlled: without a bound, a client sweeping distinct
// parameter values would pin one multi-megabyte graph or enumerator
// (whose pooled scratch retains arena chunks) per value until the
// server runs out of memory.
type artifacts struct {
	reg *Registry

	// store, when non-nil, is checked before building a graph or oracle:
	// a warmed artifact loads in milliseconds where the build takes
	// seconds. Every load failure — absence, version skew, digest
	// mismatch, corruption — falls back to the live build, so a stale or
	// damaged store can cost time but never correctness. The counters
	// below record which path each artifact took (exposed on /metrics).
	store        *artstore.Store
	graphLoads   atomic.Int64
	graphBuilds  atomic.Int64
	oracleLoads  atomic.Int64
	oracleBuilds atomic.Int64

	graphs    *memoMap[graphKey, *stgraph.Graph]
	enums     *memoMap[enumKey, *pathenum.Enumerator]
	sweeps    *memoMap[string, *dtnsim.Sweep]
	harnesses *memoMap[harnessKey, *figures.Harness]
}

type graphKey struct {
	dataset string
	delta   float64
}

type enumKey struct {
	dataset     string
	delta       float64
	k           int
	tableWidth  int
	maxArrivals int
	workers     int
}

// harnessKey is the figure-harness parameter tuple reachable over
// HTTP. Datasets stay at the harness default (all four); Workers is
// deliberately excluded — figures are byte-identical for every worker
// count, so requests differing only in workers share one harness.
type harnessKey struct {
	messages int
	k        int
	simRuns  int
	seed     int64
}

// Artifact cache bounds. Datasets are a fixed registry set, so the
// client-controlled dimensions are delta (graphs), the enumeration
// budget tuple (enumerators — the heaviest entries, each retaining
// pooled arena scratch), and the harness parameter set (each harness
// memoizes whole studies). Eviction only costs a rebuild on the next
// request for that key.
const (
	maxCachedGraphs    = 16
	maxCachedEnums     = 32
	maxCachedSweeps    = 32
	maxCachedHarnesses = 8
)

func newArtifacts(reg *Registry, store *artstore.Store) *artifacts {
	return &artifacts{
		reg:       reg,
		store:     store,
		graphs:    newMemoMap[graphKey, *stgraph.Graph](maxCachedGraphs),
		enums:     newMemoMap[enumKey, *pathenum.Enumerator](maxCachedEnums),
		sweeps:    newMemoMap[string, *dtnsim.Sweep](maxCachedSweeps),
		harnesses: newMemoMap[harnessKey, *figures.Harness](maxCachedHarnesses),
	}
}

// graph returns the indexed space-time graph of a dataset at step
// delta, building it once. Stage spans land on ot — only for the
// request that actually triggers the singleflight load or build; later
// requests get the cached graph and record nothing, which is the
// truthful attribution.
func (a *artifacts) graph(dataset string, delta float64, ot *obs.Trace) (*stgraph.Graph, error) {
	if delta == 0 {
		delta = stgraph.DefaultDelta
	}
	return a.graphs.get(graphKey{dataset, delta}, func() (*stgraph.Graph, error) {
		tr, err := a.reg.Trace(dataset)
		if err != nil {
			return nil, err
		}
		if a.store != nil {
			sp := ot.Start(obs.StageArtifactLoad)
			g, err := a.store.LoadGraph(dataset, delta, artstore.TraceDigest(tr))
			sp.End()
			if err == nil {
				a.graphLoads.Add(1)
				return g, nil
			}
		}
		a.graphBuilds.Add(1)
		return stgraph.NewWorkersObs(tr, delta, 0, ot)
	})
}

// enumerator returns an enumerator for the dataset under the given
// options. Enumerators with different budgets share the per-(dataset,
// delta) graph index — the expensive part — and each is itself safe
// for concurrent Enumerate calls.
func (a *artifacts) enumerator(dataset string, opt pathenum.Options, ot *obs.Trace) (*pathenum.Enumerator, error) {
	key := enumKey{dataset, opt.Delta, opt.K, opt.TableWidth, opt.MaxArrivals, opt.Workers}
	return a.enums.get(key, func() (*pathenum.Enumerator, error) {
		tr, err := a.reg.Trace(dataset)
		if err != nil {
			return nil, err
		}
		g, err := a.graph(dataset, opt.Delta, ot)
		if err != nil {
			return nil, err
		}
		return pathenum.NewEnumeratorWithGraph(tr, g, opt)
	})
}

// sweep returns the dataset's simulation sweep engine: precomputed
// oracle tables plus pooled per-run simulation state, shared by every
// /simulate request for the dataset.
func (a *artifacts) sweep(dataset string, ot *obs.Trace) (*dtnsim.Sweep, *trace.Trace, error) {
	tr, err := a.reg.Trace(dataset)
	if err != nil {
		return nil, nil, err
	}
	sw, err := a.sweeps.get(dataset, func() (*dtnsim.Sweep, error) {
		if a.store != nil {
			sp := ot.Start(obs.StageArtifactLoad)
			o, err := a.store.LoadOracle(dataset, artstore.TraceDigest(tr), tr)
			sp.End()
			if err == nil {
				a.oracleLoads.Add(1)
				return dtnsim.NewSweepFromOracle(o)
			}
		}
		a.oracleBuilds.Add(1)
		sp := ot.Start(obs.StageOracleBuild)
		sw, err := dtnsim.NewSweep(tr)
		sp.End()
		return sw, err
	})
	return sw, tr, err
}

// harness returns the figure harness for a parameter set. The harness
// memoizes its own studies and simulation sweeps, so figures sharing
// parameters also share the underlying experiments.
func (a *artifacts) harness(p figures.Params) *figures.Harness {
	key := harnessKey{messages: p.Messages, k: p.K, simRuns: p.SimRuns, seed: p.Seed}
	h, _ := a.harnesses.get(key, func() (*figures.Harness, error) {
		return figures.NewHarness(p), nil
	})
	return h
}
