package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	mathrand "math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artstore"
	"repro/internal/dtnsim"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/pathenum"
	"repro/internal/stgraph"
	"repro/internal/trace"
)

// artifacts caches the expensive immutable per-dataset structures
// every request path needs: the indexed space-time graph (per dataset
// and discretization step), enumerators over it (per enumeration
// budget), the simulator's sweep engine (per dataset — oracle tables
// plus pooled per-run state, so warm repeated /simulate requests pay
// only the replay), and figure harnesses (per parameter set). Each is
// built once behind singleflight and shared by all concurrent
// requests; all of them are documented safe for concurrent use by
// their packages. The caches are size-bounded LRUs because several
// key dimensions (delta, enumeration budgets, harness scale) are
// client-controlled: without a bound, a client sweeping distinct
// parameter values would pin one multi-megabyte graph or enumerator
// (whose pooled scratch retains arena chunks) per value until the
// server runs out of memory.
type artifacts struct {
	reg *Registry

	// store, when non-nil, is checked before building a graph or oracle:
	// a warmed artifact loads in milliseconds where the build takes
	// seconds. A benign load failure — absence, version skew, digest
	// mismatch — falls back to the live build; a *corrupt* artifact
	// (damaged bytes, failed section CRC) additionally gets renamed
	// aside (see quarantine) so no later boot retries the broken file.
	// Either way a stale or damaged store can cost time but never
	// correctness. The counters below record which path each artifact
	// took (exposed on /metrics).
	store        *artstore.Store
	graphLoads   atomic.Int64
	graphBuilds  atomic.Int64
	oracleLoads  atomic.Int64
	oracleBuilds atomic.Int64

	// faults arms the request path's injection points (nil in
	// production — every Fire is one pointer check).
	faults *faultinject.Injector
	logger *slog.Logger

	// Quarantine bookkeeping: total renames (metrics), the renamed
	// paths (healthz), and a seen set keying the log-once discipline.
	quarantines atomic.Int64
	qmu         sync.Mutex
	qseen       map[string]bool
	quarantined []string

	// deg tracks per-dataset consecutive build failures and the backoff
	// windows they open (see degrader).
	deg degrader

	graphs    *memoMap[graphKey, *stgraph.Graph]
	enums     *memoMap[enumKey, *pathenum.Enumerator]
	sweeps    *memoMap[string, *dtnsim.Sweep]
	harnesses *memoMap[harnessKey, *figures.Harness]
}

type graphKey struct {
	dataset string
	delta   float64
}

type enumKey struct {
	dataset     string
	delta       float64
	k           int
	tableWidth  int
	maxArrivals int
	workers     int
}

// harnessKey is the figure-harness parameter tuple reachable over
// HTTP. Datasets stay at the harness default (all four); Workers is
// deliberately excluded — figures are byte-identical for every worker
// count, so requests differing only in workers share one harness.
type harnessKey struct {
	messages int
	k        int
	simRuns  int
	seed     int64
}

// Artifact cache bounds. Datasets are a fixed registry set, so the
// client-controlled dimensions are delta (graphs), the enumeration
// budget tuple (enumerators — the heaviest entries, each retaining
// pooled arena scratch), and the harness parameter set (each harness
// memoizes whole studies). Eviction only costs a rebuild on the next
// request for that key.
const (
	maxCachedGraphs    = 16
	maxCachedEnums     = 32
	maxCachedSweeps    = 32
	maxCachedHarnesses = 8
)

func newArtifacts(reg *Registry, store *artstore.Store, faults *faultinject.Injector, logger *slog.Logger) *artifacts {
	return &artifacts{
		reg:       reg,
		store:     store,
		faults:    faults,
		logger:    logger,
		graphs:    newMemoMap[graphKey, *stgraph.Graph](maxCachedGraphs),
		enums:     newMemoMap[enumKey, *pathenum.Enumerator](maxCachedEnums),
		sweeps:    newMemoMap[string, *dtnsim.Sweep](maxCachedSweeps),
		harnesses: newMemoMap[harnessKey, *figures.Harness](maxCachedHarnesses),
	}
}

// quarantine moves a corrupt on-disk artifact aside (renamed with a
// .quarantined suffix) so it is never retried, records it for /healthz
// and /metrics, and logs once per path. Only errors carrying a real
// file — *artstore.CorruptError with a Path — quarantine anything;
// injected corruption (faultinject.ErrCorrupt) has no file behind it.
// Concurrent loads of the same damaged file race benignly: the seen
// set admits one goroutine per path.
func (a *artifacts) quarantine(dataset string, err error) {
	var ce *artstore.CorruptError
	if !errors.As(err, &ce) || ce.Path == "" {
		return
	}
	a.qmu.Lock()
	if a.qseen == nil {
		a.qseen = make(map[string]bool)
	}
	if a.qseen[ce.Path] {
		a.qmu.Unlock()
		return
	}
	a.qseen[ce.Path] = true
	a.qmu.Unlock()

	qpath, qerr := a.store.Quarantine(ce.Path)
	if qerr != nil {
		a.logger.LogAttrs(context.Background(), slog.LevelError, "corrupt artifact, quarantine failed",
			slog.String("dataset", dataset),
			slog.String("path", ce.Path),
			slog.Any("corruption", ce.Err),
			slog.Any("error", qerr),
		)
		return
	}
	a.quarantines.Add(1)
	a.qmu.Lock()
	a.quarantined = append(a.quarantined, qpath)
	a.qmu.Unlock()
	a.logger.LogAttrs(context.Background(), slog.LevelWarn, "corrupt artifact quarantined",
		slog.String("dataset", dataset),
		slog.String("path", ce.Path),
		slog.String("quarantined", qpath),
		slog.Any("corruption", ce.Err),
	)
}

// quarantinedPaths returns the artifact paths renamed aside so far
// (for /healthz), sorted.
func (a *artifacts) quarantinedPaths() []string {
	a.qmu.Lock()
	defer a.qmu.Unlock()
	out := append([]string(nil), a.quarantined...)
	sort.Strings(out)
	return out
}

// noteBuild feeds the degrader with a build outcome. Canceled builds
// (the requester gave up, the dataset is fine), unknown datasets, and
// DegradedError itself say nothing about the dataset's health and are
// excluded from failure counting.
func (a *artifacts) noteBuild(dataset string, err error) {
	if err == nil {
		a.deg.ok(dataset)
		return
	}
	var unknown *UnknownDatasetError
	var deg *DegradedError
	if engine.IsCanceled(err) || errors.As(err, &unknown) || errors.As(err, &deg) {
		return
	}
	a.deg.fail(dataset)
}

// graph returns the indexed space-time graph of a dataset at step
// delta, building it once. Stage spans land on ot — only for the
// request that actually triggers the singleflight load or build; later
// requests get the cached graph and record nothing, which is the
// truthful attribution. The leader threads its cc into the build, so a
// canceled leader abandons the build for everyone — the errored slot
// is unpinned and the next request relaunches it.
func (a *artifacts) graph(dataset string, delta float64, ot *obs.Trace, cc *engine.Cancel) (*stgraph.Graph, error) {
	if delta == 0 {
		delta = stgraph.DefaultDelta
	}
	return a.graphs.get(cc, graphKey{dataset, delta}, func() (*stgraph.Graph, error) {
		if err := a.deg.check(dataset); err != nil {
			return nil, err
		}
		g, err := a.buildGraph(dataset, delta, ot, cc)
		a.noteBuild(dataset, err)
		return g, err
	})
}

func (a *artifacts) buildGraph(dataset string, delta float64, ot *obs.Trace, cc *engine.Cancel) (*stgraph.Graph, error) {
	tr, err := a.reg.TraceCancel(dataset, cc)
	if err != nil {
		return nil, err
	}
	if a.store != nil {
		sp := ot.Start(obs.StageArtifactLoad)
		g, err := a.loadGraph(dataset, delta, tr, cc)
		sp.End()
		if err == nil {
			a.graphLoads.Add(1)
			return g, nil
		}
		if engine.IsCanceled(err) {
			return nil, err
		}
		if errors.Is(err, artstore.ErrCorrupt) {
			a.quarantine(dataset, err)
		}
	}
	a.graphBuilds.Add(1)
	if err := a.faults.FireCancel("graph-build", cc); err != nil {
		return nil, err
	}
	return stgraph.NewWorkersCancel(tr, delta, 0, ot, cc)
}

func (a *artifacts) loadGraph(dataset string, delta float64, tr *trace.Trace, cc *engine.Cancel) (*stgraph.Graph, error) {
	if err := a.faults.FireCancel("graph-load", cc); err != nil {
		return nil, err
	}
	return a.store.LoadGraph(dataset, delta, artstore.TraceDigest(tr))
}

// enumerator returns an enumerator for the dataset under the given
// options. Enumerators with different budgets share the per-(dataset,
// delta) graph index — the expensive part — and each is itself safe
// for concurrent Enumerate calls.
func (a *artifacts) enumerator(dataset string, opt pathenum.Options, ot *obs.Trace, cc *engine.Cancel) (*pathenum.Enumerator, error) {
	key := enumKey{dataset, opt.Delta, opt.K, opt.TableWidth, opt.MaxArrivals, opt.Workers}
	return a.enums.get(cc, key, func() (*pathenum.Enumerator, error) {
		tr, err := a.reg.TraceCancel(dataset, cc)
		if err != nil {
			return nil, err
		}
		g, err := a.graph(dataset, opt.Delta, ot, cc)
		if err != nil {
			return nil, err
		}
		return pathenum.NewEnumeratorWithGraph(tr, g, opt)
	})
}

// sweep returns the dataset's simulation sweep engine: precomputed
// oracle tables plus pooled per-run simulation state, shared by every
// /simulate request for the dataset.
func (a *artifacts) sweep(dataset string, ot *obs.Trace, cc *engine.Cancel) (*dtnsim.Sweep, *trace.Trace, error) {
	tr, err := a.reg.TraceCancel(dataset, cc)
	if err != nil {
		return nil, nil, err
	}
	sw, err := a.sweeps.get(cc, dataset, func() (*dtnsim.Sweep, error) {
		if err := a.deg.check(dataset); err != nil {
			return nil, err
		}
		sw, err := a.buildSweep(dataset, tr, ot, cc)
		a.noteBuild(dataset, err)
		return sw, err
	})
	return sw, tr, err
}

func (a *artifacts) buildSweep(dataset string, tr *trace.Trace, ot *obs.Trace, cc *engine.Cancel) (*dtnsim.Sweep, error) {
	if a.store != nil {
		sp := ot.Start(obs.StageArtifactLoad)
		o, err := a.loadOracle(dataset, tr, cc)
		sp.End()
		if err == nil {
			a.oracleLoads.Add(1)
			return dtnsim.NewSweepFromOracle(o)
		}
		if engine.IsCanceled(err) {
			return nil, err
		}
		if errors.Is(err, artstore.ErrCorrupt) {
			a.quarantine(dataset, err)
		}
	}
	a.oracleBuilds.Add(1)
	if err := a.faults.FireCancel("oracle-build", cc); err != nil {
		return nil, err
	}
	sp := ot.Start(obs.StageOracleBuild)
	sw, err := dtnsim.NewSweep(tr)
	sp.End()
	return sw, err
}

func (a *artifacts) loadOracle(dataset string, tr *trace.Trace, cc *engine.Cancel) (*dtnsim.Oracle, error) {
	if err := a.faults.FireCancel("oracle-load", cc); err != nil {
		return nil, err
	}
	return a.store.LoadOracle(dataset, artstore.TraceDigest(tr), tr)
}

// harness returns the figure harness for a parameter set. The harness
// memoizes its own studies and simulation sweeps, so figures sharing
// parameters also share the underlying experiments.
func (a *artifacts) harness(p figures.Params, cc *engine.Cancel) *figures.Harness {
	key := harnessKey{messages: p.Messages, k: p.K, simRuns: p.SimRuns, seed: p.Seed}
	h, _ := a.harnesses.get(cc, key, func() (*figures.Harness, error) {
		return figures.NewHarness(p), nil
	})
	return h
}

// DegradedError reports a dataset whose artifact pipeline is sitting
// out a backoff window after repeated consecutive build failures.
// Requests needing a fresh build for it are answered 503 with
// RetryAfter as the Retry-After hint instead of hammering a rebuild
// that keeps failing; artifacts already cached keep serving.
type DegradedError struct {
	Dataset    string
	RetryAfter time.Duration
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("dataset %q degraded after repeated build failures (retry in %v)",
		e.Dataset, e.RetryAfter.Round(time.Millisecond))
}

// Degrader tuning: after degradeThreshold consecutive build failures a
// dataset enters a backoff window starting at degradeBase and doubling
// per further failure up to degradeMax, with jitter (the window's
// upper half is randomized) so shedded clients retrying on the hint
// don't re-synchronize.
const (
	degradeThreshold = 3
	degradeBase      = time.Second
	degradeMax       = time.Minute
)

// degrader tracks consecutive artifact-build failures per dataset and
// the backoff windows they open. A window expiring lets exactly the
// builds that arrive after it through as probes: a success resets the
// dataset, another failure opens a longer window.
type degrader struct {
	mu    sync.Mutex
	state map[string]*degradeState
}

type degradeState struct {
	fails int
	until time.Time // backoff window end; zero = not degraded
}

// check returns a *DegradedError while dataset is inside a backoff
// window, nil otherwise.
func (d *degrader) check(dataset string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state[dataset]
	if st == nil || st.until.IsZero() {
		return nil
	}
	if rem := time.Until(st.until); rem > 0 {
		return &DegradedError{Dataset: dataset, RetryAfter: rem}
	}
	st.until = time.Time{} // window over: let a probe build through
	return nil
}

// fail records one consecutive build failure, opening (or widening)
// the dataset's backoff window once the threshold is crossed.
func (d *degrader) fail(dataset string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == nil {
		d.state = make(map[string]*degradeState)
	}
	st := d.state[dataset]
	if st == nil {
		st = &degradeState{}
		d.state[dataset] = st
	}
	st.fails++
	if st.fails < degradeThreshold {
		return
	}
	shift := st.fails - degradeThreshold
	if shift > 10 {
		shift = 10
	}
	w := degradeBase << shift
	if w > degradeMax {
		w = degradeMax
	}
	w = w/2 + time.Duration(mathrand.Int64N(int64(w/2)+1))
	st.until = time.Now().Add(w)
}

// ok resets a dataset after a successful build.
func (d *degrader) ok(dataset string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st := d.state[dataset]; st != nil {
		st.fails = 0
		st.until = time.Time{}
	}
}

// degraded lists the datasets currently inside a backoff window,
// sorted (for /healthz and the degraded-datasets gauge).
func (d *degrader) degraded() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	now := time.Now()
	for name, st := range d.state {
		if !st.until.IsZero() && st.until.After(now) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
