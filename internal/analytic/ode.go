// Package analytic implements the paper's homogeneous model of path
// explosion (§5.1): the density u_k(t) of nodes holding exactly k
// paths evolves, in the large-population (Kurtz) limit of the Markov
// jump process, according to the ODE system of Proposition 3:
//
//	du_k/dt = λ ( Σ_{i=0..k} u_i·u_{k−i} − u_k )
//
// The package provides a truncated RK4 integrator for that system, the
// closed-form generating function φ_x(t) of Equations (2)/(3), the
// closed-form moments of Equation (4) (mean e^{λt} growth) and the
// variance formula, and a Monte-Carlo simulator of the finite-N jump
// process used to validate the limit.
package analytic

import (
	"errors"
	"fmt"
	"math"
)

// Solution holds snapshots of the state densities u_k over time.
type Solution struct {
	Times []float64
	// U[i][k] is the density of nodes with exactly k paths at Times[i].
	U [][]float64
}

// MeanPaths returns E[S(t)] = Σ k·u_k at snapshot i.
func (s *Solution) MeanPaths(i int) float64 {
	var m float64
	for k, u := range s.U[i] {
		m += float64(k) * u
	}
	return m
}

// SecondMoment returns E[S(t)²] = Σ k²·u_k at snapshot i.
func (s *Solution) SecondMoment(i int) float64 {
	var m float64
	for k, u := range s.U[i] {
		m += float64(k) * float64(k) * u
	}
	return m
}

// VariancePaths returns V[S(t)] at snapshot i.
func (s *Solution) VariancePaths(i int) float64 {
	m := s.MeanPaths(i)
	return s.SecondMoment(i) - m*m
}

// TotalMass returns Σ_k u_k at snapshot i; exactly 1 for the infinite
// system, slightly below 1 under truncation once mass escapes past K.
func (s *Solution) TotalMass(i int) float64 {
	var m float64
	for _, u := range s.U[i] {
		m += u
	}
	return m
}

// ODEConfig parametrizes the truncated integrator.
type ODEConfig struct {
	Lambda    float64 // homogeneous contact rate λ
	K         int     // truncation: states 0..K are tracked
	Step      float64 // RK4 time step
	TMax      float64 // integration horizon
	Snapshots int     // number of evenly spaced snapshots (≥ 2)
}

func (c ODEConfig) validate() error {
	switch {
	case c.Lambda <= 0:
		return fmt.Errorf("analytic: lambda %g must be positive", c.Lambda)
	case c.K < 1:
		return fmt.Errorf("analytic: truncation K %d must be >= 1", c.K)
	case c.Step <= 0:
		return fmt.Errorf("analytic: step %g must be positive", c.Step)
	case c.TMax <= 0:
		return fmt.Errorf("analytic: tmax %g must be positive", c.TMax)
	case c.Snapshots < 2:
		return fmt.Errorf("analytic: need >= 2 snapshots, have %d", c.Snapshots)
	}
	return nil
}

// ErrBadInitial reports an unusable initial condition.
var ErrBadInitial = errors.New("analytic: initial condition must be a probability vector")

// SolveODE integrates the truncated Proposition 3 system from the
// initial density u0 (u0[k] = density of nodes with k paths; it must
// sum to ≈1). States above K collapse into an untracked sink, so
// TotalMass decays once the population spreads past K paths.
func SolveODE(u0 []float64, cfg ODEConfig) (*Solution, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(u0) == 0 {
		return nil, ErrBadInitial
	}
	var sum float64
	for _, u := range u0 {
		if u < 0 {
			return nil, ErrBadInitial
		}
		sum += u
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, ErrBadInitial
	}

	n := cfg.K + 1
	u := make([]float64, n)
	copy(u, u0)

	deriv := func(u, du []float64) {
		// du_k = λ( Σ_{i=0..k} u_i u_{k-i} − u_k )
		for k := 0; k < n; k++ {
			conv := 0.0
			for i := 0; i <= k; i++ {
				conv += u[i] * u[k-i]
			}
			du[k] = cfg.Lambda * (conv - u[k])
		}
	}

	sol := &Solution{}
	snapEvery := cfg.TMax / float64(cfg.Snapshots-1)
	nextSnap := 0.0
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)

	record := func(t float64) {
		snap := make([]float64, n)
		copy(snap, u)
		sol.Times = append(sol.Times, t)
		sol.U = append(sol.U, snap)
	}

	for t := 0.0; ; {
		if t >= nextSnap-1e-12 {
			record(t)
			nextSnap += snapEvery
			if len(sol.Times) >= cfg.Snapshots {
				break
			}
		}
		h := cfg.Step
		if t+h > cfg.TMax {
			h = cfg.TMax - t
			if h <= 0 {
				record(cfg.TMax)
				break
			}
		}
		deriv(u, k1)
		for i := range tmp {
			tmp[i] = u[i] + h/2*k1[i]
		}
		deriv(tmp, k2)
		for i := range tmp {
			tmp[i] = u[i] + h/2*k2[i]
		}
		deriv(tmp, k3)
		for i := range tmp {
			tmp[i] = u[i] + h*k3[i]
		}
		deriv(tmp, k4)
		for i := range u {
			u[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			if u[i] < 0 {
				u[i] = 0 // clamp numerical noise
			}
		}
		t += h
	}
	return sol, nil
}

// SourceInitial returns the paper's initial condition for a population
// of n nodes tracked up to K paths: one node (the source) holds one
// path, all others hold none.
func SourceInitial(n, k int) []float64 {
	u0 := make([]float64, k+1)
	u0[0] = 1 - 1/float64(n)
	u0[1] = 1 / float64(n)
	return u0
}

// MeanClosedForm evaluates Equation (4): E[S(t)] = E[S(0)]·e^{λt}.
func MeanClosedForm(mean0, lambda, t float64) float64 {
	return mean0 * math.Exp(lambda*t)
}

// VarianceClosedForm evaluates the §5.1.3 variance formula:
//
//	V[S(t)] = V[S(0)]·e^{λt} + E[S(0)]²·(e^{2λt} − e^{λt})
//
// Note: the paper prints E[S(0)] (unsquared) in the second term, but
// expanding its own second-moment expression
// E[S(t)²] = (E[S(0)²] + 2(e^{λt}−1)·E[S(0)]²)·e^{λt} yields the
// squared coefficient; the truncated-ODE integrator confirms the
// squared form numerically (see TestODESecondMomentMatchesClosedForm).
func VarianceClosedForm(mean0, var0, lambda, t float64) float64 {
	e := math.Exp(lambda * t)
	return var0*e + mean0*mean0*(e*e-e)
}

// Phi evaluates the closed-form generating function φ_x(t) from its
// initial value φ_x(0), using Equation (2) when φ_x(0) < 1 and
// Equation (3) when φ_x(0) > 1. At φ_x(0) = 1 the function is
// constant. Equation (3) diverges at the critical time returned by
// CriticalTime; beyond it Phi returns +Inf.
func Phi(phi0, lambda, t float64) float64 {
	e := math.Exp(lambda * t)
	switch {
	case phi0 == 1:
		return 1
	case phi0 < 1:
		return phi0 / (phi0 + (1-phi0)*e)
	default:
		den := phi0 - (phi0-1)*e
		if den <= 0 {
			return math.Inf(1)
		}
		return phi0 / den
	}
}

// CriticalTime returns the finite time at which φ_x(t) diverges for an
// initial value φ_x(0) > 1: T_C = (1/λ)·ln(φ₀/(φ₀−1)). It returns +Inf
// for φ_x(0) <= 1 (no divergence): light tails are lost in finite time
// only when x > 1.
func CriticalTime(phi0, lambda float64) float64 {
	if phi0 <= 1 {
		return math.Inf(1)
	}
	return math.Log(phi0/(phi0-1)) / lambda
}

// PhiAtZero computes φ_x(0) = Σ_k x^k·u_k(0) for an initial density.
func PhiAtZero(u0 []float64, x float64) float64 {
	var phi, xk float64
	xk = 1
	for _, u := range u0 {
		phi += xk * u
		xk *= x
	}
	return phi
}

// HittingTime returns the paper's H: the expected time at which the
// mean number of paths per node reaches one, ln(N)/λ for the
// homogeneous model with E[S(0)] = 1/N.
func HittingTime(n int, lambda float64) float64 {
	return math.Log(float64(n)) / lambda
}
