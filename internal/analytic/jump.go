package analytic

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file simulates the finite-N Markov jump process of §5.1.2
// directly, validating the Kurtz-limit ODE: each node carries a path
// count S_n; contact opportunities arrive as Poisson processes; on a
// contact of xn with xm, S_m ← S_m + S_n.

// JumpConfig parametrizes the homogeneous jump-process simulator.
type JumpConfig struct {
	N         int     // population size
	Lambda    float64 // per-node contact opportunity rate
	TMax      float64 // simulated horizon
	Snapshots int     // number of evenly spaced snapshots (>= 2)
	MaxState  int     // path counts above MaxState collapse into the top bucket
	Seed      int64
}

func (c JumpConfig) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("analytic: jump process needs N >= 2, have %d", c.N)
	case c.Lambda <= 0:
		return fmt.Errorf("analytic: lambda %g must be positive", c.Lambda)
	case c.TMax <= 0:
		return fmt.Errorf("analytic: tmax %g must be positive", c.TMax)
	case c.Snapshots < 2:
		return fmt.Errorf("analytic: need >= 2 snapshots")
	case c.MaxState < 1:
		return fmt.Errorf("analytic: max state %d must be >= 1", c.MaxState)
	}
	return nil
}

// SimulateJump runs the homogeneous jump process from the paper's
// initial condition (one source node with a single path) and returns
// empirical densities U(t)/N at the snapshot times. Path counts are
// capped at MaxState to keep the state finite; the cap only matters
// after the explosion has saturated the population.
func SimulateJump(cfg JumpConfig) (*Solution, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := make([]uint64, cfg.N)
	s[0] = 1

	sol := &Solution{}
	snapEvery := cfg.TMax / float64(cfg.Snapshots-1)
	nextSnap := 0.0
	record := func(t float64) {
		u := make([]float64, cfg.MaxState+1)
		for _, v := range s {
			k := v
			if k > uint64(cfg.MaxState) {
				k = uint64(cfg.MaxState)
			}
			u[k] += 1 / float64(cfg.N)
		}
		sol.Times = append(sol.Times, t)
		sol.U = append(sol.U, u)
	}

	// Aggregate event rate: each of the N nodes initiates contact
	// opportunities at rate λ.
	totalRate := float64(cfg.N) * cfg.Lambda
	t := 0.0
	for {
		for t >= nextSnap-1e-12 {
			record(nextSnap)
			nextSnap += snapEvery
			if len(sol.Times) >= cfg.Snapshots {
				return sol, nil
			}
		}
		t += rng.ExpFloat64() / totalRate
		if t > cfg.TMax {
			for len(sol.Times) < cfg.Snapshots {
				record(nextSnap)
				nextSnap += snapEvery
			}
			return sol, nil
		}
		from := rng.Intn(cfg.N)
		to := rng.Intn(cfg.N - 1)
		if to >= from {
			to++
		}
		sum := s[to] + s[from]
		if sum < s[to] { // overflow guard
			sum = ^uint64(0)
		}
		s[to] = sum
	}
}

// SubsetGrowth records, for one rate class, the mean log-number of
// paths held by nodes of that class over time.
type SubsetGrowth struct {
	Times []float64
	// MeanPaths[c][i] is the mean path count of class c at Times[i]
	// (capped at MaxState).
	MeanPaths [][]float64
	// Rates[c] is the representative contact rate of class c.
	Rates []float64
}

// HeterogeneousConfig parametrizes the inhomogeneous jump process of
// §5.2: node n initiates contacts at rate rates[n], and the contacted
// peer is chosen with probability proportional to its rate (the same
// product form as the trace generator).
type HeterogeneousConfig struct {
	Rates     []float64 // per-node contact rates
	TMax      float64
	Snapshots int
	MaxState  float64 // cap on tracked path counts (as float; counts grow fast)
	Seed      int64
	Source    int // index of the node holding the initial path
}

// SimulateHeterogeneous runs the inhomogeneous jump process and
// reports the mean path count over time for each quartile of the rate
// distribution (class 0 = lowest-rate quartile). This exhibits the
// paper's subset path explosion: the growth rate of paths within a
// class tracks the class's contact rate, so high-rate nodes explode
// first.
func SimulateHeterogeneous(cfg HeterogeneousConfig) (*SubsetGrowth, error) {
	n := len(cfg.Rates)
	if n < 4 {
		return nil, fmt.Errorf("analytic: heterogeneous process needs >= 4 nodes, have %d", n)
	}
	if cfg.TMax <= 0 || cfg.Snapshots < 2 {
		return nil, fmt.Errorf("analytic: bad tmax %g or snapshots %d", cfg.TMax, cfg.Snapshots)
	}
	if cfg.MaxState <= 0 {
		return nil, fmt.Errorf("analytic: max state %g must be positive", cfg.MaxState)
	}
	if cfg.Source < 0 || cfg.Source >= n {
		return nil, fmt.Errorf("analytic: source %d out of range", cfg.Source)
	}
	var totalRate float64
	for i, r := range cfg.Rates {
		if r < 0 {
			return nil, fmt.Errorf("analytic: negative rate at %d", i)
		}
		totalRate += r
	}
	if totalRate == 0 {
		return nil, fmt.Errorf("analytic: all rates are zero")
	}

	// Quartile classes by rate.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cfg.Rates[order[a]] < cfg.Rates[order[b]] })
	class := make([]int, n)
	classRateSum := make([]float64, 4)
	classSize := make([]int, 4)
	for pos, node := range order {
		c := pos * 4 / n
		if c > 3 {
			c = 3
		}
		class[node] = c
		classRateSum[c] += cfg.Rates[node]
		classSize[c]++
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	s := make([]float64, n)
	s[cfg.Source] = 1

	out := &SubsetGrowth{
		MeanPaths: make([][]float64, 4),
		Rates:     make([]float64, 4),
	}
	for c := 0; c < 4; c++ {
		if classSize[c] > 0 {
			out.Rates[c] = classRateSum[c] / float64(classSize[c])
		}
	}

	record := func(t float64) {
		out.Times = append(out.Times, t)
		sums := make([]float64, 4)
		for i, v := range s {
			sums[class[i]] += v
		}
		for c := 0; c < 4; c++ {
			mean := 0.0
			if classSize[c] > 0 {
				mean = sums[c] / float64(classSize[c])
			}
			out.MeanPaths[c] = append(out.MeanPaths[c], mean)
		}
	}

	// Weighted peer selection via cumulative rates.
	cum := make([]float64, n)
	acc := 0.0
	for i, r := range cfg.Rates {
		acc += r
		cum[i] = acc
	}
	pick := func() int {
		x := rng.Float64() * totalRate
		return sort.SearchFloat64s(cum, x)
	}

	snapEvery := cfg.TMax / float64(cfg.Snapshots-1)
	nextSnap := 0.0
	t := 0.0
	for {
		for t >= nextSnap-1e-12 {
			record(nextSnap)
			nextSnap += snapEvery
			if len(out.Times) >= cfg.Snapshots {
				return out, nil
			}
		}
		t += rng.ExpFloat64() / totalRate
		if t > cfg.TMax {
			for len(out.Times) < cfg.Snapshots {
				record(nextSnap)
				nextSnap += snapEvery
			}
			return out, nil
		}
		from := pick()
		to := pick()
		if from == to {
			continue
		}
		s[to] += s[from]
		if s[to] > cfg.MaxState {
			s[to] = cfg.MaxState
		}
	}
}
