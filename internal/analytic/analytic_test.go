package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceInitial(t *testing.T) {
	u0 := SourceInitial(100, 10)
	if len(u0) != 11 {
		t.Fatalf("len = %d, want 11", len(u0))
	}
	if u0[1] != 0.01 || math.Abs(u0[0]-0.99) > 1e-12 {
		t.Errorf("u0 = %v", u0[:2])
	}
	sum := 0.0
	for _, u := range u0 {
		sum += u
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("mass = %g", sum)
	}
}

func TestSolveODEValidation(t *testing.T) {
	good := ODEConfig{Lambda: 0.1, K: 5, Step: 0.1, TMax: 1, Snapshots: 2}
	u0 := SourceInitial(10, 5)
	for _, tc := range []struct {
		name   string
		mutate func(*ODEConfig)
	}{
		{"lambda", func(c *ODEConfig) { c.Lambda = 0 }},
		{"K", func(c *ODEConfig) { c.K = 0 }},
		{"step", func(c *ODEConfig) { c.Step = 0 }},
		{"tmax", func(c *ODEConfig) { c.TMax = 0 }},
		{"snapshots", func(c *ODEConfig) { c.Snapshots = 1 }},
	} {
		cfg := good
		tc.mutate(&cfg)
		if _, err := SolveODE(u0, cfg); err == nil {
			t.Errorf("%s: bad config accepted", tc.name)
		}
	}
	if _, err := SolveODE(nil, good); err == nil {
		t.Errorf("empty initial accepted")
	}
	if _, err := SolveODE([]float64{0.5, 0.4}, good); err == nil {
		t.Errorf("non-normalized initial accepted")
	}
	if _, err := SolveODE([]float64{1.5, -0.5}, good); err == nil {
		t.Errorf("negative initial accepted")
	}
}

// The integrator must reproduce the closed-form mean growth
// E[S(t)] = E[S(0)]·e^{λt} (Equation 4) while mass stays within the
// truncation.
func TestODEMeanMatchesClosedForm(t *testing.T) {
	const (
		n      = 100
		lambda = 0.5
		tmax   = 6.0 // e^{0.5·6}/100 ≈ 0.2 paths per node: well below K
	)
	u0 := SourceInitial(n, 60)
	sol, err := SolveODE(u0, ODEConfig{Lambda: lambda, K: 60, Step: 0.01, TMax: tmax, Snapshots: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Times) != 7 {
		t.Fatalf("snapshots = %d, want 7", len(sol.Times))
	}
	for i, tt := range sol.Times {
		want := MeanClosedForm(1.0/n, lambda, tt)
		got := sol.MeanPaths(i)
		if rel := math.Abs(got-want) / want; rel > 0.02 {
			t.Errorf("t=%g: mean = %g, closed form %g (rel err %g)", tt, got, want, rel)
		}
	}
}

func TestODESecondMomentMatchesClosedForm(t *testing.T) {
	const (
		n      = 200
		lambda = 0.4
		tmax   = 6.0
	)
	u0 := SourceInitial(n, 80)
	sol, err := SolveODE(u0, ODEConfig{Lambda: lambda, K: 80, Step: 0.01, TMax: tmax, Snapshots: 4})
	if err != nil {
		t.Fatal(err)
	}
	mean0 := 1.0 / n
	for i, tt := range sol.Times {
		if tt == 0 {
			continue
		}
		wantVar := VarianceClosedForm(mean0, mean0-mean0*mean0, lambda, tt)
		gotVar := sol.VariancePaths(i)
		if rel := math.Abs(gotVar-wantVar) / wantVar; rel > 0.05 {
			t.Errorf("t=%g: variance = %g, closed form %g (rel err %g)", tt, gotVar, wantVar, rel)
		}
	}
}

// Mass is conserved (Σu_k = 1) while the population remains within the
// truncation window.
func TestODEMassConservation(t *testing.T) {
	u0 := SourceInitial(50, 40)
	sol, err := SolveODE(u0, ODEConfig{Lambda: 1, K: 40, Step: 0.005, TMax: 3, Snapshots: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sol.Times {
		if m := sol.TotalMass(i); math.Abs(m-1) > 1e-3 {
			t.Errorf("t=%g: mass = %g", sol.Times[i], m)
		}
	}
}

func TestPhiClosedForm(t *testing.T) {
	// φ constant at 1.
	if got := Phi(1, 0.5, 3); got != 1 {
		t.Errorf("Phi(1) = %g, want 1", got)
	}
	// φ < 1 decays toward 0.
	p1 := Phi(0.9, 0.5, 1)
	p2 := Phi(0.9, 0.5, 5)
	if !(p2 < p1 && p1 < 0.9) {
		t.Errorf("phi<1 should decay: %g, %g", p1, p2)
	}
	// φ > 1 grows and diverges at the critical time.
	tc := CriticalTime(1.2, 0.5)
	if math.IsInf(tc, 1) {
		t.Fatalf("critical time should be finite")
	}
	before := Phi(1.2, 0.5, tc*0.99)
	if math.IsInf(before, 1) || before <= 1.2 {
		t.Errorf("phi before critical time = %g", before)
	}
	after := Phi(1.2, 0.5, tc*1.01)
	if !math.IsInf(after, 1) {
		t.Errorf("phi after critical time = %g, want +Inf", after)
	}
}

func TestCriticalTimeBelowOne(t *testing.T) {
	if !math.IsInf(CriticalTime(0.9, 1), 1) {
		t.Errorf("critical time for phi0 <= 1 should be +Inf")
	}
	if !math.IsInf(CriticalTime(1, 1), 1) {
		t.Errorf("critical time for phi0 == 1 should be +Inf")
	}
}

// The ODE solution's generating function must track the closed form:
// φ_x(t) computed from the integrated densities matches Equation (2).
func TestODEGeneratingFunctionMatchesPhi(t *testing.T) {
	const (
		n      = 100
		lambda = 0.5
		x      = 0.7
	)
	u0 := SourceInitial(n, 60)
	sol, err := SolveODE(u0, ODEConfig{Lambda: lambda, K: 60, Step: 0.01, TMax: 5, Snapshots: 6})
	if err != nil {
		t.Fatal(err)
	}
	phi0 := PhiAtZero(u0, x)
	for i, tt := range sol.Times {
		want := Phi(phi0, lambda, tt)
		got := PhiAtZero(sol.U[i], x)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("t=%g: phi = %g, closed form %g", tt, got, want)
		}
	}
}

func TestPhiAtZero(t *testing.T) {
	u := []float64{0.5, 0.25, 0.25}
	// φ_2(0) = 0.5 + 0.25·2 + 0.25·4 = 2
	if got := PhiAtZero(u, 2); math.Abs(got-2) > 1e-12 {
		t.Errorf("PhiAtZero = %g, want 2", got)
	}
}

func TestHittingTime(t *testing.T) {
	if got, want := HittingTime(100, 0.5), math.Log(100)/0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("HittingTime = %g, want %g", got, want)
	}
}

func TestSimulateJumpValidation(t *testing.T) {
	good := JumpConfig{N: 10, Lambda: 1, TMax: 1, Snapshots: 2, MaxState: 8}
	for _, tc := range []struct {
		name   string
		mutate func(*JumpConfig)
	}{
		{"N", func(c *JumpConfig) { c.N = 1 }},
		{"lambda", func(c *JumpConfig) { c.Lambda = 0 }},
		{"tmax", func(c *JumpConfig) { c.TMax = 0 }},
		{"snapshots", func(c *JumpConfig) { c.Snapshots = 1 }},
		{"maxstate", func(c *JumpConfig) { c.MaxState = 0 }},
	} {
		cfg := good
		tc.mutate(&cfg)
		if _, err := SimulateJump(cfg); err == nil {
			t.Errorf("%s: bad config accepted", tc.name)
		}
	}
}

// The finite-N jump process mean must track Equation (4) within Monte
// Carlo error (averaged over several seeds).
func TestJumpProcessMatchesClosedForm(t *testing.T) {
	const (
		n      = 2000
		lambda = 0.5
		tmax   = 8.0
	)
	var meanAtEnd float64
	const runs = 5
	for seed := int64(0); seed < runs; seed++ {
		sol, err := SimulateJump(JumpConfig{
			N: n, Lambda: lambda, TMax: tmax, Snapshots: 3, MaxState: 4096, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		meanAtEnd += sol.MeanPaths(len(sol.Times) - 1)
	}
	meanAtEnd /= runs
	want := MeanClosedForm(1.0/n, lambda, tmax)
	if rel := math.Abs(meanAtEnd-want) / want; rel > 0.5 {
		t.Errorf("jump mean = %g, closed form %g (rel err %g)", meanAtEnd, want, rel)
	}
}

// Densities from the jump process are probability vectors.
func TestJumpDensityProperty(t *testing.T) {
	f := func(seed int64) bool {
		sol, err := SimulateJump(JumpConfig{
			N: 50, Lambda: 1, TMax: 2, Snapshots: 3, MaxState: 64, Seed: seed,
		})
		if err != nil {
			return false
		}
		for i := range sol.Times {
			sum := 0.0
			for _, u := range sol.U[i] {
				if u < 0 {
					return false
				}
				sum += u
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSimulateHeterogeneousValidation(t *testing.T) {
	rates := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	good := HeterogeneousConfig{Rates: rates, TMax: 1, Snapshots: 2, MaxState: 100}
	if _, err := SimulateHeterogeneous(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		cfg  HeterogeneousConfig
	}{
		{"few nodes", HeterogeneousConfig{Rates: []float64{1, 2}, TMax: 1, Snapshots: 2, MaxState: 10}},
		{"tmax", HeterogeneousConfig{Rates: rates, TMax: 0, Snapshots: 2, MaxState: 10}},
		{"snapshots", HeterogeneousConfig{Rates: rates, TMax: 1, Snapshots: 1, MaxState: 10}},
		{"maxstate", HeterogeneousConfig{Rates: rates, TMax: 1, Snapshots: 2, MaxState: 0}},
		{"source", HeterogeneousConfig{Rates: rates, TMax: 1, Snapshots: 2, MaxState: 10, Source: 99}},
		{"negative rate", HeterogeneousConfig{Rates: []float64{1, -1, 2, 3}, TMax: 1, Snapshots: 2, MaxState: 10}},
		{"zero rates", HeterogeneousConfig{Rates: []float64{0, 0, 0, 0}, TMax: 1, Snapshots: 2, MaxState: 10}},
	} {
		if _, err := SimulateHeterogeneous(tc.cfg); err == nil {
			t.Errorf("%s: bad config accepted", tc.name)
		}
	}
}

// Subset explosion (§5.2): the top rate quartile accumulates paths
// faster than the bottom quartile.
func TestSubsetExplosionOrdering(t *testing.T) {
	rates := make([]float64, 80)
	for i := range rates {
		rates[i] = 0.05 * float64(i+1) / 80 // uniform-ish (0, 0.05]
	}
	sg, err := SimulateHeterogeneous(HeterogeneousConfig{
		Rates: rates, TMax: 600, Snapshots: 4, MaxState: 1e12, Seed: 3, Source: 79,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := len(sg.Times) - 1
	top := sg.MeanPaths[3][last]
	bottom := sg.MeanPaths[0][last]
	if top <= bottom {
		t.Errorf("top quartile mean %g should exceed bottom %g", top, bottom)
	}
	if sg.Rates[3] <= sg.Rates[0] {
		t.Errorf("class rates not ordered: %v", sg.Rates)
	}
}
