package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire("anything"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if err := in.FireCancel("anything", nil); err != nil {
		t.Fatalf("nil injector FireCancel fired: %v", err)
	}
}

func TestUnarmedPointIsInert(t *testing.T) {
	in := New()
	in.Set("other", Fault{Err: ErrInjected})
	if err := in.Fire("this"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestErrFaultAndCount(t *testing.T) {
	in := New()
	in.Set("p", Fault{Err: ErrInjected, Count: 2})
	for i := 0; i < 2; i++ {
		err := in.Fire("p")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: err = %v, want ErrInjected", i, err)
		}
		if !strings.Contains(err.Error(), "p:") {
			t.Errorf("firing %d: error %q does not name the point", i, err)
		}
	}
	if err := in.Fire("p"); err != nil {
		t.Fatalf("point fired past its count: %v", err)
	}
}

func TestClearDisarms(t *testing.T) {
	in := New()
	in.Set("p", Fault{Err: ErrInjected})
	in.Clear("p")
	if err := in.Fire("p"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	in := New()
	in.Set("p", Fault{Panic: "boom"})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic fault did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "p") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic value %v does not carry point and message", r)
		}
	}()
	in.Fire("p")
}

func TestDelayFault(t *testing.T) {
	in := New()
	in.Set("p", Fault{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Fire("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delay fault slept only %v", d)
	}
}

// A fired cancellation token cuts the delay short, and the point
// reports the cancellation instead of its own outcome — the same shape
// a slow real stage under a request deadline has.
func TestDelayFaultCancellable(t *testing.T) {
	in := New()
	in.Set("p", Fault{Delay: time.Hour, Err: ErrInjected})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := engine.NewCancel(ctx, 0)
	start := time.Now()
	err := in.FireCancel("p", &cc)
	if !engine.IsCanceled(err) {
		t.Fatalf("err = %v, want CanceledError", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelled delay still slept %v", d)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("a:err*1, b:corrupt, c:delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Fire("a"); !errors.Is(err, ErrInjected) {
		t.Errorf("a: %v, want ErrInjected", err)
	}
	if err := in.Fire("a"); err != nil {
		t.Errorf("a past *1 count: %v", err)
	}
	if err := in.Fire("b"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("b: %v, want ErrCorrupt", err)
	}
	if err := in.Fire("c"); err != nil {
		t.Errorf("c (delay only): %v", err)
	}

	if in, err := Parse("  "); err != nil || in != nil {
		t.Errorf("blank spec: in=%v err=%v, want nil,nil", in, err)
	}
	for _, bad := range []string{
		"noaction",
		"p:",
		":err",
		"p:frobnicate",
		"p:delay=xyz",
		"p:err*0",
		"p:err*x",
		"p:err*",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
