// Package faultinject is the fault-injection layer behind the serving
// stack's chaos tests and the psn-serve -inject flag: named injection
// points scattered through the request path (artifact loads and
// builds, compute stages, handlers) consult an Injector that is nil in
// production, so every point costs one pointer check unless faults are
// explicitly armed — the same nil-inert discipline as obs.Trace.
//
// A point fires at most its configured count of times (unlimited by
// default), and each firing can return an error, panic, sleep, or any
// combination — enough to simulate corrupt artifacts, failing builds,
// slow stages and crashing handlers without touching the code under
// test.
package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
)

// ErrInjected is the error an `err` fault returns from Fire. Callers
// under test treat it like any other failure of the faulted operation.
var ErrInjected = errors.New("faultinject: injected error")

// ErrCorrupt is the error a `corrupt` fault returns: injection points
// guarding artifact reads use it to simulate a damaged file, and the
// serving layer routes it through the same quarantine/degraded paths a
// real artstore.ErrCorrupt would take.
var ErrCorrupt = errors.New("faultinject: injected corruption")

// Fault describes what happens when an armed point fires. Zero fields
// are inert; non-zero ones all apply, in order: Delay first, then
// Panic, then Err.
type Fault struct {
	Err   error         // returned from Fire
	Panic string        // panic raised with this message
	Delay time.Duration // sleep before panicking/returning
	Count int           // firings before the point disarms; 0 = unlimited
}

// Injector holds the armed faults of one test or process. A nil
// *Injector is fully inert: every Fire returns nil immediately. The
// zero value is ready to use, and all methods are safe for concurrent
// callers.
type Injector struct {
	mu     sync.Mutex
	points map[string]*pointState
}

type pointState struct {
	fault Fault
	left  int // remaining firings; -1 = unlimited
}

// New returns an empty Injector.
func New() *Injector { return &Injector{} }

// Set arms (or re-arms) point with f.
func (in *Injector) Set(point string, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.points == nil {
		in.points = make(map[string]*pointState)
	}
	left := -1
	if f.Count > 0 {
		left = f.Count
	}
	in.points[point] = &pointState{fault: f, left: left}
}

// Clear disarms point.
func (in *Injector) Clear(point string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.points, point)
}

// take consumes one firing of point, reporting whether it fired.
func (in *Injector) take(point string) (Fault, bool) {
	if in == nil {
		return Fault{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.points[point]
	if st == nil || st.left == 0 {
		return Fault{}, false
	}
	if st.left > 0 {
		st.left--
	}
	return st.fault, true
}

// Fire triggers point if armed: sleeps the fault's delay, raises its
// panic, and returns its error. A nil receiver or unarmed point
// returns nil without blocking.
func (in *Injector) Fire(point string) error {
	return in.FireCancel(point, nil)
}

// FireCancel is Fire with the delay made cancellable: a fired cc cuts
// the sleep short and FireCancel returns cc's *engine.CanceledError
// instead of the fault's own outcome — exactly what a slow real stage
// under a request deadline would do.
func (in *Injector) FireCancel(point string, cc *engine.Cancel) error {
	f, ok := in.take(point)
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		if err := sleep(f.Delay, cc); err != nil {
			return err
		}
	}
	if f.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", point, f.Panic))
	}
	if f.Err != nil {
		return fmt.Errorf("%s: %w", point, f.Err)
	}
	return nil
}

// sleep blocks for d or until cc fires, whichever comes first. cc has
// no channel to select on (its deadline is a plain wall-clock value),
// so the wait polls it every few milliseconds — injection points are
// never on a hot path, and the bound on cancellation latency is what
// the chaos tests measure.
func sleep(d time.Duration, cc *engine.Cancel) error {
	deadline := time.Now().Add(d)
	for {
		if err := cc.Err(); err != nil {
			return err
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil
		}
		time.Sleep(min(remaining, 5*time.Millisecond))
	}
}

// Parse builds an Injector from a -inject flag spec: a comma-separated
// list of point:action items, where action is one of
//
//	err          return ErrInjected
//	corrupt      return ErrCorrupt
//	panic        panic
//	delay=DUR    sleep DUR (Go duration syntax, e.g. 50ms)
//
// optionally suffixed *N to disarm after N firings, e.g.
//
//	graph-load:corrupt*1,enumerate:delay=200ms,handler:panic
//
// An empty spec returns a nil (inert) Injector.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := New()
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		point, action, ok := strings.Cut(item, ":")
		if !ok || point == "" || action == "" {
			return nil, fmt.Errorf("faultinject: bad item %q, want point:action", item)
		}
		var f Fault
		if a, countStr, ok := strings.Cut(action, "*"); ok {
			n, err := parseCount(countStr)
			if err != nil {
				return nil, fmt.Errorf("faultinject: %s: %w", item, err)
			}
			f.Count = n
			action = a
		}
		switch {
		case action == "err":
			f.Err = ErrInjected
		case action == "corrupt":
			f.Err = ErrCorrupt
		case action == "panic":
			f.Panic = "injected panic"
		case strings.HasPrefix(action, "delay="):
			d, err := time.ParseDuration(strings.TrimPrefix(action, "delay="))
			if err != nil {
				return nil, fmt.Errorf("faultinject: %s: %w", item, err)
			}
			f.Delay = d
		default:
			return nil, fmt.Errorf("faultinject: unknown action %q in %q", action, item)
		}
		in.Set(point, f)
	}
	return in, nil
}

func parseCount(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, fmt.Errorf("empty count")
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("bad count %q", s)
		}
		n = n*10 + int(r-'0')
	}
	if n == 0 {
		return 0, fmt.Errorf("count must be positive")
	}
	return n, nil
}
