package faultinject

import "net"

// Listener wraps ln so each accepted connection consults the injector
// at point first — the connect-level fault point the fleet chaos tests
// arm to simulate a replica whose process is up but whose connections
// die: a fault with an error (or panic — downgraded to an error here,
// the accept loop must survive) closes the connection immediately, so
// the client sees a reset during its request; a delay fault stalls the
// handshake. A nil injector or unarmed point adds one pointer check
// per accept.
//
// The standard -inject spec addresses it as the "accept" point, e.g.
// `accept:err*3` to reset the first three connections.
func Listener(ln net.Listener, in *Injector, point string) net.Listener {
	if in == nil {
		return ln
	}
	return &faultListener{Listener: ln, in: in, point: point}
}

type faultListener struct {
	net.Listener
	in    *Injector
	point string
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if ferr := l.fire(); ferr != nil {
		conn.Close()
		// Hand the dead connection to the server anyway: net/http
		// discovers the close on first read and drops it, while an error
		// return here would terminate the whole accept loop.
	}
	return conn, nil
}

// fire triggers the point, converting a panic fault into an error —
// a connect-level fault models a broken network path, not a crashed
// acceptor.
func (l *faultListener) fire() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = ErrInjected
		}
	}()
	return l.in.Fire(l.point)
}
