package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pathenum"
	"repro/internal/service"
)

// fleetClient is a dedicated client per test so idle connections can
// be torn down for the goroutine-leak checks.
func fleetClient(t *testing.T) *http.Client {
	t.Helper()
	c := &http.Client{Timeout: 30 * time.Second, Transport: &http.Transport{}}
	t.Cleanup(c.CloseIdleConnections)
	return c
}

func doReq(t *testing.T, c *http.Client, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// primaryFor returns the rendezvous-primary replica of key in f, plus
// any other replica as the expected failover target.
func primaryFor(f *TestFleet, key string) (primary, other *FleetReplica) {
	order := rankBackends(f.Router.backends, key)
	name := f.Router.backends[order[0]].name
	for _, rep := range f.Replicas {
		if rep.Addr == name {
			primary = rep
		} else if other == nil {
			other = rep
		}
	}
	return primary, other
}

// victimBackend returns the router's backend record for a replica.
func victimBackend(f *TestFleet, rep *FleetReplica) *backend {
	for _, b := range f.Router.backends {
		if b.name == rep.Addr {
			return b
		}
	}
	return nil
}

// routedCase is one request in the equivalence and chaos workloads.
type routedCase struct {
	name   string
	method string
	path   string
	body   string
}

// mixedWorkload is the request mix the fleet tests drive: single and
// batch enumerate, simulate in both copy modes, two datasets, plus the
// read-only probe endpoints.
func mixedWorkload(short bool) []routedCase {
	cases := []routedCase{
		{"enumerate_dev", "POST", "/enumerate", `{"dataset":"dev","src":0,"dst":17,"start":0,"k":50}`},
		{"enumerate_dev_batch", "POST", "/enumerate", `{"dataset":"dev","messages":[{"src":1,"dst":9,"start":120},{"src":5,"dst":2,"start":300.5}],"k":40}`},
		{"simulate_dev_replicate", "POST", "/simulate", `{"dataset":"dev","algorithm":"epidemic","runs":2,"seed":1}`},
		{"simulate_dev_relay", "POST", "/simulate", `{"dataset":"dev","algorithm":"epidemic","copyMode":"relay","runs":1,"seed":7}`},
		{"datasets", "GET", "/datasets", ""},
		{"figures", "GET", "/figures", ""},
	}
	if !short {
		cases = append(cases,
			routedCase{"enumerate_infocom", "POST", "/enumerate", `{"dataset":"infocom-3-6","messages":[{"src":25,"dst":60,"start":600}],"k":30}`},
			routedCase{"simulate_infocom_relay", "POST", "/simulate", `{"dataset":"infocom-3-6","algorithm":"epidemic","copyMode":"relay","runs":1,"seed":2}`},
		)
	}
	return cases
}

// referenceBytes computes each case's expected response bytes from a
// standalone single replica — the direct single-replica run the router
// fleet must match byte for byte. (The replica layer's own
// equivalence suite pins these same bytes to direct library calls, so
// the chain router ≡ replica ≡ library is closed.)
func referenceBytes(t *testing.T, cases []routedCase) map[string][]byte {
	t.Helper()
	ref := httptest.NewServer(service.New(service.Config{}).Handler())
	defer ref.Close()
	client := &http.Client{Timeout: 60 * time.Second}
	defer client.CloseIdleConnections()
	want := make(map[string][]byte, len(cases))
	for _, tc := range cases {
		resp, body := func() (*http.Response, []byte) {
			var rd io.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ref.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return resp, b
		}()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference %s: status %d: %s", tc.name, resp.StatusCode, body)
		}
		want[tc.name] = body
	}
	return want
}

// TestRouterServedEquivalence pins the fleet determinism contract:
// every endpoint answers byte-identically through the router as from a
// direct single-replica run (and, for the experiment endpoints, as a
// direct library call) — dev and infocom datasets, both simulate copy
// modes — including under concurrent stress across both replicas.
func TestRouterServedEquivalence(t *testing.T) {
	f, err := StartTestFleet(FleetConfig{Router: Config{HealthInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	client := fleetClient(t)

	cases := mixedWorkload(testing.Short())
	want := referenceBytes(t, cases)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doReq(t, client, tc.method, f.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if !bytes.Equal(body, want[tc.name]) {
				t.Errorf("routed response differs from direct single-replica run\nrouted: %.200s\ndirect: %.200s", body, want[tc.name])
			}
			if resp.Header.Get("X-Psn-Backend") == "" {
				t.Error("routed response missing X-Psn-Backend")
			}
			if id := resp.Header.Get("X-Psn-Request"); !isRequestID(id) {
				t.Errorf("routed response has malformed X-Psn-Request %q", id)
			}
		})
	}

	// Direct library equivalence: the routed /enumerate bytes must equal
	// the library answer computed inside one of the very replicas behind
	// the router (Server.Enumerate is the handler's compute path without
	// any HTTP).
	direct, err := f.Replicas[0].Server.Enumerate("dev",
		[]pathenum.Message{{Src: 0, Dst: 17, Start: 0}}, pathenum.Options{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	directBytes, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	directBytes = append(directBytes, '\n')
	if !bytes.Equal(directBytes, want["enumerate_dev"]) {
		t.Error("direct library enumerate differs from the single-replica reference")
	}

	// Concurrent stress: all cases, several workers, both replicas in
	// play — every response still byte-identical.
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				tc := cases[(w+i)%len(cases)]
				var rd io.Reader
				if tc.body != "" {
					rd = strings.NewReader(tc.body)
				}
				req, _ := http.NewRequest(tc.method, f.URL+tc.path, rd)
				resp, err := client.Do(req)
				if err != nil {
					errc <- fmt.Errorf("worker %d %s: %v", w, tc.name, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("worker %d %s: status %d", w, tc.name, resp.StatusCode)
					continue
				}
				if !bytes.Equal(body, want[tc.name]) {
					errc <- fmt.Errorf("worker %d %s: response bytes diverged under concurrency", w, tc.name)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestRouterShardingAffinity verifies requests for one dataset stick
// to its rendezvous primary while the fleet is healthy.
func TestRouterShardingAffinity(t *testing.T) {
	f, err := StartTestFleet(FleetConfig{Router: Config{HealthInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	client := fleetClient(t)

	primary, _ := primaryFor(f, "dev")
	body := `{"dataset":"dev","src":0,"dst":17,"start":0,"k":50}`
	for i := 0; i < 5; i++ {
		resp, out := doReq(t, client, "POST", f.URL+"/enumerate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, out)
		}
		if got := resp.Header.Get("X-Psn-Backend"); got != primary.Addr {
			t.Fatalf("request %d served by %s, want primary %s", i, got, primary.Addr)
		}
		if resp.Header.Get("X-Psn-Failovers") != "" {
			t.Fatal("healthy fleet reported failovers")
		}
	}
}

// TestRouterFailoverOnKill hard-kills the primary of a dataset with the
// router's health picture stale and asserts the passive path: the
// client still gets 200, byte-identical, with one failover recorded.
func TestRouterFailoverOnKill(t *testing.T) {
	f, err := StartTestFleet(FleetConfig{Router: Config{HealthInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	client := fleetClient(t)

	body := `{"dataset":"dev","src":0,"dst":17,"start":0,"k":50}`
	resp, want := doReq(t, client, "POST", f.URL+"/enumerate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-kill status %d", resp.StatusCode)
	}

	primary, secondary := primaryFor(f, "dev")
	primary.Kill()

	resp, got := doReq(t, client, "POST", f.URL+"/enumerate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("failover response not byte-identical")
	}
	if b := resp.Header.Get("X-Psn-Backend"); b != secondary.Addr {
		t.Errorf("failover served by %s, want secondary %s", b, secondary.Addr)
	}
	if fo := resp.Header.Get("X-Psn-Failovers"); fo != "1" {
		t.Errorf("X-Psn-Failovers = %q, want 1", fo)
	}
	vb := victimBackend(f, primary)
	if vb.failures[failConnect].Load() == 0 {
		t.Error("kill did not register a connect failure on the primary")
	}
}

// TestRouterDrainFailover proves the drain contract end to end: while
// a replica drains through the identical code path cmd/psn-serve runs
// on SIGTERM (healthz 503 "draining", listener closed, in-flight
// requests finishing), its in-flight request completes normally and
// the router routes new requests to the secondary with zero client-
// visible errors.
func TestRouterDrainFailover(t *testing.T) {
	f, err := StartTestFleet(FleetConfig{Router: Config{HealthInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	client := fleetClient(t)

	body := `{"dataset":"dev","src":0,"dst":17,"start":0,"k":50}`
	resp, want := doReq(t, client, "POST", f.URL+"/enumerate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status %d", resp.StatusCode)
	}

	primary, secondary := primaryFor(f, "dev")

	// Park one request inside the primary's handler, then start the
	// drain while it is still running.
	primary.Faults.Set("enumerate", faultinject.Fault{Delay: 600 * time.Millisecond, Count: 1})
	type slowResult struct {
		resp *http.Response
		body []byte
		err  error
	}
	slow := make(chan slowResult, 1)
	go func() {
		req, _ := http.NewRequest("POST", f.URL+"/enumerate", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			slow <- slowResult{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		slow <- slowResult{resp: resp, body: b, err: err}
	}()
	time.Sleep(150 * time.Millisecond) // request parked in the delay fault

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- primary.Drain(ctx)
	}()
	time.Sleep(100 * time.Millisecond) // drain under way: listener closed, request still in flight

	// New requests during the drain: all must succeed on the secondary.
	for i := 0; i < 3; i++ {
		resp, out := doReq(t, client, "POST", f.URL+"/enumerate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d during drain: status %d: %s", i, resp.StatusCode, out)
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("request %d during drain: bytes diverged", i)
		}
		if b := resp.Header.Get("X-Psn-Backend"); b != secondary.Addr {
			t.Fatalf("request %d during drain served by %s, want secondary %s", i, b, secondary.Addr)
		}
	}

	// The in-flight request finished normally on the draining primary.
	sr := <-slow
	if sr.err != nil {
		t.Fatalf("in-flight request during drain: %v", sr.err)
	}
	if sr.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", sr.resp.StatusCode, sr.body)
	}
	if !bytes.Equal(sr.body, want) {
		t.Error("in-flight drained response not byte-identical")
	}
	if b := sr.resp.Header.Get("X-Psn-Backend"); b != primary.Addr {
		t.Errorf("in-flight request served by %s, want draining primary %s", b, primary.Addr)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestRouterHealthzAggregation walks the fleet /healthz verdicts: ok
// with every replica healthy, degraded with one down, down (503) with
// all down, draining (503) when the router itself drains.
func TestRouterHealthzAggregation(t *testing.T) {
	f, err := StartTestFleet(FleetConfig{Router: Config{HealthInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	client := fleetClient(t)

	check := func(wantStatus string, wantCode int) {
		t.Helper()
		resp, body := doReq(t, client, "GET", f.URL+"/healthz", "")
		if resp.StatusCode != wantCode {
			t.Fatalf("/healthz code %d, want %d (%s)", resp.StatusCode, wantCode, body)
		}
		var fh FleetHealth
		if err := json.Unmarshal(body, &fh); err != nil {
			t.Fatal(err)
		}
		if fh.Status != wantStatus {
			t.Fatalf("/healthz status %q, want %q (%s)", fh.Status, wantStatus, body)
		}
		if len(fh.Backends) != len(f.Replicas) {
			t.Fatalf("/healthz lists %d backends, want %d", len(fh.Backends), len(f.Replicas))
		}
	}

	check("ok", http.StatusOK)

	f.Replicas[0].Kill()
	f.Router.CheckNow()
	check("degraded", http.StatusOK)

	f.Replicas[1].Kill()
	f.Router.CheckNow()
	check("down", http.StatusServiceUnavailable)

	if err := f.Replicas[0].Restart(); err != nil {
		t.Fatal(err)
	}
	if err := f.Replicas[1].Restart(); err != nil {
		t.Fatal(err)
	}
	f.Router.CheckNow()
	check("ok", http.StatusOK)

	f.Router.SetDraining(true)
	check("draining", http.StatusServiceUnavailable)
	f.Router.SetDraining(false)
}

// TestDeadlinePropagation verifies the router hands its remaining
// request budget downstream: the X-Psn-Deadline-Ms header arrives at
// the backend, positive and within the router's own budget.
func TestDeadlinePropagation(t *testing.T) {
	gotMs := make(chan int64, 1)
	be := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ms, _ := strconv.ParseInt(r.Header.Get("X-Psn-Deadline-Ms"), 10, 64)
		select {
		case gotMs <- ms:
		default:
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer be.Close()

	rt, err := New(Config{
		Backends:       []string{strings.TrimPrefix(be.URL, "http://")},
		HealthInterval: -1,
		RequestTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ms := <-gotMs
	if ms <= 0 || ms > 400 {
		t.Fatalf("X-Psn-Deadline-Ms = %d, want in (0, 400]", ms)
	}
}

// TestRouterDeadlineEndToEnd arms slow faults on every replica and
// asserts the deadline machinery bounds the damage: with compute that
// would take over 2s, the client gets its 503 in well under a second
// because the propagated deadline fires the replicas' cooperative
// cancellation (and the router's own deadline backstops it).
func TestRouterDeadlineEndToEnd(t *testing.T) {
	f, err := StartTestFleet(FleetConfig{
		Router: Config{HealthInterval: -1, RequestTimeout: 300 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	client := fleetClient(t)

	// Warm both replicas first so only the armed delay is slow.
	body := `{"dataset":"dev","src":0,"dst":17,"start":0,"k":50}`
	doReq(t, client, "POST", f.URL+"/enumerate", body)

	for _, rep := range f.Replicas {
		rep.Faults.Set("enumerate", faultinject.Fault{Delay: 2 * time.Second})
	}
	t0 := time.Now()
	resp, out := doReq(t, client, "POST", f.URL+"/enumerate",
		`{"dataset":"dev","src":1,"dst":5,"start":0,"k":50}`)
	elapsed := time.Since(t0)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("deadline 503 missing Retry-After")
	}
	if elapsed > time.Second {
		t.Errorf("deadline response took %v, want well under 1s (faults add 2s per try)", elapsed)
	}
	for _, rep := range f.Replicas {
		rep.Faults.Clear("enumerate")
	}
}

// TestRouterBackpressureShed pins the router-tier shed marker: with
// MaxInflight 1 and a parked request, the overflow request is shed
// with 503, Retry-After and X-Psn-Shed: router.
func TestRouterBackpressureShed(t *testing.T) {
	f, err := StartTestFleet(FleetConfig{
		Router: Config{HealthInterval: -1, MaxInflight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	client := fleetClient(t)

	body := `{"dataset":"dev","src":0,"dst":17,"start":0,"k":50}`
	doReq(t, client, "POST", f.URL+"/enumerate", body) // warm

	// Park via the "handler" point: the warm-up above cached the result,
	// so the compute-side "enumerate" point would never fire again.
	primary, _ := primaryFor(f, "dev")
	primary.Faults.Set("handler", faultinject.Fault{Delay: 500 * time.Millisecond, Count: 1})
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		doReq(t, client, "POST", f.URL+"/enumerate", body)
	}()
	time.Sleep(100 * time.Millisecond)

	resp, out := doReq(t, client, "POST", f.URL+"/enumerate", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status %d (%s), want 503", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Psn-Shed"); got != "router" {
		t.Errorf("X-Psn-Shed = %q, want router", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("router shed missing Retry-After")
	}
	<-parked
}

// TestFleetChaos is the fleet-level chaos suite: under a concurrent
// mixed workload, one replica is fault-injected (errors, panics,
// delays) and then hard-killed with the router's health picture stale
// — and the client must never see it: zero client-visible errors,
// every response byte-identical to a direct single-replica run, the
// victim's breaker opens and — after a supervised restart — recovers
// through half-open back to closed, and goroutine counts return to
// baseline.
func TestFleetChaos(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	func() {
		f, err := StartTestFleet(FleetConfig{Router: Config{HealthInterval: -1}})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		client := fleetClient(t)

		cases := mixedWorkload(true) // dev-only mix keeps the chaos phases fast
		want := referenceBytes(t, cases)

		runWorkload := func(phase string, workers, perWorker int) {
			t.Helper()
			var wg sync.WaitGroup
			errc := make(chan error, workers*perWorker)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						tc := cases[(w+i)%len(cases)]
						var rd io.Reader
						if tc.body != "" {
							rd = strings.NewReader(tc.body)
						}
						req, _ := http.NewRequest(tc.method, f.URL+tc.path, rd)
						resp, err := client.Do(req)
						if err != nil {
							errc <- fmt.Errorf("%s worker %d %s: %v", phase, w, tc.name, err)
							return
						}
						body, err := io.ReadAll(resp.Body)
						resp.Body.Close()
						if err != nil {
							errc <- fmt.Errorf("%s worker %d %s: read: %v", phase, w, tc.name, err)
							return
						}
						if resp.StatusCode != http.StatusOK {
							errc <- fmt.Errorf("%s worker %d %s: client-visible status %d: %.120s", phase, w, tc.name, resp.StatusCode, body)
							continue
						}
						if !bytes.Equal(body, want[tc.name]) {
							errc <- fmt.Errorf("%s worker %d %s: bytes differ from single-replica run", phase, w, tc.name)
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		}

		// Phase A: healthy fleet.
		runWorkload("healthy", 4, 6)

		// Phase B: fault-inject the dev primary — errors, a panic, delays
		// — while the workload keeps running. The router must absorb all
		// of it via failover.
		victim, _ := primaryFor(f, "dev")
		vb := victimBackend(f, victim)
		victim.Faults.Set("enumerate", faultinject.Fault{Err: faultinject.ErrInjected, Count: 3})
		victim.Faults.Set("handler", faultinject.Fault{Panic: "chaos", Count: 2})
		victim.Faults.Set("simulate", faultinject.Fault{Delay: 20 * time.Millisecond, Count: 3})
		runWorkload("faulted", 4, 6)

		// Phase C: hard-kill the victim with the health picture stale
		// (HealthInterval is -1 and no CheckNow — the router finds out
		// the passive way). Clients still see nothing.
		victim.Kill()
		runWorkload("killed", 4, 6)
		if vb.failures[failConnect].Load() == 0 {
			t.Error("killed victim registered no connect failures")
		}
		if vb.transitions[breakerOpen].Load() == 0 {
			t.Error("victim breaker never opened under sustained connect failures")
		}

		// Phase D: supervised restart. Expire the breaker window, let the
		// half-open probe through, and verify full recovery: breaker
		// closed, traffic for dev back on its primary, bytes identical.
		if err := victim.Restart(); err != nil {
			t.Fatal(err)
		}
		f.Router.CheckNow()
		vb.mu.Lock()
		if vb.state == breakerOpen {
			vb.openUntil = time.Now().Add(-time.Millisecond)
		}
		vb.mu.Unlock()
		runWorkload("recovered", 2, 6)
		if vb.breakerState() != breakerClosed {
			t.Errorf("victim breaker %s after recovery, want closed", breakerStateNames[vb.breakerState()])
		}
		if vb.transitions[breakerHalfOpen].Load() == 0 {
			t.Error("victim breaker never went half-open on the way back")
		}
		if vb.transitions[breakerClosed].Load() == 0 {
			t.Error("victim breaker never re-closed")
		}

		// The failover machinery genuinely engaged.
		if f.Router.metrics.failovers.Load() == 0 {
			t.Error("chaos run recorded zero failovers")
		}
	}()

	// Goroutine leak check: after tearing the fleet down and closing
	// idle client connections, the count returns to (near) baseline.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= goroutinesBefore+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before chaos, %d after", goroutinesBefore, now)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
