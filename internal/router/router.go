// Package router is the fleet tier in front of psn-serve replicas: a
// thin HTTP reverse proxy that shards experiment requests by dataset
// over a rendezvous hash of the replica set, with a failover replica
// per dataset (replication factor ≥ 2), active health checking on the
// replicas' artifact-aware /healthz, per-backend circuit breakers fed
// by passive request outcomes, a global retry budget, router-level
// backpressure, and client-deadline propagation so replica-side
// cooperative cancellation (engine.Cancel) fires instead of the router
// abandoning sockets.
//
// Every endpoint the replicas serve is idempotent and deterministic —
// the repository's determinism contract makes a served response
// byte-identical to the direct library call — so failover is always
// safe: a request that errored on the primary can be retried verbatim
// on the secondary without visible difference to the client.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	mathrand "math/rand/v2"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config parametrizes a Router.
type Config struct {
	// Backends lists the psn-serve replicas, as base URLs or host:port
	// addresses. At least one is required; replication needs two.
	Backends []string

	// Replication is the number of replicas in each dataset's replica
	// set (primary + failovers). Zero means 2; values beyond the
	// backend count are clamped.
	Replication int

	// HealthInterval is the active health-check period. Zero means 1s;
	// negative disables the background loop (CheckNow still probes on
	// demand — the fleet tests drive health transitions explicitly).
	HealthInterval time.Duration

	// HealthTimeout bounds one health probe. Zero means 1s.
	HealthTimeout time.Duration

	// RequestTimeout bounds one proxied request end to end, across all
	// attempts. The remaining budget is propagated downstream in the
	// X-Psn-Deadline-Ms header so the replica's cooperative
	// cancellation fires before the router gives up on the socket.
	// Zero means 30s; negative disables the router-side deadline.
	RequestTimeout time.Duration

	// PerTryTimeout bounds a single attempt, so a wedged primary costs
	// one try's worth of latency before failover instead of the whole
	// request budget. Zero means 10s; negative disables.
	PerTryTimeout time.Duration

	// MaxAttempts caps dispatches per request: the first attempt plus
	// at most MaxAttempts-1 failovers (each also consuming retry
	// budget). Zero means 2 — primary plus one failover.
	MaxAttempts int

	// MaxInflight bounds concurrently proxied experiment requests;
	// excess requests are shed with 503, Retry-After and an
	// "X-Psn-Shed: router" marker so load reports can tell router
	// backpressure from replica backpressure. Zero means
	// 16×GOMAXPROCS; negative disables.
	MaxInflight int

	// RetryBudgetRatio caps fleet-wide retries as a fraction of
	// completed requests (plus RetryBudgetBurst): when retries would
	// exceed ratio·requests+burst, failover is skipped and the primary's
	// failure is returned — a retry storm must not double a saturated
	// fleet's load. Zero means 0.2; negative disables the budget.
	RetryBudgetRatio float64

	// RetryBudgetBurst is the budget's additive headroom, covering cold
	// starts where few requests have completed. Zero means 10.
	RetryBudgetBurst int

	// Client optionally overrides the HTTP client used for proxied
	// requests and health probes (tests inject one). Per-attempt
	// deadlines ride the request context, so Client.Timeout stays 0.
	Client *http.Client

	// Logger receives backend state-change lines. Nil means
	// slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Replication == 0 {
		c.Replication = 2
	}
	if c.Replication > len(c.Backends) {
		c.Replication = len(c.Backends)
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout == 0 {
		c.HealthTimeout = time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.PerTryTimeout == 0 {
		c.PerTryTimeout = 10 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 2
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 16 * runtime.GOMAXPROCS(0)
	}
	if c.RetryBudgetRatio == 0 {
		c.RetryBudgetRatio = 0.2
	}
	if c.RetryBudgetBurst == 0 {
		c.RetryBudgetBurst = 10
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Router fronts a fleet of psn-serve replicas. Create one with New,
// mount it via Handler, and stop its health loop with Close.
type Router struct {
	cfg      Config
	backends []*backend
	metrics  *routerMetrics
	mux      *http.ServeMux
	sem      chan struct{} // in-flight bound; nil = unlimited

	// Retry budget accounting: completed requests (denominator) and
	// retries spent (numerator), cumulative.
	doneReqs     atomic.Int64
	retriesSpent atomic.Int64

	// Request-ID scheme mirroring the serving layer: random per-router
	// tag in the high bits, a counter below — IDs minted here are
	// propagated downstream and trusted by the replicas.
	idTag uint64
	idSeq atomic.Uint64

	draining atomic.Bool

	stopOnce sync.Once
	stop     chan struct{}
	loopDone chan struct{}

	bufPool sync.Pool // response copy buffers
}

// New builds a Router and, when the health interval is positive,
// starts its background health-check loop (stop it with Close).
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: no backends configured")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:      cfg,
		metrics:  newRouterMetrics(),
		idTag:    mathrand.Uint64() << 32,
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, addr := range cfg.Backends {
		b := newBackend(addr)
		if seen[b.name] {
			return nil, fmt.Errorf("router: duplicate backend %s", b.name)
		}
		seen[b.name] = true
		rt.backends = append(rt.backends, b)
	}
	if cfg.MaxInflight > 0 {
		rt.sem = make(chan struct{}, cfg.MaxInflight)
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /healthz", rt.wrap("healthz", rt.handleHealthz))
	rt.mux.HandleFunc("GET /metrics", rt.wrap("metrics", rt.handleMetrics))
	rt.mux.HandleFunc("GET /datasets", rt.forward("datasets", false))
	rt.mux.HandleFunc("GET /figures", rt.forward("figures", false))
	rt.mux.HandleFunc("GET /figures/{id}/data", rt.forward("figure_data", false))
	rt.mux.HandleFunc("POST /enumerate", rt.forward("enumerate", true))
	rt.mux.HandleFunc("POST /simulate", rt.forward("simulate", true))
	if cfg.HealthInterval > 0 {
		go rt.healthLoop()
	} else {
		close(rt.loopDone)
	}
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the background health loop. It does not close in-flight
// proxied requests.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.loopDone
}

// SetDraining flips the router's /healthz to 503 while its own process
// shuts down, mirroring the replica drain contract.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

// CheckNow runs one synchronous health sweep over every backend —
// startup, tests and the fleet harness use it to observe transitions
// without waiting out the health interval.
func (rt *Router) CheckNow() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			b.checkHealth(rt.cfg.Client, rt.cfg.HealthTimeout)
		}(b)
	}
	wg.Wait()
}

func (rt *Router) healthLoop() {
	defer close(rt.loopDone)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.CheckNow()
		}
	}
}

// candidates orders the backends to try for one request: the dataset's
// replica set (rendezvous order, re-ranked so available, non-degraded,
// warm replicas come first), then — only as a last resort — the
// remaining available backends, so a dataset whose whole replica set
// is down still gets served by a cold replica rather than erroring.
func (rt *Router) candidates(key string) []*backend {
	order := rankBackends(rt.backends, key)
	r := rt.cfg.Replication
	out := make([]*backend, 0, len(order))
	replicas := order[:r]
	// Stable re-rank of the replica set by goodness: insertion sort
	// keeps rendezvous order among equals (primary first).
	out = append(out, rt.backends[replicas[0]])
	for _, idx := range replicas[1:] {
		b := rt.backends[idx]
		g := b.goodness(key)
		pos := len(out)
		for pos > 0 && out[pos-1].goodness(key) < g {
			pos--
		}
		out = append(out, nil)
		copy(out[pos+1:], out[pos:])
		out[pos] = b
	}
	for _, idx := range order[r:] {
		if b := rt.backends[idx]; b.available() {
			out = append(out, b)
		}
	}
	return out
}

// allowRetry consumes one unit of the global retry budget, reporting
// whether the failover may proceed: cumulative retries stay under
// ratio·(completed requests) + burst.
func (rt *Router) allowRetry() bool {
	if rt.cfg.RetryBudgetRatio < 0 {
		return true
	}
	spent := rt.retriesSpent.Load()
	limit := rt.cfg.RetryBudgetRatio*float64(rt.doneReqs.Load()) + float64(rt.cfg.RetryBudgetBurst)
	if float64(spent+1) > limit {
		rt.metrics.budgetExhausted.Add(1)
		return false
	}
	rt.retriesSpent.Add(1)
	return true
}

// wrap is the router's own-endpoint envelope: request/status
// accounting, latency histogram, request ID.
func (rt *Router) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := rt.metrics.histFor(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		rt.metrics.countRequest(endpoint)
		w.Header().Set("X-Psn-Request", rt.requestID(r))
		cw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h(cw, r)
		rt.metrics.countStatus(cw.status())
		hist.Record(time.Since(t0))
	}
}

// requestID reuses a valid inbound X-Psn-Request (a router fleet can be
// layered) or mints a fresh one.
func (rt *Router) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Psn-Request"); isRequestID(id) {
		return id
	}
	return formatRequestID(rt.idTag | rt.idSeq.Add(1)&0xffffffff)
}

// isRequestID reports whether s is a well-formed request ID (16
// lowercase hex digits) — the trust gate before an inbound ID is
// propagated into logs and downstream headers.
func isRequestID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func formatRequestID(id uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = digits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// maxProxyBody mirrors the serving layer's request-body cap: bodies are
// buffered once at the router (they must be replayable for failover),
// so the cap bounds router memory the same way it bounds replica
// memory.
const maxProxyBody = 1 << 20

// datasetOf extracts the dataset field from a JSON request body — the
// shard key. A malformed body returns "", routing to the key-""
// replica set, whose replica will answer 400 with the real parse error.
func datasetOf(body []byte) string {
	var probe struct {
		Dataset string `json:"dataset"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return ""
	}
	return probe.Dataset
}

// forward builds the proxy handler of one experiment endpoint.
// withBody marks the POST endpoints whose JSON body carries the
// dataset shard key; GET endpoints shard on the URL path, which keeps
// figure-data and dataset listings cache-affine to one replica.
func (rt *Router) forward(endpoint string, withBody bool) http.HandlerFunc {
	hist := rt.metrics.histFor(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		rt.metrics.countRequest(endpoint)
		id := rt.requestID(r)
		w.Header().Set("X-Psn-Request", id)
		cw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		defer func() {
			rt.metrics.countStatus(cw.status())
			hist.Record(time.Since(t0))
		}()

		if rt.sem != nil {
			select {
			case rt.sem <- struct{}{}:
				defer func() { <-rt.sem }()
			default:
				rt.metrics.shed.Add(1)
				rt.shed(cw, time.Second, fmt.Errorf("router at capacity (%d requests in flight)", cap(rt.sem)))
				return
			}
		}

		var body []byte
		key := r.URL.Path
		if withBody {
			var err error
			body, err = io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
			if err != nil {
				writeJSONError(cw, http.StatusBadRequest, fmt.Errorf("read request body: %w", err))
				return
			}
			if len(body) > maxProxyBody {
				writeJSONError(cw, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", int64(maxProxyBody)))
				return
			}
			key = datasetOf(body)
		}

		rt.proxy(cw, r, endpoint, id, key, body)
		rt.doneReqs.Add(1)
	}
}

// proxy runs the attempt loop: dispatch to the best candidate, fail
// over on connect error, per-try timeout or 5xx while the per-request
// attempt cap and the global retry budget allow, and relay the first
// definitive response. All endpoints are idempotent (the determinism
// contract), so replaying the buffered body on a failover can never
// produce a different answer — only rescue one.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, endpoint, id, key string, body []byte) {
	deadline := rt.deadlineFor(r)
	cands := rt.candidates(key)

	var lastErr error
	attempts := 0
	for _, b := range cands {
		if attempts >= rt.cfg.MaxAttempts {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		if attempts > 0 && !rt.allowRetry() {
			break
		}
		if !b.acquire() {
			b.ejected.Add(1)
			continue
		}
		attempts++
		if attempts > 1 {
			rt.metrics.failovers.Add(1)
		}

		resp, ctx, cancel, err := rt.dispatch(r, b, endpoint, id, body, deadline)
		reason := classify(err, statusOrZero(resp), ctx)
		b.requests.Add(1)
		if reason < 0 {
			b.successes.Add(1)
			b.report(true)
			rt.relay(w, resp, b, attempts)
			cancel()
			return
		}
		b.failures[reason].Add(1)
		b.report(false)
		if resp != nil {
			// A definitive 5xx is still the best answer we have if no
			// further candidate pans out: keep the last one to relay.
			if attempts >= rt.cfg.MaxAttempts || !rt.moreCandidates(cands, b) {
				rt.relay(w, resp, b, attempts)
				cancel()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("backend %s: status %d", b.name, resp.StatusCode)
			cancel()
			continue
		}
		cancel()
		lastErr = fmt.Errorf("backend %s: %w", b.name, err)
		// The client going away ends the request; retrying for a dead
		// client spends budget for nothing.
		if r.Context().Err() != nil {
			rt.metrics.clientGone.Add(1)
			writeJSONError(w, statusClientClosedRequest, fmt.Errorf("client closed request: %w", err))
			return
		}
	}

	switch {
	case !deadline.IsZero() && !time.Now().Before(deadline):
		rt.metrics.deadlineExceeded.Add(1)
		rt.shed(w, time.Second, fmt.Errorf("request deadline exceeded at router (last error: %v)", lastErr))
	case attempts == 0:
		// Nothing admitted a dispatch: every replica down, draining or
		// breaker-open. Hint the soonest breaker re-probe.
		rt.metrics.noBackend.Add(1)
		ra := time.Second
		for _, b := range cands {
			if h := b.retryAfterHint(); h > 0 && (h < ra || ra == time.Second) {
				ra = h
			}
		}
		rt.shed(w, ra, fmt.Errorf("no available backend for %q (%d configured)", key, len(rt.backends)))
	default:
		rt.metrics.upstreamErrors.Add(1)
		writeJSONError(w, http.StatusBadGateway, fmt.Errorf("all attempts failed: %v", lastErr))
	}
}

// moreCandidates reports whether any candidate after b could still be
// dispatched (attempt cap and budget permitting checked by the caller).
func (rt *Router) moreCandidates(cands []*backend, b *backend) bool {
	for i, c := range cands {
		if c == b {
			return i+1 < len(cands)
		}
	}
	return false
}

// deadlineFor resolves the request's end-to-end deadline: the router's
// RequestTimeout, tightened by the client context's own deadline when
// one is set. Zero means none.
func (rt *Router) deadlineFor(r *http.Request) time.Time {
	var d time.Time
	if rt.cfg.RequestTimeout > 0 {
		d = time.Now().Add(rt.cfg.RequestTimeout)
	}
	if cd, ok := r.Context().Deadline(); ok && (d.IsZero() || cd.Before(d)) {
		d = cd
	}
	return d
}

// dispatch sends one attempt to b, bounded by the per-try timeout and
// the remaining request deadline, with the remaining budget propagated
// in X-Psn-Deadline-Ms so the replica's cooperative cancellation fires
// first. It returns the per-attempt context (so the caller can tell a
// per-try timeout from a connect failure) and its cancel func, which
// the caller MUST invoke — after relaying the response body, not
// before: canceling earlier would sever an in-flight body copy.
func (rt *Router) dispatch(r *http.Request, b *backend, endpoint, id string, body []byte, deadline time.Time) (*http.Response, context.Context, context.CancelFunc, error) {
	tryDeadline := deadline
	if rt.cfg.PerTryTimeout > 0 {
		td := time.Now().Add(rt.cfg.PerTryTimeout)
		if tryDeadline.IsZero() || td.Before(tryDeadline) {
			tryDeadline = td
		}
	}
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if !tryDeadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, tryDeadline)
	}
	var rd io.Reader
	if body != nil {
		rd = newByteReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, b.baseURL+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, ctx, cancel, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
		req.ContentLength = int64(len(body))
	}
	req.Header.Set("X-Psn-Request", id)
	if !deadline.IsZero() {
		// Propagate 90% of the remaining budget: the replica's
		// cooperative cancellation must fire (and its 503 travel back)
		// before the router's own context abandons the socket, or the
		// work is wasted and the client sees a worse error.
		ms := time.Until(deadline).Milliseconds() * 9 / 10
		if ms < 1 {
			ms = 1
		}
		req.Header.Set("X-Psn-Deadline-Ms", strconv.FormatInt(ms, 10))
	}
	resp, err := rt.cfg.Client.Do(req)
	return resp, ctx, cancel, err
}

// relay copies one backend response to the client: headers (the
// request ID is already set and identical — the replica echoes the
// propagated one), the serving backend and failover count, status,
// body.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, b *backend, attempts int) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		if k == "X-Psn-Request" {
			continue
		}
		h[k] = vs
	}
	h.Set("X-Psn-Backend", b.name)
	if attempts > 1 {
		h.Set("X-Psn-Failovers", strconv.Itoa(attempts-1))
	}
	w.WriteHeader(resp.StatusCode)
	buf := rt.getBuf()
	io.CopyBuffer(w, resp.Body, buf)
	rt.bufPool.Put(buf) //nolint:staticcheck // *[]byte not worth it here
}

func (rt *Router) getBuf() []byte {
	if b, ok := rt.bufPool.Get().([]byte); ok {
		return b
	}
	return make([]byte, 32<<10)
}

// shed answers 503 with a Retry-After hint and the router shed marker
// (X-Psn-Shed: router) so load reports can attribute the shed to the
// router tier rather than a replica.
func (rt *Router) shed(w http.ResponseWriter, retryAfter time.Duration, err error) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("X-Psn-Shed", "router")
	writeJSONError(w, http.StatusServiceUnavailable, err)
}

// statusClientClosedRequest mirrors the serving layer's 499 convention.
const statusClientClosedRequest = 499

func statusOrZero(resp *http.Response) int {
	if resp == nil {
		return 0
	}
	return resp.StatusCode
}

func writeJSONError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

// statusWriter records the written status code.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

func (sw *statusWriter) status() int {
	if sw.code == 0 {
		return http.StatusOK
	}
	return sw.code
}

// byteReader is a replayable body reader: bytes.NewReader would do, but
// a local type keeps the hot proxy path free of the bytes package's
// interface checks in escape analysis. It intentionally implements
// io.Reader only — http.NewRequest snapshots seekable bodies via
// GetBody, which failover replaces by rebuilding the request instead.
type byteReader struct {
	b   []byte
	off int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}
