package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	mathrand "math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// Breaker states. A backend's circuit breaker is the passive ejection
// gate: consecutive request failures open it, an expired backoff window
// lets exactly one probe request through (half-open), and the probe's
// outcome closes it or re-opens a wider window — the same
// threshold/backoff/jitter shape as the serving layer's per-dataset
// degrader, applied per backend.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

// Failure reasons for per-backend failure counters.
const (
	failConnect = iota // transport error (dial refused, reset, EOF)
	failTimeout        // per-try deadline expired
	failStatus         // HTTP 5xx from the backend
	numFailReasons
)

var failReasonNames = [numFailReasons]string{"connect", "timeout", "status"}

// backend is one psn-serve replica behind the router: its address, the
// health picture assembled by active /healthz checks, the circuit
// breaker fed by passive per-request outcomes, and traffic counters.
type backend struct {
	baseURL string // normalized, no trailing slash, scheme included
	name    string // host:port, the metrics label and rendezvous identity

	// Health state from active checking, guarded by mu. checked flips
	// true after the first completed probe; until then the backend is
	// routed optimistically (a router booting ahead of its first sweep
	// must not shed everything).
	mu       sync.Mutex
	checked  bool
	healthy  bool            // probe succeeded (HTTP 200 or parseable 503)
	status   string          // replica-reported status: ok, degraded, draining; "down" on probe failure
	warm     map[string]bool // datasets with on-disk artifacts (empty when the replica has no store)
	degraded map[string]bool // datasets in a build-failure backoff window

	// Circuit breaker, guarded by mu.
	state     int
	fails     int       // consecutive request failures while closed
	openUntil time.Time // end of the current open window
	openings  int       // consecutive opens, widens the backoff window
	probing   bool      // a half-open probe request is in flight

	// Traffic counters (atomic; read by /metrics without the lock).
	requests    atomic.Int64
	successes   atomic.Int64
	failures    [numFailReasons]atomic.Int64
	ejected     atomic.Int64    // requests that skipped this backend on an open breaker
	transitions [3]atomic.Int64 // breaker transitions into each state
}

// Breaker tuning: failThreshold consecutive failures open the breaker
// for a window starting at breakerBase and doubling per consecutive
// re-open up to breakerMax, with the window's upper half jittered so a
// fleet of routers doesn't re-probe a recovering replica in lockstep —
// mirroring the serving layer's degraded-dataset backoff shape.
const (
	defaultFailThreshold = 5
	breakerBase          = time.Second
	breakerMax           = time.Minute
)

func newBackend(addr string) *backend {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	name := base
	if i := strings.Index(name, "://"); i >= 0 {
		name = name[i+3:]
	}
	return &backend{baseURL: base, name: name, status: "unknown"}
}

// available reports whether routing should prefer this backend for
// dataset: the last health probe answered (or none completed yet), the
// replica is not draining, and the breaker is not sitting in an open
// window. It is a routing-order hint only — admission is decided by
// acquire at dispatch time.
func (b *backend) available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.checked && (!b.healthy || b.status == "draining") {
		return false
	}
	if b.state == breakerOpen && time.Now().Before(b.openUntil) {
		return false
	}
	return true
}

// goodness ranks a backend for a dataset among its replica set: higher
// is better. Available beats unavailable, non-degraded (for this
// dataset) beats degraded, warm beats cold; rendezvous order breaks
// ties so the primary wins when replicas are equally fit.
func (b *backend) goodness(dataset string) int {
	g := 0
	if b.available() {
		g += 4
	}
	b.mu.Lock()
	if dataset != "" && !b.degraded[dataset] {
		g += 2
	}
	if dataset != "" && b.warm[dataset] {
		g++
	}
	b.mu.Unlock()
	return g
}

// acquire asks the breaker to admit one request. A closed breaker
// admits; an open one inside its window refuses; an open one past its
// window transitions to half-open and admits a single probe (other
// requests keep being refused until the probe reports back).
func (b *backend) acquire() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().Before(b.openUntil) {
			return false
		}
		b.setState(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// report feeds one request outcome into the breaker. Success closes
// half-open breakers and resets the failure streak; failure counts
// toward the threshold and re-opens half-open breakers with a wider
// window.
func (b *backend) report(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.fails = 0
		b.openings = 0
		b.probing = false
		if b.state != breakerClosed {
			b.setState(breakerClosed)
		}
		return
	}
	b.fails++
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		b.open()
	case breakerClosed:
		if b.fails >= defaultFailThreshold {
			b.open()
		}
	}
}

// open (mu held) starts a backoff window: base doubled per consecutive
// opening, capped, upper half jittered.
func (b *backend) open() {
	shift := b.openings
	if shift > 10 {
		shift = 10
	}
	w := breakerBase << shift
	if w > breakerMax {
		w = breakerMax
	}
	w = w/2 + time.Duration(mathrand.Int64N(int64(w/2)+1))
	b.openings++
	b.openUntil = time.Now().Add(w)
	b.setState(breakerOpen)
}

// setState (mu held) records a breaker transition.
func (b *backend) setState(s int) {
	b.state = s
	b.transitions[s].Add(1)
}

// breakerState returns the current breaker state, resolving an expired
// open window as still "open" (the transition to half-open happens on
// the next acquire, not on observation).
func (b *backend) breakerState() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// retryAfterHint returns how long until the breaker would admit a
// probe, for Retry-After hints when every replica is refusing.
func (b *backend) retryAfterHint() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return 0
	}
	return time.Until(b.openUntil)
}

// checkHealth runs one active health probe: GET /healthz with a bounded
// context, parsing the replica's status, per-dataset warm list and
// degraded list. A 503 with a parseable body is still information
// (draining replicas answer 503 with status "draining"); a transport
// error or unparseable body marks the backend down.
func (b *backend) checkHealth(client *http.Client, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.baseURL+"/healthz", nil)
	if err != nil {
		b.setHealth(false, "down", nil, nil)
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		b.setHealth(false, "down", nil, nil)
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		b.setHealth(false, "down", nil, nil)
		return
	}
	var h service.HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		b.setHealth(false, "down", nil, nil)
		return
	}
	warm := make(map[string]bool)
	if h.Artifacts != nil {
		for _, d := range h.Artifacts.Warm {
			warm[d] = true
		}
	}
	degraded := make(map[string]bool, len(h.Degraded))
	for _, d := range h.Degraded {
		degraded[d] = true
	}
	b.setHealth(true, h.Status, warm, degraded)
}

func (b *backend) setHealth(healthy bool, status string, warm, degraded map[string]bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.checked = true
	b.healthy = healthy
	b.status = status
	b.warm = warm
	b.degraded = degraded
}

// snapshotHealth returns the fields /healthz aggregation needs in one
// lock acquisition.
func (b *backend) snapshotHealth() (checked, healthy bool, status string, warm, degraded []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	warm = sortedKeys(b.warm)
	degraded = sortedKeys(b.degraded)
	return b.checked, b.healthy, b.status, warm, degraded
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort: tiny dataset lists
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// classify maps one attempt outcome onto a failure reason, or -1 for
// success (any response below 500 counts: the request reached a live
// replica and got a definitive answer).
func classify(err error, status int, ctx context.Context) int {
	switch {
	case err == nil && status < 500:
		return -1
	case err == nil:
		return failStatus
	case ctx.Err() != nil:
		return failTimeout
	default:
		return failConnect
	}
}

func (b *backend) String() string { return fmt.Sprintf("backend(%s)", b.name) }
