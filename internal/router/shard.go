package router

import (
	"hash/fnv"
	"sort"
)

// rendezvousScore is the highest-random-weight (rendezvous) hash of one
// (backend, key) pair: every router instance computes the same score
// from the same inputs, so a fleet of routers agrees on each dataset's
// replica set with no coordination, and adding or removing one backend
// remaps only the keys that scored it highest — the consistent-hashing
// property, without ring-maintenance state.
func rendezvousScore(backend, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(backend))
	h.Write([]byte{0xff}) // separator: ("ab","c") must not collide with ("a","bc")
	h.Write([]byte(key))
	return h.Sum64()
}

// rankBackends returns backend indices ordered by descending rendezvous
// score for key, ties broken by backend name so the order is total and
// deterministic. The first Replication entries are the key's replica
// set: index 0 the primary, the rest failover replicas.
func rankBackends(backends []*backend, key string) []int {
	order := make([]int, len(backends))
	scores := make([]uint64, len(backends))
	for i, b := range backends {
		order[i] = i
		scores[i] = rendezvousScore(b.name, key)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return backends[ia].name < backends[ib].name
	})
	return order
}
