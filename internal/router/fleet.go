package router

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/service"
)

// TestFleet is the in-process fleet harness behind the chaos suite and
// the served-equivalence tests: N psn-serve replicas on real ephemeral
// TCP ports (so killing one produces genuine connection-refused, not a
// simulated error), each with its own armed-on-demand fault injector,
// fronted by a Router that is itself served over TCP so load
// generators can target it like a deployed tier.
type TestFleet struct {
	Replicas []*FleetReplica
	Router   *Router

	// URL is the router's base URL (http://127.0.0.1:port).
	URL string

	hs   *http.Server
	ln   net.Listener
	done chan error
}

// FleetConfig parametrizes StartTestFleet. The zero value starts two
// replicas with default service configuration and a default router.
type FleetConfig struct {
	// Replicas is the fleet size. Zero means 2.
	Replicas int

	// Service is the base configuration every replica is started with;
	// the harness overrides Faults with a per-replica injector
	// (reachable as FleetReplica.Faults) and, when Logger is nil,
	// silences logging — injected panics are expected noise here. Set
	// ArtifactDir to give the fleet a shared warm store.
	Service service.Config

	// Router overrides the router configuration; Backends is filled in
	// by the harness. Leave HealthInterval unset for the 1s default, or
	// negative to drive health sweeps explicitly via CheckNow.
	Router Config
}

// FleetReplica is one in-process psn-serve replica: its bound address,
// its fault injector (arm points with Faults.Set, or parse an -inject
// spec into it), and lifecycle controls mirroring a real deployment —
// Drain is the SIGTERM path, Kill the OOM-kill path, Restart the
// supervisor bringing the process back on the same port.
type FleetReplica struct {
	// Addr is the replica's bound host:port, stable across Restart.
	Addr string

	// Faults is the replica's injector, armed through the same points
	// as psn-serve -inject, plus the connect-level "accept" point.
	Faults *faultinject.Injector

	// Server is the replica's service layer, exposed so equivalence
	// tests can call the library directly on the same registry.
	Server *service.Server

	mu   sync.Mutex
	hs   *http.Server
	ln   net.Listener
	done chan error
}

// StartTestFleet boots the replicas and the router, runs one health
// sweep so routing starts from a checked fleet, and returns the
// harness. Close tears everything down.
func StartTestFleet(cfg FleetConfig) (*TestFleet, error) {
	n := cfg.Replicas
	if n == 0 {
		n = 2
	}
	f := &TestFleet{done: make(chan error, 1)}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()

	backends := make([]string, 0, n)
	for i := 0; i < n; i++ {
		scfg := cfg.Service
		scfg.Faults = faultinject.New()
		if scfg.Logger == nil {
			scfg.Logger = slog.New(slog.DiscardHandler)
		}
		rep := &FleetReplica{
			Faults: scfg.Faults,
			Server: service.New(scfg),
		}
		if err := rep.start("127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		f.Replicas = append(f.Replicas, rep)
		backends = append(backends, rep.Addr)
	}

	rcfg := cfg.Router
	rcfg.Backends = backends
	rt, err := New(rcfg)
	if err != nil {
		return nil, err
	}
	f.Router = rt
	rt.CheckNow()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	f.ln = ln
	f.URL = "http://" + ln.Addr().String()
	f.hs = &http.Server{Handler: rt.Handler()}
	go func() { f.done <- f.hs.Serve(ln) }()
	ok = true
	return f, nil
}

// Close hard-stops the router and every replica still running.
func (f *TestFleet) Close() {
	if f.hs != nil {
		f.hs.Close()
		<-f.done
	} else if f.ln != nil {
		f.ln.Close()
	}
	if f.Router != nil {
		f.Router.Close()
	}
	for _, rep := range f.Replicas {
		rep.Kill()
	}
}

// start listens on addr (ephemeral on first start, the recorded
// address on Restart), wires the connect-level fault point, and serves.
func (rep *FleetReplica) start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	rep.mu.Lock()
	rep.Addr = ln.Addr().String()
	rep.ln = ln
	rep.hs = &http.Server{Handler: rep.Server.Handler()}
	rep.done = make(chan error, 1)
	hs, done := rep.hs, rep.done
	rep.mu.Unlock()
	go func() { done <- hs.Serve(faultinject.Listener(ln, rep.Faults, "accept")) }()
	return nil
}

// Kill hard-stops the replica: listener and every open connection are
// closed immediately, in-flight requests included — the OOM-kill /
// power-loss model. Clients mid-request see a reset; new connects see
// connection refused. Idempotent.
func (rep *FleetReplica) Kill() {
	rep.mu.Lock()
	hs, done := rep.hs, rep.done
	rep.hs, rep.ln = nil, nil
	rep.mu.Unlock()
	if hs == nil {
		return
	}
	hs.Close()
	<-done
}

// Drain gracefully stops the replica through the identical code path
// cmd/psn-serve runs on SIGTERM: /healthz flips to 503 "draining"
// first (so the router's next health sweep routes new traffic away),
// then the listener closes and in-flight requests get ctx to finish.
func (rep *FleetReplica) Drain(ctx context.Context) error {
	rep.mu.Lock()
	hs, done := rep.hs, rep.done
	rep.hs, rep.ln = nil, nil
	rep.mu.Unlock()
	if hs == nil {
		return nil
	}
	rep.Server.SetDraining(true)
	err := hs.Shutdown(ctx)
	<-done
	return err
}

// Restart brings a killed or drained replica back on its original
// port, un-draining it first — the supervisor-restart model the chaos
// suite uses to watch the breaker walk open → half-open → closed. The
// port can need a moment to be reusable after a hard Kill; Restart
// retries briefly.
func (rep *FleetReplica) Restart() error {
	rep.mu.Lock()
	running := rep.hs != nil
	addr := rep.Addr
	rep.mu.Unlock()
	if running {
		return fmt.Errorf("replica %s: already running", addr)
	}
	rep.Server.SetDraining(false)
	var err error
	for i := 0; i < 50; i++ {
		if err = rep.start(addr); err == nil {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("replica %s: restart: %w", addr, err)
}
