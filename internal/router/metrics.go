package router

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// routerMetrics is the router tier's operational state, exposed on
// /metrics in Prometheus text format with the same conventions as the
// replica layer (psn_* names, lock-free obs.Histogram latency series):
// dashboards scrape router and replicas identically and join on labels.
type routerMetrics struct {
	shed             atomic.Int64 // requests shed by router backpressure
	failovers        atomic.Int64 // attempts past the first, fleet-wide
	budgetExhausted  atomic.Int64 // failovers refused by the retry budget
	noBackend        atomic.Int64 // requests with no dispatchable backend
	upstreamErrors   atomic.Int64 // requests exhausted with transport errors (502)
	deadlineExceeded atomic.Int64 // requests that ran out the router deadline
	clientGone       atomic.Int64 // requests whose client disconnected mid-attempt

	mu       sync.Mutex
	requests map[string]*int64 // per-endpoint request counter
	statuses map[int]*int64    // per-status-code response counter

	// latency[endpoint] is populated during mux wiring, read-only after.
	latency map[string]*obs.Histogram
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{
		requests: make(map[string]*int64),
		statuses: make(map[int]*int64),
		latency:  make(map[string]*obs.Histogram),
	}
}

// histFor returns (creating on first use) the latency histogram of an
// endpoint. Only called during mux wiring — single-goroutine — so the
// map needs no lock; requests hit the prebuilt histograms directly.
func (m *routerMetrics) histFor(endpoint string) *obs.Histogram {
	h, ok := m.latency[endpoint]
	if !ok {
		h = &obs.Histogram{}
		m.latency[endpoint] = h
	}
	return h
}

func (m *routerMetrics) countRequest(endpoint string) {
	m.mu.Lock()
	c, ok := m.requests[endpoint]
	if !ok {
		c = new(int64)
		m.requests[endpoint] = c
	}
	m.mu.Unlock()
	atomic.AddInt64(c, 1)
}

func (m *routerMetrics) countStatus(code int) {
	m.mu.Lock()
	c, ok := m.statuses[code]
	if !ok {
		c = new(int64)
		m.statuses[code] = c
	}
	m.mu.Unlock()
	atomic.AddInt64(c, 1)
}

// write emits the Prometheus exposition: router-level counters, then
// per-backend traffic/failure/breaker series labeled by backend name.
func (rt *Router) writeMetrics(w io.Writer) {
	m := rt.metrics

	fmt.Fprintf(w, "# HELP psn_router_requests_total Requests received at the router, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE psn_router_requests_total counter\n")
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.requests))
	for e := range m.requests {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		fmt.Fprintf(w, "psn_router_requests_total{endpoint=%q} %d\n", e, atomic.LoadInt64(m.requests[e]))
	}
	codes := make([]int, 0, len(m.statuses))
	for c := range m.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	statusVals := make([]int64, len(codes))
	for i, c := range codes {
		statusVals[i] = atomic.LoadInt64(m.statuses[c])
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP psn_router_responses_total Responses sent by the router, by HTTP status code.\n")
	fmt.Fprintf(w, "# TYPE psn_router_responses_total counter\n")
	for i, c := range codes {
		fmt.Fprintf(w, "psn_router_responses_total{code=\"%d\"} %d\n", c, statusVals[i])
	}

	fmt.Fprintf(w, "# HELP psn_router_shed_total Requests shed by router backpressure, by reason.\n")
	fmt.Fprintf(w, "# TYPE psn_router_shed_total counter\n")
	fmt.Fprintf(w, "psn_router_shed_total{reason=\"capacity\"} %d\n", m.shed.Load())
	fmt.Fprintf(w, "psn_router_shed_total{reason=\"no_backend\"} %d\n", m.noBackend.Load())
	fmt.Fprintf(w, "psn_router_shed_total{reason=\"deadline\"} %d\n", m.deadlineExceeded.Load())

	fmt.Fprintf(w, "# HELP psn_router_failovers_total Attempts dispatched past the first, fleet-wide.\n")
	fmt.Fprintf(w, "# TYPE psn_router_failovers_total counter\n")
	fmt.Fprintf(w, "psn_router_failovers_total %d\n", m.failovers.Load())

	fmt.Fprintf(w, "# HELP psn_router_retry_budget_exhausted_total Failovers refused by the global retry budget.\n")
	fmt.Fprintf(w, "# TYPE psn_router_retry_budget_exhausted_total counter\n")
	fmt.Fprintf(w, "psn_router_retry_budget_exhausted_total %d\n", m.budgetExhausted.Load())

	fmt.Fprintf(w, "# HELP psn_router_retries_spent_total Units consumed from the global retry budget.\n")
	fmt.Fprintf(w, "# TYPE psn_router_retries_spent_total counter\n")
	fmt.Fprintf(w, "psn_router_retries_spent_total %d\n", rt.retriesSpent.Load())

	fmt.Fprintf(w, "# HELP psn_router_upstream_errors_total Requests that exhausted all attempts with transport errors.\n")
	fmt.Fprintf(w, "# TYPE psn_router_upstream_errors_total counter\n")
	fmt.Fprintf(w, "psn_router_upstream_errors_total %d\n", m.upstreamErrors.Load())

	fmt.Fprintf(w, "# HELP psn_router_client_gone_total Requests abandoned because the client disconnected.\n")
	fmt.Fprintf(w, "# TYPE psn_router_client_gone_total counter\n")
	fmt.Fprintf(w, "psn_router_client_gone_total %d\n", m.clientGone.Load())

	fmt.Fprintf(w, "# HELP psn_router_inflight_requests Proxied requests currently in flight.\n")
	fmt.Fprintf(w, "# TYPE psn_router_inflight_requests gauge\n")
	inflight := 0
	if rt.sem != nil {
		inflight = len(rt.sem)
	}
	fmt.Fprintf(w, "psn_router_inflight_requests %d\n", inflight)

	// Per-backend series.
	fmt.Fprintf(w, "# HELP psn_router_backend_requests_total Attempts dispatched to each backend.\n")
	fmt.Fprintf(w, "# TYPE psn_router_backend_requests_total counter\n")
	for _, b := range rt.backends {
		fmt.Fprintf(w, "psn_router_backend_requests_total{backend=%q} %d\n", b.name, b.requests.Load())
	}

	fmt.Fprintf(w, "# HELP psn_router_backend_failures_total Failed attempts per backend, by reason.\n")
	fmt.Fprintf(w, "# TYPE psn_router_backend_failures_total counter\n")
	for _, b := range rt.backends {
		for r, name := range failReasonNames {
			fmt.Fprintf(w, "psn_router_backend_failures_total{backend=%q,reason=%q} %d\n",
				b.name, name, b.failures[r].Load())
		}
	}

	fmt.Fprintf(w, "# HELP psn_router_backend_ejected_total Dispatches refused by an open breaker, per backend.\n")
	fmt.Fprintf(w, "# TYPE psn_router_backend_ejected_total counter\n")
	for _, b := range rt.backends {
		fmt.Fprintf(w, "psn_router_backend_ejected_total{backend=%q} %d\n", b.name, b.ejected.Load())
	}

	fmt.Fprintf(w, "# HELP psn_router_breaker_state Circuit breaker state per backend (0 closed, 1 open, 2 half-open).\n")
	fmt.Fprintf(w, "# TYPE psn_router_breaker_state gauge\n")
	for _, b := range rt.backends {
		fmt.Fprintf(w, "psn_router_breaker_state{backend=%q} %d\n", b.name, b.breakerState())
	}

	fmt.Fprintf(w, "# HELP psn_router_breaker_transitions_total Breaker transitions into each state, per backend.\n")
	fmt.Fprintf(w, "# TYPE psn_router_breaker_transitions_total counter\n")
	for _, b := range rt.backends {
		for s, name := range breakerStateNames {
			fmt.Fprintf(w, "psn_router_breaker_transitions_total{backend=%q,state=%q} %d\n",
				b.name, name, b.transitions[s].Load())
		}
	}

	fmt.Fprintf(w, "# HELP psn_router_backend_healthy Last active health probe outcome per backend (1 healthy).\n")
	fmt.Fprintf(w, "# TYPE psn_router_backend_healthy gauge\n")
	for _, b := range rt.backends {
		_, healthy, _, _, _ := b.snapshotHealth()
		v := 0
		if healthy {
			v = 1
		}
		fmt.Fprintf(w, "psn_router_backend_healthy{backend=%q} %d\n", b.name, v)
	}

	fmt.Fprintf(w, "# HELP psn_router_request_duration_seconds Request latency at the router by endpoint (includes failover attempts).\n")
	fmt.Fprintf(w, "# TYPE psn_router_request_duration_seconds histogram\n")
	for _, e := range endpoints {
		h, ok := m.latency[e]
		if !ok {
			continue
		}
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		s.WritePrometheus(w, "psn_router_request_duration_seconds", fmt.Sprintf("endpoint=%q", e))
	}
}
