package router

import (
	"encoding/json"
	"net/http"
)

// FleetHealth is the router's /healthz body: the fleet-level verdict
// plus each backend's last-probed state, so one scrape answers "is the
// fleet serving" and "which replica is the problem" at once.
type FleetHealth struct {
	// Status is "ok" when every backend is healthy, "degraded" when at
	// least one but not all are (or any reports degraded datasets), and
	// "down" when none is dispatchable. A draining router reports
	// "draining" regardless.
	Status   string          `json:"status"`
	Backends []BackendHealth `json:"backends"`
}

// BackendHealth is one replica's state as the router sees it.
type BackendHealth struct {
	Name     string   `json:"name"`
	Healthy  bool     `json:"healthy"`
	Status   string   `json:"status"`  // replica-reported: ok, degraded, draining; "down"/"unknown" router-side
	Breaker  string   `json:"breaker"` // closed, open, half-open
	Warm     []string `json:"warm,omitempty"`
	Degraded []string `json:"degraded,omitempty"`
}

// handleHealthz aggregates fleet state: 200 while at least one backend
// can take traffic, 503 when none can (or the router itself is
// draining) — so an upstream balancer or orchestrator probing the
// router sees the fleet's real availability, not the router process's.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fh := FleetHealth{Backends: make([]BackendHealth, 0, len(rt.backends))}
	healthyN, usableN := 0, 0
	anyDegraded := false
	for _, b := range rt.backends {
		checked, healthy, status, warm, degraded := b.snapshotHealth()
		bh := BackendHealth{
			Name:     b.name,
			Healthy:  healthy,
			Status:   status,
			Breaker:  breakerStateNames[b.breakerState()],
			Warm:     warm,
			Degraded: degraded,
		}
		if !checked {
			bh.Status = "unknown"
		}
		fh.Backends = append(fh.Backends, bh)
		if healthy && status != "draining" {
			healthyN++
		}
		if b.available() {
			usableN++
		}
		if status == "degraded" || len(degraded) > 0 {
			anyDegraded = true
		}
	}

	code := http.StatusOK
	switch {
	case rt.draining.Load():
		fh.Status = "draining"
		code = http.StatusServiceUnavailable
	case usableN == 0:
		fh.Status = "down"
		code = http.StatusServiceUnavailable
	case healthyN < len(rt.backends) || anyDegraded:
		fh.Status = "degraded"
	default:
		fh.Status = "ok"
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(fh)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.writeMetrics(w)
}
