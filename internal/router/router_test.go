package router

import (
	"fmt"
	"testing"
	"time"
)

func namedBackends(names ...string) []*backend {
	out := make([]*backend, len(names))
	for i, n := range names {
		out[i] = newBackend(n)
	}
	return out
}

// TestRendezvousDeterminism pins the sharding contract: the replica
// set of a key is a pure function of (backend names, key) — two router
// instances agree with no coordination — and removing one backend
// remaps only the keys that ranked it highest.
func TestRendezvousDeterminism(t *testing.T) {
	backends := namedBackends("10.0.0.1:8081", "10.0.0.2:8081", "10.0.0.3:8081", "10.0.0.4:8081")
	keys := []string{"dev", "infocom-3-6", "infocom-9-12", "conext-9-12", "city-2k", ""}

	for _, key := range keys {
		a := rankBackends(backends, key)
		b := rankBackends(backends, key)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("key %q: rank order not deterministic", key)
			}
		}
	}

	// Distribution sanity: with several datasets, more than one backend
	// must appear as a primary (the hash actually spreads).
	primaries := map[int]bool{}
	for _, key := range keys {
		primaries[rankBackends(backends, key)[0]] = true
	}
	if len(primaries) < 2 {
		t.Errorf("all %d keys mapped to one primary — hash not spreading", len(keys))
	}

	// Minimal-remap property: dropping one backend must not change the
	// relative order of the survivors for any key.
	for _, key := range keys {
		before := rankBackends(backends, key)
		after := rankBackends(backends[:3], key)
		filtered := before[:0:0]
		for _, idx := range before {
			if idx < 3 {
				filtered = append(filtered, idx)
			}
		}
		for i := range after {
			if after[i] != filtered[i] {
				t.Fatalf("key %q: survivor order changed after removing one backend", key)
			}
		}
	}
}

// TestBreakerStateMachine walks one backend's breaker through its full
// cycle: closed under scattered failures, open at the consecutive
// threshold, refusing while the window runs, half-open single probe
// after it, closed again on probe success — and a wider re-open on
// probe failure.
func TestBreakerStateMachine(t *testing.T) {
	b := newBackend("127.0.0.1:1")

	// Scattered failures below the threshold never open.
	for i := 0; i < defaultFailThreshold-1; i++ {
		if !b.acquire() {
			t.Fatal("closed breaker refused a request")
		}
		b.report(false)
	}
	b.report(true) // success resets the streak
	for i := 0; i < defaultFailThreshold-1; i++ {
		b.acquire()
		b.report(false)
	}
	if b.breakerState() != breakerClosed {
		t.Fatal("breaker opened below the consecutive-failure threshold")
	}

	// One more consecutive failure opens it.
	b.acquire()
	b.report(false)
	if b.breakerState() != breakerOpen {
		t.Fatalf("breaker state %s after %d consecutive failures",
			breakerStateNames[b.breakerState()], defaultFailThreshold)
	}
	if b.acquire() {
		t.Fatal("open breaker admitted a request inside its window")
	}
	if hint := b.retryAfterHint(); hint <= 0 || hint > breakerBase {
		t.Fatalf("retryAfterHint %v outside (0, %v]", hint, breakerBase)
	}

	// Expire the window: the next acquire is the half-open probe, and
	// concurrent acquires are refused while it is in flight.
	b.mu.Lock()
	b.openUntil = time.Now().Add(-time.Millisecond)
	b.mu.Unlock()
	if !b.acquire() {
		t.Fatal("expired open window refused the half-open probe")
	}
	if b.breakerState() != breakerHalfOpen {
		t.Fatal("breaker not half-open during the probe")
	}
	if b.acquire() {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// Probe failure re-opens with a wider window (openings=2 ⇒ base 2s,
	// jitter keeps it above half of that).
	b.report(false)
	if b.breakerState() != breakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if hint := b.retryAfterHint(); hint <= breakerBase/2 {
		t.Fatalf("re-opened window %v not widened beyond %v", hint, breakerBase/2)
	}

	// Expire again; this time the probe succeeds and the breaker closes
	// fully: streak and widening reset.
	b.mu.Lock()
	b.openUntil = time.Now().Add(-time.Millisecond)
	b.mu.Unlock()
	b.acquire()
	b.report(true)
	if b.breakerState() != breakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.acquire() {
		t.Fatal("closed breaker refused a request after recovery")
	}
	b.report(true)
	b.mu.Lock()
	openings := b.openings
	b.mu.Unlock()
	if openings != 0 {
		t.Fatalf("openings %d not reset by recovery", openings)
	}
}

// TestRetryBudget pins the global budget arithmetic: burst retries are
// allowed from a cold start, exhausting the burst refuses further
// retries, and completed requests earn ratio-proportional headroom.
func TestRetryBudget(t *testing.T) {
	rt := &Router{cfg: Config{RetryBudgetRatio: 0.2, RetryBudgetBurst: 3}, metrics: newRouterMetrics()}

	for i := 0; i < 3; i++ {
		if !rt.allowRetry() {
			t.Fatalf("burst retry %d refused", i)
		}
	}
	if rt.allowRetry() {
		t.Fatal("retry allowed past the exhausted burst with zero completed requests")
	}
	if rt.metrics.budgetExhausted.Load() != 1 {
		t.Fatal("refused retry not counted in budgetExhausted")
	}

	// 10 completed requests at ratio 0.2 buy 2 more retries.
	rt.doneReqs.Store(10)
	for i := 0; i < 2; i++ {
		if !rt.allowRetry() {
			t.Fatalf("earned retry %d refused", i)
		}
	}
	if rt.allowRetry() {
		t.Fatal("retry allowed beyond ratio·requests+burst")
	}

	unlimited := &Router{cfg: Config{RetryBudgetRatio: -1}, metrics: newRouterMetrics()}
	for i := 0; i < 100; i++ {
		if !unlimited.allowRetry() {
			t.Fatal("negative ratio must disable the budget")
		}
	}
}

func TestRequestIDValidation(t *testing.T) {
	if !isRequestID("0123456789abcdef") {
		t.Error("valid ID rejected")
	}
	for _, bad := range []string{"", "0123456789ABCDEF", "0123456789abcde", "0123456789abcdeff", "0123456789abcdeg"} {
		if isRequestID(bad) {
			t.Errorf("invalid ID %q accepted", bad)
		}
	}
	id := formatRequestID(0xdeadbeef12345678)
	if id != "deadbeef12345678" || !isRequestID(id) {
		t.Errorf("formatRequestID = %q", id)
	}
}

// TestCandidateOrdering verifies goodness-based re-ranking: a draining
// or breaker-open primary yields to its replica, and when the whole
// replica set is out, a backend outside it serves as last resort.
func TestCandidateOrdering(t *testing.T) {
	rt := &Router{cfg: Config{Replication: 2}}
	rt.backends = namedBackends("127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3")

	key := "dev"
	order := rankBackends(rt.backends, key)
	primary, secondary := rt.backends[order[0]], rt.backends[order[1]]

	cands := rt.candidates(key)
	if cands[0] != primary {
		t.Fatal("healthy fleet: primary not first")
	}
	if len(cands) != 3 {
		t.Fatalf("want all 3 backends as candidates, got %d", len(cands))
	}

	// Draining primary yields to the secondary.
	primary.setHealth(true, "draining", nil, nil)
	cands = rt.candidates(key)
	if cands[0] != secondary {
		t.Fatal("draining primary still ranked first")
	}

	// Whole replica set unavailable: the off-set backend still appears.
	secondary.setHealth(false, "down", nil, nil)
	cands = rt.candidates(key)
	last := rt.backends[order[2]]
	found := false
	for _, c := range cands {
		if c == last {
			found = true
		}
	}
	if !found {
		t.Fatal("off-replica-set backend dropped while the replica set is down")
	}

	// Warm replica beats cold at equal health.
	primary.setHealth(true, "ok", nil, nil)
	secondary.setHealth(true, "ok", map[string]bool{key: true}, nil)
	cands = rt.candidates(key)
	if cands[0] != secondary {
		t.Fatal("warm secondary not preferred over cold primary")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no backends must fail")
	}
	if _, err := New(Config{Backends: []string{"127.0.0.1:1", "http://127.0.0.1:1"}}); err == nil {
		t.Error("duplicate backends must fail")
	}
	rt, err := New(Config{Backends: []string{"127.0.0.1:1"}, Replication: 5, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.cfg.Replication != 1 {
		t.Errorf("replication not clamped to backend count: %d", rt.cfg.Replication)
	}
}

func TestDatasetOf(t *testing.T) {
	for _, tc := range []struct{ body, want string }{
		{`{"dataset":"dev","src":0}`, "dev"},
		{`{"dataset":"infocom-3-6"}`, "infocom-3-6"},
		{`{"src":0}`, ""},
		{`not json`, ""},
	} {
		if got := datasetOf([]byte(tc.body)); got != tc.want {
			t.Errorf("datasetOf(%s) = %q, want %q", tc.body, got, tc.want)
		}
	}
}

func ExampleConfig() {
	rt, err := New(Config{
		Backends:       []string{"127.0.0.1:8081", "127.0.0.1:8082"},
		HealthInterval: -1, // drive probes explicitly with CheckNow
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer rt.Close()
	fmt.Println(len(rt.backends), "backends, replication", rt.cfg.Replication)
	// Output: 2 backends, replication 2
}
