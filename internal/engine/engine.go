// Package engine is the shared worker-pool layer behind every
// parallel experiment in this repository: the trace-driven simulator
// (dtnsim), the batch path enumerator (pathenum) and the figure
// harness (figures) all fan independent work items out through Map
// and MapErr.
//
// Determinism contract: callers hand the engine a fixed number of
// items and write each item's result into a caller-owned slot indexed
// by item; the engine only decides *when* an item runs, never *what*
// it computes. Work items must therefore be independent — they may
// share immutable inputs (a trace, a space-time graph, oracle tables)
// but never mutable scratch or a shared *rand.Rand. Randomized items
// derive an independent seed per item index with DeriveSeed instead of
// drawing from a shared generator, so results are byte-identical for
// any worker count, including 1.
package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError carries a panic recovered on a worker goroutine, with the
// worker's stack captured at recovery. MapWorkers re-raises it as a
// panic value on the calling goroutine, so a crash inside a parallel
// region surfaces exactly where a serial run would have crashed — and
// a recover() there (e.g. the serving layer's recovery middleware) can
// isolate it instead of the runtime killing the process because the
// panic happened on an unrecovered goroutine.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // the panicking worker's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: worker panic: %v", e.Value)
}

// Workers resolves a worker-count knob: n itself when positive,
// otherwise runtime.GOMAXPROCS(0). Every concurrency option in this
// repository (dtnsim.Config.Workers, pathenum.Options.Workers,
// figures.Params.Workers) is interpreted through this function.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines
// (resolved through Workers). Items are handed out dynamically, so an
// expensive item does not stall the queue behind it. With one worker
// (or one item) everything runs inline on the calling goroutine in
// index order. Map returns when every item has completed.
func Map(workers, n int, fn func(i int)) {
	MapWorkers(workers, n, func(_, i int) { fn(i) })
}

// MapWorkers is Map with the worker slot exposed: fn(w, i) runs item i
// on worker slot w, where w is a dense index in [0, resolved workers).
// Each slot runs its items sequentially on one goroutine, so callers
// can hand every slot a private mutable scratch (sized by Workers
// beforehand) without locking or pooling. Which items land on which
// slot is scheduling-dependent; determinism still requires fn's effect
// on item i's output to be independent of w.
//
// A panic inside fn on a worker goroutine is recovered, the remaining
// items still run (so sibling workers drain normally and no caller
// state is left half-synchronized), and MapWorkers then re-panics on
// the calling goroutine with a *PanicError wrapping the first
// recovered value and its worker stack. With one worker the panic
// propagates directly — it is already on the caller's goroutine.
func MapWorkers(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var panicked atomic.Pointer[PanicError]
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runItem(&panicked, w, i, fn)
			}
		}(w)
	}
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		panic(pe)
	}
}

// runItem runs one work item, converting a panic into a recorded
// *PanicError (first panic wins) instead of killing the process.
func runItem(panicked *atomic.Pointer[PanicError], w, i int, fn func(worker, i int)) {
	defer func() {
		if v := recover(); v != nil {
			panicked.CompareAndSwap(nil, &PanicError{Value: v, Stack: debug.Stack()})
		}
	}()
	fn(w, i)
}

// MapErr runs fn(i) for every i in [0, n) like Map and returns the
// error of the lowest failing index, or nil. Every item runs even
// when an earlier one fails, so the reported error does not depend on
// scheduling and matches what a serial loop stopping at the first
// failure would have returned.
func MapErr(workers, n int, fn func(i int) error) error {
	errs := make([]error, n)
	Map(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DeriveSeed splits a base seed into an independent per-item seed by
// mixing the item index through the splitmix64 finalizer. Distinct
// (base, index) pairs map to well-separated seeds even when bases or
// indices are small and sequential, so parallel work items can each
// build a private rand.Rand instead of sharing one generator.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
