package engine

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// CanceledError reports that a computation stopped at a cooperative
// cancellation checkpoint before completing. Cause is the triggering
// condition: context.Canceled when the caller (e.g. a disconnected
// HTTP client) gave up, context.DeadlineExceeded when a deadline
// passed. It unwraps to Cause, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) distinguish the two.
type CanceledError struct {
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("engine: computation canceled: %v", e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// IsCanceled reports whether err is (or wraps) a CanceledError.
func IsCanceled(err error) bool {
	var ce *CanceledError
	return errors.As(err, &ce)
}

// Cancel is a cooperative cancellation token threaded through the
// compute layers (pathenum's dynamic program, dtnsim's event replay,
// stgraph's frame construction). It combines two stop conditions — a
// context (client disconnect) and a wall-clock deadline (request
// timeout) — behind one amortized poll, with no watcher goroutine and
// no per-request timer: Stopped reads ctx.Err() and the clock only
// when called, so callers poll it every few thousand work units and
// pay nanoseconds per check.
//
// A nil *Cancel (and the zero value) is fully inert: Stopped is one
// pointer/field check, Err returns nil, Wait blocks until done. Hot
// loops therefore carry the token unconditionally and benchmarks that
// pass nil measure the uncancellable baseline.
//
// Cancellation never changes results: a computation either completes
// — byte-identical to one run without a token — or abandons with a
// CanceledError and no result at all.
type Cancel struct {
	ctx      context.Context // optional; nil means no context condition
	deadline time.Time       // optional; zero means no deadline
}

// NewCancel builds a token that stops when ctx is done or, when
// timeout is positive, after timeout elapses from now. A nil ctx and
// non-positive timeout yield an inert token.
func NewCancel(ctx context.Context, timeout time.Duration) Cancel {
	c := Cancel{}
	if ctx != nil && ctx.Done() != nil {
		c.ctx = ctx
	}
	if timeout > 0 {
		c.deadline = time.Now().Add(timeout)
	}
	return c
}

// Stopped reports whether the token has fired. It is the amortized
// poll for hot loops: a nil or inert receiver costs a branch; a live
// one costs a ctx.Err() load and at most one clock read.
func (c *Cancel) Stopped() bool {
	if c == nil {
		return false
	}
	if c.ctx != nil && c.ctx.Err() != nil {
		return true
	}
	return !c.deadline.IsZero() && time.Now().After(c.deadline)
}

// Err returns nil while the token has not fired, and a *CanceledError
// wrapping the triggering cause once it has. The context condition
// wins ties, so a request that disconnected and timed out reports the
// disconnect.
func (c *Cancel) Err() error {
	if c == nil {
		return nil
	}
	if c.ctx != nil {
		if cause := c.ctx.Err(); cause != nil {
			return &CanceledError{Cause: cause}
		}
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		return &CanceledError{Cause: context.DeadlineExceeded}
	}
	return nil
}

// FiredErr is Err for callers whose checkpoint already observed the
// token fire: unlike Err it never returns nil, falling back to a
// DeadlineExceeded cause if the conditions cannot be re-observed (a
// defensive path; both conditions are monotonic once fired). It keeps
// "canceled computation, nil error" unrepresentable at abandon sites.
func (c *Cancel) FiredErr() error {
	if err := c.Err(); err != nil {
		return err
	}
	return &CanceledError{Cause: context.DeadlineExceeded}
}

// Wait blocks until done closes or the token fires, returning nil in
// the first case and the token's Err in the second. It is how
// singleflight waiters (cache fills, registry builds) respect request
// cancellation without aborting the shared computation they joined:
// the leader keeps computing for everyone else. The already-closed
// fast path costs no timer; a live deadline allocates one only while
// actually blocking.
func (c *Cancel) Wait(done <-chan struct{}) error {
	select {
	case <-done:
		return nil
	default:
	}
	if c == nil || (c.ctx == nil && c.deadline.IsZero()) {
		<-done
		return nil
	}
	var ctxDone <-chan struct{}
	if c.ctx != nil {
		ctxDone = c.ctx.Done()
	}
	var timer *time.Timer
	var expired <-chan time.Time
	if !c.deadline.IsZero() {
		timer = time.NewTimer(time.Until(c.deadline))
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case <-done:
		return nil
	case <-ctxDone:
		return &CanceledError{Cause: c.ctx.Err()}
	case <-expired:
		return &CanceledError{Cause: context.DeadlineExceeded}
	}
}
