package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestMapCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		Map(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapSerialRunsInOrder(t *testing.T) {
	var order []int
	Map(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	ran := false
	Map(8, 0, func(int) { ran = true })
	if ran {
		t.Error("Map ran an item for n=0")
	}
}

func TestMapWorkersCoversEveryIndexWithDenseSlots(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 500
		counts := make([]int32, n)
		var usedSlots [64]atomic.Int32
		MapWorkers(workers, n, func(w, i int) {
			atomic.AddInt32(&counts[i], 1)
			usedSlots[w].Add(1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
		resolved := workers
		if resolved > n {
			resolved = n
		}
		total := int32(0)
		for w := range usedSlots {
			c := usedSlots[w].Load()
			if c > 0 && w >= resolved {
				t.Fatalf("workers=%d: slot %d outside [0,%d)", workers, w, resolved)
			}
			total += c
		}
		if total != n {
			t.Fatalf("workers=%d: slot totals %d != n", workers, total)
		}
	}
}

func TestMapWorkersSerialUsesSlotZeroInOrder(t *testing.T) {
	var order []int
	MapWorkers(1, 5, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial slot = %d", w)
		}
		order = append(order, i)
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := MapErr(workers, 100, func(i int) error {
			if i%30 == 7 { // fails at 7, 37, 67, 97
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 7" {
			t.Errorf("workers=%d: err = %v, want item 7", workers, err)
		}
	}
	if err := MapErr(8, 50, func(int) error { return nil }); err != nil {
		t.Errorf("unexpected error %v", err)
	}
}

func TestMapErrAllItemsRunDespiteFailure(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := MapErr(4, 64, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	if got := ran.Load(); got != 64 {
		t.Errorf("only %d/64 items ran", got)
	}
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	seen := map[int64]string{}
	for base := int64(0); base < 8; base++ {
		for idx := 0; idx < 256; idx++ {
			s := DeriveSeed(base, idx)
			key := fmt.Sprintf("base %d idx %d", base, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
