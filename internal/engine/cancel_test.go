package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCancelNilAndZeroAreInert(t *testing.T) {
	var nilCC *Cancel
	var zero Cancel
	for _, tc := range []struct {
		name string
		cc   *Cancel
	}{
		{"nil", nilCC},
		{"zero", &zero},
	} {
		if tc.cc.Stopped() {
			t.Errorf("%s token: Stopped() = true, want false", tc.name)
		}
		if err := tc.cc.Err(); err != nil {
			t.Errorf("%s token: Err() = %v, want nil", tc.name, err)
		}
		done := make(chan struct{})
		close(done)
		if err := tc.cc.Wait(done); err != nil {
			t.Errorf("%s token: Wait(closed) = %v, want nil", tc.name, err)
		}
	}
	// FiredErr never returns nil, even on an inert token.
	if err := nilCC.FiredErr(); !IsCanceled(err) {
		t.Errorf("nil FiredErr() = %v, want a CanceledError", err)
	}
}

func TestNewCancelDropsInertConditions(t *testing.T) {
	// context.Background has a nil Done channel: no condition to watch.
	cc := NewCancel(context.Background(), 0)
	if cc.ctx != nil || !cc.deadline.IsZero() {
		t.Errorf("NewCancel(Background, 0) kept conditions: ctx=%v deadline=%v", cc.ctx, cc.deadline)
	}
	cc = NewCancel(nil, -time.Second)
	if cc.ctx != nil || !cc.deadline.IsZero() {
		t.Error("NewCancel(nil, negative) is not inert")
	}
}

func TestCancelDeadlineFires(t *testing.T) {
	cc := NewCancel(nil, time.Nanosecond)
	time.Sleep(2 * time.Millisecond)
	if !cc.Stopped() {
		t.Fatal("deadline passed but Stopped() = false")
	}
	err := cc.Err()
	if !IsCanceled(err) {
		t.Fatalf("Err() = %v, want CanceledError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Err() cause = %v, want DeadlineExceeded", err)
	}
}

func TestCancelContextFires(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cc := NewCancel(ctx, 0)
	if cc.Stopped() {
		t.Fatal("Stopped() before cancel")
	}
	cancel()
	if !cc.Stopped() {
		t.Fatal("Stopped() = false after context cancel")
	}
	if err := cc.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err() = %v, want cause context.Canceled", err)
	}
}

func TestCancelContextWinsTies(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := NewCancel(ctx, time.Nanosecond)
	time.Sleep(2 * time.Millisecond) // both conditions have fired
	if err := cc.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err() = %v, want the context cause to win", err)
	}
}

func TestCancelWait(t *testing.T) {
	// Unfired deadline: Wait blocks until done closes.
	cc := NewCancel(nil, time.Hour)
	done := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(done)
	}()
	if err := cc.Wait(done); err != nil {
		t.Fatalf("Wait with future deadline = %v, want nil", err)
	}

	// Fired deadline, done never closes: Wait returns promptly.
	cc = NewCancel(nil, time.Nanosecond)
	time.Sleep(2 * time.Millisecond)
	start := time.Now()
	err := cc.Wait(make(chan struct{}))
	if !IsCanceled(err) {
		t.Fatalf("Wait with expired deadline = %v, want CanceledError", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("Wait took %v to notice an expired deadline", d)
	}

	// Context cancellation unblocks Wait mid-block.
	ctx, cancel := context.WithCancel(context.Background())
	cc = NewCancel(ctx, 0)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if err := cc.Wait(make(chan struct{})); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait under context cancel = %v, want cause Canceled", err)
	}
}

func TestIsCanceledWrapped(t *testing.T) {
	inner := &CanceledError{Cause: context.DeadlineExceeded}
	wrapped := errors.Join(errors.New("outer"), inner)
	if !IsCanceled(wrapped) {
		t.Error("IsCanceled misses a wrapped CanceledError")
	}
	if IsCanceled(errors.New("plain")) {
		t.Error("IsCanceled accepts a plain error")
	}
	if IsCanceled(nil) {
		t.Error("IsCanceled accepts nil")
	}
}

// TestMapWorkersPanicPropagates pins the panic-isolation contract: a
// panic on a worker goroutine surfaces on the caller's goroutine as a
// *PanicError carrying the original value and the worker's stack, and
// every other item still runs (workers drain the queue before the
// panic is re-raised).
func TestMapWorkersPanicPropagates(t *testing.T) {
	const workers = 4
	seen := make([]bool, 64)
	var pe *PanicError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate")
			}
			var ok bool
			pe, ok = r.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T, want *PanicError", r)
			}
		}()
		MapWorkers(workers, len(seen), func(w, i int) {
			seen[i] = true
			if i == 17 {
				panic("boom at 17")
			}
		})
	}()
	if pe.Value != "boom at 17" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Errorf("PanicError.Stack missing a stack trace")
	}
	if !strings.Contains(pe.Error(), "boom at 17") {
		t.Errorf("Error() = %q does not name the panic", pe.Error())
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("item %d never ran despite panic isolation", i)
		}
	}
}

// With one worker everything runs inline, so a panic propagates raw on
// the caller's goroutine — no wrapping, exactly like a serial loop.
func TestMapWorkersSerialPanicIsRaw(t *testing.T) {
	defer func() {
		if r := recover(); r != "serial boom" {
			t.Fatalf("recovered %v, want the raw panic value", r)
		}
	}()
	MapWorkers(1, 4, func(w, i int) {
		if i == 2 {
			panic("serial boom")
		}
	})
	t.Fatal("unreachable")
}
