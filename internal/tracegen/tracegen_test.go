package tracegen

import (
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func validCfg() Config {
	return Config{
		Name:         "t",
		NumNodes:     30,
		Stationary:   5,
		Horizon:      3600,
		MaxRate:      0.05,
		MeanDuration: 60,
		MinDuration:  5,
		Seed:         7,
	}
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few nodes", func(c *Config) { c.NumNodes = 1 }},
		{"negative stationary", func(c *Config) { c.Stationary = -1 }},
		{"stationary exceeds nodes", func(c *Config) { c.Stationary = 99 }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"zero rate", func(c *Config) { c.MaxRate = 0 }},
		{"zero duration", func(c *Config) { c.MeanDuration = 0 }},
		{"negative min duration", func(c *Config) { c.MinDuration = -1 }},
	} {
		cfg := validCfg()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
		}
	}
	cfg := validCfg()
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHeterogeneousDeterministic(t *testing.T) {
	a, err := Heterogeneous(validCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Heterogeneous(validCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Contacts() {
		if a.Contacts()[i] != b.Contacts()[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
	cfg := validCfg()
	cfg.Seed = 8
	c, err := Heterogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == a.Len() {
		same := true
		for i := range c.Contacts() {
			if c.Contacts()[i] != a.Contacts()[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds produced identical traces")
		}
	}
}

func TestHeterogeneousInvalidConfig(t *testing.T) {
	cfg := validCfg()
	cfg.NumNodes = 0
	if _, err := Heterogeneous(cfg); err == nil {
		t.Errorf("invalid config accepted")
	}
}

func TestHeterogeneousRateShape(t *testing.T) {
	cfg := validCfg()
	cfg.NumNodes = 98
	cfg.Stationary = 20
	cfg.Horizon = 10800
	cfg.MaxRate = 0.046
	cfg.MeanDuration = 150
	tr, err := Heterogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.ContactCounts()
	sorted := make([]float64, len(counts))
	for i, c := range counts {
		sorted[i] = float64(c)
	}
	sort.Float64s(sorted)
	// Rates should be heterogeneous: the top decile should dwarf the
	// bottom decile, and some nodes should be nearly isolated.
	lo := stats.Mean(sorted[:10])
	hi := stats.Mean(sorted[len(sorted)-10:])
	if hi < 4*lo {
		t.Errorf("insufficient heterogeneity: bottom mean %g, top mean %g", lo, hi)
	}
	if sorted[0] > 60 {
		t.Errorf("lowest contact count = %g, expected a near-isolated node", sorted[0])
	}
	// Aggregate volume should be in the calibrated ballpark
	// (roughly uniform counts on (0, ~500)).
	if total := tr.Len(); total < 3000 || total > 40000 {
		t.Errorf("total contacts = %d, outside plausible range", total)
	}
}

func TestHomogeneousRatesConcentrated(t *testing.T) {
	tr, err := Homogeneous("h", 60, 7200, 0.03, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.ContactCounts()
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	mean := stats.Mean(xs)
	cv := stats.StdDev(xs) / mean
	if cv > 0.35 {
		t.Errorf("homogeneous trace too dispersed: cv = %g", cv)
	}
	// Expected per-node contacts ≈ λ·T ≈ 0.03·7200 = 216.
	if mean < 120 || mean > 320 {
		t.Errorf("mean contacts per node = %g, want ≈216", mean)
	}
}

func TestHomogeneousInvalid(t *testing.T) {
	if _, err := Homogeneous("h", 1, 100, 0.1, 10, 1); err == nil {
		t.Errorf("invalid homogeneous config accepted")
	}
}

func TestScanQuantization(t *testing.T) {
	cfg := validCfg()
	cfg.ScanInterval = 120
	cfg.MeanDuration = 400 // long contacts so most survive quantization
	tr, err := Heterogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("no contacts survived quantization")
	}
	for _, c := range tr.Contacts() {
		if rem := math.Mod(c.Start, 120); rem > 1e-9 && rem < 120-1e-9 {
			t.Fatalf("start %g not on scan grid", c.Start)
		}
	}
}

func TestActivityThinning(t *testing.T) {
	base := validCfg()
	full, err := Heterogeneous(base)
	if err != nil {
		t.Fatal(err)
	}
	thin := base
	thin.Activity = func(t float64) float64 { return 0.2 }
	thinned, err := Heterogeneous(thin)
	if err != nil {
		t.Fatal(err)
	}
	if thinned.Len() >= full.Len() {
		t.Errorf("activity 0.2 did not thin contacts: %d vs %d", thinned.Len(), full.Len())
	}
	off := base
	off.Activity = func(t float64) float64 { return 0 }
	none, err := Heterogeneous(off)
	if err != nil {
		t.Fatal(err)
	}
	if none.Len() != 0 {
		t.Errorf("activity 0 still produced %d contacts", none.Len())
	}
}

func TestMinDurationEnforced(t *testing.T) {
	cfg := validCfg()
	cfg.MinDuration = 42
	tr, err := Heterogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.Contacts() {
		if c.End < cfg.Horizon && c.Duration() < 42-1e-9 {
			t.Fatalf("contact duration %g < min 42 (contact %+v)", c.Duration(), c)
		}
	}
}

func TestPairContactsDoNotOverlap(t *testing.T) {
	cfg := validCfg()
	cfg.MeanDuration = 600 // long durations force merges
	tr, err := Heterogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ a, b trace.NodeID }
	last := map[pair]float64{}
	for _, c := range tr.Contacts() {
		p := pair{c.A, c.B}
		if prev, ok := last[p]; ok && c.Start <= prev {
			t.Fatalf("pair %v contacts overlap: start %g <= previous end %g", p, c.Start, prev)
		}
		if c.End > last[p] {
			last[p] = c.End
		}
	}
}

func TestGenerateNamedDatasets(t *testing.T) {
	for _, d := range Datasets {
		tr, err := Generate(d)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if tr.NumNodes != 98 {
			t.Errorf("%v: NumNodes = %d, want 98", d, tr.NumNodes)
		}
		if tr.Horizon != ConferenceHorizon {
			t.Errorf("%v: Horizon = %g", d, tr.Horizon)
		}
		if tr.Len() < 1000 {
			t.Errorf("%v: only %d contacts", d, tr.Len())
		}
	}
}

func TestGenerateUnknownDataset(t *testing.T) {
	if _, err := Generate(Dataset(99)); err == nil {
		t.Errorf("unknown dataset accepted")
	}
	var ue *UnknownDatasetError
	_, err := Generate(Dataset(99))
	if ue, _ = err.(*UnknownDatasetError); ue == nil {
		t.Errorf("error type = %T, want *UnknownDatasetError", err)
	} else if ue.Error() == "" {
		t.Errorf("empty error message")
	}
}

func TestConextLighterThanInfocom(t *testing.T) {
	inf := MustGenerate(Infocom0912)
	con := MustGenerate(Conext0912)
	if con.Len() >= inf.Len() {
		t.Errorf("CoNext (%d contacts) should be lighter than Infocom (%d)", con.Len(), inf.Len())
	}
}

func TestAfternoonDropReducesLateContacts(t *testing.T) {
	am := MustGenerate(Infocom0912)
	pm := MustGenerate(Infocom0336)
	lateShare := func(tr *trace.Trace) float64 {
		late := 0
		for _, c := range tr.Contacts() {
			if c.Start >= ConferenceHorizon-1800 {
				late++
			}
		}
		return float64(late) / float64(tr.Len())
	}
	if la, lp := lateShare(am), lateShare(pm); lp >= la {
		t.Errorf("afternoon drop not visible: am late share %g, pm late share %g", la, lp)
	}
}

func TestDatasetString(t *testing.T) {
	if Dataset(42).String() != "unknown dataset" {
		t.Errorf("unknown dataset String")
	}
	for _, d := range Datasets {
		if d.String() == "unknown dataset" {
			t.Errorf("named dataset %d has no name", int(d))
		}
	}
}

func TestDev(t *testing.T) {
	tr := Dev(1)
	if tr.NumNodes != 24 || tr.Horizon != 1800 {
		t.Errorf("Dev shape = %d nodes / %g s", tr.NumNodes, tr.Horizon)
	}
	if tr.Len() == 0 {
		t.Errorf("Dev trace empty")
	}
}

func TestRandomWaypoint(t *testing.T) {
	cfg := WaypointConfig{
		Name:     "rwp",
		NumNodes: 12,
		Horizon:  600,
		Width:    80, Height: 60,
		Range:    10,
		MinSpeed: 0.5, MaxSpeed: 2,
		MaxPause:    10,
		TickSeconds: 1,
		Seed:        5,
	}
	tr, err := RandomWaypoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("random waypoint produced no contacts")
	}
	for _, c := range tr.Contacts() {
		if c.End > tr.Horizon || c.Start < 0 {
			t.Fatalf("contact out of range: %+v", c)
		}
	}
	// Determinism.
	tr2, err := RandomWaypoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != tr.Len() {
		t.Errorf("waypoint generator not deterministic")
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	base := WaypointConfig{
		NumNodes: 5, Horizon: 100, Width: 10, Height: 10,
		Range: 2, MinSpeed: 1, MaxSpeed: 2, MaxPause: 1,
	}
	for _, tc := range []struct {
		name   string
		mutate func(*WaypointConfig)
	}{
		{"nodes", func(c *WaypointConfig) { c.NumNodes = 1 }},
		{"horizon", func(c *WaypointConfig) { c.Horizon = 0 }},
		{"arena", func(c *WaypointConfig) { c.Width = 0 }},
		{"range", func(c *WaypointConfig) { c.Range = 0 }},
		{"speed order", func(c *WaypointConfig) { c.MaxSpeed = 0.5 }},
		{"speed zero", func(c *WaypointConfig) { c.MinSpeed = 0 }},
		{"pause", func(c *WaypointConfig) { c.MaxPause = -1 }},
	} {
		cfg := base
		tc.mutate(&cfg)
		if _, err := RandomWaypoint(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

func TestRandomWaypointMoreUniformThanConference(t *testing.T) {
	rwp, err := RandomWaypoint(WaypointConfig{
		Name: "rwp", NumNodes: 30, Horizon: 1200,
		Width: 100, Height: 100, Range: 10,
		MinSpeed: 1, MaxSpeed: 2, MaxPause: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	conf := Dev(9)
	cv := func(tr *trace.Trace) float64 {
		counts := tr.ContactCounts()
		xs := make([]float64, len(counts))
		for i, c := range counts {
			xs[i] = float64(c)
		}
		return stats.StdDev(xs) / stats.Mean(xs)
	}
	if cv(rwp) >= cv(conf) {
		t.Errorf("expected RWP contact counts more uniform: cv(rwp)=%g cv(conf)=%g", cv(rwp), cv(conf))
	}
}

func TestOnOffValidation(t *testing.T) {
	cfg := validCfg()
	cfg.OnMean = 100 // OffMean missing
	if err := cfg.Validate(); err == nil {
		t.Errorf("OnMean without OffMean accepted")
	}
	cfg = validCfg()
	cfg.OnMean, cfg.OffMean = -1, -1
	if err := cfg.Validate(); err == nil {
		t.Errorf("negative sojourns accepted")
	}
	cfg = validCfg()
	cfg.PeerMixing = 1.5
	if err := cfg.Validate(); err == nil {
		t.Errorf("peer mixing > 1 accepted")
	}
}

// ON/OFF modulation must preserve calibrated contact volume (the pair
// intensities are scaled by the inverse squared duty cycle) while
// creating heavier-tailed inter-contact gaps.
func TestOnOffPreservesVolumeAddsGaps(t *testing.T) {
	base := validCfg()
	base.NumNodes = 60
	base.Horizon = 7200
	plain, err := Heterogeneous(base)
	if err != nil {
		t.Fatal(err)
	}
	mod := base
	mod.OnMean, mod.OffMean = 600, 300
	onoff, err := Heterogeneous(mod)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(onoff.Len()) / float64(plain.Len())
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("ON/OFF changed contact volume by %.2fx", ratio)
	}
	// Tail: the longest per-node quiet gap should grow under ON/OFF.
	if g, p := maxNodeGap(onoff), maxNodeGap(plain); g < p {
		t.Errorf("ON/OFF max quiet gap %.0f not above plain %.0f", g, p)
	}
}

// maxNodeGap returns the largest gap between consecutive contacts of
// any single node (trace-start and trace-end gaps included).
func maxNodeGap(tr *trace.Trace) float64 {
	last := make([]float64, tr.NumNodes)
	maxGap := 0.0
	for _, c := range tr.Contacts() {
		for _, n := range []trace.NodeID{c.A, c.B} {
			if g := c.Start - last[n]; g > maxGap {
				maxGap = g
			}
			if c.End > last[n] {
				last[n] = c.End
			}
		}
	}
	for n := range last {
		if g := tr.Horizon - last[n]; g > maxGap {
			maxGap = g
		}
	}
	return maxGap
}

func TestPeerMixingRaisesLowRateFloor(t *testing.T) {
	base := validCfg()
	base.NumNodes = 80
	base.Horizon = 7200
	pure, err := Heterogeneous(base)
	if err != nil {
		t.Fatal(err)
	}
	mixCfg := base
	mixCfg.PeerMixing = 0.5
	mixed, err := Heterogeneous(mixCfg)
	if err != nil {
		t.Fatal(err)
	}
	minOf := func(tr *trace.Trace) int {
		m := tr.ContactCounts()[0]
		for _, c := range tr.ContactCounts() {
			if c < m {
				m = c
			}
		}
		return m
	}
	if minOf(mixed) <= minOf(pure) {
		t.Errorf("uniform mixing floor not visible: min %d vs %d", minOf(mixed), minOf(pure))
	}
}
