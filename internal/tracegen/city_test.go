package tracegen

import (
	"testing"

	"repro/internal/trace"
)

func smallCityCfg() CityConfig {
	return CityConfig{
		Name:     "mini-city",
		NumNodes: 300,
		Horizon:  3600,
		Classes: []CityClass{
			{Name: "hub", Fraction: 0.03, MinRate: 3 * cityBaseRate, MaxRate: 5 * cityBaseRate},
			{Name: "commuter", Fraction: 0.25, MinRate: cityBaseRate, MaxRate: 2.5 * cityBaseRate},
			{Name: "resident", Fraction: 0.72, MinRate: 0, MaxRate: cityBaseRate},
		},
		MeanDuration: 8,
		MinDuration:  3,
		PeerMixing:   0.25,
		Seed:         7,
	}
}

func TestCityConfigValidation(t *testing.T) {
	mod := func(f func(*CityConfig)) CityConfig {
		c := smallCityCfg()
		f(&c)
		return c
	}
	for _, tc := range []struct {
		name string
		cfg  CityConfig
	}{
		{"too few nodes", mod(func(c *CityConfig) { c.NumNodes = 1 })},
		{"zero horizon", mod(func(c *CityConfig) { c.Horizon = 0 })},
		{"zero duration", mod(func(c *CityConfig) { c.MeanDuration = 0 })},
		{"negative min duration", mod(func(c *CityConfig) { c.MinDuration = -1 })},
		{"bad mixing", mod(func(c *CityConfig) { c.PeerMixing = 1.5 })},
		{"no classes", mod(func(c *CityConfig) { c.Classes = nil })},
		{"fractions sum", mod(func(c *CityConfig) { c.Classes[0].Fraction = 0.5 })},
		{"inverted rates", mod(func(c *CityConfig) { c.Classes[0].MinRate = 1; c.Classes[0].MaxRate = 0.5 })},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := CityTrace(tc.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestCityTraceDeterministicAndClassStructured(t *testing.T) {
	a, err := CityTrace(smallCityCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := CityTrace(smallCityCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.NumNodes != b.NumNodes {
		t.Fatalf("same config differs: %d/%d vs %d/%d", a.NumNodes, a.Len(), b.NumNodes, b.Len())
	}
	for i := range a.Contacts() {
		if a.Contacts()[i] != b.Contacts()[i] {
			t.Fatalf("contact %d differs between identical configs", i)
		}
	}

	// Class structure: hub nodes (the ID prefix) must out-contact the
	// residential mass by a wide margin on average.
	counts := a.ContactCounts()
	hubs := int(0.03*float64(a.NumNodes) + 0.5)
	hubMean, resMean := 0.0, 0.0
	for i, c := range counts {
		if i < hubs {
			hubMean += float64(c)
		} else if i >= a.NumNodes-int(0.72*float64(a.NumNodes)) {
			resMean += float64(c)
		}
	}
	hubMean /= float64(hubs)
	resMean /= 0.72 * float64(a.NumNodes)
	if hubMean < 3*resMean {
		t.Errorf("hub mean contacts %.1f not well above resident mean %.1f", hubMean, resMean)
	}
}

// The named City datasets must hit the scale contract the registry,
// benchmarks and serving layer advertise. Checking the calibration at
// full 2,000-node scale takes seconds, so it runs only without
// -short; the miniature config covers the mechanics above.
func TestCityScaleContract(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale city generation skipped in -short")
	}
	tr := MustCity(2000, 1)
	if tr.NumNodes < 2000 {
		t.Fatalf("NumNodes = %d, want >= 2000", tr.NumNodes)
	}
	if tr.Len() < 1_000_000 {
		t.Fatalf("contacts = %d, want >= 1,000,000", tr.Len())
	}
	if tr.Horizon != CityHorizon {
		t.Errorf("Horizon = %g, want %g", tr.Horizon, CityHorizon)
	}
	// Contacts must be valid against the declared population (New
	// validates; reaching here means they are). Spot-check density:
	// the instantaneous contact graph must stay sparse (well below one
	// concurrent contact per node), the regime every per-step index
	// in this repository is designed for.
	var contactSeconds float64
	for _, c := range tr.Contacts() {
		contactSeconds += c.Duration()
	}
	if perNode := contactSeconds / tr.Horizon / float64(tr.NumNodes); perNode > 0.5 {
		t.Errorf("mean concurrent contacts per node %.2f too dense", perNode)
	}
	var _ *trace.Trace = tr
}
