package tracegen

import "repro/internal/trace"

// The four named datasets mirror the paper's four 3-hour measurement
// windows (§3): Infocom'06 9AM-12PM and 3PM-6PM, CoNext'06 9AM-12PM
// and 3PM-6PM. All are 98-node conferences with 20 stationary devices.
// Calibration follows the paper's own measurements:
//
//   - Fig 7(a): Infocom per-node contact counts approximately uniform
//     on (0, ~500) over 3 hours → MaxRate ≈ 500/10800 ≈ 0.046/s.
//   - Fig 7(b): CoNext counts reach only ~250 → half the max rate.
//   - Fig 1(b)/(d): the afternoon windows show a contact drop-off
//     from 5:30 PM, modeled as a reduced activity factor in the final
//     half hour.
//
// Seeds are pinned so every figure in EXPERIMENTS.md reproduces
// bit-for-bit.

// Dataset identifies one of the generated measurement windows.
type Dataset int

// The four datasets, in the paper's presentation order.
const (
	Infocom0912 Dataset = iota
	Infocom0336
	Conext0912
	Conext0336
)

// Datasets lists all four named datasets in presentation order.
var Datasets = [...]Dataset{Infocom0912, Infocom0336, Conext0912, Conext0336}

func (d Dataset) String() string {
	switch d {
	case Infocom0912:
		return "Infocom06 9-12"
	case Infocom0336:
		return "Infocom06 3-6"
	case Conext0912:
		return "Conext06 9-12"
	case Conext0336:
		return "Conext06 3-6"
	}
	return "unknown dataset"
}

// ConferenceHorizon is the length of each measurement window (3 hours).
const ConferenceHorizon = 3 * 3600.0

// afternoonDrop models the contact drop-off the paper notes from
// 5:30 to 6:00 PM in the afternoon datasets.
func afternoonDrop(t float64) float64 {
	if t >= ConferenceHorizon-1800 {
		return 0.6
	}
	return 1
}

// Generate builds the named dataset. The result is deterministic.
func Generate(d Dataset) (*trace.Trace, error) {
	// MeanDuration is calibrated so the instantaneous contact graph
	// stays sparse (mean concurrent contacts ≈ 30-40 edges on 98
	// nodes, below the percolation threshold): the paper's optimal
	// path durations reach thousands of seconds, which requires a
	// fragmented instantaneous topology.
	// PeerMixing 0.25 gives each node a uniform component in its peer
	// choice, so low-rate destinations also meet low-rate relays — the
	// mechanism behind the paper's slow (*-out) explosions. The ON/OFF
	// presence process (15 min on / 7.5 min off on average) produces
	// the heavy-tailed inter-contact gaps behind the paper's long
	// optimal path durations (Fig 4a).
	cfg := Config{
		Name:         d.String(),
		NumNodes:     98,
		Stationary:   20,
		Horizon:      ConferenceHorizon,
		MeanDuration: 25,
		MinDuration:  5,
		PeerMixing:   0.25,
		OnMean:       900,
		OffMean:      450,
	}
	switch d {
	case Infocom0912:
		cfg.MaxRate, cfg.Seed = 0.046, 101
	case Infocom0336:
		cfg.MaxRate, cfg.Seed = 0.046, 102
		cfg.Activity = afternoonDrop
	case Conext0912:
		cfg.MaxRate, cfg.Seed = 0.023, 103
	case Conext0336:
		cfg.MaxRate, cfg.Seed = 0.023, 104
		cfg.Activity = afternoonDrop
	default:
		return nil, &UnknownDatasetError{Dataset: d}
	}
	return Heterogeneous(cfg)
}

// MustGenerate is Generate for static datasets; it panics on error,
// which cannot happen for the named constants.
func MustGenerate(d Dataset) *trace.Trace {
	t, err := Generate(d)
	if err != nil {
		panic(err)
	}
	return t
}

// UnknownDatasetError reports a Dataset value outside the named range.
type UnknownDatasetError struct{ Dataset Dataset }

func (e *UnknownDatasetError) Error() string {
	return "tracegen: unknown dataset id"
}

// Dev generates a small, fast trace with the same heterogeneous
// structure as the conference datasets. It is intended for tests,
// examples and quick experimentation: 24 nodes, 30 simulated minutes.
func Dev(seed int64) *trace.Trace {
	t, err := Heterogeneous(Config{
		Name:         "dev",
		NumNodes:     24,
		Stationary:   4,
		Horizon:      1800,
		MaxRate:      0.08,
		MeanDuration: 60,
		MinDuration:  5,
		Seed:         seed,
	})
	if err != nil {
		panic(err) // static config is valid
	}
	return t
}
