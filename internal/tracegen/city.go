package tracegen

import (
	"fmt"

	"math/rand"

	"repro/internal/trace"
)

// The city-scale family extends the paper's 98-node conference
// windows to the population sizes the ROADMAP's serving layer targets:
// thousands of devices over half a day, millions of contact records,
// with the heterogeneity the paper identifies as the driver of every
// result pushed further than a conference can show it. Instead of one
// Uniform(0, max) rate draw, the population splits into explicit rate
// classes — a large low-rate residential mass, a commuter class
// moving through shared spaces, and a small set of hub devices
// (transit gates, kiosks) whose rates sit an order of magnitude
// higher — so in/out rate splits, gradient forwarding and explosion
// asymmetries all have city-scale analogues. Pairwise contacts remain
// product-form Poisson processes (§5.1) via the same fromRates engine
// as the conference generators, so every analysis in the repository
// applies unchanged.

// CityClass is one rate class of a city population: a fraction of the
// nodes drawing per-node contact rates uniformly from [MinRate,
// MaxRate] contacts/second.
type CityClass struct {
	Name             string
	Fraction         float64
	MinRate, MaxRate float64
}

// CityConfig parametrizes the city-scale generator.
type CityConfig struct {
	Name     string
	NumNodes int
	Horizon  float64 // seconds
	Classes  []CityClass

	MeanDuration float64 // mean contact duration, seconds
	MinDuration  float64

	// PeerMixing blends peer selection between rate-weighted and
	// uniform, exactly as in Config.
	PeerMixing float64

	Seed int64
}

// Validate reports whether the configuration is usable.
func (c *CityConfig) Validate() error {
	switch {
	case c.NumNodes < 2:
		return fmt.Errorf("tracegen: city needs at least 2 nodes, have %d", c.NumNodes)
	case c.Horizon <= 0:
		return fmt.Errorf("tracegen: city horizon %g must be positive", c.Horizon)
	case c.MeanDuration <= 0:
		return fmt.Errorf("tracegen: city mean duration %g must be positive", c.MeanDuration)
	case c.MinDuration < 0:
		return fmt.Errorf("tracegen: city min duration %g must be nonnegative", c.MinDuration)
	case c.PeerMixing < 0 || c.PeerMixing > 1:
		return fmt.Errorf("tracegen: city peer mixing %g outside [0,1]", c.PeerMixing)
	case len(c.Classes) == 0:
		return fmt.Errorf("tracegen: city needs at least one rate class")
	}
	var frac float64
	for _, cl := range c.Classes {
		if cl.Fraction < 0 || cl.MinRate < 0 || cl.MaxRate < cl.MinRate {
			return fmt.Errorf("tracegen: city class %q invalid (fraction %g, rates [%g,%g])",
				cl.Name, cl.Fraction, cl.MinRate, cl.MaxRate)
		}
		frac += cl.Fraction
	}
	if frac < 0.999 || frac > 1.001 {
		return fmt.Errorf("tracegen: city class fractions sum to %g, want 1", frac)
	}
	return nil
}

// CityTrace generates a city-scale trace under cfg. The same
// configuration and seed always produce the same trace. Class
// membership is assigned in node order (class 0 first), so stationary
// hub devices occupy a known ID range like the conference generators'
// stationary prefix.
func CityTrace(cfg CityConfig) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rates := make([]float64, cfg.NumNodes)
	node := 0
	for i, cl := range cfg.Classes {
		count := int(cl.Fraction*float64(cfg.NumNodes) + 0.5)
		if i == len(cfg.Classes)-1 {
			count = cfg.NumNodes - node // absorb rounding in the last class
		}
		for j := 0; j < count && node < cfg.NumNodes; j++ {
			rates[node] = cl.MinRate + rng.Float64()*(cl.MaxRate-cl.MinRate)
			node++
		}
	}
	inner := Config{
		Name:         cfg.Name,
		NumNodes:     cfg.NumNodes,
		Horizon:      cfg.Horizon,
		MaxRate:      1, // unused by fromRates beyond validation; rates are explicit
		MeanDuration: cfg.MeanDuration,
		MinDuration:  cfg.MinDuration,
		PeerMixing:   cfg.PeerMixing,
		Seed:         cfg.Seed,
	}
	return fromRates(inner, rng, rates)
}

// cityBaseRate calibrates per-node contact intensity so a 2,000-node,
// 12-hour city produces just over one million contact records (the
// class mix below has mean rate ≈0.92·base; records ≈ horizon·Σλ/2).
//
// The calibration also keeps the *instantaneous* contact graph below
// the percolation threshold (short contacts, a small hub class with
// bounded rates): like the conference windows, a city snapshot must
// stay fragmented — a per-step giant component would make every
// frame's component index quadratic in the population and has no
// analogue in short-range radio measurements.
const cityBaseRate = 0.0265

// CityHorizon is the default city observation window (12 hours).
const CityHorizon = 12 * 3600.0

// City generates the named city-scale dataset: nodes devices over 12
// hours in three rate classes — 72% residents Uniform(0, base), 25%
// commuters Uniform(base, 2.5·base), 3% hub devices Uniform(3·base,
// 5·base). At 2,000 nodes this yields ≥1M contact records; the count
// scales linearly with the population. The result is deterministic
// for a given (nodes, seed).
func City(nodes int, seed int64) (*trace.Trace, error) {
	return CityTrace(CityConfig{
		Name:     fmt.Sprintf("city-%d", nodes),
		NumNodes: nodes,
		Horizon:  CityHorizon,
		Classes: []CityClass{
			{Name: "hub", Fraction: 0.03, MinRate: 3 * cityBaseRate, MaxRate: 5 * cityBaseRate},
			{Name: "commuter", Fraction: 0.25, MinRate: cityBaseRate, MaxRate: 2.5 * cityBaseRate},
			{Name: "resident", Fraction: 0.72, MinRate: 0, MaxRate: cityBaseRate},
		},
		MeanDuration: 8,
		MinDuration:  3,
		PeerMixing:   0.25,
		Seed:         seed,
	})
}

// MustCity is City for static datasets; it panics on error, which
// cannot happen for valid node counts.
func MustCity(nodes int, seed int64) *trace.Trace {
	t, err := City(nodes, seed)
	if err != nil {
		panic(err)
	}
	return t
}
