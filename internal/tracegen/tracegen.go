// Package tracegen synthesizes contact traces with the statistical
// structure of the paper's iMote datasets.
//
// The paper's empirical inputs (Infocom'06 and CoNext'06 Bluetooth
// contact logs) are not redistributable. This package substitutes
// generators that reproduce the features the paper itself identifies
// as the drivers of every result:
//
//   - per-node contact rates approximately Uniform(0, max) (Fig 7),
//     including nodes with rates near zero;
//   - Poisson pairwise contact processes (the §5.1 model), with
//     pairwise intensity proportional to the product of endpoint
//     rates so that each node's total rate matches its drawn rate;
//   - a conference population of 98 nodes of which 20 are stationary
//     (§3), with stationary nodes drawn from the upper rate range;
//   - 120-second inquiry-scan quantization of contact start times;
//   - bounded, right-skewed contact durations.
//
// A homogeneous generator (all nodes share one rate) validates the
// analytic model of §5.1, and a random-waypoint generator provides the
// classical mobility baseline the paper's related-work section
// contrasts against.
package tracegen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/trace"
)

// Config parametrizes the heterogeneous-Poisson conference generator.
type Config struct {
	Name       string
	NumNodes   int     // total devices (paper: 98)
	Stationary int     // stationary devices placed at the venue (paper: 20)
	Horizon    float64 // trace length in seconds (paper: 3 h = 10800 s)

	// MaxRate is the maximum per-node contact rate in contacts/second.
	// Mobile nodes draw λᵢ ~ Uniform(0, MaxRate); stationary nodes draw
	// λᵢ ~ Uniform(MaxRate/2, MaxRate), reflecting fixed devices that
	// see a steady stream of passersby.
	MaxRate float64

	// MeanDuration is the mean contact duration in seconds. Durations
	// are exponential with this mean, clipped to [MinDuration, ∞).
	MeanDuration float64
	MinDuration  float64

	// ScanInterval, when positive, quantizes contact start times to an
	// inquiry-scan grid (paper devices scan every 120 s). Zero disables
	// quantization.
	ScanInterval float64

	// OnMean and OffMean, when both positive, give every node an
	// alternating ON/OFF presence process (exponential sojourns with
	// these means): contacts only occur while both endpoints are ON.
	// Pair intensities are scaled by the inverse squared duty cycle so
	// per-node contact counts keep their calibrated means. This
	// produces the heavy-tailed inter-contact times of real conference
	// traces (attendees leave the venue), and with them the long
	// optimal-path durations of Fig 4(a). Zero disables the process.
	OnMean, OffMean float64

	// PeerMixing blends peer selection between rate-weighted
	// (product-form) and uniform. With probability PeerMixing a
	// contact initiated by node i lands on a uniformly random peer;
	// otherwise the peer is chosen proportionally to its rate. Zero
	// (pure product form) makes every low-rate node's contacts land on
	// the high-rate core; a positive value reproduces the paper's
	// observation that explosions reaching a low-rate destination can
	// stay slow (§5.2), because some of its few contacts are with
	// other low-rate nodes carrying few paths.
	PeerMixing float64

	// Activity optionally modulates contact intensity over time; the
	// generator thins contact events by comparing a uniform draw to
	// Activity(t) ∈ [0, 1]. Nil means constant activity.
	Activity func(t float64) float64

	Seed int64
}

// Validate reports whether the configuration is usable.
func (c *Config) Validate() error {
	switch {
	case c.NumNodes < 2:
		return fmt.Errorf("tracegen: need at least 2 nodes, have %d", c.NumNodes)
	case c.Stationary < 0 || c.Stationary > c.NumNodes:
		return fmt.Errorf("tracegen: stationary count %d out of range", c.Stationary)
	case c.Horizon <= 0:
		return fmt.Errorf("tracegen: horizon %g must be positive", c.Horizon)
	case c.MaxRate <= 0:
		return fmt.Errorf("tracegen: max rate %g must be positive", c.MaxRate)
	case c.MeanDuration <= 0:
		return fmt.Errorf("tracegen: mean duration %g must be positive", c.MeanDuration)
	case c.MinDuration < 0:
		return fmt.Errorf("tracegen: min duration %g must be nonnegative", c.MinDuration)
	case c.PeerMixing < 0 || c.PeerMixing > 1:
		return fmt.Errorf("tracegen: peer mixing %g outside [0,1]", c.PeerMixing)
	case (c.OnMean > 0) != (c.OffMean > 0):
		return fmt.Errorf("tracegen: OnMean and OffMean must both be set or both zero")
	case c.OnMean < 0 || c.OffMean < 0:
		return fmt.Errorf("tracegen: negative ON/OFF sojourn mean")
	}
	return nil
}

// Heterogeneous generates a conference trace under cfg. The same
// configuration and seed always produce the same trace.
func Heterogeneous(cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Draw per-node target rates. Stationary nodes occupy the upper
	// rate range; mobile nodes span (0, MaxRate).
	rates := make([]float64, cfg.NumNodes)
	for i := range rates {
		if i < cfg.Stationary {
			rates[i] = cfg.MaxRate * (0.5 + 0.5*rng.Float64())
		} else {
			rates[i] = cfg.MaxRate * rng.Float64()
		}
	}
	return fromRates(cfg, rng, rates)
}

// Homogeneous generates a trace in which every node contacts the
// population at the same rate λ — the setting of the §5.1 analytic
// model. All other knobs mirror Config.
func Homogeneous(name string, numNodes int, horizon, lambda, meanDuration float64, seed int64) (*trace.Trace, error) {
	cfg := Config{
		Name:         name,
		NumNodes:     numNodes,
		Horizon:      horizon,
		MaxRate:      lambda,
		MeanDuration: meanDuration,
		Seed:         seed,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	rates := make([]float64, numNodes)
	for i := range rates {
		rates[i] = lambda
	}
	return fromRates(cfg, rng, rates)
}

// fromRates realizes pairwise Poisson contact processes. Each node i
// initiates contacts at rate λᵢ; the peer is rate-weighted with
// probability 1−β and uniform with probability β (β = PeerMixing).
// The symmetrized pair intensity is halved so each node's total
// contact rate stays approximately its drawn λᵢ (plus a small uniform
// floor of β·λ̄/2 when β > 0).
func fromRates(cfg Config, rng *rand.Rand, rates []float64) (*trace.Trace, error) {
	var sum float64
	for _, r := range rates {
		sum += r
	}
	if sum == 0 {
		return trace.New(cfg.Name, cfg.NumNodes, cfg.Horizon, nil)
	}
	n := cfg.NumNodes
	beta := cfg.PeerMixing

	// Per-node ON/OFF presence: pair intensities are inflated by the
	// inverse probability that both endpoints are ON, so expected
	// contact counts stay calibrated.
	var pres []presence
	rateScale := 1.0
	if cfg.OnMean > 0 {
		pres = make([]presence, n)
		for i := range pres {
			pres[i] = newPresence(rng, cfg.OnMean, cfg.OffMean, cfg.Horizon)
		}
		duty := cfg.OnMean / (cfg.OnMean + cfg.OffMean)
		rateScale = 1 / (duty * duty)
	}

	var contacts []trace.Contact
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var mu float64
			if beta == 0 {
				mu = rates[i] * rates[j] / sum
			} else {
				pij := beta/float64(n-1) + (1-beta)*rates[j]/(sum-rates[i])
				pji := beta/float64(n-1) + (1-beta)*rates[i]/(sum-rates[j])
				mu = (rates[i]*pij + rates[j]*pji) / 2
			}
			if mu <= 0 {
				continue
			}
			var onBoth func(float64) bool
			if pres != nil {
				pi, pj := &pres[i], &pres[j]
				onBoth = func(t float64) bool { return pi.onAt(t) && pj.onAt(t) }
			}
			contacts = appendPairContacts(contacts, cfg, rng, trace.NodeID(i), trace.NodeID(j), mu*rateScale, onBoth)
		}
	}
	return trace.New(cfg.Name, cfg.NumNodes, cfg.Horizon, contacts)
}

// presence is one node's alternating ON/OFF timeline: switches holds
// the sorted state-change times, startOn the initial state.
type presence struct {
	switches []float64
	startOn  bool
}

func newPresence(rng *rand.Rand, onMean, offMean, horizon float64) presence {
	p := presence{startOn: rng.Float64() < onMean/(onMean+offMean)}
	on := p.startOn
	t := 0.0
	for t < horizon {
		if on {
			t += rng.ExpFloat64() * onMean
		} else {
			t += rng.ExpFloat64() * offMean
		}
		if t < horizon {
			p.switches = append(p.switches, t)
		}
		on = !on
	}
	return p
}

// onAt reports whether the node is present at time t.
func (p *presence) onAt(t float64) bool {
	i := sort.SearchFloat64s(p.switches, t)
	if i%2 == 0 {
		return p.startOn
	}
	return !p.startOn
}

// appendPairContacts draws the contact events of one pair: Poisson
// arrivals at rate mu, exponential durations, merged if overlapping,
// thinned by the activity profile and the endpoints' presence, and
// scan-quantized.
func appendPairContacts(dst []trace.Contact, cfg Config, rng *rand.Rand, a, b trace.NodeID, mu float64, onBoth func(float64) bool) []trace.Contact {
	t := rng.ExpFloat64() / mu
	var lastEnd = math.Inf(-1)
	for t < cfg.Horizon {
		start := t
		t += rng.ExpFloat64() / mu
		if cfg.Activity != nil && rng.Float64() >= clamp01(cfg.Activity(start)) {
			continue
		}
		if onBoth != nil && !onBoth(start) {
			continue
		}
		dur := rng.ExpFloat64() * cfg.MeanDuration
		if dur < cfg.MinDuration {
			dur = cfg.MinDuration
		}
		end := start + dur
		if cfg.ScanInterval > 0 {
			// An inquiry scan detects the contact at the next grid
			// point at or after its physical start; the logged end is
			// the last grid point covered.
			g := cfg.ScanInterval
			qs := math.Ceil(start/g) * g
			qe := math.Floor(end/g) * g
			if qe < qs {
				continue // contact fell entirely between scans
			}
			start, end = qs, qe
		}
		if end > cfg.Horizon {
			end = cfg.Horizon
		}
		if start >= cfg.Horizon || end < start {
			continue
		}
		if start <= lastEnd {
			// Merge with the previous contact of this pair.
			if end > lastEnd {
				dst[len(dst)-1].End = end
				lastEnd = end
			}
			continue
		}
		dst = append(dst, trace.Contact{A: a, B: b, Start: start, End: end})
		lastEnd = end
	}
	return dst
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ErrBadWaypoint is wrapped by random-waypoint validation failures.
var ErrBadWaypoint = errors.New("tracegen: bad waypoint config")

// WaypointConfig parametrizes the random-waypoint mobility generator.
type WaypointConfig struct {
	Name     string
	NumNodes int
	Horizon  float64

	Width, Height float64 // arena dimensions in meters
	Range         float64 // radio range in meters (Bluetooth ≈ 10 m)

	MinSpeed, MaxSpeed float64 // m/s
	MaxPause           float64 // seconds paused at each waypoint

	TickSeconds float64 // proximity sampling interval (default 1 s)
	Seed        int64
}

func (c *WaypointConfig) validate() error {
	switch {
	case c.NumNodes < 2:
		return fmt.Errorf("%w: need at least 2 nodes", ErrBadWaypoint)
	case c.Horizon <= 0:
		return fmt.Errorf("%w: horizon %g", ErrBadWaypoint, c.Horizon)
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("%w: arena %gx%g", ErrBadWaypoint, c.Width, c.Height)
	case c.Range <= 0:
		return fmt.Errorf("%w: range %g", ErrBadWaypoint, c.Range)
	case c.MinSpeed <= 0 || c.MaxSpeed < c.MinSpeed:
		return fmt.Errorf("%w: speeds [%g,%g]", ErrBadWaypoint, c.MinSpeed, c.MaxSpeed)
	case c.MaxPause < 0:
		return fmt.Errorf("%w: pause %g", ErrBadWaypoint, c.MaxPause)
	}
	return nil
}

// waypointNode is the kinematic state of one random-waypoint node.
type waypointNode struct {
	x, y       float64
	tx, ty     float64 // current target waypoint
	speed      float64
	pauseUntil float64
}

// RandomWaypoint simulates 2-D random-waypoint mobility and converts
// proximity (distance <= Range) into contact intervals. This is the
// homogeneous mobility baseline the paper's related work critiques:
// all nodes draw speeds from the same distribution, so per-node
// contact rates are far more uniform than in real conference traces.
func RandomWaypoint(cfg WaypointConfig) (*trace.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tick := cfg.TickSeconds
	if tick <= 0 {
		tick = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	nodes := make([]waypointNode, cfg.NumNodes)
	for i := range nodes {
		nodes[i] = waypointNode{
			x: rng.Float64() * cfg.Width,
			y: rng.Float64() * cfg.Height,
		}
		retarget(&nodes[i], cfg, rng, 0)
	}

	// open[i*N+j] holds the start time of an ongoing contact, or -1.
	n := cfg.NumNodes
	open := make([]float64, n*n)
	for i := range open {
		open[i] = -1
	}
	var contacts []trace.Contact
	r2 := cfg.Range * cfg.Range

	for t := 0.0; t < cfg.Horizon; t += tick {
		for i := range nodes {
			step(&nodes[i], cfg, rng, t, tick)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := nodes[i].x - nodes[j].x
				dy := nodes[i].y - nodes[j].y
				near := dx*dx+dy*dy <= r2
				k := i*n + j
				switch {
				case near && open[k] < 0:
					open[k] = t
				case !near && open[k] >= 0:
					contacts = append(contacts, trace.Contact{
						A: trace.NodeID(i), B: trace.NodeID(j), Start: open[k], End: t,
					})
					open[k] = -1
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if k := i*n + j; open[k] >= 0 {
				contacts = append(contacts, trace.Contact{
					A: trace.NodeID(i), B: trace.NodeID(j), Start: open[k], End: cfg.Horizon,
				})
			}
		}
	}
	return trace.New(cfg.Name, cfg.NumNodes, cfg.Horizon, contacts)
}

func retarget(nd *waypointNode, cfg WaypointConfig, rng *rand.Rand, now float64) {
	nd.tx = rng.Float64() * cfg.Width
	nd.ty = rng.Float64() * cfg.Height
	nd.speed = cfg.MinSpeed + rng.Float64()*(cfg.MaxSpeed-cfg.MinSpeed)
	nd.pauseUntil = now + rng.Float64()*cfg.MaxPause
}

func step(nd *waypointNode, cfg WaypointConfig, rng *rand.Rand, now, dt float64) {
	if now < nd.pauseUntil {
		return
	}
	dx := nd.tx - nd.x
	dy := nd.ty - nd.y
	dist := math.Hypot(dx, dy)
	travel := nd.speed * dt
	if dist <= travel {
		nd.x, nd.y = nd.tx, nd.ty
		retarget(nd, cfg, rng, now)
		return
	}
	nd.x += dx / dist * travel
	nd.y += dy / dist * travel
}
