// Package artstore is the versioned on-disk artifact store behind warm
// replica starts: the expensive per-dataset artifacts — built
// space-time graphs and simulator oracle tables — serialized to a
// compact binary format a cold process loads back in milliseconds
// instead of re-running the build (0.71s and ~300MB of allocation for
// the city graph).
//
// # File format
//
// Every artifact file is
//
//	magic [8]byte | version u32 | headerLen u32 | headerCRC u32 |
//	header JSON | padding | section payloads
//
// with all fixed-width integers little-endian. The JSON header carries
// the artifact kind, the build parameters (dataset name, graph delta),
// a digest of the source trace, and a section table; each section is a
// flat int32 array with its own CRC-32C, laid out 8-byte aligned so a
// memory-mapped file can be aliased directly as []int32 slabs with no
// decode pass. The header's offsets are relative to the payload base,
// which depends only on the header length.
//
// # Guarantees
//
// Loads are all-or-nothing: a missing file, unknown magic or version,
// header or section checksum mismatch, truncation, or a digest or
// parameter mismatch all fail with an error wrapping ErrMiss, never a
// partially-loaded artifact — callers treat every failure as a cache
// miss and fall back to a live build. The decoded tables are then
// re-validated structurally by the owning package (stgraph.FromSnapshot,
// dtnsim.NewOracleFromOrder), so even a file that passes its checksums
// cannot produce an artifact that answers queries differently from a
// fresh build: the restored graph and oracle are byte-identical to
// freshly built ones or the load fails.
//
// Writes are atomic (temp file + rename into place), so a crashed or
// concurrent warm run never leaves a torn file where a reader can see
// it.
package artstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"unsafe"

	"repro/internal/dtnsim"
	"repro/internal/stgraph"
	"repro/internal/trace"
)

// FormatVersion is the on-disk format version. Files written by a
// different version are treated as misses and rebuilt.
const FormatVersion = 1

// magic identifies an artifact store file.
var magic = [8]byte{'P', 'S', 'N', 'A', 'R', 'T', 'F', '\n'}

// ErrMiss is wrapped by every Load failure: not-found, version skew,
// digest or parameter mismatch, corruption, truncation. Callers match
// it with errors.Is and fall back to a live build.
var ErrMiss = errors.New("artstore: artifact unavailable")

// ErrCorrupt additionally marks the Load failures caused by damage to
// the artifact file itself — bad magic, truncation, checksum mismatch,
// malformed or inconsistent section tables, or decoded tables the
// owning package rejects structurally. Benign misses (file absent,
// format version skew, digest or build-parameter mismatch) do NOT
// match: those files are valid artifacts for some other input and must
// be left in place. A corrupt file will fail identically on every
// future load, so callers should quarantine it (see Store.Quarantine)
// instead of re-reading and re-failing it on every boot. Every
// ErrCorrupt error also matches ErrMiss — corruption is still a miss,
// and the live-build fallback applies unchanged.
var ErrCorrupt = errors.New("artstore: artifact corrupt")

// CorruptError is the concrete error behind ErrCorrupt matches. Path
// is the offending file, so a caller holding only the error can
// quarantine it.
type CorruptError struct {
	Path string
	Err  error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("%v: %v", ErrCorrupt, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Is makes errors.Is match both sentinels: ErrCorrupt (quarantine) and
// ErrMiss (fall back to a live build).
func (e *CorruptError) Is(target error) bool {
	return target == ErrCorrupt || target == ErrMiss
}

// Artifact kinds stored in the header.
const (
	kindGraph  = "stgraph"
	kindOracle = "simoracle"
)

// MmapPolicy selects how Load maps artifact files into memory.
type MmapPolicy int

const (
	// MmapAuto memory-maps when the platform supports it, falling back
	// to a plain read. The default.
	MmapAuto MmapPolicy = iota
	// MmapNever always reads the file into fresh memory.
	MmapNever
	// MmapAlways requires a memory mapping; platforms without mmap
	// support treat every load as a miss.
	MmapAlways
)

// Store reads and writes artifacts under a directory. The zero value
// is not usable; Dir must be set. A Store is stateless and safe for
// concurrent use.
//
// Mappings created by Load are never unmapped: a loaded graph's slabs
// alias the mapping and live for the life of the process, exactly like
// a built graph's slabs.
type Store struct {
	Dir  string
	Mmap MmapPolicy
}

// section locates one int32 array in the payload area. Off is relative
// to the payload base (8-byte aligned); Len is always 4*Count.
type section struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	Off   int64  `json:"off"`
	Len   int64  `json:"len"`
	CRC   uint32 `json:"crc"`
}

// header is the JSON block after the fixed prefix.
type header struct {
	Kind     string    `json:"kind"`
	Dataset  string    `json:"dataset"`
	Delta    float64   `json:"delta,omitempty"`
	Digest   string    `json:"digest"` // %016x of TraceDigest
	NumNodes int       `json:"numNodes"`
	Steps    int       `json:"steps,omitempty"`
	Sections []section `json:"sections"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// nativeLE reports whether the host is little-endian, in which case
// int32 slabs alias file bytes directly instead of being decoded.
var nativeLE = func() bool {
	x := uint32(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func align8(x int64) int64 { return (x + 7) &^ 7 }

// sanitize maps a dataset name to a filename-safe token.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}

// GraphPath returns the store path of a graph artifact.
func (s *Store) GraphPath(dataset string, delta float64) string {
	return filepath.Join(s.Dir, fmt.Sprintf("graph_%s_d%s.psna",
		sanitize(dataset), strconv.FormatFloat(delta, 'g', -1, 64)))
}

// OraclePath returns the store path of a simulator oracle artifact.
func (s *Store) OraclePath(dataset string) string {
	return filepath.Join(s.Dir, fmt.Sprintf("oracle_%s.psna", sanitize(dataset)))
}

// HasGraph reports whether a graph artifact file for (dataset, delta)
// is present in the store. Presence only — the file may still fail a
// digest or integrity check at load time — but it is exactly the cheap
// signal a health probe needs to tell a warmed replica from a cold one
// without touching the trace.
func (s *Store) HasGraph(dataset string, delta float64) bool {
	return isRegular(s.GraphPath(dataset, delta))
}

// HasOracle reports whether an oracle artifact file for dataset is
// present in the store (presence only, like HasGraph).
func (s *Store) HasOracle(dataset string) bool {
	return isRegular(s.OraclePath(dataset))
}

func isRegular(path string) bool {
	info, err := os.Stat(path)
	return err == nil && info.Mode().IsRegular()
}

// miss wraps a benign load failure so errors.Is(err, ErrMiss) holds
// (but not ErrCorrupt): the file is absent or a valid artifact for a
// different input, and must stay where it is.
func miss(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrMiss}, args...)...)
}

// corrupt wraps a load failure caused by file damage, matching both
// ErrCorrupt and ErrMiss and carrying the path for quarantining.
func corrupt(path, format string, args ...any) error {
	return &CorruptError{Path: path, Err: fmt.Errorf(format, args...)}
}

// Quarantine renames a corrupt artifact file out of the load path by
// appending ".quarantined", so later boots miss cleanly (and rebuild)
// instead of re-reading and re-failing the same bytes, while the file
// itself is preserved for inspection. It returns the new path. An
// existing quarantined file of the same name is overwritten — it is
// the same corrupt artifact.
func (s *Store) Quarantine(path string) (string, error) {
	qpath := path + ".quarantined"
	if err := os.Rename(path, qpath); err != nil {
		return "", fmt.Errorf("artstore: quarantine: %w", err)
	}
	return qpath, nil
}

// int32Bytes views an int32 slice as raw little-endian bytes. On
// little-endian hosts this is a zero-copy cast; elsewhere it encodes.
func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if nativeLE {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, x := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(x))
	}
	return out
}

// writeFile atomically writes an artifact: header h (its Sections
// filled in here) and the named int32 payloads, to path.
func writeFile(path string, h header, names []string, payloads [][]int32) error {
	if len(names) != len(payloads) {
		panic("artstore: names/payloads mismatch")
	}
	// Lay out sections relative to the payload base so the header's
	// length does not feed back into the offsets it contains.
	var off int64
	h.Sections = make([]section, len(names))
	raws := make([][]byte, len(payloads))
	for i, p := range payloads {
		raw := int32Bytes(p)
		raws[i] = raw
		h.Sections[i] = section{
			Name:  names[i],
			Count: len(p),
			Off:   off,
			Len:   int64(len(raw)),
			CRC:   crc32.Checksum(raw, castagnoli),
		}
		off = align8(off + int64(len(raw)))
	}
	hdrJSON, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("artstore: encode header: %w", err)
	}

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("artstore: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	w := bufio.NewWriterSize(tmp, 1<<20)
	var fixed [20]byte
	copy(fixed[:8], magic[:])
	binary.LittleEndian.PutUint32(fixed[8:], FormatVersion)
	binary.LittleEndian.PutUint32(fixed[12:], uint32(len(hdrJSON)))
	binary.LittleEndian.PutUint32(fixed[16:], crc32.Checksum(hdrJSON, castagnoli))
	w.Write(fixed[:])
	w.Write(hdrJSON)
	var pad [8]byte
	prefix := int64(len(fixed) + len(hdrJSON))
	w.Write(pad[:align8(prefix)-prefix])
	var written int64
	for i, raw := range raws {
		w.Write(pad[:h.Sections[i].Off-written])
		written = h.Sections[i].Off
		if _, err := w.Write(raw); err != nil {
			return fmt.Errorf("artstore: write %s: %w", path, err)
		}
		written += int64(len(raw))
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("artstore: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return fmt.Errorf("artstore: write %s: %w", path, err)
	}
	name := tmp.Name()
	tmp = nil
	os.Chmod(name, 0o644) // CreateTemp defaults to 0600
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("artstore: write %s: %w", path, err)
	}
	return nil
}

// readFile opens path per the store's mmap policy and returns its
// validated header and full contents. All failures wrap ErrMiss.
func (s *Store) readFile(path string) (*header, []byte, error) {
	var data []byte
	switch s.Mmap {
	case MmapNever:
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, miss("%v", err)
		}
		data = b
	default:
		b, err := mapFile(path)
		if err != nil {
			if s.Mmap == MmapAlways {
				return nil, nil, miss("mmap %s: %v", path, err)
			}
			b, err = os.ReadFile(path)
			if err != nil {
				return nil, nil, miss("%v", err)
			}
		}
		data = b
	}

	if len(data) < 20 || [8]byte(data[:8]) != magic {
		return nil, nil, corrupt(path, "%s: not an artifact file", path)
	}
	// Version skew is a benign miss — the file is a valid artifact of
	// another build of this software, not damage.
	if v := binary.LittleEndian.Uint32(data[8:]); v != FormatVersion {
		return nil, nil, miss("%s: format version %d, want %d", path, v, FormatVersion)
	}
	hdrLen := int64(binary.LittleEndian.Uint32(data[12:]))
	hdrCRC := binary.LittleEndian.Uint32(data[16:])
	if 20+hdrLen > int64(len(data)) {
		return nil, nil, corrupt(path, "%s: truncated header", path)
	}
	hdrJSON := data[20 : 20+hdrLen]
	if crc32.Checksum(hdrJSON, castagnoli) != hdrCRC {
		return nil, nil, corrupt(path, "%s: header checksum mismatch", path)
	}
	var h header
	if err := json.Unmarshal(hdrJSON, &h); err != nil {
		return nil, nil, corrupt(path, "%s: header: %v", path, err)
	}
	return &h, data, nil
}

// sectionInt32s extracts and checksums one section. On little-endian
// hosts the returned slice aliases data (zero-copy for mapped files);
// the caller must treat it as read-only.
func sectionInt32s(path string, data []byte, sec section) ([]int32, error) {
	base := align8(20 + int64(binary.LittleEndian.Uint32(data[12:])))
	off := base + sec.Off
	if sec.Off < 0 || sec.Count < 0 || sec.Len != int64(sec.Count)*4 || off < base || off+sec.Len > int64(len(data)) {
		return nil, corrupt(path, "%s: section %s [%d,%d) outside file of %d bytes",
			path, sec.Name, off, off+sec.Len, len(data))
	}
	raw := data[off : off+sec.Len]
	if crc32.Checksum(raw, castagnoli) != sec.CRC {
		return nil, corrupt(path, "%s: section %s checksum mismatch", path, sec.Name)
	}
	if sec.Count == 0 {
		return nil, nil
	}
	if nativeLE && uintptr(unsafe.Pointer(&raw[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), sec.Count), nil
	}
	out := make([]int32, sec.Count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out, nil
}

// sectionMap indexes sections by name, rejecting duplicates.
func sectionMap(path string, h *header) (map[string]section, error) {
	m := make(map[string]section, len(h.Sections))
	for _, sec := range h.Sections {
		if _, ok := m[sec.Name]; ok {
			return nil, corrupt(path, "%s: duplicate section %s", path, sec.Name)
		}
		m[sec.Name] = sec
	}
	return m, nil
}

// graphSections is the serialization order of stgraph.Snapshot slabs.
var graphSections = []string{
	"stepFrame",
	"frameNbrOff", "frameActiveOff", "frameCompOff", "frameDistOff",
	"offsets", "compID",
	"nbrs", "active", "members",
	"compBounds", "distRef", "dist",
}

// snapshotSlabs returns the snapshot's slabs in graphSections order.
func snapshotSlabs(snap *stgraph.Snapshot) [][]int32 {
	return [][]int32{
		snap.StepFrame,
		snap.FrameNbrOff, snap.FrameActiveOff, snap.FrameCompOff, snap.FrameDistOff,
		snap.Offsets, snap.CompID,
		snap.Nbrs, snap.Active, snap.Members,
		snap.CompBounds, snap.DistRef, snap.Dist,
	}
}

// SaveGraph writes the built graph for (dataset, g.Delta) to the
// store, keyed by the source trace digest. It returns the file path.
func (s *Store) SaveGraph(dataset string, digest uint64, g *stgraph.Graph) (string, error) {
	snap := g.Snapshot()
	path := s.GraphPath(dataset, g.Delta)
	h := header{
		Kind:     kindGraph,
		Dataset:  dataset,
		Delta:    g.Delta,
		Digest:   fmt.Sprintf("%016x", digest),
		NumNodes: snap.NumNodes,
		Steps:    snap.Steps,
	}
	if err := writeFile(path, h, graphSections, snapshotSlabs(snap)); err != nil {
		return "", err
	}
	return path, nil
}

// LoadGraph loads the graph artifact for (dataset, delta), verifying
// it was built from a trace with the given digest. Any failure —
// missing file, version skew, checksum or digest mismatch, structural
// corruption — wraps ErrMiss; the caller falls back to stgraph.New.
func (s *Store) LoadGraph(dataset string, delta float64, digest uint64) (*stgraph.Graph, error) {
	path := s.GraphPath(dataset, delta)
	h, data, err := s.readFile(path)
	if err != nil {
		return nil, err
	}
	if h.Kind != kindGraph {
		// The path encodes the kind, so a mismatch means the file's
		// contents don't belong at its name — damage, not skew.
		return nil, corrupt(path, "%s: artifact kind %q, want %q", path, h.Kind, kindGraph)
	}
	if h.Dataset != dataset || h.Delta != delta {
		return nil, miss("%s: built for (%s, delta=%g), want (%s, delta=%g)",
			path, h.Dataset, h.Delta, dataset, delta)
	}
	if want := fmt.Sprintf("%016x", digest); h.Digest != want {
		return nil, miss("%s: trace digest %s, want %s", path, h.Digest, want)
	}
	secs, err := sectionMap(path, h)
	if err != nil {
		return nil, err
	}
	slabs := make([][]int32, len(graphSections))
	for i, name := range graphSections {
		sec, ok := secs[name]
		if !ok {
			return nil, corrupt(path, "%s: missing section %s", path, name)
		}
		if slabs[i], err = sectionInt32s(path, data, sec); err != nil {
			return nil, err
		}
	}
	snap := &stgraph.Snapshot{
		NumNodes:       h.NumNodes,
		Delta:          h.Delta,
		Steps:          h.Steps,
		StepFrame:      slabs[0],
		FrameNbrOff:    slabs[1],
		FrameActiveOff: slabs[2],
		FrameCompOff:   slabs[3],
		FrameDistOff:   slabs[4],
		Offsets:        slabs[5],
		CompID:         slabs[6],
		Nbrs:           slabs[7],
		Active:         slabs[8],
		Members:        slabs[9],
		CompBounds:     slabs[10],
		DistRef:        slabs[11],
		Dist:           slabs[12],
	}
	g, err := stgraph.FromSnapshot(snap)
	if err != nil {
		return nil, corrupt(path, "%s: %v", path, err)
	}
	return g, nil
}

// SaveOracle writes the simulator oracle for dataset — its sorted
// event order; the tables are otherwise derived from the trace — keyed
// by the source trace digest. It returns the file path.
func (s *Store) SaveOracle(dataset string, digest uint64, o *dtnsim.Oracle) (string, error) {
	path := s.OraclePath(dataset)
	tr := o.Trace()
	h := header{
		Kind:     kindOracle,
		Dataset:  dataset,
		Digest:   fmt.Sprintf("%016x", digest),
		NumNodes: tr.NumNodes,
	}
	if err := writeFile(path, h, []string{"eventOrder"}, [][]int32{o.EventOrder()}); err != nil {
		return "", err
	}
	return path, nil
}

// LoadOracle loads the oracle artifact for dataset and rebuilds the
// oracle tables around tr, which must digest to the stored digest.
// Any failure wraps ErrMiss; the caller falls back to dtnsim.NewOracle.
func (s *Store) LoadOracle(dataset string, digest uint64, tr *trace.Trace) (*dtnsim.Oracle, error) {
	path := s.OraclePath(dataset)
	h, data, err := s.readFile(path)
	if err != nil {
		return nil, err
	}
	if h.Kind != kindOracle {
		// See LoadGraph: the path encodes the kind.
		return nil, corrupt(path, "%s: artifact kind %q, want %q", path, h.Kind, kindOracle)
	}
	if h.Dataset != dataset {
		return nil, miss("%s: built for dataset %s, want %s", path, h.Dataset, dataset)
	}
	if want := fmt.Sprintf("%016x", digest); h.Digest != want {
		return nil, miss("%s: trace digest %s, want %s", path, h.Digest, want)
	}
	if h.NumNodes != tr.NumNodes {
		return nil, miss("%s: %d nodes, trace has %d", path, h.NumNodes, tr.NumNodes)
	}
	secs, err := sectionMap(path, h)
	if err != nil {
		return nil, err
	}
	sec, ok := secs["eventOrder"]
	if !ok {
		return nil, corrupt(path, "%s: missing section eventOrder", path)
	}
	order, err := sectionInt32s(path, data, sec)
	if err != nil {
		return nil, err
	}
	o, err := dtnsim.NewOracleFromOrder(tr, order)
	if err != nil {
		return nil, corrupt(path, "%s: %v", path, err)
	}
	return o, nil
}
