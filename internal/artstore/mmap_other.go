//go:build !unix

package artstore

import "errors"

// mmapSupported reports whether this platform can map artifact files.
const mmapSupported = false

// mapFile reports mmap as unsupported; Load falls back to a plain
// read (or, under MmapAlways, a miss).
func mapFile(path string) ([]byte, error) {
	return nil, errors.New("artstore: mmap unsupported on this platform")
}
