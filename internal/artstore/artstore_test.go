package artstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dtnsim"
	"repro/internal/forward"
	"repro/internal/stgraph"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// goldenTraces returns the full golden corpus: all four conference
// datasets plus several dev seeds (and, outside -short, city-2k).
func goldenTraces(t testing.TB) map[string]*trace.Trace {
	t.Helper()
	out := make(map[string]*trace.Trace)
	for _, d := range tracegen.Datasets {
		tr, err := tracegen.Generate(d)
		if err != nil {
			t.Fatal(err)
		}
		out[tr.Name] = tr
	}
	for _, seed := range []int64{1, 2, 9} {
		tr := tracegen.Dev(seed)
		out[tr.Name+"-seed"+string(rune('0'+seed))] = tr
	}
	return out
}

// verifyGraphRoundTrip saves g and checks the loaded graph is
// byte-identical: equal slab forms, which every query is a pure
// function of (see stgraph.Snapshot), plus direct query spot checks.
func verifyGraphRoundTrip(t *testing.T, st *Store, dataset string, digest uint64, g *stgraph.Graph) {
	t.Helper()
	if _, err := st.SaveGraph(dataset, digest, g); err != nil {
		t.Fatalf("%s: save: %v", dataset, err)
	}
	loaded, err := st.LoadGraph(dataset, g.Delta, digest)
	if err != nil {
		t.Fatalf("%s: load: %v", dataset, err)
	}
	if !reflect.DeepEqual(g.Snapshot(), loaded.Snapshot()) {
		t.Fatalf("%s delta %g: loaded graph differs from fresh build", dataset, g.Delta)
	}
	for s := 0; s < g.Steps; s += 1 + g.Steps/64 {
		if g.EdgeCount(s) != loaded.EdgeCount(s) {
			t.Fatalf("%s step %d: EdgeCount differs", dataset, s)
		}
		wv, lv := g.View(s), loaded.View(s)
		if wv.NumComponents() != lv.NumComponents() {
			t.Fatalf("%s step %d: NumComponents differs", dataset, s)
		}
		for x := 0; x < g.NumNodes; x += 1 + g.NumNodes/32 {
			nx := trace.NodeID(x)
			if !reflect.DeepEqual(g.Neighbors(s, nx), loaded.Neighbors(s, nx)) {
				t.Fatalf("%s step %d node %d: Neighbors differ", dataset, s, x)
			}
			if wv.ComponentOf(nx) != lv.ComponentOf(nx) {
				t.Fatalf("%s step %d node %d: ComponentOf differs", dataset, s, x)
			}
		}
	}
}

func TestGraphGoldenRoundTrip(t *testing.T) {
	st := &Store{Dir: t.TempDir()}
	for name, tr := range goldenTraces(t) {
		digest := TraceDigest(tr)
		for _, delta := range []float64{stgraph.DefaultDelta, 60, 300} {
			g, err := stgraph.New(tr, delta)
			if err != nil {
				t.Fatal(err)
			}
			verifyGraphRoundTrip(t, st, name, digest, g)
		}
	}
}

func TestGraphGoldenRoundTripCity(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale build in -short mode")
	}
	tr, err := tracegen.City(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := stgraph.New(tr, stgraph.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{Dir: t.TempDir()}
	verifyGraphRoundTrip(t, st, "city-2k", TraceDigest(tr), g)
}

func TestOracleGoldenRoundTrip(t *testing.T) {
	st := &Store{Dir: t.TempDir()}
	for name, tr := range goldenTraces(t) {
		digest := TraceDigest(tr)
		fresh := dtnsim.NewOracle(tr)
		if _, err := st.SaveOracle(name, digest, fresh); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		loaded, err := st.LoadOracle(name, digest, tr)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !reflect.DeepEqual(fresh.EventOrder(), loaded.EventOrder()) {
			t.Fatalf("%s: loaded oracle event stream differs", name)
		}
		// A simulation against the loaded oracle is byte-identical to a
		// fresh run.
		msgs := dtnsim.Workload(tr, 0.1, tr.Horizon/2, 42)
		want, err := dtnsim.Run(dtnsim.Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := dtnsim.Run(dtnsim.Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs, Workers: 1, Oracle: loaded})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: run against loaded oracle differs", name)
		}
	}
}

func TestLoadMmapPoliciesAgree(t *testing.T) {
	tr := tracegen.Dev(1)
	digest := TraceDigest(tr)
	g, err := stgraph.New(tr, stgraph.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := (&Store{Dir: dir}).SaveGraph("dev", digest, g); err != nil {
		t.Fatal(err)
	}
	var snaps []*stgraph.Snapshot
	for _, policy := range []MmapPolicy{MmapAuto, MmapNever, MmapAlways} {
		st := &Store{Dir: dir, Mmap: policy}
		loaded, err := st.LoadGraph("dev", stgraph.DefaultDelta, digest)
		if err != nil {
			if policy == MmapAlways && !mmapSupported {
				continue
			}
			t.Fatalf("policy %d: %v", policy, err)
		}
		snaps = append(snaps, loaded.Snapshot())
	}
	for i := 1; i < len(snaps); i++ {
		if !reflect.DeepEqual(snaps[0], snaps[i]) {
			t.Fatal("mmap policies disagree on loaded graph")
		}
	}
}

// TestLoadRejections drives every miss path: absence, version skew,
// digest and parameter mismatches, header and payload corruption,
// truncation. All must wrap ErrMiss and none may panic.
func TestLoadRejections(t *testing.T) {
	tr := tracegen.Dev(1)
	digest := TraceDigest(tr)
	g, err := stgraph.New(tr, stgraph.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}

	newStore := func(t *testing.T) (*Store, string) {
		st := &Store{Dir: t.TempDir()}
		path, err := st.SaveGraph("dev", digest, g)
		if err != nil {
			t.Fatal(err)
		}
		return st, path
	}
	load := func(st *Store) error {
		_, err := st.LoadGraph("dev", stgraph.DefaultDelta, digest)
		return err
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, st *Store, path string) error
	}{
		{"missing file", func(t *testing.T, st *Store, path string) error {
			os.Remove(path)
			return load(st)
		}},
		{"wrong delta", func(t *testing.T, st *Store, path string) error {
			_, err := st.LoadGraph("dev", 60, digest)
			return err
		}},
		{"wrong digest", func(t *testing.T, st *Store, path string) error {
			_, err := st.LoadGraph("dev", stgraph.DefaultDelta, digest+1)
			return err
		}},
		{"wrong kind", func(t *testing.T, st *Store, path string) error {
			if _, err := st.SaveOracle("o", digest, dtnsim.NewOracle(tr)); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(st.OraclePath("o"))
			if err != nil {
				t.Fatal(err)
			}
			os.WriteFile(path, data, 0o644)
			return load(st)
		}},
		{"bad magic", func(t *testing.T, st *Store, path string) error {
			flipByte(t, path, 0)
			return load(st)
		}},
		{"version skew", func(t *testing.T, st *Store, path string) error {
			flipByte(t, path, 8)
			return load(st)
		}},
		{"header corruption", func(t *testing.T, st *Store, path string) error {
			flipByte(t, path, 24)
			return load(st)
		}},
		{"payload corruption", func(t *testing.T, st *Store, path string) error {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			flipByte(t, path, info.Size()-5)
			return load(st)
		}},
		{"truncated payload", func(t *testing.T, st *Store, path string) error {
			truncate(t, path, -100)
			return load(st)
		}},
		{"truncated header", func(t *testing.T, st *Store, path string) error {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			truncate(t, path, 30-info.Size())
			return load(st)
		}},
		{"empty file", func(t *testing.T, st *Store, path string) error {
			truncate(t, path, -1<<62)
			return load(st)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, path := newStore(t)
			err := tc.corrupt(t, st, path)
			if err == nil {
				t.Fatal("corrupted artifact accepted")
			}
			if !errors.Is(err, ErrMiss) {
				t.Fatalf("error does not wrap ErrMiss: %v", err)
			}
		})
	}
}

func TestLoadOracleRejectsTraceMismatch(t *testing.T) {
	tr := tracegen.Dev(1)
	other := tracegen.Dev(2)
	st := &Store{Dir: t.TempDir()}
	if _, err := st.SaveOracle("dev", TraceDigest(tr), dtnsim.NewOracle(tr)); err != nil {
		t.Fatal(err)
	}
	// The digest check is what protects against resolving the dataset
	// name to different trace data than the warm run saw.
	if _, err := st.LoadOracle("dev", TraceDigest(other), other); !errors.Is(err, ErrMiss) {
		t.Fatalf("digest mismatch not a miss: %v", err)
	}
	if TraceDigest(tr) == TraceDigest(other) {
		t.Fatal("distinct traces digest equal")
	}
}

func TestSaveIsAtomic(t *testing.T) {
	tr := tracegen.Dev(1)
	g, err := stgraph.New(tr, stgraph.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{Dir: t.TempDir()}
	if _, err := st.SaveGraph("dev", TraceDigest(tr), g); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(st.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".psna" {
			t.Fatalf("stray file %s left in store", e.Name())
		}
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// truncate shrinks the file by -delta bytes (delta < 0), to a floor of
// zero.
func truncate(t *testing.T, path string, delta int64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	size := info.Size() + delta
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}
