package artstore

import (
	"errors"
	"os"
	"testing"

	"repro/internal/stgraph"
	"repro/internal/tracegen"
)

// TestCorruptLoadClassification pins the error taxonomy the serving
// layer's quarantine logic depends on: damaged bytes load as a
// *CorruptError that matches BOTH ErrCorrupt (so it can be
// quarantined) and ErrMiss (so fallback-to-build logic written against
// ErrMiss keeps working), and carries the path of the damaged file.
func TestCorruptLoadClassification(t *testing.T) {
	tr := tracegen.Dev(2)
	g, err := stgraph.New(tr, stgraph.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{Dir: t.TempDir()}
	digest := TraceDigest(tr)
	path, err := st.SaveGraph("dev", digest, g)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte: the section CRC must catch it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = st.LoadGraph("dev", g.Delta, digest)
	if err == nil {
		t.Fatal("corrupt artifact loaded without error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt load does not match ErrCorrupt: %v", err)
	}
	if !errors.Is(err, ErrMiss) {
		t.Errorf("corrupt load does not match ErrMiss (fallback contract): %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt load is not a *CorruptError: %v", err)
	}
	if ce.Path != path {
		t.Errorf("CorruptError.Path = %q, want %q", ce.Path, path)
	}
}

// TestParamSkewIsMissNotCorrupt: a digest or parameter mismatch is a
// clean miss — the file is healthy, just for different inputs — and
// must never be classified as corruption (which would quarantine a
// perfectly good artifact).
func TestParamSkewIsMissNotCorrupt(t *testing.T) {
	tr := tracegen.Dev(2)
	g, err := stgraph.New(tr, stgraph.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{Dir: t.TempDir()}
	if _, err := st.SaveGraph("dev", TraceDigest(tr), g); err != nil {
		t.Fatal(err)
	}

	for name, load := range map[string]func() error{
		"wrong digest": func() error {
			_, err := st.LoadGraph("dev", g.Delta, TraceDigest(tr)+1)
			return err
		},
		"wrong delta": func() error {
			_, err := st.LoadGraph("dev", g.Delta*2, TraceDigest(tr))
			return err
		},
		"absent dataset": func() error {
			_, err := st.LoadGraph("nope", g.Delta, TraceDigest(tr))
			return err
		},
	} {
		err := load()
		if !errors.Is(err, ErrMiss) {
			t.Errorf("%s: err = %v, want ErrMiss", name, err)
		}
		if errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: classified as corruption — would quarantine a healthy file", name)
		}
	}
}

// TestQuarantineRenames: Quarantine moves the damaged file aside so
// the next load is a clean miss, and preserves the bytes under the
// .quarantined name for inspection.
func TestQuarantineRenames(t *testing.T) {
	tr := tracegen.Dev(2)
	g, err := stgraph.New(tr, stgraph.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{Dir: t.TempDir()}
	digest := TraceDigest(tr)
	path, err := st.SaveGraph("dev", digest, g)
	if err != nil {
		t.Fatal(err)
	}

	qpath, err := st.Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if qpath != path+".quarantined" {
		t.Errorf("quarantined path = %q, want %q", qpath, path+".quarantined")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("original path still exists after quarantine (stat err %v)", err)
	}
	if _, err := os.Stat(qpath); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}

	// Subsequent loads miss cleanly instead of re-reading bad bytes.
	if _, err := st.LoadGraph("dev", g.Delta, digest); !errors.Is(err, ErrMiss) || errors.Is(err, ErrCorrupt) {
		t.Errorf("load after quarantine = %v, want a clean ErrMiss", err)
	}

	// Quarantining a missing file reports the rename failure.
	if _, err := st.Quarantine(path); err == nil {
		t.Error("quarantining an absent file succeeded")
	}
}
