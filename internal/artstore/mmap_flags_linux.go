package artstore

import "syscall"

// mapFlags adds MAP_POPULATE on Linux: the artifact's pages are all
// touched immediately (checksum pass, widening), so prefaulting the
// whole mapping in one syscall is strictly cheaper than taking tens of
// thousands of minor faults during the first read pass.
const mapFlags = syscall.MAP_SHARED | syscall.MAP_POPULATE
