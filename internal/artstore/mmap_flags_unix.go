//go:build unix && !linux

package artstore

import "syscall"

// mapFlags on non-Linux Unix: plain private mapping (MAP_POPULATE is
// Linux-specific; elsewhere the first read pass faults pages in).
const mapFlags = syscall.MAP_PRIVATE
