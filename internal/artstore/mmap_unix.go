//go:build unix

package artstore

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can map artifact files.
const mmapSupported = true

// mapFile maps path read-only. The mapping is intentionally never
// unmapped: the loaded artifact's slabs alias it for the life of the
// process, the same lifetime a built graph's slabs have.
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the mapping outlives the descriptor
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		return nil, fmt.Errorf("artstore: %s is empty", path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("artstore: %s too large to map", path)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, mapFlags)
}
