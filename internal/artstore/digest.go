package artstore

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"repro/internal/trace"
)

// TraceDigest fingerprints the artifact-relevant content of a trace:
// population size, horizon, and every contact record (endpoints and
// exact float64 bounds, in the trace's sorted order). Two traces with
// equal digests produce byte-identical graphs and oracle tables, so a
// stored artifact is keyed by the digest of the trace it was built
// from and rejected when the serving process resolves the dataset name
// to different data — a regenerated synthetic trace, an edited trace
// file — than the warm run saw.
func TraceDigest(tr *trace.Trace) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(tr.NumNodes))
	put(math.Float64bits(tr.Horizon))
	cs := tr.Contacts()
	put(uint64(len(cs)))
	for _, c := range cs {
		put(uint64(c.A))
		put(uint64(c.B))
		put(math.Float64bits(c.Start))
		put(math.Float64bits(c.End))
	}
	return h.Sum64()
}
