package artstore

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// craft writes an artifact file with an attacker-controlled header
// (valid magic/version/CRC) and a small payload area.
func craft(t *testing.T, dir string, h header) string {
	t.Helper()
	hdrJSON, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var fixed [20]byte
	copy(fixed[:8], magic[:])
	binary.LittleEndian.PutUint32(fixed[8:], FormatVersion)
	binary.LittleEndian.PutUint32(fixed[12:], uint32(len(hdrJSON)))
	binary.LittleEndian.PutUint32(fixed[16:], crc32.Checksum(hdrJSON, castagnoli))
	buf := append(fixed[:], hdrJSON...)
	for len(buf)%8 != 0 {
		buf = append(buf, 0)
	}
	buf = append(buf, make([]byte, 64)...) // payload area
	path := filepath.Join(dir, "oracle_dev.psna")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHostileNegativeSectionCount(t *testing.T) {
	dir := t.TempDir()
	h := header{
		Kind:    kindOracle,
		Dataset: "dev",
		Digest:  "0000000000000000",
		Sections: []section{
			{Name: "eventOrder", Count: -2, Off: 0, Len: -8, CRC: 0},
		},
	}
	craft(t, dir, h)
	s := &Store{Dir: dir, Mmap: MmapNever}
	hdr, data, err := s.readFile(s.OraclePath("dev"))
	if err != nil {
		t.Fatalf("readFile: %v", err)
	}
	_, err = sectionInt32s(s.OraclePath("dev"), data, hdr.Sections[0])
	t.Logf("sectionInt32s err = %v", err)
}
