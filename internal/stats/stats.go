// Package stats provides the small statistical toolkit the paper's
// figures are built from: empirical CDFs, histograms, quantiles,
// box-plot summaries, confidence intervals, and exponential growth-rate
// estimation. Everything is deterministic and stdlib-only.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by constructors that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or NaN if
// len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanCI returns the sample mean of xs and the half-width of a normal
// confidence interval on the mean at the given z value (z = 2.576 for
// the paper's 99 % intervals in Fig 14). The half-width is zero when
// fewer than two samples are available.
func MeanCI(xs []float64, z float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	halfWidth = z * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth
}

// Z99 is the standard normal quantile for a two-sided 99 % confidence
// interval.
const Z99 = 2.576

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
// Returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

func sortedQuantile(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (copied; any order).
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// P returns P[X <= x], the fraction of the sample at or below x.
func (e *ECDF) P(x float64) float64 {
	// Index of first element > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Min and Max return the sample extremes.
func (e *ECDF) Min() float64 { return e.sorted[0] }
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Quantile returns the q-quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) float64 { return sortedQuantile(e.sorted, q) }

// CurvePoint is one (x, P[X<=x]) point of a rendered CDF curve.
type CurvePoint struct {
	X float64
	P float64
}

// Curve samples the ECDF at n evenly spaced points spanning
// [0 or Min, Max] — the series the paper plots in Figs 4, 7 and 10.
// The x range starts at min(0, Min) so curves for nonnegative data
// start at the origin like the paper's axes.
func (e *ECDF) Curve(n int) []CurvePoint {
	if n < 2 {
		n = 2
	}
	lo := math.Min(0, e.Min())
	hi := e.Max()
	if hi == lo {
		hi = lo + 1
	}
	out := make([]CurvePoint, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = CurvePoint{X: x, P: e.P(x)}
	}
	return out
}

// Histogram counts samples into fixed-width bins over [lo, hi).
type Histogram struct {
	Lo, Hi   float64
	BinWidth float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
}

// NewHistogram builds a histogram with nbins equal bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 || hi <= lo {
		return nil, errors.New("stats: bad histogram range")
	}
	return &Histogram{
		Lo: lo, Hi: hi,
		BinWidth: (hi - lo) / float64(nbins),
		Counts:   make([]int, nbins),
	}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.BinWidth)
		if i >= len(h.Counts) { // float round-off at the upper edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth
}

// FiveNum is a box-and-whiskers five-number summary (Fig 15).
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) (FiveNum, error) {
	if len(xs) == 0 {
		return FiveNum{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return FiveNum{
		Min:    s[0],
		Q1:     sortedQuantile(s, 0.25),
		Median: sortedQuantile(s, 0.5),
		Q3:     sortedQuantile(s, 0.75),
		Max:    s[len(s)-1],
	}, nil
}

// ExpGrowthRate estimates the exponential growth rate r of a counting
// series by least-squares fitting log(y) = log(a) + r·t over the points
// with y > 0. This quantifies the paper's observation (Fig 6) that the
// number of delivered paths grows approximately exponentially in time.
// Returns NaN if fewer than two positive points exist.
func ExpGrowthRate(ts, ys []float64) float64 {
	if len(ts) != len(ys) {
		return math.NaN()
	}
	var xs, ls []float64
	for i := range ts {
		if ys[i] > 0 {
			xs = append(xs, ts[i])
			ls = append(ls, math.Log(ys[i]))
		}
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	slope, _ := LinearFit(xs, ls)
	return slope
}

// LinearFit returns the least-squares slope and intercept of y = m·x + b.
// Returns NaN slope for degenerate inputs (fewer than two points or
// zero x variance).
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 || n < 2 {
		return math.NaN(), math.NaN()
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept
}
