package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Errorf("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Errorf("Variance of single sample should be NaN")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	mean, hw := MeanCI(xs, Z99)
	if mean != 10 || hw != 0 {
		t.Errorf("MeanCI constant = (%g, %g), want (10, 0)", mean, hw)
	}
	mean, hw = MeanCI([]float64{5}, Z99)
	if mean != 5 || hw != 0 {
		t.Errorf("MeanCI single = (%g, %g), want (5, 0)", mean, hw)
	}
	_, hw = MeanCI([]float64{1, 2, 3, 4, 5}, Z99)
	want := Z99 * StdDev([]float64{1, 2, 3, 4, 5}) / math.Sqrt(5)
	if !almostEqual(hw, want, 1e-12) {
		t.Errorf("MeanCI half-width = %g, want %g", hw, want)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	} {
		if got := Quantile(xs, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Errorf("Quantile(nil) should be NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 9}); got != 5 {
		t.Errorf("Median = %g, want 5", got)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	} {
		if got := e.P(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("P(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
	if e.N() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Errorf("N/Min/Max = %d/%g/%g", e.N(), e.Min(), e.Max())
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Errorf("NewECDF(nil) err = %v, want ErrEmpty", err)
	}
}

func TestECDFCurve(t *testing.T) {
	e, _ := NewECDF([]float64{0, 10})
	pts := e.Curve(11)
	if len(pts) != 11 {
		t.Fatalf("len = %d, want 11", len(pts))
	}
	if pts[0].X != 0 || pts[10].X != 10 {
		t.Errorf("x range = [%g,%g], want [0,10]", pts[0].X, pts[10].X)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Errorf("curve not monotone at %d", i)
		}
	}
	if pts[10].P != 1 {
		t.Errorf("final P = %g, want 1", pts[10].P)
	}
	// Degenerate n and constant sample both must not panic.
	c, _ := NewECDF([]float64{5})
	if got := c.Curve(1); len(got) != 2 {
		t.Errorf("Curve(1) len = %d, want 2", len(got))
	}
}

func TestECDFQuantileAgreesWithQuantile(t *testing.T) {
	xs := []float64{9, 4, 7, 1, 3, 8}
	e, _ := NewECDF(xs)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got, want := e.Quantile(q), Quantile(xs, q); !almostEqual(got, want, 1e-12) {
			t.Errorf("q=%g: %g vs %g", q, got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 50} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0, 1.9
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin 1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bin 4 = %d, want 1", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %g, want 1", got)
	}
}

func TestHistogramBadRange(t *testing.T) {
	if _, err := NewHistogram(0, 0, 5); err == nil {
		t.Errorf("empty range accepted")
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Errorf("zero bins accepted")
	}
}

func TestSummarize(t *testing.T) {
	fn, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := FiveNum{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5}
	if fn != want {
		t.Errorf("Summarize = %+v, want %+v", fn, want)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v", err)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	m, b := LinearFit(xs, ys)
	if !almostEqual(m, 2, 1e-12) || !almostEqual(b, 1, 1e-12) {
		t.Errorf("fit = (%g, %g), want (2, 1)", m, b)
	}
	if m, _ := LinearFit([]float64{1}, []float64{1}); !math.IsNaN(m) {
		t.Errorf("single point fit should be NaN")
	}
	if m, _ := LinearFit([]float64{1, 1}, []float64{1, 2}); !math.IsNaN(m) {
		t.Errorf("zero x variance fit should be NaN")
	}
	if m, _ := LinearFit([]float64{1, 2}, []float64{1}); !math.IsNaN(m) {
		t.Errorf("length mismatch should be NaN")
	}
}

func TestExpGrowthRate(t *testing.T) {
	// y = 3·e^{0.5 t}
	var ts, ys []float64
	for i := 0; i < 10; i++ {
		tt := float64(i)
		ts = append(ts, tt)
		ys = append(ys, 3*math.Exp(0.5*tt))
	}
	if r := ExpGrowthRate(ts, ys); !almostEqual(r, 0.5, 1e-9) {
		t.Errorf("rate = %g, want 0.5", r)
	}
	// Zeros are skipped.
	if r := ExpGrowthRate([]float64{0, 1, 2}, []float64{0, math.E, math.E * math.E}); !almostEqual(r, 1, 1e-9) {
		t.Errorf("rate with zero = %g, want 1", r)
	}
	if r := ExpGrowthRate([]float64{0}, []float64{0}); !math.IsNaN(r) {
		t.Errorf("degenerate rate should be NaN")
	}
	if r := ExpGrowthRate([]float64{0, 1}, []float64{1}); !math.IsNaN(r) {
		t.Errorf("mismatched lengths should be NaN")
	}
}

// Property: ECDF is monotone nondecreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		prev := -1.0
		for x := e.Min() - 1; x <= e.Max()+1; x += (e.Max() - e.Min() + 2) / 50 {
			p := e.P(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return e.P(e.Max()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q and bracket the sample range.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return Quantile(xs, 0) == Quantile(xs, -1) && Quantile(xs, 1) == Quantile(xs, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: five-number summary is ordered min<=q1<=med<=q3<=max.
func TestSummarizeOrderedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		fn, err := Summarize(xs)
		if err != nil {
			return false
		}
		return fn.Min <= fn.Q1 && fn.Q1 <= fn.Median && fn.Median <= fn.Q3 && fn.Q3 <= fn.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
