package obs

import (
	"bufio"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundsMonotone pins the bucket layout: strictly increasing
// bounds, first bound at 1µs, ratio ≈ 2^(1/3) throughout.
func TestBucketBoundsMonotone(t *testing.T) {
	if bucketBounds[0] != minBucketNs {
		t.Fatalf("first bound = %d, want %d", bucketBounds[0], int64(minBucketNs))
	}
	for i := 1; i < len(bucketBounds); i++ {
		if bucketBounds[i] <= bucketBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, bucketBounds[i], bucketBounds[i-1])
		}
		ratio := float64(bucketBounds[i]) / float64(bucketBounds[i-1])
		if ratio < 1.2 || ratio > 1.32 {
			t.Errorf("bucket %d ratio %.4f outside [1.2, 1.32]", i, ratio)
		}
	}
}

// TestBucketOf checks the index search against a linear scan.
func TestBucketOf(t *testing.T) {
	linear := func(ns int64) int {
		for i, b := range bucketBounds {
			if ns <= b {
				return i
			}
		}
		return NumBuckets - 1
	}
	samples := []int64{0, 1, 999, 1000, 1001, 1259, 1260, 5_000_000, 1 << 40}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		samples = append(samples, rng.Int63n(int64(3*time.Second)))
	}
	for _, ns := range samples {
		if got, want := bucketOf(ns), linear(ns); got != want {
			t.Fatalf("bucketOf(%d) = %d, want %d", ns, got, want)
		}
	}
}

// TestQuantilesMonotone is the quantile property test: for random
// sample sets, Quantile is non-decreasing in q and brackets the true
// order statistics within one bucket's relative error.
func TestQuantilesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Log-uniform over 100ns..10s to exercise every bucket zone.
			ns := int64(100 * 1e8 * rng.ExpFloat64() / 10)
			h.RecordNs(ns % int64(10*time.Second))
		}
		s := h.Snapshot()
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: quantile not monotone: q=%.2f gives %v after %v", trial, q, v, prev)
			}
			prev = v
		}
		if max := s.Quantile(1); int64(max) > s.MaxNs {
			t.Fatalf("trial %d: q=1 quantile %v exceeds recorded max %dns", trial, max, s.MaxNs)
		}
	}
}

// TestQuantileAccuracy checks the quantile against exact order
// statistics within the bucket relative-error bound.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	samples := make([]int64, 5000)
	for i := range samples {
		samples[i] = 1000 + rng.Int63n(int64(time.Second))
		h.RecordNs(samples[i])
	}
	sorted := append([]int64(nil), samples...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
		if i > 40 {
			break // partial selection sort is enough for the low quantiles below
		}
	}
	s := h.Snapshot()
	// Exact p0.5% vs histogram: within one bucket ratio (×1.26) either way.
	exact := float64(sorted[len(samples)/200])
	got := float64(s.Quantile(0.005))
	if got < exact/1.3 || got > exact*1.3 {
		t.Errorf("p0.5 = %.0f, exact %.0f: outside one-bucket error", got, exact)
	}
}

// TestMergeCounts is the merge property test: per-bucket counts add
// exactly, and count(merge(a,b)) = count(a) + count(b).
func TestMergeCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var a, b, m Histogram
		na, nb := rng.Intn(500), rng.Intn(500)
		for i := 0; i < na; i++ {
			ns := rng.Int63n(int64(2 * time.Second))
			a.RecordNs(ns)
			m.RecordNs(ns)
		}
		for i := 0; i < nb; i++ {
			ns := rng.Int63n(int64(2 * time.Second))
			b.RecordNs(ns)
			m.RecordNs(ns)
		}
		var merged Histogram
		merged.Merge(&a)
		merged.Merge(&b)
		sm, sw := merged.Snapshot(), m.Snapshot()
		if sm.Count != uint64(na+nb) || sm.Count != sw.Count {
			t.Fatalf("trial %d: merged count %d, want %d", trial, sm.Count, na+nb)
		}
		if sm.Counts != sw.Counts {
			t.Fatalf("trial %d: merged buckets differ from direct recording", trial)
		}
		if sm.SumNs != sw.SumNs || sm.MaxNs != sw.MaxNs {
			t.Fatalf("trial %d: merged sum/max (%d,%d) != direct (%d,%d)",
				trial, sm.SumNs, sm.MaxNs, sw.SumNs, sw.MaxNs)
		}
	}
}

// TestConcurrentRecord hammers one histogram from many goroutines
// (meaningful under -race) and checks no samples are lost: every
// bucket counter is independent and atomic.
func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines = 8
	const perG = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.RecordNs(rng.Int63n(int64(time.Second)))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("lost samples: count %d, want %d", got, goroutines*perG)
	}
}

// TestRecordAllocFree pins Record and Snapshot as allocation-free.
func TestRecordAllocFree(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.RecordNs(12345) }); n != 0 {
		t.Errorf("RecordNs allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = h.Snapshot() }); n != 0 {
		t.Errorf("Snapshot allocates %.1f/op, want 0", n)
	}
}

// TestWritePrometheus checks the rendered exposition: cumulative,
// ends at +Inf == count, sum/count lines present, labels inserted.
func TestWritePrometheus(t *testing.T) {
	var h Histogram
	h.RecordNs(int64(2 * time.Millisecond))
	h.RecordNs(int64(2 * time.Millisecond))
	h.RecordNs(int64(700 * time.Millisecond))
	var b strings.Builder
	s := h.Snapshot()
	s.WritePrometheus(&b, "x_seconds", `endpoint="enumerate"`)
	out := b.String()
	if !strings.Contains(out, `x_seconds_bucket{endpoint="enumerate",le="+Inf"} 3`) {
		t.Errorf("missing +Inf bucket with full count:\n%s", out)
	}
	if !strings.Contains(out, `x_seconds_count{endpoint="enumerate"} 3`) {
		t.Errorf("missing count line:\n%s", out)
	}
	var prevCum, lines int64 = -1, 0
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		lines++
		if strings.HasPrefix(line, "x_seconds_bucket") {
			var cum int64
			i := strings.LastIndexByte(line, ' ')
			if _, err := fmtSscan(line[i+1:], &cum); err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if cum < prevCum {
				t.Fatalf("buckets not cumulative: %q after %d", line, prevCum)
			}
			prevCum = cum
		}
	}
	if lines < 4 {
		t.Fatalf("suspiciously short exposition:\n%s", out)
	}
}

func fmtSscan(s string, v *int64) (int, error) {
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNotDigit
		}
		n = n*10 + int64(c-'0')
	}
	*v = n
	return 1, nil
}

var errNotDigit = errTest("non-digit in numeric field")

type errTest string

func (e errTest) Error() string { return string(e) }
