// Package obs holds the repository's allocation-free observability
// primitives: a lock-free log-bucketed latency histogram and a
// per-request stage span API. Both are built for hot paths — recording
// a sample or a span is a handful of atomic operations, never an
// allocation, and a nil *Trace compiles every span site down to a
// pointer check — so the serving layer can observe itself without
// perturbing the benchmarks it reports on.
package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// NumBuckets is the histogram resolution. Buckets are log-spaced at
// ratio 2^(1/3) ≈ 1.26 (three buckets per doubling) starting at 1µs:
// 63 finite buckets cover 1µs to ~1.66s with ≤26% relative error per
// bucket, and the last bucket catches everything beyond.
const NumBuckets = 64

// minBucketNs is the upper bound of the first bucket.
const minBucketNs = 1000 // 1µs

// bucketBounds[i] is the inclusive upper bound, in nanoseconds, of
// bucket i; bucket NumBuckets-1 is unbounded (+Inf).
var bucketBounds = func() [NumBuckets - 1]int64 {
	var b [NumBuckets - 1]int64
	for i := range b {
		b[i] = int64(math.Round(minBucketNs * math.Pow(2, float64(i)/3)))
	}
	return b
}()

// BucketBound returns bucket i's upper bound in nanoseconds, or -1 for
// the unbounded overflow bucket.
func BucketBound(i int) int64 {
	if i >= NumBuckets-1 {
		return -1
	}
	return bucketBounds[i]
}

// bucketOf returns the index of the bucket covering ns.
func bucketOf(ns int64) int {
	// Binary search over the 63 sorted finite bounds: the smallest
	// bucket whose upper bound covers ns (6 iterations, no allocation).
	lo, hi := 0, NumBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= bucketBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Histogram is a fixed-size log-bucketed latency histogram safe for
// concurrent recording without locks: every bucket is an independent
// atomic counter, so Record is wait-free and scales across cores.
// Reads (Snapshot) are not atomic with respect to concurrent writers —
// a snapshot taken under load may be mid-update by a few samples —
// which is the standard and acceptable trade for a metrics endpoint.
// The zero value is ready to use.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) { h.RecordNs(int64(d)) }

// RecordNs adds one sample measured in nanoseconds.
func (h *Histogram) RecordNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Merge folds o's samples into h. Counts add exactly
// (count(merge(a,b)) = count(a)+count(b) per bucket); the maximum is
// the pairwise max.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.sumNs.Add(o.sumNs.Load())
	m := o.maxNs.Load()
	for {
		cur := h.maxNs.Load()
		if m <= cur || h.maxNs.CompareAndSwap(cur, m) {
			return
		}
	}
}

// Count returns the total number of recorded samples.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Snapshot returns a point-in-time copy of the histogram for quantile
// extraction and rendering.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
		s.Count += s.Counts[i]
	}
	s.SumNs = h.sumNs.Load()
	s.MaxNs = h.maxNs.Load()
	return s
}

// Quantile is shorthand for h.Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) time.Duration {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Snapshot is an immutable copy of a Histogram's state.
type Snapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64 // sum of Counts
	SumNs  int64
	MaxNs  int64
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the recorded samples,
// linearly interpolated within the covering bucket and capped at the
// observed maximum — no estimate ever exceeds a sample that actually
// happened. The answer carries the bucket's ≤26% relative error; q
// outside [0,1] is clamped, and an empty snapshot returns 0. Quantiles
// are monotone in q by construction: the target rank is non-decreasing
// in q, the cumulative walk maps ranks to bucket positions
// monotonically, and the cap is a fixed ceiling.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count) // in (0, Count]
	var cum uint64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = bucketBounds[i-1]
		}
		hi := s.MaxNs // overflow bucket: interpolate up to the observed max
		if i < NumBuckets-1 {
			hi = bucketBounds[i]
		}
		if hi < lo {
			hi = lo
		}
		// Position of the target rank within this bucket's n samples.
		frac := (rank - float64(prev)) / float64(n)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		est := int64(float64(lo) + frac*float64(hi-lo))
		if est > s.MaxNs {
			est = s.MaxNs
		}
		return time.Duration(est)
	}
	return time.Duration(s.MaxNs)
}

// Mean returns the arithmetic mean of the recorded samples.
func (s *Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / int64(s.Count))
}

// WritePrometheus renders the snapshot in Prometheus histogram text
// format: cumulative <name>_bucket series with le labels in seconds,
// then <name>_sum and <name>_count. labels is either empty or a
// comma-joined list of label pairs (`endpoint="enumerate"`) inserted
// into every series; empty buckets are skipped (le="+Inf" always
// appears), keeping the exposition proportional to the populated
// range. The caller writes the # HELP/# TYPE preamble, since several
// label values of one metric family share it.
func (s *Snapshot) WritePrometheus(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, n := range s.Counts {
		cum += n
		if i == NumBuckets-1 {
			break // rendered as +Inf below
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, float64(bucketBounds[i])/1e9, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, float64(s.SumNs)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, s.Count)
}
