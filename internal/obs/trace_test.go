package obs

import (
	"sync"
	"testing"
	"time"
)

// TestNilTraceNoop: every method of a nil *Trace is a safe no-op, so
// library call sites can thread a trace unconditionally.
func TestNilTraceNoop(t *testing.T) {
	var tr *Trace
	sp := tr.Start(StageGraphSweep)
	sp.End()
	tr.AddNs(StageSimRun, 123)
	if got := tr.StageNs(StageSimRun); got != 0 {
		t.Fatalf("nil trace accumulated %d", got)
	}
}

// TestNilTraceZeroAlloc pins the disabled path: starting and ending a
// span on a nil trace allocates nothing (and never reads the clock,
// though that part is only visible in the implementation).
func TestNilTraceZeroAlloc(t *testing.T) {
	var tr *Trace
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(StageEnumFork)
		sp.End()
	}); n != 0 {
		t.Errorf("nil-trace span allocates %.1f/op, want 0", n)
	}
}

// TestLiveSpanZeroAlloc pins the enabled path as allocation-free too.
func TestLiveSpanZeroAlloc(t *testing.T) {
	tr := &Trace{}
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(StageEnumPrefix)
		sp.End()
	}); n != 0 {
		t.Errorf("live span allocates %.1f/op, want 0", n)
	}
}

// TestSpanAccumulates checks spans add up and Reset clears.
func TestSpanAccumulates(t *testing.T) {
	tr := &Trace{}
	sp := tr.Start(StageSimRun)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	tr.AddNs(StageSimRun, 1000)
	if got := tr.StageNs(StageSimRun); got < int64(2*time.Millisecond) {
		t.Fatalf("span accumulated %dns, want >= 2ms", got)
	}
	if got := tr.StageNs(StageEnumPrefix); got != 0 {
		t.Fatalf("untouched stage has %dns", got)
	}
	tr.Reset()
	for s := 0; s < NumStages; s++ {
		if got := tr.StageNs(Stage(s)); got != 0 {
			t.Fatalf("stage %v nonzero after Reset: %d", Stage(s), got)
		}
	}
}

// TestConcurrentSpans: spans on one trace from many goroutines (the
// batch enumerator's fan-out shape) race-cleanly accumulate all time.
func TestConcurrentSpans(t *testing.T) {
	tr := &Trace{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.AddNs(StageEnumFork, 1)
			}
		}()
	}
	wg.Wait()
	if got := tr.StageNs(StageEnumFork); got != 8000 {
		t.Fatalf("lost span time: %d, want 8000", got)
	}
}

// TestStageNames: every stage has a distinct non-empty snake_case name.
func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for s := 0; s < NumStages; s++ {
		name := Stage(s).String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("stage %d has bad or duplicate name %q", s, name)
		}
		seen[name] = true
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage should be unknown")
	}
}
