package obs

import (
	"sync/atomic"
	"time"
)

// Stage labels one instrumented phase of request processing. The set
// covers the expensive internals: on-disk artifact loading vs the live
// build it replaces (the space-time graph build split into its event
// sweep and frame-fill halves), the enumeration dynamic program's
// shared prefix vs per-destination forked continuations, and the
// simulator's oracle derivation vs the warm replay.
type Stage uint8

const (
	// StageArtifactLoad is time spent loading a graph or oracle from
	// the on-disk artifact store (successful or not).
	StageArtifactLoad Stage = iota
	// StageGraphSweep is the space-time graph builder's event sweep:
	// contact boundary bucketing and active-pair frame-spec emission.
	StageGraphSweep
	// StageGraphFrames is the graph builder's frame construction: CSR
	// rows, components, member lists and distance tables, plus the
	// stable-component marking pass.
	StageGraphFrames
	// StageEnumPrefix is the batch enumerator's shared destination-free
	// dynamic-program prefix.
	StageEnumPrefix
	// StageEnumFork is the enumerator's per-destination continuation:
	// forked off a shared prefix, or a whole single-message enumeration
	// when nothing is shared.
	StageEnumFork
	// StageOracleBuild is the simulator's oracle-table derivation
	// (contact totals and the sorted event stream).
	StageOracleBuild
	// StageSimRun is one warm simulation replay over prepared oracle
	// tables.
	StageSimRun

	// NumStages is the number of defined stages.
	NumStages = int(StageSimRun) + 1
)

// stageNames holds the snake_case metric/label names, index-aligned
// with the Stage constants.
var stageNames = [NumStages]string{
	"artifact_load",
	"graph_sweep",
	"graph_frames",
	"enum_prefix",
	"enum_fork",
	"oracle_build",
	"sim_run",
}

// String returns the stage's metric label ("graph_sweep").
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the label of every stage in index order.
func StageNames() [NumStages]string { return stageNames }

// Trace accumulates per-stage wall time for one request. Spans started
// from it may run on any goroutine — the batch enumerator fans
// destinations out across workers — so accumulation is atomic. A nil
// *Trace is fully functional and free: Start returns an inert Span
// without reading the clock, so library callers and benchmarks that
// pass nil pay one pointer check per span site and nothing else.
// Traces are reusable via Reset (the serving layer pools them).
type Trace struct {
	// ID tags the request in logs and the X-Psn-Request header.
	ID uint64

	ns        [NumStages]atomic.Int64
	truncated atomic.Bool
}

// Reset clears the accumulated stage times for reuse.
func (t *Trace) Reset() {
	for i := range t.ns {
		t.ns[i].Store(0)
	}
	t.truncated.Store(false)
}

// MarkTruncated flags the trace as covering only part of its request:
// the serving layer sets it when a computation is abandoned at a
// cancellation checkpoint, so log lines carrying the stage breakdown
// can say the numbers undercount the work a full run would have done.
// No-op on a nil Trace.
func (t *Trace) MarkTruncated() {
	if t != nil {
		t.truncated.Store(true)
	}
}

// Truncated reports whether MarkTruncated was called since Reset.
func (t *Trace) Truncated() bool {
	return t != nil && t.truncated.Load()
}

// Start opens a span for stage s. On a nil Trace it returns an inert
// span and does not read the clock.
func (t *Trace) Start(s Stage) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, s: s, t0: time.Now()}
}

// AddNs folds ns nanoseconds into stage s directly (used when the
// caller already measured the interval). No-op on a nil Trace.
func (t *Trace) AddNs(s Stage, ns int64) {
	if t == nil {
		return
	}
	t.ns[s].Add(ns)
}

// StageNs returns the nanoseconds accumulated for stage s.
func (t *Trace) StageNs(s Stage) int64 {
	if t == nil {
		return 0
	}
	return t.ns[s].Load()
}

// Span is one open stage interval. End is idempotent only in the sense
// that an inert (zero or nil-trace) span no-ops; a live span must End
// exactly once. Spans are plain values — passing them allocates
// nothing.
type Span struct {
	t  *Trace
	s  Stage
	t0 time.Time
}

// End closes the span, folding its elapsed time into the trace.
func (sp Span) End() {
	if sp.t == nil {
		return
	}
	sp.t.ns[sp.s].Add(int64(time.Since(sp.t0)))
}
