package pathenum

import (
	"testing"

	"repro/internal/trace"
)

func TestNodeSet(t *testing.T) {
	var s nodeSet
	if s.has(0) || s.has(127) {
		t.Errorf("empty set has members")
	}
	s = s.with(0).with(63).with(64).with(127)
	for _, n := range []trace.NodeID{0, 63, 64, 127} {
		if !s.has(n) {
			t.Errorf("missing %d", n)
		}
	}
	for _, n := range []trace.NodeID{1, 62, 65, 126} {
		if s.has(n) {
			t.Errorf("spurious %d", n)
		}
	}
}

func TestNodeSetIntersects(t *testing.T) {
	a := nodeSet{}.with(3).with(70)
	b := nodeSet{}.with(70)
	c := nodeSet{}.with(4)
	if !a.intersects(b) {
		t.Errorf("a∩b should intersect")
	}
	if a.intersects(c) {
		t.Errorf("a∩c should not intersect")
	}
	if (nodeSet{}).intersects(a) {
		t.Errorf("empty set intersects")
	}
}

func TestNodeSetImmutability(t *testing.T) {
	a := nodeSet{}.with(5)
	b := a.with(9)
	if a.has(9) {
		t.Errorf("with mutated receiver")
	}
	if !b.has(5) || !b.has(9) {
		t.Errorf("with lost members")
	}
}

func TestPathChain(t *testing.T) {
	p := newSource(3, 0)
	p = p.extend(5, 2)
	p = p.extend(7, 4)
	if p.Hops != 2 {
		t.Errorf("Hops = %d, want 2", p.Hops)
	}
	nodes := p.Nodes()
	if len(nodes) != 3 || nodes[0] != 3 || nodes[1] != 5 || nodes[2] != 7 {
		t.Errorf("Nodes = %v", nodes)
	}
	steps := p.Steps()
	if len(steps) != 3 || steps[0] != 0 || steps[1] != 2 || steps[2] != 4 {
		t.Errorf("Steps = %v", steps)
	}
	for _, n := range []trace.NodeID{3, 5, 7} {
		if !p.Contains(n) {
			t.Errorf("Contains(%d) = false", n)
		}
	}
	if p.Contains(4) {
		t.Errorf("Contains(4) = true")
	}
	if p.Parent().Node != 5 {
		t.Errorf("Parent node = %d, want 5", p.Parent().Node)
	}
	if got, want := p.String(), "3@0 -> 5@2 -> 7@4"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestPathSharesPrefix(t *testing.T) {
	base := newSource(0, 0)
	a := base.extend(1, 1)
	b := base.extend(2, 1)
	if a.Parent() != base || b.Parent() != base {
		t.Errorf("extensions do not share prefix")
	}
	if a.Contains(2) || b.Contains(1) {
		t.Errorf("sibling membership leaked")
	}
}
