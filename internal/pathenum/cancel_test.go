package pathenum

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/tracegen"
)

// firedCancel returns a token that has already fired via its context.
func firedCancel() *engine.Cancel {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := engine.NewCancel(ctx, 0)
	return &cc
}

// TestEnumerateCancelEquivalence pins the cancellation side of the
// determinism contract: a token that never fires leaves every result —
// single-message and batch — byte-identical to the uncancellable (nil
// token) run.
func TestEnumerateCancelEquivalence(t *testing.T) {
	tr := tracegen.Dev(3)
	rng := rand.New(rand.NewSource(99))
	msgs := sampleMessages(rng, tr, 10)

	enum, err := NewEnumerator(tr, Options{K: 150})
	if err != nil {
		t.Fatal(err)
	}
	inert := engine.NewCancel(context.Background(), time.Hour)

	for i, m := range msgs {
		plain, err := enum.Enumerate(m)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		withToken, err := enum.EnumerateCancel(m, &inert)
		if err != nil {
			t.Fatalf("message %d with token: %v", i, err)
		}
		if resultKey(plain) != resultKey(withToken) {
			t.Fatalf("message %d: result differs under a never-firing token", i)
		}
	}

	plainBatch, err := enum.EnumerateAll(msgs)
	if err != nil {
		t.Fatal(err)
	}
	tokenBatch, err := enum.EnumerateAllCancel(msgs, nil, &inert)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plainBatch {
		if resultKey(plainBatch[i]) != resultKey(tokenBatch[i]) {
			t.Fatalf("batch result %d differs under a never-firing token", i)
		}
	}
}

// TestEnumerateCancelAbandons pins the other half of the contract: a
// fired token abandons with a *engine.CanceledError and no result.
func TestEnumerateCancelAbandons(t *testing.T) {
	tr := tracegen.Dev(3)
	enum, err := NewEnumerator(tr, Options{K: 150})
	if err != nil {
		t.Fatal(err)
	}
	m := Message{Src: 0, Dst: 17, Start: 0}

	r, err := enum.EnumerateCancel(m, firedCancel())
	if !engine.IsCanceled(err) {
		t.Fatalf("EnumerateCancel with fired token: err = %v, want CanceledError", err)
	}
	if r != nil {
		t.Fatal("EnumerateCancel returned a result alongside cancellation")
	}

	rs, err := enum.EnumerateAllCancel([]Message{m, m, m}, nil, firedCancel())
	if !engine.IsCanceled(err) {
		t.Fatalf("EnumerateAllCancel with fired token: err = %v, want CanceledError", err)
	}
	if rs != nil {
		t.Fatal("EnumerateAllCancel returned results alongside cancellation")
	}
}

// TestEnumerateCancelStopsPromptly bounds the cancellation latency of
// the amortized in-loop poll: once the deadline is behind it, a batch
// over many messages must abandon well before finishing the work.
func TestEnumerateCancelStopsPromptly(t *testing.T) {
	tr := tracegen.Dev(7)
	rng := rand.New(rand.NewSource(7))
	msgs := sampleMessages(rng, tr, 64)
	enum, err := NewEnumerator(tr, Options{K: 2000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cc := engine.NewCancel(nil, time.Nanosecond)
	time.Sleep(time.Millisecond) // deadline is now in the past
	start := time.Now()
	if _, err := enum.EnumerateAllCancel(msgs, nil, &cc); !engine.IsCanceled(err) {
		t.Fatalf("err = %v, want CanceledError", err)
	}
	// Generous bound (CI machines stall); the real latency is the poll
	// interval — a few hundred dynamic-program steps.
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled batch still took %v", d)
	}
}
