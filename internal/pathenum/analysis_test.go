package pathenum

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func mkPath(nodes []trace.NodeID) *Path {
	p := newSource(nodes[0], 0)
	for i, n := range nodes[1:] {
		p = p.extend(n, i+1)
	}
	return p
}

func TestHopRates(t *testing.T) {
	rates := []float64{0.1, 0.2, 0.3, 0.4}
	paths := []*Path{
		mkPath([]trace.NodeID{0, 1, 3}),
		mkPath([]trace.NodeID{0, 2, 3}),
	}
	hr := HopRates(paths, rates)
	if len(hr) != 3 {
		t.Fatalf("hops = %d, want 3", len(hr))
	}
	if len(hr[0]) != 2 || hr[0][0] != 0.1 || hr[0][1] != 0.1 {
		t.Errorf("hop 0 = %v", hr[0])
	}
	if len(hr[1]) != 2 || hr[1][0] != 0.2 || hr[1][1] != 0.3 {
		t.Errorf("hop 1 = %v", hr[1])
	}
	if len(hr[2]) != 2 || hr[2][0] != 0.4 || hr[2][1] != 0.4 {
		t.Errorf("hop 2 = %v", hr[2])
	}
}

func TestHopRatesEmpty(t *testing.T) {
	if got := HopRates(nil, nil); got != nil {
		t.Errorf("HopRates(nil) = %v", got)
	}
}

func TestSummarizeHopRates(t *testing.T) {
	hr := [][]float64{{0.1, 0.3}, {0.5}}
	sum := SummarizeHopRates(hr, stats.Z99)
	if len(sum) != 2 {
		t.Fatalf("len = %d", len(sum))
	}
	if sum[0].Hop != 0 || math.Abs(sum[0].Mean-0.2) > 1e-12 || sum[0].N != 2 {
		t.Errorf("hop 0 summary = %+v", sum[0])
	}
	if sum[1].CI != 0 {
		t.Errorf("single-sample CI = %g, want 0", sum[1].CI)
	}
}

func TestRateRatios(t *testing.T) {
	rates := []float64{0.1, 0.2, 0.0, 0.4}
	paths := []*Path{
		mkPath([]trace.NodeID{0, 1, 3}), // ratios 2, 2
		mkPath([]trace.NodeID{2, 3}),    // prev rate 0: skipped
	}
	rr := RateRatios(paths, rates)
	if len(rr) != 2 {
		t.Fatalf("transitions = %d, want 2", len(rr))
	}
	if len(rr[0]) != 1 || math.Abs(rr[0][0]-2) > 1e-12 {
		t.Errorf("transition 0 = %v", rr[0])
	}
	if len(rr[1]) != 1 || math.Abs(rr[1][0]-2) > 1e-12 {
		t.Errorf("transition 1 = %v", rr[1])
	}
}

func TestClassifyMessage(t *testing.T) {
	tr, err := trace.New("cl", 4, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 1},
		{A: 0, B: 2, Start: 1, End: 2},
		{A: 0, B: 3, Start: 2, End: 3},
		{A: 1, B: 2, Start: 3, End: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := trace.NewClassifier(tr)
	if got := ClassifyMessage(cl, Message{Src: 0, Dst: 3}); got != trace.InOut {
		t.Errorf("ClassifyMessage = %v, want in-out", got)
	}
}

func TestGrowthRatePositiveForExponentialArrivals(t *testing.T) {
	// Binary-tree spread: source meets 1 relay, relays meet fresh
	// relays each step, all meeting dst at the end — arrival counts
	// grow with step. Simpler: synthesize a Result directly.
	res := &Result{Delta: 10, Msg: Message{Src: 0, Dst: 9}}
	// Arrivals at steps 0,1,1,2,2,2,2 — roughly doubling.
	steps := []int{0, 1, 1, 2, 2, 2, 2}
	for _, s := range steps {
		p := newSource(0, 0).extend(trace.NodeID(9), s)
		res.Arrivals = append(res.Arrivals, p)
	}
	r := res.GrowthRate()
	if math.IsNaN(r) || r <= 0 {
		t.Errorf("growth rate = %g, want positive", r)
	}
}
