package pathenum

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
)

// randomWideTrace builds a random sparse trace over a population beyond
// the nodeSet bitset capacity (n > maxNodes), dense enough in contacts
// that multi-hop paths actually form.
func randomWideTrace(rng *rand.Rand, n int, horizon float64) (*trace.Trace, error) {
	var cs []trace.Contact
	m := 120 + rng.Intn(180)
	for i := 0; i < m; i++ {
		a := trace.NodeID(rng.Intn(n))
		b := trace.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		s := rng.Float64() * horizon * 0.9
		e := s + rng.Float64()*horizon*0.2
		if e > horizon {
			e = horizon
		}
		cs = append(cs, trace.Contact{A: a, B: b, Start: s, End: e})
	}
	return trace.New("wide-rand", n, horizon, cs)
}

// TestWideModeMatchesChainReference pins wide mode — membership bitset
// rows in a slab arena — byte-identical to the pre-index reference
// enumerator resolving membership by walking public parent chains
// (refEnumerator.chains; Path.Contains), over random traces with
// populations above the 128-node bitset capacity, multiple seeds and
// Delta settings. The two implementations share no membership
// machinery, so agreement pins the rows' loop-avoidance and
// first-preference pruning exactly.
func TestWideModeMatchesChainReference(t *testing.T) {
	cases := 14
	if testing.Short() {
		cases = 5
	}
	deltas := []float64{5, 10, 20}
	for c := 0; c < cases; c++ {
		seed := engine.DeriveSeed(20260808, c)
		rng := rand.New(rand.NewSource(seed))
		n := maxNodes + 1 + rng.Intn(72)
		tr, err := randomWideTrace(rng, n, 500)
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Delta: deltas[rng.Intn(len(deltas))], K: 30 + rng.Intn(90)}
		enum, err := NewEnumerator(tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !enum.wide {
			t.Fatalf("case %d: %d nodes did not select wide mode", c, n)
		}
		msgs := sampleMessages(rng, tr, 3)
		goldenCompare(t, tr, opt, msgs, "wide-chain")
	}
}

// TestWideBatchMatchesChainReference runs the shared-prefix batch path
// in wide mode (forked row arenas) against the chain-walking reference.
func TestWideBatchMatchesChainReference(t *testing.T) {
	cases := 6
	if testing.Short() {
		cases = 2
	}
	for c := 0; c < cases; c++ {
		seed := engine.DeriveSeed(20260809, c)
		rng := rand.New(rand.NewSource(seed))
		tr, err := randomWideTrace(rng, maxNodes+1+rng.Intn(40), 500)
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Delta: 10, K: 40 + rng.Intn(60)}
		msgs := sharedPrefixBatch(rng, tr, 5)
		batchCompare(t, tr, opt, msgs, "wide-batch")

		enum, err := NewEnumerator(tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefEnumerator(tr, opt)
		results, err := enum.EnumerateAll(msgs)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range msgs {
			want := ref.enumerate(m)
			if gk, wk := resultKey(results[i]), resultKey(want); gk != wk {
				t.Errorf("case %d message %d diverges from chain reference:\n got %q\nwant %q", c, i, gk, wk)
			}
		}
	}
}
