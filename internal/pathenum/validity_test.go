package pathenum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// These property tests verify the §4.1 validity conditions directly
// against the source trace, independently of the enumerator's own
// data structures: for every delivered path,
//
//  1. the node sequence is loop-free and starts/ends at src/dst;
//  2. join steps are non-decreasing and every hop corresponds to a
//     real contact overlapping that step;
//  3. first preference: no member node is in direct contact with the
//     destination at any step between joining the path and the path's
//     arrival step (a strictly earlier encounter would dominate);
//  4. minimal progress at the source: the path's start step is the
//     message's start step or later.

// inContactAt reports whether a and b share a contact overlapping step
// s (of width delta) in tr.
func inContactAt(tr *trace.Trace, a, b trace.NodeID, s int, delta float64) bool {
	lo := float64(s) * delta
	hi := lo + delta
	for _, c := range tr.Contacts() {
		if !c.Involves(a) || !c.Involves(b) || c.A == c.B {
			continue
		}
		if (c.A == a && c.B == b) || (c.A == b && c.B == a) {
			if c.Start < hi && (c.End > lo || (c.End == c.Start && c.End >= lo)) {
				return true
			}
		}
	}
	return false
}

func checkPathValidity(t *testing.T, tr *trace.Trace, msg Message, res *Result) {
	t.Helper()
	delta := res.Delta
	for _, p := range res.Arrivals {
		nodes := p.Nodes()
		steps := p.Steps()
		if nodes[0] != msg.Src {
			t.Fatalf("path %s does not start at source %d", p, msg.Src)
		}
		if nodes[len(nodes)-1] != msg.Dst {
			t.Fatalf("path %s does not end at destination %d", p, msg.Dst)
		}
		seen := map[trace.NodeID]bool{}
		for i, n := range nodes {
			if seen[n] {
				t.Fatalf("path %s revisits %d", p, n)
			}
			seen[n] = true
			if i > 0 {
				if steps[i] < steps[i-1] {
					t.Fatalf("path %s steps decrease", p)
				}
				if !inContactAt(tr, nodes[i-1], nodes[i], steps[i], delta) {
					t.Fatalf("path %s hop %d->%d at step %d has no contact",
						p, nodes[i-1], nodes[i], steps[i])
				}
			}
		}
		// First preference: members must not meet dst strictly before
		// the arrival step while on the path.
		arrival := p.Step
		for i := 0; i+1 < len(nodes); i++ {
			for s := steps[i]; s < arrival; s++ {
				if inContactAt(tr, nodes[i], msg.Dst, s, delta) {
					t.Fatalf("path %s violates first preference: member %d met dst at step %d < arrival %d",
						p, nodes[i], s, arrival)
				}
			}
		}
		if start := int(msg.Start / delta); steps[0] < start {
			t.Fatalf("path %s starts at step %d before message start step %d", p, steps[0], start)
		}
	}
}

func randomTrace(rng *rand.Rand, n int, horizon float64) (*trace.Trace, error) {
	var cs []trace.Contact
	m := 5 + rng.Intn(40)
	for i := 0; i < m; i++ {
		a := trace.NodeID(rng.Intn(n))
		b := trace.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		s := rng.Float64() * horizon * 0.9
		e := s + rng.Float64()*horizon*0.2
		if e > horizon {
			e = horizon
		}
		cs = append(cs, trace.Contact{A: a, B: b, Start: s, End: e})
	}
	return trace.New("rand", n, horizon, cs)
}

func TestEnumerateValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := randomTrace(rng, 8, 300)
		if err != nil {
			return false
		}
		e, err := NewEnumerator(tr, Options{K: 500})
		if err != nil {
			return false
		}
		src := trace.NodeID(rng.Intn(8))
		dst := trace.NodeID(rng.Intn(8))
		if src == dst {
			dst = (dst + 1) % 8
		}
		msg := Message{Src: src, Dst: dst, Start: rng.Float64() * 200}
		res, err := e.Enumerate(msg)
		if err != nil {
			return false
		}
		checkPathValidity(t, tr, msg, res)
		// Arrivals must be sorted by step.
		for i := 1; i < len(res.Arrivals); i++ {
			if res.Arrivals[i].Step < res.Arrivals[i-1].Step {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Narrowing the table must never find paths a wide table misses, and
// the first arrival time must be identical (the optimal path always
// fits any table).
func TestTableWidthMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := randomTrace(rng, 8, 300)
		if err != nil {
			return false
		}
		src := trace.NodeID(rng.Intn(8))
		dst := trace.NodeID(rng.Intn(8))
		if src == dst {
			dst = (dst + 1) % 8
		}
		msg := Message{Src: src, Dst: dst, Start: 0}
		wide, err := NewEnumerator(tr, Options{K: 1000})
		if err != nil {
			return false
		}
		narrow, err := NewEnumerator(tr, Options{K: 1000, TableWidth: 2})
		if err != nil {
			return false
		}
		rw, err := wide.Enumerate(msg)
		if err != nil {
			return false
		}
		rn, err := narrow.Enumerate(msg)
		if err != nil {
			return false
		}
		if rn.NumPaths() > rw.NumPaths() {
			return false
		}
		tw, okw := rw.T1()
		tn, okn := rn.T1()
		if okw != okn {
			return false
		}
		return !okw || tw == tn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The enumerator is reusable: enumerating the same message twice must
// give identical results (scratch state fully reset).
func TestEnumeratorReuseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := randomTrace(rng, 8, 300)
		if err != nil {
			return false
		}
		e, err := NewEnumerator(tr, Options{K: 200})
		if err != nil {
			return false
		}
		msg := Message{Src: 0, Dst: 5, Start: 0}
		r1, err := e.Enumerate(msg)
		if err != nil {
			return false
		}
		// Interleave a different message.
		if _, err := e.Enumerate(Message{Src: 2, Dst: 7, Start: 10}); err != nil {
			return false
		}
		r2, err := e.Enumerate(msg)
		if err != nil {
			return false
		}
		if r1.NumPaths() != r2.NumPaths() {
			return false
		}
		for i := range r1.Arrivals {
			if r1.Arrivals[i].String() != r2.Arrivals[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
