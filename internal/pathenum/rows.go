package pathenum

import "repro/internal/trace"

// Wide populations (beyond the nodeSet bitset capacity) keep one
// membership bitset row per resident table entry: ceil(n/64) uint64
// words in a chunked slab, addressed by a dense int32 row handle
// carried in the entry. Membership — loop avoidance at the BFS root
// and first-preference pruning — is then one word-indexed bit test or
// a word-wise AND sweep, instead of the parent-chain walks the wide
// mode used before. Each entry owns its row exclusively from the
// moment the acceptance test admits it (the root's row copied, branch
// nodes OR-ed in), so dropped entries recycle their rows immediately.
//
// rowArena is the chunked slab holding the rows. Chunks hold
// rowChunkRows rows each, so handle arithmetic is two shifts; freed
// handles are recycled through a stack. A forked arena (batch
// enumeration) shares its base's chunks as a read-only prefix and
// allocates from the next chunk boundary; floor guards the free list
// so a fork never recycles rows it shares with the base.
type rowArena struct {
	words  int32 // row width in uint64 words, ceil(numNodes/64)
	chunks [][]uint64
	n      int32 // rows ever allocated since reset (free list reuses)
	free   []int32
	floor  int32      // fork guard: handles below floor are shared, never freed
	spare  [][]uint64 // fork-owned chunks recycled across re-forks
}

const (
	rowShift     = 10
	rowChunkRows = 1 << rowShift
	rowMask      = rowChunkRows - 1
)

func (r *rowArena) row(h int32) []uint64 {
	off := (h & rowMask) * r.words
	return r.chunks[h>>rowShift][off : off+r.words]
}

// alloc returns a zeroed row handle.
func (r *rowArena) alloc() int32 {
	if k := len(r.free); k > 0 {
		h := r.free[k-1]
		r.free = r.free[:k-1]
		clear(r.row(h))
		return h
	}
	ci := int(r.n) >> rowShift
	if ci == len(r.chunks) {
		r.growChunk()
	}
	h := r.n
	r.n++
	clear(r.row(h))
	return h
}

// growChunk appends one chunk, recycling a spare from a previous fork
// incarnation when available.
func (r *rowArena) growChunk() {
	if k := len(r.spare); k > 0 {
		r.chunks = append(r.chunks, r.spare[k-1])
		r.spare = r.spare[:k-1]
		return
	}
	r.chunks = append(r.chunks, make([]uint64, rowChunkRows*int(r.words)))
}

// allocCopy returns a fresh row initialized to a copy of src, skipping
// the zeroing alloc would do (the copy overwrites every word). This is
// the hot row operation: one per accepted candidate.
func (r *rowArena) allocCopy(src int32) int32 {
	var h int32
	if k := len(r.free); k > 0 {
		h = r.free[k-1]
		r.free = r.free[:k-1]
	} else {
		ci := int(r.n) >> rowShift
		if ci == len(r.chunks) {
			r.growChunk()
		}
		h = r.n
		r.n++
	}
	copy(r.row(h), r.row(src))
	return h
}

// freeRow recycles a row. Handles below the fork floor are shared with
// the base arena and silently kept alive instead (the fork's reset
// reclaims everything anyway).
func (r *rowArena) freeRow(h int32) {
	if h >= r.floor {
		r.free = append(r.free, h)
	}
}

func (r *rowArena) set(h int32, n trace.NodeID) {
	r.row(h)[n>>6] |= 1 << (uint(n) & 63)
}

// intersects reports whether row h shares a node with the bitset bits
// (len(bits) == words).
func (r *rowArena) intersects(h int32, bits []uint64) bool {
	row := r.row(h)
	for i, w := range bits {
		if row[i]&w != 0 {
			return true
		}
	}
	return false
}

// forkFrom turns r into a layered fork of base: base's chunks become a
// shared read-only prefix and r allocates from the next chunk boundary,
// so the base can keep allocating into its own tail without the two
// ever writing the same slot. Forks are never reset or pooled — their
// chunk table aliases the base's — but re-forking an existing fork
// recycles the chunks it had allocated itself through the spare list.
func (r *rowArena) forkFrom(base *rowArena) {
	if own := r.chunks[min(int(r.floor)>>rowShift, len(r.chunks)):]; len(own) > 0 {
		r.spare = append(r.spare, own...)
	}
	nChunks := (int(base.n) + rowMask) >> rowShift
	r.words = base.words
	r.chunks = append(r.chunks[:0], base.chunks[:nChunks]...)
	r.n = int32(nChunks) << rowShift
	r.free = r.free[:0]
	r.floor = r.n
}

// reset rewinds the arena for the next enumeration, honoring the same
// ~32 MB scratch retention policy as the path arena: chunks beyond the
// cap are released to the garbage collector.
func (r *rowArena) reset() {
	if r.words > 0 {
		if maxRetain := int(4096 / r.words); len(r.chunks) > maxRetain {
			keep := make([][]uint64, maxRetain)
			copy(keep, r.chunks)
			r.chunks = keep
		}
	}
	r.n = 0
	r.free = r.free[:0]
	r.floor = 0
}
