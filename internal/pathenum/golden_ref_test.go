package pathenum

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// This file vendors the pre-index enumerator — the implementation that
// shipped before the space-time graph became a CSR/component index and
// the hot loops went allocation-free — and proves the rewrite is a
// pure optimization: for every dataset, seed and option combination,
// the indexed enumerator's Arrivals (nodes, steps, hops, order) and
// Exhausted flags are byte-identical to the reference's.
//
// The reference is kept deliberately naive and close to the original
// source: per-step adjacency lists built with a linear has-edge scan,
// per-message thresholds recomputed by one BFS (with a heap-allocated
// depth map) per component member per step, one heap allocation per
// path extension, and front-reslicing BFS queues.

// refGraph is the pre-index space-time graph: one contact adjacency
// list per step, built in contact order.
type refGraph struct {
	numNodes int
	delta    float64
	steps    int
	adj      [][][]trace.NodeID
}

func refNewGraph(tr *trace.Trace, delta float64) *refGraph {
	steps := int(tr.Horizon / delta)
	if float64(steps)*delta < tr.Horizon {
		steps++
	}
	if steps == 0 {
		steps = 1
	}
	g := &refGraph{numNodes: tr.NumNodes, delta: delta, steps: steps}
	g.adj = make([][][]trace.NodeID, steps)
	for s := 0; s < steps; s++ {
		g.adj[s] = make([][]trace.NodeID, tr.NumNodes)
	}
	for _, c := range tr.Contacts() {
		first := int(c.Start / delta)
		last := int(c.End / delta)
		if c.End > c.Start && float64(last)*delta == c.End {
			last--
		}
		if last >= steps {
			last = steps - 1
		}
		for s := first; s <= last; s++ {
			if g.hasEdge(s, c.A, c.B) {
				continue
			}
			g.adj[s][c.A] = append(g.adj[s][c.A], c.B)
			g.adj[s][c.B] = append(g.adj[s][c.B], c.A)
		}
	}
	return g
}

func (g *refGraph) hasEdge(s int, a, b trace.NodeID) bool {
	for _, n := range g.adj[s][a] {
		if n == b {
			return true
		}
	}
	return false
}

func (g *refGraph) stepOf(t float64) int {
	s := int(t / g.delta)
	if s < 0 {
		return 0
	}
	if s >= g.steps {
		return g.steps - 1
	}
	return s
}

// refEnumerator is the pre-index dynamic program (paper Figure 3).
type refEnumerator struct {
	tr  *trace.Trace
	g   *refGraph
	opt Options

	// chains switches path-membership queries from the nodeSet bitsets
	// (which cap out at maxNodes) to walks of the public parent chain.
	// It turns the reference into an implementation-independent check
	// of wide mode: the enumerator under test resolves membership
	// through its bitset rows, the reference through the chains.
	chains bool

	visited  []int
	epoch    int
	mergeBuf []*Path
}

func newRefEnumerator(tr *trace.Trace, opt Options) *refEnumerator {
	opt = opt.withDefaults()
	return &refEnumerator{
		tr:      tr,
		g:       refNewGraph(tr, opt.Delta),
		opt:     opt,
		chains:  tr.NumNodes > maxNodes,
		visited: make([]int, tr.NumNodes),
	}
}

// pathHas reports whether node n is on path p, via the mode-appropriate
// membership mechanism.
func (e *refEnumerator) pathHas(p *Path, n trace.NodeID) bool {
	if e.chains {
		return p.Contains(n)
	}
	return p.members.has(n)
}

// prune removes table paths containing a delivered node. dn and
// delivered describe the same set; chain mode walks parent chains
// against dn, bitset mode intersects nodeSets.
func (e *refEnumerator) prune(paths []*Path, dn []trace.NodeID, delivered nodeSet) []*Path {
	if !e.chains {
		return refPruneContaining(paths, delivered)
	}
	out := paths[:0]
	for _, p := range paths {
		hit := false
		for _, d := range dn {
			if p.Contains(d) {
				hit = true
				break
			}
		}
		if !hit {
			out = append(out, p)
		}
	}
	for i := len(out); i < len(paths); i++ {
		paths[i] = nil
	}
	return out
}

func (e *refEnumerator) enumerate(msg Message) *Result {
	n := e.tr.NumNodes
	res := &Result{Msg: msg, Delta: e.g.delta}
	table := make([][]*Path, n)
	s0 := e.g.stepOf(msg.Start)
	table[msg.Src] = []*Path{newSource(msg.Src, s0)}

	cands := make([][]*Path, n)
	var queue []*Path
	thresh := make([]int, n)

	for s := s0; s < e.g.steps; s++ {
		e.computeThresholds(s, msg.Dst, table, thresh)
		for i := 0; i < n; i++ {
			paths := table[i]
			if len(paths) == 0 || thresh[i] == int(skipAll) {
				continue
			}
			bound := thresh[i]
			for _, p := range paths {
				if p.Hops >= bound {
					break
				}
				queue = e.extendBFS(res, p, s, queue, table, cands, thresh)
				if len(res.Arrivals) >= e.opt.MaxArrivals {
					res.Exhausted = true
					return res
				}
			}
		}
		for i := 0; i < n; i++ {
			if len(cands[i]) > 0 {
				table[i] = e.mergeShortest(table[i], cands[i])
				cands[i] = cands[i][:0]
			}
		}
		if dn := e.g.adj[s][msg.Dst]; len(dn) > 0 {
			var delivered nodeSet
			for _, d := range dn {
				delivered = delivered.with(d)
			}
			alive := false
			for i := 0; i < n; i++ {
				table[i] = e.prune(table[i], dn, delivered)
				alive = alive || len(table[i]) > 0
			}
			if !alive {
				return res
			}
		}
		if len(res.Arrivals) >= e.opt.K {
			res.Exhausted = true
			return res
		}
	}
	return res
}

func (e *refEnumerator) computeThresholds(s int, dst trace.NodeID, table [][]*Path, thresh []int) {
	for i := range thresh {
		thresh[i] = int(skipAll)
	}
	var comp, queue []trace.NodeID
	for start := 0; start < len(thresh); start++ {
		if thresh[start] != int(skipAll) || len(e.g.adj[s][start]) == 0 {
			continue
		}
		comp = comp[:0]
		queue = append(queue[:0], trace.NodeID(start))
		thresh[start] = int(skipAll) + 1
		hasDst := false
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			if cur == dst {
				hasDst = true
			}
			for _, nb := range e.g.adj[s][cur] {
				if thresh[nb] == int(skipAll) {
					thresh[nb] = int(skipAll) + 1
					queue = append(queue, nb)
				}
			}
		}
		if hasDst {
			for _, v := range comp {
				thresh[v] = int(extendAll)
			}
			continue
		}
		for _, src := range comp {
			queue = append(queue[:0], src)
			best := int(skipAll)
			depth := make(map[trace.NodeID]int, len(comp))
			depth[src] = 0
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				d := depth[cur]
				if cur != src {
					capacity := int(extendAll)
					if t := table[cur]; len(t) >= e.opt.TableWidth {
						capacity = t[len(t)-1].Hops
					}
					if capacity == int(extendAll) {
						best = int(extendAll)
						break
					}
					if b := capacity - d; b > best {
						best = b
					}
				}
				for _, nb := range e.g.adj[s][cur] {
					if _, ok := depth[nb]; !ok {
						depth[nb] = d + 1
						queue = append(queue, nb)
					}
				}
			}
			thresh[src] = best
		}
	}
}

func (e *refEnumerator) extendBFS(res *Result, p *Path, s int, queue []*Path, table, cands [][]*Path, thresh []int) []*Path {
	e.epoch++
	epoch := e.epoch
	dst := res.Msg.Dst
	e.visited[p.Node] = epoch
	queue = append(queue[:0], p)
	delivered := false
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, nb := range e.g.adj[s][q.Node] {
			if nb == dst {
				if !delivered {
					delivered = true
					res.Arrivals = append(res.Arrivals, q.extend(dst, s))
				}
				continue
			}
			if e.visited[nb] == epoch || e.pathHas(p, nb) {
				continue
			}
			e.visited[nb] = epoch
			childHops := q.Hops + 1
			t := table[nb]
			accept := len(t) < e.opt.TableWidth || t[len(t)-1].Hops > childHops
			deeper := thresh[nb] == int(extendAll) || thresh[nb] > childHops
			if !accept && !deeper {
				continue
			}
			child := q.extend(nb, s)
			if accept {
				cands[nb] = append(cands[nb], child)
			}
			if deeper {
				queue = append(queue, child)
			}
		}
	}
	return queue[:0]
}

func refPruneContaining(paths []*Path, delivered nodeSet) []*Path {
	out := paths[:0]
	for _, p := range paths {
		if !p.members.intersects(delivered) {
			out = append(out, p)
		}
	}
	for i := len(out); i < len(paths); i++ {
		paths[i] = nil
	}
	return out
}

func (e *refEnumerator) mergeShortest(existing, cands []*Path) []*Path {
	width := e.opt.TableWidth
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Hops < cands[j].Hops })
	buf := e.mergeBuf[:0]
	i, j := 0, 0
	for len(buf) < width && (i < len(existing) || j < len(cands)) {
		if j >= len(cands) || (i < len(existing) && existing[i].Hops <= cands[j].Hops) {
			buf = append(buf, existing[i])
			i++
		} else {
			buf = append(buf, cands[j])
			j++
		}
	}
	e.mergeBuf = buf
	existing = append(existing[:0], buf...)
	return existing
}

// goldenCompare enumerates msgs with both implementations and compares
// the flattened results (message, delta, Exhausted, and every arrival
// path with its per-hop steps, in order).
func goldenCompare(t *testing.T, tr *trace.Trace, opt Options, msgs []Message, label string) {
	t.Helper()
	enum, err := NewEnumerator(tr, opt)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	ref := newRefEnumerator(tr, opt)
	for i, msg := range msgs {
		got, err := enum.Enumerate(msg)
		if err != nil {
			t.Fatalf("%s message %d: %v", label, i, err)
		}
		want := ref.enumerate(msg)
		if gk, wk := resultKey(got), resultKey(want); gk != wk {
			t.Fatalf("%s message %d (%d->%d@%g) diverges from pre-index implementation:\n got %q\nwant %q",
				label, i, msg.Src, msg.Dst, msg.Start, gk, wk)
		}
	}
}

// TestGoldenEquivalenceDatasets pins the indexed enumerator to the
// pre-index implementation across all four paper datasets, three
// seeds, and representative Delta/K/TableWidth settings.
func TestGoldenEquivalenceDatasets(t *testing.T) {
	opts := []struct {
		name string
		opt  Options
	}{
		{"default", Options{K: 80}},
		{"delta30", Options{Delta: 30, K: 60}},
		{"narrowTable", Options{K: 60, TableWidth: 8}},
	}
	datasets := tracegen.Datasets[:]
	seeds := []int64{1, 2, 3}
	msgsPerSeed := 2
	if testing.Short() {
		datasets = datasets[:2]
		seeds = seeds[:2]
		msgsPerSeed = 1
	}
	for _, d := range datasets {
		tr := tracegen.MustGenerate(d)
		for _, o := range opts {
			for _, seed := range seeds {
				rng := rand.New(rand.NewSource(seed))
				msgs := sampleMessages(rng, tr, msgsPerSeed)
				goldenCompare(t, tr, o.opt, msgs, d.String()+"/"+o.name)
			}
		}
	}
}

// TestGoldenEquivalenceDevTrace sweeps more seeds and options on the
// small development trace, including budget edge cases (tiny K and
// MaxArrivals, table width 1).
func TestGoldenEquivalenceDevTrace(t *testing.T) {
	opts := []Options{
		{K: 150},
		{K: 40},
		{Delta: 5, K: 60},
		{Delta: 25, K: 60},
		{K: 100, TableWidth: 1},
		{K: 100, TableWidth: 4},
		{K: 30, MaxArrivals: 35},
	}
	for _, seed := range []int64{1, 2, 3, 7, 11} {
		tr := tracegen.Dev(seed)
		rng := rand.New(rand.NewSource(seed * 101))
		msgs := sampleMessages(rng, tr, 6)
		for _, o := range opts {
			goldenCompare(t, tr, o, msgs, "dev")
		}
	}
}

// TestGoldenEquivalenceRandomTraces fuzzes the comparison over random
// sparse traces, where component shapes (chains, stars, merged blobs)
// vary more than in the conference generator.
func TestGoldenEquivalenceRandomTraces(t *testing.T) {
	cases := 30
	if testing.Short() {
		cases = 10
	}
	for c := 0; c < cases; c++ {
		rng := rand.New(rand.NewSource(int64(1000 + c)))
		tr, err := randomTrace(rng, 10, 400)
		if err != nil {
			t.Fatal(err)
		}
		msgs := sampleMessages(rng, tr, 4)
		opt := Options{Delta: 5 + float64(rng.Intn(4))*5, K: 20 + rng.Intn(150)}
		goldenCompare(t, tr, opt, msgs, "random")
	}
}
