package pathenum

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// batchCompare enumerates msgs as one EnumerateAll batch and as
// independent serial Enumerate calls on a fresh enumerator, requiring
// byte-identical results in message order. This is the contract the
// shared-prefix grouping must uphold: grouping is invisible in the
// output.
func batchCompare(t *testing.T, tr *trace.Trace, opt Options, msgs []Message, label string) {
	t.Helper()
	batch, err := NewEnumerator(tr, opt)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	serial, err := NewEnumerator(tr, opt)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	got, err := batch.EnumerateAll(msgs)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("%s: %d results for %d messages", label, len(got), len(msgs))
	}
	for i, m := range msgs {
		want, err := serial.Enumerate(m)
		if err != nil {
			t.Fatalf("%s message %d: %v", label, i, err)
		}
		if gk, wk := resultKey(got[i]), resultKey(want); gk != wk {
			t.Errorf("%s message %d (%d->%d@%g) batch diverges from serial:\n got %q\nwant %q",
				label, i, m.Src, m.Dst, m.Start, gk, wk)
		}
	}
}

// sharedPrefixBatch builds a batch of messages all sharing (src, start)
// — the maximal-sharing shape of the paper's per-destination sweeps —
// with nDst distinct destinations plus one duplicated destination.
func sharedPrefixBatch(rng *rand.Rand, tr *trace.Trace, nDst int) []Message {
	src := trace.NodeID(rng.Intn(tr.NumNodes))
	start := rng.Float64() * tr.Horizon / 2
	seen := map[trace.NodeID]bool{src: true}
	var msgs []Message
	for len(msgs) < nDst {
		d := trace.NodeID(rng.Intn(tr.NumNodes))
		if seen[d] {
			continue
		}
		seen[d] = true
		msgs = append(msgs, Message{Src: src, Dst: d, Start: start})
	}
	// A repeated destination must fork and deliver twice, identically.
	msgs = append(msgs, msgs[0])
	return msgs
}

// TestBatchEquivalenceDatasets pins grouped EnumerateAll to serial
// enumeration on all four conference datasets, with every message of a
// batch sharing one (src, start) group.
func TestBatchEquivalenceDatasets(t *testing.T) {
	datasets := tracegen.Datasets[:]
	nDst := 6
	if testing.Short() {
		datasets = datasets[:2]
		nDst = 3
	}
	for _, d := range datasets {
		tr := tracegen.MustGenerate(d)
		for _, seed := range []int64{1, 7} {
			rng := rand.New(rand.NewSource(seed))
			msgs := sharedPrefixBatch(rng, tr, nDst)
			batchCompare(t, tr, Options{K: 80, Workers: 2}, msgs, d.String())
		}
	}
}

// TestBatchEquivalenceCity pins grouped EnumerateAll on the city-scale
// 2000-node trace, exercising the wide-mode fork path (layered row
// arenas) end to end.
func TestBatchEquivalenceCity(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale trace generation in -short mode")
	}
	tr := tracegen.MustCity(2000, 1)
	rng := rand.New(rand.NewSource(3))
	msgs := sharedPrefixBatch(rng, tr, 4)
	batchCompare(t, tr, Options{K: 40}, msgs, "city-2k")
}

// TestBatchEquivalenceMixedBatches covers batches mixing several
// groups: different sources, different start steps, two float starts
// landing in the same step (which must share a group and still carry
// their own Start through to the result), singleton groups, and exact
// duplicate messages.
func TestBatchEquivalenceMixedBatches(t *testing.T) {
	for _, seed := range []int64{2, 5, 13} {
		tr := tracegen.Dev(seed)
		h := tr.Horizon
		msgs := []Message{
			// Group A: source 0, step of h/4, three destinations; the
			// third start differs but lands in the same Delta=10 step.
			{Src: 0, Dst: 1, Start: h / 4},
			{Src: 0, Dst: 2, Start: h / 4},
			{Src: 0, Dst: 3, Start: h/4 + 3},
			// Group B: same source, different step.
			{Src: 0, Dst: 1, Start: h / 2},
			// Group C: different source, same step as A.
			{Src: 1, Dst: 0, Start: h / 4},
			{Src: 1, Dst: 4, Start: h / 4},
			// Singleton.
			{Src: 2, Dst: 5, Start: 0},
			// Exact duplicate of a group-A message.
			{Src: 0, Dst: 2, Start: h / 4},
		}
		batchCompare(t, tr, Options{K: 60, Workers: 3}, msgs, "mixed")
	}
}

// TestBatchNeverActiveDestination covers destinations with no contacts
// at or after the start step: the group must emit an empty,
// non-exhausted result without running any dynamic program for them,
// matching what serial enumeration reports after sweeping the trace.
func TestBatchNeverActiveDestination(t *testing.T) {
	// Node 3 contacts only early; node 4 never contacts anyone.
	cs := []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 200},
		{A: 1, B: 2, Start: 50, End: 200},
		{A: 2, B: 3, Start: 0, End: 40},
		{A: 0, B: 2, Start: 120, End: 180},
	}
	tr, err := trace.New("never-active", 5, 200, cs)
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Message{
		{Src: 0, Dst: 3, Start: 100}, // dst inactive after start
		{Src: 0, Dst: 4, Start: 100}, // dst never active at all
		{Src: 0, Dst: 2, Start: 100}, // live destination, same group
	}
	batchCompare(t, tr, Options{Delta: 10, K: 20}, msgs, "never-active")

	enum, err := NewEnumerator(tr, Options{Delta: 10, K: 20})
	if err != nil {
		t.Fatal(err)
	}
	results, err := enum.EnumerateAll(msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if results[i].NumPaths() != 0 || results[i].Exhausted {
			t.Errorf("message %d: want empty non-exhausted result, got %d paths exhausted=%v",
				i, results[i].NumPaths(), results[i].Exhausted)
		}
	}
	if results[2].NumPaths() == 0 {
		t.Errorf("live destination found no paths")
	}
}

// TestBatchEquivalenceRandomTraces fuzzes grouped batches over random
// sparse traces: random messages plus a forced shared-prefix clump, so
// group sizes and fork points vary with the topology.
func TestBatchEquivalenceRandomTraces(t *testing.T) {
	cases := 20
	if testing.Short() {
		cases = 6
	}
	for c := 0; c < cases; c++ {
		rng := rand.New(rand.NewSource(int64(4000 + c)))
		tr, err := randomTrace(rng, 10, 400)
		if err != nil {
			t.Fatal(err)
		}
		msgs := append(sampleMessages(rng, tr, 4), sharedPrefixBatch(rng, tr, 4)...)
		opt := Options{Delta: 5 + float64(rng.Intn(4))*5, K: 20 + rng.Intn(120), Workers: 1 + c%3}
		batchCompare(t, tr, opt, msgs, "random")
	}
}
