package pathenum

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/stgraph"
	"repro/internal/trace"
)

// Message identifies one forwarding problem: deliver from Src to Dst a
// message created at time Start (seconds from trace origin).
type Message struct {
	Src, Dst trace.NodeID
	Start    float64
}

// Options tunes the enumerator.
type Options struct {
	// Delta is the space-time discretization step in seconds.
	// Zero means stgraph.DefaultDelta (the paper's 10 s).
	Delta float64

	// K is the arrival budget: enumeration stops at the end of the
	// first step by which K paths in total have reached the
	// destination. Zero means the paper's 2000.
	K int

	// TableWidth caps the number of shortest valid paths kept per
	// node. Zero means K, matching the paper (which uses the same k
	// for the table and the stop rule). Narrower tables trade
	// completeness of the count for speed (ablation AB2).
	TableWidth int

	// MaxArrivals hard-caps the number of recorded arrivals; once hit,
	// enumeration stops immediately (even mid-step). This bounds the
	// overshoot in the final step, where a dense contact component can
	// deliver every table path at once. Zero means 4·K, which is
	// comfortably beyond the paper's T2000 measurement point.
	MaxArrivals int

	// Workers caps the number of goroutines EnumerateAll uses to
	// enumerate a message batch concurrently. Zero means
	// runtime.GOMAXPROCS(0); 1 forces a serial batch. Each message is
	// enumerated independently over the shared immutable space-time
	// graph, so results are identical for every worker count.
	Workers int
}

// Normalized returns the options with every zero field replaced by
// its documented default (Δ = 10 s, K = 2000, TableWidth = K,
// MaxArrivals = 4·K; Workers stays as given), or an error if any
// field is out of range. Two option values describing the same
// enumeration normalize identically, so callers that key caches on
// options — e.g. the serving layer — must key on the normalized form
// rather than re-deriving the defaults.
func (o Options) Normalized() (Options, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}

func (o Options) withDefaults() Options {
	if o.Delta == 0 {
		o.Delta = stgraph.DefaultDelta
	}
	if o.K == 0 {
		o.K = 2000
	}
	if o.TableWidth == 0 {
		o.TableWidth = o.K
	}
	if o.MaxArrivals == 0 {
		o.MaxArrivals = 4 * o.K
	}
	return o
}

func (o Options) validate() error {
	if o.Delta < 0 {
		return fmt.Errorf("pathenum: negative delta %g", o.Delta)
	}
	if o.K < 0 || o.TableWidth < 0 || o.MaxArrivals < 0 {
		return fmt.Errorf("pathenum: negative K, TableWidth or MaxArrivals")
	}
	return nil
}

// ErrTooManyNodes is kept for API compatibility; since populations
// beyond the bitset capacity run in wide mode it is no longer
// returned.
var ErrTooManyNodes = errors.New("pathenum: trace exceeds 128 nodes")

// Enumerator enumerates valid paths for messages over one trace. The
// indexed space-time graph — CSR adjacency plus per-step contact
// components and intra-component hop distances — is built once and
// shared across messages, so the per-message dynamic program reads
// precomputed indexes instead of re-deriving per-step structure. An
// Enumerator is safe for concurrent use: every Enumerate call draws
// its mutable scratch (tables, queues, and a path arena) from an
// internal pool, so goroutines may share one Enumerator (or call
// EnumerateAll, which fans a batch out itself).
type Enumerator struct {
	tr  *trace.Trace
	g   *stgraph.Graph
	opt Options

	// wide marks populations beyond the nodeSet bitset capacity
	// (city-scale traces): path membership — loop avoidance roots and
	// first-preference pruning — is then resolved through full-width
	// bitset rows, one per table entry, held in a slab arena (see
	// rowArena) instead of the pnodes' inline two-word sets. Both
	// modes run the identical dynamic program.
	wide bool

	// Per-call scratch, pooled so sequential calls reuse their
	// allocations and concurrent calls never share state.
	pool sync.Pool
}

// entry is one table slot: an arena handle with the path's hop count
// alongside, so the merge, threshold and acceptance checks never touch
// the arena. Entries are pointer-free, keeping every per-node table
// outside the garbage collector's write barriers. In wide mode row
// holds the entry's membership bitset handle (see rowArena); narrow
// tables leave it zero and use the pnode's inline nodeSet instead.
// (Carrying the membership bitset in the entry was measured and lost:
// 12-byte entries keep the saturated tables and merge traffic almost
// 3x denser than 32-byte ones, which outweighs the arena loads.)
type entry struct {
	idx  int32
	hops int32
	row  int32
}

// bfsNode is one slot of the per-extension BFS queue. Transit nodes —
// reached only to search deeper, not (yet) accepted by any table — are
// kept unmaterialized: idx is -1 and the chain back to the root lives
// in par links (queue indexes), so hopeless subtrees never touch the
// arena. The first accepted or delivered descendant materializes the
// chain on demand (see scratch.materialize). A slot's path membership
// lives in its materialized pnode — the accept path reads it straight
// from the arena slot materialize just wrote, still cache-hot — so
// carrying it in the queue would only double the footprint of the
// dominant share of slots that never get accepted.
type bfsNode struct {
	idx  int32 // arena handle, -1 while unmaterialized
	par  int32 // queue index of the parent slot, -1 for the root
	node int32
	hops int32
}

// scratch is the mutable per-Enumerate state. Everything the dynamic
// program touches per call lives here, so a warmed-up scratch makes
// Enumerate allocate only its result.
type scratch struct {
	visited   []int // BFS epoch marks
	epoch     int
	hopCounts []int32 // counting-sort buckets, len NumNodes+1
	mergeBuf  []entry
	table     [][]entry // per-node k-shortest tables (rows reused across calls)
	cands     [][]entry // per-node candidate lists for the current step
	thresh    []int32   // per-node extension thresholds
	caps      []int32   // per-member table capacities (threshold scratch)
	bqueue    []bfsNode // BFS queue (lazily materialized chains)
	matStack  []int32   // queue indexes pending materialization
	sortBuf   []entry   // counting-sort output buffer
	arrivals  []int32   // arena handles of delivered paths, arrival order
	arena     pathArena // slab allocator for this call's path tree

	// Exact acceptance bounds. bound[i] is the hop count a candidate at
	// node i must beat to survive this step's merge: the width-th
	// smallest hop count among i's table entries plus the step's
	// accepted candidates so far (boundInf while fewer than width
	// exist). Between steps it equals the static table cap, maintained
	// at every table mutation; within a step noteAccept tightens it as
	// candidates are accepted, so the BFS rejects exactly the
	// candidates the merge would drop — one array load per scan.
	// below/hist back the tightening: hist[i*histCap+h] counts tracked
	// elements at hop h, below[i] counts tracked elements strictly
	// under bound[i] (-1 until the node's first accept lazily bins its
	// existing table; dirty lists the nodes to clean at step end).
	bound []int32
	below []int32
	hist  []int32
	dirty []int32

	// cancel is the run's cooperative cancellation token (nil when the
	// caller did not pass one); canceled records that a checkpoint saw
	// it fire, making step report "finished" so the loops unwind. The
	// scratch is then discarded result-free — prepare resets both.
	cancel   *engine.Cancel
	canceled bool

	// stamp[i] is the last step whose merge, prune or seed changed
	// node i's table. Together with the graph's stable-component
	// marks it drives the static-component skip: a component whose
	// adjacency is unchanged from the previous step and none of whose
	// members' tables changed during it would reproduce exactly the
	// candidate set it produced then — all of which were dropped, or
	// the tables would have changed — so the whole component is
	// skipped without extending a single path.
	stamp []int32

	// Wide mode only: membership bitset rows plus the delivered-node
	// bitset for pruning. Every entry owns its row exclusively; rows
	// are freed the moment the merge or prune drops the entry.
	// deliveredIdx lists the indexes of deliveredBits' nonzero words:
	// the destination's contact set is a handful of nodes, so the
	// per-entry prune sweep touches one or two words instead of the
	// full ceil(n/64)-word row.
	rows          rowArena
	deliveredBits []uint64
	deliveredIdx  []int32
}

// materialize returns the arena handle of BFS queue slot qi, allocating
// the unmaterialized suffix of its chain (parent-first) on demand. Every
// allocated slot is recorded back into the queue, so a chain shared by
// several accepted descendants is materialized once.
func (sc *scratch) materialize(qi int32, s int) int32 {
	if sc.bqueue[qi].idx >= 0 {
		return sc.bqueue[qi].idx
	}
	stack := sc.matStack[:0]
	for sc.bqueue[qi].idx < 0 {
		stack = append(stack, qi)
		qi = sc.bqueue[qi].par
	}
	idx := sc.bqueue[qi].idx
	for i := len(stack) - 1; i >= 0; i-- {
		b := &sc.bqueue[stack[i]]
		pn := sc.arena.at(idx)
		idx = sc.arena.extend(idx, pn.members, pn.hops, trace.NodeID(b.node), s)
		b.idx = idx
	}
	sc.matStack = stack[:0]
	return idx
}

func (e *Enumerator) getScratch() *scratch {
	if sc, ok := e.pool.Get().(*scratch); ok {
		return sc
	}
	n := e.tr.NumNodes
	sc := &scratch{
		visited:   make([]int, n),
		hopCounts: make([]int32, n+1),
		table:     make([][]entry, n),
		cands:     make([][]entry, n),
		thresh:    make([]int32, n),
		bound:     make([]int32, n),
		below:     make([]int32, n),
		hist:      make([]int32, n*int(histCap)),
		stamp:     make([]int32, n),
	}
	for i := range sc.bound {
		sc.bound[i] = boundInf
		sc.below[i] = -1
		sc.stamp[i] = -2
	}
	if e.wide {
		words := int32((n + 63) / 64)
		sc.rows.words = words
		sc.deliveredBits = make([]uint64, words)
	}
	return sc
}

// prepare resets the scratch for a fresh enumeration. The arena rewind
// is safe here because every path that escaped the previous call was
// materialized out of the arena before the scratch returned to the
// pool.
func (sc *scratch) prepare() {
	for i := range sc.table {
		sc.table[i] = sc.table[i][:0]
		sc.cands[i] = sc.cands[i][:0]
		sc.bound[i] = boundInf
		sc.stamp[i] = -2
	}
	// A MaxArrivals stop (or a cancellation checkpoint) can abandon a
	// step mid-phase; clean the histogram state its accepts left behind.
	sc.clearHists()
	sc.canceled = false
	sc.arrivals = sc.arrivals[:0]
	sc.arena.reset()
	sc.rows.reset()
}

// clearHists resets the per-step acceptance histograms of every node
// binned since the last clear.
func (sc *scratch) clearHists() {
	for _, d := range sc.dirty {
		clear(sc.hist[d*histCap : (d+1)*histCap])
		sc.below[d] = -1
	}
	sc.dirty = sc.dirty[:0]
}

// NewEnumerator prepares path enumeration over tr.
func NewEnumerator(tr *trace.Trace, opt Options) (*Enumerator, error) {
	opt, err := opt.Normalized()
	if err != nil {
		return nil, err
	}
	g, err := stgraph.New(tr, opt.Delta)
	if err != nil {
		return nil, err
	}
	return &Enumerator{tr: tr, g: g, opt: opt, wide: tr.NumNodes > maxNodes}, nil
}

// NewEnumeratorWithGraph prepares path enumeration over tr reusing a
// space-time graph built earlier (by NewSpaceTimeGraph or another
// enumerator's Graph method). The graph index is the expensive part of
// enumerator construction and is immutable, so callers that vary only
// K, TableWidth or MaxArrivals — e.g. a serving layer answering
// per-request budgets — can share one graph across many enumerators.
// The graph must have been built from tr; a non-zero opt.Delta must
// match the graph's step (zero adopts it).
func NewEnumeratorWithGraph(tr *trace.Trace, g *stgraph.Graph, opt Options) (*Enumerator, error) {
	if g == nil {
		return nil, fmt.Errorf("pathenum: nil graph")
	}
	if g.NumNodes != tr.NumNodes {
		return nil, fmt.Errorf("pathenum: graph built for %d nodes, trace has %d", g.NumNodes, tr.NumNodes)
	}
	if opt.Delta != 0 && opt.Delta != g.Delta {
		return nil, fmt.Errorf("pathenum: options delta %g does not match graph delta %g", opt.Delta, g.Delta)
	}
	opt.Delta = g.Delta
	opt, err := opt.Normalized()
	if err != nil {
		return nil, err
	}
	return &Enumerator{tr: tr, g: g, opt: opt, wide: tr.NumNodes > maxNodes}, nil
}

// Graph exposes the underlying space-time graph.
func (e *Enumerator) Graph() *stgraph.Graph { return e.g }

// Result collects the delivered paths of one message enumeration.
type Result struct {
	Msg   Message
	Delta float64

	// Arrivals holds every delivered valid path in arrival order
	// (non-decreasing step). Paths arriving within the same step share
	// an arrival time; their relative order is arbitrary.
	Arrivals []*Path

	// Exhausted is true when enumeration stopped because the arrival
	// budget K was met, i.e. the path explosion was fully observed.
	// False means the trace ended (or all paths were invalidated by a
	// direct source-destination encounter) first.
	Exhausted bool
}

// validateMessage checks a message against the enumerator's trace.
// Enumeration itself cannot fail, so this is the only error source of
// Enumerate and EnumerateAll.
func (e *Enumerator) validateMessage(msg Message) error {
	n := e.tr.NumNodes
	if msg.Src < 0 || int(msg.Src) >= n || msg.Dst < 0 || int(msg.Dst) >= n {
		return fmt.Errorf("pathenum: message endpoints (%d,%d) out of range [0,%d)", msg.Src, msg.Dst, n)
	}
	if msg.Src == msg.Dst {
		return fmt.Errorf("pathenum: source equals destination (%d)", msg.Src)
	}
	if msg.Start < 0 || msg.Start >= e.tr.Horizon {
		return fmt.Errorf("pathenum: start time %g outside [0,%g)", msg.Start, e.tr.Horizon)
	}
	return nil
}

// Enumerate runs the Figure 3 dynamic program for one message.
func (e *Enumerator) Enumerate(msg Message) (*Result, error) {
	return e.enumerate(msg, nil)
}

// EnumerateCancel is Enumerate with a cooperative cancellation token:
// the dynamic program polls cc at every step boundary (and, within a
// step, every few hundred extension roots) and abandons with a
// *engine.CanceledError once it fires. A nil cc costs one branch per
// checkpoint, and a token that never fires changes nothing: the result
// is byte-identical to a plain Enumerate.
func (e *Enumerator) EnumerateCancel(msg Message, cc *engine.Cancel) (*Result, error) {
	return e.enumerate(msg, cc)
}

func (e *Enumerator) enumerate(msg Message, cc *engine.Cancel) (*Result, error) {
	if err := e.validateMessage(msg); err != nil {
		return nil, err
	}
	sc := e.getScratch()
	sc.cancel = cc
	res := e.run(sc, msg)
	if sc.canceled {
		sc.cancel = nil
		e.pool.Put(sc)
		return nil, cc.FiredErr()
	}
	// The arrival chains live in the scratch's arena as index-linked
	// pnodes; materialize them into one compact slab of public Path
	// values before the scratch (and arena) goes back to the pool.
	materializeArrivals(sc, res)
	sc.cancel = nil
	e.pool.Put(sc)
	return res, nil
}

// run executes the dynamic program with scratch sc. Arrivals are
// recorded as arena handles in sc.arrivals; the caller materializes
// them into res before releasing sc.
func (e *Enumerator) run(sc *scratch, msg Message) *Result {
	sc.prepare()
	res := &Result{Msg: msg, Delta: e.g.Delta}
	s0 := e.g.StepOf(msg.Start)
	e.seed(sc, msg.Src, s0)
	for s := s0; s < e.g.Steps; s++ {
		if e.step(sc, s, msg.Dst, res) {
			return res
		}
	}
	return res
}

// seed installs the zero-hop source tuple into the table.
func (e *Enumerator) seed(sc *scratch, src trace.NodeID, s0 int) {
	row := int32(0)
	if e.wide {
		row = sc.rows.alloc()
		sc.rows.set(row, src)
	}
	sc.table[src] = append(sc.table[src], entry{idx: sc.arena.source(src, s0), row: row})
	sc.bound[src] = boundOf(sc.table[src], e.opt.TableWidth)
	sc.stamp[src] = int32(s0) - 1
}

// step runs one step of the dynamic program. A negative dst runs the
// step destination-free — no arrivals, thresholds, pruning or stop
// rules involve the destination, exactly as if it had no contacts —
// which is how batch enumeration advances the prefix shared by a
// (src, start) group before each destination becomes active. It
// reports whether enumeration is finished (arrival budget met or every
// path invalidated).
func (e *Enumerator) step(sc *scratch, s int, dst trace.NodeID, res *Result) bool {
	// Cancellation checkpoint, once per step: report "finished" so the
	// caller's loop unwinds; sc.canceled tells it no result exists.
	// Mid-phase abandonment is safe by the same argument as the
	// MaxArrivals stop — prepare/clearHists reset everything a partial
	// step leaves behind.
	if sc.canceled || sc.cancel.Stopped() {
		sc.canceled = true
		return true
	}
	n := e.tr.NumNodes
	v := e.g.View(s)
	table, cands, thresh := sc.table, sc.cands, sc.thresh

	// Compute, for each node with contacts, the largest resident
	// hop count that could still contribute this step: a path p at
	// node i can only matter if some reachable node v could accept
	// an extension (its table has room or holds a longer path) at
	// hop count p.Hops + dist(i, v), or if the destination is in
	// i's component. Everything above the threshold is skipped
	// wholesale — this keeps the saturated steady state (every
	// table full of short paths) cheap between explosion onset and
	// trace end.
	e.computeThresholds(sc, v, dst, s, thresh)

	// The destination component's roots always run (delivery bypasses
	// tables), but once a root has delivered, its BFS is only worth
	// expanding where a descendant could still be accepted. dstMax —
	// the loosest acceptance bound in the component at step start —
	// prunes that expansion exactly: a child whose children would all
	// arrive at or beyond every member's bound cannot seed an accept.
	dstComp := -1
	dstMax := int32(0)
	if dst >= 0 {
		dstComp = v.ComponentOf(dst)
		if dstComp >= 0 {
			for _, x := range v.Members(dstComp) {
				if b := sc.bound[x]; b > dstMax {
					dstMax = b
				}
			}
		}
	}

	// Phase 1: extend every resident path through the zero-weight
	// closure of this step, collecting candidates and arrivals. Each
	// node's threshold is recomputed just in time from the live
	// acceptance bounds, so nodes processed later in the sweep skip
	// roots whose candidates the bounds — tightened by earlier
	// accepts — would reject anyway.
	for i := 0; i < n; i++ {
		// Amortized mid-step checkpoint: dense steps on city-scale
		// traces take milliseconds, so polling every few hundred
		// extension roots bounds the post-cancel overrun without
		// measurable cost on the hot path.
		if i&511 == 511 && sc.cancel.Stopped() {
			sc.canceled = true
			return true
		}
		paths := table[i]
		if len(paths) == 0 || thresh[i] == skipAll {
			continue
		}
		bound := thresh[i]
		mustDeliver := bound == extendAll && dstComp >= 0 && v.ComponentOf(trace.NodeID(i)) == dstComp
		if bound != extendAll {
			bound = e.jitThresh(sc, v, i)
			thresh[i] = bound
		}
		for _, p := range paths {
			// Tables are sorted by hop count: once one resident
			// path is bounded out, the rest are too.
			if p.hops >= bound {
				break
			}
			e.extendBFS(sc, v, dst, p, trace.NodeID(i), s, cands, thresh, mustDeliver, dstMax)
			if len(sc.arrivals) >= e.opt.MaxArrivals {
				res.Exhausted = true
				return true
			}
		}
	}

	// Phase 2: merge candidates into the per-node tables, keeping
	// the TableWidth shortest (by hop count; existing paths win
	// ties, preserving shorter durations), and restore each merged
	// node's acceptance bound to its new static table cap.
	width := e.opt.TableWidth
	for i := 0; i < n; i++ {
		if len(cands[i]) > 0 {
			table[i] = e.mergeShortest(sc, table[i], cands[i])
			cands[i] = cands[i][:0]
			sc.bound[i] = boundOf(table[i], width)
			sc.stamp[i] = int32(s)
		}
	}
	sc.clearHists()

	if dst < 0 {
		return false
	}

	// Phase 3: first preference. Every node in direct contact with
	// the destination this step has just delivered; any table path
	// containing such a node could only deliver strictly later and
	// is invalid (§4.1).
	if dn := v.Neighbors(dst); len(dn) > 0 {
		var delivered nodeSet
		if e.wide {
			clear(sc.deliveredBits)
			for _, d := range dn {
				sc.deliveredBits[d>>6] |= 1 << (uint(d) & 63)
			}
			sc.deliveredIdx = sc.deliveredIdx[:0]
			for w, bits := range sc.deliveredBits {
				if bits != 0 {
					sc.deliveredIdx = append(sc.deliveredIdx, int32(w))
				}
			}
		} else {
			for _, d := range dn {
				delivered = delivered.with(d)
			}
		}
		alive := false
		for i := 0; i < n; i++ {
			before := len(table[i])
			if e.wide {
				table[i] = pruneRows(&sc.rows, table[i], sc.deliveredBits, sc.deliveredIdx)
			} else {
				table[i] = pruneContaining(&sc.arena, table[i], delivered)
			}
			if len(table[i]) != before {
				sc.bound[i] = boundOf(table[i], width)
				sc.stamp[i] = int32(s)
			}
			alive = alive || len(table[i]) > 0
		}
		if !alive {
			// Every surviving path contained a node that met the
			// destination (e.g. the source itself); no further
			// valid path can exist.
			return true
		}
	}

	if len(sc.arrivals) >= e.opt.K {
		res.Exhausted = true
		return true
	}
	return false
}

// materializeArrivals converts the arrival handles into public Path
// chains, copied out of the arena into one slab owned by the result.
// The copy unshares common prefixes but preserves every observable
// property (Nodes, Steps, Hops, String); in exchange the arena — which
// also holds the millions of intermediate table paths — is reusable
// the moment the call returns.
func materializeArrivals(sc *scratch, res *Result) {
	if len(sc.arrivals) == 0 {
		return
	}
	a := &sc.arena
	total := 0
	for _, idx := range sc.arrivals {
		total += int(a.at(idx).hops) + 1
	}
	slab := make([]Path, total)
	res.Arrivals = make([]*Path, len(sc.arrivals))
	base := 0
	for i, idx := range sc.arrivals {
		h := int(a.at(idx).hops)
		j := base + h
		for cur := idx; cur >= 0; {
			pn := a.at(cur)
			slab[j] = Path{
				Node:    trace.NodeID(pn.node),
				Step:    int(pn.step),
				Hops:    int(pn.hops),
				members: pn.members,
			}
			cur = pn.parent
			j--
		}
		for k := base + 1; k <= base+h; k++ {
			slab[k].parent = &slab[k-1]
		}
		res.Arrivals[i] = &slab[base+h]
		base += h + 1
	}
}

// Sentinel thresholds: skipAll marks nodes whose paths cannot
// contribute at all this step (no contacts); extendAll marks nodes in
// the destination's component, whose paths always extend (arrivals).
// Both compare correctly under the uniform `hops < thresh` test, since
// hop counts are bounded far below boundInf.
const (
	skipAll   = int32(-1) << 30
	extendAll = boundInf

	// boundInf is the acceptance bound of a table with room: any
	// candidate is accepted.
	boundInf = int32(1) << 30

	// histCap bounds the hop counts the acceptance histograms track.
	// Candidates at or above it skip the bookkeeping entirely, leaving
	// the bound looser than exact — a safe over-accept the merge
	// corrects — but paths that long are virtually nonexistent (hop
	// counts are capped by the loop-freedom invariant and in practice
	// by component diameters).
	histCap = int32(128)
)

// boundOf returns the static acceptance bound of a table: the hop
// count of its worst entry when full, boundInf while it has room.
func boundOf(t []entry, width int) int32 {
	if len(t) < width {
		return boundInf
	}
	return t[len(t)-1].hops
}

// binExisting initializes node nb's acceptance histogram from its
// existing table plus the candidates already accepted this step (the
// current one included — noteAccept appends to cands first). Entries at
// or beyond histCap stay untracked: below then undercounts, which only
// delays tightening (over-accept, never over-reject).
func (sc *scratch) binExisting(nb trace.NodeID) {
	base := int32(nb) * histCap
	b := sc.bound[nb]
	cnt := int32(0)
	for _, en := range sc.table[nb] {
		if en.hops < histCap {
			sc.hist[base+en.hops]++
			if en.hops < b {
				cnt++
			}
		}
	}
	for _, en := range sc.cands[nb] {
		if en.hops < histCap {
			sc.hist[base+en.hops]++
			if en.hops < b {
				cnt++
			}
		}
	}
	sc.below[nb] = cnt
	sc.dirty = append(sc.dirty, int32(nb))
}

// noteAccept records an accepted candidate at node nb and tightens the
// node's acceptance bound when the count of tracked elements below it
// reaches the table width: the bound walks down to the largest
// occupied histogram bucket, which is exactly the new width-th
// smallest hop count. While the table and the step's accepts together
// hold fewer than width elements no tightening is possible (the
// width-th smallest does not exist, the bound stays boundInf), so the
// histogram stays cold until the count first crosses width — which
// skips the binning entirely for the long pre-saturation phase.
func (sc *scratch) noteAccept(nb trace.NodeID, h, width int32) {
	if sc.below[nb] < 0 {
		if int32(len(sc.table[nb])+len(sc.cands[nb])) < width {
			return
		}
		sc.binExisting(nb)
	} else {
		if h >= histCap {
			return
		}
		base := int32(nb) * histCap
		sc.hist[base+h]++
		sc.below[nb]++
	}
	if sc.below[nb] >= width {
		base := int32(nb) * histCap
		b := sc.bound[nb]
		if b > histCap {
			b = histCap
		}
		for b--; sc.hist[base+b] == 0; b-- {
		}
		sc.below[nb] -= sc.hist[base+b]
		sc.bound[nb] = b
	}
}

// computeThresholds fills thresh[i] with the strict upper bound on the
// hop count of resident paths at node i worth extending at step s: a
// path p contributes only if some node v in i's component could accept
// a table insertion at p.Hops + dist(i, v) hops. The per-node caps are
// read straight from the maintained acceptance bounds — at a step
// boundary bound[v] is exactly the hop count of v's worst table entry
// (boundInf when the table has room) — and the threshold is max over v
// of bound(v) − dist(i, v). Nodes in the destination's component
// always extend (deliveries bypass tables).
//
// The component member lists and pairwise hop distances come straight
// from the graph's step index — the pre-index implementation re-ran
// one BFS (with a heap-allocated depth map) per member, per step, per
// message to derive the same numbers.
func (e *Enumerator) computeThresholds(sc *scratch, v stgraph.View, dst trace.NodeID, s int, thresh []int32) {
	for i := range thresh {
		thresh[i] = skipAll
	}
	dstComp := -1
	if dst >= 0 {
		dstComp = v.ComponentOf(dst)
	}
	for c := 0; c < v.NumComponents(); c++ {
		members := v.Members(c)
		if c == dstComp {
			for _, x := range members {
				thresh[x] = extendAll
			}
			continue
		}
		// Static-component skip: if the component carried over from
		// the previous step unchanged and none of its members'
		// tables changed during that step, this step would reproduce
		// the previous step's candidate set exactly — and every one
		// of those candidates was dropped (a kept candidate would
		// have stamped its table). Leaving thresh at skipAll elides
		// the whole component: no roots, no scans, no accepts.
		if v.SameAsPrev(c) {
			stable := true
			for _, x := range members {
				if sc.stamp[x] >= int32(s)-1 {
					stable = false
					break
				}
			}
			if stable {
				continue
			}
		}
		// cap per member, and how many members still have table room.
		caps := sc.caps[:0]
		room := 0
		for _, x := range members {
			b := sc.bound[x]
			caps = append(caps, b)
			if b >= boundInf {
				room++
			}
		}
		sc.caps = caps
		m := len(members)
		for j, x := range members {
			othersRoom := room
			if caps[j] >= boundInf {
				othersRoom--
			}
			if othersRoom > 0 {
				// Some other member's table has room: any extension
				// depth can still be accepted there.
				thresh[x] = extendAll
				continue
			}
			best := skipAll
			for k := 0; k < m; k++ {
				if k == j {
					continue
				}
				if b := caps[k] - int32(v.Dist(c, j, k)); b > best {
					best = b
				}
			}
			thresh[x] = best
		}
	}
}

// jitThresh recomputes node i's extension threshold from the current
// (step-tightened) acceptance bounds, just before its resident paths
// root their BFS runs. Bounds only tighten during a step, so the
// returned threshold is never looser than the step-start value and
// never tighter than what the final tables justify: a root it skips
// could only have produced candidates every acceptance test would
// reject anyway. Called only for nodes with contacts outside the
// destination's component (thresh neither skipAll nor extendAll).
func (e *Enumerator) jitThresh(sc *scratch, v stgraph.View, i int) int32 {
	c := v.ComponentOf(trace.NodeID(i))
	members := v.Members(c)
	j := v.MemberIndex(trace.NodeID(i))
	best := skipAll
	for k, x := range members {
		if k == j {
			continue
		}
		b := sc.bound[x]
		if b >= boundInf {
			return extendAll
		}
		if t := b - int32(v.Dist(c, j, k)); t > best {
			best = t
		}
	}
	return best
}

// extendBFS extends path p (resident at p's final node) through the
// zero-weight closure at step s. Newly reached nodes become candidate
// table entries; reaching the destination records an arrival. Transit
// nodes — reached only to search deeper — stay unmaterialized bfsNode
// slots; an arena chain is allocated only when a table accepts a child
// or a delivery happens, so the (dominant) hopeless share of the
// frontier costs no arena traffic at all. The queue is the scratch's
// ring buffer: a head index walks it in place instead of reslicing the
// front away (which would leak capacity and force regrowth).
func (e *Enumerator) extendBFS(sc *scratch, v stgraph.View, dst trace.NodeID, p entry, rootNode trace.NodeID, s int, cands [][]entry, thresh []int32, mustDeliver bool, dstMax int32) {
	sc.epoch++
	epoch := sc.epoch
	a := &sc.arena
	wide := e.wide
	width := int32(e.opt.TableWidth)
	bound := sc.bound
	var rootMembers nodeSet
	var rootRow []uint64
	rootRowH := int32(0)
	if wide {
		// The root is a table entry; caching its membership bitset row
		// makes the per-neighbor check below one word-indexed bit
		// test, exactly like the narrow bitset path.
		rootRowH = p.row
		rootRow = sc.rows.row(rootRowH)
	} else {
		rootMembers = a.at(p.idx).members
	}
	sc.visited[rootNode] = epoch
	sc.bqueue = append(sc.bqueue[:0], bfsNode{idx: p.idx, par: -1, node: int32(rootNode), hops: p.hops})
	delivered := false
	for head := 0; head < len(sc.bqueue); head++ {
		q := sc.bqueue[head]
		for _, nb := range v.Neighbors(trace.NodeID(q.node)) {
			if nb == dst {
				if !delivered {
					delivered = true
					qi := sc.materialize(int32(head), s)
					sc.arrivals = append(sc.arrivals, a.extend(qi, a.at(qi).members, q.hops, dst, s))
				}
				continue
			}
			if sc.visited[nb] == epoch {
				continue
			}
			if wide {
				if rootRow[nb>>6]&(1<<(uint(nb)&63)) != 0 {
					continue
				}
			} else if rootMembers.has(nb) {
				continue
			}
			sc.visited[nb] = epoch
			childHops := q.hops + 1
			// bound[nb] already accounts for this step's earlier
			// accepts, so the test is exact: a candidate at or above
			// it is precisely one the merge would drop.
			accept := childHops < bound[nb]
			deeper := childHops < thresh[nb]
			if !accept && !deeper {
				continue
			}
			childIdx := int32(-1)
			if accept {
				qi := sc.materialize(int32(head), s)
				childIdx = a.extend(qi, a.at(qi).members, q.hops, nb, s)
				row := int32(0)
				if wide {
					// The candidate owns its row from birth: the
					// root's row (hot in cache) copied, with the child
					// and the step's branch nodes — read off the hot
					// BFS queue chain, never the arena — OR-ed in. The
					// chain ends at the root slot, whose bit the copy
					// already holds; re-setting it is harmless.
					row = sc.rows.allocCopy(rootRowH)
					rw := sc.rows.row(row)
					rw[nb>>6] |= 1 << (uint(nb) & 63)
					for slot := int32(head); slot >= 0; slot = sc.bqueue[slot].par {
						nd := sc.bqueue[slot].node
						rw[nd>>6] |= 1 << (uint(nd) & 63)
					}
				}
				cands[nb] = append(cands[nb], entry{idx: childIdx, hops: childHops, row: row})
				sc.noteAccept(nb, childHops, width)
			}
			if deeper {
				// Once this root has delivered, the only reason to go
				// deeper is a future accept; a grandchild at any node v
				// would carry childHops+1 >= dstMax >= bound[v] hops and
				// be rejected, so the subtree is pruned exactly.
				if mustDeliver && delivered && childHops+1 >= dstMax {
					continue
				}
				sc.bqueue = append(sc.bqueue, bfsNode{idx: childIdx, par: int32(head), node: int32(nb), hops: childHops})
			}
		}
	}
	sc.bqueue = sc.bqueue[:0]
}

// mergeShortest merges existing (sorted by hops) with cands (creation
// order) keeping the width shortest by hop count; existing paths win
// ties. Existing entries at or below the first candidate's hop count
// precede every candidate in the merged order, so that prefix keeps
// its slots untouched and only the overlapping tail runs through the
// reused scratch buffer — in the saturated steady state candidates
// land near the table's end and the copy shrinks to a few entries. In
// wide mode the rows of dropped entries — a suffix of each input,
// since both are consumed in order — are recycled immediately: every
// entry owns its row exclusively.
func (e *Enumerator) mergeShortest(sc *scratch, existing, cands []entry) []entry {
	width := e.opt.TableWidth
	sc.sortByHops(cands)
	p := len(existing)
	c0 := cands[0].hops
	for p > 0 && existing[p-1].hops > c0 {
		p--
	}
	buf := sc.mergeBuf[:0]
	i, j := p, 0
	for len(buf) < width-p && (i < len(existing) || j < len(cands)) {
		if j >= len(cands) || (i < len(existing) && existing[i].hops <= cands[j].hops) {
			buf = append(buf, existing[i])
			i++
		} else {
			buf = append(buf, cands[j])
			j++
		}
	}
	sc.mergeBuf = buf
	if e.wide {
		for k := i; k < len(existing); k++ {
			sc.rows.freeRow(existing[k].row)
		}
		for k := j; k < len(cands); k++ {
			sc.rows.freeRow(cands[k].row)
		}
	}
	existing = append(existing[:p], buf...)
	return existing
}

// sortByHops stable-sorts a candidate list by hop count. Most lists
// are a handful of entries (one per resident path that reached the
// node this step), where insertion sort wins; wide-table steps can
// queue thousands of candidates per node, which fall through to a
// stable counting sort — hop counts are bounded by the path length,
// which the loop-freedom invariant caps at the population size.
func (sc *scratch) sortByHops(paths []entry) {
	if len(paths) <= 24 {
		for i := 1; i < len(paths); i++ {
			p := paths[i]
			j := i - 1
			for j >= 0 && paths[j].hops > p.hops {
				paths[j+1] = paths[j]
				j--
			}
			paths[j+1] = p
		}
		return
	}
	pos := sc.hopCounts // zeroed below after use; hops < len(pos)
	maxHop := int32(0)
	for _, p := range paths {
		pos[p.hops]++
		if p.hops > maxHop {
			maxHop = p.hops
		}
	}
	pos = pos[:maxHop+1] // bound bucket work by the actual hop range
	sum := int32(0)
	for h := range pos {
		pos[h], sum = sum, sum+pos[h]
	}
	if cap(sc.sortBuf) < len(paths) {
		sc.sortBuf = make([]entry, len(paths))
	}
	buf := sc.sortBuf[:len(paths)]
	for _, p := range paths {
		buf[pos[p.hops]] = p
		pos[p.hops]++
	}
	copy(paths, buf)
	clear(pos)
}

// pruneContaining removes paths intersecting the delivered node set,
// in place.
func pruneContaining(a *pathArena, paths []entry, delivered nodeSet) []entry {
	out := paths[:0]
	for _, p := range paths {
		if !a.at(p.idx).members.intersects(delivered) {
			out = append(out, p)
		}
	}
	return out
}

// pruneRows is pruneContaining for wide populations: each entry's
// membership bitset row is AND-tested against the delivered bitset's
// nonzero words only (their indexes in idx), and pruned entries
// recycle their rows.
func pruneRows(rows *rowArena, paths []entry, delivered []uint64, idx []int32) []entry {
	out := paths[:0]
scan:
	for _, p := range paths {
		row := rows.row(p.row)
		for _, w := range idx {
			if row[w]&delivered[w] != 0 {
				rows.freeRow(p.row)
				continue scan
			}
		}
		out = append(out, p)
	}
	return out
}

// ArrivalTime returns the delivery time of a path produced by
// Enumerate: the end of the step in which it reached the destination.
func (r *Result) ArrivalTime(p *Path) float64 {
	return float64(p.Step+1) * r.Delta
}

// NumPaths returns the number of delivered paths observed.
func (r *Result) NumPaths() int { return len(r.Arrivals) }

// Tn returns the duration from message creation to the arrival of the
// n-th path (1-based), and whether at least n paths arrived. T(1) is
// the paper's optimal path duration.
func (r *Result) Tn(n int) (float64, bool) {
	if n < 1 || n > len(r.Arrivals) {
		return 0, false
	}
	return r.ArrivalTime(r.Arrivals[n-1]) - r.Msg.Start, true
}

// T1 returns the optimal path duration, if any path was found.
func (r *Result) T1() (float64, bool) { return r.Tn(1) }

// TimeToExplosion returns TE = Tn − T1 for the given n (the paper uses
// n = 2000), and whether at least n paths arrived.
func (r *Result) TimeToExplosion(n int) (float64, bool) {
	tn, ok := r.Tn(n)
	if !ok {
		return 0, false
	}
	t1, _ := r.T1()
	return tn - t1, true
}

// StepCount is the number of paths arriving during one step.
type StepCount struct {
	Step  int
	Time  float64 // step end (the arrival time of its paths)
	Count int
}

// ArrivalCounts aggregates arrivals per step, in step order.
func (r *Result) ArrivalCounts() []StepCount {
	var out []StepCount
	for _, p := range r.Arrivals {
		if len(out) > 0 && out[len(out)-1].Step == p.Step {
			out[len(out)-1].Count++
			continue
		}
		out = append(out, StepCount{Step: p.Step, Time: r.ArrivalTime(p), Count: 1})
	}
	return out
}
