package pathenum

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/stgraph"
	"repro/internal/trace"
)

// Message identifies one forwarding problem: deliver from Src to Dst a
// message created at time Start (seconds from trace origin).
type Message struct {
	Src, Dst trace.NodeID
	Start    float64
}

// Options tunes the enumerator.
type Options struct {
	// Delta is the space-time discretization step in seconds.
	// Zero means stgraph.DefaultDelta (the paper's 10 s).
	Delta float64

	// K is the arrival budget: enumeration stops at the end of the
	// first step by which K paths in total have reached the
	// destination. Zero means the paper's 2000.
	K int

	// TableWidth caps the number of shortest valid paths kept per
	// node. Zero means K, matching the paper (which uses the same k
	// for the table and the stop rule). Narrower tables trade
	// completeness of the count for speed (ablation AB2).
	TableWidth int

	// MaxArrivals hard-caps the number of recorded arrivals; once hit,
	// enumeration stops immediately (even mid-step). This bounds the
	// overshoot in the final step, where a dense contact component can
	// deliver every table path at once. Zero means 4·K, which is
	// comfortably beyond the paper's T2000 measurement point.
	MaxArrivals int

	// Workers caps the number of goroutines EnumerateAll uses to
	// enumerate a message batch concurrently. Zero means
	// runtime.GOMAXPROCS(0); 1 forces a serial batch. Each message is
	// enumerated independently over the shared immutable space-time
	// graph, so results are identical for every worker count.
	Workers int
}

// Normalized returns the options with every zero field replaced by
// its documented default (Δ = 10 s, K = 2000, TableWidth = K,
// MaxArrivals = 4·K; Workers stays as given), or an error if any
// field is out of range. Two option values describing the same
// enumeration normalize identically, so callers that key caches on
// options — e.g. the serving layer — must key on the normalized form
// rather than re-deriving the defaults.
func (o Options) Normalized() (Options, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}

func (o Options) withDefaults() Options {
	if o.Delta == 0 {
		o.Delta = stgraph.DefaultDelta
	}
	if o.K == 0 {
		o.K = 2000
	}
	if o.TableWidth == 0 {
		o.TableWidth = o.K
	}
	if o.MaxArrivals == 0 {
		o.MaxArrivals = 4 * o.K
	}
	return o
}

func (o Options) validate() error {
	if o.Delta < 0 {
		return fmt.Errorf("pathenum: negative delta %g", o.Delta)
	}
	if o.K < 0 || o.TableWidth < 0 || o.MaxArrivals < 0 {
		return fmt.Errorf("pathenum: negative K, TableWidth or MaxArrivals")
	}
	return nil
}

// ErrTooManyNodes is kept for API compatibility; since populations
// beyond the bitset capacity run in wide mode it is no longer
// returned.
var ErrTooManyNodes = errors.New("pathenum: trace exceeds 128 nodes")

// Enumerator enumerates valid paths for messages over one trace. The
// indexed space-time graph — CSR adjacency plus per-step contact
// components and intra-component hop distances — is built once and
// shared across messages, so the per-message dynamic program reads
// precomputed indexes instead of re-deriving per-step structure. An
// Enumerator is safe for concurrent use: every Enumerate call draws
// its mutable scratch (tables, queues, and a path arena) from an
// internal pool, so goroutines may share one Enumerator (or call
// EnumerateAll, which fans a batch out itself).
type Enumerator struct {
	tr  *trace.Trace
	g   *stgraph.Graph
	opt Options

	// wide marks populations beyond the nodeSet bitset capacity
	// (city-scale traces): path membership — loop avoidance roots and
	// first-preference pruning — is then resolved by walking arena
	// parent chains against epoch-marked scratch instead of reading
	// per-path bitsets. Both modes run the identical dynamic program.
	wide bool

	// Per-call scratch, pooled so sequential calls reuse their
	// allocations and concurrent calls never share state.
	pool sync.Pool
}

// entry is one table or queue slot: an arena handle with the path's
// hop count alongside, so the merge, threshold and acceptance checks
// never touch the arena. Entries are pointer-free, keeping every
// per-node table outside the garbage collector's write barriers.
type entry struct {
	idx  int32
	hops int32
}

// scratch is the mutable per-Enumerate state. Everything the dynamic
// program touches per call lives here, so a warmed-up scratch makes
// Enumerate allocate only its result.
type scratch struct {
	visited   []int // BFS epoch marks
	epoch     int
	mark      []int // wide-mode membership marks (root sets, delivered sets)
	markEpoch int
	hopCounts []int32 // counting-sort buckets, len NumNodes+1
	mergeBuf  []entry
	table     [][]entry // per-node k-shortest tables (rows reused across calls)
	cands     [][]entry // per-node candidate lists for the current step
	thresh    []int     // per-node extension thresholds
	caps      []int     // per-member table capacities (threshold scratch)
	queue     []entry   // BFS ring buffer
	sortBuf   []entry   // counting-sort output buffer
	arrivals  []int32   // arena handles of delivered paths, arrival order
	arena     pathArena // slab allocator for this call's path tree
}

func (e *Enumerator) getScratch() *scratch {
	if sc, ok := e.pool.Get().(*scratch); ok {
		return sc
	}
	n := e.tr.NumNodes
	return &scratch{
		visited:   make([]int, n),
		mark:      make([]int, n),
		hopCounts: make([]int32, n+1),
		table:     make([][]entry, n),
		cands:     make([][]entry, n),
		thresh:    make([]int, n),
	}
}

// prepare resets the scratch for a fresh enumeration. The arena rewind
// is safe here because every path that escaped the previous call was
// materialized out of the arena before the scratch returned to the
// pool.
func (sc *scratch) prepare() {
	for i := range sc.table {
		sc.table[i] = sc.table[i][:0]
		sc.cands[i] = sc.cands[i][:0]
	}
	sc.arrivals = sc.arrivals[:0]
	sc.arena.reset()
}

// NewEnumerator prepares path enumeration over tr.
func NewEnumerator(tr *trace.Trace, opt Options) (*Enumerator, error) {
	opt, err := opt.Normalized()
	if err != nil {
		return nil, err
	}
	g, err := stgraph.New(tr, opt.Delta)
	if err != nil {
		return nil, err
	}
	return &Enumerator{tr: tr, g: g, opt: opt, wide: tr.NumNodes > maxNodes}, nil
}

// NewEnumeratorWithGraph prepares path enumeration over tr reusing a
// space-time graph built earlier (by NewSpaceTimeGraph or another
// enumerator's Graph method). The graph index is the expensive part of
// enumerator construction and is immutable, so callers that vary only
// K, TableWidth or MaxArrivals — e.g. a serving layer answering
// per-request budgets — can share one graph across many enumerators.
// The graph must have been built from tr; a non-zero opt.Delta must
// match the graph's step (zero adopts it).
func NewEnumeratorWithGraph(tr *trace.Trace, g *stgraph.Graph, opt Options) (*Enumerator, error) {
	if g == nil {
		return nil, fmt.Errorf("pathenum: nil graph")
	}
	if g.NumNodes != tr.NumNodes {
		return nil, fmt.Errorf("pathenum: graph built for %d nodes, trace has %d", g.NumNodes, tr.NumNodes)
	}
	if opt.Delta != 0 && opt.Delta != g.Delta {
		return nil, fmt.Errorf("pathenum: options delta %g does not match graph delta %g", opt.Delta, g.Delta)
	}
	opt.Delta = g.Delta
	opt, err := opt.Normalized()
	if err != nil {
		return nil, err
	}
	return &Enumerator{tr: tr, g: g, opt: opt, wide: tr.NumNodes > maxNodes}, nil
}

// Graph exposes the underlying space-time graph.
func (e *Enumerator) Graph() *stgraph.Graph { return e.g }

// Result collects the delivered paths of one message enumeration.
type Result struct {
	Msg   Message
	Delta float64

	// Arrivals holds every delivered valid path in arrival order
	// (non-decreasing step). Paths arriving within the same step share
	// an arrival time; their relative order is arbitrary.
	Arrivals []*Path

	// Exhausted is true when enumeration stopped because the arrival
	// budget K was met, i.e. the path explosion was fully observed.
	// False means the trace ended (or all paths were invalidated by a
	// direct source-destination encounter) first.
	Exhausted bool
}

// Enumerate runs the Figure 3 dynamic program for one message.
func (e *Enumerator) Enumerate(msg Message) (*Result, error) {
	n := e.tr.NumNodes
	if msg.Src < 0 || int(msg.Src) >= n || msg.Dst < 0 || int(msg.Dst) >= n {
		return nil, fmt.Errorf("pathenum: message endpoints (%d,%d) out of range [0,%d)", msg.Src, msg.Dst, n)
	}
	if msg.Src == msg.Dst {
		return nil, fmt.Errorf("pathenum: source equals destination (%d)", msg.Src)
	}
	if msg.Start < 0 || msg.Start >= e.tr.Horizon {
		return nil, fmt.Errorf("pathenum: start time %g outside [0,%g)", msg.Start, e.tr.Horizon)
	}

	sc := e.getScratch()
	res := e.run(sc, msg)
	// The arrival chains live in the scratch's arena as index-linked
	// pnodes; materialize them into one compact slab of public Path
	// values before the scratch (and arena) goes back to the pool.
	materializeArrivals(sc, res)
	e.pool.Put(sc)
	return res, nil
}

// run executes the dynamic program with scratch sc. Arrivals are
// recorded as arena handles in sc.arrivals; the caller materializes
// them into res before releasing sc.
func (e *Enumerator) run(sc *scratch, msg Message) *Result {
	sc.prepare()
	n := e.tr.NumNodes

	res := &Result{Msg: msg, Delta: e.g.Delta}
	table := sc.table
	s0 := e.g.StepOf(msg.Start)
	table[msg.Src] = append(table[msg.Src], entry{idx: sc.arena.source(msg.Src, s0)})

	cands := sc.cands
	thresh := sc.thresh

	for s := s0; s < e.g.Steps; s++ {
		v := e.g.View(s)
		// Compute, for each node with contacts, the largest resident
		// hop count that could still contribute this step: a path p at
		// node i can only matter if some reachable node v could accept
		// an extension (its table has room or holds a longer path) at
		// hop count p.Hops + dist(i, v), or if the destination is in
		// i's component. Everything above the threshold is skipped
		// wholesale — this keeps the saturated steady state (every
		// table full of short paths) cheap between explosion onset and
		// trace end.
		e.computeThresholds(sc, v, msg.Dst, table, thresh)

		// Phase 1: extend every resident path through the zero-weight
		// closure of this step, collecting candidates and arrivals.
		for i := 0; i < n; i++ {
			paths := table[i]
			if len(paths) == 0 || thresh[i] == skipAll {
				continue
			}
			bound := thresh[i]
			for _, p := range paths {
				// Tables are sorted by hop count: once one resident
				// path is bounded out, the rest are too.
				if int(p.hops) >= bound {
					break
				}
				e.extendBFS(sc, v, msg.Dst, p, s, table, cands, thresh)
				if len(sc.arrivals) >= e.opt.MaxArrivals {
					res.Exhausted = true
					return res
				}
			}
		}

		// Phase 2: merge candidates into the per-node tables, keeping
		// the TableWidth shortest (by hop count; existing paths win
		// ties, preserving shorter durations).
		for i := 0; i < n; i++ {
			if len(cands[i]) > 0 {
				table[i] = e.mergeShortest(sc, table[i], cands[i])
				cands[i] = cands[i][:0]
			}
		}

		// Phase 3: first preference. Every node in direct contact with
		// the destination this step has just delivered; any table path
		// containing such a node could only deliver strictly later and
		// is invalid (§4.1).
		if dn := v.Neighbors(msg.Dst); len(dn) > 0 {
			var delivered nodeSet
			if e.wide {
				sc.markEpoch++
				for _, d := range dn {
					sc.mark[d] = sc.markEpoch
				}
			} else {
				for _, d := range dn {
					delivered = delivered.with(d)
				}
			}
			alive := false
			for i := 0; i < n; i++ {
				if e.wide {
					table[i] = pruneContainingWide(&sc.arena, table[i], sc.mark, sc.markEpoch)
				} else {
					table[i] = pruneContaining(&sc.arena, table[i], delivered)
				}
				alive = alive || len(table[i]) > 0
			}
			if !alive {
				// Every surviving path contained a node that met the
				// destination (e.g. the source itself); no further
				// valid path can exist.
				return res
			}
		}

		if len(sc.arrivals) >= e.opt.K {
			res.Exhausted = true
			return res
		}
	}
	return res
}

// materializeArrivals converts the arrival handles into public Path
// chains, copied out of the arena into one slab owned by the result.
// The copy unshares common prefixes but preserves every observable
// property (Nodes, Steps, Hops, String); in exchange the arena — which
// also holds the millions of intermediate table paths — is reusable
// the moment the call returns.
func materializeArrivals(sc *scratch, res *Result) {
	if len(sc.arrivals) == 0 {
		return
	}
	a := &sc.arena
	total := 0
	for _, idx := range sc.arrivals {
		total += int(a.at(idx).hops) + 1
	}
	slab := make([]Path, total)
	res.Arrivals = make([]*Path, len(sc.arrivals))
	base := 0
	for i, idx := range sc.arrivals {
		h := int(a.at(idx).hops)
		j := base + h
		for cur := idx; cur >= 0; {
			pn := a.at(cur)
			slab[j] = Path{
				Node:    trace.NodeID(pn.node),
				Step:    int(pn.step),
				Hops:    int(pn.hops),
				members: pn.members,
			}
			cur = pn.parent
			j--
		}
		for k := base + 1; k <= base+h; k++ {
			slab[k].parent = &slab[k-1]
		}
		res.Arrivals[i] = &slab[base+h]
		base += h + 1
	}
}

// EnumerateAll enumerates a batch of messages concurrently over the
// shared space-time graph, using up to Options.Workers goroutines
// (zero means runtime.GOMAXPROCS(0); 1 forces a serial batch).
//
// Results are returned in message order and are identical for every
// worker count: each message's enumeration is an independent dynamic
// program over the immutable graph with private scratch state. On
// failure EnumerateAll reports the error of the lowest-index invalid
// message — exactly what a serial loop would have hit first.
func (e *Enumerator) EnumerateAll(msgs []Message) ([]*Result, error) {
	out := make([]*Result, len(msgs))
	err := engine.MapErr(e.opt.Workers, len(msgs), func(i int) error {
		r, err := e.Enumerate(msgs[i])
		if err != nil {
			return fmt.Errorf("message %d: %w", i, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sentinel thresholds: skipAll marks nodes whose paths cannot
// contribute at all this step (no contacts); extendAll marks nodes in
// the destination's component, whose paths always extend (arrivals).
const (
	skipAll   = -1 << 30
	extendAll = int(^uint(0) >> 1)
)

// computeThresholds fills thresh[i] with the strict upper bound on the
// hop count of resident paths at node i worth extending at step s: a
// path p contributes only if some node v in i's component could accept
// a table insertion at p.Hops + dist(i, v) hops. cap(v) is the hop
// count of v's worst table entry (unbounded when the table has room);
// the threshold is max over v of cap(v) − dist(i, v). Nodes in the
// destination's component always extend (deliveries bypass tables).
//
// The component member lists and pairwise hop distances come straight
// from the graph's step index — the pre-index implementation re-ran
// one BFS (with a heap-allocated depth map) per member, per step, per
// message to derive the same numbers.
func (e *Enumerator) computeThresholds(sc *scratch, v stgraph.View, dst trace.NodeID, table [][]entry, thresh []int) {
	for i := range thresh {
		thresh[i] = skipAll
	}
	dstComp := v.ComponentOf(dst)
	for c := 0; c < v.NumComponents(); c++ {
		members := v.Members(c)
		if c == dstComp {
			for _, x := range members {
				thresh[x] = extendAll
			}
			continue
		}
		// cap per member, and how many members still have table room.
		caps := sc.caps[:0]
		room := 0
		for _, x := range members {
			if t := table[x]; len(t) >= e.opt.TableWidth {
				caps = append(caps, int(t[len(t)-1].hops))
			} else {
				caps = append(caps, extendAll)
				room++
			}
		}
		sc.caps = caps
		m := len(members)
		for j, x := range members {
			othersRoom := room
			if caps[j] == extendAll {
				othersRoom--
			}
			if othersRoom > 0 {
				// Some other member's table has room: any extension
				// depth can still be accepted there.
				thresh[x] = extendAll
				continue
			}
			best := skipAll
			for k := 0; k < m; k++ {
				if k == j {
					continue
				}
				if b := caps[k] - v.Dist(c, j, k); b > best {
					best = b
				}
			}
			thresh[x] = best
		}
	}
}

// extendBFS extends path p (resident at p's final node) through the
// zero-weight closure at step s. Newly reached nodes become candidate
// table entries; reaching the destination records an arrival. A child
// path is only materialized when its target table accepts it or a
// deeper acceptance is still possible under the per-node thresholds —
// hopeless subtrees cost no arena slot. The BFS queue is the scratch's
// ring buffer: a head index walks it in place instead of reslicing the
// front away (which would leak capacity and force regrowth).
func (e *Enumerator) extendBFS(sc *scratch, v stgraph.View, dst trace.NodeID, p entry, s int, table, cands [][]entry, thresh []int) {
	sc.epoch++
	epoch := sc.epoch
	a := &sc.arena
	wide := e.wide
	var rootMembers nodeSet
	var rootEpoch int
	if wide {
		// Materialize the root path's member set into epoch-marked
		// scratch by one parent-chain walk; the per-neighbor check
		// below is then O(1), exactly like the bitset path.
		sc.markEpoch++
		rootEpoch = sc.markEpoch
		for cur := p.idx; cur >= 0; cur = a.at(cur).parent {
			sc.mark[a.at(cur).node] = rootEpoch
		}
	} else {
		rootMembers = a.at(p.idx).members
	}
	sc.visited[a.at(p.idx).node] = epoch
	queue := append(sc.queue[:0], p)
	delivered := false
	for head := 0; head < len(queue); head++ {
		q := queue[head]
		qn := a.at(q.idx)
		qNode := trace.NodeID(qn.node)
		qMembers := qn.members
		for _, nb := range v.Neighbors(qNode) {
			if nb == dst {
				if !delivered {
					delivered = true
					sc.arrivals = append(sc.arrivals, a.extend(q.idx, qMembers, q.hops, dst, s))
				}
				continue
			}
			if sc.visited[nb] == epoch {
				continue
			}
			if wide {
				if sc.mark[nb] == rootEpoch {
					continue
				}
			} else if rootMembers.has(nb) {
				continue
			}
			sc.visited[nb] = epoch
			childHops := q.hops + 1
			// The merge keeps existing paths on hop ties, so a full
			// table only accepts strictly shorter candidates.
			t := table[nb]
			accept := len(t) < e.opt.TableWidth || t[len(t)-1].hops > childHops
			deeper := thresh[nb] == extendAll || thresh[nb] > int(childHops)
			if !accept && !deeper {
				continue
			}
			child := entry{idx: a.extend(q.idx, qMembers, q.hops, nb, s), hops: childHops}
			if accept {
				cands[nb] = append(cands[nb], child)
			}
			if deeper {
				queue = append(queue, child)
			}
		}
	}
	sc.queue = queue[:0]
}

// mergeShortest merges existing (sorted by hops) with cands (creation
// order) keeping the width shortest by hop count; existing paths win
// ties. The merge runs through a reused scratch buffer and writes back
// into existing's storage, so a node's table allocates at most once.
func (e *Enumerator) mergeShortest(sc *scratch, existing, cands []entry) []entry {
	width := e.opt.TableWidth
	sc.sortByHops(cands)
	buf := sc.mergeBuf[:0]
	i, j := 0, 0
	for len(buf) < width && (i < len(existing) || j < len(cands)) {
		if j >= len(cands) || (i < len(existing) && existing[i].hops <= cands[j].hops) {
			buf = append(buf, existing[i])
			i++
		} else {
			buf = append(buf, cands[j])
			j++
		}
	}
	sc.mergeBuf = buf
	existing = append(existing[:0], buf...)
	return existing
}

// sortByHops stable-sorts a candidate list by hop count. Most lists
// are a handful of entries (one per resident path that reached the
// node this step), where insertion sort wins; wide-table steps can
// queue thousands of candidates per node, which fall through to a
// stable counting sort — hop counts are bounded by the path length,
// which the loop-freedom invariant caps at the population size.
func (sc *scratch) sortByHops(paths []entry) {
	if len(paths) <= 24 {
		for i := 1; i < len(paths); i++ {
			p := paths[i]
			j := i - 1
			for j >= 0 && paths[j].hops > p.hops {
				paths[j+1] = paths[j]
				j--
			}
			paths[j+1] = p
		}
		return
	}
	pos := sc.hopCounts // zeroed below after use; hops < len(pos)
	maxHop := int32(0)
	for _, p := range paths {
		pos[p.hops]++
		if p.hops > maxHop {
			maxHop = p.hops
		}
	}
	pos = pos[:maxHop+1] // bound bucket work by the actual hop range
	sum := int32(0)
	for h := range pos {
		pos[h], sum = sum, sum+pos[h]
	}
	if cap(sc.sortBuf) < len(paths) {
		sc.sortBuf = make([]entry, len(paths))
	}
	buf := sc.sortBuf[:len(paths)]
	for _, p := range paths {
		buf[pos[p.hops]] = p
		pos[p.hops]++
	}
	copy(paths, buf)
	clear(pos)
}

// pruneContaining removes paths intersecting the delivered node set,
// in place.
func pruneContaining(a *pathArena, paths []entry, delivered nodeSet) []entry {
	out := paths[:0]
	for _, p := range paths {
		if !a.at(p.idx).members.intersects(delivered) {
			out = append(out, p)
		}
	}
	return out
}

// pruneContainingWide is pruneContaining for wide populations: the
// delivered set lives in epoch-marked scratch and membership is
// resolved by walking each path's parent chain.
func pruneContainingWide(a *pathArena, paths []entry, mark []int, epoch int) []entry {
	out := paths[:0]
	for _, p := range paths {
		keep := true
		for cur := p.idx; cur >= 0; {
			pn := a.at(cur)
			if mark[pn.node] == epoch {
				keep = false
				break
			}
			cur = pn.parent
		}
		if keep {
			out = append(out, p)
		}
	}
	return out
}

// ArrivalTime returns the delivery time of a path produced by
// Enumerate: the end of the step in which it reached the destination.
func (r *Result) ArrivalTime(p *Path) float64 {
	return float64(p.Step+1) * r.Delta
}

// NumPaths returns the number of delivered paths observed.
func (r *Result) NumPaths() int { return len(r.Arrivals) }

// Tn returns the duration from message creation to the arrival of the
// n-th path (1-based), and whether at least n paths arrived. T(1) is
// the paper's optimal path duration.
func (r *Result) Tn(n int) (float64, bool) {
	if n < 1 || n > len(r.Arrivals) {
		return 0, false
	}
	return r.ArrivalTime(r.Arrivals[n-1]) - r.Msg.Start, true
}

// T1 returns the optimal path duration, if any path was found.
func (r *Result) T1() (float64, bool) { return r.Tn(1) }

// TimeToExplosion returns TE = Tn − T1 for the given n (the paper uses
// n = 2000), and whether at least n paths arrived.
func (r *Result) TimeToExplosion(n int) (float64, bool) {
	tn, ok := r.Tn(n)
	if !ok {
		return 0, false
	}
	t1, _ := r.T1()
	return tn - t1, true
}

// StepCount is the number of paths arriving during one step.
type StepCount struct {
	Step  int
	Time  float64 // step end (the arrival time of its paths)
	Count int
}

// ArrivalCounts aggregates arrivals per step, in step order.
func (r *Result) ArrivalCounts() []StepCount {
	var out []StepCount
	for _, p := range r.Arrivals {
		if len(out) > 0 && out[len(out)-1].Step == p.Step {
			out[len(out)-1].Count++
			continue
		}
		out = append(out, StepCount{Step: p.Step, Time: r.ArrivalTime(p), Count: 1})
	}
	return out
}
