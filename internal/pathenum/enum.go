package pathenum

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/stgraph"
	"repro/internal/trace"
)

// Message identifies one forwarding problem: deliver from Src to Dst a
// message created at time Start (seconds from trace origin).
type Message struct {
	Src, Dst trace.NodeID
	Start    float64
}

// Options tunes the enumerator.
type Options struct {
	// Delta is the space-time discretization step in seconds.
	// Zero means stgraph.DefaultDelta (the paper's 10 s).
	Delta float64

	// K is the arrival budget: enumeration stops at the end of the
	// first step by which K paths in total have reached the
	// destination. Zero means the paper's 2000.
	K int

	// TableWidth caps the number of shortest valid paths kept per
	// node. Zero means K, matching the paper (which uses the same k
	// for the table and the stop rule). Narrower tables trade
	// completeness of the count for speed (ablation AB2).
	TableWidth int

	// MaxArrivals hard-caps the number of recorded arrivals; once hit,
	// enumeration stops immediately (even mid-step). This bounds the
	// overshoot in the final step, where a dense contact component can
	// deliver every table path at once. Zero means 4·K, which is
	// comfortably beyond the paper's T2000 measurement point.
	MaxArrivals int

	// Workers caps the number of goroutines EnumerateAll uses to
	// enumerate a message batch concurrently. Zero means
	// runtime.GOMAXPROCS(0); 1 forces a serial batch. Each message is
	// enumerated independently over the shared immutable space-time
	// graph, so results are identical for every worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Delta == 0 {
		o.Delta = stgraph.DefaultDelta
	}
	if o.K == 0 {
		o.K = 2000
	}
	if o.TableWidth == 0 {
		o.TableWidth = o.K
	}
	if o.MaxArrivals == 0 {
		o.MaxArrivals = 4 * o.K
	}
	return o
}

func (o Options) validate() error {
	if o.Delta < 0 {
		return fmt.Errorf("pathenum: negative delta %g", o.Delta)
	}
	if o.K < 0 || o.TableWidth < 0 || o.MaxArrivals < 0 {
		return fmt.Errorf("pathenum: negative K, TableWidth or MaxArrivals")
	}
	return nil
}

// ErrTooManyNodes is returned when the trace population exceeds the
// enumerator's fixed bitset capacity.
var ErrTooManyNodes = errors.New("pathenum: trace exceeds 128 nodes")

// Enumerator enumerates valid paths for messages over one trace. The
// space-time graph is built once and shared across messages. An
// Enumerator is safe for concurrent use: every Enumerate call draws
// its mutable scratch from an internal pool, so goroutines may share
// one Enumerator (or call EnumerateAll, which fans a batch out
// itself).
type Enumerator struct {
	tr  *trace.Trace
	g   *stgraph.Graph
	opt Options

	// Per-call scratch, pooled so sequential calls reuse their
	// allocations and concurrent calls never share state.
	pool sync.Pool
}

// scratch is the mutable per-Enumerate state.
type scratch struct {
	visited  []int // BFS epoch marks
	epoch    int
	mergeBuf []*Path
}

func (e *Enumerator) getScratch() *scratch {
	if sc, ok := e.pool.Get().(*scratch); ok {
		return sc
	}
	return &scratch{visited: make([]int, e.tr.NumNodes)}
}

// NewEnumerator prepares path enumeration over tr.
func NewEnumerator(tr *trace.Trace, opt Options) (*Enumerator, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if tr.NumNodes > maxNodes {
		return nil, ErrTooManyNodes
	}
	g, err := stgraph.New(tr, opt.Delta)
	if err != nil {
		return nil, err
	}
	return &Enumerator{tr: tr, g: g, opt: opt}, nil
}

// Graph exposes the underlying space-time graph.
func (e *Enumerator) Graph() *stgraph.Graph { return e.g }

// Result collects the delivered paths of one message enumeration.
type Result struct {
	Msg   Message
	Delta float64

	// Arrivals holds every delivered valid path in arrival order
	// (non-decreasing step). Paths arriving within the same step share
	// an arrival time; their relative order is arbitrary.
	Arrivals []*Path

	// Exhausted is true when enumeration stopped because the arrival
	// budget K was met, i.e. the path explosion was fully observed.
	// False means the trace ended (or all paths were invalidated by a
	// direct source-destination encounter) first.
	Exhausted bool
}

// Enumerate runs the Figure 3 dynamic program for one message.
func (e *Enumerator) Enumerate(msg Message) (*Result, error) {
	n := e.tr.NumNodes
	if msg.Src < 0 || int(msg.Src) >= n || msg.Dst < 0 || int(msg.Dst) >= n {
		return nil, fmt.Errorf("pathenum: message endpoints (%d,%d) out of range [0,%d)", msg.Src, msg.Dst, n)
	}
	if msg.Src == msg.Dst {
		return nil, fmt.Errorf("pathenum: source equals destination (%d)", msg.Src)
	}
	if msg.Start < 0 || msg.Start >= e.tr.Horizon {
		return nil, fmt.Errorf("pathenum: start time %g outside [0,%g)", msg.Start, e.tr.Horizon)
	}

	sc := e.getScratch()
	defer e.pool.Put(sc)

	res := &Result{Msg: msg, Delta: e.g.Delta}
	table := make([][]*Path, n)
	s0 := e.g.StepOf(msg.Start)
	table[msg.Src] = []*Path{newSource(msg.Src, s0)}

	cands := make([][]*Path, n)
	var queue []*Path
	thresh := make([]int, n)

	for s := s0; s < e.g.Steps; s++ {
		// Compute, for each node with contacts, the largest resident
		// hop count that could still contribute this step: a path p at
		// node i can only matter if some reachable node v could accept
		// an extension (its table has room or holds a longer path) at
		// hop count p.Hops + dist(i, v), or if the destination is in
		// i's component. Everything above the threshold is skipped
		// wholesale — this keeps the saturated steady state (every
		// table full of short paths) cheap between explosion onset and
		// trace end.
		e.computeThresholds(s, msg.Dst, table, thresh)

		// Phase 1: extend every resident path through the zero-weight
		// closure of this step, collecting candidates and arrivals.
		for i := 0; i < n; i++ {
			paths := table[i]
			if len(paths) == 0 || thresh[i] == skipAll {
				continue
			}
			bound := thresh[i]
			for _, p := range paths {
				// Tables are sorted by hop count: once one resident
				// path is bounded out, the rest are too.
				if p.Hops >= bound {
					break
				}
				queue = e.extendBFS(sc, res, p, s, queue, table, cands, thresh)
				if len(res.Arrivals) >= e.opt.MaxArrivals {
					res.Exhausted = true
					return res, nil
				}
			}
		}

		// Phase 2: merge candidates into the per-node tables, keeping
		// the TableWidth shortest (by hop count; existing paths win
		// ties, preserving shorter durations).
		for i := 0; i < n; i++ {
			if len(cands[i]) > 0 {
				table[i] = e.mergeShortest(sc, table[i], cands[i])
				cands[i] = cands[i][:0]
			}
		}

		// Phase 3: first preference. Every node in direct contact with
		// the destination this step has just delivered; any table path
		// containing such a node could only deliver strictly later and
		// is invalid (§4.1).
		if dn := e.g.Neighbors(s, msg.Dst); len(dn) > 0 {
			var delivered nodeSet
			for _, d := range dn {
				delivered = delivered.with(d)
			}
			alive := false
			for i := 0; i < n; i++ {
				table[i] = pruneContaining(table[i], delivered)
				alive = alive || len(table[i]) > 0
			}
			if !alive {
				// Every surviving path contained a node that met the
				// destination (e.g. the source itself); no further
				// valid path can exist.
				return res, nil
			}
		}

		if len(res.Arrivals) >= e.opt.K {
			res.Exhausted = true
			return res, nil
		}
	}
	return res, nil
}

// EnumerateAll enumerates a batch of messages concurrently over the
// shared space-time graph, using up to Options.Workers goroutines
// (zero means runtime.GOMAXPROCS(0); 1 forces a serial batch).
//
// Results are returned in message order and are identical for every
// worker count: each message's enumeration is an independent dynamic
// program over the immutable graph with private scratch state. On
// failure EnumerateAll reports the error of the lowest-index invalid
// message — exactly what a serial loop would have hit first.
func (e *Enumerator) EnumerateAll(msgs []Message) ([]*Result, error) {
	out := make([]*Result, len(msgs))
	err := engine.MapErr(e.opt.Workers, len(msgs), func(i int) error {
		r, err := e.Enumerate(msgs[i])
		if err != nil {
			return fmt.Errorf("message %d: %w", i, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sentinel thresholds: skipAll marks nodes whose paths cannot
// contribute at all this step (no contacts); extendAll marks nodes in
// the destination's component, whose paths always extend (arrivals).
const (
	skipAll   = -1 << 30
	extendAll = int(^uint(0) >> 1)
)

// computeThresholds fills thresh[i] with the strict upper bound on the
// hop count of resident paths at node i worth extending at step s: a
// path p contributes only if some node v in i's component could accept
// a table insertion at p.Hops + dist(i, v) hops. cap(v) is the hop
// count of v's worst table entry (unbounded when the table has room);
// the threshold is max over v of cap(v) − dist(i, v). Nodes in the
// destination's component always extend (deliveries bypass tables).
func (e *Enumerator) computeThresholds(s int, dst trace.NodeID, table [][]*Path, thresh []int) {
	for i := range thresh {
		thresh[i] = skipAll
	}
	var comp, queue []trace.NodeID
	for start := 0; start < len(thresh); start++ {
		if thresh[start] != skipAll || len(e.g.Neighbors(s, trace.NodeID(start))) == 0 {
			continue
		}
		// Collect the component of start.
		comp = comp[:0]
		queue = append(queue[:0], trace.NodeID(start))
		thresh[start] = skipAll + 1 // mark visited
		hasDst := false
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			if cur == dst {
				hasDst = true
			}
			for _, nb := range e.g.Neighbors(s, cur) {
				if thresh[nb] == skipAll {
					thresh[nb] = skipAll + 1
					queue = append(queue, nb)
				}
			}
		}
		if hasDst {
			for _, v := range comp {
				thresh[v] = extendAll
			}
			continue
		}
		// Per-member threshold via one BFS per member (components are
		// small: typically a handful of nodes).
		for _, src := range comp {
			queue = append(queue[:0], src)
			best := skipAll
			depth := make(map[trace.NodeID]int, len(comp))
			depth[src] = 0
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				d := depth[cur]
				if cur != src {
					capacity := extendAll
					if t := table[cur]; len(t) >= e.opt.TableWidth {
						capacity = t[len(t)-1].Hops
					}
					if capacity == extendAll {
						best = extendAll
						break
					}
					if b := capacity - d; b > best {
						best = b
					}
				}
				for _, nb := range e.g.Neighbors(s, cur) {
					if _, ok := depth[nb]; !ok {
						depth[nb] = d + 1
						queue = append(queue, nb)
					}
				}
			}
			thresh[src] = best
		}
	}
}

// extendBFS extends path p (resident at p's final node) through the
// zero-weight closure at step s. Newly reached nodes become candidate
// table entries; reaching the destination records an arrival. A child
// path is only materialized when its target table accepts it or a
// deeper acceptance is still possible under the per-node thresholds —
// hopeless subtrees cost no allocation. The passed queue's backing
// array is reused; the (emptied) queue is returned.
func (e *Enumerator) extendBFS(sc *scratch, res *Result, p *Path, s int, queue []*Path, table, cands [][]*Path, thresh []int) []*Path {
	sc.epoch++
	epoch := sc.epoch
	dst := res.Msg.Dst
	sc.visited[p.Node] = epoch
	queue = append(queue[:0], p)
	delivered := false
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, nb := range e.g.Neighbors(s, q.Node) {
			if nb == dst {
				if !delivered {
					delivered = true
					res.Arrivals = append(res.Arrivals, q.extend(dst, s))
				}
				continue
			}
			if sc.visited[nb] == epoch || p.members.has(nb) {
				continue
			}
			sc.visited[nb] = epoch
			childHops := q.Hops + 1
			// The merge keeps existing paths on hop ties, so a full
			// table only accepts strictly shorter candidates.
			t := table[nb]
			accept := len(t) < e.opt.TableWidth || t[len(t)-1].Hops > childHops
			deeper := thresh[nb] == extendAll || thresh[nb] > childHops
			if !accept && !deeper {
				continue
			}
			child := q.extend(nb, s)
			if accept {
				cands[nb] = append(cands[nb], child)
			}
			if deeper {
				queue = append(queue, child)
			}
		}
	}
	return queue[:0]
}

// mergeShortest merges existing (sorted by hops) with cands (creation
// order) keeping the width shortest by hop count; existing paths win
// ties. The merge runs through a reused scratch buffer and writes back
// into existing's storage, so a node's table allocates at most once.
func (e *Enumerator) mergeShortest(sc *scratch, existing, cands []*Path) []*Path {
	width := e.opt.TableWidth
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Hops < cands[j].Hops })
	buf := sc.mergeBuf[:0]
	i, j := 0, 0
	for len(buf) < width && (i < len(existing) || j < len(cands)) {
		if j >= len(cands) || (i < len(existing) && existing[i].Hops <= cands[j].Hops) {
			buf = append(buf, existing[i])
			i++
		} else {
			buf = append(buf, cands[j])
			j++
		}
	}
	sc.mergeBuf = buf
	existing = append(existing[:0], buf...)
	return existing
}

// pruneContaining removes paths intersecting the delivered node set,
// in place.
func pruneContaining(paths []*Path, delivered nodeSet) []*Path {
	out := paths[:0]
	for _, p := range paths {
		if !p.members.intersects(delivered) {
			out = append(out, p)
		}
	}
	// Release dropped tails for the garbage collector.
	for i := len(out); i < len(paths); i++ {
		paths[i] = nil
	}
	return out
}

// ArrivalTime returns the delivery time of a path produced by
// Enumerate: the end of the step in which it reached the destination.
func (r *Result) ArrivalTime(p *Path) float64 {
	return float64(p.Step+1) * r.Delta
}

// NumPaths returns the number of delivered paths observed.
func (r *Result) NumPaths() int { return len(r.Arrivals) }

// Tn returns the duration from message creation to the arrival of the
// n-th path (1-based), and whether at least n paths arrived. T(1) is
// the paper's optimal path duration.
func (r *Result) Tn(n int) (float64, bool) {
	if n < 1 || n > len(r.Arrivals) {
		return 0, false
	}
	return r.ArrivalTime(r.Arrivals[n-1]) - r.Msg.Start, true
}

// T1 returns the optimal path duration, if any path was found.
func (r *Result) T1() (float64, bool) { return r.Tn(1) }

// TimeToExplosion returns TE = Tn − T1 for the given n (the paper uses
// n = 2000), and whether at least n paths arrived.
func (r *Result) TimeToExplosion(n int) (float64, bool) {
	tn, ok := r.Tn(n)
	if !ok {
		return 0, false
	}
	t1, _ := r.T1()
	return tn - t1, true
}

// StepCount is the number of paths arriving during one step.
type StepCount struct {
	Step  int
	Time  float64 // step end (the arrival time of its paths)
	Count int
}

// ArrivalCounts aggregates arrivals per step, in step order.
func (r *Result) ArrivalCounts() []StepCount {
	var out []StepCount
	for _, p := range r.Arrivals {
		if len(out) > 0 && out[len(out)-1].Step == p.Step {
			out[len(out)-1].Count++
			continue
		}
		out = append(out, StepCount{Step: p.Step, Time: r.ArrivalTime(p), Count: 1})
	}
	return out
}
