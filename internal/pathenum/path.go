// Package pathenum implements the paper's core contribution (§4): the
// enumeration of all valid forwarding paths for a message on a
// space-time graph, using dynamic programming that maintains the k
// shortest valid paths reaching each node (paper Figure 3), and the
// path-explosion metrics derived from the enumeration — optimal path
// duration T1, n-th arrival time Tn, and time to explosion
// TE = T2000 − T1.
//
// A path is valid (§4.1) when it is loop-free, respects minimal
// progress (a node holding a message delivers on any encounter with
// the destination) and first preference (no valid path delivers later
// than any of its member nodes could have delivered directly).
package pathenum

import (
	"fmt"

	"repro/internal/trace"
)

// maxNodes bounds the population size the two-word membership bitset
// covers; traces up to this size (the paper's have 98 nodes) track
// path membership in nodeSet for O(1) loop avoidance and
// first-preference pruning. Larger populations — the city-scale
// datasets — run the same dynamic program in "wide" mode, where each
// table entry carries a full-width membership bitset row in a slab
// arena instead (see Enumerator.wide and rowArena); their nodeSets
// stay empty.
const maxNodes = 128

// nodeSet is a fixed-width bitset over node IDs < maxNodes. Nodes
// outside that range are never recorded (wide mode keeps membership
// elsewhere), so has reports false and with is a no-op for them.
type nodeSet [2]uint64

func (s nodeSet) has(n trace.NodeID) bool {
	return int(n) < maxNodes && s[n>>6]&(1<<(uint(n)&63)) != 0
}

func (s nodeSet) with(n trace.NodeID) nodeSet {
	if int(n) < maxNodes {
		s[n>>6] |= 1 << (uint(n) & 63)
	}
	return s
}

// intersects reports whether the two sets share any node.
func (s nodeSet) intersects(t nodeSet) bool {
	return s[0]&t[0] != 0 || s[1]&t[1] != 0
}

// Path is one valid space-time path, stored as an immutable chain of
// hops sharing prefixes with sibling paths. Node is the node reached
// by the final hop, Step the space-time step at which it was reached,
// and Hops the number of transmissions from the source (the paper's
// path length minus one: the source tuple is hop zero).
type Path struct {
	Node trace.NodeID
	Step int
	Hops int

	parent  *Path
	members nodeSet
}

// Parent returns the path prefix before the final hop, or nil for the
// source tuple.
func (p *Path) Parent() *Path { return p.parent }

// Contains reports whether node n appears anywhere on the path.
func (p *Path) Contains(n trace.NodeID) bool {
	for q := p; q != nil; q = q.parent {
		if q.Node == n {
			return true
		}
	}
	return false
}

// Nodes returns the node sequence from source to final node.
func (p *Path) Nodes() []trace.NodeID {
	n := p.Hops + 1
	out := make([]trace.NodeID, n)
	for q := p; q != nil; q = q.parent {
		n--
		out[n] = q.Node
	}
	return out
}

// AppendNodes appends the node sequence from source to final node to
// dst and returns the extended slice. It lets bulk path analyses reuse
// one buffer instead of allocating a fresh slice per path.
func (p *Path) AppendNodes(dst []trace.NodeID) []trace.NodeID {
	n := p.Hops + 1
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	i := len(dst)
	for q := p; q != nil; q = q.parent {
		i--
		dst[i] = q.Node
	}
	return dst
}

// Steps returns the step at which each node on the path was reached,
// parallel to Nodes.
func (p *Path) Steps() []int {
	n := p.Hops + 1
	out := make([]int, n)
	for q := p; q != nil; q = q.parent {
		n--
		out[n] = q.Step
	}
	return out
}

// String renders the path as "src@step -> ... -> dst@step".
func (p *Path) String() string {
	nodes := p.Nodes()
	steps := p.Steps()
	s := ""
	for i := range nodes {
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprintf("%d@%d", nodes[i], steps[i])
	}
	return s
}

// extend creates the path p plus one hop to node n at step s.
func (p *Path) extend(n trace.NodeID, s int) *Path {
	return &Path{
		Node:    n,
		Step:    s,
		Hops:    p.Hops + 1,
		parent:  p,
		members: p.members.with(n),
	}
}

// newSource creates the zero-hop path holding only the source tuple.
func newSource(n trace.NodeID, s int) *Path {
	return &Path{Node: n, Step: s, members: nodeSet{}.with(n)}
}

// pnode is the arena-internal representation of one path tuple. It is
// deliberately pointer-free: the parent link is an arena index, so the
// garbage collector neither scans nor write-barriers the enumeration's
// path tree — the hot loop creates one pnode per table candidate and
// BFS extension, millions per message on a conference trace. Node,
// step and hop counts fit int32 comfortably (hops are bounded by the
// population size through the loop-freedom invariant).
type pnode struct {
	members nodeSet
	parent  int32 // arena index of the prefix, -1 for the source tuple
	node    int32
	step    int32
	hops    int32
}

// pathArena is a chunked slab allocator for pnodes, indexed by a dense
// int32 handle. Arenas live in the enumerator's pooled scratch and are
// rewound between calls; arrival chains are materialized into public
// Path values before the rewind.
type pathArena struct {
	chunks [][]pnode
	n      int32 // pnodes allocated since the last reset

	// Fork state (zero on pooled arenas): chunks[:shared] belong to the
	// base arena and are read-only here; spare holds chunks this arena
	// allocated under a previous forkFrom, recycled instead of dropped
	// when the arena is re-forked for the next destination of a batch
	// group.
	shared int
	spare  [][]pnode
}

// arenaShift sizes chunks at 1024 pnodes (32 KiB): well under typical
// L2, while making the per-pnode allocation cost ~1/1024 of a heap
// allocation.
const (
	arenaShift = 10
	arenaChunk = 1 << arenaShift
	arenaMask  = arenaChunk - 1
)

// at returns the pnode with handle i. The pointer stays valid across
// later allocations (chunks never move).
func (a *pathArena) at(i int32) *pnode {
	return &a.chunks[i>>arenaShift][i&arenaMask]
}

// alloc returns the handle and slot of a fresh pnode. The slot holds
// stale bytes from a previous rewind; callers overwrite it entirely.
func (a *pathArena) alloc() (int32, *pnode) {
	ci := int(a.n) >> arenaShift
	if ci == len(a.chunks) {
		if k := len(a.spare); k > 0 {
			a.chunks = append(a.chunks, a.spare[k-1])
			a.spare = a.spare[:k-1]
		} else {
			a.chunks = append(a.chunks, make([]pnode, arenaChunk))
		}
	}
	i := a.n
	a.n++
	return i, &a.chunks[ci][int(i)&arenaMask]
}

// source allocates the zero-hop path holding only the source tuple.
func (a *pathArena) source(n trace.NodeID, s int) int32 {
	i, p := a.alloc()
	*p = pnode{members: nodeSet{}.with(n), parent: -1, node: int32(n), step: int32(s)}
	return i
}

// extend allocates the path q plus one hop to node n at step s. The
// caller supplies q's members and hops (already loaded for the BFS) to
// spare a second lookup.
func (a *pathArena) extend(q int32, qMembers nodeSet, qHops int32, n trace.NodeID, s int) int32 {
	i, p := a.alloc()
	*p = pnode{
		members: qMembers.with(n),
		parent:  q,
		node:    int32(n),
		step:    int32(s),
		hops:    qHops + 1,
	}
	return i
}

// forkFrom turns a into a layered fork of base: base's chunks become a
// shared read-only prefix — rounded up to a chunk boundary, so the
// base can later resume filling its partial tail chunk without the two
// ever writing the same slot — and a allocates its own chunks beyond
// it. Handles issued by the base stay valid in the fork. Forks are
// never reset or pooled, because their chunk table aliases the base's;
// re-forking an existing fork recycles the chunks it had allocated
// itself (its previous job's results are materialized by then) through
// the spare list. Batch enumeration uses this to continue one shared
// dynamic-program prefix independently per destination.
func (a *pathArena) forkFrom(base *pathArena) {
	if own := a.chunks[min(a.shared, len(a.chunks)):]; len(own) > 0 {
		a.spare = append(a.spare, own...)
	}
	nChunks := (int(base.n) + arenaMask) >> arenaShift
	a.chunks = append(a.chunks[:0], base.chunks[:nChunks]...)
	a.n = int32(nChunks) << arenaShift
	a.shared = nChunks
}

// arenaRetainChunks caps the chunks an arena keeps across calls
// (~32 MB of pnodes). An explosion-scale enumeration can touch tens of
// millions of paths; retaining its full arena in the scratch pool
// would pin that peak forever, so overflow chunks are released to the
// garbage collector and reallocated (one allocation per 1024 pnodes)
// by the rare calls that need them again.
const arenaRetainChunks = 1024

// reset rewinds the arena, keeping up to arenaRetainChunks chunks for
// reuse. Only valid once no handle issued since the last reset is
// referenced anymore.
func (a *pathArena) reset() {
	if len(a.chunks) > arenaRetainChunks {
		keep := make([][]pnode, arenaRetainChunks)
		copy(keep, a.chunks)
		a.chunks = keep
	}
	a.n = 0
}
