// Package pathenum implements the paper's core contribution (§4): the
// enumeration of all valid forwarding paths for a message on a
// space-time graph, using dynamic programming that maintains the k
// shortest valid paths reaching each node (paper Figure 3), and the
// path-explosion metrics derived from the enumeration — optimal path
// duration T1, n-th arrival time Tn, and time to explosion
// TE = T2000 − T1.
//
// A path is valid (§4.1) when it is loop-free, respects minimal
// progress (a node holding a message delivers on any encounter with
// the destination) and first preference (no valid path delivers later
// than any of its member nodes could have delivered directly).
package pathenum

import (
	"fmt"

	"repro/internal/trace"
)

// maxNodes bounds the population size the enumerator supports; node
// membership along a path is tracked in a fixed two-word bitset so
// loop avoidance and first-preference pruning are O(1). The paper's
// traces have 98 nodes.
const maxNodes = 128

// nodeSet is a fixed-width bitset over node IDs < maxNodes.
type nodeSet [2]uint64

func (s nodeSet) has(n trace.NodeID) bool {
	return s[n>>6]&(1<<(uint(n)&63)) != 0
}

func (s nodeSet) with(n trace.NodeID) nodeSet {
	s[n>>6] |= 1 << (uint(n) & 63)
	return s
}

// intersects reports whether the two sets share any node.
func (s nodeSet) intersects(t nodeSet) bool {
	return s[0]&t[0] != 0 || s[1]&t[1] != 0
}

// Path is one valid space-time path, stored as an immutable chain of
// hops sharing prefixes with sibling paths. Node is the node reached
// by the final hop, Step the space-time step at which it was reached,
// and Hops the number of transmissions from the source (the paper's
// path length minus one: the source tuple is hop zero).
type Path struct {
	Node trace.NodeID
	Step int
	Hops int

	parent  *Path
	members nodeSet
}

// Parent returns the path prefix before the final hop, or nil for the
// source tuple.
func (p *Path) Parent() *Path { return p.parent }

// Contains reports whether node n appears anywhere on the path.
func (p *Path) Contains(n trace.NodeID) bool { return p.members.has(n) }

// Nodes returns the node sequence from source to final node.
func (p *Path) Nodes() []trace.NodeID {
	n := p.Hops + 1
	out := make([]trace.NodeID, n)
	for q := p; q != nil; q = q.parent {
		n--
		out[n] = q.Node
	}
	return out
}

// Steps returns the step at which each node on the path was reached,
// parallel to Nodes.
func (p *Path) Steps() []int {
	n := p.Hops + 1
	out := make([]int, n)
	for q := p; q != nil; q = q.parent {
		n--
		out[n] = q.Step
	}
	return out
}

// String renders the path as "src@step -> ... -> dst@step".
func (p *Path) String() string {
	nodes := p.Nodes()
	steps := p.Steps()
	s := ""
	for i := range nodes {
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprintf("%d@%d", nodes[i], steps[i])
	}
	return s
}

// extend creates the path p plus one hop to node n at step s.
func (p *Path) extend(n trace.NodeID, s int) *Path {
	return &Path{
		Node:    n,
		Step:    s,
		Hops:    p.Hops + 1,
		parent:  p,
		members: p.members.with(n),
	}
}

// newSource creates the zero-hop path holding only the source tuple.
func newSource(n trace.NodeID, s int) *Path {
	return &Path{Node: n, Step: s, members: nodeSet{}.with(n)}
}
