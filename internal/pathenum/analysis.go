package pathenum

import (
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// This file derives the paper's path-structure statistics from
// enumeration results: the explosion summary used by Figs 4, 5 and 8,
// the growth curve of Fig 6, and the hop-rate analyses of Figs 14
// and 15.

// Explosion summarizes the path-explosion behaviour of one message.
type Explosion struct {
	Msg Message

	// Found is true when at least one path reached the destination.
	Found bool
	// T1 is the optimal path duration (valid when Found).
	T1 float64

	// Exploded is true when at least N paths arrived, so TE is valid.
	Exploded bool
	// N is the explosion threshold used (the paper's 2000).
	N int
	// TE is the time to explosion T_N − T1 (valid when Exploded).
	TE float64

	// Paths is the total number of delivered paths observed.
	Paths int
}

// ExplosionSummary computes the T1/TE summary for threshold n.
func (r *Result) ExplosionSummary(n int) Explosion {
	e := Explosion{Msg: r.Msg, N: n, Paths: r.NumPaths()}
	if t1, ok := r.T1(); ok {
		e.Found = true
		e.T1 = t1
	}
	if te, ok := r.TimeToExplosion(n); ok {
		e.Exploded = true
		e.TE = te
	}
	return e
}

// GrowthPoint is one point of the cumulative path-arrival curve.
type GrowthPoint struct {
	SinceT1 float64 // seconds since the first arrival
	Total   int     // cumulative paths delivered
}

// GrowthCurve returns the cumulative number of delivered paths as a
// function of time since T1 — the quantity behind the paper's Fig 6
// histogram. Returns nil when no path arrived.
func (r *Result) GrowthCurve() []GrowthPoint {
	counts := r.ArrivalCounts()
	if len(counts) == 0 {
		return nil
	}
	t1 := counts[0].Time
	total := 0
	out := make([]GrowthPoint, 0, len(counts))
	for _, c := range counts {
		total += c.Count
		out = append(out, GrowthPoint{SinceT1: c.Time - t1, Total: total})
	}
	return out
}

// GrowthRate estimates the exponential growth rate (per second) of the
// cumulative arrival curve, or NaN if it cannot be estimated. The
// homogeneous model (§5.1) predicts this rate approaches the contact
// rate λ.
func (r *Result) GrowthRate() float64 {
	curve := r.GrowthCurve()
	if len(curve) < 2 {
		return math.NaN()
	}
	ts := make([]float64, len(curve))
	ys := make([]float64, len(curve))
	for i, p := range curve {
		ts[i] = p.SinceT1
		ys[i] = float64(p.Total)
	}
	return stats.ExpGrowthRate(ts, ys)
}

// HopRates collects, for each hop index h, the contact rates of the
// nodes appearing at position h across all delivered paths (Fig 14).
// Index 0 is the source position. rates is the per-node contact rate
// vector (trace.Rates).
func HopRates(paths []*Path, rates []float64) [][]float64 {
	var out [][]float64
	var buf []trace.NodeID
	for _, p := range paths {
		buf = p.AppendNodes(buf[:0])
		for h, node := range buf {
			for len(out) <= h {
				out = append(out, nil)
			}
			out[h] = append(out[h], rates[node])
		}
	}
	return out
}

// HopRateSummary is the mean rate at one hop position with a
// confidence half-width (99 % by default in the figures).
type HopRateSummary struct {
	Hop  int
	Mean float64
	CI   float64
	N    int
}

// SummarizeHopRates reduces HopRates output to per-hop means with z
// confidence half-widths.
func SummarizeHopRates(hopRates [][]float64, z float64) []HopRateSummary {
	out := make([]HopRateSummary, 0, len(hopRates))
	for h, xs := range hopRates {
		mean, ci := stats.MeanCI(xs, z)
		out = append(out, HopRateSummary{Hop: h, Mean: mean, CI: ci, N: len(xs)})
	}
	return out
}

// RateRatios collects, for each hop transition t (from hop t to hop
// t+1), the ratios λ_next/λ_prev along all delivered paths (Fig 15).
// Transitions whose predecessor has zero rate are skipped.
func RateRatios(paths []*Path, rates []float64) [][]float64 {
	var out [][]float64
	var buf []trace.NodeID
	for _, p := range paths {
		nodes := p.AppendNodes(buf[:0])
		buf = nodes
		for i := 0; i+1 < len(nodes); i++ {
			prev := rates[nodes[i]]
			next := rates[nodes[i+1]]
			if prev == 0 {
				continue
			}
			for len(out) <= i {
				out = append(out, nil)
			}
			out[i] = append(out[i], next/prev)
		}
	}
	return out
}

// ClassifyMessage returns the in/out pair type of a message under a
// rate classifier (Fig 8, Fig 13).
func ClassifyMessage(cl *trace.Classifier, msg Message) trace.PairType {
	return cl.Classify(msg.Src, msg.Dst)
}
