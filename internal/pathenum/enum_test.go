package pathenum

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// chainTrace builds a simple relay scenario:
//
//	t ∈ [0,10):   0-1 in contact
//	t ∈ [20,30):  1-2 in contact
//	t ∈ [40,50):  2-3 in contact
//
// The only path 0→3 is via 1 and 2, arriving in step 4.
func chainTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.New("chain", 4, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 10},
		{A: 1, B: 2, Start: 20, End: 30},
		{A: 2, B: 3, Start: 40, End: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func enumFor(t *testing.T, tr *trace.Trace, opt Options) *Enumerator {
	t.Helper()
	e, err := NewEnumerator(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnumerateChain(t *testing.T) {
	e := enumFor(t, chainTrace(t), Options{K: 10})
	res, err := e.Enumerate(Message{Src: 0, Dst: 3, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPaths() != 1 {
		t.Fatalf("NumPaths = %d, want 1; arrivals: %v", res.NumPaths(), res.Arrivals)
	}
	p := res.Arrivals[0]
	nodes := p.Nodes()
	want := []trace.NodeID{0, 1, 2, 3}
	if len(nodes) != 4 {
		t.Fatalf("path = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("path = %v, want %v", nodes, want)
		}
	}
	if p.Hops != 3 {
		t.Errorf("Hops = %d, want 3", p.Hops)
	}
	// Contact 2-3 is during [40,50) = step 4, arrival time 50.
	t1, ok := res.T1()
	if !ok || t1 != 50 {
		t.Errorf("T1 = %g (ok=%v), want 50", t1, ok)
	}
}

func TestEnumerateDirectContact(t *testing.T) {
	tr, _ := trace.New("direct", 3, 50, []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 20},
	})
	e := enumFor(t, tr, Options{K: 10})
	res, err := e.Enumerate(Message{Src: 0, Dst: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPaths() != 1 {
		t.Fatalf("NumPaths = %d, want 1", res.NumPaths())
	}
	if t1, _ := res.T1(); t1 != 20 {
		t.Errorf("T1 = %g, want 20 (arrival at end of step 1)", t1)
	}
	// After the source meets the destination directly, no further
	// valid path can exist (first preference), so enumeration ends
	// without being exhausted.
	if res.Exhausted {
		t.Errorf("Exhausted should be false")
	}
}

func TestEnumerateNoPath(t *testing.T) {
	tr, _ := trace.New("none", 4, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 100},
	})
	e := enumFor(t, tr, Options{K: 10})
	res, err := e.Enumerate(Message{Src: 0, Dst: 3, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPaths() != 0 {
		t.Errorf("NumPaths = %d, want 0", res.NumPaths())
	}
	if _, ok := res.T1(); ok {
		t.Errorf("T1 should not exist")
	}
}

func TestEnumerateValidatesMessage(t *testing.T) {
	e := enumFor(t, chainTrace(t), Options{})
	for _, msg := range []Message{
		{Src: 0, Dst: 0, Start: 0},   // src == dst
		{Src: -1, Dst: 1, Start: 0},  // src out of range
		{Src: 0, Dst: 9, Start: 0},   // dst out of range
		{Src: 0, Dst: 1, Start: -5},  // negative start
		{Src: 0, Dst: 1, Start: 100}, // at horizon
		{Src: 0, Dst: 1, Start: 1e9}, // beyond horizon
	} {
		if _, err := e.Enumerate(msg); err == nil {
			t.Errorf("message %+v accepted", msg)
		}
	}
}

// Populations beyond the bitset capacity run in wide mode: the same
// dynamic program with chain-walk membership instead of per-path
// bitsets. A small contact chain on a 200-node trace must enumerate
// exactly like its 20-node twin.
func TestWideModeMatchesNarrowOnSharedTopology(t *testing.T) {
	cs := []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 30},
		{A: 1, B: 2, Start: 40, End: 70},
		{A: 2, B: 3, Start: 80, End: 110},
		{A: 0, B: 3, Start: 120, End: 150},
	}
	narrow, err := trace.New("narrow", 20, 200, cs)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := trace.New("wide", 200, 200, cs)
	if err != nil {
		t.Fatal(err)
	}
	en, err := NewEnumerator(narrow, Options{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	ew, err := NewEnumerator(wide, Options{K: 50})
	if err != nil {
		t.Fatalf("wide population rejected: %v", err)
	}
	if !ew.wide || en.wide {
		t.Fatalf("wide flags: narrow %v, wide %v", en.wide, ew.wide)
	}
	rn, err := en.Enumerate(Message{Src: 0, Dst: 3, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := ew.Enumerate(Message{Src: 0, Dst: 3, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rn.Arrivals) != len(rw.Arrivals) {
		t.Fatalf("arrivals %d vs %d", len(rn.Arrivals), len(rw.Arrivals))
	}
	for i := range rn.Arrivals {
		if rn.Arrivals[i].String() != rw.Arrivals[i].String() {
			t.Errorf("arrival %d: %s vs %s", i, rn.Arrivals[i], rw.Arrivals[i])
		}
	}
}

func TestNewEnumeratorRejectsBadOptions(t *testing.T) {
	tr, _ := trace.New("t", 3, 10, nil)
	if _, err := NewEnumerator(tr, Options{Delta: -1}); err == nil {
		t.Errorf("negative delta accepted")
	}
	if _, err := NewEnumerator(tr, Options{K: -1}); err == nil {
		t.Errorf("negative K accepted")
	}
	if _, err := NewEnumerator(tr, Options{TableWidth: -1}); err == nil {
		t.Errorf("negative width accepted")
	}
}

// In-step multi-hop relay: 0-1 and 1-2 overlap in step 0, so the
// message reaches 2 within a single step through the zero-weight
// closure, with two hops.
func TestEnumerateZeroWeightClosure(t *testing.T) {
	tr, _ := trace.New("closure", 3, 20, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 10},
		{A: 1, B: 2, Start: 0, End: 10},
	})
	e := enumFor(t, tr, Options{K: 10})
	res, err := e.Enumerate(Message{Src: 0, Dst: 2, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPaths() != 1 {
		t.Fatalf("NumPaths = %d, want 1", res.NumPaths())
	}
	p := res.Arrivals[0]
	if p.Hops != 2 || p.Step != 0 {
		t.Errorf("path hops/step = %d/%d, want 2/0 (%s)", p.Hops, p.Step, p)
	}
	if t1, _ := res.T1(); t1 != 10 {
		t.Errorf("T1 = %g, want 10", t1)
	}
}

// Loop avoidance: triangle 0-1, 1-2 at step 0 and 2-0, 2-3 later. The
// path must never revisit node 0.
func TestEnumerateLoopFree(t *testing.T) {
	tr, _ := trace.New("loops", 4, 60, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 30},
		{A: 1, B: 2, Start: 0, End: 30},
		{A: 0, B: 2, Start: 0, End: 30},
		{A: 2, B: 3, Start: 40, End: 50},
	})
	e := enumFor(t, tr, Options{K: 100})
	res, err := e.Enumerate(Message{Src: 0, Dst: 3, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPaths() == 0 {
		t.Fatal("no paths found")
	}
	for _, p := range res.Arrivals {
		seen := map[trace.NodeID]bool{}
		for _, n := range p.Nodes() {
			if seen[n] {
				t.Fatalf("path %s revisits node %d", p, n)
			}
			seen[n] = true
		}
	}
}

// First preference (§4.1): node 1 receives the message at step 0 and
// meets the destination at step 2. A path through 1 that lingers and
// delivers later than step 2 would be invalid. Construct:
//
//	step 0: 0-1
//	step 2: 1-3 (destination)   -> delivery via 1 at step 2
//	step 3: 1-2
//	step 5: 2-3                 -> would deliver via 0,1,2 at step 5: invalid
//
// The only arrivals must be via node 1 at step 2 (and none at step 5,
// because that path contains node 1 which met the destination at
// step 2 — and the 0→1→2 handoff at step 3 happens after 1 already
// delivered).
func TestEnumerateFirstPreference(t *testing.T) {
	tr, _ := trace.New("firstpref", 4, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 10},
		{A: 1, B: 3, Start: 20, End: 30},
		{A: 1, B: 2, Start: 30, End: 40},
		{A: 2, B: 3, Start: 50, End: 60},
	})
	e := enumFor(t, tr, Options{K: 100})
	res, err := e.Enumerate(Message{Src: 0, Dst: 3, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPaths() != 1 {
		for _, p := range res.Arrivals {
			t.Logf("arrival: %s", p)
		}
		t.Fatalf("NumPaths = %d, want 1 (only the first-preference path)", res.NumPaths())
	}
	p := res.Arrivals[0]
	if p.Step != 2 {
		t.Errorf("arrival step = %d, want 2", p.Step)
	}
}

// Two disjoint relays produce two distinct paths arriving at
// different times.
func TestEnumerateTwoDisjointPaths(t *testing.T) {
	tr, _ := trace.New("two", 4, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 10},
		{A: 0, B: 2, Start: 0, End: 10},
		{A: 1, B: 3, Start: 20, End: 30},
		{A: 2, B: 3, Start: 40, End: 50},
	})
	e := enumFor(t, tr, Options{K: 100})
	res, err := e.Enumerate(Message{Src: 0, Dst: 3, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPaths() != 2 {
		t.Fatalf("NumPaths = %d, want 2", res.NumPaths())
	}
	if s := res.Arrivals[0].Step; s != 2 {
		t.Errorf("first arrival step = %d, want 2", s)
	}
	if s := res.Arrivals[1].Step; s != 4 {
		t.Errorf("second arrival step = %d, want 4", s)
	}
	if te, ok := res.TimeToExplosion(2); !ok || te != 20 {
		t.Errorf("TE(2) = %g (ok=%v), want 20", te, ok)
	}
}

// A persistent contact between a relay and others generates a distinct
// path per step (distinct space-time tuples), as the Figure 3
// algorithm specifies.
func TestEnumeratePersistentContactDistinctPaths(t *testing.T) {
	tr, _ := trace.New("persist", 3, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 30},  // steps 0,1,2
		{A: 1, B: 2, Start: 50, End: 60}, // step 5: delivery
	})
	e := enumFor(t, tr, Options{K: 100})
	res, err := e.Enumerate(Message{Src: 0, Dst: 2, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 accumulates three distinct paths from 0 (joined at steps
	// 0, 1, 2); all three deliver at step 5.
	if res.NumPaths() != 3 {
		t.Fatalf("NumPaths = %d, want 3", res.NumPaths())
	}
	for _, p := range res.Arrivals {
		if p.Step != 5 {
			t.Errorf("arrival step = %d, want 5", p.Step)
		}
	}
}

func TestEnumerateExhaustedOnBudget(t *testing.T) {
	// Star: source in contact with 5 relays in step 0; all relays meet
	// the destination at step 2, delivering 5 paths at once. K=3 must
	// stop exhausted with >= 3 arrivals.
	cs := []trace.Contact{}
	for r := trace.NodeID(1); r <= 5; r++ {
		cs = append(cs,
			trace.Contact{A: 0, B: r, Start: 0, End: 10},
			trace.Contact{A: r, B: 6, Start: 20, End: 30},
		)
	}
	tr, _ := trace.New("star", 7, 100, cs)
	e := enumFor(t, tr, Options{K: 3})
	res, err := e.Enumerate(Message{Src: 0, Dst: 6, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Errorf("Exhausted = false, want true")
	}
	if res.NumPaths() < 3 {
		t.Errorf("NumPaths = %d, want >= 3", res.NumPaths())
	}
}

func TestEnumerateTableWidthLimitsPaths(t *testing.T) {
	// Same star but table width 1: node tables keep only the shortest
	// path; arrival count still includes each relay's delivery.
	cs := []trace.Contact{}
	for r := trace.NodeID(1); r <= 5; r++ {
		cs = append(cs,
			trace.Contact{A: 0, B: r, Start: 0, End: 10},
			trace.Contact{A: r, B: 6, Start: 20, End: 30},
		)
	}
	tr, _ := trace.New("star", 7, 100, cs)
	wide := enumFor(t, tr, Options{K: 1000})
	narrow := enumFor(t, tr, Options{K: 1000, TableWidth: 1})
	rw, err := wide.Enumerate(Message{Src: 0, Dst: 6, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := narrow.Enumerate(Message{Src: 0, Dst: 6, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rn.NumPaths() > rw.NumPaths() {
		t.Errorf("narrow table found more paths (%d) than wide (%d)", rn.NumPaths(), rw.NumPaths())
	}
	if rn.NumPaths() == 0 {
		t.Errorf("narrow table found no paths")
	}
}

func TestEnumerateStartMidTrace(t *testing.T) {
	tr, _ := trace.New("mid", 2, 100, []trace.Contact{
		{A: 0, B: 1, Start: 10, End: 20},
		{A: 0, B: 1, Start: 70, End: 80},
	})
	e := enumFor(t, tr, Options{K: 10})
	res, err := e.Enumerate(Message{Src: 0, Dst: 1, Start: 45})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPaths() != 1 {
		t.Fatalf("NumPaths = %d, want 1", res.NumPaths())
	}
	t1, _ := res.T1()
	if t1 != 80-45 {
		t.Errorf("T1 = %g, want 35 (second contact only)", t1)
	}
}

func TestArrivalCountsAndGrowth(t *testing.T) {
	tr, _ := trace.New("counts", 4, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 10},
		{A: 0, B: 2, Start: 0, End: 10},
		{A: 1, B: 3, Start: 20, End: 30},
		{A: 2, B: 3, Start: 20, End: 30},
	})
	e := enumFor(t, tr, Options{K: 100})
	res, err := e.Enumerate(Message{Src: 0, Dst: 3, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.ArrivalCounts()
	if len(counts) != 1 {
		t.Fatalf("steps with arrivals = %d, want 1", len(counts))
	}
	if counts[0].Count != 2 {
		t.Errorf("count = %d, want 2", counts[0].Count)
	}
	curve := res.GrowthCurve()
	if len(curve) != 1 || curve[0].Total != 2 || curve[0].SinceT1 != 0 {
		t.Errorf("growth curve = %+v", curve)
	}
}

func TestGrowthCurveEmpty(t *testing.T) {
	tr, _ := trace.New("none", 3, 50, nil)
	e := enumFor(t, tr, Options{K: 10})
	res, err := e.Enumerate(Message{Src: 0, Dst: 1, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.GrowthCurve() != nil {
		t.Errorf("growth curve for undelivered message should be nil")
	}
	if !math.IsNaN(res.GrowthRate()) {
		t.Errorf("growth rate should be NaN")
	}
}

func TestExplosionSummary(t *testing.T) {
	tr, _ := trace.New("two", 4, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 10},
		{A: 0, B: 2, Start: 0, End: 10},
		{A: 1, B: 3, Start: 20, End: 30},
		{A: 2, B: 3, Start: 40, End: 50},
	})
	e := enumFor(t, tr, Options{K: 100})
	res, _ := e.Enumerate(Message{Src: 0, Dst: 3, Start: 0})
	sum := res.ExplosionSummary(2)
	if !sum.Found || sum.T1 != 30 {
		t.Errorf("Found/T1 = %v/%g, want true/30", sum.Found, sum.T1)
	}
	if !sum.Exploded || sum.TE != 20 {
		t.Errorf("Exploded/TE = %v/%g, want true/20", sum.Exploded, sum.TE)
	}
	sum10 := res.ExplosionSummary(10)
	if sum10.Exploded {
		t.Errorf("explosion at threshold 10 with 2 paths")
	}
	if sum10.Paths != 2 {
		t.Errorf("Paths = %d, want 2", sum10.Paths)
	}
}

func TestTnBounds(t *testing.T) {
	tr, _ := trace.New("direct", 2, 50, []trace.Contact{{A: 0, B: 1, Start: 0, End: 10}})
	e := enumFor(t, tr, Options{K: 10})
	res, _ := e.Enumerate(Message{Src: 0, Dst: 1, Start: 0})
	if _, ok := res.Tn(0); ok {
		t.Errorf("Tn(0) should fail")
	}
	if _, ok := res.Tn(2); ok {
		t.Errorf("Tn(2) beyond arrivals should fail")
	}
}
