package pathenum

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// resultKey flattens a Result into a comparable string: message,
// exhaustion flag and every arrival path with its step.
func resultKey(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d->%d@%g delta=%g exhausted=%v\n", r.Msg.Src, r.Msg.Dst, r.Msg.Start, r.Delta, r.Exhausted)
	for _, p := range r.Arrivals {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func sampleMessages(rng *rand.Rand, tr *trace.Trace, n int) []Message {
	msgs := make([]Message, n)
	for i := range msgs {
		src := trace.NodeID(rng.Intn(tr.NumNodes))
		dst := trace.NodeID(rng.Intn(tr.NumNodes - 1))
		if dst >= src {
			dst++
		}
		msgs[i] = Message{Src: src, Dst: dst, Start: rng.Float64() * tr.Horizon / 2}
	}
	return msgs
}

// EnumerateAll must return, in order, exactly what a serial Enumerate
// loop returns — for several seeds and several worker counts.
func TestEnumerateAllSerialEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 11} {
		tr := tracegen.Dev(seed)
		rng := rand.New(rand.NewSource(seed + 55))
		msgs := sampleMessages(rng, tr, 12)

		serialEnum, err := NewEnumerator(tr, Options{K: 150, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]string, len(msgs))
		for i, m := range msgs {
			r, err := serialEnum.Enumerate(m)
			if err != nil {
				t.Fatalf("seed %d message %d: %v", seed, i, err)
			}
			want[i] = resultKey(r)
		}

		for _, workers := range []int{1, 2, 8} {
			enum, err := NewEnumerator(tr, Options{K: 150, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			results, err := enum.EnumerateAll(msgs)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(msgs) {
				t.Fatalf("workers=%d: %d results for %d messages", workers, len(results), len(msgs))
			}
			for i, r := range results {
				if got := resultKey(r); got != want[i] {
					t.Errorf("seed %d workers=%d message %d diverges:\n got %q\nwant %q",
						seed, workers, i, got, want[i])
				}
			}
		}
	}
}

// EnumerateAll must report the error of the lowest-index invalid
// message regardless of worker count, matching a serial loop.
func TestEnumerateAllDeterministicError(t *testing.T) {
	tr := tracegen.Dev(1)
	enum, err := NewEnumerator(tr, Options{K: 50, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Message{
		{Src: 0, Dst: 1, Start: 0},
		{Src: 2, Dst: 2, Start: 0},  // invalid: equal endpoints
		{Src: 3, Dst: 4, Start: -1}, // invalid: negative start
	}
	_, err = enum.EnumerateAll(msgs)
	if err == nil || !strings.Contains(err.Error(), "message 1") {
		t.Errorf("err = %v, want the index-1 failure", err)
	}
}

// A single shared Enumerator hammered from many goroutines (mixing
// Enumerate and EnumerateAll) must stay race-free and deterministic.
func TestEnumeratorConcurrentStress(t *testing.T) {
	tr := tracegen.Dev(4)
	enum, err := NewEnumerator(tr, Options{K: 100, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	msgs := sampleMessages(rng, tr, 8)
	want := make([]string, len(msgs))
	for i, m := range msgs {
		r, err := enum.Enumerate(m)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultKey(r)
	}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%3 == 0 {
				results, err := enum.EnumerateAll(msgs)
				if err != nil {
					t.Error(err)
					return
				}
				for i, r := range results {
					if resultKey(r) != want[i] {
						t.Errorf("goroutine %d: batch message %d diverged", g, i)
					}
				}
				return
			}
			for i := range msgs {
				r, err := enum.Enumerate(msgs[(i+g)%len(msgs)])
				if err != nil {
					t.Error(err)
					return
				}
				if resultKey(r) != want[(i+g)%len(msgs)] {
					t.Errorf("goroutine %d: message %d diverged", g, (i+g)%len(msgs))
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: on random seeded traces, every batch-enumerated path obeys
// the §4.1 validity rules and the Δ/K/MaxArrivals budgets, and the
// batch equals the serial loop. Complements the fixed-trace cases in
// validity_test.go with engine-derived per-case seeds.
func TestEnumerateAllValidityProperty(t *testing.T) {
	cases := 24
	if testing.Short() {
		cases = 8
	}
	for c := 0; c < cases; c++ {
		seed := engine.DeriveSeed(20260729, c)
		rng := rand.New(rand.NewSource(seed))
		tr, err := randomTrace(rng, 10, 400)
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Delta: 5 + float64(rng.Intn(3))*5, K: 20 + rng.Intn(120)}
		enum, err := NewEnumerator(tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt = opt.withDefaults()
		msgs := sampleMessages(rng, tr, 4)
		results, err := enum.EnumerateAll(msgs)
		if err != nil {
			t.Fatalf("case %d (seed %d): %v", c, seed, err)
		}
		for i, r := range results {
			if r.Delta != opt.Delta {
				t.Fatalf("case %d: delta %g, want %g", c, r.Delta, opt.Delta)
			}
			checkPathValidity(t, tr, msgs[i], r)
			// Budget: enumeration never records more than MaxArrivals
			// paths, and stopping early must be flagged as exhaustion
			// of the K budget.
			if n := r.NumPaths(); n > opt.MaxArrivals {
				t.Fatalf("case %d: %d arrivals exceed MaxArrivals %d", c, n, opt.MaxArrivals)
			}
			if r.Exhausted && r.NumPaths() < opt.K {
				t.Fatalf("case %d: exhausted with %d < K=%d arrivals", c, r.NumPaths(), opt.K)
			}
			// Per-worker scratch must not leak across messages: a
			// fresh enumerator on the same message agrees.
			fresh, err := NewEnumerator(tr, Options{Delta: opt.Delta, K: opt.K})
			if err != nil {
				t.Fatal(err)
			}
			fr, err := fresh.Enumerate(msgs[i])
			if err != nil {
				t.Fatal(err)
			}
			if resultKey(fr) != resultKey(r) {
				t.Fatalf("case %d message %d: batch result differs from fresh enumerator", c, i)
			}
		}
	}
}
