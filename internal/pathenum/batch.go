package pathenum

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// EnumerateAll enumerates a batch of messages over the shared
// space-time graph, using up to Options.Workers goroutines (zero means
// runtime.GOMAXPROCS(0); 1 forces a serial batch).
//
// Messages sharing a source and a start step — Delta, K and the other
// options are fixed per enumerator — run one shared dynamic program:
// until a destination's first contact the program cannot see the
// destination at all, so the group advances a destination-free prefix
// once and forks a private continuation (tables copied, path and row
// arenas layered copy-on-write) per destination at the step it first
// comes up. The paper's Fig 10/13 sweeps enumerate every destination
// for one source and start, which turns their per-message cost into
// per-group cost; batches of unrelated messages degenerate to
// independent enumerations, one group each.
//
// Results are returned in message order and are byte-identical to
// independent Enumerate calls, for every worker count and grouping:
// each forked continuation replays exactly the steps a fresh dynamic
// program would run, and enumeration before a destination's first
// contact is destination-independent. On failure EnumerateAll reports
// the error of the lowest-index invalid message — exactly what a
// serial loop would have hit first; messages are validated up front,
// so no enumeration runs on a batch with any invalid message.
func (e *Enumerator) EnumerateAll(msgs []Message) ([]*Result, error) {
	return e.EnumerateAllObs(msgs, nil)
}

// EnumerateAllObs is EnumerateAll with stage spans recorded into ot:
// the shared destination-free prefix advances accumulate under
// obs.StageEnumPrefix and the per-destination continuations — forked
// off a prefix, or whole single-message enumerations for ungrouped
// messages — under obs.StageEnumFork. Groups run concurrently, so the
// trace's atomic accumulation sums wall time across workers. A nil ot
// costs one pointer check per phase boundary.
func (e *Enumerator) EnumerateAllObs(msgs []Message, ot *obs.Trace) ([]*Result, error) {
	return e.EnumerateAllCancel(msgs, ot, nil)
}

// EnumerateAllCancel is EnumerateAllObs with a cooperative cancellation
// token threaded into every group's dynamic program (see
// EnumerateCancel). Once cc fires the batch abandons: in-flight groups
// stop at their next checkpoint, queued groups return immediately, and
// the call reports a *engine.CanceledError with no results. A nil cc —
// what EnumerateAll and EnumerateAllObs pass — is inert.
func (e *Enumerator) EnumerateAllCancel(msgs []Message, ot *obs.Trace, cc *engine.Cancel) ([]*Result, error) {
	for i := range msgs {
		if err := e.validateMessage(msgs[i]); err != nil {
			return nil, fmt.Errorf("message %d: %w", i, err)
		}
	}
	// Group by (source, start step) in first-appearance order. The
	// dynamic program depends on the start time only through its step,
	// so messages differing within one step still share fully.
	type gkey struct {
		src trace.NodeID
		s0  int
	}
	order := make([]gkey, 0, len(msgs))
	groups := make(map[gkey][]int, len(msgs))
	for i, m := range msgs {
		k := gkey{m.Src, e.g.StepOf(m.Start)}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	out := make([]*Result, len(msgs))
	err := engine.MapErr(e.opt.Workers, len(order), func(gi int) error {
		if cc.Stopped() {
			// Shed queued groups without spinning up their dynamic
			// programs; groups already running stop at their own
			// checkpoints.
			return cc.FiredErr()
		}
		k := order[gi]
		idxs := groups[k]
		if len(idxs) == 1 {
			// Nothing to share: the plain pooled-scratch path. The whole
			// run is one private continuation with an empty prefix.
			sp := ot.Start(obs.StageEnumFork)
			r, err := e.enumerate(msgs[idxs[0]], cc)
			sp.End()
			if err != nil {
				if engine.IsCanceled(err) {
					return err
				}
				return fmt.Errorf("message %d: %w", idxs[0], err)
			}
			out[idxs[0]] = r
			return nil
		}
		return e.enumerateGroup(k.src, k.s0, idxs, msgs, out, ot, cc)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// enumerateGroup enumerates the messages at idxs — all sharing source
// src and start step s0 — through one shared dynamic-program prefix.
// Destinations are processed in order of their first contact step: the
// shared scratch advances destination-free to just before that step,
// is forked, and the fork runs the remaining steps with the
// destination live. Forks run strictly one at a time, so the layered
// arenas never race the base; results are materialized out of each
// fork before the next advances the base. A fired cc abandons the
// group at the next checkpoint (prefix or fork alike) and returns a
// *engine.CanceledError; results already materialized into out stay —
// the batch call discards them.
func (e *Enumerator) enumerateGroup(src trace.NodeID, s0 int, idxs []int, msgs []Message, out []*Result, ot *obs.Trace, cc *engine.Cancel) error {
	type job struct {
		mi int // index into msgs/out
		fa int // first step >= s0 at which the destination has contacts
	}
	jobs := make([]job, 0, len(idxs))
	for _, mi := range idxs {
		fa, ok := e.firstActive(msgs[mi].Dst, s0)
		if !ok {
			// The destination never comes up after the start: no path
			// can deliver, and the dynamic program cannot stop early
			// without arrivals — the empty result needs no steps.
			out[mi] = &Result{Msg: msgs[mi], Delta: e.g.Delta}
			continue
		}
		jobs = append(jobs, job{mi: mi, fa: fa})
	}
	if len(jobs) == 0 {
		return nil
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].fa < jobs[b].fa })

	sp := ot.Start(obs.StageEnumPrefix)
	sc0 := e.getScratch()
	sc0.prepare()
	sc0.cancel = cc
	e.seed(sc0, src, s0)
	sp.End()
	// Destination-free steps record no arrivals and never finish —
	// the result sink is never written and step only reports true on
	// cancellation; see step.
	sink := &Result{}
	cur := s0
	var fk *scratch
	for _, j := range jobs {
		sp = ot.Start(obs.StageEnumPrefix)
		for ; cur < j.fa; cur++ {
			if e.step(sc0, cur, -1, sink) {
				break
			}
		}
		sp.End()
		if sc0.canceled {
			break
		}
		sp = ot.Start(obs.StageEnumFork)
		fk = e.forkScratch(sc0, fk)
		res := &Result{Msg: msgs[j.mi], Delta: e.g.Delta}
		for s := cur; s < e.g.Steps; s++ {
			if e.step(fk, s, msgs[j.mi].Dst, res) {
				break
			}
		}
		if fk.canceled {
			sp.End()
			break
		}
		materializeArrivals(fk, res)
		out[j.mi] = res
		sp.End()
	}
	canceled := sc0.canceled || (fk != nil && fk.canceled)
	// The forks' layered arenas aliased sc0's chunks, but every fork is
	// dead (its arrivals materialized or abandoned) by now, so pooling
	// sc0 is safe.
	sc0.cancel = nil
	e.pool.Put(sc0)
	if canceled {
		return cc.FiredErr()
	}
	return nil
}

// firstActive returns the first step at or after s0 in which node d
// has at least one contact, or ok=false if it never does again. Before
// that step the dynamic program cannot mention d: no arrivals, no
// first-preference pruning, no destination component — which is what
// makes the group prefix shareable.
func (e *Enumerator) firstActive(d trace.NodeID, s0 int) (int, bool) {
	for s := s0; s < e.g.Steps; s++ {
		if len(e.g.Neighbors(s, d)) > 0 {
			return s, true
		}
	}
	return 0, false
}

// forkScratch builds a private continuation of base at a step
// boundary: tables deep-copied, acceptance bounds and table stamps
// carried over, path and row arenas layered copy-on-write (see
// pathArena.forkFrom / rowArena.forkFrom), everything per-step reset.
// Forks never enter the scratch pool, since their arenas alias the
// base's chunks, and must not outlive the base's next step; passing
// the previous job's fork as reuse recycles its allocations — tables,
// histograms, and the arena chunks it had appended itself — instead of
// leaving a full enumeration's scratch to the garbage collector per
// destination.
func (e *Enumerator) forkScratch(base, reuse *scratch) *scratch {
	sc := reuse
	if sc == nil {
		n := e.tr.NumNodes
		sc = &scratch{
			visited:   make([]int, n),
			hopCounts: make([]int32, n+1),
			table:     make([][]entry, n),
			cands:     make([][]entry, n),
			thresh:    make([]int32, n),
			bound:     make([]int32, n),
			below:     make([]int32, n),
			hist:      make([]int32, n*int(histCap)),
			stamp:     make([]int32, n),
		}
		for i := range sc.below {
			sc.below[i] = -1
		}
	} else {
		// A MaxArrivals stop can abandon the previous job mid-step;
		// clean the histogram state and candidates it left behind. The
		// visited epoch marks stay — epochs only ever increase.
		sc.clearHists()
		for i := range sc.cands {
			sc.cands[i] = sc.cands[i][:0]
		}
		sc.arrivals = sc.arrivals[:0]
	}
	// Forks poll the group's token; a reused fork may have been
	// abandoned canceled, but then the group stops before forking again,
	// so resetting the flag here is only for symmetry.
	sc.cancel = base.cancel
	sc.canceled = false
	copy(sc.bound, base.bound)
	copy(sc.stamp, base.stamp)
	for i, t := range base.table {
		sc.table[i] = append(sc.table[i][:0], t...)
	}
	sc.arena.forkFrom(&base.arena)
	if e.wide {
		sc.rows.forkFrom(&base.rows)
		if sc.deliveredBits == nil {
			sc.deliveredBits = make([]uint64, base.rows.words)
		}
	}
	return sc
}
