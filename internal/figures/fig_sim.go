package figures

import (
	"fmt"
	"io"
	"math"

	"repro/internal/dtnsim"
	"repro/internal/forward"
	"repro/internal/pathenum"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Figure 9: average delay vs success rate, per algorithm and dataset.

// PerfRow is one (dataset, algorithm) performance point.
type PerfRow struct {
	Dataset   tracegen.Dataset
	Algorithm string
	Success   float64
	MeanDelay float64
}

// ComputeFig09 runs the multi-seed simulation sweep on every dataset.
func (h *Harness) ComputeFig09() ([]PerfRow, error) {
	var out []PerfRow
	for _, d := range h.P.Datasets {
		rs, err := h.Simulate(d)
		if err != nil {
			return nil, err
		}
		for _, name := range AlgorithmOrder {
			r := rs[name]
			out = append(out, PerfRow{
				Dataset:   d,
				Algorithm: name,
				Success:   r.SuccessRate(),
				MeanDelay: r.MeanDelay(),
			})
		}
	}
	return out, nil
}

func renderFig09(h *Harness, w io.Writer) error {
	rows, err := h.ComputeFig09()
	if err != nil {
		return err
	}
	var cur tracegen.Dataset = -1
	for _, r := range rows {
		if r.Dataset != cur {
			cur = r.Dataset
			fmt.Fprintf(w, "%s\n", r.Dataset)
			fmt.Fprintf(w, "  %-20s %10s %14s\n", "algorithm", "success", "avg delay (s)")
		}
		fmt.Fprintf(w, "  %-20s %10.3f %14.0f\n", r.Algorithm, r.Success, r.MeanDelay)
	}
	fmt.Fprintln(w, "paper check: all algorithms cluster tightly; epidemic is the best envelope")
	return nil
}

// Figure 10: full delay distributions per algorithm.

// DelayDist is one algorithm's delay distribution on one dataset.
type DelayDist struct {
	Dataset   tracegen.Dataset
	Algorithm string
	ECDF      *stats.ECDF
}

// ComputeFig10 builds delay ECDFs on the morning datasets (the paper
// shows Infocom 9-12 and CoNext 9-12).
func (h *Harness) ComputeFig10() ([]DelayDist, error) {
	var out []DelayDist
	for _, d := range h.fig10Datasets() {
		rs, err := h.Simulate(d)
		if err != nil {
			return nil, err
		}
		for _, name := range AlgorithmOrder {
			delays := rs[name].Delays()
			if len(delays) == 0 {
				continue
			}
			e, err := stats.NewECDF(delays)
			if err != nil {
				return nil, err
			}
			out = append(out, DelayDist{Dataset: d, Algorithm: name, ECDF: e})
		}
	}
	return out, nil
}

func (h *Harness) fig10Datasets() []tracegen.Dataset {
	var out []tracegen.Dataset
	for _, d := range h.P.Datasets {
		if d == tracegen.Infocom0912 || d == tracegen.Conext0912 {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = h.P.Datasets[:1]
	}
	return out
}

func renderFig10(h *Harness, w io.Writer) error {
	dists, err := h.ComputeFig10()
	if err != nil {
		return err
	}
	var cur tracegen.Dataset = -1
	for _, d := range dists {
		if d.Dataset != cur {
			cur = d.Dataset
			fmt.Fprintf(w, "%s: delay quantiles (s)\n", d.Dataset)
			fmt.Fprintf(w, "  %-20s %8s %8s %8s %8s\n", "algorithm", "p25", "p50", "p75", "p90")
		}
		fmt.Fprintf(w, "  %-20s %8.0f %8.0f %8.0f %8.0f\n", d.Algorithm,
			d.ECDF.Quantile(0.25), d.ECDF.Quantile(0.50), d.ECDF.Quantile(0.75), d.ECDF.Quantile(0.90))
	}
	fmt.Fprintln(w, "paper check: distributions nearly coincide across algorithms")
	return nil
}

// Figure 12: for individual messages, where in the arrival burst
// sequence each algorithm's delivery lands.

// MessageBursts describes one message's arrival bursts and the delay
// achieved by each algorithm.
type MessageBursts struct {
	Msg    pathenum.Message
	Bursts []pathenum.StepCount // arrivals per step, offset from T1
	T1     float64
	// AlgDelay maps algorithm name to its delivery delay (NaN if
	// undelivered).
	AlgDelay map[string]float64
}

// ComputeFig12 picks up to two messages with multi-burst explosions
// from the first dataset's study and runs every algorithm on each.
func (h *Harness) ComputeFig12() ([]MessageBursts, error) {
	st, err := h.Study(h.P.Datasets[0])
	if err != nil {
		return nil, err
	}
	sw, err := h.sweep(h.P.Datasets[0])
	if err != nil {
		return nil, err
	}
	var out []MessageBursts
	for _, r := range st.Results {
		if len(out) == 2 {
			break
		}
		counts := r.ArrivalCounts()
		if len(counts) < 3 { // want a multi-burst explosion
			continue
		}
		t1, _ := r.T1()
		mb := MessageBursts{Msg: r.Msg, Bursts: counts, T1: t1, AlgDelay: map[string]float64{}}
		for _, alg := range forward.PaperSet() {
			sim, err := sw.Run(dtnsim.Config{
				Algorithm: alg,
				Messages:  []dtnsim.Message{{Src: r.Msg.Src, Dst: r.Msg.Dst, Start: r.Msg.Start}},
			})
			if err != nil {
				return nil, err
			}
			if o := sim.Outcomes[0]; o.Delivered {
				mb.AlgDelay[alg.Name()] = o.Delay
			} else {
				mb.AlgDelay[alg.Name()] = math.NaN()
			}
		}
		out = append(out, mb)
	}
	return out, nil
}

func renderFig12(h *Harness, w io.Writer) error {
	msgs, err := h.ComputeFig12()
	if err != nil {
		return err
	}
	if len(msgs) == 0 {
		fmt.Fprintln(w, "(no multi-burst messages in the sample)")
		return nil
	}
	for _, m := range msgs {
		fmt.Fprintf(w, "message %d -> %d at t=%.0f (T1 = %.0f s)\n", m.Msg.Src, m.Msg.Dst, m.Msg.Start, m.T1)
		fmt.Fprintf(w, "  %14s %10s\n", "since T1 (s)", "paths")
		for i, b := range m.Bursts {
			if i >= 8 {
				fmt.Fprintf(w, "  ... %d more bursts\n", len(m.Bursts)-8)
				break
			}
			fmt.Fprintf(w, "  %14.0f %10d\n", offsetSince(b.Time, m), b.Count)
		}
		fmt.Fprintf(w, "  %-20s %16s\n", "algorithm", "delay since T1 (s)")
		for _, name := range AlgorithmOrder {
			d := m.AlgDelay[name]
			if math.IsNaN(d) {
				fmt.Fprintf(w, "  %-20s %16s\n", name, "undelivered")
				continue
			}
			fmt.Fprintf(w, "  %-20s %16.0f\n", name, d-m.T1)
		}
	}
	fmt.Fprintln(w, "paper check: algorithms deliver within the first few bursts after T1")
	return nil
}

func offsetSince(arrivalTime float64, m MessageBursts) float64 {
	return arrivalTime - m.Msg.Start - m.T1
}

// Figure 13: per pair type, per algorithm performance.

// PairPerfRow is one (pair type, algorithm) performance point.
type PairPerfRow struct {
	Type      trace.PairType
	Algorithm string
	Success   float64
	MeanDelay float64
	N         int
}

// ComputeFig13 splits the first dataset's simulation by pair type.
func (h *Harness) ComputeFig13() ([]PairPerfRow, error) {
	d := h.P.Datasets[0]
	rs, err := h.Simulate(d)
	if err != nil {
		return nil, err
	}
	cl := trace.NewClassifier(h.Trace(d))
	var out []PairPerfRow
	for _, pt := range trace.PairTypes {
		for _, name := range AlgorithmOrder {
			part := rs[name].ByPairType(cl)[pt]
			out = append(out, PairPerfRow{
				Type:      pt,
				Algorithm: name,
				Success:   part.SuccessRate(),
				MeanDelay: part.MeanDelay(),
				N:         len(part.Outcomes),
			})
		}
	}
	return out, nil
}

func renderFig13(h *Harness, w io.Writer) error {
	rows, err := h.ComputeFig13()
	if err != nil {
		return err
	}
	cur := trace.PairType(-1)
	for _, r := range rows {
		if r.Type != cur {
			cur = r.Type
			fmt.Fprintf(w, "%s (n=%d)\n", r.Type, r.N)
			fmt.Fprintf(w, "  %-20s %10s %14s\n", "algorithm", "success", "avg delay (s)")
		}
		fmt.Fprintf(w, "  %-20s %10.3f %14.0f\n", r.Algorithm, r.Success, r.MeanDelay)
	}
	fmt.Fprintln(w, "paper check: performance depends on pair type far more than on algorithm;")
	fmt.Fprintln(w, "oracle algorithms (Greedy Total, DP) gain most when an endpoint is 'out'")
	return nil
}

// Extension X1: forwarding cost. The paper's §7 leaves cost open; this
// experiment measures transmissions per message for every algorithm on
// the first dataset, showing the price of the near-identical
// delay/success results of Fig 9.

// CostRow is one algorithm's delivery cost.
type CostRow struct {
	Algorithm   string
	Success     float64
	TxPerMsg    float64
	TxDelivered float64 // transmissions per delivered message
}

// ComputeX1 derives cost from the cached simulation sweep.
func (h *Harness) ComputeX1() ([]CostRow, error) {
	rs, err := h.Simulate(h.P.Datasets[0])
	if err != nil {
		return nil, err
	}
	var out []CostRow
	for _, name := range AlgorithmOrder {
		r := rs[name]
		delivered := 0
		for _, o := range r.Outcomes {
			if o.Delivered {
				delivered++
			}
		}
		row := CostRow{Algorithm: name, Success: r.SuccessRate()}
		if n := len(r.Outcomes); n > 0 {
			row.TxPerMsg = float64(r.Transmissions) / float64(n)
		}
		if delivered > 0 {
			row.TxDelivered = float64(r.Transmissions) / float64(delivered)
		}
		out = append(out, row)
	}
	return out, nil
}

func renderX1(h *Harness, w io.Writer) error {
	rows, err := h.ComputeX1()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-20s %10s %12s %14s\n", "algorithm", "success", "txs/msg", "txs/delivered")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %10.3f %12.1f %14.1f\n", r.Algorithm, r.Success, r.TxPerMsg, r.TxDelivered)
	}
	fmt.Fprintln(w, "extension (paper §7 future work): similar delay/success, very different cost")
	return nil
}

func init() {
	register(Figure{ID: "F09", Title: "Average delay vs success rate per algorithm", Render: renderFig09})
	register(Figure{ID: "X1", Title: "Extension: forwarding cost (transmissions per message)", Render: renderX1})
	register(Figure{ID: "F10", Title: "Delay distributions per algorithm", Render: renderFig10})
	register(Figure{ID: "F12", Title: "Paths taken by forwarding algorithms (two messages)", Render: renderFig12})
	register(Figure{ID: "F13", Title: "Performance by source-destination pair type", Render: renderFig13})
}
