package figures

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/dtnsim"
	"repro/internal/forward"
	"repro/internal/pathenum"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Ablations for the design choices called out in DESIGN.md.

// ablationMessages samples messages (identically across ablation arms)
// from the first dataset.
func (h *Harness) ablationMessages(n int) []pathenum.Message {
	tr := h.Trace(h.P.Datasets[0])
	rng := rand.New(rand.NewSource(h.P.Seed + 9999))
	gen := tr.Horizon * h.P.GenFraction
	msgs := make([]pathenum.Message, 0, n)
	for i := 0; i < n; i++ {
		src := trace.NodeID(rng.Intn(tr.NumNodes))
		dst := trace.NodeID(rng.Intn(tr.NumNodes - 1))
		if dst >= src {
			dst++
		}
		msgs = append(msgs, pathenum.Message{Src: src, Dst: dst, Start: rng.Float64() * gen})
	}
	return msgs
}

// AblationRow is one arm of a sweep.
type AblationRow struct {
	Label    string
	MeanT1   float64
	MeanTE   float64
	Found    int
	Exploded int
}

func (h *Harness) explosionArm(label string, opts pathenum.Options, msgs []pathenum.Message) (AblationRow, error) {
	tr := h.Trace(h.P.Datasets[0])
	opts.Workers = h.P.Workers
	enum, err := pathenum.NewEnumerator(tr, opts)
	if err != nil {
		return AblationRow{}, err
	}
	row := AblationRow{Label: label}
	var t1s, tes []float64
	results, err := enum.EnumerateAll(msgs)
	if err != nil {
		return AblationRow{}, err
	}
	for _, res := range results {
		s := res.ExplosionSummary(opts.K)
		if s.Found {
			row.Found++
			t1s = append(t1s, s.T1)
		}
		if s.Exploded {
			row.Exploded++
			tes = append(tes, s.TE)
		}
	}
	row.MeanT1 = stats.Mean(t1s)
	row.MeanTE = stats.Mean(tes)
	return row, nil
}

// ComputeAB1 sweeps the space-time discretization Δ.
func (h *Harness) ComputeAB1() ([]AblationRow, error) {
	msgs := h.ablationMessages(h.P.Messages / 2)
	var out []AblationRow
	for _, delta := range []float64{5, 10, 30} {
		row, err := h.explosionArm(fmt.Sprintf("delta=%gs", delta),
			pathenum.Options{Delta: delta, K: h.P.K}, msgs)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// ComputeAB2 sweeps the arrival budget / table width k.
func (h *Harness) ComputeAB2() ([]AblationRow, error) {
	msgs := h.ablationMessages(h.P.Messages / 2)
	var out []AblationRow
	for _, k := range []int{h.P.K / 10, h.P.K / 4, h.P.K} {
		if k < 2 {
			k = 2
		}
		row, err := h.explosionArm(fmt.Sprintf("k=%d", k),
			pathenum.Options{K: k}, msgs)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func renderAblationRows(w io.Writer, rows []AblationRow) {
	fmt.Fprintf(w, "%-14s %8s %10s %10s %10s\n", "arm", "found", "exploded", "meanT1", "meanTE")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %10d %10.0f %10.0f\n", r.Label, r.Found, r.Exploded, r.MeanT1, r.MeanTE)
	}
}

func renderAB1(h *Harness, w io.Writer) error {
	rows, err := h.ComputeAB1()
	if err != nil {
		return err
	}
	renderAblationRows(w, rows)
	fmt.Fprintln(w, "check: T1 is stable under Δ (discretization error is O(Δ)); TE shifts by O(Δ) per burst")
	return nil
}

func renderAB2(h *Harness, w io.Writer) error {
	rows, err := h.ComputeAB2()
	if err != nil {
		return err
	}
	renderAblationRows(w, rows)
	fmt.Fprintln(w, "check: T1 identical across k (optimal path always kept); TE at threshold k scales with k")
	return nil
}

// ComputeAB3 compares replicate vs relay copy semantics for the
// history-based algorithms.
func (h *Harness) ComputeAB3() ([]PerfRow, error) {
	tr := h.Trace(h.P.Datasets[0])
	sw, err := h.sweep(h.P.Datasets[0])
	if err != nil {
		return nil, err
	}
	msgs := workload(tr, h.P, 0)
	algos := []forward.Algorithm{forward.FRESH{}, forward.Greedy{}, forward.GreedyTotal{}}
	var out []PerfRow
	for _, mode := range []dtnsim.CopyMode{dtnsim.Replicate, dtnsim.Relay} {
		for _, a := range algos {
			r, err := sw.Run(dtnsim.Config{Algorithm: a, Messages: msgs, CopyMode: mode})
			if err != nil {
				return nil, err
			}
			out = append(out, PerfRow{
				Dataset:   h.P.Datasets[0],
				Algorithm: fmt.Sprintf("%s (%s)", a.Name(), mode),
				Success:   r.SuccessRate(),
				MeanDelay: r.MeanDelay(),
			})
		}
	}
	return out, nil
}

func renderAB3(h *Harness, w io.Writer) error {
	rows, err := h.ComputeAB3()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-30s %10s %14s\n", "algorithm (copy mode)", "success", "avg delay (s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %10.3f %14.0f\n", r.Algorithm, r.Success, r.MeanDelay)
	}
	fmt.Fprintln(w, "check: replication dominates relaying (more holders, same minimal progress)")
	return nil
}

// ComputeAB4 contrasts the pair-type spread of T1/TE on a homogeneous
// trace against the heterogeneous conference trace: with equal rates
// the in/out structure collapses.
func (h *Harness) ComputeAB4() (hom, het []PairTypeExplosion, err error) {
	het, err = h.ComputeFig08()
	if err != nil {
		return nil, nil, err
	}
	homTrace, err := tracegen.Homogeneous("homogeneous", 98, tracegen.ConferenceHorizon, 0.023, 25, 55)
	if err != nil {
		return nil, nil, err
	}
	enum, err := pathenum.NewEnumerator(homTrace, pathenum.Options{K: h.P.K, Workers: h.P.Workers})
	if err != nil {
		return nil, nil, err
	}
	cl := trace.NewClassifier(homTrace)
	msgs := h.ablationMessages(h.P.Messages / 2)
	results, err := enum.EnumerateAll(msgs)
	if err != nil {
		return nil, nil, err
	}
	byType := map[trace.PairType][][2]float64{}
	for i, res := range results {
		s := res.ExplosionSummary(h.P.K)
		if !s.Exploded {
			continue
		}
		pt := cl.Classify(msgs[i].Src, msgs[i].Dst)
		byType[pt] = append(byType[pt], [2]float64{s.T1, s.TE})
	}
	for _, pt := range trace.PairTypes {
		var t1s, tes []float64
		for _, v := range byType[pt] {
			t1s = append(t1s, v[0])
			tes = append(tes, v[1])
		}
		row := PairTypeExplosion{Type: pt, N: len(t1s)}
		if len(t1s) > 0 {
			row.MeanT1 = stats.Mean(t1s)
			row.MedianT1 = stats.Median(t1s)
			row.MeanTE = stats.Mean(tes)
			row.MedianTE = stats.Median(tes)
		}
		hom = append(hom, row)
	}
	return hom, het, nil
}

func renderAB4(h *Harness, w io.Writer) error {
	hom, het, err := h.ComputeAB4()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "heterogeneous (conference) trace:")
	fmt.Fprintf(w, "  %-8s %4s %10s %10s\n", "pair", "n", "meanT1", "meanTE")
	for _, r := range het {
		fmt.Fprintf(w, "  %-8s %4d %10.0f %10.0f\n", r.Type, r.N, r.MeanT1, r.MeanTE)
	}
	fmt.Fprintln(w, "homogeneous trace (equal rates):")
	fmt.Fprintf(w, "  %-8s %4s %10s %10s\n", "pair", "n", "meanT1", "meanTE")
	for _, r := range hom {
		fmt.Fprintf(w, "  %-8s %4d %10.0f %10.0f\n", r.Type, r.N, r.MeanT1, r.MeanTE)
	}
	fmt.Fprintln(w, "check: pair-type differences collapse when rates are equal")
	return nil
}

func init() {
	register(Figure{ID: "AB1", Title: "Ablation: discretization step Δ", Render: renderAB1})
	register(Figure{ID: "AB2", Title: "Ablation: arrival budget / table width k", Render: renderAB2})
	register(Figure{ID: "AB3", Title: "Ablation: replicate vs relay copy semantics", Render: renderAB3})
	register(Figure{ID: "AB4", Title: "Ablation: homogeneous vs heterogeneous trace", Render: renderAB4})
}
