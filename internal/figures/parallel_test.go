package figures

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/tracegen"
)

// eqParams builds reduced-scale parameters with the given seed and
// worker count. Small enough that the Workers=1 arm of each
// comparison stays fast, large enough that studies, sweeps and
// ablations all do real work.
func eqParams(seed int64, workers int) Params {
	return Params{
		Messages: 6,
		K:        50,
		SimRuns:  2,
		MsgRate:  0.03,
		Seed:     seed,
		Datasets: []tracegen.Dataset{tracegen.Infocom0912, tracegen.Conext0912},
		Workers:  workers,
	}
}

// studyKey reduces a study to comparable per-message identities plus
// the arrival path strings.
func studyKey(s *Study) []string {
	var out []string
	for _, r := range s.Results {
		out = append(out, fmt.Sprintf("%d->%d@%g exhausted=%v", r.Msg.Src, r.Msg.Dst, r.Msg.Start, r.Exhausted))
		for _, p := range r.Arrivals {
			out = append(out, p.String())
		}
	}
	return out
}

// The harness determinism contract: studies, simulation sweeps and
// every rendered figure are byte-identical for Workers=1 and
// Workers=N, across multiple seeds.
func TestHarnessSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("harness equivalence sweep is slow")
	}
	for _, seed := range []int64{1, 2, 7} {
		serial := NewHarness(eqParams(seed, 1))
		parallel := NewHarness(eqParams(seed, 8))

		for _, d := range serial.P.Datasets {
			ss, err := serial.Study(d)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := parallel.Study(d)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(studyKey(ss), studyKey(ps)) {
				t.Errorf("seed %d %v: parallel study diverges from serial", seed, d)
			}
			sr, err := serial.Simulate(d)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := parallel.Simulate(d)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sr, pr) {
				t.Errorf("seed %d %v: parallel simulation sweep diverges from serial", seed, d)
			}
		}

		// Figures that consume the studies and sweeps (the analytic
		// figures A1/A2 run fixed internal seeds and no harness
		// parallelism; rendering them twice here would only cost time).
		for _, id := range []string{"F04a", "F04b", "F05", "F06", "F09", "F10", "F12", "F13", "AB1", "AB2", "AB3", "AB4", "X1"} {
			f, ok := Lookup(id)
			if !ok {
				t.Fatalf("unknown figure %s", id)
			}
			var sbuf, pbuf bytes.Buffer
			if err := serial.RenderOne(f, &sbuf); err != nil {
				t.Fatal(err)
			}
			if err := parallel.RenderOne(f, &pbuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sbuf.Bytes(), pbuf.Bytes()) {
				t.Errorf("seed %d figure %s: parallel render diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					seed, id, sbuf.String(), pbuf.String())
			}
		}
	}
}

// Precompute must fill the caches the renderers read, concurrently and
// without duplicated computation.
func TestPrecomputeFillsCaches(t *testing.T) {
	h := NewHarness(eqParams(3, 4))
	if err := h.Precompute(); err != nil {
		t.Fatal(err)
	}
	for _, d := range h.P.Datasets {
		before, err := h.Study(d)
		if err != nil {
			t.Fatal(err)
		}
		again, err := h.Study(d)
		if err != nil {
			t.Fatal(err)
		}
		if before != again {
			t.Errorf("%v: study recomputed after Precompute", d)
		}
		s1, err := h.Simulate(d)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := h.Simulate(d)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.ValueOf(s1).Pointer() != reflect.ValueOf(s2).Pointer() {
			t.Errorf("%v: simulation sweep recomputed after Precompute", d)
		}
	}
}

// A single shared Harness hammered from many goroutines: every caller
// must observe the same cached values, with each study and sweep
// computed exactly once.
func TestHarnessConcurrentStress(t *testing.T) {
	h := NewHarness(eqParams(5, 2))
	d := h.P.Datasets[0]
	var wg sync.WaitGroup
	studies := make([]*Study, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0:
				st, err := h.Study(d)
				if err != nil {
					t.Error(err)
					return
				}
				studies[g] = st
			case 1:
				if _, err := h.Simulate(d); err != nil {
					t.Error(err)
				}
			default:
				_ = h.Trace(d)
			}
		}(g)
	}
	wg.Wait()
	var want *Study
	for _, st := range studies {
		if st == nil {
			continue
		}
		if want == nil {
			want = st
		} else if st != want {
			t.Error("concurrent callers observed different study instances")
		}
	}
	if want == nil {
		t.Fatal("no study computed")
	}
}
