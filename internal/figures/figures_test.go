package figures

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// testHarness builds a harness scaled down for fast tests: fewer
// messages, a small explosion threshold and two datasets.
func testHarness() *Harness {
	return NewHarness(Params{
		Messages: 8,
		K:        60,
		SimRuns:  2,
		MsgRate:  0.05,
		Seed:     1,
		Datasets: []tracegen.Dataset{tracegen.Infocom0912, tracegen.Conext0912},
	})
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Messages != 40 || p.K != 2000 || p.SimRuns != 10 {
		t.Errorf("defaults = %+v", p)
	}
	if p.MsgRate != 0.25 || len(p.Datasets) != 4 {
		t.Errorf("defaults = %+v", p)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"A1", "A2", "AB1", "AB2", "AB3", "AB4",
		"F01", "F04a", "F04b", "F05", "F06", "F07",
		"F08", "F09", "F10", "F11", "F12", "F13", "F14", "F15",
		"X1",
	}
	figs := All()
	if len(figs) != len(want) {
		t.Fatalf("registry size = %d, want %d", len(figs), len(want))
	}
	for i, id := range want {
		if figs[i].ID != id {
			t.Errorf("figure %d = %s, want %s", i, figs[i].ID, id)
		}
		if figs[i].Title == "" || figs[i].Render == nil {
			t.Errorf("figure %s incomplete", figs[i].ID)
		}
	}
	if _, ok := Lookup("F05"); !ok {
		t.Errorf("Lookup(F05) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Errorf("Lookup(nope) succeeded")
	}
}

func TestTraceCaching(t *testing.T) {
	h := testHarness()
	a := h.Trace(tracegen.Infocom0912)
	b := h.Trace(tracegen.Infocom0912)
	if a != b {
		t.Errorf("trace not cached")
	}
}

func TestStudyCachingAndShape(t *testing.T) {
	h := testHarness()
	st, err := h.Study(tracegen.Infocom0912)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != h.P.Messages {
		t.Errorf("results = %d, want %d", len(st.Results), h.P.Messages)
	}
	st2, err := h.Study(tracegen.Infocom0912)
	if err != nil {
		t.Fatal(err)
	}
	if st != st2 {
		t.Errorf("study not cached")
	}
	sums := st.Summaries(h.P.K)
	if len(sums) != len(st.Results) {
		t.Errorf("summaries = %d", len(sums))
	}
}

func TestComputeFig01(t *testing.T) {
	h := testHarness()
	series := h.ComputeFig01()
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	for _, ts := range series {
		if len(ts.Bins) < 170 {
			t.Errorf("%v: only %d bins", ts.Dataset, len(ts.Bins))
		}
		total := 0
		for _, b := range ts.Bins {
			total += b
		}
		if total == 0 {
			t.Errorf("%v: empty time series", ts.Dataset)
		}
	}
}

func TestComputeFig04(t *testing.T) {
	h := testHarness()
	a, err := h.ComputeFig04a()
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.ComputeFig04b()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("dataset rows = %d/%d, want 2/2", len(a), len(b))
	}
	// In these dense conference traces most sampled messages deliver.
	if len(a[0].Values) == 0 {
		t.Errorf("no optimal durations found")
	}
	for _, v := range a[0].Values {
		if v < 0 {
			t.Errorf("negative T1 %g", v)
		}
	}
	for _, v := range b[0].Values {
		if v < 0 {
			t.Errorf("negative TE %g", v)
		}
	}
	// TE <= T_K - T1 <= horizon; and TE values require explosion, so
	// there are at most as many TE as T1 samples.
	if len(b[0].Values) > len(a[0].Values) {
		t.Errorf("more TE than T1 samples")
	}
}

func TestComputeFig05And08(t *testing.T) {
	h := testHarness()
	pts, err := h.ComputeFig05()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := h.ComputeFig08()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("pair-type rows = %d, want 4", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.N
	}
	if total != len(pts) {
		t.Errorf("pair split lost points: %d vs %d", total, len(pts))
	}
}

func TestComputeFig06(t *testing.T) {
	h := testHarness()
	// Use threshold 0 so every exploded message qualifies in the small
	// test sample.
	gs, err := h.ComputeFig06(0)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Messages == 0 {
		t.Fatalf("no messages in growth summary")
	}
	for i := 1; i < len(gs.MeanTotal); i++ {
		if gs.MeanTotal[i] < gs.MeanTotal[i-1] {
			t.Errorf("mean cumulative paths decreased at offset %g", gs.Offsets[i])
		}
	}
}

func TestComputeFig07(t *testing.T) {
	h := testHarness()
	cdfs, err := h.ComputeFig07()
	if err != nil {
		t.Fatal(err)
	}
	if len(cdfs) != 2 {
		t.Fatalf("cdfs = %d", len(cdfs))
	}
	inf := cdfs[0].ECDF.Max()
	con := cdfs[1].ECDF.Max()
	if con >= inf {
		t.Errorf("CoNext max count %g should be below Infocom %g", con, inf)
	}
}

func TestComputeFig09And13(t *testing.T) {
	h := testHarness()
	rows, err := h.ComputeFig09()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*6 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	var epi, others []PerfRow
	for _, r := range rows {
		if r.Dataset != tracegen.Infocom0912 {
			continue
		}
		if r.Algorithm == "Epidemic" {
			epi = append(epi, r)
		} else {
			others = append(others, r)
		}
	}
	for _, o := range others {
		if o.Success > epi[0].Success+1e-9 {
			t.Errorf("%s success %g exceeds epidemic %g", o.Algorithm, o.Success, epi[0].Success)
		}
	}
	p13, err := h.ComputeFig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(p13) != 4*6 {
		t.Errorf("fig13 rows = %d, want 24", len(p13))
	}
}

func TestComputeFig10(t *testing.T) {
	h := testHarness()
	dists, err := h.ComputeFig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) == 0 {
		t.Fatalf("no delay distributions")
	}
	for _, d := range dists {
		if d.ECDF.Min() < 0 {
			t.Errorf("negative delay in %s/%v", d.Algorithm, d.Dataset)
		}
	}
}

func TestComputeFig11(t *testing.T) {
	h := testHarness()
	rb, err := h.ComputeFig11()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range rb.Counts {
		total += c
	}
	if total == 0 {
		t.Errorf("no deliveries binned")
	}
}

func TestComputeFig12(t *testing.T) {
	h := testHarness()
	msgs, err := h.ComputeFig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if len(m.AlgDelay) != 6 {
			t.Errorf("algorithm delays = %d, want 6", len(m.AlgDelay))
		}
		epi := m.AlgDelay["Epidemic"]
		if math.IsNaN(epi) {
			t.Errorf("epidemic failed on an enumerated-deliverable message")
			continue
		}
		// Epidemic achieves the optimal delay; enumeration's T1 is
		// measured on the Δ grid, so allow one step of slack.
		if epi > m.T1+10+1e-9 {
			t.Errorf("epidemic delay %g exceeds T1 %g + Δ", epi, m.T1)
		}
	}
}

func TestComputeFig14And15(t *testing.T) {
	h := testHarness()
	rows, err := h.ComputeFig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("hop rows = %d", len(rows))
	}
	if rows[1].Mean <= rows[0].Mean {
		t.Errorf("first-hop mean rate %g should exceed source mean %g (climbing the gradient)",
			rows[1].Mean, rows[0].Mean)
	}
	ratios, err := h.ComputeFig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(ratios) == 0 {
		t.Fatalf("no ratio rows")
	}
	if ratios[0].Summary.Median <= 1 {
		t.Errorf("first transition median ratio %g should exceed 1", ratios[0].Summary.Median)
	}
}

func TestComputeA1(t *testing.T) {
	pts, err := ComputeA1(A1Params{N: 300, Lambda: 0.5, TMax: 6, MCRuns: 2, Samples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	last := pts[len(pts)-1]
	if rel := math.Abs(last.ODEMean-last.ClosedMean) / last.ClosedMean; rel > 0.05 {
		t.Errorf("ODE vs closed form diverge: %g vs %g", last.ODEMean, last.ClosedMean)
	}
	if last.MCMean <= 0 {
		t.Errorf("Monte Carlo mean = %g", last.MCMean)
	}
}

func TestComputeA2(t *testing.T) {
	rows, err := ComputeA2(48, 0.05, 900, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[3].MeanRate <= rows[0].MeanRate {
		t.Errorf("class rates not increasing")
	}
}

func TestComputeAB1AndAB2(t *testing.T) {
	h := testHarness()
	ab1, err := h.ComputeAB1()
	if err != nil {
		t.Fatal(err)
	}
	if len(ab1) != 3 {
		t.Fatalf("AB1 arms = %d", len(ab1))
	}
	ab2, err := h.ComputeAB2()
	if err != nil {
		t.Fatal(err)
	}
	if len(ab2) != 3 {
		t.Fatalf("AB2 arms = %d", len(ab2))
	}
	// The optimal path does not depend on k: found counts match.
	if ab2[0].Found != ab2[2].Found {
		t.Errorf("found counts differ across k: %d vs %d", ab2[0].Found, ab2[2].Found)
	}
}

func TestComputeAB3(t *testing.T) {
	h := testHarness()
	rows, err := h.ComputeAB3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("AB3 rows = %d", len(rows))
	}
	// Replication should never do worse on success than relaying for
	// the same algorithm.
	for i := 0; i < 3; i++ {
		rep, rel := rows[i], rows[i+3]
		if rel.Success > rep.Success+1e-9 {
			t.Errorf("relay success %g exceeds replicate %g for %s", rel.Success, rep.Success, rep.Algorithm)
		}
	}
}

func TestComputeAB4(t *testing.T) {
	h := testHarness()
	hom, het, err := h.ComputeAB4()
	if err != nil {
		t.Fatal(err)
	}
	if len(hom) != 4 || len(het) != 4 {
		t.Fatalf("rows = %d/%d", len(hom), len(het))
	}
}

func TestRenderAll(t *testing.T) {
	if testing.Short() {
		t.Skip("rendering all figures is slow")
	}
	h := testHarness()
	var buf bytes.Buffer
	if err := h.RenderAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, f := range All() {
		if !strings.Contains(out, "=== "+f.ID+":") {
			t.Errorf("output missing figure %s", f.ID)
		}
	}
	if strings.Contains(out, "NaN") {
		// NaN can legitimately appear for empty pair-type cells in the
		// scaled-down test sample; make sure it is not pervasive.
		if strings.Count(out, "NaN") > 40 {
			t.Errorf("excessive NaN in rendered output")
		}
	}
}

var _ = trace.NodeID(0)

func TestComputeX1(t *testing.T) {
	h := testHarness()
	rows, err := h.ComputeX1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("X1 rows = %d, want 6", len(rows))
	}
	var epi, direct *CostRow
	for i := range rows {
		if rows[i].Algorithm == "Epidemic" {
			epi = &rows[i]
		}
		if rows[i].TxPerMsg < 0 {
			t.Errorf("%s: negative cost", rows[i].Algorithm)
		}
	}
	_ = direct
	if epi == nil || epi.TxPerMsg == 0 {
		t.Fatalf("epidemic cost missing")
	}
	// Epidemic floods: it must be the most expensive algorithm.
	for _, r := range rows {
		if r.TxPerMsg > epi.TxPerMsg+1e-9 {
			t.Errorf("%s txs/msg %.1f exceeds epidemic %.1f", r.Algorithm, r.TxPerMsg, epi.TxPerMsg)
		}
	}
}
