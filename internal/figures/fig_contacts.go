package figures

import (
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/tracegen"
)

// Figure 1: time series of total contacts over all nodes, 1-minute
// bins, for each dataset.

// TimeSeries is one dataset's binned contact counts.
type TimeSeries struct {
	Dataset tracegen.Dataset
	BinSize float64
	Bins    []int
}

// ComputeFig01 bins each dataset's contacts per minute.
func (h *Harness) ComputeFig01() []TimeSeries {
	out := make([]TimeSeries, 0, len(h.P.Datasets))
	for _, d := range h.P.Datasets {
		out = append(out, TimeSeries{
			Dataset: d,
			BinSize: 60,
			Bins:    h.Trace(d).TotalContactsPerBin(60),
		})
	}
	return out
}

func renderFig01(h *Harness, w io.Writer) error {
	for _, ts := range h.ComputeFig01() {
		xs := make([]float64, len(ts.Bins))
		for i, b := range ts.Bins {
			xs[i] = float64(b)
		}
		fmt.Fprintf(w, "%-16s min/mean/max contacts per minute: %.0f / %.1f / %.0f\n",
			ts.Dataset, stats.Quantile(xs, 0), stats.Mean(xs), stats.Quantile(xs, 1))
		fmt.Fprintf(w, "  minute:  ")
		for m := 0; m < len(ts.Bins); m += 15 {
			fmt.Fprintf(w, "%6d", m)
		}
		fmt.Fprintf(w, "\n  contacts:")
		for m := 0; m < len(ts.Bins); m += 15 {
			fmt.Fprintf(w, "%6d", ts.Bins[m])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure 7: cumulative distribution of per-node contact counts.

// CountCDF is one dataset's per-node contact count distribution.
type CountCDF struct {
	Dataset tracegen.Dataset
	Counts  []float64
	ECDF    *stats.ECDF
}

// ComputeFig07 builds each dataset's contact-count ECDF.
func (h *Harness) ComputeFig07() ([]CountCDF, error) {
	out := make([]CountCDF, 0, len(h.P.Datasets))
	for _, d := range h.P.Datasets {
		counts := h.Trace(d).ContactCounts()
		xs := make([]float64, len(counts))
		for i, c := range counts {
			xs[i] = float64(c)
		}
		e, err := stats.NewECDF(xs)
		if err != nil {
			return nil, err
		}
		out = append(out, CountCDF{Dataset: d, Counts: xs, ECDF: e})
	}
	return out, nil
}

func renderFig07(h *Harness, w io.Writer) error {
	cdfs, err := h.ComputeFig07()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s %8s %10s\n",
		"dataset", "p10", "p25", "p50", "p75", "p90", "max")
	for _, c := range cdfs {
		fmt.Fprintf(w, "%-16s %8.0f %8.0f %8.0f %8.0f %8.0f %10.0f\n",
			c.Dataset,
			c.ECDF.Quantile(0.10), c.ECDF.Quantile(0.25), c.ECDF.Quantile(0.50),
			c.ECDF.Quantile(0.75), c.ECDF.Quantile(0.90), c.ECDF.Max())
	}
	fmt.Fprintln(w, "shape check: quantiles of a Uniform(0,max) distribution are ~linear in p")
	return nil
}

func init() {
	register(Figure{ID: "F01", Title: "Time series of total contacts (1-minute bins)", Render: renderFig01})
	register(Figure{ID: "F07", Title: "CDF of per-node contact counts", Render: renderFig07})
}
