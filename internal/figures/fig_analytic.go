package figures

import (
	"fmt"
	"io"
	"math"

	"repro/internal/analytic"
	"repro/internal/stats"
)

// Experiment A1: validate the §5.1 homogeneous model three ways — the
// truncated ODE integrator, the closed forms (Eq 2/4 and the corrected
// variance), and the finite-N Monte-Carlo jump process.

// ModelPoint compares the three computations at one time.
type ModelPoint struct {
	T          float64
	ODEMean    float64
	ClosedMean float64
	MCMean     float64
	ODEVar     float64
	ClosedVar  float64
}

// A1Params scales the analytic validation.
type A1Params struct {
	N       int     // population (default 1000)
	Lambda  float64 // contact rate (default 0.5)
	TMax    float64 // horizon (default 10: mean reaches ~0.15 paths/node)
	MCRuns  int     // Monte-Carlo repetitions (default 5)
	Samples int     // time samples (default 6)
}

func (p A1Params) withDefaults() A1Params {
	if p.N == 0 {
		p.N = 1000
	}
	if p.Lambda == 0 {
		p.Lambda = 0.5
	}
	if p.TMax == 0 {
		p.TMax = 10
	}
	if p.MCRuns == 0 {
		p.MCRuns = 5
	}
	if p.Samples == 0 {
		p.Samples = 6
	}
	return p
}

// ComputeA1 runs the three-way validation.
func ComputeA1(p A1Params) ([]ModelPoint, error) {
	p = p.withDefaults()
	const K = 120
	u0 := analytic.SourceInitial(p.N, K)
	ode, err := analytic.SolveODE(u0, analytic.ODEConfig{
		Lambda: p.Lambda, K: K, Step: 0.01, TMax: p.TMax, Snapshots: p.Samples,
	})
	if err != nil {
		return nil, err
	}
	// Monte-Carlo means, averaged over runs, at the same sample times.
	mc := make([]float64, p.Samples)
	for run := 0; run < p.MCRuns; run++ {
		sol, err := analytic.SimulateJump(analytic.JumpConfig{
			N: p.N, Lambda: p.Lambda, TMax: p.TMax, Snapshots: p.Samples,
			MaxState: 1 << 20, Seed: int64(run + 1),
		})
		if err != nil {
			return nil, err
		}
		for i := range mc {
			mc[i] += sol.MeanPaths(i) / float64(p.MCRuns)
		}
	}
	mean0 := 1.0 / float64(p.N)
	var0 := mean0 - mean0*mean0
	out := make([]ModelPoint, p.Samples)
	for i, t := range ode.Times {
		out[i] = ModelPoint{
			T:          t,
			ODEMean:    ode.MeanPaths(i),
			ClosedMean: analytic.MeanClosedForm(mean0, p.Lambda, t),
			MCMean:     mc[i],
			ODEVar:     ode.VariancePaths(i),
			ClosedVar:  analytic.VarianceClosedForm(mean0, var0, p.Lambda, t),
		}
	}
	return out, nil
}

func renderA1(h *Harness, w io.Writer) error {
	p := A1Params{}.withDefaults()
	pts, err := ComputeA1(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "N=%d, lambda=%g: mean paths per node (Eq 4 predicts e^{λt}/N)\n", p.N, p.Lambda)
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s %12s\n", "t", "ODE", "closed", "MonteCarlo", "ODE var", "closed var")
	for _, pt := range pts {
		fmt.Fprintf(w, "%8.1f %12.5f %12.5f %12.5f %12.6f %12.6f\n",
			pt.T, pt.ODEMean, pt.ClosedMean, pt.MCMean, pt.ODEVar, pt.ClosedVar)
	}
	fmt.Fprintf(w, "hitting time H = ln(N)/lambda = %.1f s\n", analytic.HittingTime(p.N, p.Lambda))
	fmt.Fprintln(w, "note: the paper's printed variance formula has E[S(0)] where the")
	fmt.Fprintln(w, "derivation yields E[S(0)]^2; the table uses the corrected form")
	return nil
}

// Experiment A2: subset path explosion under heterogeneous rates — the
// growth rate of the mean path count within a rate class tracks the
// class's contact rate (§5.2).

// SubsetRow reports one rate class's explosion timing: the early
// exponential growth rate (fitted before saturation) and the time its
// mean path count first crosses 1000.
type SubsetRow struct {
	Class        int // 0 = lowest-rate quartile
	MeanRate     float64
	GrowthRate   float64 // fitted on the pre-saturation window
	CrossingTime float64 // first time the class mean exceeds 1000 (+Inf if never)
}

// ComputeA2 simulates the heterogeneous jump process with uniform
// rates and measures per-class explosion timing, averaged over seeds.
func ComputeA2(numNodes int, maxRate, tmax float64, seed int64) ([]SubsetRow, error) {
	rates := make([]float64, numNodes)
	for i := range rates {
		rates[i] = maxRate * float64(i+1) / float64(numNodes)
	}
	sg, err := analytic.SimulateHeterogeneous(analytic.HeterogeneousConfig{
		Rates: rates, TMax: tmax, Snapshots: 80, MaxState: 1e15,
		Seed: seed, Source: numNodes - 1,
	})
	if err != nil {
		return nil, err
	}
	var out []SubsetRow
	for c := 0; c < 4; c++ {
		// Fit growth only on the pre-saturation window (means between
		// 10^-3 and 10^6): beyond it the MaxState cap flattens the
		// curve and washes out class differences.
		var ts, ys []float64
		crossing := math.Inf(1)
		for i, m := range sg.MeanPaths[c] {
			if m > 1e-3 && m < 1e6 {
				ts = append(ts, sg.Times[i])
				ys = append(ys, m)
			}
			if m >= 1000 && math.IsInf(crossing, 1) {
				crossing = sg.Times[i]
			}
		}
		out = append(out, SubsetRow{
			Class:        c,
			MeanRate:     sg.Rates[c],
			GrowthRate:   stats.ExpGrowthRate(ts, ys),
			CrossingTime: crossing,
		})
	}
	return out, nil
}

func renderA2(h *Harness, w io.Writer) error {
	rows, err := ComputeA2(96, 0.05, 1200, 7)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %12s %16s %18s\n", "quartile", "mean rate", "growth rate /s", "t(mean>1000) s")
	for _, r := range rows {
		g := "n/a"
		if !math.IsNaN(r.GrowthRate) {
			g = fmt.Sprintf("%.5f", r.GrowthRate)
		}
		cross := "never"
		if !math.IsInf(r.CrossingTime, 1) {
			cross = fmt.Sprintf("%.0f", r.CrossingTime)
		}
		fmt.Fprintf(w, "%8d %12.5f %16s %18s\n", r.Class, r.MeanRate, g, cross)
	}
	fmt.Fprintln(w, "paper check: higher-rate classes accumulate paths sooner (subset explosion)")
	return nil
}

func init() {
	register(Figure{ID: "A1", Title: "Homogeneous model: ODE vs closed form vs Monte Carlo", Render: renderA1})
	register(Figure{ID: "A2", Title: "Subset path explosion under heterogeneous rates", Render: renderA2})
}
