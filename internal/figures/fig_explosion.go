package figures

import (
	"fmt"
	"io"
	"math"

	"repro/internal/pathenum"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Figures 4, 5, 6, 8, 11, 14 and 15 all derive from the enumeration
// studies.

// explosionDatasets picks the datasets shown in the explosion figures
// (the paper uses the two Infocom windows for Fig 4; we honor the
// harness dataset selection, using the first two).
func (h *Harness) explosionDatasets() []tracegen.Dataset {
	if len(h.P.Datasets) <= 2 {
		return h.P.Datasets
	}
	return h.P.Datasets[:2]
}

// DurationCDFs holds, per dataset, the sample of a per-message
// duration statistic (T1 for Fig 4a, TE for Fig 4b).
type DurationCDFs struct {
	Dataset tracegen.Dataset
	Values  []float64
}

// ComputeFig04a collects optimal path durations T1 per dataset.
func (h *Harness) ComputeFig04a() ([]DurationCDFs, error) {
	var out []DurationCDFs
	for _, d := range h.explosionDatasets() {
		st, err := h.Study(d)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, s := range st.Summaries(h.P.K) {
			if s.Found {
				vals = append(vals, s.T1)
			}
		}
		out = append(out, DurationCDFs{Dataset: d, Values: vals})
	}
	return out, nil
}

// ComputeFig04b collects times to explosion TE per dataset.
func (h *Harness) ComputeFig04b() ([]DurationCDFs, error) {
	var out []DurationCDFs
	for _, d := range h.explosionDatasets() {
		st, err := h.Study(d)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, s := range st.Summaries(h.P.K) {
			if s.Exploded {
				vals = append(vals, s.TE)
			}
		}
		out = append(out, DurationCDFs{Dataset: d, Values: vals})
	}
	return out, nil
}

func renderDurationCDFs(w io.Writer, cdfs []DurationCDFs, thresh float64, above bool) error {
	fmt.Fprintf(w, "%-16s %5s %8s %8s %8s %8s %8s", "dataset", "n", "p10", "p25", "p50", "p75", "p90")
	if above {
		fmt.Fprintf(w, " %12s\n", fmt.Sprintf("P[>%gs]", thresh))
	} else {
		fmt.Fprintf(w, " %12s\n", fmt.Sprintf("P[<=%gs]", thresh))
	}
	for _, c := range cdfs {
		if len(c.Values) == 0 {
			fmt.Fprintf(w, "%-16s %5d (no delivered messages)\n", c.Dataset, 0)
			continue
		}
		e, err := stats.NewECDF(c.Values)
		if err != nil {
			return err
		}
		frac := e.P(thresh)
		if above {
			frac = 1 - frac
		}
		fmt.Fprintf(w, "%-16s %5d %8.0f %8.0f %8.0f %8.0f %8.0f %12.2f\n",
			c.Dataset, len(c.Values),
			e.Quantile(0.10), e.Quantile(0.25), e.Quantile(0.50),
			e.Quantile(0.75), e.Quantile(0.90), frac)
	}
	return nil
}

func renderFig04a(h *Harness, w io.Writer) error {
	cdfs, err := h.ComputeFig04a()
	if err != nil {
		return err
	}
	// Paper: over 25% of messages need > 1000 s for the first path.
	return renderDurationCDFs(w, cdfs, 1000, true)
}

func renderFig04b(h *Harness, w io.Writer) error {
	cdfs, err := h.ComputeFig04b()
	if err != nil {
		return err
	}
	// Paper: 97% of messages have TE <= 150 s.
	return renderDurationCDFs(w, cdfs, 150, false)
}

// ScatterPoint is one message's (T1, TE) pair, labeled by pair type.
type ScatterPoint struct {
	T1, TE float64
	Type   trace.PairType
}

// ComputeFig05 returns the (T1, TE) scatter of the first dataset's
// study, with in/out labels (also feeding Fig 8).
func (h *Harness) ComputeFig05() ([]ScatterPoint, error) {
	d := h.P.Datasets[0]
	st, err := h.Study(d)
	if err != nil {
		return nil, err
	}
	var out []ScatterPoint
	for _, r := range st.Results {
		s := r.ExplosionSummary(h.P.K)
		if !s.Exploded {
			continue
		}
		out = append(out, ScatterPoint{T1: s.T1, TE: s.TE, Type: st.Cl.Classify(r.Msg.Src, r.Msg.Dst)})
	}
	return out, nil
}

func renderFig05(h *Harness, w io.Writer) error {
	pts, err := h.ComputeFig05()
	if err != nil {
		return err
	}
	if len(pts) == 0 {
		fmt.Fprintln(w, "(no exploded messages)")
		return nil
	}
	var t1s, tes []float64
	for _, p := range pts {
		t1s = append(t1s, p.T1)
		tes = append(tes, p.TE)
	}
	slope, _ := stats.LinearFit(t1s, tes)
	fmt.Fprintf(w, "%d messages; T1 range [%.0f, %.0f] s, TE range [%.0f, %.0f] s\n",
		len(pts), stats.Quantile(t1s, 0), stats.Quantile(t1s, 1),
		stats.Quantile(tes, 0), stats.Quantile(tes, 1))
	fmt.Fprintf(w, "linear fit TE ~ T1 slope: %.4f (paper: no clear relationship)\n", slope)
	fmt.Fprintf(w, "%10s %10s %s\n", "T1 (s)", "TE (s)", "pair")
	for i, p := range pts {
		if i >= 20 {
			fmt.Fprintf(w, "  ... %d more\n", len(pts)-20)
			break
		}
		fmt.Fprintf(w, "%10.0f %10.0f %s\n", p.T1, p.TE, p.Type)
	}
	return nil
}

// GrowthSummary aggregates Fig 6: the cumulative path counts over time
// since T1 for slow-explosion messages.
type GrowthSummary struct {
	Messages int
	// MeanTotal[i] is the mean cumulative path count at offset
	// Offsets[i] seconds after T1, over the slow messages.
	Offsets    []float64
	MeanTotal  []float64
	GrowthRate float64 // pooled exponential fit (per second)
}

// ComputeFig06 examines messages whose TE is at least minTE (the paper
// uses 150 s) in the first dataset.
func (h *Harness) ComputeFig06(minTE float64) (*GrowthSummary, error) {
	st, err := h.Study(h.P.Datasets[0])
	if err != nil {
		return nil, err
	}
	offsets := []float64{0, 25, 50, 75, 100, 125, 150, 175, 200, 225, 250}
	sum := make([]float64, len(offsets))
	var rates []float64
	n := 0
	for _, r := range st.Results {
		s := r.ExplosionSummary(h.P.K)
		if !s.Exploded || s.TE < minTE {
			continue
		}
		n++
		curve := r.GrowthCurve()
		for i, off := range offsets {
			sum[i] += float64(totalAt(curve, off))
		}
		if g := r.GrowthRate(); !math.IsNaN(g) {
			rates = append(rates, g)
		}
	}
	gs := &GrowthSummary{Messages: n, Offsets: offsets, GrowthRate: stats.Mean(rates)}
	gs.MeanTotal = make([]float64, len(offsets))
	for i := range offsets {
		if n > 0 {
			gs.MeanTotal[i] = sum[i] / float64(n)
		}
	}
	return gs, nil
}

func totalAt(curve []pathenum.GrowthPoint, offset float64) int {
	total := 0
	for _, p := range curve {
		if p.SinceT1 > offset {
			break
		}
		total = p.Total
	}
	return total
}

func renderFig06(h *Harness, w io.Writer) error {
	// The paper studies messages with TE >= 150 s; they are rare by
	// construction (97% of messages sit below 150 s), so on a small
	// sample fall back to lower thresholds until the slowest quartile
	// of explosions is covered.
	var gs *GrowthSummary
	var err error
	for _, minTE := range []float64{150, 100, 50, 25, 0} {
		gs, err = h.ComputeFig06(minTE)
		if err != nil {
			return err
		}
		if gs.Messages > 0 {
			fmt.Fprintf(w, "messages with TE >= %g s: %d\n", minTE, gs.Messages)
			break
		}
	}
	if gs.Messages == 0 {
		fmt.Fprintln(w, "(no exploded messages in the sample)")
		return nil
	}
	fmt.Fprintf(w, "%12s %14s\n", "since T1 (s)", "mean #paths")
	for i := range gs.Offsets {
		fmt.Fprintf(w, "%12.0f %14.1f\n", gs.Offsets[i], gs.MeanTotal[i])
	}
	fmt.Fprintf(w, "mean exponential growth rate: %.4f /s (paper: approximately exponential growth)\n",
		gs.GrowthRate)
	return nil
}

// PairTypeExplosion summarizes T1 and TE per in/out pair type (Fig 8).
type PairTypeExplosion struct {
	Type         trace.PairType
	N            int
	MeanT1       float64
	MedianT1     float64
	MeanTE       float64
	MedianTE     float64
	FracTELt150s float64
}

// ComputeFig08 splits the first dataset's scatter by pair type.
func (h *Harness) ComputeFig08() ([]PairTypeExplosion, error) {
	pts, err := h.ComputeFig05()
	if err != nil {
		return nil, err
	}
	var out []PairTypeExplosion
	for _, pt := range trace.PairTypes {
		var t1s, tes []float64
		lt := 0
		for _, p := range pts {
			if p.Type != pt {
				continue
			}
			t1s = append(t1s, p.T1)
			tes = append(tes, p.TE)
			if p.TE < 150 {
				lt++
			}
		}
		e := PairTypeExplosion{Type: pt, N: len(t1s)}
		if len(t1s) > 0 {
			e.MeanT1 = stats.Mean(t1s)
			e.MedianT1 = stats.Median(t1s)
			e.MeanTE = stats.Mean(tes)
			e.MedianTE = stats.Median(tes)
			e.FracTELt150s = float64(lt) / float64(len(t1s))
		}
		out = append(out, e)
	}
	return out, nil
}

func renderFig08(h *Harness, w io.Writer) error {
	rows, err := h.ComputeFig08()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %4s %10s %10s %10s %10s %12s\n",
		"pair", "n", "meanT1", "medT1", "meanTE", "medTE", "P[TE<150s]")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4d %10.0f %10.0f %10.0f %10.0f %12.2f\n",
			r.Type, r.N, r.MeanT1, r.MedianT1, r.MeanTE, r.MedianTE, r.FracTELt150s)
	}
	fmt.Fprintln(w, "expected ordering: T1 small for in-*, large for out-*; TE small for *-in, large for *-out")
	return nil
}

// ReceptionBins is Fig 11: deliveries of optimal and near-optimal
// paths binned by wall-clock time.
type ReceptionBins struct {
	BinSize float64
	Counts  []int
}

// ComputeFig11 bins all path arrival times (absolute, not relative)
// across the first dataset's study.
func (h *Harness) ComputeFig11() (*ReceptionBins, error) {
	st, err := h.Study(h.P.Datasets[0])
	if err != nil {
		return nil, err
	}
	const bin = 600 // 10-minute bins
	nbins := int(st.Trace.Horizon/bin) + 1
	rb := &ReceptionBins{BinSize: bin, Counts: make([]int, nbins)}
	for _, r := range st.Results {
		for _, c := range r.ArrivalCounts() {
			b := int(c.Time / bin)
			if b >= nbins {
				b = nbins - 1
			}
			rb.Counts[b] += c.Count
		}
	}
	return rb, nil
}

func renderFig11(h *Harness, w io.Writer) error {
	rb, err := h.ComputeFig11()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%12s %12s %12s\n", "minute", "deliveries", "cumulative")
	cum := 0
	for i, c := range rb.Counts {
		cum += c
		fmt.Fprintf(w, "%12.0f %12d %12d\n", float64(i)*rb.BinSize/60, c, cum)
	}
	fmt.Fprintln(w, "paper check: delivery rate is fairly uniform in time (no bursts)")
	return nil
}

// HopRateRow is Fig 14: the mean contact rate of nodes at each hop of
// near-optimal paths, with a 99% confidence half-width.
type HopRateRow = pathenum.HopRateSummary

// ComputeFig14 pools the delivered paths of the first dataset's study.
func (h *Harness) ComputeFig14() ([]HopRateRow, error) {
	st, err := h.Study(h.P.Datasets[0])
	if err != nil {
		return nil, err
	}
	return pathenum.SummarizeHopRates(pathenum.HopRates(st.Paths(), st.Trace.Rates()), stats.Z99), nil
}

func renderFig14(h *Harness, w io.Writer) error {
	rows, err := h.ComputeFig14()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%5s %12s %12s %10s\n", "hop", "mean rate", "99% CI", "samples")
	for _, r := range rows {
		if r.Hop > 10 {
			break
		}
		fmt.Fprintf(w, "%5d %12.5f %12.5f %10d\n", r.Hop, r.Mean, r.CI, r.N)
	}
	fmt.Fprintln(w, "paper check: mean rate increases over the first ~3 hops, then levels off")
	return nil
}

// RatioRow is Fig 15: the five-number summary of consecutive-hop rate
// ratios at each transition.
type RatioRow struct {
	Transition int
	N          int
	Summary    stats.FiveNum
}

// ComputeFig15 pools rate ratios along delivered paths.
func (h *Harness) ComputeFig15() ([]RatioRow, error) {
	st, err := h.Study(h.P.Datasets[0])
	if err != nil {
		return nil, err
	}
	var out []RatioRow
	for i, ratios := range pathenum.RateRatios(st.Paths(), st.Trace.Rates()) {
		if len(ratios) == 0 {
			continue
		}
		fn, err := stats.Summarize(ratios)
		if err != nil {
			return nil, err
		}
		out = append(out, RatioRow{Transition: i, N: len(ratios), Summary: fn})
	}
	return out, nil
}

func renderFig15(h *Harness, w io.Writer) error {
	rows, err := h.ComputeFig15()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %8s %8s %8s %8s\n", "transition", "n", "q1", "median", "q3")
	for _, r := range rows {
		if r.Transition > 8 {
			break
		}
		fmt.Fprintf(w, "%9d→ %8d %8.2f %8.2f %8.2f\n",
			r.Transition, r.N, r.Summary.Q1, r.Summary.Median, r.Summary.Q3)
	}
	fmt.Fprintln(w, "paper check: early-hop ratios sit above 1 (paths climb the rate gradient)")
	return nil
}

func init() {
	register(Figure{ID: "F04a", Title: "CDF of optimal path duration T1", Render: renderFig04a})
	register(Figure{ID: "F04b", Title: "CDF of time to explosion TE", Render: renderFig04b})
	register(Figure{ID: "F05", Title: "Optimal path duration vs time to explosion", Render: renderFig05})
	register(Figure{ID: "F06", Title: "Path count growth for slow explosions (TE >= 150 s)", Render: renderFig06})
	register(Figure{ID: "F08", Title: "T1 vs TE by pair type (in/out)", Render: renderFig08})
	register(Figure{ID: "F11", Title: "Message reception times (cumulative deliveries)", Render: renderFig11})
	register(Figure{ID: "F14", Title: "Mean contact rate per hop of near-optimal paths", Render: renderFig14})
	register(Figure{ID: "F15", Title: "Rate ratios of consecutive hops (box summaries)", Render: renderFig15})
}
