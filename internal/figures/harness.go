// Package figures regenerates every figure of the paper's evaluation
// as printed tables and series: Fig 1 (contact time series), Figs 4-6
// and 8 (path explosion), Fig 7 (contact-count CDFs), Figs 9-13
// (forwarding-algorithm performance), Figs 14-15 (hop-rate structure),
// plus the analytic-model validation experiments (A1, A2) and the
// ablations called out in DESIGN.md (AB1-AB4).
//
// A Harness caches the generated datasets, the per-message enumeration
// results, and the simulation results, so regenerating all figures
// costs one enumeration study and one simulation sweep per dataset.
package figures

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/dtnsim"
	"repro/internal/engine"
	"repro/internal/forward"
	"repro/internal/pathenum"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Params scales the experiment harness. The zero value selects
// paper-scale defaults; tests and benchmarks use reduced values.
type Params struct {
	// Messages is the number of random messages enumerated per dataset
	// for the path-explosion figures (the paper does not state its
	// sample size). Default 40, which keeps a full harness run under
	// half an hour on one core.
	Messages int
	// K is the explosion threshold (paper: 2000 paths).
	K int
	// SimRuns is the number of independent workload seeds averaged in
	// the forwarding figures (paper: 10).
	SimRuns int
	// MsgRate is the workload rate in messages/second (paper: 1 per 4 s).
	MsgRate float64
	// GenFraction is the fraction of the trace during which messages
	// are generated (paper: first 2 of 3 hours).
	GenFraction float64
	// Seed drives message sampling.
	Seed int64
	// Datasets lists the datasets to analyze; nil means all four.
	Datasets []tracegen.Dataset
	// Workers caps the goroutines used across the harness's parallel
	// stages: per-message enumeration within a study, per-(algorithm,
	// seed) simulation runs, and per-dataset precomputation. Zero
	// means runtime.GOMAXPROCS(0); 1 forces a fully serial harness.
	// Message sampling stays serial and seed-driven, so every figure
	// is byte-identical for every worker count.
	Workers int
}

func (p Params) withDefaults() Params {
	if p.Messages == 0 {
		p.Messages = 40
	}
	if p.K == 0 {
		p.K = 2000
	}
	if p.SimRuns == 0 {
		p.SimRuns = 10
	}
	if p.MsgRate == 0 {
		p.MsgRate = 0.25
	}
	if p.GenFraction == 0 {
		p.GenFraction = 2.0 / 3.0
	}
	if p.Datasets == nil {
		p.Datasets = tracegen.Datasets[:]
	}
	return p
}

// Harness caches datasets and computed studies across figures. A
// Harness is safe for concurrent use: each cache entry is computed
// exactly once (concurrent requests for the same key block on the
// first computation) and the computed values are immutable.
type Harness struct {
	P Params

	mu      sync.Mutex
	traces  map[tracegen.Dataset]*memo[*trace.Trace]
	studies map[tracegen.Dataset]*memo[*Study]
	sims    map[tracegen.Dataset]*memo[map[string]*dtnsim.Result]
	sweeps  map[tracegen.Dataset]*memo[*dtnsim.Sweep]
}

// memo is a single-flight cache slot: the first caller computes, every
// other caller for the same key waits and shares the result.
type memo[V any] struct {
	once sync.Once
	val  V
	err  error
}

// memoized returns m[k]'s value, computing it at most once under the
// harness lock discipline: the lock guards only the map lookup, the
// computation itself runs outside it so distinct keys compute in
// parallel.
func memoized[K comparable, V any](mu *sync.Mutex, m map[K]*memo[V], k K, f func() (V, error)) (V, error) {
	mu.Lock()
	e, ok := m[k]
	if !ok {
		e = &memo[V]{}
		m[k] = e
	}
	mu.Unlock()
	e.once.Do(func() { e.val, e.err = f() })
	return e.val, e.err
}

// NewHarness prepares a harness with the given parameters.
func NewHarness(p Params) *Harness {
	return &Harness{
		P:       p.withDefaults(),
		traces:  make(map[tracegen.Dataset]*memo[*trace.Trace]),
		studies: make(map[tracegen.Dataset]*memo[*Study]),
		sims:    make(map[tracegen.Dataset]*memo[map[string]*dtnsim.Result]),
		sweeps:  make(map[tracegen.Dataset]*memo[*dtnsim.Sweep]),
	}
}

// sweep returns (building on first use) the dataset's simulation sweep
// engine: the oracle tables are computed once and the per-run mutable
// state is pooled, so the per-(algorithm, seed) fan-out pays only the
// replay itself for every run after the first.
func (h *Harness) sweep(d tracegen.Dataset) (*dtnsim.Sweep, error) {
	return memoized(&h.mu, h.sweeps, d, func() (*dtnsim.Sweep, error) {
		return dtnsim.NewSweep(h.Trace(d))
	})
}

// Trace returns (generating on first use) a named dataset.
func (h *Harness) Trace(d tracegen.Dataset) *trace.Trace {
	t, _ := memoized(&h.mu, h.traces, d, func() (*trace.Trace, error) {
		return tracegen.MustGenerate(d), nil
	})
	return t
}

// Study holds the enumeration results of one dataset's message sample.
type Study struct {
	Dataset tracegen.Dataset
	Trace   *trace.Trace
	Cl      *trace.Classifier
	Results []*pathenum.Result

	pathsOnce sync.Once
	paths     []*pathenum.Path
}

// Paths returns every delivered path of the study, pooled across
// results in message order. The pool is built once and shared by the
// path-structure figures (14, 15); callers must not modify it.
func (s *Study) Paths() []*pathenum.Path {
	s.pathsOnce.Do(func() {
		total := 0
		for _, r := range s.Results {
			total += len(r.Arrivals)
		}
		s.paths = make([]*pathenum.Path, 0, total)
		for _, r := range s.Results {
			s.paths = append(s.paths, r.Arrivals...)
		}
	})
	return s.paths
}

// Summaries returns the per-message explosion summaries at threshold n.
func (s *Study) Summaries(n int) []pathenum.Explosion {
	out := make([]pathenum.Explosion, 0, len(s.Results))
	for _, r := range s.Results {
		out = append(out, r.ExplosionSummary(n))
	}
	return out
}

// Study returns (computing on first use) the enumeration study of a
// dataset: Params.Messages random messages with uniform endpoints and
// start times in the generation window. Sampling is serial and
// seed-driven; the enumeration itself fans out across Params.Workers
// goroutines.
func (h *Harness) Study(d tracegen.Dataset) (*Study, error) {
	return h.study(d, h.P.Workers)
}

func (h *Harness) study(d tracegen.Dataset, workers int) (*Study, error) {
	return memoized(&h.mu, h.studies, d, func() (*Study, error) {
		tr := h.Trace(d)
		enum, err := pathenum.NewEnumerator(tr, pathenum.Options{K: h.P.K, Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("figures: %v: %w", d, err)
		}
		rng := rand.New(rand.NewSource(h.P.Seed + int64(d)*1000))
		genHorizon := tr.Horizon * h.P.GenFraction
		msgs := make([]pathenum.Message, h.P.Messages)
		for i := range msgs {
			src := trace.NodeID(rng.Intn(tr.NumNodes))
			dst := trace.NodeID(rng.Intn(tr.NumNodes - 1))
			if dst >= src {
				dst++
			}
			msgs[i] = pathenum.Message{Src: src, Dst: dst, Start: rng.Float64() * genHorizon}
		}
		results, err := enum.EnumerateAll(msgs)
		if err != nil {
			return nil, fmt.Errorf("figures: %v %w", d, err)
		}
		return &Study{Dataset: d, Trace: tr, Cl: trace.NewClassifier(tr), Results: results}, nil
	})
}

// Simulate returns (running on first use) the merged multi-seed
// simulation results of every paper algorithm on a dataset, keyed by
// algorithm name. The (algorithm, seed) runs are independent and fan
// out across Params.Workers goroutines; per-algorithm runs merge in
// seed order, so the result does not depend on the worker count.
func (h *Harness) Simulate(d tracegen.Dataset) (map[string]*dtnsim.Result, error) {
	return h.simulate(d, h.P.Workers)
}

func (h *Harness) simulate(d tracegen.Dataset, workers int) (map[string]*dtnsim.Result, error) {
	return memoized(&h.mu, h.sims, d, func() (map[string]*dtnsim.Result, error) {
		tr := h.Trace(d)
		sw, err := h.sweep(d)
		if err != nil {
			return nil, fmt.Errorf("figures: %v: %w", d, err)
		}
		algs := forward.PaperSet()
		runs := make([][]*dtnsim.Result, len(algs))
		for i := range runs {
			runs[i] = make([]*dtnsim.Result, h.P.SimRuns)
		}
		// One task per (algorithm, seed) pair, all sharing the sweep
		// engine: the oracle tables are computed once per dataset and
		// each task reuses pooled per-worker state. The inner simulator
		// stays serial (Workers: 1): the fan-out itself already exposes
		// more than enough parallelism, and nested fan-out would just
		// multiply the per-shard contact-replay overhead.
		err = engine.MapErr(workers, len(algs)*h.P.SimRuns, func(t int) error {
			a, run := t/h.P.SimRuns, t%h.P.SimRuns
			alg, ok := parallelAlgorithm(algs[a])
			if !ok {
				return nil // handled serially below
			}
			msgs := workload(tr, h.P, run)
			r, err := sw.Run(dtnsim.Config{Algorithm: alg, Messages: msgs, Workers: 1})
			if err != nil {
				return fmt.Errorf("figures: simulate %v/%s: %w", d, alg.Name(), err)
			}
			runs[a][run] = r
			return nil
		})
		if err != nil {
			return nil, err
		}
		out := make(map[string]*dtnsim.Result, len(algs))
		for a, alg := range algs {
			for run := 0; run < h.P.SimRuns; run++ {
				if runs[a][run] != nil {
					continue
				}
				// Stateful algorithm that cannot clone: run its seeds
				// serially on the shared instance.
				msgs := workload(tr, h.P, run)
				r, err := sw.Run(dtnsim.Config{Algorithm: alg, Messages: msgs, Workers: 1})
				if err != nil {
					return nil, fmt.Errorf("figures: simulate %v/%s: %w", d, alg.Name(), err)
				}
				runs[a][run] = r
			}
			out[alg.Name()] = dtnsim.Merge(runs[a]...)
		}
		return out, nil
	})
}

// parallelAlgorithm returns an instance of a safe to run concurrently
// with other runs of the same algorithm, or ok=false when the
// algorithm's state cannot be cloned.
func parallelAlgorithm(a forward.Algorithm) (forward.Algorithm, bool) {
	insts, ok := forward.ParallelInstances(a, 1)
	if !ok {
		return nil, false
	}
	return insts[0], true
}

// Precompute generates every dataset's trace, enumeration study and
// simulation sweep concurrently. RenderAll calls it first so figure
// rendering — which reads only these caches — stays strictly ordered
// while the heavy computation saturates the machine. The Workers
// budget is split between the per-dataset fan-out and each task's
// inner fan-out (per-message enumeration, per-(algorithm, seed)
// simulation), so the total goroutine count respects the knob instead
// of multiplying it.
func (h *Harness) Precompute() error {
	ds := h.P.Datasets
	n := 2 * len(ds)
	if n == 0 {
		return nil
	}
	outer := engine.Workers(h.P.Workers)
	if outer > n {
		outer = n
	}
	inner := engine.Workers(h.P.Workers) / outer
	if inner < 1 {
		inner = 1
	}
	return engine.MapErr(outer, n, func(i int) error {
		d := ds[i/2]
		if i%2 == 0 {
			_, err := h.study(d, inner)
			return err
		}
		_, err := h.simulate(d, inner)
		return err
	})
}

// workload draws one run's Poisson messages. Run seeds are split from
// the base seed per run index (not sequential base+run values), so
// every run gets a well-separated RNG stream no matter how runs are
// scheduled across workers.
func workload(tr *trace.Trace, p Params, run int) []dtnsim.Message {
	return dtnsim.Workload(tr, p.MsgRate, tr.Horizon*p.GenFraction, engine.DeriveSeed(p.Seed, run))
}

// AlgorithmOrder is the presentation order used across figures.
var AlgorithmOrder = []string{
	"Epidemic", "FRESH", "Greedy", "Greedy Total", "Greedy Online", "Dynamic Programming",
}

// Figure is one renderable experiment.
type Figure struct {
	ID    string
	Title string
	// Render writes the figure's rows/series to w.
	Render func(h *Harness, w io.Writer) error
}

var registry []Figure

func register(f Figure) { registry = append(registry, f) }

// All returns every registered figure in id order.
func All() []Figure {
	out := append([]Figure(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds a figure by id.
func Lookup(id string) (Figure, bool) {
	for _, f := range registry {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// RenderAll renders every figure to w. The shared studies and
// simulation sweeps are precomputed concurrently first; rendering then
// proceeds figure by figure in id order, so the output is identical
// for every worker count.
func (h *Harness) RenderAll(w io.Writer) error {
	if err := h.Precompute(); err != nil {
		return err
	}
	for _, f := range All() {
		if err := h.RenderOne(f, w); err != nil {
			return err
		}
	}
	return nil
}

// RenderOne renders a single figure with its header.
func (h *Harness) RenderOne(f Figure, w io.Writer) error {
	fmt.Fprintf(w, "=== %s: %s ===\n", f.ID, f.Title)
	if err := f.Render(h, w); err != nil {
		return fmt.Errorf("figures: %s: %w", f.ID, err)
	}
	fmt.Fprintln(w)
	return nil
}
