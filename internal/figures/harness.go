// Package figures regenerates every figure of the paper's evaluation
// as printed tables and series: Fig 1 (contact time series), Figs 4-6
// and 8 (path explosion), Fig 7 (contact-count CDFs), Figs 9-13
// (forwarding-algorithm performance), Figs 14-15 (hop-rate structure),
// plus the analytic-model validation experiments (A1, A2) and the
// ablations called out in DESIGN.md (AB1-AB4).
//
// A Harness caches the generated datasets, the per-message enumeration
// results, and the simulation results, so regenerating all figures
// costs one enumeration study and one simulation sweep per dataset.
package figures

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/dtnsim"
	"repro/internal/forward"
	"repro/internal/pathenum"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Params scales the experiment harness. The zero value selects
// paper-scale defaults; tests and benchmarks use reduced values.
type Params struct {
	// Messages is the number of random messages enumerated per dataset
	// for the path-explosion figures (the paper does not state its
	// sample size). Default 40, which keeps a full harness run under
	// half an hour on one core.
	Messages int
	// K is the explosion threshold (paper: 2000 paths).
	K int
	// SimRuns is the number of independent workload seeds averaged in
	// the forwarding figures (paper: 10).
	SimRuns int
	// MsgRate is the workload rate in messages/second (paper: 1 per 4 s).
	MsgRate float64
	// GenFraction is the fraction of the trace during which messages
	// are generated (paper: first 2 of 3 hours).
	GenFraction float64
	// Seed drives message sampling.
	Seed int64
	// Datasets lists the datasets to analyze; nil means all four.
	Datasets []tracegen.Dataset
}

func (p Params) withDefaults() Params {
	if p.Messages == 0 {
		p.Messages = 40
	}
	if p.K == 0 {
		p.K = 2000
	}
	if p.SimRuns == 0 {
		p.SimRuns = 10
	}
	if p.MsgRate == 0 {
		p.MsgRate = 0.25
	}
	if p.GenFraction == 0 {
		p.GenFraction = 2.0 / 3.0
	}
	if p.Datasets == nil {
		p.Datasets = tracegen.Datasets[:]
	}
	return p
}

// Harness caches datasets and computed studies across figures.
type Harness struct {
	P Params

	traces  map[tracegen.Dataset]*trace.Trace
	studies map[tracegen.Dataset]*Study
	sims    map[tracegen.Dataset]map[string]*dtnsim.Result
}

// NewHarness prepares a harness with the given parameters.
func NewHarness(p Params) *Harness {
	return &Harness{
		P:       p.withDefaults(),
		traces:  make(map[tracegen.Dataset]*trace.Trace),
		studies: make(map[tracegen.Dataset]*Study),
		sims:    make(map[tracegen.Dataset]map[string]*dtnsim.Result),
	}
}

// Trace returns (generating on first use) a named dataset.
func (h *Harness) Trace(d tracegen.Dataset) *trace.Trace {
	if t, ok := h.traces[d]; ok {
		return t
	}
	t := tracegen.MustGenerate(d)
	h.traces[d] = t
	return t
}

// Study holds the enumeration results of one dataset's message sample.
type Study struct {
	Dataset tracegen.Dataset
	Trace   *trace.Trace
	Cl      *trace.Classifier
	Results []*pathenum.Result
}

// Summaries returns the per-message explosion summaries at threshold n.
func (s *Study) Summaries(n int) []pathenum.Explosion {
	out := make([]pathenum.Explosion, 0, len(s.Results))
	for _, r := range s.Results {
		out = append(out, r.ExplosionSummary(n))
	}
	return out
}

// Study returns (computing on first use) the enumeration study of a
// dataset: Params.Messages random messages with uniform endpoints and
// start times in the generation window.
func (h *Harness) Study(d tracegen.Dataset) (*Study, error) {
	if s, ok := h.studies[d]; ok {
		return s, nil
	}
	tr := h.Trace(d)
	enum, err := pathenum.NewEnumerator(tr, pathenum.Options{K: h.P.K})
	if err != nil {
		return nil, fmt.Errorf("figures: %v: %w", d, err)
	}
	rng := rand.New(rand.NewSource(h.P.Seed + int64(d)*1000))
	genHorizon := tr.Horizon * h.P.GenFraction
	st := &Study{Dataset: d, Trace: tr, Cl: trace.NewClassifier(tr)}
	for i := 0; i < h.P.Messages; i++ {
		src := trace.NodeID(rng.Intn(tr.NumNodes))
		dst := trace.NodeID(rng.Intn(tr.NumNodes - 1))
		if dst >= src {
			dst++
		}
		msg := pathenum.Message{Src: src, Dst: dst, Start: rng.Float64() * genHorizon}
		res, err := enum.Enumerate(msg)
		if err != nil {
			return nil, fmt.Errorf("figures: %v message %d: %w", d, i, err)
		}
		st.Results = append(st.Results, res)
	}
	h.studies[d] = st
	return st, nil
}

// Simulate returns (running on first use) the merged multi-seed
// simulation results of every paper algorithm on a dataset, keyed by
// algorithm name.
func (h *Harness) Simulate(d tracegen.Dataset) (map[string]*dtnsim.Result, error) {
	if rs, ok := h.sims[d]; ok {
		return rs, nil
	}
	tr := h.Trace(d)
	out := make(map[string]*dtnsim.Result)
	for _, alg := range forward.PaperSet() {
		var runs []*dtnsim.Result
		for run := 0; run < h.P.SimRuns; run++ {
			msgs := workload(tr, h.P, h.P.Seed+int64(run))
			r, err := dtnsim.Run(dtnsim.Config{Trace: tr, Algorithm: alg, Messages: msgs})
			if err != nil {
				return nil, fmt.Errorf("figures: simulate %v/%s: %w", d, alg.Name(), err)
			}
			runs = append(runs, r)
		}
		out[alg.Name()] = dtnsim.Merge(runs...)
	}
	h.sims[d] = out
	return out, nil
}

func workload(tr *trace.Trace, p Params, seed int64) []dtnsim.Message {
	return dtnsim.Workload(tr, p.MsgRate, tr.Horizon*p.GenFraction, seed)
}

// AlgorithmOrder is the presentation order used across figures.
var AlgorithmOrder = []string{
	"Epidemic", "FRESH", "Greedy", "Greedy Total", "Greedy Online", "Dynamic Programming",
}

// Figure is one renderable experiment.
type Figure struct {
	ID    string
	Title string
	// Render writes the figure's rows/series to w.
	Render func(h *Harness, w io.Writer) error
}

var registry []Figure

func register(f Figure) { registry = append(registry, f) }

// All returns every registered figure in id order.
func All() []Figure {
	out := append([]Figure(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds a figure by id.
func Lookup(id string) (Figure, bool) {
	for _, f := range registry {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// RenderAll renders every figure to w.
func (h *Harness) RenderAll(w io.Writer) error {
	for _, f := range All() {
		if err := h.RenderOne(f, w); err != nil {
			return err
		}
	}
	return nil
}

// RenderOne renders a single figure with its header.
func (h *Harness) RenderOne(f Figure, w io.Writer) error {
	fmt.Fprintf(w, "=== %s: %s ===\n", f.ID, f.Title)
	if err := f.Render(h, w); err != nil {
		return fmt.Errorf("figures: %s: %w", f.ID, err)
	}
	fmt.Fprintln(w)
	return nil
}
