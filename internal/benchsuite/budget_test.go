package benchsuite

import (
	"testing"
)

// Allocation budgets for the enumeration hot paths, in bytes per
// operation. These are regression tripwires, not targets: each budget
// sits a comfortable margin above the measured value at the time it
// was set, and far below the regression it guards against.
const (
	// EnumerateConferenceMessage measured ~14 MB/op after the arena
	// retention and scratch-reuse work (down from a 370 MB/op
	// transient); 64 MB catches any reintroduction of per-call path
	// or row slab churn while staying ~4.5x above normal.
	conferenceMessageBytesBudget = 64 << 20

	// EnumerateBatchSharedPrefix runs 16 forked continuations off one
	// shared prefix, recycling one fork scratch across them; measured
	// ~22 MB/op. The 64 MB budget bounds the per-batch transient — a
	// breach means the fork recycling broke and every destination is
	// paying a full enumeration's scratch again.
	batchSharedPrefixBytesBudget = 64 << 20

	// ServeEnumerateWarm measured 109 allocs/op before the
	// observability layer and 113 after (request ID string, header
	// value, slow/access-log checks are branch-only): the histogram
	// records and stage spans themselves are allocation-free, and this
	// budget holds the whole envelope to at most 8 allocations over the
	// pre-observability baseline.
	serveWarmAllocsBudget = 117

	// ServeEnumerateWarmRouted measured 242 allocs/op when the fleet
	// router landed: the 114 of the replica's warm path plus the proxy
	// envelope (body buffering, per-try context, rebuilt upstream
	// request, header relay). The budget holds the router hop to at
	// most ~130 allocations over the direct path — a breach means the
	// proxy loop started allocating per candidate or per header.
	serveWarmRoutedAllocsBudget = 250
)

// TestEnumerateConferenceMessageBytesBudget pins the explosion-scale
// single-message enumeration's transient allocations. The pooled
// scratch (tables, path arena within its ~32 MB retention cap) is
// warmed by the benchmark's own iterations, so steady-state B/op
// reflects only per-call transients: result materialization plus
// whatever slab chunks spill past the retention cap.
func TestEnumerateConferenceMessageBytesBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("explosion-scale benchmark in -short mode")
	}
	r := testing.Benchmark(EnumerateConferenceMessage)
	if r.N == 0 {
		t.Fatal("benchmark failed")
	}
	if got := r.AllocedBytesPerOp(); got > conferenceMessageBytesBudget {
		t.Errorf("EnumerateConferenceMessage allocates %d B/op, budget %d",
			got, int64(conferenceMessageBytesBudget))
	}
}

// TestEnumerateBatchSharedPrefixBytesBudget pins the grouped batch
// path's transient allocations, fork scratches included.
func TestEnumerateBatchSharedPrefixBytesBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("explosion-scale benchmark in -short mode")
	}
	r := testing.Benchmark(EnumerateBatchSharedPrefix)
	if r.N == 0 {
		t.Fatal("benchmark failed")
	}
	if got := r.AllocedBytesPerOp(); got > batchSharedPrefixBytesBudget {
		t.Errorf("EnumerateBatchSharedPrefix allocates %d B/op, budget %d",
			got, int64(batchSharedPrefixBytesBudget))
	}
}

// TestServeEnumerateWarmAllocsBudget pins the warm serving path's
// allocations per request, observability envelope included: latency
// histogram record, stage-trace pooling, request-ID header. A breach
// means per-request instrumentation started allocating.
func TestServeEnumerateWarmAllocsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("serving benchmark in -short mode")
	}
	r := testing.Benchmark(ServeEnumerateWarm)
	if r.N == 0 {
		t.Fatal("benchmark failed")
	}
	if got := r.AllocsPerOp(); got > serveWarmAllocsBudget {
		t.Errorf("ServeEnumerateWarm allocates %d allocs/op, budget %d",
			got, int64(serveWarmAllocsBudget))
	}
}

// TestServeEnumerateWarmRoutedAllocsBudget pins the routed warm path:
// the replica's serving allocations plus the router hop's proxy
// envelope. A breach with ServeEnumerateWarm still in budget isolates
// the regression to the router tier.
func TestServeEnumerateWarmRoutedAllocsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("serving benchmark in -short mode")
	}
	r := testing.Benchmark(ServeEnumerateWarmRouted)
	if r.N == 0 {
		t.Fatal("benchmark failed")
	}
	if got := r.AllocsPerOp(); got > serveWarmRoutedAllocsBudget {
		t.Errorf("ServeEnumerateWarmRouted allocates %d allocs/op, budget %d",
			got, int64(serveWarmRoutedAllocsBudget))
	}
}
