// Package benchsuite defines the repository's key hot-path benchmarks
// once, shared by the `go test -bench` suite (bench_test.go) and the
// psn-bench snapshot tool, so the perf trajectory in BENCH_<date>.json
// always measures exactly the workload CI benchmarks and budgets.
package benchsuite

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/artstore"
	"repro/internal/dtnsim"
	"repro/internal/forward"
	"repro/internal/pathenum"
	"repro/internal/router"
	"repro/internal/service"
	"repro/internal/stgraph"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Spec is one named benchmark.
type Spec struct {
	Name string
	Run  func(b *testing.B)
}

// Specs returns the shared benchmark list.
func Specs() []Spec {
	return []Spec{
		{"SpaceTimeGraphBuild", SpaceTimeGraphBuild},
		{"SpaceTimeGraphBuildLarge", SpaceTimeGraphBuildLarge},
		{"EnumerateDevTrace", EnumerateDevTrace},
		{"EnumerateConferenceMessage", EnumerateConferenceMessage},
		{"EnumerateCityMessage", EnumerateCityMessage},
		{"EnumerateAllSerial", EnumerateAllWorkers(1)},
		{"EnumerateAllParallel", EnumerateAllWorkers(0)},
		{"EnumerateBatchSharedPrefix", EnumerateBatchSharedPrefix},
		{"SimulateEpidemic", SimulateEpidemic},
		{"SimulateSweep", SimulateSweep},
		{"SimulateCitySweep", SimulateCitySweep},
		{"MEEDDistances", MEEDDistances},
		{"ServeEnumerateWarm", ServeEnumerateWarm},
		{"ServeEnumerateWarmRouted", ServeEnumerateWarmRouted},
		{"WarmStartLoad", WarmStartLoad},
	}
}

// SpaceTimeGraphBuild indexes the densest conference dataset.
func SpaceTimeGraphBuild(b *testing.B) {
	tr := tracegen.MustGenerate(tracegen.Conext0912)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stgraph.New(tr, stgraph.DefaultDelta); err != nil {
			b.Fatal(err)
		}
	}
}

// cityTrace memoizes the 2,000-node, ≥1M-contact city dataset across
// the city-scale benchmarks (generation takes seconds and the trace
// is immutable).
var cityTrace = sync.OnceValue(func() *trace.Trace {
	return tracegen.MustCity(2000, 1)
})

// citySweep memoizes the city simulation sweep engine (oracle tables
// built once; the warm benchmark measures the marginal run).
var citySweep = sync.OnceValue(func() *dtnsim.Sweep {
	sw, err := dtnsim.NewSweep(cityTrace())
	if err != nil {
		panic(err)
	}
	return sw
})

// cityEnumerator memoizes the city enumerator — and with it the
// city-scale space-time graph — for the enumeration benchmark.
var cityEnumerator = sync.OnceValue(func() *pathenum.Enumerator {
	enum, err := pathenum.NewEnumerator(cityTrace(), pathenum.Options{K: 200})
	if err != nil {
		panic(err)
	}
	return enum
})

// SpaceTimeGraphBuildLarge indexes the city-scale dataset: ≥2,000
// nodes, ≥1M contact records, 4,320 steps — the cold-start cost a
// server pays per (city dataset, delta).
func SpaceTimeGraphBuildLarge(b *testing.B) {
	tr := cityTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stgraph.New(tr, stgraph.DefaultDelta); err != nil {
			b.Fatal(err)
		}
	}
}

// EnumerateCityMessage enumerates one message at city scale (wide
// population mode: membership by chain walks instead of bitsets) over
// the shared city graph.
func EnumerateCityMessage(b *testing.B) {
	enum := cityEnumerator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enum.Enumerate(pathenum.Message{Src: 150, Dst: 1800, Start: 600}); err != nil {
			b.Fatal(err)
		}
	}
}

// SimulateCitySweep runs an epidemic workload over the city dataset
// through a warm sweep: ≥1M contact events replayed per run, oracle
// tables amortized.
func SimulateCitySweep(b *testing.B) {
	sw := citySweep()
	tr := cityTrace()
	msgs := dtnsim.Workload(tr, 0.02, tr.Horizon/3, 1)
	cfg := dtnsim.Config{Algorithm: forward.Epidemic{}, Messages: msgs}
	if _, err := sw.Run(cfg); err != nil { // warm the pooled state
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// EnumerateDevTrace enumerates one message on the small development
// trace — the allocation-budget benchmark in CI.
func EnumerateDevTrace(b *testing.B) {
	tr := tracegen.Dev(1)
	enum, err := pathenum.NewEnumerator(tr, pathenum.Options{K: 200})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enum.Enumerate(pathenum.Message{Src: 0, Dst: 17, Start: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// EnumerateConferenceMessage enumerates one explosion-scale message
// (paper K = 2000) on a conference dataset.
func EnumerateConferenceMessage(b *testing.B) {
	EnumerateConference(b, pathenum.Options{K: 2000})
}

// EnumerateConference enumerates the fixed conference message under
// custom enumeration options (bench_test.go's AB2 narrow-table arm
// reuses the same workload with TableWidth 16).
func EnumerateConference(b *testing.B, opt pathenum.Options) {
	tr := tracegen.MustGenerate(tracegen.Conext0912)
	enum, err := pathenum.NewEnumerator(tr, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enum.Enumerate(pathenum.Message{Src: 25, Dst: 60, Start: 600}); err != nil {
			b.Fatal(err)
		}
	}
}

// EnumerateAllWorkers enumerates a fixed 16-message batch over the
// shared conference space-time graph at the given worker count.
func EnumerateAllWorkers(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		tr := tracegen.MustGenerate(tracegen.Conext0912)
		enum, err := pathenum.NewEnumerator(tr, pathenum.Options{K: 500, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		msgs := make([]pathenum.Message, 16)
		for i := range msgs {
			src := trace.NodeID(rng.Intn(tr.NumNodes))
			dst := trace.NodeID(rng.Intn(tr.NumNodes - 1))
			if dst >= src {
				dst++
			}
			msgs[i] = pathenum.Message{Src: src, Dst: dst, Start: rng.Float64() * tr.Horizon / 2}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := enum.EnumerateAll(msgs); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// EnumerateBatchSharedPrefix enumerates a 16-destination batch sharing
// one (src, start) — the shape of the paper's per-destination Fig
// 10/13 sweeps, and the case the batch grouping in
// pathenum.EnumerateAll exists for: the dynamic program's prefix runs
// once per group instead of once per message. Contrast with
// EnumerateAllSerial, whose 16 messages have unique (src, start) pairs
// and degenerate to independent enumerations.
func EnumerateBatchSharedPrefix(b *testing.B) {
	tr := tracegen.MustGenerate(tracegen.Conext0912)
	enum, err := pathenum.NewEnumerator(tr, pathenum.Options{K: 500, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	src := trace.NodeID(rng.Intn(tr.NumNodes))
	msgs := make([]pathenum.Message, 0, 16)
	for len(msgs) < cap(msgs) {
		dst := trace.NodeID(rng.Intn(tr.NumNodes))
		if dst == src {
			continue
		}
		msgs = append(msgs, pathenum.Message{Src: src, Dst: dst, Start: 600})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enum.EnumerateAll(msgs); err != nil {
			b.Fatal(err)
		}
	}
}

// ServeEnumerateWarm measures the serving layer's warm-cache request
// throughput over a real HTTP round trip: one /enumerate request
// repeated against a psn-serve handler whose artifact caches and
// result LRU are already hot, so ns/op is the per-request serving
// overhead (1e9 / ns_per_op ≈ requests/sec on one connection).
func ServeEnumerateWarm(b *testing.B) {
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const body = `{"dataset":"dev","src":0,"dst":17,"start":0,"k":200}`
	do := func() error {
		resp, err := http.Post(ts.URL+"/enumerate", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("enumerate: status %d", resp.StatusCode)
		}
		return nil
	}
	if err := do(); err != nil { // warm the caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := do(); err != nil {
			b.Fatal(err)
		}
	}
}

// ServeEnumerateWarmRouted measures the same warm /enumerate round
// trip as ServeEnumerateWarm, but through the fleet router fronting
// two replicas: the delta in ns/op against ServeEnumerateWarm is the
// router hop's cost (body buffering, rendezvous ranking, breaker
// bookkeeping, the second HTTP round trip), and allocs/op covers the
// full proxy envelope, gated in CI.
func ServeEnumerateWarmRouted(b *testing.B) {
	backends := make([]string, 2)
	for i := range backends {
		rep := httptest.NewServer(service.New(service.Config{}).Handler())
		defer rep.Close()
		backends[i] = strings.TrimPrefix(rep.URL, "http://")
	}
	rt, err := router.New(router.Config{Backends: backends, HealthInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	rt.CheckNow()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	const body = `{"dataset":"dev","src":0,"dst":17,"start":0,"k":200}`
	do := func() error {
		resp, err := http.Post(ts.URL+"/enumerate", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("enumerate via router: status %d", resp.StatusCode)
		}
		return nil
	}
	if err := do(); err != nil { // warm the chosen replica's caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := do(); err != nil {
			b.Fatal(err)
		}
	}
}

// warmCityArtifacts saves the city-scale space-time graph into a
// throwaway artifact store once; WarmStartLoad then measures pure
// load cost against it. The directory lives under the OS temp dir for
// the process lifetime (benchmarks have no per-test cleanup hook).
var warmCityArtifacts = sync.OnceValue(func() *artstore.Store {
	dir, err := os.MkdirTemp("", "psn-warmbench-")
	if err != nil {
		panic(err)
	}
	store := &artstore.Store{Dir: dir}
	g, err := stgraph.New(cityTrace(), stgraph.DefaultDelta)
	if err != nil {
		panic(err)
	}
	if _, err := store.SaveGraph("city-2k", artstore.TraceDigest(cityTrace()), g); err != nil {
		panic(err)
	}
	return store
})

// WarmStartLoad deserializes the city-scale space-time graph from the
// on-disk artifact store — the warm-start path psn-serve takes with
// -artifacts instead of paying SpaceTimeGraphBuildLarge. The ratio of
// those two benchmarks is the warm-start speedup.
func WarmStartLoad(b *testing.B) {
	store := warmCityArtifacts()
	digest := artstore.TraceDigest(cityTrace())
	// A server retains what it loads (the artifact cache holds the
	// graph), so keep every iteration's graph live: letting them die
	// would make later iterations pay allocator span-recycling memclr
	// that a one-shot warm start never sees.
	loaded := make([]*stgraph.Graph, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := store.LoadGraph("city-2k", stgraph.DefaultDelta, digest)
		if err != nil {
			b.Fatal(err)
		}
		loaded = append(loaded, g)
	}
	runtime.KeepAlive(loaded)
}

// SimulateEpidemic runs the paper's Poisson workload under epidemic
// forwarding, cold: every iteration pays the full Run contract
// including the oracle-table derivation.
func SimulateEpidemic(b *testing.B) {
	tr := tracegen.MustGenerate(tracegen.Conext0912)
	msgs := dtnsim.Workload(tr, 0.25, tr.Horizon*2/3, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dtnsim.Run(dtnsim.Config{Trace: tr, Algorithm: forward.Epidemic{}, Messages: msgs}); err != nil {
			b.Fatal(err)
		}
	}
}

// SimulateSweep measures the per-run marginal cost of the same
// epidemic workload through a warm Sweep engine: oracle tables built
// once, per-worker simulation state pooled and reset — the cost every
// run after the first pays in a multi-run parameter sweep (psn-sim
// -runs, the figure harness, a warm /simulate).
func SimulateSweep(b *testing.B) {
	tr := tracegen.MustGenerate(tracegen.Conext0912)
	sw, err := dtnsim.NewSweep(tr)
	if err != nil {
		b.Fatal(err)
	}
	msgs := dtnsim.Workload(tr, 0.25, tr.Horizon*2/3, 1)
	cfg := dtnsim.Config{Algorithm: forward.Epidemic{}, Messages: msgs}
	if _, err := sw.Run(cfg); err != nil { // warm the pooled state
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// MEEDDistances pins the flattened all-pairs Floyd-Warshall closure of
// the MEED oracle metric — the O(n³) share of every cold simulation.
func MEEDDistances(b *testing.B) {
	tr := tracegen.MustGenerate(tracegen.Conext0912)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forward.MEEDDistances(tr)
	}
}
