package stgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func mk(t *testing.T, numNodes int, horizon float64, cs []trace.Contact) *trace.Trace {
	t.Helper()
	tr, err := trace.New("t", numNodes, horizon, cs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRejectsBadDelta(t *testing.T) {
	tr := mk(t, 3, 100, nil)
	if _, err := New(tr, 0); err == nil {
		t.Errorf("delta 0 accepted")
	}
	if _, err := New(tr, -5); err == nil {
		t.Errorf("negative delta accepted")
	}
}

func TestStepsCoverHorizon(t *testing.T) {
	tr := mk(t, 3, 95, nil)
	g, err := New(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Steps != 10 {
		t.Errorf("Steps = %d, want 10", g.Steps)
	}
	g2, _ := New(mk(t, 3, 100, nil), 10)
	if g2.Steps != 10 {
		t.Errorf("Steps = %d, want 10 for exact horizon", g2.Steps)
	}
}

// The paper's Figure 2 example: nodes 1 and 2 in contact during the
// first step, all three pairwise in contact during the second step.
func TestPaperFigure2Example(t *testing.T) {
	tr := mk(t, 3, 20, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 20}, // nodes "1" and "2"
		{A: 0, B: 2, Start: 10, End: 20},
		{A: 1, B: 2, Start: 10, End: 20},
	})
	g, err := New(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Steps != 2 {
		t.Fatalf("Steps = %d, want 2", g.Steps)
	}
	if !g.InContact(0, 0, 1) || g.InContact(0, 0, 2) || g.InContact(0, 1, 2) {
		t.Errorf("step 0 adjacency wrong")
	}
	for _, pair := range [][2]trace.NodeID{{0, 1}, {0, 2}, {1, 2}} {
		if !g.InContact(1, pair[0], pair[1]) {
			t.Errorf("step 1 missing edge %v", pair)
		}
	}
}

func TestContactSpanningMultipleSteps(t *testing.T) {
	tr := mk(t, 2, 100, []trace.Contact{{A: 0, B: 1, Start: 5, End: 35}})
	g, _ := New(tr, 10)
	for s, want := range []bool{true, true, true, true, false} {
		if got := g.InContact(s, 0, 1); got != want {
			t.Errorf("step %d contact = %v, want %v", s, got, want)
		}
	}
}

func TestExclusiveEndOnBoundary(t *testing.T) {
	tr := mk(t, 2, 100, []trace.Contact{{A: 0, B: 1, Start: 0, End: 20}})
	g, _ := New(tr, 10)
	if !g.InContact(0, 0, 1) || !g.InContact(1, 0, 1) {
		t.Errorf("contact should cover steps 0 and 1")
	}
	if g.InContact(2, 0, 1) {
		t.Errorf("contact ending exactly at 20 should not touch step 2")
	}
}

func TestInstantaneousContact(t *testing.T) {
	tr := mk(t, 2, 100, []trace.Contact{{A: 0, B: 1, Start: 15, End: 15}})
	g, _ := New(tr, 10)
	if !g.InContact(1, 0, 1) {
		t.Errorf("instantaneous contact lost")
	}
}

func TestDuplicateContactsDeduped(t *testing.T) {
	tr := mk(t, 2, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 5},
		{A: 1, B: 0, Start: 2, End: 8},
	})
	g, _ := New(tr, 10)
	if got := len(g.Neighbors(0, 0)); got != 1 {
		t.Errorf("neighbors of 0 at step 0 = %d, want 1", got)
	}
	if g.EdgeCount(0) != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount(0))
	}
}

func TestStepOfAndTimeOf(t *testing.T) {
	tr := mk(t, 2, 100, nil)
	g, _ := New(tr, 10)
	for _, tc := range []struct {
		t    float64
		want int
	}{{0, 0}, {9.99, 0}, {10, 1}, {95, 9}, {1000, 9}, {-5, 0}} {
		if got := g.StepOf(tc.t); got != tc.want {
			t.Errorf("StepOf(%g) = %d, want %d", tc.t, got, tc.want)
		}
	}
	if g.TimeOf(3) != 30 {
		t.Errorf("TimeOf(3) = %g", g.TimeOf(3))
	}
}

func TestReachSimpleChain(t *testing.T) {
	// 0-1, 1-2, 2-3 all in contact at step 0: reach from 0 is {1,2,3}.
	tr := mk(t, 5, 10, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 10},
		{A: 1, B: 2, Start: 0, End: 10},
		{A: 2, B: 3, Start: 0, End: 10},
	})
	g, _ := New(tr, 10)
	visited := make([]bool, 5)
	got := g.Reach(0, 0, func(trace.NodeID) bool { return false }, visited, nil)
	if len(got) != 3 {
		t.Fatalf("Reach = %v, want 3 nodes", got)
	}
	seen := map[trace.NodeID]bool{}
	for _, n := range got {
		seen[n] = true
	}
	for _, want := range []trace.NodeID{1, 2, 3} {
		if !seen[want] {
			t.Errorf("Reach missing %d", want)
		}
	}
	for _, v := range visited {
		if v {
			t.Fatalf("visited scratch not restored")
		}
	}
}

func TestReachRespectsForbidden(t *testing.T) {
	// Chain 0-1-2; forbidding 1 cuts off 2.
	tr := mk(t, 4, 10, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 10},
		{A: 1, B: 2, Start: 0, End: 10},
	})
	g, _ := New(tr, 10)
	visited := make([]bool, 4)
	got := g.Reach(0, 0, func(n trace.NodeID) bool { return n == 1 }, visited, nil)
	if len(got) != 0 {
		t.Errorf("Reach through forbidden node: %v", got)
	}
}

func TestReachDisconnected(t *testing.T) {
	tr := mk(t, 4, 10, []trace.Contact{{A: 2, B: 3, Start: 0, End: 10}})
	g, _ := New(tr, 10)
	visited := make([]bool, 4)
	if got := g.Reach(0, 0, func(trace.NodeID) bool { return false }, visited, nil); len(got) != 0 {
		t.Errorf("isolated node reached %v", got)
	}
}

func TestActiveNodes(t *testing.T) {
	tr := mk(t, 5, 10, []trace.Contact{{A: 1, B: 3, Start: 0, End: 10}})
	g, _ := New(tr, 10)
	got := g.ActiveNodes(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ActiveNodes = %v, want [1 3]", got)
	}
}

// Property: Reach never returns the source, duplicates, or forbidden
// nodes, and the visited scratch is always restored.
func TestReachProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 12
		var cs []trace.Contact
		for i := 0; i < 20; i++ {
			a := trace.NodeID(rng.Intn(n))
			b := trace.NodeID(rng.Intn(n))
			if a == b {
				continue
			}
			cs = append(cs, trace.Contact{A: a, B: b, Start: 0, End: 10})
		}
		tr, err := trace.New("q", n, 10, cs)
		if err != nil {
			return false
		}
		g, err := New(tr, 10)
		if err != nil {
			return false
		}
		src := trace.NodeID(rng.Intn(n))
		forbidden := trace.NodeID(rng.Intn(n))
		visited := make([]bool, n)
		got := g.Reach(0, src, func(x trace.NodeID) bool { return x == forbidden }, visited, nil)
		seen := map[trace.NodeID]bool{}
		for _, x := range got {
			if x == src || x == forbidden || seen[x] {
				return false
			}
			seen[x] = true
		}
		for _, v := range visited {
			if v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: edge counts are symmetric — every neighbor relation
// appears in both adjacency lists.
func TestAdjacencySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 10
		var cs []trace.Contact
		for i := 0; i < 15; i++ {
			a := trace.NodeID(rng.Intn(n))
			b := trace.NodeID(rng.Intn(n))
			if a == b {
				continue
			}
			s := rng.Float64() * 90
			cs = append(cs, trace.Contact{A: a, B: b, Start: s, End: s + rng.Float64()*20})
		}
		tr, err := trace.New("q", n, 120, cs)
		if err != nil {
			return false
		}
		g, err := New(tr, 10)
		if err != nil {
			return false
		}
		for s := 0; s < g.Steps; s++ {
			for x := 0; x < n; x++ {
				for _, nb := range g.Neighbors(s, trace.NodeID(x)) {
					if !g.InContact(s, nb, trace.NodeID(x)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
