package stgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func mk(t *testing.T, numNodes int, horizon float64, cs []trace.Contact) *trace.Trace {
	t.Helper()
	tr, err := trace.New("t", numNodes, horizon, cs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRejectsBadDelta(t *testing.T) {
	tr := mk(t, 3, 100, nil)
	if _, err := New(tr, 0); err == nil {
		t.Errorf("delta 0 accepted")
	}
	if _, err := New(tr, -5); err == nil {
		t.Errorf("negative delta accepted")
	}
}

func TestStepsCoverHorizon(t *testing.T) {
	tr := mk(t, 3, 95, nil)
	g, err := New(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Steps != 10 {
		t.Errorf("Steps = %d, want 10", g.Steps)
	}
	g2, _ := New(mk(t, 3, 100, nil), 10)
	if g2.Steps != 10 {
		t.Errorf("Steps = %d, want 10 for exact horizon", g2.Steps)
	}
}

// The paper's Figure 2 example: nodes 1 and 2 in contact during the
// first step, all three pairwise in contact during the second step.
func TestPaperFigure2Example(t *testing.T) {
	tr := mk(t, 3, 20, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 20}, // nodes "1" and "2"
		{A: 0, B: 2, Start: 10, End: 20},
		{A: 1, B: 2, Start: 10, End: 20},
	})
	g, err := New(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Steps != 2 {
		t.Fatalf("Steps = %d, want 2", g.Steps)
	}
	if !g.InContact(0, 0, 1) || g.InContact(0, 0, 2) || g.InContact(0, 1, 2) {
		t.Errorf("step 0 adjacency wrong")
	}
	for _, pair := range [][2]trace.NodeID{{0, 1}, {0, 2}, {1, 2}} {
		if !g.InContact(1, pair[0], pair[1]) {
			t.Errorf("step 1 missing edge %v", pair)
		}
	}
}

func TestContactSpanningMultipleSteps(t *testing.T) {
	tr := mk(t, 2, 100, []trace.Contact{{A: 0, B: 1, Start: 5, End: 35}})
	g, _ := New(tr, 10)
	for s, want := range []bool{true, true, true, true, false} {
		if got := g.InContact(s, 0, 1); got != want {
			t.Errorf("step %d contact = %v, want %v", s, got, want)
		}
	}
}

func TestExclusiveEndOnBoundary(t *testing.T) {
	tr := mk(t, 2, 100, []trace.Contact{{A: 0, B: 1, Start: 0, End: 20}})
	g, _ := New(tr, 10)
	if !g.InContact(0, 0, 1) || !g.InContact(1, 0, 1) {
		t.Errorf("contact should cover steps 0 and 1")
	}
	if g.InContact(2, 0, 1) {
		t.Errorf("contact ending exactly at 20 should not touch step 2")
	}
}

func TestInstantaneousContact(t *testing.T) {
	tr := mk(t, 2, 100, []trace.Contact{{A: 0, B: 1, Start: 15, End: 15}})
	g, _ := New(tr, 10)
	if !g.InContact(1, 0, 1) {
		t.Errorf("instantaneous contact lost")
	}
}

func TestDuplicateContactsDeduped(t *testing.T) {
	tr := mk(t, 2, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 5},
		{A: 1, B: 0, Start: 2, End: 8},
	})
	g, _ := New(tr, 10)
	if got := len(g.Neighbors(0, 0)); got != 1 {
		t.Errorf("neighbors of 0 at step 0 = %d, want 1", got)
	}
	if g.EdgeCount(0) != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount(0))
	}
}

func TestStepOfAndTimeOf(t *testing.T) {
	tr := mk(t, 2, 100, nil)
	g, _ := New(tr, 10)
	for _, tc := range []struct {
		t    float64
		want int
	}{{0, 0}, {9.99, 0}, {10, 1}, {95, 9}, {1000, 9}, {-5, 0}} {
		if got := g.StepOf(tc.t); got != tc.want {
			t.Errorf("StepOf(%g) = %d, want %d", tc.t, got, tc.want)
		}
	}
	if g.TimeOf(3) != 30 {
		t.Errorf("TimeOf(3) = %g", g.TimeOf(3))
	}
}

// Neighbor order is the determinism contract: rows list contacts in
// first-contact-record order (contacts sorted by start time), not in
// node order.
func TestNeighborInsertionOrder(t *testing.T) {
	tr := mk(t, 4, 10, []trace.Contact{
		{A: 0, B: 3, Start: 0, End: 10},
		{A: 0, B: 1, Start: 2, End: 10},
		{A: 0, B: 2, Start: 4, End: 10},
	})
	g, _ := New(tr, 10)
	got := g.Neighbors(0, 0)
	want := []trace.NodeID{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v (first-contact order)", got, want)
		}
	}
}

func TestActiveNodes(t *testing.T) {
	tr := mk(t, 5, 10, []trace.Contact{{A: 1, B: 3, Start: 0, End: 10}})
	g, _ := New(tr, 10)
	got := g.ActiveNodes(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ActiveNodes = %v, want [1 3]", got)
	}
}

// Steps with identical contact patterns must share one frame; a
// pattern change must start a new one.
func TestFrameSharing(t *testing.T) {
	tr := mk(t, 3, 60, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 30},  // steps 0,1,2
		{A: 1, B: 2, Start: 40, End: 60}, // steps 4,5
	})
	g, _ := New(tr, 10)
	if g.FrameOf(0) != g.FrameOf(1) || g.FrameOf(1) != g.FrameOf(2) {
		t.Errorf("steps 0-2 should share a frame: %d %d %d",
			g.FrameOf(0), g.FrameOf(1), g.FrameOf(2))
	}
	if g.FrameOf(4) != g.FrameOf(5) {
		t.Errorf("steps 4-5 should share a frame")
	}
	if g.FrameOf(0) == g.FrameOf(4) || g.FrameOf(0) == g.FrameOf(3) {
		t.Errorf("distinct patterns share a frame")
	}
	if g.NumFrames() != 3 { // {0-1}, empty, {1-2}
		t.Errorf("NumFrames = %d, want 3", g.NumFrames())
	}
}

func TestComponentsChainAndIsolated(t *testing.T) {
	// Step 0: chain 0-1-2-3 plus pair 4-5; node 6 isolated.
	tr := mk(t, 7, 10, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 10},
		{A: 1, B: 2, Start: 0, End: 10},
		{A: 2, B: 3, Start: 0, End: 10},
		{A: 4, B: 5, Start: 0, End: 10},
	})
	g, _ := New(tr, 10)
	v := g.View(0)
	if v.NumComponents() != 2 {
		t.Fatalf("NumComponents = %d, want 2", v.NumComponents())
	}
	if v.ComponentOf(6) != -1 {
		t.Errorf("isolated node has component %d", v.ComponentOf(6))
	}
	chain := v.ComponentOf(0)
	for _, x := range []trace.NodeID{1, 2, 3} {
		if v.ComponentOf(x) != chain {
			t.Errorf("node %d not in chain component", x)
		}
	}
	if v.ComponentOf(4) == chain || v.ComponentOf(4) != v.ComponentOf(5) {
		t.Errorf("pair component wrong")
	}
	if got := len(v.Members(chain)); got != 4 {
		t.Errorf("chain component has %d members, want 4", got)
	}
	// Hop distances along the chain.
	for _, tc := range []struct {
		a, b trace.NodeID
		want int
	}{{0, 1, 1}, {0, 2, 2}, {0, 3, 3}, {1, 3, 2}, {2, 2, 0}} {
		d := v.Dist(chain, v.MemberIndex(tc.a), v.MemberIndex(tc.b))
		if d != tc.want {
			t.Errorf("Dist(%d,%d) = %d, want %d", tc.a, tc.b, d, tc.want)
		}
	}
}

// naiveStep rebuilds one step's adjacency the way the pre-index
// implementation did: append in contact order with a linear has-edge
// scan per insertion.
func naiveStep(tr *trace.Trace, delta float64, steps, s int) [][]trace.NodeID {
	adj := make([][]trace.NodeID, tr.NumNodes)
	for _, c := range tr.Contacts() {
		first := int(c.Start / delta)
		last := int(c.End / delta)
		if c.End > c.Start && float64(last)*delta == c.End {
			last--
		}
		if last >= steps {
			last = steps - 1
		}
		if s < first || s > last {
			continue
		}
		dup := false
		for _, n := range adj[c.A] {
			if n == c.B {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		adj[c.A] = append(adj[c.A], c.B)
		adj[c.B] = append(adj[c.B], c.A)
	}
	return adj
}

// Property: every step's CSR rows equal the pre-index adjacency build
// (same neighbors, same order), InContact agrees with row membership,
// and components partition exactly the active nodes with symmetric,
// triangle-consistent distances.
func TestIndexMatchesNaiveBuildProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 12
		var cs []trace.Contact
		for i := 0; i < 25; i++ {
			a := trace.NodeID(rng.Intn(n))
			b := trace.NodeID(rng.Intn(n))
			if a == b {
				continue
			}
			s := rng.Float64() * 90
			cs = append(cs, trace.Contact{A: a, B: b, Start: s, End: s + rng.Float64()*30})
		}
		tr, err := trace.New("q", n, 120, cs)
		if err != nil {
			return false
		}
		g, err := New(tr, 10)
		if err != nil {
			return false
		}
		for s := 0; s < g.Steps; s++ {
			adj := naiveStep(tr, 10, g.Steps, s)
			for x := 0; x < n; x++ {
				row := g.Neighbors(s, trace.NodeID(x))
				if len(row) != len(adj[x]) {
					return false
				}
				for i := range row {
					if row[i] != adj[x][i] {
						return false
					}
				}
				for _, nb := range row {
					if !g.InContact(s, trace.NodeID(x), nb) || !g.InContact(s, nb, trace.NodeID(x)) {
						return false
					}
				}
			}
			v := g.View(s)
			seen := 0
			for c := 0; c < v.NumComponents(); c++ {
				members := v.Members(c)
				if len(members) < 2 {
					return false // components need at least one edge
				}
				seen += len(members)
				for i, a := range members {
					if v.ComponentOf(a) != c || v.MemberIndex(a) != i {
						return false
					}
					if v.Dist(c, i, i) != 0 {
						return false
					}
					for j := range members {
						if v.Dist(c, i, j) != v.Dist(c, j, i) {
							return false
						}
					}
				}
				// Distance 1 iff in contact.
				for i, a := range members {
					for j, b := range members {
						if i == j {
							continue
						}
						if (v.Dist(c, i, j) == 1) != g.InContact(s, a, b) {
							return false
						}
					}
				}
			}
			if seen != len(g.ActiveNodes(s)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: edge counts are symmetric — every neighbor relation
// appears in both adjacency lists.
func TestAdjacencySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 10
		var cs []trace.Contact
		for i := 0; i < 15; i++ {
			a := trace.NodeID(rng.Intn(n))
			b := trace.NodeID(rng.Intn(n))
			if a == b {
				continue
			}
			s := rng.Float64() * 90
			cs = append(cs, trace.Contact{A: a, B: b, Start: s, End: s + rng.Float64()*20})
		}
		tr, err := trace.New("q", n, 120, cs)
		if err != nil {
			return false
		}
		g, err := New(tr, 10)
		if err != nil {
			return false
		}
		for s := 0; s < g.Steps; s++ {
			for x := 0; x < n; x++ {
				for _, nb := range g.Neighbors(s, trace.NodeID(x)) {
					if !g.InContact(s, nb, trace.NodeID(x)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
