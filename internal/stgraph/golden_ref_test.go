package stgraph

// This file vendors the pre-sweep builder (the per-step bucketing
// implementation the event-sweep New replaced) and pins the sweep
// builder against it: for every dataset, delta and random trace in
// the suite, the two builds must agree on every public query — step
// layout, frame identity and sharing, neighbor rows (including
// order, the determinism contract enumeration depends on), contact
// tests, active nodes, components, member lists and order, and every
// pairwise hop distance. Do not "fix" or modernize the reference: its
// output is the contract.

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// --- vendored pre-sweep reference implementation ---

type refGraph struct {
	NumNodes int
	Delta    float64
	Steps    int

	frames    []*refFrame
	stepFrame []int32
}

type refFrame struct {
	offsets []int32
	nbrs    []trace.NodeID
	sorted  []trace.NodeID

	active []trace.NodeID

	compID    []int32
	memberIdx []int32
	comps     []refComponent
}

type refComponent struct {
	members []trace.NodeID
	dist    []int32
}

func (f *refFrame) row(x trace.NodeID) []trace.NodeID {
	return f.nbrs[f.offsets[x]:f.offsets[x+1]]
}

func (f *refFrame) sortedRow(x trace.NodeID) []trace.NodeID {
	return f.sorted[f.offsets[x]:f.offsets[x+1]]
}

type refPairRec struct {
	key uint64
	seq int32
}

func refNew(tr *trace.Trace, delta float64) *refGraph {
	steps := int(math.Ceil(tr.Horizon / delta))
	if steps == 0 {
		steps = 1
	}
	g := &refGraph{
		NumNodes:  tr.NumNodes,
		Delta:     delta,
		Steps:     steps,
		stepFrame: make([]int32, steps),
	}

	perStep := make([][]refPairRec, steps)
	for _, c := range tr.Contacts() {
		first := int(c.Start / delta)
		last := int(c.End / delta)
		if c.End > c.Start && float64(last)*delta == c.End {
			last--
		}
		if last >= steps {
			last = steps - 1
		}
		lo, hi := c.A, c.B
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(uint32(hi))
		for s := first; s <= last; s++ {
			perStep[s] = append(perStep[s], refPairRec{key: key, seq: int32(len(perStep[s]))})
		}
	}

	b := newRefFrameBuilder(tr.NumNodes)
	emptyFrame := int32(-1)
	var prev []refPairRec
	for s := 0; s < steps; s++ {
		pairs := refDedupPairs(perStep[s])
		if len(pairs) == 0 {
			if emptyFrame < 0 {
				emptyFrame = int32(len(g.frames))
				g.frames = append(g.frames, b.build(nil))
			}
			g.stepFrame[s] = emptyFrame
			prev = pairs
			continue
		}
		if s > 0 && refSamePairs(pairs, prev) {
			g.stepFrame[s] = g.stepFrame[s-1]
		} else {
			g.stepFrame[s] = int32(len(g.frames))
			g.frames = append(g.frames, b.build(pairs))
		}
		prev = pairs
	}
	return g
}

func refDedupPairs(pairs []refPairRec) []refPairRec {
	if len(pairs) < 2 {
		return pairs
	}
	slices.SortStableFunc(pairs, func(a, b refPairRec) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	out := pairs[:1]
	for _, p := range pairs[1:] {
		if p.key != out[len(out)-1].key {
			out = append(out, p)
		}
	}
	slices.SortFunc(out, func(a, b refPairRec) int { return int(a.seq) - int(b.seq) })
	return out
}

func refSamePairs(a, b []refPairRec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].key != b[i].key {
			return false
		}
	}
	return true
}

type refFrameBuilder struct {
	n      int
	degree []int32
	cursor []int32
	queue  []trace.NodeID
}

func newRefFrameBuilder(n int) *refFrameBuilder {
	return &refFrameBuilder{
		n:      n,
		degree: make([]int32, n),
		cursor: make([]int32, n),
	}
}

func refUnpack(key uint64) (trace.NodeID, trace.NodeID) {
	return trace.NodeID(key >> 32), trace.NodeID(uint32(key))
}

func (b *refFrameBuilder) build(pairs []refPairRec) *refFrame {
	n := b.n
	f := &refFrame{
		offsets:   make([]int32, n+1),
		compID:    make([]int32, n),
		memberIdx: make([]int32, n),
	}
	deg := b.degree
	for i := range deg {
		deg[i] = 0
	}
	for _, p := range pairs {
		a, c := refUnpack(p.key)
		deg[a]++
		deg[c]++
	}
	total := int32(0)
	for x := 0; x < n; x++ {
		f.offsets[x] = total
		b.cursor[x] = total
		total += deg[x]
	}
	f.offsets[n] = total
	f.nbrs = make([]trace.NodeID, total)
	for _, p := range pairs {
		a, c := refUnpack(p.key)
		f.nbrs[b.cursor[a]] = c
		b.cursor[a]++
		f.nbrs[b.cursor[c]] = a
		b.cursor[c]++
	}
	f.sorted = make([]trace.NodeID, total)
	copy(f.sorted, f.nbrs)
	for x := 0; x < n; x++ {
		if deg[x] > 0 {
			f.active = append(f.active, trace.NodeID(x))
			slices.Sort(f.sortedRow(trace.NodeID(x)))
		}
		f.compID[x] = -1
	}
	b.buildComponents(f)
	return f
}

func (b *refFrameBuilder) buildComponents(f *refFrame) {
	for _, start := range f.active {
		if f.compID[start] >= 0 {
			continue
		}
		id := int32(len(f.comps))
		var members []trace.NodeID
		queue := append(b.queue[:0], start)
		f.compID[start] = id
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			f.memberIdx[cur] = int32(len(members))
			members = append(members, cur)
			for _, nb := range f.row(cur) {
				if f.compID[nb] < 0 {
					f.compID[nb] = id
					queue = append(queue, nb)
				}
			}
		}
		b.queue = queue[:0]

		m := len(members)
		dist := make([]int32, m*m)
		for i := range dist {
			dist[i] = -1
		}
		for j, src := range members {
			row := dist[j*m : (j+1)*m]
			row[j] = 0
			queue = append(b.queue[:0], src)
			for head := 0; head < len(queue); head++ {
				cur := queue[head]
				d := row[f.memberIdx[cur]]
				for _, nb := range f.row(cur) {
					if row[f.memberIdx[nb]] < 0 {
						row[f.memberIdx[nb]] = d + 1
						queue = append(queue, nb)
					}
				}
			}
			b.queue = queue[:0]
		}
		f.comps = append(f.comps, refComponent{members: members, dist: dist})
	}
}

// --- comparison harness ---

// assertGraphsEqual compares every public query of the sweep-built
// graph against the reference build.
func assertGraphsEqual(t *testing.T, label string, tr *trace.Trace, delta float64) {
	t.Helper()
	got, err := New(tr, delta)
	if err != nil {
		t.Fatalf("%s: New: %v", label, err)
	}
	want := refNew(tr, delta)

	if got.Steps != want.Steps || got.NumNodes != want.NumNodes || got.Delta != want.Delta {
		t.Fatalf("%s: shape %d/%d/%g, want %d/%d/%g",
			label, got.Steps, got.NumNodes, got.Delta, want.Steps, want.NumNodes, want.Delta)
	}
	if got.NumFrames() != len(want.frames) {
		t.Fatalf("%s: NumFrames = %d, want %d", label, got.NumFrames(), len(want.frames))
	}
	for s := 0; s < got.Steps; s++ {
		if int32(got.FrameOf(s)) != want.stepFrame[s] {
			t.Fatalf("%s: FrameOf(%d) = %d, want %d", label, s, got.FrameOf(s), want.stepFrame[s])
		}
	}
	n := tr.NumNodes
	for s := 0; s < got.Steps; s++ {
		// Each distinct frame only needs one deep check.
		if s > 0 && got.FrameOf(s) == got.FrameOf(s-1) {
			continue
		}
		wf := want.frames[want.stepFrame[s]]

		if !slices.Equal(got.ActiveNodes(s), wf.active) {
			t.Fatalf("%s: step %d ActiveNodes = %v, want %v", label, s, got.ActiveNodes(s), wf.active)
		}
		wantEdges := len(wf.nbrs) / 2
		if got.EdgeCount(s) != wantEdges {
			t.Fatalf("%s: step %d EdgeCount = %d, want %d", label, s, got.EdgeCount(s), wantEdges)
		}
		for x := 0; x < n; x++ {
			if !slices.Equal(got.Neighbors(s, trace.NodeID(x)), wf.row(trace.NodeID(x))) {
				t.Fatalf("%s: step %d Neighbors(%d) = %v, want %v",
					label, s, x, got.Neighbors(s, trace.NodeID(x)), wf.row(trace.NodeID(x)))
			}
		}
		for _, x := range wf.active {
			for y := 0; y < n; y++ {
				_, wantIn := slices.BinarySearch(wf.sortedRow(x), trace.NodeID(y))
				if got.InContact(s, x, trace.NodeID(y)) != wantIn {
					t.Fatalf("%s: step %d InContact(%d,%d) = %v, want %v",
						label, s, x, y, !wantIn, wantIn)
				}
			}
		}

		v := got.View(s)
		if v.NumComponents() != len(wf.comps) {
			t.Fatalf("%s: step %d NumComponents = %d, want %d",
				label, s, v.NumComponents(), len(wf.comps))
		}
		for x := 0; x < n; x++ {
			if int32(v.ComponentOf(trace.NodeID(x))) != wf.compID[x] {
				t.Fatalf("%s: step %d ComponentOf(%d) = %d, want %d",
					label, s, x, v.ComponentOf(trace.NodeID(x)), wf.compID[x])
			}
		}
		for c := range wf.comps {
			wc := &wf.comps[c]
			if !slices.Equal(v.Members(c), wc.members) {
				t.Fatalf("%s: step %d Members(%d) = %v, want %v",
					label, s, c, v.Members(c), wc.members)
			}
			m := len(wc.members)
			for _, x := range wc.members {
				if v.MemberIndex(x) != int(wf.memberIdx[x]) {
					t.Fatalf("%s: step %d MemberIndex(%d) = %d, want %d",
						label, s, x, v.MemberIndex(x), wf.memberIdx[x])
				}
			}
			for i := 0; i < m; i++ {
				for j := 0; j < m; j++ {
					if got, want := v.Dist(c, i, j), int(wc.dist[i*m+j]); got != want {
						t.Fatalf("%s: step %d Dist(%d,%d,%d) = %d, want %d",
							label, s, c, i, j, got, want)
					}
				}
			}
		}
	}
}

// --- golden suites ---

// TestGoldenDatasets pins the sweep builder to the reference over all
// four paper datasets at several discretization steps (including a
// delta far larger than the typical contact duration and one larger
// than the horizon).
func TestGoldenDatasets(t *testing.T) {
	deltas := []float64{10}
	if !testing.Short() {
		deltas = []float64{2.5, 10, 60, 7200, 2 * tracegen.ConferenceHorizon}
	}
	for _, d := range tracegen.Datasets {
		tr := tracegen.MustGenerate(d)
		for _, delta := range deltas {
			assertGraphsEqual(t, tr.Name, tr, delta)
		}
	}
}

// TestGoldenDevTrace covers the small development trace across seeds.
func TestGoldenDevTrace(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr := tracegen.Dev(seed)
		for _, delta := range []float64{3, 10, 45} {
			assertGraphsEqual(t, tr.Name, tr, delta)
		}
	}
}

// TestGoldenRandomTraces sweeps dense random traces whose contacts
// overlap heavily (duplicate pairs within a step, same-pair records
// overlapping in step space, zero-duration contacts, boundary-aligned
// ends), the regimes where the sweep's incremental bookkeeping has to
// reproduce the reference's per-step dedup exactly.
func TestGoldenRandomTraces(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 3 + rng.Intn(14)
		horizon := 40 + rng.Float64()*200
		delta := []float64{5, 10, 17.3}[trial%3]
		var cs []trace.Contact
		for i := 0; i < 10+rng.Intn(120); i++ {
			a := trace.NodeID(rng.Intn(n))
			b := trace.NodeID(rng.Intn(n - 1))
			if b >= a {
				b++
			}
			start := rng.Float64() * horizon
			var end float64
			switch rng.Intn(4) {
			case 0: // zero duration
				end = start
			case 1: // end aligned to a step boundary
				end = float64(int(start/delta)+1+rng.Intn(3)) * delta
			default:
				end = start + rng.Float64()*horizon/4
			}
			if end > horizon {
				end = horizon
			}
			cs = append(cs, trace.Contact{A: a, B: b, Start: start, End: end})
		}
		tr, err := trace.New("rand", n, horizon, cs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertGraphsEqual(t, tr.Name, tr, delta)
	}
}

// TestGoldenWorkerCounts pins the parallel frame construction: every
// worker count must produce a graph identical to the serial build
// (compared via the reference, which is serial by construction).
func TestGoldenWorkerCounts(t *testing.T) {
	tr := tracegen.Dev(3)
	want := refNew(tr, 10)
	for _, workers := range []int{1, 2, 3, 8} {
		g, err := NewWorkers(tr, 10, workers)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < g.Steps; s++ {
			if int32(g.FrameOf(s)) != want.stepFrame[s] {
				t.Fatalf("workers=%d: FrameOf(%d) = %d, want %d",
					workers, s, g.FrameOf(s), want.stepFrame[s])
			}
			wf := want.frames[want.stepFrame[s]]
			for x := 0; x < tr.NumNodes; x++ {
				if !slices.Equal(g.Neighbors(s, trace.NodeID(x)), wf.row(trace.NodeID(x))) {
					t.Fatalf("workers=%d: step %d Neighbors(%d) differ", workers, s, x)
				}
			}
			v := g.View(s)
			for c := range wf.comps {
				wc := &wf.comps[c]
				m := len(wc.members)
				if !slices.Equal(v.Members(c), wc.members) {
					t.Fatalf("workers=%d: step %d Members(%d) differ", workers, s, c)
				}
				for i := 0; i < m; i++ {
					for j := 0; j < m; j++ {
						if v.Dist(c, i, j) != int(wc.dist[i*m+j]) {
							t.Fatalf("workers=%d: step %d Dist(%d,%d,%d) differs", workers, s, c, i, j)
						}
					}
				}
			}
		}
	}
}
