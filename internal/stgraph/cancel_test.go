package stgraph

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/tracegen"
)

// TestNewWorkersCancelEquivalence: building with a never-firing token
// yields a graph whose snapshot is identical to an untokened build,
// serial and parallel.
func TestNewWorkersCancelEquivalence(t *testing.T) {
	tr := tracegen.Dev(9)
	plain, err := NewWorkers(tr, DefaultDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	inert := engine.NewCancel(context.Background(), time.Hour)
	for _, workers := range []int{1, 4} {
		g, err := NewWorkersCancel(tr, DefaultDelta, workers, nil, &inert)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Snapshot(), g.Snapshot()) {
			t.Fatalf("workers=%d: graph differs under a never-firing token", workers)
		}
	}
}

// TestNewWorkersCancelAbandons: a fired token abandons the build with
// a *engine.CanceledError and no graph.
func TestNewWorkersCancelAbandons(t *testing.T) {
	tr := tracegen.Dev(9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := engine.NewCancel(ctx, 0)
	for _, workers := range []int{1, 4} {
		g, err := NewWorkersCancel(tr, DefaultDelta, workers, nil, &cc)
		if !engine.IsCanceled(err) {
			t.Fatalf("workers=%d: err = %v, want CanceledError", workers, err)
		}
		if g != nil {
			t.Fatalf("workers=%d: build returned a graph alongside cancellation", workers)
		}
	}
}
