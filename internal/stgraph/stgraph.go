// Package stgraph builds the paper's space-time graph (§4.1, based on
// Merugu/Ammar/Zegura): time is discretized in steps of Δ; the vertex
// set is (node, step); an edge of weight zero connects (x, T) to (y, T)
// iff x and y were in contact at any time during [T−Δ, T); an edge of
// unit weight connects (x, T) to (x, T+Δ).
//
// The graph is stored as one contact adjacency list per step. The
// zero-weight edges within a step form an undirected contact graph;
// path enumeration needs its restricted reachability (reachable nodes
// excluding a forbidden set), provided by Reach.
//
// Discretization loses the ordering of contacts within a step: a
// message may traverse two contacts of the same step even when the
// second physically ended before the first began. Each in-step relay
// chain can therefore be optimistic by up to Δ relative to continuous
// time, and the error compounds over consecutive steps — the paper
// accepts this O(Δ) artifact ("we can always identify this time
// accurately to within an error of Δ").
package stgraph

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// DefaultDelta is the paper's discretization step (10 seconds).
const DefaultDelta = 10.0

// Graph is a space-time graph over a trace.
type Graph struct {
	NumNodes int
	Delta    float64
	Steps    int // number of discrete steps; step s covers [s·Δ, (s+1)·Δ)

	// adj[s] is the contact adjacency of step s: adj[s][x] lists the
	// nodes in contact with x during [s·Δ, (s+1)·Δ).
	adj [][][]trace.NodeID
}

// New discretizes a trace with step delta. Following the paper, step
// index T covers the half-open interval [T·Δ, (T+1)·Δ): a contact
// active at any point in that interval produces a zero-weight edge at
// that step.
func New(tr *trace.Trace, delta float64) (*Graph, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("stgraph: delta %g must be positive", delta)
	}
	steps := int(math.Ceil(tr.Horizon / delta))
	if steps == 0 {
		steps = 1
	}
	g := &Graph{
		NumNodes: tr.NumNodes,
		Delta:    delta,
		Steps:    steps,
		adj:      make([][][]trace.NodeID, steps),
	}
	for s := 0; s < steps; s++ {
		g.adj[s] = make([][]trace.NodeID, tr.NumNodes)
	}
	for _, c := range tr.Contacts() {
		first := int(c.Start / delta)
		last := int(c.End / delta)
		if c.End > c.Start && float64(last)*delta == c.End {
			last-- // exclusive end on a step boundary
		}
		if last >= steps {
			last = steps - 1
		}
		for s := first; s <= last; s++ {
			// A pair can have several contact records in one step;
			// dedupe so adjacency lists stay minimal.
			if g.hasEdge(s, c.A, c.B) {
				continue
			}
			g.adj[s][c.A] = append(g.adj[s][c.A], c.B)
			g.adj[s][c.B] = append(g.adj[s][c.B], c.A)
		}
	}
	return g, nil
}

func (g *Graph) hasEdge(s int, a, b trace.NodeID) bool {
	for _, n := range g.adj[s][a] {
		if n == b {
			return true
		}
	}
	return false
}

// StepOf returns the step index whose interval contains time t
// (clamped to the valid range).
func (g *Graph) StepOf(t float64) int {
	s := int(t / g.Delta)
	if s < 0 {
		return 0
	}
	if s >= g.Steps {
		return g.Steps - 1
	}
	return s
}

// TimeOf returns the start time of step s.
func (g *Graph) TimeOf(s int) float64 { return float64(s) * g.Delta }

// Neighbors returns the nodes in contact with x at step s. The
// returned slice is shared and must not be modified.
func (g *Graph) Neighbors(s int, x trace.NodeID) []trace.NodeID {
	return g.adj[s][x]
}

// InContact reports whether nodes a and b share a zero-weight edge at
// step s.
func (g *Graph) InContact(s int, a, b trace.NodeID) bool {
	return g.hasEdge(s, a, b)
}

// Reach appends to dst the nodes reachable from src at step s via
// zero-weight edges without passing through (or into) any node for
// which forbidden returns true. src itself is not appended. This is
// the "distinct extensions ... via paths of zero weight" step of the
// paper's enumeration algorithm: a message can traverse several
// contacts within one Δ interval, but never through a node already on
// its path.
//
// The visited scratch slice must have length NumNodes and be false
// everywhere; it is restored before returning.
func (g *Graph) Reach(s int, src trace.NodeID, forbidden func(trace.NodeID) bool, visited []bool, dst []trace.NodeID) []trace.NodeID {
	var queue []trace.NodeID
	visited[src] = true
	queue = append(queue, src)
	touched := []trace.NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[s][cur] {
			if visited[nb] || forbidden(nb) {
				continue
			}
			visited[nb] = true
			touched = append(touched, nb)
			dst = append(dst, nb)
			queue = append(queue, nb)
		}
	}
	for _, n := range touched {
		visited[n] = false
	}
	return dst
}

// ActiveNodes returns the nodes with at least one contact at step s.
func (g *Graph) ActiveNodes(s int) []trace.NodeID {
	var out []trace.NodeID
	for n := 0; n < g.NumNodes; n++ {
		if len(g.adj[s][n]) > 0 {
			out = append(out, trace.NodeID(n))
		}
	}
	return out
}

// EdgeCount returns the number of distinct zero-weight edges at step s.
func (g *Graph) EdgeCount(s int) int {
	total := 0
	for n := 0; n < g.NumNodes; n++ {
		total += len(g.adj[s][n])
	}
	return total / 2
}
