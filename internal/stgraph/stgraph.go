// Package stgraph builds the paper's space-time graph (§4.1, based on
// Merugu/Ammar/Zegura): time is discretized in steps of Δ; the vertex
// set is (node, step); an edge of weight zero connects (x, T) to (y, T)
// iff x and y were in contact at any time during [T−Δ, T); an edge of
// unit weight connects (x, T) to (x, T+Δ).
//
// The graph is an immutable index. Each step is backed by a frame: a
// CSR adjacency (flat offset + neighbor arrays) plus, precomputed once,
// the step's contact components — component IDs, member lists, and
// intra-component all-pairs hop distances. Contacts span many Δ-wide
// steps, so most steps repeat the previous step's contact pattern;
// identical consecutive steps share one frame, so the component and
// distance indexes are computed once per distinct pattern rather than
// once per step (let alone once per enumerated message, as the
// pre-index enumerator did).
//
// New is an event sweep: contact start/end boundaries are bucketed by
// step once, the active pair set is maintained incrementally across
// steps, and a frame is emitted only at steps where the contact
// pattern actually changes — O(contacts·log contacts) sweep work plus
// per-distinct-frame construction, instead of re-inserting every
// contact into every step it spans and sort-deduplicating each step
// from scratch. All frame storage (offsets, neighbor rows, component
// labels, member lists, distance matrices) lives in a handful of
// per-graph slabs sized by a pre-pass, so a build performs O(1)
// allocations per frame rather than O(components); the expensive
// per-frame work (CSR fill, component labeling, per-member BFS
// distances) is parallelized across distinct frames through
// internal/engine, each frame writing only its own slab regions so
// the result is byte-identical for every worker count.
//
// Neighbor order is part of the determinism contract: Neighbors lists
// a node's contacts in first-contact-record order (contacts are sorted
// by start time), exactly reproducing the adjacency built by the
// pre-sweep implementation, so path enumeration visits nodes — and
// therefore selects representative paths — byte-identically. The
// golden suite in golden_ref_test.go pins every query against a
// vendored copy of the pre-sweep builder.
//
// Discretization loses the ordering of contacts within a step: a
// message may traverse two contacts of the same step even when the
// second physically ended before the first began. Each in-step relay
// chain can therefore be optimistic by up to Δ relative to continuous
// time, and the error compounds over consecutive steps — the paper
// accepts this O(Δ) artifact ("we can always identify this time
// accurately to within an error of Δ").
package stgraph

import (
	"fmt"
	"math"
	"math/bits"
	"slices"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// DefaultDelta is the paper's discretization step (10 seconds).
const DefaultDelta = 10.0

// Graph is an indexed space-time graph over a trace.
type Graph struct {
	NumNodes int
	Delta    float64
	Steps    int // number of discrete steps; step s covers [s·Δ, (s+1)·Δ)

	frames    []frame
	stepFrame []int32 // step -> index into frames
}

// frame is the shared per-step index: one frame backs every maximal
// run of consecutive steps with an identical contact pattern. All
// slices alias per-graph slabs or per-worker arena chunks. Component
// records are flat int32 tables rather than per-component structs, so
// a built graph holds almost no GC-scannable pointers beyond the slab
// headers themselves.
type frame struct {
	// CSR adjacency. Row x is nbrs[offsets[x]:offsets[x+1]], in
	// first-contact order (the canonical enumeration order).
	offsets []int32
	nbrs    []trace.NodeID

	active []trace.NodeID // nodes with at least one contact, ascending

	// Contact components. compID[x] holds x's component id plus one
	// (so the slab's zero value means "no contacts" without a
	// per-frame fill). members lists every contacted node in BFS
	// discovery order, grouped by component: component c's members
	// are members[compBounds[c]:compBounds[c+1]].
	compID     []int32
	members    []trace.NodeID
	compBounds []int32

	// prevSame[c] reports that component c is identical — same member
	// list, same adjacency rows, hence same distances — to a component
	// of the frame backing the preceding step. Consumers use it to
	// skip per-step work that cannot have changed across the boundary.
	prevSame []bool

	// distRef[c] locates component c's all-pairs hop-distance matrix
	// (row-major over member indices; components are connected, so
	// every entry is finite): a non-negative value is an offset into
	// dist, a negative value selects one of the shared static
	// matrices in staticDist (two-member components and the four
	// three-member shapes are identical everywhere).
	distRef []int32
	dist    []int32
}

func (f *frame) row(x trace.NodeID) []trace.NodeID {
	return f.nbrs[f.offsets[x]:f.offsets[x+1]]
}

// New discretizes a trace with step delta and builds the step index.
// Following the paper, step index T covers the half-open interval
// [T·Δ, (T+1)·Δ): a contact active at any point in that interval
// produces a zero-weight edge at that step.
func New(tr *trace.Trace, delta float64) (*Graph, error) {
	return NewWorkers(tr, delta, 0)
}

// NewWorkers is New with an explicit worker count for the per-frame
// construction fan-out (0 = GOMAXPROCS, 1 = serial). The built graph
// is byte-identical for every worker count.
func NewWorkers(tr *trace.Trace, delta float64, workers int) (*Graph, error) {
	return NewWorkersObs(tr, delta, workers, nil)
}

// NewWorkersObs is NewWorkers with stage spans recorded into ot: the
// event sweep (boundary bucketing plus frame-spec emission) and the
// frame fill (CSR rows, components, distance tables, stable-component
// marks) are timed separately, so a serving layer can tell which half
// of a cold build dominates. A nil ot costs one pointer check.
func NewWorkersObs(tr *trace.Trace, delta float64, workers int, ot *obs.Trace) (*Graph, error) {
	return NewWorkersCancel(tr, delta, workers, ot, nil)
}

// NewWorkersCancel is NewWorkersObs with a cooperative cancellation
// token polled at amortized checkpoints of both build halves; once cc
// fires the build abandons with a *engine.CanceledError and no graph.
// A nil cc is inert, and a token that never fires leaves the built
// graph byte-identical.
func NewWorkersCancel(tr *trace.Trace, delta float64, workers int, ot *obs.Trace, cc *engine.Cancel) (*Graph, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("stgraph: delta %g must be positive", delta)
	}
	steps := int(math.Ceil(tr.Horizon / delta))
	if steps == 0 {
		steps = 1
	}
	g := &Graph{
		NumNodes:  tr.NumNodes,
		Delta:     delta,
		Steps:     steps,
		stepFrame: make([]int32, steps),
	}
	sp := ot.Start(obs.StageGraphSweep)
	sw := newSweep(tr, delta, steps)
	canceled := sw.run(g, cc)
	sp.End()
	if canceled {
		return nil, cc.FiredErr()
	}
	sp = ot.Start(obs.StageGraphFrames)
	if buildFrames(g, sw, tr.NumNodes, workers, cc) {
		sp.End()
		return nil, cc.FiredErr()
	}
	markStableComponents(g, sw.framePrev)
	sp.End()
	return g, nil
}

// markStableComponents fills each frame's prevSame marks by comparing
// its components against the frame backing the preceding step:
// identical member list and identical adjacency rows per member mean
// the component — including its distance matrix, a pure function of
// the adjacency — carried over unchanged. One sequential O(V+E) pass
// over the emitted frames; rows and member lists are canonical
// (first-contact order, BFS discovery order), so list equality is
// subgraph equality.
func markStableComponents(g *Graph, framePrev []int32) {
	total := 0
	for i := range g.frames {
		total += len(g.frames[i].distRef)
	}
	slab := make([]bool, total)
	off := 0
	for i := range g.frames {
		f := &g.frames[i]
		nc := len(f.distRef)
		f.prevSame = slab[off : off+nc]
		off += nc
		pf := framePrev[i]
		if pf < 0 {
			continue
		}
		prev := &g.frames[pf]
		for c := 0; c < nc; c++ {
			members := f.members[f.compBounds[c]:f.compBounds[c+1]]
			if len(members) == 0 {
				// Built graphs never emit empty components; a restored
				// hostile snapshot can (FromSnapshot reruns this pass).
				continue
			}
			c2 := int(prev.compID[members[0]]) - 1
			if c2 < 0 {
				continue
			}
			pm := prev.members[prev.compBounds[c2]:prev.compBounds[c2+1]]
			if !slices.Equal(members, pm) {
				continue
			}
			same := true
			for _, m := range members {
				if !slices.Equal(f.row(m), prev.row(m)) {
					same = false
					break
				}
			}
			f.prevSame[c] = same
		}
	}
}

// sweep holds the event-sweep state of one build: per-contact step
// spans bucketed into start/end events, and the incrementally
// maintained active pair set.
type sweep struct {
	steps int

	// Start/end events in CSR layout: startEvents[startIdx[s]:
	// startIdx[s+1]] are the contacts whose span begins at step s, in
	// trace order; endEvents likewise for spans ending before step s.
	startIdx, endIdx []int32
	startEvents      []int32
	endEvents        []int32

	// slotOf maps each contact to its pair slot (one slot per distinct
	// unordered node pair appearing in the trace).
	slotOf   []int32
	slotKeys []uint64 // slot -> packed pair key

	// Active-record bookkeeping. A pair slot is active when at least
	// one of its contact records spans the current step; its rank —
	// the position the pair takes in the step's canonical order — is
	// the smallest trace index among its active records (the earliest
	// contact record covering the step). Records of one slot form a
	// doubly linked list through nextRec/prevRec, inserted in
	// ascending trace order, so slotMin is the list head.
	slotMin, slotTail []int32
	nextRec, prevRec  []int32
	slotPos           []int32 // slot -> position in ord (valid while active)

	// ord is the active slots in rank order — exactly the step's
	// canonical pair order — maintained incrementally: a newly
	// activated slot's rank is the highest contact index seen so far
	// (appends at the tail), and a rank only changes when a slot's
	// head record ends while a later record keeps it active (a rank
	// increase, repositioned rightwards in place). Deactivated slots
	// are tombstoned (slotMin -1) and compacted away by the next
	// emission's walk over ord, so the common removal is O(1). live
	// counts the non-tombstoned entries. No per-step sort.
	ord  []int32
	live int

	// Per-node count of active pairs and the number of nodes with at
	// least one, maintained on slot (de)activation so each emitted
	// frame knows its active-node count without a separate sizing
	// pass over its pairs.
	nodeDeg     []int32
	activeNodes int32

	// Emitted frame specs: frame f's ordered pair keys are
	// pairSlab[frameOff[f]:frameOff[f+1]] and it has frameActive[f]
	// contacted nodes.
	pairSlab    []uint64
	frameOff    []int32
	frameActive []int32

	// framePrev[f] is the frame backing the step just before frame
	// f's first step (-1 for the frame of step 0). It feeds the
	// stable-component pass: components identical to one in the
	// preceding step are marked so consumers can skip re-deriving
	// per-step state that provably cannot have changed.
	framePrev []int32
}

// pairKey packs an unordered node pair as lo<<32 | hi.
func pairKey(a, b trace.NodeID) uint64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return uint64(lo)<<32 | uint64(uint32(hi))
}

func unpack(key uint64) (trace.NodeID, trace.NodeID) {
	return trace.NodeID(key >> 32), trace.NodeID(uint32(key))
}

// contactSpan returns the inclusive step span [first, last] a contact
// covers, or ok=false when the contact touches no step.
func contactSpan(c trace.Contact, delta float64, steps int) (first, last int, ok bool) {
	first = int(c.Start / delta)
	last = int(c.End / delta)
	if c.End > c.Start && float64(last)*delta == c.End {
		last-- // exclusive end on a step boundary
	}
	if last >= steps {
		last = steps - 1
	}
	return first, last, first < steps && first <= last
}

func newSweep(tr *trace.Trace, delta float64, steps int) *sweep {
	contacts := tr.Contacts()
	n := len(contacts)
	sw := &sweep{
		steps:    steps,
		startIdx: make([]int32, steps+1),
		endIdx:   make([]int32, steps+1),
		slotOf:   make([]int32, n),
		nextRec:  make([]int32, n),
		prevRec:  make([]int32, n),
	}

	// Bucket span boundaries by step (counting sort: count, prefix,
	// fill). Events within one step keep ascending trace order.
	firsts := make([]int32, n)
	lasts := make([]int32, n)
	for i, c := range contacts {
		first, last, ok := contactSpan(c, delta, steps)
		if !ok {
			firsts[i] = -1
			continue
		}
		firsts[i], lasts[i] = int32(first), int32(last)
		sw.startIdx[first]++
		if last+1 < steps {
			sw.endIdx[last+1]++
		}
	}
	startTotal, endTotal := int32(0), int32(0)
	for s := 0; s < steps; s++ {
		cs, ce := sw.startIdx[s], sw.endIdx[s]
		sw.startIdx[s], sw.endIdx[s] = startTotal, endTotal
		startTotal += cs
		endTotal += ce
	}
	sw.startIdx[steps], sw.endIdx[steps] = startTotal, endTotal
	sw.startEvents = make([]int32, startTotal)
	sw.endEvents = make([]int32, endTotal)
	startCur := append([]int32(nil), sw.startIdx[:steps]...)
	endCur := append([]int32(nil), sw.endIdx[:steps]...)
	for i := range contacts {
		if firsts[i] < 0 {
			continue
		}
		sw.startEvents[startCur[firsts[i]]] = int32(i)
		startCur[firsts[i]]++
		if e := int(lasts[i]) + 1; e < steps {
			sw.endEvents[endCur[e]] = int32(i)
			endCur[e]++
		}
	}

	// Assign one dense slot per distinct pair. Small node counts use a
	// direct n×n table (first-encounter numbering); larger ones sort
	// the packed keys, dedup, and map each contact by binary search.
	// Slot numbering never affects the result — per-step order is
	// decided by record ranks alone.
	nn := tr.NumNodes
	if nn*nn <= 1<<18 {
		table := make([]int32, nn*nn)
		for i, c := range contacts {
			lo, hi := c.A, c.B
			if lo > hi {
				lo, hi = hi, lo
			}
			k := int(lo)*nn + int(hi)
			s := table[k]
			if s == 0 {
				sw.slotKeys = append(sw.slotKeys, pairKey(c.A, c.B))
				s = int32(len(sw.slotKeys))
				table[k] = s
			}
			sw.slotOf[i] = s - 1
		}
	} else {
		keys := make([]uint64, n)
		for i, c := range contacts {
			keys[i] = pairKey(c.A, c.B)
		}
		sorted := append([]uint64(nil), keys...)
		slices.Sort(sorted)
		sw.slotKeys = slices.Compact(sorted)
		for i, k := range keys {
			slot, _ := slices.BinarySearch(sw.slotKeys, k)
			sw.slotOf[i] = int32(slot)
		}
	}
	numSlots := len(sw.slotKeys)
	sw.slotMin = make([]int32, numSlots)
	sw.slotTail = make([]int32, numSlots)
	sw.slotPos = make([]int32, numSlots)
	for s := range sw.slotMin {
		sw.slotMin[s] = -1
		sw.slotPos[s] = -1
	}
	// Pre-size the key slab near its final extent (a few keys per
	// contact in practice) to avoid growth copies.
	sw.pairSlab = make([]uint64, 0, 4*n+64)
	sw.nodeDeg = make([]int32, tr.NumNodes)
	return sw
}

// add activates contact record i (ascending trace order within each
// slot, so insertion is always at the tail). A newly active slot's
// rank i exceeds every current rank — every other active record
// started earlier — so it appends at ord's tail, keeping rank order.
func (sw *sweep) add(i int32) {
	s := sw.slotOf[i]
	if sw.slotMin[s] < 0 {
		sw.slotMin[s], sw.slotTail[s] = i, i
		sw.prevRec[i], sw.nextRec[i] = -1, -1
		if pos := sw.slotPos[s]; pos >= 0 {
			// The slot's tombstone from an earlier deactivation is
			// still in ord (no emission compacted it yet): drop it so
			// the slot re-enters at the tail with its new rank.
			for j := int(pos) + 1; j < len(sw.ord); j++ {
				sw.ord[j-1] = sw.ord[j]
				sw.slotPos[sw.ord[j-1]] = int32(j - 1)
			}
			sw.ord = sw.ord[:len(sw.ord)-1]
		}
		sw.slotPos[s] = int32(len(sw.ord))
		sw.ord = append(sw.ord, s)
		sw.live++
		a, b := unpack(sw.slotKeys[s])
		if sw.nodeDeg[a]++; sw.nodeDeg[a] == 1 {
			sw.activeNodes++
		}
		if sw.nodeDeg[b]++; sw.nodeDeg[b] == 1 {
			sw.activeNodes++
		}
		return
	}
	t := sw.slotTail[s]
	sw.nextRec[t] = i
	sw.prevRec[i], sw.nextRec[i] = t, -1
	sw.slotTail[s] = i
}

// remove deactivates contact record i. When i was its slot's head the
// slot's rank changes: the slot is either tombstoned in place (no
// record remains; the next emission compacts it away) or moves
// rightwards to its successor record's rank.
func (sw *sweep) remove(i int32) {
	s := sw.slotOf[i]
	if sw.slotMin[s] != i {
		// Not the head: the slot's rank is unaffected.
		p, q := sw.prevRec[i], sw.nextRec[i]
		sw.nextRec[p] = q
		if q >= 0 {
			sw.prevRec[q] = p
		} else {
			sw.slotTail[s] = p
		}
		return
	}
	q := sw.nextRec[i]
	if q < 0 {
		// Slot is no longer active: tombstone in place (slotPos keeps
		// tracking the tombstone until a compaction drops it).
		sw.slotMin[s] = -1
		sw.live--
		a, b := unpack(sw.slotKeys[s])
		if sw.nodeDeg[a]--; sw.nodeDeg[a] == 0 {
			sw.activeNodes--
		}
		if sw.nodeDeg[b]--; sw.nodeDeg[b] == 0 {
			sw.activeNodes--
		}
		return
	}
	sw.prevRec[q] = -1
	sw.slotMin[s] = q
	// Rank increased from i to q: shift the entries ranked between
	// them (live or tombstoned — tombstones keep their position until
	// the next compaction) one left and reinsert s. ord[pos+1:] stays
	// rank-sorted because tombstones are skipped by rank reads only
	// at compaction time; their stale slotMin is -1, which sorts low,
	// so they must be hopped over explicitly here.
	pos := int(sw.slotPos[s])
	j := pos + 1
	for j < len(sw.ord) {
		t := sw.ord[j]
		if sw.slotMin[t] >= q {
			break
		}
		sw.ord[j-1] = t
		sw.slotPos[t] = int32(j - 1)
		j++
	}
	sw.ord[j-1] = s
	sw.slotPos[s] = int32(j - 1)
}

// run sweeps the steps, fills g.stepFrame, and records one ordered
// pair-key spec per emitted frame. The canonical per-step order — a
// pair ranks by the earliest contact record covering the step — and
// the frame-sharing rule (a step shares the previous step's frame iff
// the ordered key lists are equal; empty steps all share one frame)
// reproduce the pre-sweep builder exactly. It reports whether the
// sweep abandoned at a cancellation checkpoint, leaving the graph
// partially filled — the caller must then discard it.
func (sw *sweep) run(g *Graph, cc *engine.Cancel) bool {
	emptyFrame := int32(-1)
	var prevKeys []uint64
	prevValid := false // prevKeys meaningful (s > 0)

	for s := 0; s < sw.steps; s++ {
		if s&1023 == 1023 && cc.Stopped() {
			return true
		}
		changed := false
		for _, i := range sw.endEvents[sw.endIdx[s]:sw.endIdx[s+1]] {
			sw.remove(i)
			changed = true
		}
		for _, i := range sw.startEvents[sw.startIdx[s]:sw.startIdx[s+1]] {
			sw.add(i)
			changed = true
		}
		if !changed && s > 0 {
			// No boundary crossed: the pattern is structurally the
			// previous step's — share its frame without comparing.
			g.stepFrame[s] = g.stepFrame[s-1]
			continue
		}
		prev := int32(-1)
		if s > 0 {
			prev = g.stepFrame[s-1]
		}
		if sw.live == 0 {
			for _, slot := range sw.ord {
				sw.slotPos[slot] = -1
			}
			sw.ord = sw.ord[:0]
			if emptyFrame < 0 {
				emptyFrame = sw.emitKeys(len(sw.pairSlab), prev)
			}
			g.stepFrame[s] = emptyFrame
			prevKeys, prevValid = nil, true
			continue
		}
		// Materialize the ordered key list in scratch shared with the
		// slab — compacting tombstoned slots away as the walk goes —
		// then roll back if the step repeats the previous pattern.
		mark := len(sw.pairSlab)
		w := 0
		for _, slot := range sw.ord {
			if sw.slotMin[slot] < 0 {
				sw.slotPos[slot] = -1
				continue
			}
			sw.ord[w] = slot
			sw.slotPos[slot] = int32(w)
			w++
			sw.pairSlab = append(sw.pairSlab, sw.slotKeys[slot])
		}
		sw.ord = sw.ord[:w]
		keys := sw.pairSlab[mark:]
		if prevValid && slices.Equal(keys, prevKeys) {
			sw.pairSlab = sw.pairSlab[:mark]
			g.stepFrame[s] = g.stepFrame[s-1]
			// prevKeys keeps pointing at the prior copy, still live.
			continue
		}
		g.stepFrame[s] = sw.emitKeys(mark, prev)
		prevKeys, prevValid = keys, true
	}
	sw.frameOff = append(sw.frameOff, int32(len(sw.pairSlab)))
	return false
}

// emitKeys emits the frame whose keys start at pairSlab[mark],
// recording the current active-node count and the frame backing the
// preceding step.
func (sw *sweep) emitKeys(mark int, prev int32) int32 {
	id := int32(len(sw.frameOff))
	sw.frameOff = append(sw.frameOff, int32(mark))
	sw.frameActive = append(sw.frameActive, sw.activeNodes)
	sw.framePrev = append(sw.framePrev, prev)
	return id
}

// buildScratch is one worker's reusable per-frame construction state.
// degree and cursor are cleared after each frame by walking the
// frame's own nodes, so reuse across frames costs no O(n) reset. The
// comps and dist arenas hand out chunked slab space for component
// records and distance matrices, whose totals are only known after
// labeling; chunks are never grown in place, so handed-out slices
// stay valid.
type buildScratch struct {
	degree []int32
	cursor []int32
	queue  []trace.NodeID
	bounds []int32 // component boundaries of the frame being built
	// localIdx[x] is x's member index within the component currently
	// being solved; only entries of that component's members are ever
	// read, so it needs no reset between components or frames.
	localIdx []int32
	adj      [maxBitsetComp]uint64
	meta     arena[int32]
	dist     arena[int32]
}

// maxBitsetComp is the largest component solved by single-word bitset
// BFS; larger components fall back to queue BFS.
const maxBitsetComp = 64

// arena hands out slices from append-only chunks of chunk elements.
type arena[T any] struct {
	chunk int
	cur   []T
	used  int
}

func (a *arena[T]) alloc(n int) []T {
	if a.used+n > len(a.cur) {
		size := a.chunk
		if n > size {
			size = n
		}
		a.cur = make([]T, size)
		a.used = 0
	}
	s := a.cur[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// buildFrames materializes every emitted frame spec into slab-backed
// storage. Slab extents come from counts the sweep recorded; one
// parallel pass over frames fills adjacency, labels components and
// computes per-component all-pairs distances, drawing component
// tables and distance matrices from per-worker arenas (their totals
// are only known after labeling). Every frame writes only its own
// slab regions, so graph contents are identical for any worker count.
// A fired cc makes the remaining frames no-ops (MapWorkers cannot stop
// early) and buildFrames report true; the partial graph must then be
// discarded. Both stop conditions are monotonic, so a false return
// guarantees no frame was skipped.
func buildFrames(g *Graph, sw *sweep, n, workers int, cc *engine.Cancel) bool {
	frameOff, pairSlab := sw.frameOff, sw.pairSlab
	numFrames := len(frameOff) - 1
	if numFrames < 0 {
		numFrames = 0
	}
	g.frames = make([]frame, numFrames)
	if numFrames == 0 {
		return false
	}

	activeOff := make([]int32, numFrames+1)
	var activeTotal int32
	for f := 0; f < numFrames; f++ {
		activeOff[f] = activeTotal
		activeTotal += sw.frameActive[f]
	}
	activeOff[numFrames] = activeTotal

	offsetsSlab := make([]int32, numFrames*(n+1))
	compIDSlab := make([]int32, numFrames*n)
	nbrsSlab := make([]trace.NodeID, 2*len(pairSlab))
	activeSlab := make([]trace.NodeID, activeTotal)
	membersSlab := make([]trace.NodeID, activeTotal)

	nw := engine.Workers(workers)
	if nw > numFrames {
		nw = numFrames
	}
	scratch := make([]buildScratch, nw)
	for w := range scratch {
		scratch[w] = buildScratch{
			degree:   make([]int32, n),
			cursor:   make([]int32, n),
			queue:    make([]trace.NodeID, 0, n),
			bounds:   make([]int32, 0, n+1),
			localIdx: make([]int32, n),
			meta:     arena[int32]{chunk: 1 << 13},
			dist:     arena[int32]{chunk: 1 << 15},
		}
	}

	engine.MapWorkers(nw, numFrames, func(w, i int) {
		if cc.Stopped() {
			return
		}
		f := &g.frames[i]
		f.offsets = offsetsSlab[i*(n+1) : (i+1)*(n+1)]
		f.compID = compIDSlab[i*n : (i+1)*n]
		f.nbrs = nbrsSlab[2*frameOff[i] : 2*frameOff[i+1]]
		f.active = activeSlab[activeOff[i]:activeOff[i]:activeOff[i+1]]
		f.members = membersSlab[activeOff[i]:activeOff[i+1]]
		pairs := pairSlab[frameOff[i]:frameOff[i+1]]
		b := &scratch[w]

		for _, p := range pairs {
			a, c := unpack(p)
			b.degree[a]++
			b.degree[c]++
		}
		total := int32(0)
		for x := 0; x < n; x++ {
			f.offsets[x] = total
			b.cursor[x] = total
			total += b.degree[x]
			if b.degree[x] > 0 {
				f.active = append(f.active, trace.NodeID(x))
			}
		}
		f.offsets[n] = total
		// Filling both directions in pair order reproduces the append
		// order of the pre-sweep adjacency build exactly.
		for _, p := range pairs {
			a, c := unpack(p)
			f.nbrs[b.cursor[a]] = c
			b.cursor[a]++
			f.nbrs[b.cursor[c]] = a
			b.cursor[c]++
		}
		buildComponents(f, b)
		// Reset scratch by walking only this frame's nodes.
		for _, x := range f.active {
			b.degree[x], b.cursor[x] = 0, 0
		}
	})
	return cc.Stopped()
}

// Static distance-matrix codes stored in frame.distRef: every
// two-member component has the same matrix, and a connected
// three-member component is either a triangle or a path (identified
// by its middle member's index). Sharing one immutable matrix per
// shape removes both the arena traffic and the BFS for ~three
// quarters of all components in a sparse contact graph.
const (
	refDist2    = -1 - iota // {0 1 / 1 0}
	refDist3Tri             // triangle
	refDist3P0              // path, middle is member 0
	refDist3P1              // path, middle is member 1
	refDist3P2              // path, middle is member 2
)

var staticDist = [5][]int32{
	{0, 1, 1, 0},
	{0, 1, 1, 1, 0, 1, 1, 1, 0},
	{0, 1, 1, 1, 0, 2, 1, 2, 0},
	{0, 1, 2, 1, 0, 1, 2, 1, 0},
	{0, 2, 1, 2, 0, 1, 1, 1, 0},
}

// buildComponents BFS-labels the frame's contact components in active
// order (member discovery order grouped by component, matching the
// pre-sweep builder), then fills the flat component tables: member
// boundaries, distance references, and the distance matrices of
// components too big for a static shape.
func buildComponents(f *frame, b *buildScratch) {
	filled := 0
	bigLen := 0
	bounds := append(b.bounds[:0], 0)
	for _, start := range f.active {
		if f.compID[start] != 0 {
			continue
		}
		id := int32(len(bounds)) // stored off by one: zero means "no contacts"
		compStart := filled
		queue := append(b.queue[:0], start)
		f.compID[start] = id
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			f.members[filled] = cur
			filled++
			for _, nb := range f.row(cur) {
				if f.compID[nb] == 0 {
					f.compID[nb] = id
					queue = append(queue, nb)
				}
			}
		}
		b.queue = queue[:0]
		if m := filled - compStart; m > 3 {
			bigLen += m * m
		}
		bounds = append(bounds, int32(filled))
	}
	b.bounds = bounds

	comps := len(bounds) - 1
	meta := b.meta.alloc(2*comps + 1)
	f.compBounds = meta[: comps+1 : comps+1]
	copy(f.compBounds, bounds)
	f.distRef = meta[comps+1:]
	f.dist = b.dist.alloc(bigLen)

	off := int32(0)
	for c := 0; c < comps; c++ {
		members := f.members[bounds[c]:bounds[c+1]]
		switch len(members) {
		case 2:
			f.distRef[c] = refDist2
		case 3:
			d0, d1 := len(f.row(members[0])), len(f.row(members[1]))
			switch {
			case d0+d1+len(f.row(members[2])) == 6:
				f.distRef[c] = refDist3Tri
			case d0 == 2:
				f.distRef[c] = refDist3P0
			case d1 == 2:
				f.distRef[c] = refDist3P1
			default:
				f.distRef[c] = refDist3P2
			}
		default:
			m := len(members)
			f.distRef[c] = off
			fillDistances(f, members, f.dist[off:off+int32(m*m)], b)
			off += int32(m * m)
		}
	}
}

// fillDistances computes one component's all-pairs hop distances (for
// components of four or more members; smaller ones share static
// matrices). Components up to 64 members run a single-word bitset BFS
// per member, and symmetry halves the work: member j only resolves
// distances to members below j (stopping as soon as all are reached)
// and mirrors each entry, so member 0 costs nothing. Larger
// components fall back to one full queue BFS per member, as the
// pre-sweep builder did for every component.
func fillDistances(f *frame, members []trace.NodeID, dist []int32, b *buildScratch) {
	m := len(members)
	for i, x := range members {
		b.localIdx[x] = int32(i)
	}
	if m <= maxBitsetComp {
		adj := &b.adj
		for i, x := range members {
			var mask uint64
			for _, nb := range f.row(x) {
				mask |= 1 << uint(b.localIdx[nb])
			}
			adj[i] = mask
		}
		for j := 0; j < m; j++ {
			dist[j*m+j] = 0
			remaining := uint64(1)<<uint(j) - 1 // members below j
			visited := uint64(1) << uint(j)
			frontier := visited
			d := int32(0)
			for remaining != 0 {
				var next uint64
				for fr := frontier; fr != 0; fr &= fr - 1 {
					next |= adj[bits.TrailingZeros64(fr)]
				}
				next &^= visited
				if next == 0 {
					break // unreachable: components are connected
				}
				d++
				for fr := next & remaining; fr != 0; fr &= fr - 1 {
					k := bits.TrailingZeros64(fr)
					dist[j*m+k] = d
					dist[k*m+j] = d
				}
				remaining &^= next
				visited |= next
				frontier = next
			}
		}
		return
	}
	for i := range dist {
		dist[i] = -1
	}
	for j, src := range members {
		row := dist[j*m : (j+1)*m]
		row[j] = 0
		queue := append(b.queue[:0], src)
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			d := row[b.localIdx[cur]]
			for _, nb := range f.row(cur) {
				if row[b.localIdx[nb]] < 0 {
					row[b.localIdx[nb]] = d + 1
					queue = append(queue, nb)
				}
			}
		}
		b.queue = queue[:0]
	}
}

// StepOf returns the step index whose interval contains time t
// (clamped to the valid range).
func (g *Graph) StepOf(t float64) int {
	s := int(t / g.Delta)
	if s < 0 {
		return 0
	}
	if s >= g.Steps {
		return g.Steps - 1
	}
	return s
}

// TimeOf returns the start time of step s.
func (g *Graph) TimeOf(s int) float64 { return float64(s) * g.Delta }

// frameAt returns the frame backing step s.
func (g *Graph) frameAt(s int) *frame { return &g.frames[g.stepFrame[s]] }

// NumFrames returns the number of distinct step frames (consecutive
// steps with identical contact patterns share one frame).
func (g *Graph) NumFrames() int { return len(g.frames) }

// FrameOf returns the index of the frame backing step s. Two steps
// with equal FrameOf values share all per-step indexes.
func (g *Graph) FrameOf(s int) int { return int(g.stepFrame[s]) }

// Neighbors returns the nodes in contact with x at step s, in
// first-contact order (the canonical enumeration order). The returned
// slice is shared and must not be modified.
func (g *Graph) Neighbors(s int, x trace.NodeID) []trace.NodeID {
	return g.frameAt(s).row(x)
}

// InContact reports whether nodes a and b share a zero-weight edge at
// step s, by scanning a's row (instantaneous contact graphs are
// sparse; rows hold a handful of entries).
func (g *Graph) InContact(s int, a, b trace.NodeID) bool {
	return slices.Contains(g.frameAt(s).row(a), b)
}

// ActiveNodes returns the nodes with at least one contact at step s,
// ascending. The returned slice is shared and must not be modified.
func (g *Graph) ActiveNodes(s int) []trace.NodeID {
	return g.frameAt(s).active
}

// EdgeCount returns the number of distinct zero-weight edges at step s.
func (g *Graph) EdgeCount(s int) int {
	return len(g.frameAt(s).nbrs) / 2
}

// View exposes step s's precomputed contact-component index.
type View struct {
	f        *frame
	samePrev bool // step shares the previous step's frame outright
}

// View returns the component index of step s.
func (g *Graph) View(s int) View {
	return View{
		f:        g.frameAt(s),
		samePrev: s > 0 && g.stepFrame[s] == g.stepFrame[s-1],
	}
}

// SameAsPrev reports whether component c is identical — members,
// adjacency, distances — to a component of the previous step. The
// previous step then assigns the same component index to every
// member.
func (v View) SameAsPrev(c int) bool { return v.samePrev || v.f.prevSame[c] }

// Neighbors returns the nodes in contact with x, in first-contact
// order. The returned slice is shared and must not be modified.
func (v View) Neighbors(x trace.NodeID) []trace.NodeID { return v.f.row(x) }

// NumComponents returns the number of contact components (isolated
// nodes belong to none).
func (v View) NumComponents() int { return len(v.f.distRef) }

// ComponentOf returns x's component index, or -1 when x has no
// contacts this step.
func (v View) ComponentOf(x trace.NodeID) int { return int(v.f.compID[x]) - 1 }

// Members returns a component's nodes. The returned slice is shared
// and must not be modified.
func (v View) Members(c int) []trace.NodeID {
	return v.f.members[v.f.compBounds[c]:v.f.compBounds[c+1]]
}

// MemberIndex returns x's position within its component's Members
// (by scanning the member list; components are small, and the hot
// paths address members by index directly).
func (v View) MemberIndex(x trace.NodeID) int {
	c := v.f.compID[x] - 1
	if c < 0 {
		return 0
	}
	members := v.f.members[v.f.compBounds[c]:v.f.compBounds[c+1]]
	for i, y := range members {
		if y == x {
			return i
		}
	}
	return 0
}

// Dist returns the hop distance between members i and j (member
// indices within component c). Components are connected, so the
// distance is always finite.
func (v View) Dist(c, i, j int) int {
	ref := v.f.distRef[c]
	if ref >= 0 {
		m := int(v.f.compBounds[c+1] - v.f.compBounds[c])
		return int(v.f.dist[int(ref)+i*m+j])
	}
	m := int(v.f.compBounds[c+1] - v.f.compBounds[c])
	return int(staticDist[-ref-1][i*m+j])
}
