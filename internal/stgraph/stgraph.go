// Package stgraph builds the paper's space-time graph (§4.1, based on
// Merugu/Ammar/Zegura): time is discretized in steps of Δ; the vertex
// set is (node, step); an edge of weight zero connects (x, T) to (y, T)
// iff x and y were in contact at any time during [T−Δ, T); an edge of
// unit weight connects (x, T) to (x, T+Δ).
//
// The graph is an immutable index. Each step is backed by a frame: a
// CSR adjacency (flat offset + neighbor arrays) plus, precomputed once,
// the step's contact components — component IDs, member lists, and
// intra-component all-pairs hop distances. Contacts span many Δ-wide
// steps, so most steps repeat the previous step's contact pattern;
// identical consecutive steps share one frame, so the component and
// distance indexes are computed once per distinct pattern rather than
// once per step (let alone once per enumerated message, as the
// pre-index enumerator did).
//
// Neighbor order is part of the determinism contract: Neighbors lists
// a node's contacts in first-contact-record order (contacts are sorted
// by start time), exactly reproducing the adjacency built by the
// pre-index implementation, so path enumeration visits nodes — and
// therefore selects representative paths — byte-identically. A second,
// node-sorted copy of each row serves InContact by binary search.
//
// Discretization loses the ordering of contacts within a step: a
// message may traverse two contacts of the same step even when the
// second physically ended before the first began. Each in-step relay
// chain can therefore be optimistic by up to Δ relative to continuous
// time, and the error compounds over consecutive steps — the paper
// accepts this O(Δ) artifact ("we can always identify this time
// accurately to within an error of Δ").
package stgraph

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/trace"
)

// DefaultDelta is the paper's discretization step (10 seconds).
const DefaultDelta = 10.0

// Graph is an indexed space-time graph over a trace.
type Graph struct {
	NumNodes int
	Delta    float64
	Steps    int // number of discrete steps; step s covers [s·Δ, (s+1)·Δ)

	frames    []*frame
	stepFrame []int32 // step -> index into frames
}

// frame is the shared per-step index: one frame backs every maximal
// run of consecutive steps with an identical contact pattern.
type frame struct {
	// CSR adjacency. Row x is nbrs[offsets[x]:offsets[x+1]], in
	// first-contact order (the canonical enumeration order); sorted
	// holds the same rows in ascending node order for binary search.
	offsets []int32
	nbrs    []trace.NodeID
	sorted  []trace.NodeID

	active []trace.NodeID // nodes with at least one contact, ascending

	// Contact components: compID[x] is x's component (-1 when x has no
	// contacts) and memberIdx[x] its position in the component's member
	// list.
	compID    []int32
	memberIdx []int32
	comps     []component
}

// component is one connected component of a frame's contact graph.
type component struct {
	members []trace.NodeID // BFS discovery order
	// dist[i*len(members)+j] is the hop distance between members i and
	// j (member indices, not node IDs). Components are connected, so
	// every entry is finite.
	dist []int32
}

func (f *frame) row(x trace.NodeID) []trace.NodeID {
	return f.nbrs[f.offsets[x]:f.offsets[x+1]]
}

func (f *frame) sortedRow(x trace.NodeID) []trace.NodeID {
	return f.sorted[f.offsets[x]:f.offsets[x+1]]
}

// pairRec is one deduplicated contact-pair insertion: key packs the
// unordered pair (lo<<32 | hi), seq its first-contact rank within the
// step.
type pairRec struct {
	key uint64
	seq int32
}

// New discretizes a trace with step delta and builds the step index.
// Following the paper, step index T covers the half-open interval
// [T·Δ, (T+1)·Δ): a contact active at any point in that interval
// produces a zero-weight edge at that step.
func New(tr *trace.Trace, delta float64) (*Graph, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("stgraph: delta %g must be positive", delta)
	}
	steps := int(math.Ceil(tr.Horizon / delta))
	if steps == 0 {
		steps = 1
	}
	g := &Graph{
		NumNodes:  tr.NumNodes,
		Delta:     delta,
		Steps:     steps,
		stepFrame: make([]int32, steps),
	}

	// Bucket contact pairs per step, in contact order (contacts are
	// sorted by start time, so per-step seq ranks are ascending).
	perStep := make([][]pairRec, steps)
	for _, c := range tr.Contacts() {
		first := int(c.Start / delta)
		last := int(c.End / delta)
		if c.End > c.Start && float64(last)*delta == c.End {
			last-- // exclusive end on a step boundary
		}
		if last >= steps {
			last = steps - 1
		}
		lo, hi := c.A, c.B
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(uint32(hi))
		for s := first; s <= last; s++ {
			perStep[s] = append(perStep[s], pairRec{key: key, seq: int32(len(perStep[s]))})
		}
	}

	// Deduplicate each step (keeping first-occurrence order) and share
	// one frame across runs of identical consecutive steps.
	b := newFrameBuilder(tr.NumNodes)
	emptyFrame := int32(-1)
	var prev []pairRec
	for s := 0; s < steps; s++ {
		pairs := dedupPairs(perStep[s])
		if len(pairs) == 0 {
			if emptyFrame < 0 {
				emptyFrame = int32(len(g.frames))
				g.frames = append(g.frames, b.build(nil))
			}
			g.stepFrame[s] = emptyFrame
			prev = pairs
			continue
		}
		if s > 0 && samePairs(pairs, prev) {
			g.stepFrame[s] = g.stepFrame[s-1]
		} else {
			g.stepFrame[s] = int32(len(g.frames))
			g.frames = append(g.frames, b.build(pairs))
		}
		prev = pairs
	}
	return g, nil
}

// dedupPairs removes repeated pairs (a pair can have several contact
// records in one step) while preserving first-occurrence order,
// replacing the pre-index implementation's linear hasEdge scan per
// insertion with sort-then-dedup.
func dedupPairs(pairs []pairRec) []pairRec {
	if len(pairs) < 2 {
		return pairs
	}
	// Stable sort by key keeps equal keys in seq order, so keeping the
	// first of each run keeps the earliest contact record.
	slices.SortStableFunc(pairs, func(a, b pairRec) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	out := pairs[:1]
	for _, p := range pairs[1:] {
		if p.key != out[len(out)-1].key {
			out = append(out, p)
		}
	}
	// Restore insertion order (seq ranks are unique).
	slices.SortFunc(out, func(a, b pairRec) int { return int(a.seq) - int(b.seq) })
	return out
}

// samePairs reports whether two deduplicated steps insert the same
// pairs in the same order (seq ranks may differ between steps).
func samePairs(a, b []pairRec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].key != b[i].key {
			return false
		}
	}
	return true
}

// frameBuilder carries reusable scratch across frame builds.
type frameBuilder struct {
	n      int
	degree []int32
	cursor []int32
	queue  []trace.NodeID
}

func newFrameBuilder(n int) *frameBuilder {
	return &frameBuilder{
		n:      n,
		degree: make([]int32, n),
		cursor: make([]int32, n),
	}
}

func (b *frameBuilder) build(pairs []pairRec) *frame {
	n := b.n
	f := &frame{
		offsets:   make([]int32, n+1),
		compID:    make([]int32, n),
		memberIdx: make([]int32, n),
	}
	deg := b.degree
	for i := range deg {
		deg[i] = 0
	}
	for _, p := range pairs {
		a, c := unpack(p.key)
		deg[a]++
		deg[c]++
	}
	total := int32(0)
	for x := 0; x < n; x++ {
		f.offsets[x] = total
		b.cursor[x] = total
		total += deg[x]
	}
	f.offsets[n] = total
	f.nbrs = make([]trace.NodeID, total)
	// Filling both directions in pair-insertion order reproduces the
	// append order of the pre-index adjacency build exactly.
	for _, p := range pairs {
		a, c := unpack(p.key)
		f.nbrs[b.cursor[a]] = c
		b.cursor[a]++
		f.nbrs[b.cursor[c]] = a
		b.cursor[c]++
	}
	f.sorted = make([]trace.NodeID, total)
	copy(f.sorted, f.nbrs)
	for x := 0; x < n; x++ {
		if deg[x] > 0 {
			f.active = append(f.active, trace.NodeID(x))
			slices.Sort(f.sortedRow(trace.NodeID(x)))
		}
		f.compID[x] = -1
	}
	b.buildComponents(f)
	return f
}

func unpack(key uint64) (trace.NodeID, trace.NodeID) {
	return trace.NodeID(key >> 32), trace.NodeID(uint32(key))
}

// buildComponents labels the frame's contact components and computes
// each component's all-pairs hop distances (one BFS per member over
// the component; components are small, typically a handful of nodes).
func (b *frameBuilder) buildComponents(f *frame) {
	for _, start := range f.active {
		if f.compID[start] >= 0 {
			continue
		}
		id := int32(len(f.comps))
		var members []trace.NodeID
		queue := append(b.queue[:0], start)
		f.compID[start] = id
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			f.memberIdx[cur] = int32(len(members))
			members = append(members, cur)
			for _, nb := range f.row(cur) {
				if f.compID[nb] < 0 {
					f.compID[nb] = id
					queue = append(queue, nb)
				}
			}
		}
		b.queue = queue[:0]

		m := len(members)
		dist := make([]int32, m*m)
		for i := range dist {
			dist[i] = -1
		}
		for j, src := range members {
			row := dist[j*m : (j+1)*m]
			row[j] = 0
			queue = append(b.queue[:0], src)
			for head := 0; head < len(queue); head++ {
				cur := queue[head]
				d := row[f.memberIdx[cur]]
				for _, nb := range f.row(cur) {
					if row[f.memberIdx[nb]] < 0 {
						row[f.memberIdx[nb]] = d + 1
						queue = append(queue, nb)
					}
				}
			}
			b.queue = queue[:0]
		}
		f.comps = append(f.comps, component{members: members, dist: dist})
	}
}

// StepOf returns the step index whose interval contains time t
// (clamped to the valid range).
func (g *Graph) StepOf(t float64) int {
	s := int(t / g.Delta)
	if s < 0 {
		return 0
	}
	if s >= g.Steps {
		return g.Steps - 1
	}
	return s
}

// TimeOf returns the start time of step s.
func (g *Graph) TimeOf(s int) float64 { return float64(s) * g.Delta }

// frameAt returns the frame backing step s.
func (g *Graph) frameAt(s int) *frame { return g.frames[g.stepFrame[s]] }

// NumFrames returns the number of distinct step frames (consecutive
// steps with identical contact patterns share one frame).
func (g *Graph) NumFrames() int { return len(g.frames) }

// FrameOf returns the index of the frame backing step s. Two steps
// with equal FrameOf values share all per-step indexes.
func (g *Graph) FrameOf(s int) int { return int(g.stepFrame[s]) }

// Neighbors returns the nodes in contact with x at step s, in
// first-contact order (the canonical enumeration order). The returned
// slice is shared and must not be modified.
func (g *Graph) Neighbors(s int, x trace.NodeID) []trace.NodeID {
	return g.frameAt(s).row(x)
}

// InContact reports whether nodes a and b share a zero-weight edge at
// step s, by binary search over a's sorted row.
func (g *Graph) InContact(s int, a, b trace.NodeID) bool {
	_, ok := slices.BinarySearch(g.frameAt(s).sortedRow(a), b)
	return ok
}

// ActiveNodes returns the nodes with at least one contact at step s,
// ascending. The returned slice is shared and must not be modified.
func (g *Graph) ActiveNodes(s int) []trace.NodeID {
	return g.frameAt(s).active
}

// EdgeCount returns the number of distinct zero-weight edges at step s.
func (g *Graph) EdgeCount(s int) int {
	return len(g.frameAt(s).nbrs) / 2
}

// View exposes step s's precomputed contact-component index.
type View struct {
	f *frame
}

// View returns the component index of step s.
func (g *Graph) View(s int) View { return View{f: g.frameAt(s)} }

// Neighbors returns the nodes in contact with x, in first-contact
// order. The returned slice is shared and must not be modified.
func (v View) Neighbors(x trace.NodeID) []trace.NodeID { return v.f.row(x) }

// NumComponents returns the number of contact components (isolated
// nodes belong to none).
func (v View) NumComponents() int { return len(v.f.comps) }

// ComponentOf returns x's component index, or -1 when x has no
// contacts this step.
func (v View) ComponentOf(x trace.NodeID) int { return int(v.f.compID[x]) }

// Members returns a component's nodes. The returned slice is shared
// and must not be modified.
func (v View) Members(c int) []trace.NodeID { return v.f.comps[c].members }

// MemberIndex returns x's position within its component's Members.
func (v View) MemberIndex(x trace.NodeID) int { return int(v.f.memberIdx[x]) }

// Dist returns the hop distance between members i and j (member
// indices within component c). Components are connected, so the
// distance is always finite.
func (v View) Dist(c, i, j int) int {
	comp := &v.f.comps[c]
	return int(comp.dist[i*len(comp.members)+j])
}
