package stgraph

// Property tests for step-boundary edge cases, each checked against
// the vendored pre-sweep reference builder (golden_ref_test.go): the
// regimes where span arithmetic is easy to get subtly wrong are
// contacts ending exactly on a Δ boundary (exclusive end), contacts
// of zero duration (on and off the boundary), contacts spanning the
// full horizon, and a Δ larger than the horizon (a single step).

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// quickCfg keeps the boundary property sweeps fast under -short.
func quickCfg(t *testing.T) *quick.Config {
	max := 60
	if testing.Short() {
		max = 15
	}
	_ = t
	return &quick.Config{MaxCount: max}
}

// TestBoundaryExactDeltaEnds: every contact ends exactly on a step
// boundary. The end is exclusive — a contact ending at k·Δ must not
// appear in step k — and the sweep's removal events must agree with
// the reference's bucketing.
func TestBoundaryExactDeltaEnds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, delta = 8, 10.0
		horizon := 100.0
		var cs []trace.Contact
		for i := 0; i < 20; i++ {
			a := trace.NodeID(rng.Intn(n))
			b := trace.NodeID(rng.Intn(n - 1))
			if b >= a {
				b++
			}
			startStep := rng.Intn(9)
			start := float64(startStep) * delta
			if rng.Intn(2) == 0 {
				start += rng.Float64() * delta // off-grid start, on-grid end
			}
			end := float64(startStep+1+rng.Intn(3)) * delta
			if end > horizon {
				end = horizon
			}
			cs = append(cs, trace.Contact{A: a, B: b, Start: start, End: end})
		}
		tr, err := trace.New("bnd-end", n, horizon, cs)
		if err != nil {
			return false
		}
		assertGraphsEqual(t, "exact-delta-ends", tr, delta)

		// Spot-check the exclusive-end rule directly on a known pair.
		single := trace.MustNew("one", 2, 100, []trace.Contact{{A: 0, B: 1, Start: 0, End: 30}})
		g, err := New(single, delta)
		if err != nil {
			return false
		}
		return g.InContact(2, 0, 1) && !g.InContact(3, 0, 1)
	}
	if err := quick.Check(f, quickCfg(t)); err != nil {
		t.Error(err)
	}
}

// TestBoundaryZeroDuration: instantaneous contacts, including ones
// placed exactly on step boundaries (a zero-duration contact at k·Δ
// belongs to step k, not k−1) and at the horizon (touches no step).
func TestBoundaryZeroDuration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, delta = 8, 10.0
		horizon := 80.0
		var cs []trace.Contact
		for i := 0; i < 25; i++ {
			a := trace.NodeID(rng.Intn(n))
			b := trace.NodeID(rng.Intn(n - 1))
			if b >= a {
				b++
			}
			var at float64
			switch rng.Intn(3) {
			case 0:
				at = float64(rng.Intn(9)) * delta // exactly on a boundary
			case 1:
				at = horizon // at the horizon: no step
			default:
				at = rng.Float64() * horizon
			}
			cs = append(cs, trace.Contact{A: a, B: b, Start: at, End: at})
		}
		tr, err := trace.New("bnd-zero", n, horizon, cs)
		if err != nil {
			return false
		}
		assertGraphsEqual(t, "zero-duration", tr, delta)

		boundary := trace.MustNew("zb", 2, 100, []trace.Contact{{A: 0, B: 1, Start: 20, End: 20}})
		g, err := New(boundary, delta)
		if err != nil {
			return false
		}
		return !g.InContact(1, 0, 1) && g.InContact(2, 0, 1)
	}
	if err := quick.Check(f, quickCfg(t)); err != nil {
		t.Error(err)
	}
}

// TestBoundaryFullHorizonSpan: contacts covering [0, horizon] must
// appear in every step, mixed with short contacts so the sweep's
// never-removed records coexist with churn.
func TestBoundaryFullHorizonSpan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, delta = 8, 10.0
		horizon := 95.0 // non-multiple of delta: last step is partial
		cs := []trace.Contact{
			{A: 0, B: 1, Start: 0, End: horizon},
			{A: 2, B: 3, Start: 0, End: horizon},
		}
		for i := 0; i < 15; i++ {
			a := trace.NodeID(rng.Intn(n))
			b := trace.NodeID(rng.Intn(n - 1))
			if b >= a {
				b++
			}
			start := rng.Float64() * horizon
			cs = append(cs, trace.Contact{A: a, B: b, Start: start, End: start + rng.Float64()*20})
		}
		for i := range cs {
			if cs[i].End > horizon {
				cs[i].End = horizon
			}
		}
		tr, err := trace.New("bnd-full", n, horizon, cs)
		if err != nil {
			return false
		}
		assertGraphsEqual(t, "full-horizon", tr, delta)
		g, err := New(tr, delta)
		if err != nil {
			return false
		}
		for s := 0; s < g.Steps; s++ {
			if !g.InContact(s, 0, 1) || !g.InContact(s, 2, 3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t)); err != nil {
		t.Error(err)
	}
}

// TestBoundaryDeltaLargerThanHorizon: with Δ > horizon the graph has
// exactly one step containing every contact, and the reference and
// sweep builds must agree on it.
func TestBoundaryDeltaLargerThanHorizon(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 8
		horizon := 50.0
		delta := horizon * (1 + rng.Float64()*10)
		var cs []trace.Contact
		for i := 0; i < 12; i++ {
			a := trace.NodeID(rng.Intn(n))
			b := trace.NodeID(rng.Intn(n - 1))
			if b >= a {
				b++
			}
			start := rng.Float64() * horizon
			cs = append(cs, trace.Contact{A: a, B: b, Start: start, End: start + rng.Float64()*(horizon-start)})
		}
		tr, err := trace.New("bnd-delta", n, horizon, cs)
		if err != nil {
			return false
		}
		assertGraphsEqual(t, "delta-gt-horizon", tr, delta)
		g, err := New(tr, delta)
		if err != nil {
			return false
		}
		if g.Steps != 1 {
			return false
		}
		for _, c := range tr.Contacts() {
			if !g.InContact(0, c.A, c.B) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(t)); err != nil {
		t.Error(err)
	}
}
