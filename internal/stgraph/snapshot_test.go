package stgraph

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// queriesEqual compares every query the package exposes over two
// graphs, step by step.
func queriesEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.NumNodes != got.NumNodes || want.Delta != got.Delta || want.Steps != got.Steps {
		t.Fatalf("shape differs: %d/%g/%d vs %d/%g/%d",
			got.NumNodes, got.Delta, got.Steps, want.NumNodes, want.Delta, want.Steps)
	}
	if want.NumFrames() != got.NumFrames() {
		t.Fatalf("NumFrames = %d, want %d", got.NumFrames(), want.NumFrames())
	}
	for s := 0; s < want.Steps; s++ {
		if want.FrameOf(s) != got.FrameOf(s) {
			t.Fatalf("step %d: FrameOf = %d, want %d", s, got.FrameOf(s), want.FrameOf(s))
		}
		if !reflect.DeepEqual(want.ActiveNodes(s), got.ActiveNodes(s)) {
			t.Fatalf("step %d: ActiveNodes differ", s)
		}
		if want.EdgeCount(s) != got.EdgeCount(s) {
			t.Fatalf("step %d: EdgeCount = %d, want %d", s, got.EdgeCount(s), want.EdgeCount(s))
		}
		wv, gv := want.View(s), got.View(s)
		if wv.NumComponents() != gv.NumComponents() {
			t.Fatalf("step %d: NumComponents = %d, want %d", s, gv.NumComponents(), wv.NumComponents())
		}
		for x := 0; x < want.NumNodes; x++ {
			nx := trace.NodeID(x)
			if !reflect.DeepEqual(want.Neighbors(s, nx), got.Neighbors(s, nx)) {
				t.Fatalf("step %d node %d: Neighbors differ", s, x)
			}
			if wv.ComponentOf(nx) != gv.ComponentOf(nx) {
				t.Fatalf("step %d node %d: ComponentOf = %d, want %d", s, x, gv.ComponentOf(nx), wv.ComponentOf(nx))
			}
			if wv.MemberIndex(nx) != gv.MemberIndex(nx) {
				t.Fatalf("step %d node %d: MemberIndex differs", s, x)
			}
		}
		for c := 0; c < wv.NumComponents(); c++ {
			wm, gm := wv.Members(c), gv.Members(c)
			if !reflect.DeepEqual(wm, gm) {
				t.Fatalf("step %d component %d: Members differ", s, c)
			}
			// The stable-component marks are recomputed on load, not
			// serialized; a restored graph must answer SameAsPrev
			// identically or enumeration's static-component skip
			// diverges (or panics) on warm-started graphs.
			if wv.SameAsPrev(c) != gv.SameAsPrev(c) {
				t.Fatalf("step %d component %d: SameAsPrev = %v, want %v",
					s, c, gv.SameAsPrev(c), wv.SameAsPrev(c))
			}
			for i := range wm {
				for j := range wm {
					if wv.Dist(c, i, j) != gv.Dist(c, i, j) {
						t.Fatalf("step %d component %d: Dist(%d,%d) = %d, want %d",
							s, c, i, j, gv.Dist(c, i, j), wv.Dist(c, i, j))
					}
				}
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		horizon := 300.0
		var cs []trace.Contact
		for i := 0; i < 40+rng.Intn(120); i++ {
			a := trace.NodeID(rng.Intn(n))
			b := trace.NodeID(rng.Intn(n - 1))
			if b >= a {
				b++
			}
			start := rng.Float64() * horizon
			cs = append(cs, trace.Contact{A: a, B: b, Start: start, End: start + rng.Float64()*(horizon-start)})
		}
		tr := trace.MustNew("snap", n, horizon, cs)
		for _, delta := range []float64{5, 10, 37.5} {
			g, err := New(tr, delta)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := FromSnapshot(g.Snapshot())
			if err != nil {
				t.Fatalf("seed %d delta %g: FromSnapshot: %v", seed, delta, err)
			}
			queriesEqual(t, g, restored)
			// Snapshotting the restored graph reproduces the original
			// snapshot exactly — the slab form is a fixed point.
			if !reflect.DeepEqual(g.Snapshot(), restored.Snapshot()) {
				t.Fatalf("seed %d delta %g: restored snapshot differs from original", seed, delta)
			}
		}
	}
}

func TestSnapshotRoundTripEmptyTrace(t *testing.T) {
	tr := trace.MustNew("empty", 4, 100, nil)
	g, err := New(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := FromSnapshot(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	queriesEqual(t, g, restored)
}

// TestFromSnapshotRejectsCorruption mutates one field at a time and
// expects every mutation to be rejected rather than panic later.
func TestFromSnapshotRejectsCorruption(t *testing.T) {
	// A 5-node path component so at least one frame materializes a real
	// distance matrix (sizes ≤3 are served from static matrices).
	tr := trace.MustNew("corrupt", 6, 100, []trace.Contact{
		{A: 0, B: 1, Start: 0, End: 30},
		{A: 1, B: 2, Start: 0, End: 30},
		{A: 2, B: 3, Start: 0, End: 30},
		{A: 3, B: 4, Start: 0, End: 30},
		{A: 4, B: 5, Start: 50, End: 90},
	})
	fresh := func() *Snapshot {
		g, err := New(tr, 10)
		if err != nil {
			t.Fatal(err)
		}
		return g.Snapshot()
	}
	cases := []struct {
		name   string
		mutate func(*testing.T, *Snapshot)
	}{
		{"zero nodes", func(t *testing.T, s *Snapshot) { s.NumNodes = 0 }},
		{"negative delta", func(t *testing.T, s *Snapshot) { s.Delta = -1 }},
		{"stepFrame truncated", func(t *testing.T, s *Snapshot) { s.StepFrame = s.StepFrame[:len(s.StepFrame)-1] }},
		{"stepFrame out of range", func(t *testing.T, s *Snapshot) { s.StepFrame[0] = int32(s.NumFrames()) }},
		{"frame extents truncated", func(t *testing.T, s *Snapshot) { s.FrameNbrOff = s.FrameNbrOff[:len(s.FrameNbrOff)-1] }},
		{"nbr extent overflow", func(t *testing.T, s *Snapshot) { s.FrameNbrOff[len(s.FrameNbrOff)-1]++ }},
		{"nbr extent decreasing", func(t *testing.T, s *Snapshot) {
			s.FrameNbrOff[1] = s.FrameNbrOff[len(s.FrameNbrOff)-1] + 1
		}},
		{"offsets truncated", func(t *testing.T, s *Snapshot) { s.Offsets = s.Offsets[:len(s.Offsets)-1] }},
		{"offsets decreasing", func(t *testing.T, s *Snapshot) { s.Offsets[1] = 127 }},
		{"compID truncated", func(t *testing.T, s *Snapshot) { s.CompID = s.CompID[:len(s.CompID)-1] }},
		{"compID out of range", func(t *testing.T, s *Snapshot) { s.CompID[0] = 99 }},
		{"neighbor id out of range", func(t *testing.T, s *Snapshot) { s.Nbrs[0] = int32(s.NumNodes) }},
		{"member id negative", func(t *testing.T, s *Snapshot) { s.Members[0] = -1 }},
		{"compBounds truncated", func(t *testing.T, s *Snapshot) { s.CompBounds = s.CompBounds[:len(s.CompBounds)-1] }},
		{"compBounds overflow", func(t *testing.T, s *Snapshot) { s.CompBounds[1] = 1 << 20 }},
		{"distRef bad static code", func(t *testing.T, s *Snapshot) { s.DistRef[0] = -100 }},
		{"distRef offset past slab", func(t *testing.T, s *Snapshot) {
			for i, ref := range s.DistRef {
				if ref >= 0 {
					s.DistRef[i] = int32(len(s.Dist)) // m*m would run past the slab
					return
				}
			}
			t.Skip("no component with a materialized matrix to corrupt")
		}},
		{"dist slab truncated", func(t *testing.T, s *Snapshot) {
			if len(s.Dist) == 0 {
				t.Skip("no materialized distance matrices")
			}
			s.Dist = s.Dist[:len(s.Dist)-1]
		}},
	}
	if _, err := FromSnapshot(fresh()); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := fresh()
			tc.mutate(t, s)
			if _, err := FromSnapshot(s); err == nil {
				t.Fatal("corrupted snapshot accepted")
			}
		})
	}
}
