package stgraph

import (
	"fmt"

	"repro/internal/trace"
)

// Snapshot is the flat slab form of a built Graph: every frame's CSR
// adjacency, component tables and distance matrices concatenated into
// a handful of contiguous int32 slices, plus per-frame extent tables
// locating each frame's regions. It is the serialization boundary of
// the space-time graph — internal/artstore writes these slices to disk
// verbatim and FromSnapshot rebuilds an identical index from them, so
// a warm replica loads a city-scale graph in milliseconds instead of
// re-running the event-sweep build.
//
// The slab contents are exactly the query-visible state of the graph:
// two graphs with equal snapshots answer every query (Neighbors,
// InContact, ActiveNodes, FrameOf, View components and distances)
// byte-identically, because every accessor is a pure function of these
// tables and the package's static matrices.
type Snapshot struct {
	NumNodes int
	Delta    float64
	Steps    int

	// StepFrame maps each step to its frame index.
	StepFrame []int32

	// Per-frame extents, each len NumFrames+1 with entry 0 == 0: frame
	// f's neighbor rows are Nbrs[FrameNbrOff[f]:FrameNbrOff[f+1]], its
	// active/member lists Active/Members[FrameActiveOff[f]:
	// FrameActiveOff[f+1]], its components c ∈ [FrameCompOff[f],
	// FrameCompOff[f+1]) (indexing DistRef and, shifted by one entry
	// per preceding frame, CompBounds), and its distance slab
	// Dist[FrameDistOff[f]:FrameDistOff[f+1]].
	FrameNbrOff    []int32
	FrameActiveOff []int32
	FrameCompOff   []int32
	FrameDistOff   []int32

	// Offsets and CompID hold NumFrames consecutive per-node tables of
	// lengths NumNodes+1 and NumNodes respectively.
	Offsets []int32
	CompID  []int32

	// Node-valued slabs (node ids fit int32 by the trace contract).
	Nbrs    []int32
	Active  []int32
	Members []int32

	// CompBounds concatenates each frame's component boundary table
	// (frame f contributes FrameCompOff[f+1]-FrameCompOff[f]+1 entries,
	// values indexing the frame's local member list). DistRef holds one
	// entry per component: a non-negative frame-local offset into the
	// frame's Dist region, or a negative static-matrix code.
	CompBounds []int32
	DistRef    []int32
	Dist       []int32
}

// NumFrames returns the number of distinct frames in the snapshot.
func (s *Snapshot) NumFrames() int {
	if len(s.FrameNbrOff) == 0 {
		return 0
	}
	return len(s.FrameNbrOff) - 1
}

// Snapshot flattens the graph into its slab form. The returned slices
// are freshly allocated copies — arena-chunked component tables are
// compacted into contiguous slabs — and share nothing with the graph.
func (g *Graph) Snapshot() *Snapshot {
	n := g.NumNodes
	numFrames := len(g.frames)
	s := &Snapshot{
		NumNodes:       n,
		Delta:          g.Delta,
		Steps:          g.Steps,
		StepFrame:      append([]int32(nil), g.stepFrame...),
		FrameNbrOff:    make([]int32, numFrames+1),
		FrameActiveOff: make([]int32, numFrames+1),
		FrameCompOff:   make([]int32, numFrames+1),
		FrameDistOff:   make([]int32, numFrames+1),
		Offsets:        make([]int32, 0, numFrames*(n+1)),
		CompID:         make([]int32, 0, numFrames*n),
	}
	for f := range g.frames {
		fr := &g.frames[f]
		s.FrameNbrOff[f+1] = s.FrameNbrOff[f] + int32(len(fr.nbrs))
		s.FrameActiveOff[f+1] = s.FrameActiveOff[f] + int32(len(fr.active))
		s.FrameCompOff[f+1] = s.FrameCompOff[f] + int32(len(fr.distRef))
		s.FrameDistOff[f+1] = s.FrameDistOff[f] + int32(len(fr.dist))
		s.Offsets = append(s.Offsets, fr.offsets...)
		s.CompID = append(s.CompID, fr.compID...)
		s.Nbrs = appendNodes(s.Nbrs, fr.nbrs)
		s.Active = appendNodes(s.Active, fr.active)
		s.Members = appendNodes(s.Members, fr.members)
		s.CompBounds = append(s.CompBounds, fr.compBounds...)
		s.DistRef = append(s.DistRef, fr.distRef...)
		s.Dist = append(s.Dist, fr.dist...)
	}
	return s
}

func appendNodes(dst []int32, nodes []trace.NodeID) []int32 {
	for _, x := range nodes {
		dst = append(dst, int32(x))
	}
	return dst
}

// snapshotError wraps every FromSnapshot rejection.
func snapErr(format string, args ...any) error {
	return fmt.Errorf("stgraph: invalid snapshot: "+format, args...)
}

// FromSnapshot rebuilds a Graph from its slab form, validating the
// tables deeply enough that every query on the result is in-bounds: a
// corrupted or truncated snapshot is rejected with an error rather
// than producing a graph that panics later. The int32 slabs (Offsets,
// CompID, CompBounds, DistRef, Dist, StepFrame) are aliased, not
// copied — callers loading them from a read-only mapping get a
// zero-copy graph; the node-valued slabs are widened into fresh
// trace.NodeID storage. The snapshot must not be modified afterwards.
func FromSnapshot(s *Snapshot) (*Graph, error) {
	n := s.NumNodes
	if n <= 0 {
		return nil, snapErr("numNodes %d", n)
	}
	if !(s.Delta > 0) {
		return nil, snapErr("delta %g", s.Delta)
	}
	if s.Steps <= 0 || len(s.StepFrame) != s.Steps {
		return nil, snapErr("stepFrame length %d for %d steps", len(s.StepFrame), s.Steps)
	}
	numFrames := s.NumFrames()
	for _, ext := range []struct {
		name  string
		off   []int32
		total int
	}{
		{"frameNbrOff", s.FrameNbrOff, len(s.Nbrs)},
		{"frameActiveOff", s.FrameActiveOff, len(s.Active)},
		{"frameCompOff", s.FrameCompOff, len(s.DistRef)},
		{"frameDistOff", s.FrameDistOff, len(s.Dist)},
	} {
		if len(ext.off) != numFrames+1 {
			return nil, snapErr("%s length %d, want %d", ext.name, len(ext.off), numFrames+1)
		}
		if ext.off[0] != 0 || int(ext.off[numFrames]) != ext.total {
			return nil, snapErr("%s spans [%d,%d], slab holds %d", ext.name, ext.off[0], ext.off[numFrames], ext.total)
		}
		for f := 0; f < numFrames; f++ {
			if ext.off[f+1] < ext.off[f] {
				return nil, snapErr("%s decreases at frame %d", ext.name, f)
			}
		}
	}
	if len(s.Active) != len(s.Members) {
		return nil, snapErr("active slab %d entries, members %d", len(s.Active), len(s.Members))
	}
	if len(s.Offsets) != numFrames*(n+1) {
		return nil, snapErr("offsets slab %d entries, want %d", len(s.Offsets), numFrames*(n+1))
	}
	if len(s.CompID) != numFrames*n {
		return nil, snapErr("compID slab %d entries, want %d", len(s.CompID), numFrames*n)
	}
	wantBounds := 0
	if numFrames > 0 {
		wantBounds = len(s.DistRef) + numFrames
	}
	if len(s.CompBounds) != wantBounds {
		return nil, snapErr("compBounds slab %d entries, want %d", len(s.CompBounds), wantBounds)
	}
	for _, fidx := range s.StepFrame {
		if fidx < 0 || int(fidx) >= numFrames {
			return nil, snapErr("stepFrame index %d outside %d frames", fidx, numFrames)
		}
	}

	g := &Graph{
		NumNodes:  n,
		Delta:     s.Delta,
		Steps:     s.Steps,
		stepFrame: s.StepFrame,
		frames:    make([]frame, numFrames),
	}
	nbrs, ok := widenNodes(s.Nbrs, n)
	if !ok {
		return nil, snapErr("neighbor id outside population %d", n)
	}
	active, ok := widenNodes(s.Active, n)
	if !ok {
		return nil, snapErr("active id outside population %d", n)
	}
	members, ok := widenNodes(s.Members, n)
	if !ok {
		return nil, snapErr("member id outside population %d", n)
	}

	boundsOff := 0
	for f := 0; f < numFrames; f++ {
		fr := &g.frames[f]
		fr.offsets = s.Offsets[f*(n+1) : (f+1)*(n+1)]
		fr.compID = s.CompID[f*n : (f+1)*n]
		fr.nbrs = nbrs[s.FrameNbrOff[f]:s.FrameNbrOff[f+1]]
		fr.active = active[s.FrameActiveOff[f]:s.FrameActiveOff[f+1]]
		fr.members = members[s.FrameActiveOff[f]:s.FrameActiveOff[f+1]]
		comps := int(s.FrameCompOff[f+1] - s.FrameCompOff[f])
		fr.compBounds = s.CompBounds[boundsOff : boundsOff+comps+1]
		boundsOff += comps + 1
		fr.distRef = s.DistRef[s.FrameCompOff[f]:s.FrameCompOff[f+1]]
		fr.dist = s.Dist[s.FrameDistOff[f]:s.FrameDistOff[f+1]]
		if err := validateFrame(f, fr, n); err != nil {
			return nil, err
		}
	}
	// The stable-component marks (View.SameAsPrev) are not part of the
	// slab form: they are a pure function of the tables above, so the
	// load recomputes them instead of trusting (and versioning) a
	// serialized copy. Frames back contiguous step runs — the sweep
	// reuses a frame only when a step repeats the immediately preceding
	// pattern — so each frame's predecessor is the frame of the step
	// before its first appearance.
	framePrev := make([]int32, numFrames)
	for f := range framePrev {
		framePrev[f] = -1
	}
	for step := 1; step < len(s.StepFrame); step++ {
		f := s.StepFrame[step]
		if prev := s.StepFrame[step-1]; f != prev && framePrev[f] < 0 {
			framePrev[f] = prev
		}
	}
	markStableComponents(g, framePrev)
	return g, nil
}

// widenNodes copies an int32 node slab into trace.NodeID storage,
// range-checking every id in the same pass (these slabs are tens of
// megabytes at city scale; a separate validation walk would double the
// memory traffic of a warm-start load).
func widenNodes(src []int32, n int) ([]trace.NodeID, bool) {
	out := make([]trace.NodeID, len(src))
	for i, x := range src {
		if x < 0 || int(x) >= n {
			return nil, false
		}
		out[i] = trace.NodeID(x)
	}
	return out, true
}

// validateFrame checks one restored frame's tables against every
// access pattern the query API performs, so no slice expression over a
// hostile snapshot can go out of bounds.
func validateFrame(f int, fr *frame, n int) error {
	rowTotal := int32(len(fr.nbrs))
	if fr.offsets[0] != 0 || fr.offsets[n] != rowTotal {
		return snapErr("frame %d offsets span [%d,%d], rows hold %d", f, fr.offsets[0], fr.offsets[n], rowTotal)
	}
	for x := 0; x < n; x++ {
		if fr.offsets[x+1] < fr.offsets[x] {
			return snapErr("frame %d offsets decrease at node %d", f, x)
		}
	}
	comps := len(fr.distRef)
	memberTotal := int32(len(fr.members))
	if fr.compBounds[0] != 0 || fr.compBounds[comps] != memberTotal {
		return snapErr("frame %d compBounds span [%d,%d], members hold %d", f, fr.compBounds[0], fr.compBounds[comps], memberTotal)
	}
	for c := 0; c < comps; c++ {
		if fr.compBounds[c+1] < fr.compBounds[c] {
			return snapErr("frame %d compBounds decrease at component %d", f, c)
		}
	}
	for _, id := range fr.compID {
		if id < 0 || int(id) > comps {
			return snapErr("frame %d component id %d outside %d components", f, id, comps)
		}
	}
	for c := 0; c < comps; c++ {
		m := int(fr.compBounds[c+1] - fr.compBounds[c])
		ref := fr.distRef[c]
		if ref >= 0 {
			if int(ref)+m*m > len(fr.dist) {
				return snapErr("frame %d component %d distance matrix [%d,%d) outside slab of %d", f, c, ref, int(ref)+m*m, len(fr.dist))
			}
			continue
		}
		code := int(-ref - 1)
		if code >= len(staticDist) {
			return snapErr("frame %d component %d static distance code %d", f, c, ref)
		}
		if m*m != len(staticDist[code]) {
			return snapErr("frame %d component %d has %d members, static matrix %d holds %d entries", f, c, m, code, len(staticDist[code]))
		}
	}
	return nil
}
