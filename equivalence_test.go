package psn_test

// Public-API serial-equivalence suite: the Workers knobs re-exported
// through psn must not change any result — the parallel engine is a
// pure scheduling optimization.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	psn "repro"
	"repro/internal/forward"
)

func TestSimulateWorkersEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 5, 9} {
		tr := psn.DevTrace(seed)
		msgs := psn.SimWorkload(tr, 0.15, tr.Horizon, seed)
		for _, alg := range psn.PaperAlgorithms() {
			serial, err := psn.Simulate(psn.SimConfig{Trace: tr, Algorithm: alg, Messages: msgs, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := psn.Simulate(psn.SimConfig{Trace: tr, Algorithm: alg, Messages: msgs, Workers: 6})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("seed %d %s: Workers=6 result differs from Workers=1", seed, alg.Name())
			}
		}
	}
}

func TestEnumerateAllWorkersEquivalence(t *testing.T) {
	for _, seed := range []int64{2, 4, 8} {
		tr := psn.DevTrace(seed)
		rng := rand.New(rand.NewSource(seed))
		var msgs []psn.PathMessage
		for i := 0; i < 10; i++ {
			src := psn.NodeID(rng.Intn(tr.NumNodes))
			dst := psn.NodeID(rng.Intn(tr.NumNodes - 1))
			if dst >= src {
				dst++
			}
			msgs = append(msgs, psn.PathMessage{Src: src, Dst: dst, Start: rng.Float64() * tr.Horizon / 2})
		}
		serialEnum, err := psn.NewEnumerator(tr, psn.EnumOptions{K: 100, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallelEnum, err := psn.NewEnumerator(tr, psn.EnumOptions{K: 100, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		want, err := serialEnum.EnumerateAll(msgs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parallelEnum.EnumerateAll(msgs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if len(want[i].Arrivals) != len(got[i].Arrivals) {
				t.Fatalf("seed %d message %d: %d vs %d arrivals", seed, i, len(want[i].Arrivals), len(got[i].Arrivals))
			}
			for j := range want[i].Arrivals {
				if want[i].Arrivals[j].String() != got[i].Arrivals[j].String() {
					t.Errorf("seed %d message %d arrival %d differs", seed, i, j)
				}
			}
		}
	}
}

// A full figure-harness render through the public API must be
// byte-identical across worker counts. One small figure keeps this
// fast; the exhaustive per-figure sweep lives in internal/figures.
func TestFigureRenderWorkersEquivalence(t *testing.T) {
	render := func(workers int) []byte {
		h := psn.NewFigureHarness(psn.FigureParams{
			Messages: 4, K: 40, SimRuns: 1, MsgRate: 0.02, Seed: 3,
			Datasets: []psn.Dataset{psn.Infocom0912, psn.Conext0912},
			Workers:  workers,
		})
		f, ok := psn.LookupFigure("F09")
		if !ok {
			t.Fatal("figure F09 missing")
		}
		var buf bytes.Buffer
		if err := h.RenderOne(f, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); !bytes.Equal(serial, got) {
			t.Errorf("F09 render with Workers=%d differs from serial:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

// DeriveSeed is part of the public determinism contract.
func TestDeriveSeedStable(t *testing.T) {
	if psn.DeriveSeed(1, 2) != psn.DeriveSeed(1, 2) {
		t.Error("DeriveSeed not deterministic")
	}
	if psn.DeriveSeed(1, 2) == psn.DeriveSeed(1, 3) || psn.DeriveSeed(1, 2) == psn.DeriveSeed(2, 2) {
		t.Error("DeriveSeed collisions on adjacent inputs")
	}
}

var _ forward.Algorithm = psn.PaperAlgorithms()[0]
