// Conference: a path-explosion study on a full-scale synthetic
// conference day (98 nodes, 3 hours), reproducing the paper's §4-§5
// analysis pipeline end to end: sample messages, enumerate paths,
// summarize T1 and TE, and break both down by in/out pair type.
package main

import (
	"fmt"
	"log"
	"math/rand"

	psn "repro"
)

func main() {
	tr, err := psn.GenerateDataset(psn.Infocom0912)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q: %d nodes, %d contacts\n", tr.Name, tr.NumNodes, tr.Len())

	cl := psn.NewClassifier(tr)
	fmt.Printf("median contact rate: %.5f contacts/s (%d in, %d out nodes)\n\n",
		cl.Median(), len(cl.InNodes()), len(cl.OutNodes()))

	const (
		k        = 2000 // the paper's explosion threshold
		messages = 24
	)
	enum, err := psn.NewEnumerator(tr, psn.EnumOptions{K: k})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	type bucket struct {
		t1s, tes []float64
	}
	byType := map[psn.PairType]*bucket{}
	fmt.Printf("%-4s %-4s %-8s %10s %10s %8s\n", "src", "dst", "pair", "T1 (s)", "TE (s)", "paths")
	for i := 0; i < messages; i++ {
		src := psn.NodeID(rng.Intn(tr.NumNodes))
		dst := psn.NodeID(rng.Intn(tr.NumNodes - 1))
		if dst >= src {
			dst++
		}
		msg := psn.PathMessage{Src: src, Dst: dst, Start: rng.Float64() * tr.Horizon * 2 / 3}
		res, err := enum.Enumerate(msg)
		if err != nil {
			log.Fatal(err)
		}
		sum := res.ExplosionSummary(k)
		pt := cl.Classify(src, dst)
		if byType[pt] == nil {
			byType[pt] = &bucket{}
		}
		if !sum.Exploded {
			fmt.Printf("%-4d %-4d %-8s %10s %10s %8d\n", src, dst, pt, "-", "-", sum.Paths)
			continue
		}
		byType[pt].t1s = append(byType[pt].t1s, sum.T1)
		byType[pt].tes = append(byType[pt].tes, sum.TE)
		fmt.Printf("%-4d %-4d %-8s %10.0f %10.0f %8d\n", src, dst, pt, sum.T1, sum.TE, sum.Paths)
	}

	fmt.Println("\nby pair type (paper Fig 8: T1 driven by the source class, TE by the destination class):")
	for _, pt := range []psn.PairType{psn.InIn, psn.InOut, psn.OutIn, psn.OutOut} {
		b := byType[pt]
		if b == nil || len(b.t1s) == 0 {
			fmt.Printf("  %-8s (no exploded messages in sample)\n", pt)
			continue
		}
		fmt.Printf("  %-8s n=%2d  mean T1 = %6.0f s   mean TE = %6.0f s\n",
			pt, len(b.t1s), mean(b.t1s), mean(b.tes))
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
