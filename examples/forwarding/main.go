// Forwarding: compare all nine forwarding algorithms (the paper's six
// plus Direct Delivery, Spray and Wait, PRoPHET) on a conference
// trace, reproducing the paper's §6 observation that very different
// strategies deliver near-identical success rates and delays — because
// the path explosion puts many near-optimal paths within every
// algorithm's reach.
package main

import (
	"fmt"
	"log"

	psn "repro"
	"repro/internal/dtnsim"
)

func main() {
	tr, err := psn.GenerateDataset(psn.Conext0912)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q: %d nodes, %d contacts\n\n", tr.Name, tr.NumNodes, tr.Len())

	const (
		runs = 3
		rate = 0.1 // messages per second
	)
	cl := psn.NewClassifier(tr)

	fmt.Printf("%-22s %10s %14s\n", "algorithm", "success", "avg delay (s)")
	type row struct {
		name   string
		merged *psn.SimResult
	}
	var rows []row
	for _, alg := range psn.AllAlgorithms() {
		var all []*psn.SimResult
		for r := 0; r < runs; r++ {
			msgs := psn.SimWorkload(tr, rate, tr.Horizon*2/3, int64(r+1))
			res, err := psn.Simulate(psn.SimConfig{Trace: tr, Algorithm: alg, Messages: msgs})
			if err != nil {
				log.Fatal(err)
			}
			all = append(all, res)
		}
		merged := dtnsim.Merge(all...)
		rows = append(rows, row{alg.Name(), merged})
		fmt.Printf("%-22s %10.3f %14.0f\n", alg.Name(), merged.SuccessRate(), merged.MeanDelay())
	}

	fmt.Println("\nby pair type (epidemic vs Greedy Total — the oracle gains on out-sources):")
	fmt.Printf("%-10s %22s %22s\n", "pair", "Epidemic succ/delay", "GreedyTotal succ/delay")
	var epi, gt *psn.SimResult
	for _, r := range rows {
		switch r.name {
		case "Epidemic":
			epi = r.merged
		case "Greedy Total":
			gt = r.merged
		}
	}
	for _, pt := range []psn.PairType{psn.InIn, psn.InOut, psn.OutIn, psn.OutOut} {
		e := epi.ByPairType(cl)[pt]
		g := gt.ByPairType(cl)[pt]
		fmt.Printf("%-10s %12.3f / %6.0f %13.3f / %6.0f\n",
			pt, e.SuccessRate(), e.MeanDelay(), g.SuccessRate(), g.MeanDelay())
	}
}
