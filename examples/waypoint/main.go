// Waypoint: contrast the classical random-waypoint mobility model with
// the heterogeneous conference model. The paper's related-work section
// (§2) argues that homogeneous mobility assumptions — all nodes drawing
// speed and direction from the same distributions — miss the behaviour
// that drives forwarding performance in pocket switched networks: the
// wide spread of per-node contact rates. This example makes that
// concrete: under random waypoint the contact-rate distribution is
// narrow and the in/out pair-type structure of T1 largely vanishes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	psn "repro"
)

func main() {
	conf := psn.DevTrace(3)
	rwp, err := psn.GenerateWaypoint(psn.WaypointConfig{
		Name:     "waypoint",
		NumNodes: conf.NumNodes,
		Horizon:  conf.Horizon,
		Width:    120, Height: 90,
		Range:    10,
		MinSpeed: 0.5, MaxSpeed: 2,
		MaxPause: 30,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("contact-rate dispersion (coefficient of variation of per-node counts):")
	fmt.Printf("  conference:      cv = %.2f\n", cv(conf))
	fmt.Printf("  random waypoint: cv = %.2f\n", cv(rwp))

	fmt.Println("\nmean T1 by pair type (epidemic-optimal, k=100):")
	fmt.Printf("%-10s %14s %14s\n", "pair", "conference", "waypoint")
	ct := study(conf)
	wt := study(rwp)
	for _, pt := range []psn.PairType{psn.InIn, psn.InOut, psn.OutIn, psn.OutOut} {
		fmt.Printf("%-10s %14s %14s\n", pt, fmtMean(ct[pt]), fmtMean(wt[pt]))
	}
	fmt.Println("\nthe conference trace separates pair types; random waypoint flattens them —")
	fmt.Println("exactly the §2 critique of homogeneous mobility models.")
}

func cv(tr *psn.Trace) float64 {
	counts := tr.ContactCounts()
	var sum, sum2 float64
	for _, c := range counts {
		sum += float64(c)
		sum2 += float64(c) * float64(c)
	}
	n := float64(len(counts))
	mean := sum / n
	variance := sum2/n - mean*mean
	if mean == 0 {
		return 0
	}
	return sqrt(variance) / mean
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method suffices for a display statistic.
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// study enumerates a few messages per pair type and returns T1 samples.
func study(tr *psn.Trace) map[psn.PairType][]float64 {
	enum, err := psn.NewEnumerator(tr, psn.EnumOptions{K: 100})
	if err != nil {
		log.Fatal(err)
	}
	cl := psn.NewClassifier(tr)
	rng := rand.New(rand.NewSource(17))
	out := map[psn.PairType][]float64{}
	for i := 0; i < 40; i++ {
		src := psn.NodeID(rng.Intn(tr.NumNodes))
		dst := psn.NodeID(rng.Intn(tr.NumNodes - 1))
		if dst >= src {
			dst++
		}
		res, err := enum.Enumerate(psn.PathMessage{Src: src, Dst: dst, Start: rng.Float64() * tr.Horizon / 2})
		if err != nil {
			log.Fatal(err)
		}
		if t1, ok := res.T1(); ok {
			pt := cl.Classify(src, dst)
			out[pt] = append(out[pt], t1)
		}
	}
	for _, v := range out {
		sort.Float64s(v)
	}
	return out
}

func fmtMean(xs []float64) string {
	if len(xs) == 0 {
		return "-"
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return fmt.Sprintf("%.0f s (n=%d)", s/float64(len(xs)), len(xs))
}
