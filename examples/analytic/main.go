// Analytic: validate the paper's §5.1 homogeneous path-explosion model
// three ways — the truncated density ODE (Proposition 3), the closed
// forms (Equations 2 and 4), and a Monte-Carlo simulation of the
// finite-N Markov jump process — and show the §5.2 subset explosion
// under heterogeneous rates.
package main

import (
	"fmt"
	"log"

	psn "repro"
	"repro/internal/analytic"
)

func main() {
	const (
		n      = 1000
		lambda = 0.5
		tmax   = 10.0
		kTrunc = 120
	)
	fmt.Printf("homogeneous model: N=%d nodes, contact rate λ=%.2f\n\n", n, lambda)

	u0 := psn.SourceInitial(n, kTrunc)
	ode, err := psn.SolveODE(u0, psn.ODEConfig{
		Lambda: lambda, K: kTrunc, Step: 0.01, TMax: tmax, Snapshots: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	mc, err := psn.SimulateJump(psn.JumpConfig{
		N: n, Lambda: lambda, TMax: tmax, Snapshots: 6, MaxState: 1 << 20, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s %14s %14s %14s\n", "t", "ODE mean", "e^{λt}/N", "MC mean")
	for i, t := range ode.Times {
		fmt.Printf("%6.1f %14.6f %14.6f %14.6f\n",
			t, ode.MeanPaths(i), psn.MeanClosedForm(1.0/n, lambda, t), mc.MeanPaths(i))
	}
	fmt.Printf("\nexpected first-path time H = ln(N)/λ = %.1f\n", analytic.HittingTime(n, lambda))

	// Subset explosion (§5.2): with uniform heterogeneous rates, each
	// rate quartile's path count grows at a rate tracking its own
	// contact rate.
	rates := make([]float64, 96)
	for i := range rates {
		rates[i] = 0.05 * float64(i+1) / float64(len(rates))
	}
	sg, err := analytic.SimulateHeterogeneous(analytic.HeterogeneousConfig{
		Rates: rates, TMax: 1200, Snapshots: 5, MaxState: 1e15, Seed: 2, Source: 95,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsubset explosion: mean paths per node, by rate quartile")
	fmt.Printf("%8s  q1(low)      q2          q3          q4(high)\n", "t")
	for i, t := range sg.Times {
		fmt.Printf("%8.0f  %-11.3g %-11.3g %-11.3g %-11.3g\n",
			t, sg.MeanPaths[0][i], sg.MeanPaths[1][i], sg.MeanPaths[2][i], sg.MeanPaths[3][i])
	}
	fmt.Println("\nhigh-rate quartiles explode orders of magnitude sooner — the mechanism")
	fmt.Println("behind the paper's in/out structure of T1 and TE.")
}
