// Quickstart: generate a small conference trace, enumerate the valid
// forwarding paths of one message, and observe the path explosion.
package main

import (
	"fmt"
	"log"

	psn "repro"
)

func main() {
	// A deterministic 24-node, 30-minute conference trace.
	tr := psn.DevTrace(7)
	fmt.Printf("trace %q: %d nodes, %d contacts over %.0f s\n",
		tr.Name, tr.NumNodes, tr.Len(), tr.Horizon)

	// Enumerate valid paths for one message using the paper's
	// parameters (Δ = 10 s); a small explosion threshold keeps the
	// output readable.
	const k = 200
	enum, err := psn.NewEnumerator(tr, psn.EnumOptions{K: k})
	if err != nil {
		log.Fatal(err)
	}
	msg := psn.PathMessage{Src: 2, Dst: 19, Start: 60}
	res, err := enum.Enumerate(msg)
	if err != nil {
		log.Fatal(err)
	}

	sum := res.ExplosionSummary(k)
	if !sum.Found {
		fmt.Println("no path reached the destination within the trace")
		return
	}
	fmt.Printf("message %d -> %d created at t=%.0f s\n", msg.Src, msg.Dst, msg.Start)
	fmt.Printf("optimal path duration T1 = %.0f s\n", sum.T1)
	fmt.Printf("delivered paths observed: %d\n", sum.Paths)
	if sum.Exploded {
		fmt.Printf("time to explosion TE (to %d paths) = %.0f s\n", sum.N, sum.TE)
	}

	fmt.Println("\nfirst paths (node@step, Δ = 10 s):")
	for i, p := range res.Arrivals {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(res.Arrivals)-5)
			break
		}
		fmt.Printf("  %s\n", p)
	}

	fmt.Println("\narrivals over time (the path explosion):")
	for _, g := range res.GrowthCurve() {
		fmt.Printf("  +%4.0f s after T1: %4d paths\n", g.SinceT1, g.Total)
	}
}
