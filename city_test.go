package psn_test

// End-to-end coverage of the city-scale dataset family: the registry
// entry psn-sim and psn-serve share must generate a ≥2,000-node,
// ≥1M-contact trace, build its space-time graph, enumerate paths, and
// simulate forwarding — through the same library surfaces the two
// binaries drive (the registry + sweep engine behind psn-sim, the
// HTTP handlers behind psn-serve). The suite is minutes-scale work on
// one core, so it is skipped under -short; the full tier-1 run pays
// it once.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	psn "repro"
	"repro/internal/service"
)

func TestCityScaleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale end-to-end test skipped in -short")
	}
	reg := psn.NewRegistry()
	tr, err := reg.Trace("city-2k")
	if err != nil {
		t.Fatalf("registry city-2k: %v", err)
	}
	if tr.NumNodes < 2000 {
		t.Fatalf("city-2k has %d nodes, want >= 2000", tr.NumNodes)
	}
	if tr.Len() < 1_000_000 {
		t.Fatalf("city-2k has %d contacts, want >= 1,000,000", tr.Len())
	}

	// psn-sim path: sweep engine, epidemic run on a modest workload.
	sweep, err := psn.NewSimSweep(tr)
	if err != nil {
		t.Fatal(err)
	}
	msgs := psn.SimWorkload(tr, 0.02, tr.Horizon/3, 1)
	if len(msgs) == 0 {
		t.Fatal("empty workload")
	}
	res, err := sweep.Run(psn.SimConfig{Algorithm: psn.PaperAlgorithms()[0], Messages: msgs})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() <= 0 {
		t.Errorf("epidemic delivered nothing at city scale (success %.3f)", res.SuccessRate())
	}

	// Direct enumeration over the shared graph (psn-paths path).
	enum, err := psn.NewEnumerator(tr, psn.EnumOptions{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := enum.Enumerate(psn.PathMessage{Src: 150, Dst: 1800, Start: 600})
	if err != nil {
		t.Fatal(err)
	}

	// psn-serve path: the same registry served over HTTP; the
	// /enumerate response must decode to the direct result's arrival
	// count, and /simulate must answer for the city dataset.
	srv := psn.NewServer(psn.ServeConfig{Registry: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/enumerate", "application/json",
		strings.NewReader(`{"dataset":"city-2k","src":150,"dst":1800,"start":600,"k":50}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/enumerate status %d", resp.StatusCode)
	}
	var er service.EnumerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if len(er.Results) != 1 {
		t.Fatalf("served %d results, want 1", len(er.Results))
	}
	if got, want := len(er.Results[0].Arrivals), len(direct.Arrivals); got != want {
		t.Errorf("served %d arrivals, direct call found %d", got, want)
	}

	resp, err = http.Post(ts.URL+"/simulate", "application/json",
		strings.NewReader(`{"dataset":"city-2k","algorithm":"epidemic","rate":0.02,"runs":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/simulate status %d", resp.StatusCode)
	}
	var sr service.SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Messages == 0 {
		t.Error("served simulation ran no messages")
	}
}
