package psn_test

import (
	"bytes"
	"strings"
	"testing"

	psn "repro"
)

// The facade tests double as end-to-end integration tests of the
// public API.

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr := psn.DevTrace(1)
	var buf bytes.Buffer
	if err := psn.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := psn.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("round trip lost contacts: %d vs %d", got.Len(), tr.Len())
	}
}

func TestFacadeEnumeration(t *testing.T) {
	tr := psn.DevTrace(2)
	e, err := psn.NewEnumerator(tr, psn.EnumOptions{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Enumerate(psn.PathMessage{Src: 0, Dst: 9, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.ExplosionSummary(50)
	if sum.Found && sum.T1 < 0 {
		t.Errorf("negative T1")
	}
}

func TestFacadeSimulation(t *testing.T) {
	tr := psn.DevTrace(3)
	msgs := psn.SimWorkload(tr, 0.1, 900, 3)
	if len(msgs) == 0 {
		t.Fatal("no workload")
	}
	for _, alg := range psn.PaperAlgorithms() {
		r, err := psn.Simulate(psn.SimConfig{Trace: tr, Algorithm: alg, Messages: msgs})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if s := r.SuccessRate(); s < 0 || s > 1 {
			t.Errorf("%s: success rate %g", alg.Name(), s)
		}
	}
	if len(psn.AllAlgorithms()) <= len(psn.PaperAlgorithms()) {
		t.Errorf("extended set should be larger")
	}
}

func TestFacadeAnalytic(t *testing.T) {
	u0 := psn.SourceInitial(100, 30)
	sol, err := psn.SolveODE(u0, psn.ODEConfig{Lambda: 0.5, K: 30, Step: 0.01, TMax: 4, Snapshots: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := psn.MeanClosedForm(0.01, 0.5, 4)
	got := sol.MeanPaths(len(sol.Times) - 1)
	if got <= 0 || got > 2*want {
		t.Errorf("ODE mean = %g, closed form %g", got, want)
	}
	if _, err := psn.SimulateJump(psn.JumpConfig{N: 50, Lambda: 1, TMax: 1, Snapshots: 2, MaxState: 32}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeClassifier(t *testing.T) {
	tr := psn.DevTrace(4)
	cl := psn.NewClassifier(tr)
	counts := map[psn.PairType]int{}
	for s := psn.NodeID(0); int(s) < tr.NumNodes; s++ {
		for d := psn.NodeID(0); int(d) < tr.NumNodes; d++ {
			if s != d {
				counts[cl.Classify(s, d)]++
			}
		}
	}
	total := counts[psn.InIn] + counts[psn.InOut] + counts[psn.OutIn] + counts[psn.OutOut]
	if total != tr.NumNodes*(tr.NumNodes-1) {
		t.Errorf("classification incomplete: %d", total)
	}
}

func TestFacadeFigures(t *testing.T) {
	figs := psn.Figures()
	if len(figs) != 21 {
		t.Errorf("figure count = %d, want 21", len(figs))
	}
	f, ok := psn.LookupFigure("F07")
	if !ok {
		t.Fatal("F07 missing")
	}
	h := psn.NewFigureHarness(psn.FigureParams{
		Messages: 4, K: 30, SimRuns: 1, MsgRate: 0.02,
		Datasets: []psn.Dataset{psn.Conext0912},
	})
	var buf bytes.Buffer
	if err := h.RenderOne(f, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "F07") {
		t.Errorf("render missing header: %q", buf.String())
	}
}

func TestFacadeDatasets(t *testing.T) {
	for _, d := range []psn.Dataset{psn.Infocom0912, psn.Infocom0336, psn.Conext0912, psn.Conext0336} {
		tr, err := psn.GenerateDataset(d)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if tr.NumNodes != 98 {
			t.Errorf("%v: %d nodes", d, tr.NumNodes)
		}
	}
	if _, err := psn.GenerateHomogeneous("h", 10, 100, 0.1, 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := psn.GenerateWaypoint(psn.WaypointConfig{
		NumNodes: 5, Horizon: 60, Width: 50, Height: 50, Range: 10,
		MinSpeed: 1, MaxSpeed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := psn.GenerateConference(psn.GeneratorConfig{
		NumNodes: 10, Horizon: 100, MaxRate: 0.1, MeanDuration: 10,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSpaceTimeGraph(t *testing.T) {
	tr := psn.DevTrace(5)
	g, err := psn.NewSpaceTimeGraph(tr, psn.DefaultDelta)
	if err != nil {
		t.Fatal(err)
	}
	if g.Steps != 180 {
		t.Errorf("steps = %d, want 180", g.Steps)
	}
}

// Rendering a figure twice with the same parameters must produce
// byte-identical output: every generator, study and simulation is
// seeded.
func TestFigureRenderDeterministic(t *testing.T) {
	render := func() string {
		h := psn.NewFigureHarness(psn.FigureParams{
			Messages: 4, K: 30, SimRuns: 1, MsgRate: 0.02, Seed: 9,
			Datasets: []psn.Dataset{psn.Conext0912},
		})
		f, _ := psn.LookupFigure("F08")
		var buf bytes.Buffer
		if err := h.RenderOne(f, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("figure rendering not deterministic:\n%s\nvs\n%s", a, b)
	}
}
