// Package psn is the public API of this reproduction of "Diversity of
// Forwarding Paths in Pocket Switched Networks" (Erramilli,
// Chaintreau, Crovella, Diot — IMC 2007 / BUCS TR 2007-005).
//
// It re-exports the library's building blocks behind one import:
//
//   - contact traces and synthetic conference datasets
//     (Trace, Contact, GenerateDataset, DevTrace, …);
//   - valid-path enumeration on an indexed space-time graph and the
//     path-explosion metrics (Enumerator, Result, Explosion);
//   - the homogeneous analytic model of path explosion
//     (SolveODE, SimulateJump, MeanClosedForm, …);
//   - the trace-driven forwarding simulator, the six algorithms the
//     paper compares, and the batched multi-run sweep engine
//     (Simulate, PaperAlgorithms, NewSimSweep, …);
//   - the experiment harness that regenerates every figure of the
//     paper's evaluation (NewFigureHarness, Figures, …);
//   - the HTTP serving layer: a dataset registry plus a server that
//     exposes enumeration, simulation and figure data as JSON
//     endpoints over cached per-dataset artifacts (NewRegistry,
//     NewServer; see cmd/psn-serve);
//   - the on-disk artifact store behind instant warm starts: versioned,
//     checksummed serializations of built space-time graphs and oracle
//     tables (ArtifactStore, TraceDigest; see cmd/psn-warm and
//     psn-serve -artifacts);
//   - allocation-free observability primitives: lock-free log-bucketed
//     latency histograms and per-request stage-span traces, threaded
//     through the serving layer onto /metrics (LatencyHistogram,
//     StageTrace; see cmd/psn-load and the README's Observability
//     section);
//   - the resilience layer: cooperative request cancellation
//     (deadlines and client disconnects abandon compute at amortized
//     checkpoints — CanceledError, IsCanceled), panic isolation,
//     quarantine of corrupt on-disk artifacts (ErrArtifactCorrupt)
//     and per-dataset degraded mode after repeated build failures
//     (DegradedError); see the README's Resilience section.
//
// # Concurrency and determinism
//
// The three hot paths — Simulate, Enumerator.EnumerateAll, and the
// figure harness — fan independent work items out across a worker
// pool (for EnumerateAll the items are (source, start step) message
// groups, each sharing one dynamic-program prefix across its
// destinations). Each carries a Workers knob (SimConfig.Workers,
// EnumOptions.Workers, FigureParams.Workers): zero means
// runtime.GOMAXPROCS(0), one forces a serial run, and any other value
// caps the goroutine count.
//
// The determinism contract: results are byte-identical for every
// worker count. Workers never share mutable state or a *rand.Rand —
// they share only immutable inputs (the trace, the space-time graph,
// the simulator's oracle tables), write results into per-message
// slots, and derive any per-item randomness from a per-index seed
// split (DeriveSeed). Forwarding algorithms with internal state
// parallelize by cloning (one instance per worker, each replaying the
// full contact stream); an algorithm that cannot clone makes the
// simulator fall back to a serial run rather than risk divergence.
//
// # Batched sweeps
//
// The simulator's hot path is allocation-free in steady state. A
// SimSweep (NewSimSweep) builds the read-only oracle tables — contact
// totals, the O(n³) MEED metric, the time-sorted contact event
// stream — once per trace and pools the mutable per-worker state
// (contact views, holder bitsets, hop/copy slabs, spread queues),
// resetting it between runs instead of reallocating. Multi-run
// consumers — psn-sim's run loop, the figure harness's (algorithm ×
// seed) fan-out, the serving layer's /simulate — all route through a
// shared sweep, so each run after the first pays only the replay.
// Sweep results are byte-identical to plain Simulate calls (pinned,
// against a vendored pre-sweep reference simulator, by the golden
// suite in internal/dtnsim/golden_ref_test.go across all datasets,
// all nine algorithms, both copy modes and multiple worker counts).
//
// The serving layer extends the contract end-to-end: a served response
// is byte-identical to the equivalent direct library call, for any
// worker count and request concurrency. Handlers call exactly the
// library entry points, expensive artifacts (space-time graphs,
// enumerators, simulation sweeps) are built once behind singleflight
// and shared immutably, and memoized results are stored as the
// marshaled bytes of the first computation.
//
// See examples/quickstart for a five-minute tour.
package psn

import (
	"io"

	"repro/internal/analytic"
	"repro/internal/artstore"
	"repro/internal/dtnsim"
	"repro/internal/engine"
	"repro/internal/figures"
	"repro/internal/forward"
	"repro/internal/obs"
	"repro/internal/pathenum"
	"repro/internal/router"
	"repro/internal/service"
	"repro/internal/stgraph"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Contact traces.
type (
	// Trace is an immutable contact trace (see internal/trace).
	Trace = trace.Trace
	// Contact is one contact record between two nodes.
	Contact = trace.Contact
	// NodeID identifies a device in a trace.
	NodeID = trace.NodeID
	// Classifier splits nodes into the paper's in/out rate classes.
	Classifier = trace.Classifier
	// PairType labels a source-destination pair (in-in … out-out).
	PairType = trace.PairType
)

// Pair types, re-exported in the paper's presentation order.
const (
	InIn   = trace.InIn
	InOut  = trace.InOut
	OutIn  = trace.OutIn
	OutOut = trace.OutOut
)

// NewTrace validates and builds a trace from contact records.
func NewTrace(name string, numNodes int, horizon float64, contacts []Contact) (*Trace, error) {
	return trace.New(name, numNodes, horizon, contacts)
}

// ReadTrace parses a trace in the text interchange format.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// WriteTrace serializes a trace in the text interchange format.
func WriteTrace(w io.Writer, t *Trace) error { return trace.Write(w, t) }

// NewClassifier builds the median-rate in/out classifier of §5.2.
func NewClassifier(t *Trace) *Classifier { return trace.NewClassifier(t) }

// Synthetic datasets.
type (
	// Dataset names one of the four generated measurement windows.
	Dataset = tracegen.Dataset
	// GeneratorConfig parametrizes the heterogeneous conference
	// generator.
	GeneratorConfig = tracegen.Config
	// WaypointConfig parametrizes the random-waypoint baseline.
	WaypointConfig = tracegen.WaypointConfig
	// CityConfig parametrizes the city-scale generator (explicit rate
	// classes over a long horizon).
	CityConfig = tracegen.CityConfig
	// CityClass is one rate class of a city population.
	CityClass = tracegen.CityClass
)

// The four datasets mirroring the paper's measurement windows.
const (
	Infocom0912 = tracegen.Infocom0912
	Infocom0336 = tracegen.Infocom0336
	Conext0912  = tracegen.Conext0912
	Conext0336  = tracegen.Conext0336
)

// GenerateDataset builds a named dataset deterministically.
func GenerateDataset(d Dataset) (*Trace, error) { return tracegen.Generate(d) }

// GenerateConference runs the heterogeneous-Poisson conference
// generator with a custom configuration.
func GenerateConference(cfg GeneratorConfig) (*Trace, error) { return tracegen.Heterogeneous(cfg) }

// GenerateHomogeneous builds a trace where every node has contact rate
// lambda — the analytic model's setting.
func GenerateHomogeneous(name string, numNodes int, horizon, lambda, meanDuration float64, seed int64) (*Trace, error) {
	return tracegen.Homogeneous(name, numNodes, horizon, lambda, meanDuration, seed)
}

// GenerateWaypoint builds a random-waypoint mobility trace.
func GenerateWaypoint(cfg WaypointConfig) (*Trace, error) { return tracegen.RandomWaypoint(cfg) }

// GenerateCity builds the named city-scale dataset: nodes devices
// over 12 hours in three rate classes, ≥1M contact records at 2,000
// nodes (the registry's city-2k / city-4k entries use seeds of 1).
func GenerateCity(nodes int, seed int64) (*Trace, error) { return tracegen.City(nodes, seed) }

// GenerateCityTrace runs the city generator with a custom
// configuration (population, horizon, rate classes).
func GenerateCityTrace(cfg CityConfig) (*Trace, error) { return tracegen.CityTrace(cfg) }

// DevTrace is a small deterministic conference trace for examples and
// experimentation (24 nodes, 30 minutes).
func DevTrace(seed int64) *Trace { return tracegen.Dev(seed) }

// Path enumeration.
type (
	// Enumerator enumerates valid forwarding paths for messages.
	// Populations beyond 128 nodes (the city-scale datasets) run in
	// wide mode — identical dynamic program, path membership kept as
	// full-width bitset rows in a slab arena instead of the two-word
	// per-path bitsets. EnumerateAll groups a batch by (source, start
	// step) and shares one destination-free dynamic-program prefix per
	// group, forking a private continuation per destination at its
	// first contact step; results are byte-identical to independent
	// Enumerate calls, in message order, for every worker count.
	Enumerator = pathenum.Enumerator
	// EnumOptions tunes enumeration (Δ, K, table width).
	EnumOptions = pathenum.Options
	// PathMessage identifies one (src, dst, start) forwarding problem.
	PathMessage = pathenum.Message
	// EnumResult holds the delivered paths of one enumeration.
	EnumResult = pathenum.Result
	// Path is one valid space-time path.
	Path = pathenum.Path
	// Explosion is the T1/TE summary of one message.
	Explosion = pathenum.Explosion
	// SpaceTimeGraph is the discretized contact graph, stored as an
	// immutable index: per-step CSR adjacency where consecutive steps
	// with identical contact patterns share one frame carrying the
	// step's connected components and intra-component hop distances.
	// Built by an event sweep over the contact boundaries with
	// slab-backed, parallel per-frame construction (see stgraph.New);
	// results are byte-identical for every worker count.
	SpaceTimeGraph = stgraph.Graph
)

// DefaultDelta is the paper's 10-second discretization.
const DefaultDelta = stgraph.DefaultDelta

// NewEnumerator prepares path enumeration over a trace.
func NewEnumerator(t *Trace, opt EnumOptions) (*Enumerator, error) {
	return pathenum.NewEnumerator(t, opt)
}

// NewEnumeratorWithGraph prepares path enumeration reusing a space-time
// graph built earlier — the expensive part of enumerator construction —
// so callers varying only the enumeration budget (K, TableWidth,
// MaxArrivals) share one index.
func NewEnumeratorWithGraph(t *Trace, g *SpaceTimeGraph, opt EnumOptions) (*Enumerator, error) {
	return pathenum.NewEnumeratorWithGraph(t, g, opt)
}

// NewSpaceTimeGraph discretizes a trace with step delta and builds the
// per-step adjacency, component and hop-distance indexes. Enumerators
// build their own graph; call this only to inspect the structure
// directly (Neighbors, InContact, ActiveNodes, View, …).
func NewSpaceTimeGraph(t *Trace, delta float64) (*SpaceTimeGraph, error) {
	return stgraph.New(t, delta)
}

// Forwarding.
type (
	// Algorithm is a forwarding decision rule.
	Algorithm = forward.Algorithm
	// SimConfig parametrizes one simulation run.
	SimConfig = dtnsim.Config
	// SimMessage is one unicast message for the simulator.
	SimMessage = dtnsim.Message
	// SimResult aggregates per-message outcomes.
	SimResult = dtnsim.Result
	// CopyMode selects replicate vs relay semantics.
	CopyMode = dtnsim.CopyMode
)

// Copy modes.
const (
	Replicate = dtnsim.Replicate
	Relay     = dtnsim.Relay
)

// Simulate runs a forwarding algorithm over a trace.
func Simulate(cfg SimConfig) (*SimResult, error) { return dtnsim.Run(cfg) }

// SimOracle holds the precomputed read-only simulation tables of one
// trace (contact totals, MEED distances, the sorted event stream).
// Build it once with NewSimOracle and set SimConfig.Oracle to share it
// across many runs of the same trace.
type SimOracle = dtnsim.Oracle

// NewSimOracle precomputes the simulation tables for a trace.
func NewSimOracle(t *Trace) *SimOracle { return dtnsim.NewOracle(t) }

// SimSweep is the batched multi-run simulation engine: it builds the
// oracle tables once per trace and pools the mutable per-worker
// simulation state (contact views, holder and hop slabs, live-message
// indexes, spread queues), resetting it between runs instead of
// reallocating. Use it for parameter sweeps — many (algorithm, seed,
// copy-mode) runs over one trace — where each run after the first
// pays only the replay itself. A SimSweep is safe for concurrent use,
// and its results are byte-identical to plain Simulate calls.
type SimSweep = dtnsim.Sweep

// NewSimSweep prepares a simulation sweep over a trace.
func NewSimSweep(t *Trace) (*SimSweep, error) { return dtnsim.NewSweep(t) }

// SimWorkload draws the paper's Poisson message workload.
func SimWorkload(t *Trace, rate, genHorizon float64, seed int64) []SimMessage {
	return dtnsim.Workload(t, rate, genHorizon, seed)
}

// DeriveSeed splits a base seed into an independent per-item seed
// (splitmix64 mixing). Parallel experiments use it to give every work
// item its own RNG stream instead of sharing one generator, keeping
// results identical for any worker count.
func DeriveSeed(base int64, index int) int64 { return engine.DeriveSeed(base, index) }

// PaperAlgorithms returns the six algorithms compared in §6.
func PaperAlgorithms() []Algorithm { return forward.PaperSet() }

// AllAlgorithms returns the paper set plus Direct Delivery, Spray and
// Wait, and PRoPHET.
func AllAlgorithms() []Algorithm { return forward.ExtendedSet() }

// Analytic model.
type (
	// ODEConfig parametrizes the truncated u_k integrator.
	ODEConfig = analytic.ODEConfig
	// JumpConfig parametrizes the Monte-Carlo jump process.
	JumpConfig = analytic.JumpConfig
	// ModelSolution holds state-density snapshots over time.
	ModelSolution = analytic.Solution
)

// SolveODE integrates the Proposition 3 density system.
func SolveODE(u0 []float64, cfg ODEConfig) (*ModelSolution, error) {
	return analytic.SolveODE(u0, cfg)
}

// SimulateJump runs the finite-N Markov jump process of §5.1.2.
func SimulateJump(cfg JumpConfig) (*ModelSolution, error) { return analytic.SimulateJump(cfg) }

// SourceInitial is the paper's initial condition: one source node
// holding a single path.
func SourceInitial(n, k int) []float64 { return analytic.SourceInitial(n, k) }

// MeanClosedForm evaluates Equation (4): E[S(t)] = E[S(0)]·e^{λt}.
func MeanClosedForm(mean0, lambda, t float64) float64 {
	return analytic.MeanClosedForm(mean0, lambda, t)
}

// Figures.
type (
	// FigureHarness caches datasets and studies across figures.
	FigureHarness = figures.Harness
	// FigureParams scales the experiment harness.
	FigureParams = figures.Params
	// FigureSpec is one renderable experiment.
	FigureSpec = figures.Figure
)

// NewFigureHarness prepares the experiment harness.
func NewFigureHarness(p FigureParams) *FigureHarness { return figures.NewHarness(p) }

// Figures lists every registered figure in id order.
func Figures() []FigureSpec { return figures.All() }

// LookupFigure finds a figure by id (e.g. "F04a").
func LookupFigure(id string) (FigureSpec, bool) { return figures.Lookup(id) }

// Serving.
type (
	// Registry maps dataset names to lazily-built immutable traces:
	// the built-in synthetic datasets plus traces registered from
	// files or custom generators. It backs both the CLIs' -dataset
	// flags and the HTTP server.
	Registry = service.Registry
	// ServeConfig parametrizes the HTTP server (registry, workers,
	// in-flight bound, result-cache size, request deadline, fault
	// injection).
	ServeConfig = service.Config
	// Server serves the repository's experiments as JSON endpoints
	// over cached per-dataset artifacts. See cmd/psn-serve.
	Server = service.Server
)

// NewRegistry returns a registry pre-populated with the four paper
// datasets (infocom-9-12, infocom-3-6, conext-9-12, conext-3-6), the
// small deterministic "dev" trace, and the city-scale family
// (city-2k, city-4k). Every entry is generated lazily on first use.
func NewRegistry() *Registry { return service.NewRegistry() }

// NewServer builds the experiment-serving HTTP server; mount its
// Handler under any http.Server.
func NewServer(cfg ServeConfig) *Server { return service.New(cfg) }

// Fleet serving.
type (
	// RouterConfig parametrizes the fleet router: the replica set,
	// replication factor, health-check cadence, failover and retry
	// budget, backpressure bound.
	RouterConfig = router.Config
	// Router fronts N psn-serve replicas: requests shard by dataset
	// over a rendezvous hash with a failover replica per dataset,
	// backed by active health checking, per-backend circuit breakers
	// and deadline propagation. See cmd/psn-router and the README's
	// "Fleet serving" section.
	Router = router.Router
)

// NewRouter builds the fleet router and starts its health-check loop;
// mount its Handler under any http.Server and stop it with Close.
func NewRouter(cfg RouterConfig) (*Router, error) { return router.New(cfg) }

// Resilience.

// CanceledError reports that a computation stopped at a cooperative
// cancellation checkpoint (request deadline or client disconnect)
// before completing. It unwraps to context.Canceled or
// context.DeadlineExceeded. Cancellation never changes results: a
// computation either completes byte-identical to an uncancelled run or
// abandons with a CanceledError and no result at all.
type CanceledError = engine.CanceledError

// IsCanceled reports whether err is (or wraps) a CanceledError.
func IsCanceled(err error) bool { return engine.IsCanceled(err) }

// DegradedError is the serving layer's answer while a dataset is in a
// build-failure backoff window: repeated artifact build failures trip
// the dataset into degraded mode, new builds are refused with 503 +
// Retry-After for the (exponentially growing, jittered) window, and a
// probe build after each window restores service on success. Cached
// artifacts keep serving throughout.
type DegradedError = service.DegradedError

// Artifact store (warm start).
type (
	// ArtifactStore is a versioned on-disk store of precomputed
	// per-dataset artifacts — serialized space-time graphs and
	// simulator oracle tables — keyed by format version, build
	// parameters and a digest of the source trace. cmd/psn-warm fills
	// one; a Server with ServeConfig.ArtifactDir (psn-serve -artifacts)
	// loads from it instead of building, falling back to a live build
	// on any miss or mismatch. The zero value of Dir is invalid; Mmap
	// selects how artifact files are mapped (MmapAuto by default).
	ArtifactStore = artstore.Store
	// MmapPolicy selects how an ArtifactStore maps files into memory.
	MmapPolicy = artstore.MmapPolicy
)

// Mmap policies for ArtifactStore.
const (
	MmapAuto   = artstore.MmapAuto
	MmapNever  = artstore.MmapNever
	MmapAlways = artstore.MmapAlways
)

// ErrArtifactMiss is wrapped by every ArtifactStore load failure — a
// missing file, version skew, parameter or digest mismatch, or
// corruption — so callers can treat "fall back to a live build" as one
// errors.Is check.
var ErrArtifactMiss = artstore.ErrMiss

// ErrArtifactCorrupt is additionally matched by load failures caused
// by damaged bytes (truncation, checksum mismatch, malformed
// structure) rather than clean misses. A corrupt artifact still
// matches ErrArtifactMiss — fallback logic keeps working — but the
// serving layer also quarantines the file (renames it aside with a
// ".quarantined" suffix) so later boots miss cleanly instead of
// re-reading the same bad bytes. Parameter or digest skew is a clean
// miss, never corruption.
var ErrArtifactCorrupt = artstore.ErrCorrupt

// TraceDigest fingerprints a trace's full contact content (FNV-1a 64).
// Artifacts are saved and looked up under this digest, so a store
// warmed from different trace data than the server resolves is a miss,
// never a wrong answer.
func TraceDigest(t *Trace) uint64 { return artstore.TraceDigest(t) }

// Observability.
type (
	// LatencyHistogram is a lock-free log-bucketed latency histogram:
	// 64 fixed buckets at 2^(1/3) spacing (three per doubling) from
	// 1µs to ~1.7s plus an overflow bucket. Record is wait-free and
	// allocation-free; histograms merge and render in Prometheus text
	// format. The serving layer keeps one per endpoint and one per
	// stage on /metrics.
	LatencyHistogram = obs.Histogram
	// LatencySnapshot is an immutable copy of a LatencyHistogram with
	// quantile extraction (p50/p90/p99, capped at the observed max).
	LatencySnapshot = obs.Snapshot
	// StageTrace accumulates one request's time per instrumented
	// pipeline stage (artifact load, graph sweep/frames, enumeration
	// prefix/fork, oracle build, simulation run). A nil *StageTrace is
	// fully inert, so instrumented code paths cost one pointer check
	// when tracing is off.
	StageTrace = obs.Trace
	// StageSpan is an open span on a StageTrace; End adds the elapsed
	// time to its stage.
	StageSpan = obs.Span
	// PipelineStage identifies one instrumented stage of the request
	// pipeline.
	PipelineStage = obs.Stage
)

// Instrumented pipeline stages, in pipeline order.
const (
	StageArtifactLoad = obs.StageArtifactLoad
	StageGraphSweep   = obs.StageGraphSweep
	StageGraphFrames  = obs.StageGraphFrames
	StageEnumPrefix   = obs.StageEnumPrefix
	StageEnumFork     = obs.StageEnumFork
	StageOracleBuild  = obs.StageOracleBuild
	StageSimRun       = obs.StageSimRun
)

// StageNames lists the instrumented stage names in stage order, as
// they appear in /metrics stage labels and slow-request log lines.
func StageNames() [obs.NumStages]string { return obs.StageNames() }
